// Package collabscore is a simulation library for Byzantine-robust
// collaborative scoring, reproducing "Collaborative Scoring with Dishonest
// Participants" (Gilbert, Guerraoui, Malakouti Rad, Zadimoghaddam,
// SPAA 2010).
//
// A set of n players wants to score a set of m objects. Each player has a
// hidden binary preference vector and can probe objects to learn its own
// preferences one bit at a time. The CalculatePreferences protocol lets
// every player predict its full preference vector using only O(B·polylog n)
// probes — asymptotically as accurately as any algorithm with budget B —
// even when up to n/(3B) players are dishonest and colluding.
//
// The top-level API builds and runs simulations:
//
//	sim := collabscore.NewSimulation(collabscore.Config{
//	    Players: 1024, Objects: 1024, Budget: 8, Seed: 42,
//	})
//	sim.PlantClusters(128, 32)          // clusters of 128 players, diameter 32
//	sim.Corrupt(40, collabscore.RandomLiar) // 40 dishonest players
//	report := sim.RunByzantine()
//	fmt.Println(report)
//
// Lower-level building blocks (the bulletin board, ZeroRadius, SmallRadius,
// RSelect/Select, Feige leader election, adversary strategies, preference
// generators) live in internal packages and are exercised through this API,
// the example programs under examples/, and the experiment harness under
// cmd/experiments.
package collabscore

import (
	"fmt"

	"collabscore/internal/adversary"
	"collabscore/internal/baseline"
	"collabscore/internal/bitvec"
	"collabscore/internal/cluster"
	"collabscore/internal/core"
	"collabscore/internal/metrics"
	"collabscore/internal/prefgen"
	"collabscore/internal/world"
	"collabscore/internal/xrand"
)

// Config describes a simulation.
type Config struct {
	// Players is the number of players n (must be ≥ 1).
	Players int
	// Objects is the number of objects m; 0 defaults to Players (the
	// paper's n-players/n-objects setting).
	Objects int
	// Budget is the parameter B: the protocol targets the accuracy
	// achievable by clusters of n/B players using O(B·polylog n) probes.
	// 0 defaults to 8.
	Budget int
	// Seed makes the whole simulation reproducible.
	Seed uint64
	// PaperConstants selects the literal constants from the paper instead
	// of the simulation-scale defaults. See DESIGN.md §4: the paper's
	// polylog constants exceed laptop-scale n, so runs with PaperConstants
	// degenerate to probe-everything below n ≈ 10⁶.
	PaperConstants bool
	// FixedDiameter, when positive, restricts the diameter-doubling loop to
	// that single guess (used by experiments that know the planted D).
	FixedDiameter int
	// NeighborIndex selects how the clustering step discovers neighbor
	// pairs: "" or "exact" (the default all-pairs sweep, the reference
	// oracle and the historical behavior bit for bit), "lsh" (the
	// sub-quadratic banding index with default shape), or
	// "lsh:BANDS:ROWS". An optional "+dense"/"+sparse"/"+auto" suffix
	// picks the neighbor-graph representation (DESIGN.md §16): dense
	// bitset rows, sparse CSR edge lists, or the default size rule (dense
	// below cluster.AutoSparseCutoff players). The representation never
	// changes the clustering, only its memory. Applies to the clustering
	// protocols (Run, RunByzantine, RunWithCapacities); the baselines
	// never build a neighbor graph. See DESIGN.md §13.
	NeighborIndex string
	// TruthSource selects how the hidden truth matrix is represented: "" or
	// "dense" (the materialized O(n·m) matrix, the default and the reference
	// oracle bit for bit), "lazy" (cells recomputed from the seed stream at
	// probe time, O(n) memory), or "lazy:TILES" (lazy plus a fixed-capacity
	// LRU cache of TILES generated tiles). Every representation exposes the
	// same truth — outputs, probe counts, and iteration stats are
	// byte-identical — so worlds far larger than memory can be simulated.
	// See DESIGN.md §14.
	TruthSource string
}

// Strategy names a dishonest-player behavior.
type Strategy int

// Available dishonest strategies (see internal/adversary for semantics).
const (
	// RandomLiar reports consistent random bits ("too busy to read").
	RandomLiar Strategy = iota
	// FlipAll reports the complement of its true preferences.
	FlipAll
	// Colluders report a shared coordinated target vector.
	Colluders
	// ClusterHijackers mimic a victim on the sample set, then lie.
	ClusterHijackers
	// StrangeObjectAttackers vote with the honest minority on split
	// objects (the Lemma 13 attack).
	StrangeObjectAttackers
	// ZeroSpammers always report 0.
	ZeroSpammers
	// Exaggerators push every rating to the nearest extreme of the scale —
	// the §8 rating-scale attack median aggregation absorbs. Rating
	// protocols only.
	Exaggerators
	// HarshShifters report truth shifted down by half the scale (clamped),
	// a systematically harsh dishonest reviewer. Rating protocols only.
	HarshShifters
)

// String returns the strategy name.
func (s Strategy) String() string {
	switch s {
	case RandomLiar:
		return "random-liar"
	case FlipAll:
		return "flip-all"
	case Colluders:
		return "colluders"
	case ClusterHijackers:
		return "cluster-hijackers"
	case StrangeObjectAttackers:
		return "strange-object"
	case ZeroSpammers:
		return "zero-spam"
	case Exaggerators:
		return "exaggerators"
	case HarshShifters:
		return "harsh-shifters"
	default:
		return fmt.Sprintf("strategy(%d)", int(s))
	}
}

// RatingCapable reports whether the strategy has a rating-scale behavior
// (§8): such strategies can corrupt RatingSimulation players and appear on
// rating-protocol sweep points. RandomLiar, FlipAll and ZeroSpammers carry
// their natural rating analogues (consistent random ratings, scale − truth,
// always 0); Exaggerators and HarshShifters are rating-native.
func (s Strategy) RatingCapable() bool {
	switch s {
	case RandomLiar, FlipAll, ZeroSpammers, Exaggerators, HarshShifters:
		return true
	}
	return false
}

// BinaryCapable reports whether the strategy has a binary-world behavior
// (usable with Simulation.Corrupt and the binary protocols).
func (s Strategy) BinaryCapable() bool {
	switch s {
	case Exaggerators, HarshShifters:
		return false
	}
	return true
}

// Simulation is a configured world ready to run the protocol. Create one
// with NewSimulation, optionally plant structure and corrupt players, then
// call Run or RunByzantine.
type Simulation struct {
	cfg      Config
	rng      *xrand.Stream
	instance *prefgen.Instance
	w        *world.World
	params   core.Params
	// truth is the parsed Config.TruthSource spec; planting methods consult
	// it to pick the dense or lazy generator family.
	truth prefgen.SourceSpec
	// pool, when non-nil, supplies reused allocations (truth buffers,
	// world, bulletin boards) for this simulation; see Pool.
	pool *Pool
}

// NewSimulation creates a simulation with uniform random preferences (no
// planted structure). Call PlantClusters or PlantZipf to add structure
// before running. It panics on nonsensical configs.
func NewSimulation(cfg Config) *Simulation {
	return Scenario{Config: cfg}.simulation(nil)
}

// pg returns the prefgen buffer generators draw from: the pool's when this
// simulation is pooled, otherwise nil (a nil *prefgen.Buffer allocates
// fresh — the historical behavior — and draws the same coins).
func (s *Simulation) pg() *prefgen.Buffer {
	if s.pool == nil {
		return nil
	}
	return &s.pool.pg
}

func (s *Simulation) rebuild() {
	src := s.instance.Source()
	if s.pool != nil {
		s.w = world.RenewFrom(s.pool.w, src)
		s.pool.w = s.w
	} else {
		s.w = world.NewFrom(src)
	}
	if s.cfg.PaperConstants {
		s.params = core.Paper(s.cfg.Players, s.cfg.Budget)
	} else {
		s.params = core.Scaled(s.cfg.Players, s.cfg.Budget)
	}
	if s.cfg.FixedDiameter > 0 {
		s.params.MinD = s.cfg.FixedDiameter
		s.params.MaxD = s.cfg.FixedDiameter
	}
	spec, err := cluster.ParseIndexSpec(s.cfg.NeighborIndex)
	if err != nil {
		panic(fmt.Sprintf("collabscore: %v", err))
	}
	s.params.NeighborIndex = spec
	if s.pool != nil {
		s.params.Mem = s.pool.mem
	}
}

// PlantClusters replaces the preference matrix with planted clusters of the
// given size and Hamming diameter (0 = identical preferences). Any
// corruption installed earlier is discarded.
func (s *Simulation) PlantClusters(clusterSize, diameter int) *Simulation {
	if s.truth.IsDense() {
		s.instance = s.pg().DiameterClusters(s.rng.Split(2), s.cfg.Players, s.cfg.Objects, clusterSize, diameter)
	} else {
		s.instance = s.pg().LazyDiameterClusters(s.rng.Split(2), s.cfg.Players, s.cfg.Objects, clusterSize, diameter, s.truth.Tiles)
	}
	s.rebuild()
	return s
}

// PlantZipf replaces the preference matrix with numClusters planted
// clusters whose sizes follow a Zipf law with the given exponent.
func (s *Simulation) PlantZipf(numClusters int, alpha float64, diameter int) *Simulation {
	if s.truth.IsDense() {
		s.instance = s.pg().ZipfClusters(s.rng.Split(3), s.cfg.Players, s.cfg.Objects, numClusters, alpha, diameter)
	} else {
		s.instance = s.pg().LazyZipfClusters(s.rng.Split(3), s.cfg.Players, s.cfg.Objects, numClusters, alpha, diameter, s.truth.Tiles)
	}
	s.rebuild()
	return s
}

// Corrupt makes k randomly chosen players dishonest with the given
// strategy. The paper's tolerance is Tolerance() players; corrupting more
// voids the guarantees (useful for measuring degradation).
func (s *Simulation) Corrupt(k int, strat Strategy) *Simulation {
	perm := s.rng.Split(4).Perm(s.cfg.Players)
	n, m := s.cfg.Players, s.cfg.Objects
	var mk func(p int) world.Behavior
	switch strat {
	case RandomLiar:
		mk = func(p int) world.Behavior { return adversary.RandomLiar{Seed: s.cfg.Seed ^ 0xA11CE} }
	case FlipAll:
		mk = func(p int) world.Behavior { return adversary.FlipAll{} }
	case Colluders:
		c := adversary.NewColluder(s.cfg.Seed^0xC0111DE, m)
		mk = func(p int) world.Behavior { return c }
	case ClusterHijackers:
		mk = func(p int) world.Behavior { return adversary.ClusterHijacker{Victim: (p + 1) % n} }
	case StrangeObjectAttackers:
		mk = func(p int) world.Behavior { return adversary.StrangeObjectAttacker{Seed: s.cfg.Seed ^ 0x57A4E} }
	case ZeroSpammers:
		mk = func(p int) world.Behavior { return adversary.ZeroSpam{} }
	default:
		if !strat.BinaryCapable() {
			panic(fmt.Sprintf("collabscore: strategy %v is rating-scale only (use RatingSimulation.Corrupt)", strat))
		}
		panic(fmt.Sprintf("collabscore: unknown strategy %v", strat))
	}
	adversary.Corrupt(s.w, k, perm, mk)
	return s
}

// Tolerance returns the paper's dishonesty tolerance n/(3B) for this
// configuration.
func (s *Simulation) Tolerance() int { return s.params.MaxDishonest(s.cfg.Players) }

// World exposes the underlying world for advanced use (custom behaviors,
// direct probing).
func (s *Simulation) World() *world.World { return s.w }

// Instance exposes the planted ground truth.
func (s *Simulation) Instance() *prefgen.Instance { return s.instance }

// Params exposes the resolved protocol parameters (mutable before Run).
func (s *Simulation) Params() *core.Params { return &s.params }

// IterationInfo describes what one diameter guess of the protocol did.
type IterationInfo struct {
	// D is the diameter guess of this iteration.
	D int
	// SampleSize is |S|, the number of sampled objects (0 on the small-D
	// path that skips sampling).
	SampleSize int
	// Clusters is the number of clusters peeled; MinCluster the smallest.
	Clusters   int
	MinCluster int
	// Unassigned counts players left out of every cluster.
	Unassigned int
	// FullSmallRadius marks the §6.1 small-D easy case.
	FullSmallRadius bool
}

// RepetitionInfo describes one Byzantine repetition: who led it, and the
// bulletin-board traffic it generated (zero for dishonest-leader
// repetitions, which run no protocol — see DESIGN.md §3).
type RepetitionInfo struct {
	Leader       int
	HonestLeader bool
	BoardWrites  int64
	BoardReads   int64
}

// Report summarizes one protocol run.
type Report struct {
	// MaxError is the paper's rate of error: the worst Hamming error over
	// honest players.
	MaxError int
	// MeanError is the average Hamming error over honest players.
	MeanError float64
	// MaxProbes is the probe complexity: the worst probe count over honest
	// players.
	MaxProbes int64
	// MeanProbes is the average probe count over honest players.
	MeanProbes float64
	// TotalProbes is the total probe count over all players, honest and
	// dishonest (the system-wide work the sweep aggregations sum).
	TotalProbes int64
	// OptDiameter is the planted reference error level (max planted cluster
	// diameter), when planted structure exists; -1 otherwise.
	OptDiameter int
	// HonestLeaders / Repetitions report the Byzantine wrapper's election
	// outcomes (zero for honest-randomness runs).
	HonestLeaders int
	Repetitions   int
	// Reps details each Byzantine repetition in order (nil for
	// honest-randomness runs).
	Reps []RepetitionInfo
	// CommWrites / CommReads account bulletin-board traffic in the
	// work-sharing phases (§8's communication-cost question).
	CommWrites int64
	CommReads  int64
	// Iterations holds per-diameter-guess statistics: the single doubling
	// loop for honest-randomness runs, or the last honest-leader repetition
	// for Byzantine runs.
	Iterations []IterationInfo
	// Outputs holds the predicted preference vector per player.
	Outputs []bitvec.Vector
}

// Prefers returns the predicted preference of player p for object o. It is
// the accessor most callers want; Outputs exposes the raw vectors (values
// of an internal packed type, usable via type inference) for bulk work.
func (r *Report) Prefers(p, o int) bool { return r.Outputs[p].Get(o) }

// String renders a one-line summary.
func (r *Report) String() string {
	s := fmt.Sprintf("max error %d (mean %.1f), max probes %d (mean %.0f)",
		r.MaxError, r.MeanError, r.MaxProbes, r.MeanProbes)
	if r.OptDiameter >= 0 {
		s += fmt.Sprintf(", planted diameter %d", r.OptDiameter)
	}
	if r.Repetitions > 0 {
		s += fmt.Sprintf(", honest leaders %d/%d", r.HonestLeaders, r.Repetitions)
	}
	return s
}

func (s *Simulation) report(res *core.Result) *Report {
	es := metrics.Error(s.w, res.Output)
	ps := metrics.Probes(s.w)
	r := &Report{
		MaxError:      es.Max,
		MeanError:     es.Mean,
		MaxProbes:     ps.Max,
		MeanProbes:    ps.Mean,
		TotalProbes:   ps.Total,
		OptDiameter:   s.instance.PlantedDiameter,
		HonestLeaders: res.HonestLeaders,
		Repetitions:   res.Repetitions,
		CommWrites:    res.BoardWrites,
		CommReads:     res.BoardReads,
		Outputs:       res.Output,
	}
	for _, rp := range res.Reps {
		r.Reps = append(r.Reps, RepetitionInfo{
			Leader:       rp.Leader,
			HonestLeader: rp.HonestLeader,
			BoardWrites:  rp.BoardWrites,
			BoardReads:   rp.BoardReads,
		})
	}
	for _, it := range res.Iterations {
		r.Iterations = append(r.Iterations, IterationInfo{
			D:               it.D,
			SampleSize:      it.SampleSize,
			Clusters:        it.NumClusters,
			MinCluster:      it.MinCluster,
			Unassigned:      it.Unassigned,
			FullSmallRadius: it.UsedFullSR,
		})
	}
	return r
}

// Run executes CalculatePreferences with trusted shared randomness (§6).
// Dishonest players may still lie about preferences; only the shared coins
// are assumed unbiased. Probe counters reset first, so Run can be called
// repeatedly on fresh clones of the same scenario.
func (s *Simulation) Run() *Report {
	s.w.ResetProbes()
	res := core.Run(s.w, s.rng.Split(10), s.params)
	return s.report(res)
}

// RunByzantine executes the full §7 protocol: Θ(log n) repetitions under
// leaders elected with Feige's lightest-bin protocol, then a final RSelect.
// The repetitions execute concurrently across cores, and within each
// repetition the protocol phases fan out over players and objects, with
// byte-identical fixed-seed output to the serial schedules (set
// Params().ByzSerial and/or Params().PhaseSerial for the single-threaded
// references; see DESIGN.md §6 and §9).
func (s *Simulation) RunByzantine() *Report {
	s.w.ResetProbes()
	res := core.RunByzantine(s.w, s.rng.Split(11), nil, s.params)
	return s.report(res)
}

// RunBaseline executes the prior-art baseline of Alon et al. [2,3]
// (O(B²·polylog n) probes, B-approximation, no Byzantine tolerance).
func (s *Simulation) RunBaseline() *Report {
	s.w.ResetProbes()
	pr := baseline.AASPScaled(s.cfg.Players, s.cfg.Budget)
	pr.MinD, pr.MaxD = s.params.MinD, s.params.MaxD
	out := baseline.AASP(s.w, s.rng.Split(12), pr)
	return s.report(&core.Result{Output: out})
}

// RunProbeAll executes the trivial probe-everything baseline.
func (s *Simulation) RunProbeAll() *Report {
	s.w.ResetProbes()
	out := baseline.ProbeAll(s.w)
	return s.report(&core.Result{Output: out})
}

// RunRandomGuess executes the zero-probe random-guess baseline.
func (s *Simulation) RunRandomGuess() *Report {
	s.w.ResetProbes()
	out := baseline.RandomGuess(s.w, s.rng.Split(13))
	return s.report(&core.Result{Output: out})
}
