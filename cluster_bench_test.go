package collabscore_test

// BenchmarkBuildGraph is the neighbor-index scaling matrix (DESIGN.md §13):
// the exact all-pairs sweep against the LSH banding index on planted
// worlds at n ∈ {1024, 4096, 16384}, paper-regime threshold (twice the
// planted diameter, far below cross-cluster distances). The exact sweep is
// Θ(n²) Hamming tests; the banding index verifies only same-bucket
// candidates, which on planted worlds is Θ(n·size) — the separation grows
// linearly with n/size and is the acceptance criterion for the index
// (≥ 5× at n=16384). See README.md for a recorded table.

import (
	"fmt"
	"testing"

	"collabscore/internal/cluster"
	"collabscore/internal/prefgen"
	"collabscore/internal/xrand"
)

var benchBuildGraphSink *cluster.Graph

func BenchmarkBuildGraph(b *testing.B) {
	const m, size, d = 1024, 256, 8
	specs := []cluster.IndexSpec{{}, {Kind: "lsh"}}
	for _, n := range []int{1024, 4096, 16384} {
		in := prefgen.DiameterClusters(xrand.New(uint64(n)), n, m, size, d)
		for _, spec := range specs {
			b.Run(fmt.Sprintf("n=%d/%s", n, spec), func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					benchBuildGraphSink = spec.BuildGraph(nil, in.Truth, 2*d, xrand.New(uint64(n)^0x5D))
				}
				deg := 0
				for p := 0; p < benchBuildGraphSink.N(); p++ {
					deg += benchBuildGraphSink.Degree(p)
				}
				b.ReportMetric(float64(deg/2), "edges")
			})
		}
	}
}
