package collabscore_test

// BenchmarkBuildGraph is the neighbor-index × graph-representation scaling
// matrix (DESIGN.md §13/§16): the exact all-pairs sweep against the LSH
// banding index, each filling the dense bitset and the sparse CSR
// representation, on planted worlds at n ∈ {1024, 4096, 16384} with the
// paper-regime threshold (twice the planted diameter, far below
// cross-cluster distances). The exact sweep is Θ(n²) Hamming tests while
// the banding index verifies only same-bucket candidates (Θ(n·size) on
// planted worlds); the dense graph retains n² bits while CSR retains
// Θ(n·size) edges — the retained_B column is the memory matrix showing the
// quadratic/linear split, the acceptance story for ROADMAP item 2. See
// README.md for a recorded table.

import (
	"fmt"
	"runtime"
	"testing"

	"collabscore/internal/cluster"
	"collabscore/internal/prefgen"
	"collabscore/internal/xrand"
)

var benchBuildGraphSink cluster.Graph

func BenchmarkBuildGraph(b *testing.B) {
	const m, size, d = 1024, 256, 8
	specs := []cluster.IndexSpec{
		{Graph: "dense"},
		{Graph: "sparse"},
		{Kind: "lsh", Graph: "dense"},
		{Kind: "lsh", Graph: "sparse"},
	}
	for _, n := range []int{1024, 4096, 16384} {
		in := prefgen.DiameterClusters(xrand.New(uint64(n)), n, m, size, d)
		for _, spec := range specs {
			b.Run(fmt.Sprintf("n=%d/%s", n, spec), func(b *testing.B) {
				build := func() cluster.Graph {
					return spec.BuildGraph(nil, in.Truth, 2*d, xrand.New(uint64(n)^0x5D))
				}

				// Retained live heap of one built graph, measured across
				// full collections — the number that scales n² bits dense
				// and Θ(edges) sparse.
				runtime.GC()
				var before, after runtime.MemStats
				runtime.ReadMemStats(&before)
				held := build()
				runtime.GC()
				runtime.ReadMemStats(&after)
				retained := float64(0)
				if after.HeapAlloc > before.HeapAlloc {
					retained = float64(after.HeapAlloc - before.HeapAlloc)
				}
				runtime.KeepAlive(held)

				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					benchBuildGraphSink = build()
				}
				deg := 0
				for p := 0; p < benchBuildGraphSink.N(); p++ {
					deg += benchBuildGraphSink.Degree(p)
				}
				// ResetTimer clears ReportMetric values, so record them
				// after the timed loop.
				b.ReportMetric(float64(deg/2), "edges")
				b.ReportMetric(retained, "retained_B")
			})
		}
	}
}
