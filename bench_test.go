package collabscore_test

// The benchmark harness regenerates every reproduction artifact (the
// paper's formal claims E1–E12 — the paper is theoretical and publishes
// pseudocode figures and theorems rather than empirical tables; see
// DESIGN.md §5) plus micro-benchmarks of the hot substrate paths.
//
// Run everything:
//
//	go test -bench=. -benchmem
//
// Each BenchmarkE* iteration executes the corresponding experiment at a
// reduced-but-representative scale and reports the key measured quantity
// via b.ReportMetric, so `go test -bench` output doubles as a compact
// reproduction summary.

import (
	"fmt"
	"strconv"
	"testing"

	"collabscore"

	"collabscore/internal/bitvec"
	"collabscore/internal/board"
	"collabscore/internal/experiments"
	"collabscore/internal/prefgen"
	"collabscore/internal/tablefmt"
	"collabscore/internal/world"
	"collabscore/internal/xrand"
)

// benchCfg is the experiment configuration used by the benchmarks: one
// trial per configuration at moderate n so the full suite completes in
// minutes.
func benchCfg() experiments.Config {
	return experiments.Config{N: 512, B: 8, Trials: 1, Seed: 2010}
}

// cell parses a float table cell, tolerating non-numeric cells.
func cell(tb *tablefmt.Table, row, col int) float64 {
	if row >= len(tb.Rows) || col >= len(tb.Rows[row]) {
		return 0
	}
	v, err := strconv.ParseFloat(tb.Rows[row][col], 64)
	if err != nil {
		return 0
	}
	return v
}

// runExperimentBench executes experiment id once per benchmark iteration
// and reports the metric extracted by pick from the last iteration's table.
func runExperimentBench(b *testing.B, id string, metricName string, pick func(tb *tablefmt.Table) float64) {
	b.Helper()
	e, ok := experiments.ByID(id)
	if !ok {
		b.Fatalf("unknown experiment %s", id)
	}
	cfg := benchCfg()
	var last *tablefmt.Table
	for i := 0; i < b.N; i++ {
		cfg.Seed = 2010 + uint64(i)
		last = e.Run(cfg)
	}
	if last != nil {
		b.ReportMetric(pick(last), metricName)
	}
}

// BenchmarkE1LowerBound regenerates the Claim 2 table; metric: the
// distinguished player's error on the adversarial instance (bound: D/4).
func BenchmarkE1LowerBound(b *testing.B) {
	runExperimentBench(b, "E1", "bbudget_err", func(tb *tablefmt.Table) float64 { return cell(tb, 0, 2) })
}

// BenchmarkE2Sampling regenerates the Lemma 6 table; metric: 1 if close and
// far pairs were separated on the sample.
func BenchmarkE2Sampling(b *testing.B) {
	runExperimentBench(b, "E2", "separated", func(tb *tablefmt.Table) float64 { return cell(tb, 0, 6) })
}

// BenchmarkE3RSelect regenerates the Theorem 3 table; metric: output
// distance over best-candidate distance (bound: O(1)).
func BenchmarkE3RSelect(b *testing.B) {
	runExperimentBench(b, "E3", "ratio", func(tb *tablefmt.Table) float64 { return cell(tb, len(tb.Rows)-1, 3) })
}

// BenchmarkE4ZeroRadius regenerates the Theorem 4 table; metric: exact
// recovery fraction (bound: 1 whp).
func BenchmarkE4ZeroRadius(b *testing.B) {
	runExperimentBench(b, "E4", "exact_frac", func(tb *tablefmt.Table) float64 { return cell(tb, 0, 2) })
}

// BenchmarkE5SmallRadius regenerates the Theorem 5 table; metric: max error
// at the largest planted diameter (bound: 5D).
func BenchmarkE5SmallRadius(b *testing.B) {
	runExperimentBench(b, "E5", "max_err", func(tb *tablefmt.Table) float64 { return cell(tb, len(tb.Rows)-1, 1) })
}

// BenchmarkE6Clustering regenerates the Lemma 7–9 table; metric: cluster
// diameter over planted diameter (bound: O(1)).
func BenchmarkE6Clustering(b *testing.B) {
	runExperimentBench(b, "E6", "diam_over_D", func(tb *tablefmt.Table) float64 { return cell(tb, 0, 7) })
}

// BenchmarkE7ProbeComplexity regenerates the Lemma 10–11 table; metric:
// protocol probes over probe-all at the largest n in the sweep.
func BenchmarkE7ProbeComplexity(b *testing.B) {
	runExperimentBench(b, "E7", "core_over_all", func(tb *tablefmt.Table) float64 { return cell(tb, len(tb.Rows)-1, 4) })
}

// BenchmarkE8HonestAccuracy regenerates the Lemma 12 table; metric:
// approximation ratio vs the planted optimum (bound: O(1)).
func BenchmarkE8HonestAccuracy(b *testing.B) {
	runExperimentBench(b, "E8", "approx_ratio", func(tb *tablefmt.Table) float64 { return cell(tb, 0, 4) })
}

// BenchmarkE9Byzantine regenerates the Theorem 14 table; metric: worst max
// error across strategies at the tolerance (bound: honest-run level).
func BenchmarkE9Byzantine(b *testing.B) {
	runExperimentBench(b, "E9", "worst_max_err", func(tb *tablefmt.Table) float64 {
		worst := 0.0
		for r := range tb.Rows {
			if v := cell(tb, r, 3); v > worst && cell(tb, r, 2) <= 1 {
				worst = v
			}
		}
		return worst
	})
}

// BenchmarkE10Comparison regenerates the prior-art comparison; metric:
// baseline probes over protocol probes (the paper's B vs B² separation).
func BenchmarkE10Comparison(b *testing.B) {
	runExperimentBench(b, "E10", "probe_ratio", func(tb *tablefmt.Table) float64 { return cell(tb, len(tb.Rows)-1, 3) })
}

// BenchmarkE11Election regenerates the Feige election table; metric:
// honest-leader rate at 1/3 dishonest under the rushing greedy attack.
func BenchmarkE11Election(b *testing.B) {
	runExperimentBench(b, "E11", "honest_rate", func(tb *tablefmt.Table) float64 { return cell(tb, len(tb.Rows)-1, 1) })
}

// BenchmarkE12Extensions regenerates the §8 extension table; metric: the
// multival max L1 error (bound: 3D).
func BenchmarkE12Extensions(b *testing.B) {
	runExperimentBench(b, "E12", "multival_err", func(tb *tablefmt.Table) float64 { return cell(tb, 0, 2) })
}

// BenchmarkE13Conjecture regenerates the §8-conjecture table; metric: the
// 90th-percentile error-over-radius ratio (conjectured ≥ Ω(1), measured ≲1).
func BenchmarkE13Conjecture(b *testing.B) {
	runExperimentBench(b, "E13", "err_over_radius_p90", func(tb *tablefmt.Table) float64 { return cell(tb, 0, 5) })
}

// --- substrate micro-benchmarks -------------------------------------------

// BenchmarkHammingDistance measures the hot path of every protocol phase:
// word-parallel Hamming distance between 1024-bit vectors.
func BenchmarkHammingDistance(b *testing.B) {
	rng := xrand.New(1)
	in := prefgen.Uniform(rng, 2, 1024)
	x, y := in.Truth[0], in.Truth[1]
	b.ResetTimer()
	s := 0
	for i := 0; i < b.N; i++ {
		s += x.Hamming(y)
	}
	_ = s
}

// BenchmarkNeighborGraph measures the n² pairwise clustering step at
// n=512 over 128-bit sample vectors.
func BenchmarkNeighborGraph(b *testing.B) {
	rng := xrand.New(2)
	in := prefgen.DiameterClusters(rng, 512, 128, 64, 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		benchGraphSink = buildGraphForBench(in.Truth)
	}
}

var benchGraphSink any

func buildGraphForBench(z []bitvec.Vector) any {
	type adj struct{ rows int }
	count := 0
	for p := 0; p < len(z); p++ {
		for q := p + 1; q < len(z); q++ {
			if z[p].Hamming(z[q]) <= 32 {
				count++
			}
		}
	}
	return adj{rows: count}
}

// BenchmarkProbeWord measures the bulk probe path: up to 64 probes settled
// per op with one CAS and one atomic add (DESIGN.md §10). Compare with
// BenchmarkProbeThroughput, which pays the per-bit path once per probe.
func BenchmarkProbeWord(b *testing.B) {
	rng := xrand.New(4)
	in := prefgen.Uniform(rng, 4, 1<<16)
	w := world.New(in.Truth)
	words := w.ProbeWords()
	b.ResetTimer()
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink += w.ProbeWord(i%4, i%words, ^uint64(0))
	}
	_ = sink
}

// BenchmarkFrozenMajorityWord measures the word-level workshare tally: one
// 64-object majority over 64 voters per op, bit-sliced (DESIGN.md §10).
func BenchmarkFrozenMajorityWord(b *testing.B) {
	const n, m = 64, 4096
	bd := board.New(n, m)
	rng := xrand.New(5)
	for p := 0; p < n; p++ {
		for wi := 0; wi < m/64; wi++ {
			bd.WriteWord(p, wi, rng.Uint64(), rng.Uint64())
		}
	}
	f := bd.Freeze()
	players := make([]int, n)
	for i := range players {
		players[i] = i
	}
	b.ResetTimer()
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink += f.MajorityWord(i%(m/64), players)
	}
	_ = sink
}

// BenchmarkProbeThroughput measures the concurrent probe path (per-player
// memoized counters) under parallel load.
func BenchmarkProbeThroughput(b *testing.B) {
	rng := xrand.New(3)
	in := prefgen.Uniform(rng, 64, 4096)
	w := world.New(in.Truth)
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			w.Probe(i%64, (i*31)%4096)
			i++
		}
	})
}

// BenchmarkFullProtocol measures one end-to-end honest run at n=512 with a
// single correct diameter guess (the E8 configuration).
func BenchmarkFullProtocol(b *testing.B) {
	for i := 0; i < b.N; i++ {
		sim := collabscore.NewSimulation(collabscore.Config{Players: 512, Budget: 8, Seed: uint64(i), FixedDiameter: 32})
		sim.PlantClusters(64, 32)
		rep := sim.Run()
		if i == b.N-1 {
			b.ReportMetric(float64(rep.MaxError), "max_err")
			b.ReportMetric(float64(rep.MaxProbes), "max_probes")
		}
	}
}

// BenchmarkFullByzantine measures the end-to-end §7 protocol at n=512 with
// tolerance-level corruption.
func BenchmarkFullByzantine(b *testing.B) {
	for i := 0; i < b.N; i++ {
		sim := collabscore.NewSimulation(collabscore.Config{Players: 512, Budget: 8, Seed: uint64(i), FixedDiameter: 32})
		sim.PlantClusters(64, 32)
		sim.Corrupt(sim.Tolerance(), collabscore.RandomLiar)
		rep := sim.RunByzantine()
		if i == b.N-1 {
			b.ReportMetric(float64(rep.MaxError), "max_err")
		}
	}
}

// BenchmarkRunByzantine measures the Byzantine wrapper under the four
// schedule combinations of the two parallelism layers (DESIGN.md §9):
// fully serial, repetition-parallel (PhaseSerial pins the inner loops),
// phase-parallel (ByzSerial pins the outer loop), and both layers
// concurrent (the default configuration). All four produce byte-identical
// fixed-seed output; only wall clock differs. The k=8 matrix runs at
// n ∈ {256, 1024, 4096} with tolerance-level corruption; the 1rep group is
// the single-repetition workload (core.Run-like: FixedDiameter sweeps,
// §8 extensions) where only phase-level parallelism can help. See
// README.md for a recorded table and DESIGN.md §8 for methodology.
func BenchmarkRunByzantine(b *testing.B) {
	schedules := []struct {
		name                   string
		byzSerial, phaseSerial bool
	}{
		{"serial", true, true},
		{"reps-parallel", false, true},
		{"phases-parallel", true, false},
		{"both-parallel", false, false},
	}
	run := func(b *testing.B, n, k int, byzSerial, phaseSerial bool) {
		for i := 0; i < b.N; i++ {
			sim := collabscore.NewSimulation(collabscore.Config{Players: n, Budget: 8, Seed: uint64(i), FixedDiameter: n / 32})
			sim.PlantClusters(n/8, n/32)
			sim.Corrupt(sim.Tolerance(), collabscore.ClusterHijackers)
			sim.Params().ByzIterations = k
			sim.Params().ByzSerial = byzSerial
			sim.Params().PhaseSerial = phaseSerial
			rep := sim.RunByzantine()
			if i == b.N-1 {
				b.ReportMetric(float64(rep.MaxError), "max_err")
				b.ReportMetric(float64(rep.HonestLeaders), "honest_leaders")
			}
		}
	}
	for _, n := range []int{256, 1024, 4096} {
		for _, sc := range schedules {
			b.Run(fmt.Sprintf("n=%d/%s", n, sc.name), func(b *testing.B) {
				run(b, n, 8, sc.byzSerial, sc.phaseSerial)
			})
		}
	}
	// Single repetition at n=1024: the acceptance workload for phase-level
	// parallelism (repetition-level parallelism is a no-op at k=1).
	for _, sc := range []struct {
		name        string
		phaseSerial bool
	}{{"phases-serial", true}, {"phases-parallel", false}} {
		b.Run("1rep/n=1024/"+sc.name, func(b *testing.B) {
			run(b, 1024, 1, true, sc.phaseSerial)
		})
	}
}

// BenchmarkScalingN prints the probe-scaling series (the E7 shape) as
// sub-benchmarks over n.
func BenchmarkScalingN(b *testing.B) {
	for _, n := range []int{512, 1024, 2048} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				sim := collabscore.NewSimulation(collabscore.Config{Players: n, Budget: 8, Seed: uint64(i), FixedDiameter: n / 32})
				sim.PlantClusters(n/8, n/32)
				rep := sim.Run()
				if i == b.N-1 {
					b.ReportMetric(float64(rep.MaxProbes), "max_probes")
					b.ReportMetric(float64(rep.MaxProbes)/float64(n), "probes_over_m")
				}
			}
		})
	}
}
