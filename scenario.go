package collabscore

// This file exposes the scenario point-runner: a declarative description of
// one fully specified simulation (population, planted structure, corruption,
// protocol variant) plus a Pool that runs successive scenarios on reused
// allocations. The internal sweep engine (internal/sweep) expands scenario
// grids and drives one Pool per worker; see DESIGN.md §11.

import (
	"fmt"

	"collabscore/internal/core"
	"collabscore/internal/prefgen"
	"collabscore/internal/world"
	"collabscore/internal/xrand"
)

// Protocol names the runner a Scenario executes. The zero value is ProtoRun.
type Protocol int

// Available protocol variants; each corresponds to a Simulation Run method.
const (
	// ProtoRun executes CalculatePreferences with trusted shared
	// randomness (Simulation.Run).
	ProtoRun Protocol = iota
	// ProtoByzantine executes the full §7 protocol (Simulation.RunByzantine).
	ProtoByzantine
	// ProtoBaseline executes the Alon et al. prior-art baseline
	// (Simulation.RunBaseline).
	ProtoBaseline
	// ProtoProbeAll executes the probe-everything baseline
	// (Simulation.RunProbeAll).
	ProtoProbeAll
	// ProtoRandomGuess executes the zero-probe baseline
	// (Simulation.RunRandomGuess).
	ProtoRandomGuess
)

// String returns the protocol name used by grid specs and JSONL records.
func (p Protocol) String() string {
	switch p {
	case ProtoRun:
		return "run"
	case ProtoByzantine:
		return "byzantine"
	case ProtoBaseline:
		return "baseline"
	case ProtoProbeAll:
		return "probe-all"
	case ProtoRandomGuess:
		return "random-guess"
	default:
		return fmt.Sprintf("protocol(%d)", int(p))
	}
}

// ParseProtocol is the inverse of Protocol.String.
func ParseProtocol(s string) (Protocol, error) {
	for _, p := range []Protocol{ProtoRun, ProtoByzantine, ProtoBaseline, ProtoProbeAll, ProtoRandomGuess} {
		if p.String() == s {
			return p, nil
		}
	}
	return 0, fmt.Errorf("collabscore: unknown protocol %q", s)
}

// ParseStrategy is the inverse of Strategy.String.
func ParseStrategy(s string) (Strategy, error) {
	for _, st := range []Strategy{RandomLiar, FlipAll, Colluders, ClusterHijackers, StrangeObjectAttackers, ZeroSpammers} {
		if st.String() == s {
			return st, nil
		}
	}
	return 0, fmt.Errorf("collabscore: unknown strategy %q", s)
}

// Scenario fully describes one grid point: a Config plus planted structure,
// corruption, and the protocol variant to run. Running a Scenario is
// exactly equivalent to the fluent construction —
//
//	sim := NewSimulation(sc.Config)
//	sim.PlantClusters(sc.ClusterSize, sc.Diameter) // when ClusterSize > 0
//	sim.Corrupt(sc.Dishonest, sc.Strategy)         // when Dishonest > 0
//	rep := sim.RunByzantine()                      // per sc.Protocol
//
// — same seed, same report, byte for byte. The declarative form exists so
// scenario grids can be expanded, scheduled, serialized, and resumed by the
// sweep engine, and so a Pool can run points on reused allocations.
type Scenario struct {
	Config

	// ClusterSize/Diameter plant diameter-bounded clusters (PlantClusters)
	// when ClusterSize > 0.
	ClusterSize int
	Diameter    int

	// ZipfClusters/ZipfAlpha plant Zipf-sized clusters of diameter Diameter
	// (PlantZipf) when ZipfClusters > 0 and ClusterSize == 0.
	ZipfClusters int
	ZipfAlpha    float64

	// Dishonest players follow Strategy; 0 leaves everyone honest.
	Dishonest int
	Strategy  Strategy

	// Protocol selects the runner; the zero value is ProtoRun.
	Protocol Protocol
}

// simulation builds the scenario's Simulation, on pooled state when pl is
// non-nil. The RNG splits are identical to the fluent construction: Split
// is a pure read of the root stream, so skipping the uniform instance that
// NewSimulation would generate before planting changes no coins.
func (sc Scenario) simulation(pl *Pool) *Simulation {
	cfg := sc.Config
	if cfg.Players < 1 {
		panic("collabscore: Players must be ≥ 1")
	}
	if cfg.Objects == 0 {
		cfg.Objects = cfg.Players
	}
	if cfg.Budget == 0 {
		cfg.Budget = 8
	}
	s := &Simulation{cfg: cfg, rng: xrand.New(cfg.Seed), pool: pl}
	switch {
	case sc.ClusterSize > 0:
		s.instance = s.pg().DiameterClusters(s.rng.Split(2), cfg.Players, cfg.Objects, sc.ClusterSize, sc.Diameter)
	case sc.ZipfClusters > 0:
		s.instance = s.pg().ZipfClusters(s.rng.Split(3), cfg.Players, cfg.Objects, sc.ZipfClusters, sc.ZipfAlpha, sc.Diameter)
	default:
		s.instance = s.pg().Uniform(s.rng.Split(1), cfg.Players, cfg.Objects)
	}
	s.rebuild()
	if sc.Dishonest > 0 {
		s.Corrupt(sc.Dishonest, sc.Strategy)
	}
	return s
}

// execute runs the scenario's protocol on the prepared simulation.
func (sc Scenario) execute(s *Simulation) *Report {
	switch sc.Protocol {
	case ProtoRun:
		return s.Run()
	case ProtoByzantine:
		return s.RunByzantine()
	case ProtoBaseline:
		return s.RunBaseline()
	case ProtoProbeAll:
		return s.RunProbeAll()
	case ProtoRandomGuess:
		return s.RunRandomGuess()
	default:
		panic(fmt.Sprintf("collabscore: unknown protocol %v", sc.Protocol))
	}
}

// Run executes the scenario from scratch and returns its report. It is the
// reference path: Pool.Run produces the identical report on reused
// allocations.
func (sc Scenario) Run() *Report { return sc.execute(sc.simulation(nil)) }

// Build constructs the scenario's configured Simulation — planted and
// corrupted, protocol not yet run — fresh when pl is nil, pooled otherwise.
// Most callers want Run or Pool.Run; the sweep engine uses Build/Execute to
// measure the planted instance before running the protocol.
func (sc Scenario) Build(pl *Pool) *Simulation { return sc.simulation(pl) }

// Execute runs the scenario's protocol variant on a Simulation built by
// Build.
func (sc Scenario) Execute(s *Simulation) *Report { return sc.execute(s) }

// Pool runs successive scenarios on reused allocations: the truth matrix
// buffers (prefgen.Buffer), the world's probe memos and counters
// (world.Renew), and the workshare bulletin boards (core.Mem) are recycled
// across points instead of rebuilt each time, which is what makes
// thousand-point scenario grids cheap. Reports are byte-identical to
// Scenario.Run for the same scenario — pooling changes where memory comes
// from, never what is computed (TestPoolMatchesFresh pins this).
//
// A Pool is NOT safe for concurrent use; the sweep engine gives each worker
// its own. Each Run invalidates the previous Run's Simulation, World, and
// Instance on the same Pool (their storage is reused); the returned Reports
// stay valid.
type Pool struct {
	pg  prefgen.Buffer
	w   *world.World
	mem *core.Mem
}

// NewPool returns an empty pool; allocations are adopted from the points it
// runs.
func NewPool() *Pool { return &Pool{mem: core.NewMem()} }

// Run executes the scenario on the pool's reused allocations.
func (pl *Pool) Run(sc Scenario) *Report { return sc.execute(sc.simulation(pl)) }

// NewSimulation creates a pooled simulation: like the package-level
// NewSimulation (identical output for identical calls), but drawing its
// allocations from the pool. The previous pooled simulation is invalidated.
func (pl *Pool) NewSimulation(cfg Config) *Simulation {
	return Scenario{Config: cfg}.simulation(pl)
}
