package collabscore

// This file exposes the scenario point-runner: a declarative description of
// one fully specified simulation (population, planted structure, corruption,
// protocol variant) plus a Pool that runs successive scenarios on reused
// allocations. The internal sweep engine (internal/sweep) expands scenario
// grids and drives one Pool per worker; see DESIGN.md §11.

import (
	"fmt"

	"collabscore/internal/core"
	"collabscore/internal/multival"
	"collabscore/internal/prefgen"
	"collabscore/internal/world"
	"collabscore/internal/xrand"
)

// Protocol names the runner a Scenario executes. The zero value is ProtoRun.
type Protocol int

// Available protocol variants; each corresponds to a Simulation Run method.
const (
	// ProtoRun executes CalculatePreferences with trusted shared
	// randomness (Simulation.Run).
	ProtoRun Protocol = iota
	// ProtoByzantine executes the full §7 protocol (Simulation.RunByzantine).
	ProtoByzantine
	// ProtoBaseline executes the Alon et al. prior-art baseline
	// (Simulation.RunBaseline).
	ProtoBaseline
	// ProtoProbeAll executes the probe-everything baseline
	// (Simulation.RunProbeAll).
	ProtoProbeAll
	// ProtoRandomGuess executes the zero-probe baseline
	// (Simulation.RunRandomGuess).
	ProtoRandomGuess
	// ProtoRatings executes the §8 non-binary protocol under the Byzantine
	// wrapper (RatingSimulation.RunByzantine): players rate on a 0..Scale
	// scale, similarity is L1, aggregation is by median. Requires a
	// cluster planting (ClusterSize > 0) and a rating-capable Strategy.
	ProtoRatings
	// ProtoBudgets executes the §8 heterogeneous-budget protocol
	// (Simulation.RunWithCapacities) with the scenario's two-tier capacity
	// vector (CapSmall/CapBig/CapBigFrac).
	ProtoBudgets
)

// String returns the protocol name used by grid specs and JSONL records.
func (p Protocol) String() string {
	switch p {
	case ProtoRun:
		return "run"
	case ProtoByzantine:
		return "byzantine"
	case ProtoBaseline:
		return "baseline"
	case ProtoProbeAll:
		return "probe-all"
	case ProtoRandomGuess:
		return "random-guess"
	case ProtoRatings:
		return "ratings"
	case ProtoBudgets:
		return "budgets"
	default:
		return fmt.Sprintf("protocol(%d)", int(p))
	}
}

// ParseProtocol is the inverse of Protocol.String.
func ParseProtocol(s string) (Protocol, error) {
	for _, p := range []Protocol{ProtoRun, ProtoByzantine, ProtoBaseline, ProtoProbeAll, ProtoRandomGuess, ProtoRatings, ProtoBudgets} {
		if p.String() == s {
			return p, nil
		}
	}
	return 0, fmt.Errorf("collabscore: unknown protocol %q", s)
}

// ParseStrategy is the inverse of Strategy.String.
func ParseStrategy(s string) (Strategy, error) {
	for _, st := range []Strategy{RandomLiar, FlipAll, Colluders, ClusterHijackers, StrangeObjectAttackers, ZeroSpammers, Exaggerators, HarshShifters} {
		if st.String() == s {
			return st, nil
		}
	}
	return 0, fmt.Errorf("collabscore: unknown strategy %q", s)
}

// Scenario fully describes one grid point: a Config plus planted structure,
// corruption, and the protocol variant to run. Running a Scenario is
// exactly equivalent to the fluent construction —
//
//	sim := NewSimulation(sc.Config)
//	sim.PlantClusters(sc.ClusterSize, sc.Diameter) // when ClusterSize > 0
//	sim.Corrupt(sc.Dishonest, sc.Strategy)         // when Dishonest > 0
//	rep := sim.RunByzantine()                      // per sc.Protocol
//
// — same seed, same report, byte for byte. The declarative form exists so
// scenario grids can be expanded, scheduled, serialized, and resumed by the
// sweep engine, and so a Pool can run points on reused allocations.
type Scenario struct {
	Config

	// ClusterSize/Diameter plant diameter-bounded clusters (PlantClusters)
	// when ClusterSize > 0.
	ClusterSize int
	Diameter    int

	// ZipfClusters/ZipfAlpha plant Zipf-sized clusters of diameter Diameter
	// (PlantZipf) when ZipfClusters > 0 and ClusterSize == 0.
	ZipfClusters int
	ZipfAlpha    float64

	// Dishonest players follow Strategy; 0 leaves everyone honest.
	Dishonest int
	Strategy  Strategy

	// Protocol selects the runner; the zero value is ProtoRun.
	Protocol Protocol

	// Scale is the rating scale of ProtoRatings points (ratings in
	// 0..Scale; 0 defaults to 5). Ignored by every other protocol.
	Scale int

	// CapSmall/CapBig/CapBigFrac describe the two-tier capacity vector of
	// ProtoBudgets points: a CapBigFrac fraction of players volunteer
	// CapBig probes and the rest CapSmall, assigned deterministically from
	// the scenario seed. Zero values default to m/32, m/2 and 0.25.
	// Ignored by every other protocol.
	CapSmall   int
	CapBig     int
	CapBigFrac float64
}

// ratingSimulation builds the scenario's RatingSimulation (ProtoRatings),
// on pooled state when pl is non-nil; pooled construction draws identical
// coins, so it is bit-identical to fresh.
func (sc Scenario) ratingSimulation(pl *Pool) *RatingSimulation {
	if sc.ClusterSize <= 0 {
		panic("collabscore: ProtoRatings requires a cluster planting (ClusterSize > 0)")
	}
	cfg := sc.Config
	rs := newRatingSimulation(RatingConfig{
		Players:       cfg.Players,
		Objects:       cfg.Objects,
		Scale:         sc.Scale,
		Budget:        cfg.Budget,
		Seed:          cfg.Seed,
		FixedDiameter: cfg.FixedDiameter,
		TruthSource:   cfg.TruthSource,
	}, sc.ClusterSize, sc.Diameter, pl)
	if sc.Dishonest > 0 {
		rs.Corrupt(sc.Dishonest, sc.Strategy)
	}
	return rs
}

// capacities resolves the scenario's two-tier capacity vector defaults
// against the resolved object count.
func (sc Scenario) capacities(m int) (small, big int, frac float64) {
	small, big, frac = sc.CapSmall, sc.CapBig, sc.CapBigFrac
	if small <= 0 {
		small = m / 32
		if small < 1 {
			small = 1
		}
	}
	if big <= 0 {
		big = m / 2
		if big < small {
			big = small
		}
	}
	if frac <= 0 {
		frac = 0.25
	}
	return small, big, frac
}

// ratingReport converts a rating run's report to the protocol-agnostic
// Report shape the sweep engine consumes. MaxError/MeanError carry the L1
// error; Outputs stay nil (rating rows live on RatingReport.Outputs).
func (sc Scenario) ratingReport(rr *RatingReport) *Report {
	return &Report{
		MaxError:      rr.MaxL1Error,
		MeanError:     rr.MeanL1Error,
		MaxProbes:     int64(rr.MaxProbes),
		MeanProbes:    rr.MeanProbes,
		TotalProbes:   rr.TotalProbes,
		OptDiameter:   sc.Diameter,
		HonestLeaders: rr.HonestLeaders,
		Repetitions:   rr.Repetitions,
	}
}

// simulation builds the scenario's Simulation, on pooled state when pl is
// non-nil. The RNG splits are identical to the fluent construction: Split
// is a pure read of the root stream, so skipping the uniform instance that
// NewSimulation would generate before planting changes no coins.
func (sc Scenario) simulation(pl *Pool) *Simulation {
	cfg := sc.Config
	if cfg.Players < 1 {
		panic("collabscore: Players must be ≥ 1")
	}
	if cfg.Objects == 0 {
		cfg.Objects = cfg.Players
	}
	if cfg.Budget == 0 {
		cfg.Budget = 8
	}
	spec, err := prefgen.ParseSourceSpec(cfg.TruthSource)
	if err != nil {
		panic(fmt.Sprintf("collabscore: %v", err))
	}
	s := &Simulation{cfg: cfg, rng: xrand.New(cfg.Seed), truth: spec, pool: pl}
	switch {
	case sc.ClusterSize > 0:
		if spec.IsDense() {
			s.instance = s.pg().DiameterClusters(s.rng.Split(2), cfg.Players, cfg.Objects, sc.ClusterSize, sc.Diameter)
		} else {
			s.instance = s.pg().LazyDiameterClusters(s.rng.Split(2), cfg.Players, cfg.Objects, sc.ClusterSize, sc.Diameter, spec.Tiles)
		}
	case sc.ZipfClusters > 0:
		if spec.IsDense() {
			s.instance = s.pg().ZipfClusters(s.rng.Split(3), cfg.Players, cfg.Objects, sc.ZipfClusters, sc.ZipfAlpha, sc.Diameter)
		} else {
			s.instance = s.pg().LazyZipfClusters(s.rng.Split(3), cfg.Players, cfg.Objects, sc.ZipfClusters, sc.ZipfAlpha, sc.Diameter, spec.Tiles)
		}
	default:
		if spec.IsDense() {
			s.instance = s.pg().Uniform(s.rng.Split(1), cfg.Players, cfg.Objects)
		} else {
			s.instance = s.pg().LazyUniform(s.rng.Split(1), cfg.Players, cfg.Objects, spec.Tiles)
		}
	}
	s.rebuild()
	if sc.Dishonest > 0 {
		s.Corrupt(sc.Dishonest, sc.Strategy)
	}
	return s
}

// execute runs the scenario's protocol on the prepared simulation.
func (sc Scenario) execute(s *Simulation) *Report {
	switch sc.Protocol {
	case ProtoRun:
		return s.Run()
	case ProtoByzantine:
		return s.RunByzantine()
	case ProtoBaseline:
		return s.RunBaseline()
	case ProtoProbeAll:
		return s.RunProbeAll()
	case ProtoRandomGuess:
		return s.RunRandomGuess()
	case ProtoBudgets:
		small, big, frac := sc.capacities(s.cfg.Objects)
		return s.RunWithCapacities(s.TwoTierCapacities(small, big, frac))
	case ProtoRatings:
		panic("collabscore: ProtoRatings has no binary Simulation; use Scenario.Run or Pool.Run")
	default:
		panic(fmt.Sprintf("collabscore: unknown protocol %v", sc.Protocol))
	}
}

// run dispatches on the scenario's substrate: ProtoRatings points build a
// rating simulation, every other protocol the binary one.
func (sc Scenario) run(pl *Pool) *Report {
	if sc.Protocol == ProtoRatings {
		return sc.ratingReport(sc.ratingSimulation(pl).RunByzantine(0))
	}
	return sc.execute(sc.simulation(pl))
}

// Run executes the scenario from scratch and returns its report. It is the
// reference path: Pool.Run produces the identical report on reused
// allocations.
func (sc Scenario) Run() *Report { return sc.run(nil) }

// Build constructs the scenario's configured Simulation — planted and
// corrupted, protocol not yet run — fresh when pl is nil, pooled otherwise.
// Most callers want Run or Pool.Run; the sweep engine uses Build/Execute to
// measure the planted instance before running the protocol. ProtoRatings
// scenarios have no binary Simulation; use Run or Pool.Run for those
// (Build panics rather than constructing a wrong-substrate world).
func (sc Scenario) Build(pl *Pool) *Simulation {
	if sc.Protocol == ProtoRatings {
		panic("collabscore: ProtoRatings has no binary Simulation; use Scenario.Run or Pool.Run")
	}
	return sc.simulation(pl)
}

// Execute runs the scenario's protocol variant on a Simulation built by
// Build.
func (sc Scenario) Execute(s *Simulation) *Report { return sc.execute(s) }

// Pool runs successive scenarios on reused allocations: the truth matrix
// buffers (prefgen.Buffer), the world's probe memos and counters
// (world.Renew), and the workshare bulletin boards (core.Mem) are recycled
// across points instead of rebuilt each time, which is what makes
// thousand-point scenario grids cheap. Reports are byte-identical to
// Scenario.Run for the same scenario — pooling changes where memory comes
// from, never what is computed (TestPoolMatchesFresh pins this).
//
// A Pool is NOT safe for concurrent use; the sweep engine gives each worker
// its own. Each Run invalidates the previous Run's Simulation, World, and
// Instance on the same Pool (their storage is reused); the returned Reports
// stay valid.
type Pool struct {
	pg  prefgen.Buffer
	w   *world.World
	mem *core.Mem
	// rpg/rw are the §8 rating arena: the bit-plane truth buffer and the
	// rating world recycled across ProtoRatings points, mirroring pg/w.
	rpg multival.Buffer
	rw  *multival.World
}

// NewPool returns an empty pool; allocations are adopted from the points it
// runs.
func NewPool() *Pool { return &Pool{mem: core.NewMem()} }

// Run executes the scenario on the pool's reused allocations.
func (pl *Pool) Run(sc Scenario) *Report { return sc.run(pl) }

// NewSimulation creates a pooled simulation: like the package-level
// NewSimulation (identical output for identical calls), but drawing its
// allocations from the pool. The previous pooled simulation is invalidated.
func (pl *Pool) NewSimulation(cfg Config) *Simulation {
	return Scenario{Config: cfg}.simulation(pl)
}
