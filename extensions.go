package collabscore

// This file exposes the §8 extensions — non-binary rating scales and
// heterogeneous probe budgets — through the public API, wrapping the
// internal/multival and internal/budgets implementations.

import (
	"fmt"

	"collabscore/internal/budgets"
	"collabscore/internal/metrics"
	"collabscore/internal/multival"
	"collabscore/internal/xrand"
)

// RunWithCapacities executes the heterogeneous-budget variant of the
// protocol (§8): capacities[p] is the number of probes player p volunteers.
// Clusters form once their total capacity covers the shared probing work,
// and probing assignments are drawn proportionally to capacity, so each
// player's expected load tracks what it volunteered. The capacity slice
// must have one entry per player.
func (s *Simulation) RunWithCapacities(capacities []int) *Report {
	if len(capacities) != s.cfg.Players {
		panic(fmt.Sprintf("collabscore: %d capacities for %d players", len(capacities), s.cfg.Players))
	}
	s.w.ResetProbes()
	pr := budgets.Scaled(s.cfg.Players, capacities)
	pr.MinD, pr.MaxD = s.params.MinD, s.params.MaxD
	res := budgets.Run(s.w, s.rng.Split(14), pr)
	es := metrics.Error(s.w, res.Output)
	ps := metrics.Probes(s.w)
	return &Report{
		MaxError:    es.Max,
		MeanError:   es.Mean,
		MaxProbes:   ps.Max,
		MeanProbes:  ps.Mean,
		OptDiameter: s.instance.PlantedDiameter,
		Outputs:     res.Output,
	}
}

// TwoTierCapacities builds a capacity vector where a bigFrac fraction of
// players volunteer bigCap probes and the rest smallCap, assigned
// deterministically from the simulation's seed.
func (s *Simulation) TwoTierCapacities(smallCap, bigCap int, bigFrac float64) []int {
	return budgets.TwoTier(s.rng.Split(15), s.cfg.Players, smallCap, bigCap, bigFrac)
}

// RatingConfig describes a non-binary (0..Scale) simulation (§8).
type RatingConfig struct {
	// Players and Objects mirror Config; Objects 0 defaults to Players.
	Players int
	Objects int
	// Scale is the maximum rating (ratings live in 0..Scale).
	Scale int
	// Budget is the parameter B (clusters of ~Players/Budget users).
	Budget int
	// Seed drives all randomness.
	Seed uint64
	// FixedDiameter restricts the L1-diameter search to one guess (>0).
	FixedDiameter int
}

// RatingSimulation is the non-binary counterpart of Simulation: users rate
// objects on an integer scale, similarity is L1, and cluster aggregation
// uses medians (robust to extremist manipulation).
type RatingSimulation struct {
	cfg RatingConfig
	rng *xrand.Stream
	w   *multival.World
	pr  multival.Params
}

// RaterStrategy names a dishonest rating behavior.
type RaterStrategy int

// Available dishonest rating strategies.
const (
	// RandomRater reports consistent random ratings.
	RandomRater RaterStrategy = iota
	// Exaggerators push every rating to the nearest extreme of the scale.
	Exaggerators
	// HarshShifters report truth shifted down by half the scale (clamped).
	HarshShifters
)

// NewRatingSimulation creates a rating-scale simulation with planted taste
// clusters of the given size and L1 diameter.
func NewRatingSimulation(cfg RatingConfig, clusterSize, diameter int) *RatingSimulation {
	if cfg.Players < 1 {
		panic("collabscore: Players must be ≥ 1")
	}
	if cfg.Objects == 0 {
		cfg.Objects = cfg.Players
	}
	if cfg.Budget == 0 {
		cfg.Budget = 8
	}
	if cfg.Scale == 0 {
		cfg.Scale = 5
	}
	rng := xrand.New(cfg.Seed)
	truth, _ := multival.Generate(rng.Split(1), cfg.Players, cfg.Objects, clusterSize, diameter, cfg.Scale)
	pr := multival.Scaled(cfg.Players, cfg.Budget)
	if cfg.FixedDiameter > 0 {
		pr.MinD, pr.MaxD = cfg.FixedDiameter, cfg.FixedDiameter
	}
	return &RatingSimulation{
		cfg: cfg,
		rng: rng,
		w:   multival.NewWorld(truth, cfg.Scale),
		pr:  pr,
	}
}

// Corrupt makes k randomly chosen raters dishonest with the given strategy.
func (rs *RatingSimulation) Corrupt(k int, strat RaterStrategy) *RatingSimulation {
	perm := rs.rng.Split(2).Perm(rs.cfg.Players)
	for i := 0; i < k && i < len(perm); i++ {
		p := perm[i]
		switch strat {
		case RandomRater:
			rs.w.SetBehavior(p, multival.RandomRater{Seed: rs.cfg.Seed ^ 0xAA})
		case Exaggerators:
			rs.w.SetBehavior(p, multival.Exaggerator{})
		case HarshShifters:
			rs.w.SetBehavior(p, multival.Shifter{Delta: -(rs.cfg.Scale + 1) / 2})
		default:
			panic(fmt.Sprintf("collabscore: unknown rater strategy %d", int(strat)))
		}
	}
	return rs
}

// Tolerance returns the dishonesty tolerance n/(3B).
func (rs *RatingSimulation) Tolerance() int {
	return rs.cfg.Players / (3 * rs.cfg.Budget)
}

// RatingReport summarizes a rating-scale run.
type RatingReport struct {
	// MaxL1Error / MeanL1Error measure |w(p) − v(p)|₁ over honest raters.
	MaxL1Error  int
	MeanL1Error float64
	// MaxProbes is the worst per-rater probe count.
	MaxProbes int
	// HonestLeaders / Repetitions report election outcomes (Byzantine runs).
	HonestLeaders int
	Repetitions   int
	// Outputs holds the predicted rating vectors (one row per player,
	// values in 0..Scale).
	Outputs [][]int
}

// Run executes the generalized protocol with trusted shared coins.
func (rs *RatingSimulation) Run() *RatingReport {
	res := multival.Run(rs.w, rs.rng.Split(10), rs.pr)
	return rs.report(res.Output, 0, 0)
}

// RunByzantine executes the leader-election wrapper with the given number
// of repetitions (≤0 defaults to 5).
func (rs *RatingSimulation) RunByzantine(repetitions int) *RatingReport {
	if repetitions <= 0 {
		repetitions = 5
	}
	res := multival.RunByzantine(rs.w, rs.rng.Split(11), nil, repetitions, rs.pr)
	return rs.report(res.Output, res.HonestLeaders, res.Repetitions)
}

func (rs *RatingSimulation) report(out []multival.Ratings, leaders, reps int) *RatingReport {
	es := multival.ErrorStats(rs.w, out)
	rows := make([][]int, len(out))
	for p, r := range out {
		rows[p] = []int(r)
	}
	return &RatingReport{
		MaxL1Error:    es.Max,
		MeanL1Error:   es.Mean,
		MaxProbes:     rs.w.MaxHonestProbes(),
		HonestLeaders: leaders,
		Repetitions:   reps,
		Outputs:       rows,
	}
}
