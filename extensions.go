package collabscore

// This file exposes the §8 extensions — non-binary rating scales and
// heterogeneous probe budgets — through the public API, wrapping the
// internal/multival and internal/budgets implementations. Since PR 5 both
// run on the same vectorized engine as the binary protocol (bit-plane
// ratings, CAS probe memos, par.Runner schedules, pooled construction; see
// DESIGN.md §12), and both are sweepable: Scenario/Pool run them through
// ProtoRatings and ProtoBudgets, so grids can quantify over rating scales
// and capacity tiers like any other axis.

import (
	"fmt"

	"collabscore/internal/bitvec"
	"collabscore/internal/budgets"
	"collabscore/internal/metrics"
	"collabscore/internal/multival"
	"collabscore/internal/prefgen"
	"collabscore/internal/xrand"
)

// RunWithCapacities executes the heterogeneous-budget variant of the
// protocol (§8): capacities[p] is the number of probes player p volunteers.
// Clusters form once their total capacity covers the shared probing work,
// and probing assignments are drawn proportionally to capacity, so each
// player's expected load tracks what it volunteered. The capacity slice
// must have one entry per player. The run inherits the simulation's phase
// schedule (Params().PhaseSerial/PhaseWorkers) and its neighbor index
// (Config.NeighborIndex / Params().NeighborIndex).
func (s *Simulation) RunWithCapacities(capacities []int) *Report {
	if len(capacities) != s.cfg.Players {
		panic(fmt.Sprintf("collabscore: %d capacities for %d players", len(capacities), s.cfg.Players))
	}
	s.w.ResetProbes()
	pr := budgets.Scaled(s.cfg.Players, capacities)
	pr.MinD, pr.MaxD = s.params.MinD, s.params.MaxD
	pr.PhaseSerial = s.params.PhaseSerial
	pr.PhaseWorkers = s.params.PhaseWorkers
	pr.PeelSerial = s.params.PeelSerial
	pr.NeighborIndex = s.params.NeighborIndex
	res := budgets.Run(s.w, s.rng.Split(14), pr)
	es := metrics.Error(s.w, res.Output)
	ps := metrics.Probes(s.w)
	return &Report{
		MaxError:    es.Max,
		MeanError:   es.Mean,
		MaxProbes:   ps.Max,
		MeanProbes:  ps.Mean,
		TotalProbes: ps.Total,
		OptDiameter: s.instance.PlantedDiameter,
		Outputs:     res.Output,
	}
}

// TwoTierCapacities builds a capacity vector where a bigFrac fraction of
// players volunteer bigCap probes and the rest smallCap, assigned
// deterministically from the simulation's seed.
func (s *Simulation) TwoTierCapacities(smallCap, bigCap int, bigFrac float64) []int {
	return budgets.TwoTier(s.rng.Split(15), s.cfg.Players, smallCap, bigCap, bigFrac)
}

// RatingConfig describes a non-binary (0..Scale) simulation (§8).
type RatingConfig struct {
	// Players and Objects mirror Config; Objects 0 defaults to Players.
	Players int
	Objects int
	// Scale is the maximum rating (ratings live in 0..Scale); 0 defaults
	// to 5.
	Scale int
	// Budget is the parameter B (clusters of ~Players/Budget users).
	Budget int
	// Seed drives all randomness.
	Seed uint64
	// FixedDiameter restricts the L1-diameter search to one guess (>0).
	FixedDiameter int
	// TruthSource selects the rating-matrix representation, mirroring
	// Config.TruthSource: "" or "dense" materializes the bit-sliced matrix,
	// "lazy" keeps only the cluster centers plus per-player sparse edits.
	// Tile counts ("lazy:TILES") are accepted and ignored — the rating
	// source has no tile cache; its centers are already materialized. All
	// representations are bit-identical. See DESIGN.md §14.
	TruthSource string
}

// RatingSimulation is the non-binary counterpart of Simulation: users rate
// objects on an integer scale, similarity is L1, and cluster aggregation
// uses medians (robust to extremist manipulation). It runs on the same
// vectorized engine as the binary protocol: ratings are bit-sliced into
// ⌈log₂(Scale+1)⌉ bit-planes and the probe memo charges through the same
// lock-free CAS path (DESIGN.md §12).
type RatingSimulation struct {
	cfg RatingConfig
	rng *xrand.Stream
	w   *multival.World
	pr  multival.Params
}

// NewRatingSimulation creates a rating-scale simulation with planted taste
// clusters of the given size and L1 diameter.
func NewRatingSimulation(cfg RatingConfig, clusterSize, diameter int) *RatingSimulation {
	return newRatingSimulation(cfg, clusterSize, diameter, nil)
}

// newRatingSimulation is the pool-aware constructor: pl non-nil draws the
// truth planes and world from the pool's rating arena. The coins drawn are
// identical either way, so pooled construction is bit-identical to fresh.
func newRatingSimulation(cfg RatingConfig, clusterSize, diameter int, pl *Pool) *RatingSimulation {
	if cfg.Players < 1 {
		panic("collabscore: Players must be ≥ 1")
	}
	if cfg.Objects == 0 {
		cfg.Objects = cfg.Players
	}
	if cfg.Budget == 0 {
		cfg.Budget = 8
	}
	if cfg.Scale == 0 {
		cfg.Scale = 5
	}
	spec, err := prefgen.ParseSourceSpec(cfg.TruthSource)
	if err != nil {
		panic(fmt.Sprintf("collabscore: %v", err))
	}
	rng := xrand.New(cfg.Seed)
	var buf *multival.Buffer
	if pl != nil {
		buf = &pl.rpg
	}
	var src multival.RatingSource
	if spec.IsDense() {
		truth, _ := buf.Generate(rng.Split(1), cfg.Players, cfg.Objects, clusterSize, diameter, cfg.Scale)
		src = multival.NewDensePlanes(truth)
	} else {
		src, _ = buf.LazyGenerate(rng.Split(1), cfg.Players, cfg.Objects, clusterSize, diameter, cfg.Scale)
	}
	pr := multival.Scaled(cfg.Players, cfg.Budget)
	if cfg.FixedDiameter > 0 {
		pr.MinD, pr.MaxD = cfg.FixedDiameter, cfg.FixedDiameter
	}
	var w *multival.World
	if pl != nil {
		w = multival.RenewFrom(pl.rw, src, cfg.Scale)
		pl.rw = w
	} else {
		w = multival.NewWorldFrom(src, cfg.Scale)
	}
	return &RatingSimulation{cfg: cfg, rng: rng, w: w, pr: pr}
}

// Corrupt makes k randomly chosen raters dishonest with the given
// strategy's rating-scale behavior. Only rating-capable strategies apply
// (Strategy.RatingCapable): RandomLiar reports consistent random ratings,
// FlipAll mirrors the scale (scale − truth), ZeroSpammers always rate 0,
// Exaggerators rate at the extremes, HarshShifters shift truth down by
// half the scale.
func (rs *RatingSimulation) Corrupt(k int, strat Strategy) *RatingSimulation {
	var b multival.Behavior
	switch strat {
	case RandomLiar:
		b = multival.RandomRater{Seed: rs.cfg.Seed ^ 0xAA}
	case FlipAll:
		b = multival.Inverter{}
	case ZeroSpammers:
		b = multival.Shifter{Delta: -rs.cfg.Scale}
	case Exaggerators:
		b = multival.Exaggerator{}
	case HarshShifters:
		b = multival.Shifter{Delta: -(rs.cfg.Scale + 1) / 2}
	default:
		panic(fmt.Sprintf("collabscore: strategy %v has no rating-scale behavior", strat))
	}
	perm := rs.rng.Split(2).Perm(rs.cfg.Players)
	for i := 0; i < k && i < len(perm); i++ {
		rs.w.SetBehavior(perm[i], b)
	}
	return rs
}

// Tolerance returns the dishonesty tolerance n/(3B).
func (rs *RatingSimulation) Tolerance() int {
	return rs.cfg.Players / (3 * rs.cfg.Budget)
}

// Params exposes the resolved rating-protocol parameters (mutable before
// Run), including the phase-schedule flags shared with core.Params.
func (rs *RatingSimulation) Params() *multival.Params { return &rs.pr }

// World exposes the underlying rating world for advanced use.
func (rs *RatingSimulation) World() *multival.World { return rs.w }

// RatingReport summarizes a rating-scale run.
type RatingReport struct {
	// MaxL1Error / MeanL1Error measure |w(p) − v(p)|₁ over honest raters.
	MaxL1Error  int
	MeanL1Error float64
	// MaxProbes is the worst per-rater probe count; MeanProbes the honest
	// average and TotalProbes the system-wide total.
	MaxProbes   int
	MeanProbes  float64
	TotalProbes int64
	// HonestLeaders / Repetitions report election outcomes (Byzantine runs).
	HonestLeaders int
	Repetitions   int
	// NumClusters holds the per-diameter-guess cluster counts of the run
	// (for Byzantine runs: of the last honest-leader repetition; empty when
	// every leader was dishonest).
	NumClusters []int
	// Outputs holds the predicted rating vectors (one row per player,
	// values in 0..Scale).
	Outputs [][]int
}

// Run executes the generalized protocol with trusted shared coins.
func (rs *RatingSimulation) Run() *RatingReport {
	rs.w.ResetProbes()
	res := multival.Run(rs.w, rs.rng.Split(10), rs.pr)
	return rs.report(res.Output, res.NumClusters, 0, 0)
}

// RunByzantine executes the leader-election wrapper with the given number
// of repetitions (≤0 defaults to 5). The wrapper itself is the generic §7
// skeleton shared with the binary protocol (core.RunByzantineOver).
func (rs *RatingSimulation) RunByzantine(repetitions int) *RatingReport {
	if repetitions <= 0 {
		repetitions = 5
	}
	rs.w.ResetProbes()
	res := multival.RunByzantine(rs.w, rs.rng.Split(11), nil, repetitions, rs.pr)
	return rs.report(res.Output, res.NumClusters, res.HonestLeaders, res.Repetitions)
}

func (rs *RatingSimulation) report(out []bitvec.Planes, clusters []int, leaders, reps int) *RatingReport {
	es := multival.ErrorStats(rs.w, out)
	rows := make([][]int, len(out))
	for p, r := range out {
		rows[p] = r.Ints()
	}
	return &RatingReport{
		MaxL1Error:    es.Max,
		MeanL1Error:   es.Mean,
		MaxProbes:     int(rs.w.MaxHonestProbes()),
		MeanProbes:    rs.w.MeanHonestProbes(),
		TotalProbes:   rs.w.TotalProbes(),
		HonestLeaders: leaders,
		Repetitions:   reps,
		NumClusters:   append([]int(nil), clusters...),
		Outputs:       rows,
	}
}
