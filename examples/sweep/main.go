// Sweep: generate the CSV series behind the paper's two headline plots —
// error vs. dishonest fraction (Theorem 14) and probes vs. n (Lemma 11) —
// ready for a plotting tool. Demonstrates driving scenario grids through
// the pooled sweep engine (internal/sweep) instead of hand-rolled loops:
// each series is a declarative Spec, expanded to deterministic per-point
// seeds and run on a worker pool with reused allocations.
//
// Run with:
//
//	go run ./examples/sweep > sweep.csv
//
// Note: since the sweep-engine rebuild the per-point seeds are derived from
// the spec's root seed (independent per coordinate), so the numbers differ
// from the pre-engine output of this example; the CSV columns are
// unchanged. See README.md "Running scenario sweeps".
package main

import (
	"fmt"
	"log"

	"collabscore/internal/sweep"
)

func main() {
	// Series 1: the Theorem 14 shape. One spec, dishonest-count axis; all
	// points share the same planted world (the dishonest axis is excluded
	// from seed derivation), so the error trend isolates the corruption
	// effect exactly.
	series1 := sweep.Spec{
		Name: "error-vs-dishonest", Seed: 11,
		Players:      []int{512},
		ClusterSizes: []int{64},
		Diameters:    []int{32},
		FixDiameter:  true,
		Dishonest:    []int{0, 5, 10, 21, 42, 63},
		Strategies:   []string{"colluders"},
		Protocols:    []string{"byzantine"},
	}
	pts, err := sweep.Expand(series1)
	if err != nil {
		log.Fatal(err)
	}
	recs, err := sweep.Run(pts, sweep.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("# series 1: max honest error vs dishonest players (n=512, B=8, D=32, tolerance=21)")
	fmt.Println("series,dishonest,max_error,mean_error,honest_leaders")
	for _, rec := range recs {
		fmt.Printf("byzantine,%d,%d,%.2f,%d/%d\n", rec.Dishonest, rec.MaxError, rec.MeanError,
			rec.HonestLeaders, rec.Repetitions)
	}

	// Series 2: the Lemma 11 shape — probes vs n at a fixed n/32 diameter
	// ratio. The diameter tracks n, so each n is its own one-point spec;
	// Merge glues them into one grid for a single engine run.
	var lists [][]sweep.Point
	for _, n := range []int{512, 1024, 2048} {
		sp := sweep.Spec{
			Name: "probes-vs-n", Seed: 13,
			Players:      []int{n},
			ClusterSizes: []int{n / 8},
			Diameters:    []int{n / 32},
			FixDiameter:  true,
			Protocols:    []string{"run"},
		}
		l, err := sweep.Expand(sp)
		if err != nil {
			log.Fatal(err)
		}
		lists = append(lists, l)
	}
	grid, err := sweep.Merge(lists...)
	if err != nil {
		log.Fatal(err)
	}
	recs, err = sweep.Run(grid, sweep.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("# series 2: max probes per player vs n (B=8, D=n/32, single guess)")
	fmt.Println("series,n,protocol_probes,probe_all,ratio")
	for _, rec := range recs {
		fmt.Printf("probes,%d,%d,%d,%.3f\n", rec.Players, rec.MaxProbes, rec.Players,
			float64(rec.MaxProbes)/float64(rec.Players))
	}
}
