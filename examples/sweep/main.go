// Sweep: generate the CSV series behind the paper's two headline plots —
// error vs. dishonest fraction (Theorem 14) and probes vs. n (Lemma 11) —
// ready for a plotting tool. Demonstrates driving many simulations through
// the public API.
//
// Run with:
//
//	go run ./examples/sweep > sweep.csv
package main

import (
	"fmt"

	"collabscore"
)

func main() {
	fmt.Println("# series 1: max honest error vs dishonest players (n=512, B=8, D=32, tolerance=21)")
	fmt.Println("series,dishonest,max_error,mean_error,honest_leaders")
	for _, f := range []int{0, 5, 10, 21, 42, 63} {
		sim := collabscore.NewSimulation(collabscore.Config{
			Players: 512, Budget: 8, Seed: 11, FixedDiameter: 32,
		})
		sim.PlantClusters(64, 32)
		if f > 0 {
			sim.Corrupt(f, collabscore.Colluders)
		}
		rep := sim.RunByzantine()
		fmt.Printf("byzantine,%d,%d,%.2f,%d/%d\n", f, rep.MaxError, rep.MeanError,
			rep.HonestLeaders, rep.Repetitions)
	}

	fmt.Println("# series 2: max probes per player vs n (B=8, D=n/32, single guess)")
	fmt.Println("series,n,protocol_probes,probe_all,ratio")
	for _, n := range []int{512, 1024, 2048} {
		sim := collabscore.NewSimulation(collabscore.Config{
			Players: n, Budget: 8, Seed: 13, FixedDiameter: n / 32,
		})
		sim.PlantClusters(n/8, n/32)
		rep := sim.Run()
		fmt.Printf("probes,%d,%d,%d,%.3f\n", n, rep.MaxProbes, n,
			float64(rep.MaxProbes)/float64(n))
	}
}
