// Recommender: the §8 non-binary extension on a synthetic streaming-service
// population, driven through the sweepable scenario path. Users rate titles
// on an integer scale, taste groups have bounded L1 spread, and a fraction
// of accounts are bots that rate at the extremes; median aggregation inside
// taste clusters absorbs the bots.
//
// Since PR 5 the rating protocol is a first-class sweep protocol
// (ProtoRatings), so instead of one hand-built simulation this example
// expands a small grid over the RATING SCALE — the §8 axis the unified
// engine opened — with paired honest/bot columns per scale, runs it
// through the pooled sweep engine, and prints the table.
//
// Run with:
//
//	go run ./examples/recommender
package main

import (
	"fmt"

	"collabscore"
	"collabscore/internal/sweep"
)

func main() {
	const (
		users  = 512
		titles = 512
		budget = 8
		spread = 32 // L1 taste spread within a group
	)

	spec := sweep.Spec{
		Name:         "recommender-scales",
		Seed:         99,
		Players:      []int{users},
		ClusterSizes: []int{users / budget},
		Diameters:    []int{spread},
		FixDiameter:  true,
		Dishonest:    []int{0, users / (3 * budget)},
		Strategies:   []string{collabscore.Exaggerators.String()},
		Protocols:    []string{collabscore.ProtoRatings.String()},
		Scales:       []int{2, 5, 10},
	}
	points, err := sweep.Expand(spec)
	if err != nil {
		panic(err)
	}
	bots := users / (3 * budget)
	fmt.Printf("%d users × %d titles; taste spread %d; %d bots rating at the extremes.\n",
		users, titles, spread, bots)
	fmt.Printf("sweeping the rating scale over %v → %d grid points\n\n",
		spec.Scales, len(points))

	recs, err := sweep.Run(points, sweep.Options{})
	if err != nil {
		panic(err)
	}

	fmt.Printf("%-8s %-6s %-12s %-12s %-12s %s\n",
		"scale", "bots", "max L1 err", "mean L1 err", "max probes", "honest leaders")
	for _, rec := range recs {
		fmt.Printf("0–%-6d %-6d %-12d %-12.1f %-12d %d/%d\n",
			rec.Scale, rec.Dishonest, rec.MaxError, rec.MeanError,
			rec.MaxProbes, rec.HonestLeaders, rec.Repetitions)
	}

	fmt.Printf("\nEvery user rated at most a fraction of the %d titles personally;\n", titles)
	fmt.Printf("the bot columns stay within the taste spread because cluster medians\n")
	fmt.Printf("absorb extremist ratings (Lemma 13's rank-statistics analogue).\n")
}
