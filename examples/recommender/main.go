// Recommender: the §8 non-binary extension on a synthetic streaming-service
// population, driven entirely through the public API. Users rate titles on
// a 0–5 scale, taste groups have bounded L1 spread, and a fraction of
// accounts are bots that rate at the extremes. Median aggregation inside
// taste clusters absorbs the bots.
//
// Run with:
//
//	go run ./examples/recommender
package main

import (
	"fmt"

	"collabscore"
)

func main() {
	const (
		users  = 512
		titles = 512
		scale  = 5
		budget = 8
		spread = 32 // L1 taste spread within a group
	)

	rs := collabscore.NewRatingSimulation(collabscore.RatingConfig{
		Players:       users,
		Objects:       titles,
		Scale:         scale,
		Budget:        budget,
		Seed:          99,
		FixedDiameter: spread,
	}, users/budget, spread)

	bots := rs.Tolerance()
	rs.Corrupt(bots, collabscore.Exaggerators)
	fmt.Printf("%d users × %d titles on a 0–%d scale; %d bots rating at the extremes.\n\n",
		users, titles, scale, bots)

	rep := rs.RunByzantine(5)
	fmt.Printf("predicted complete rating matrices for all honest users:\n")
	fmt.Printf("  max L1 error   %d (taste spread %d, 0–%d scale over %d titles)\n",
		rep.MaxL1Error, spread, scale, titles)
	fmt.Printf("  mean L1 error  %.1f\n", rep.MeanL1Error)
	fmt.Printf("  worst user rated %d titles personally (rating everything: %d)\n",
		rep.MaxProbes, titles)
	fmt.Printf("  honest leaders elected in %d/%d repetitions\n",
		rep.HonestLeaders, rep.Repetitions)

	fmt.Printf("\nsample of user 0's predicted ratings: ")
	for o := 0; o < 10; o++ {
		fmt.Printf("%d ", rep.Outputs[0][o])
	}
	fmt.Println()
}
