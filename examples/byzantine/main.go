// Byzantine attack gallery: run every dishonest strategy against the
// protocol at the paper's tolerance n/(3B) and past it, printing the
// resulting accuracy. Reproduces the qualitative content of §7: below
// tolerance no strategy moves the error; beyond it the guarantees erode.
//
// Run with:
//
//	go run ./examples/byzantine
package main

import (
	"fmt"

	"collabscore"
)

func main() {
	const (
		players  = 512
		budget   = 8
		diameter = 32
	)

	strategies := []collabscore.Strategy{
		collabscore.RandomLiar,
		collabscore.FlipAll,
		collabscore.Colluders,
		collabscore.ClusterHijackers,
		collabscore.StrangeObjectAttackers,
		collabscore.ZeroSpammers,
	}

	baselineRep := fresh(0, collabscore.RandomLiar).Run()
	fmt.Printf("honest run: max error %d (planted diameter %d)\n\n", baselineRep.MaxError, diameter)

	tolerance := fresh(0, collabscore.RandomLiar).Tolerance()
	fmt.Printf("%-18s %14s %14s\n", "strategy", "err @tolerance", "err @3×tolerance")
	for _, strat := range strategies {
		atTol := fresh(tolerance, strat).RunByzantine().MaxError
		past := fresh(3*tolerance, strat).RunByzantine().MaxError
		fmt.Printf("%-18s %14d %14d\n", strat, atTol, past)
	}
	fmt.Printf("\ntolerance n/(3B) = %d players; below it every attack is absorbed.\n", tolerance)
}

func fresh(dishonest int, strat collabscore.Strategy) *collabscore.Simulation {
	sim := collabscore.NewSimulation(collabscore.Config{
		Players:       512,
		Budget:        8,
		Seed:          7,
		FixedDiameter: 32,
	})
	sim.PlantClusters(64, 32)
	if dishonest > 0 {
		sim.Corrupt(dishonest, strat)
	}
	return sim
}
