// Peer review: the paper's motivating scenario (§1). A program committee of
// reviewers must form an opinion on every submission, but nobody has time
// to read them all. Reviewers with similar tastes share the reading load;
// some reviewers are lazy (scoring at random) and some collude to push
// their colleagues' papers.
//
// Run with:
//
//	go run ./examples/peerreview
package main

import (
	"fmt"

	"collabscore"
)

func main() {
	const (
		reviewers = 512 // program committee (large conference!)
		papers    = 512
		budget    = 8 // each taste-camp has reviewers/budget = 64 members
		tasteGap  = 24
	)

	fmt.Printf("%d reviewers, %d submissions.\n", reviewers, papers)
	fmt.Printf("Reviewers form taste camps of %d whose members disagree on ≤ %d papers.\n\n",
		reviewers/budget, tasteGap)

	// The chairs have a rough estimate of the taste gap, so the protocol
	// searches diameters near it instead of the full doubling range (the
	// small-D guesses would have every reviewer read most papers at this
	// committee size; see DESIGN.md §4 on laptop-scale constants).
	sim := collabscore.NewSimulation(collabscore.Config{
		Players:       reviewers,
		Objects:       papers,
		Budget:        budget,
		Seed:          13,
		FixedDiameter: tasteGap,
	})
	sim.PlantClusters(reviewers/budget, tasteGap)
	// Three election repetitions keep the reading load low while still
	// making an all-dishonest-chairs run vanishingly unlikely.
	sim.Params().ByzIterations = 3

	// The lazy reviewers score papers at random without reading them; the
	// colluding bloc coordinates on a fixed score sheet favoring their
	// colleagues' papers.
	lazy := sim.Tolerance() / 2
	bloc := sim.Tolerance() - lazy
	sim.Corrupt(lazy, collabscore.RandomLiar)
	sim.Corrupt(bloc, collabscore.Colluders)
	fmt.Printf("%d lazy reviewers and a colluding bloc of %d (tolerance: %d).\n\n",
		lazy, bloc, sim.Tolerance())

	rep := sim.RunByzantine()
	fmt.Println("committee-wide scoring finished:")
	fmt.Println(rep)
	fmt.Printf("\nEvery honest reviewer now has a predicted opinion on all %d papers.\n", papers)
	fmt.Printf("Worst reviewer read %d papers (reading everything: %d).\n", rep.MaxProbes, papers)
	fmt.Printf("Worst prediction disagrees with the reviewer's true taste on %d papers (taste gap %d).\n",
		rep.MaxError, tasteGap)
	fmt.Printf("Honest chairs were elected in %d/%d protocol repetitions.\n",
		rep.HonestLeaders, rep.Repetitions)
}
