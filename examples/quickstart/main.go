// Quickstart: plant clusters of like-minded players, run the protocol, and
// compare its accuracy and probe cost against probing everything.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"

	"collabscore"
)

func main() {
	const (
		players  = 1024
		budget   = 8  // clusters of players/budget = 128 like-minded players
		diameter = 32 // members of a cluster disagree on ≤ 32 objects
	)

	// FixedDiameter pins the protocol to the correct correlation guess so
	// the probe savings are visible at this scale; omit it to run the full
	// diameter-doubling search of the paper (which multiplies probe cost
	// by the number of guesses — see DESIGN.md §4).
	sim := collabscore.NewSimulation(collabscore.Config{
		Players:       players,
		Budget:        budget,
		Seed:          42,
		FixedDiameter: diameter,
	})
	sim.PlantClusters(players/budget, diameter)

	fmt.Println("== CalculatePreferences (honest players) ==")
	rep := sim.Run()
	fmt.Println(rep)
	fmt.Printf("→ every player predicted all %d preferences within %d errors\n",
		players, rep.MaxError)
	fmt.Printf("→ probing everything would cost %d probes per player; the protocol's max was %d\n\n",
		players, rep.MaxProbes)

	fmt.Println("== same scenario, the full tolerance n/(3B) corrupted ==")
	sim2 := collabscore.NewSimulation(collabscore.Config{
		Players:       players,
		Budget:        budget,
		Seed:          42,
		FixedDiameter: diameter,
	})
	sim2.PlantClusters(players/budget, diameter)
	sim2.Corrupt(sim2.Tolerance(), collabscore.RandomLiar)
	rep2 := sim2.RunByzantine()
	fmt.Println(rep2)
	fmt.Printf("→ %d dishonest players caused no asymptotic accuracy loss (max error %d vs %d honest)\n",
		sim2.Tolerance(), rep2.MaxError, rep.MaxError)
}
