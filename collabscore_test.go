package collabscore

import (
	"strings"
	"testing"
)

func TestQuickstartFlow(t *testing.T) {
	sim := NewSimulation(Config{Players: 512, Objects: 512, Budget: 8, Seed: 42, FixedDiameter: 32})
	sim.PlantClusters(64, 32)
	rep := sim.Run()
	if rep.MaxError > 64 {
		t.Fatalf("max error %d for planted diameter 32", rep.MaxError)
	}
	if rep.MaxProbes <= 0 || rep.MaxProbes > 512 {
		t.Fatalf("max probes %d out of range", rep.MaxProbes)
	}
	if rep.OptDiameter != 32 {
		t.Fatalf("OptDiameter = %d", rep.OptDiameter)
	}
	if len(rep.Outputs) != 512 {
		t.Fatalf("outputs = %d", len(rep.Outputs))
	}
}

func TestByzantineFlow(t *testing.T) {
	sim := NewSimulation(Config{Players: 512, Budget: 8, Seed: 7, FixedDiameter: 32})
	sim.PlantClusters(64, 32)
	sim.Corrupt(sim.Tolerance(), RandomLiar)
	rep := sim.RunByzantine()
	if rep.MaxError > 64 {
		t.Fatalf("Byzantine max error %d", rep.MaxError)
	}
	if rep.Repetitions == 0 || rep.HonestLeaders == 0 {
		t.Fatalf("election stats missing: %+v", rep)
	}
	if !strings.Contains(rep.String(), "honest leaders") {
		t.Fatalf("String() = %q", rep.String())
	}
}

func TestDefaults(t *testing.T) {
	sim := NewSimulation(Config{Players: 64, Seed: 1})
	if sim.cfg.Objects != 64 {
		t.Fatalf("Objects default = %d", sim.cfg.Objects)
	}
	if sim.cfg.Budget != 8 {
		t.Fatalf("Budget default = %d", sim.cfg.Budget)
	}
	if sim.Tolerance() != 64/24 {
		t.Fatalf("Tolerance = %d", sim.Tolerance())
	}
}

func TestBaselines(t *testing.T) {
	sim := NewSimulation(Config{Players: 256, Budget: 8, Seed: 3, FixedDiameter: 16})
	sim.PlantClusters(32, 16)
	pa := sim.RunProbeAll()
	if pa.MaxError != 0 || pa.MaxProbes != 256 {
		t.Fatalf("probe-all report %+v", pa)
	}
	rg := sim.RunRandomGuess()
	if rg.MaxProbes != 0 || rg.MeanError < 64 {
		t.Fatalf("random-guess report %+v", rg)
	}
	bl := sim.RunBaseline()
	if bl.MaxError > 5*16 {
		t.Fatalf("baseline max error %d", bl.MaxError)
	}
}

func TestAllStrategiesRun(t *testing.T) {
	for _, strat := range []Strategy{RandomLiar, FlipAll, Colluders, ClusterHijackers, StrangeObjectAttackers, ZeroSpammers} {
		sim := NewSimulation(Config{Players: 256, Budget: 8, Seed: 5, FixedDiameter: 16})
		sim.PlantClusters(32, 16)
		sim.Corrupt(sim.Tolerance(), strat)
		rep := sim.Run()
		if rep.MaxError > 2*16 {
			t.Fatalf("%v: max error %d", strat, rep.MaxError)
		}
		if strat.String() == "" {
			t.Fatal("empty strategy name")
		}
	}
}

func TestPlantZipf(t *testing.T) {
	sim := NewSimulation(Config{Players: 256, Budget: 8, Seed: 9})
	sim.PlantZipf(5, 1.2, 8)
	if len(sim.Instance().Centers) != 5 {
		t.Fatalf("Zipf centers = %d", len(sim.Instance().Centers))
	}
}

func TestDeterministicReports(t *testing.T) {
	mk := func() *Report {
		sim := NewSimulation(Config{Players: 256, Budget: 8, Seed: 11, FixedDiameter: 16})
		sim.PlantClusters(32, 16)
		return sim.Run()
	}
	a, b := mk(), mk()
	if a.MaxError != b.MaxError || a.MaxProbes != b.MaxProbes {
		t.Fatal("same seed produced different reports")
	}
}

func TestPanicsOnBadConfig(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewSimulation(Config{Players: 0})
}
