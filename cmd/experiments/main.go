// Command experiments regenerates the paper-reproduction tables (E1–E12;
// see DESIGN.md §5 for the claim → experiment mapping and EXPERIMENTS.md
// for recorded results).
//
// Usage:
//
//	experiments -list
//	experiments -run E9
//	experiments -run all -n 1024 -b 8 -trials 3
//	experiments -run E7 -csv
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"collabscore/internal/experiments"
)

func main() {
	var (
		run    = flag.String("run", "", "experiment id (E1..E12) or 'all'")
		list   = flag.Bool("list", false, "list experiments")
		n      = flag.Int("n", 1024, "base player count")
		b      = flag.Int("b", 8, "base budget parameter")
		trials = flag.Int("trials", 3, "trials per configuration")
		seed   = flag.Uint64("seed", 2010, "random seed")
		quick  = flag.Bool("quick", false, "shrink sweeps for a fast pass")
		csv    = flag.Bool("csv", false, "emit CSV instead of aligned tables")
		outDir = flag.String("out", "", "also write one .txt and .csv file per experiment into this directory")
	)
	flag.Parse()

	if *list || *run == "" {
		fmt.Println("available experiments:")
		for _, e := range experiments.All() {
			fmt.Printf("  %-4s %-28s %s\n", e.ID, e.Title, e.Claim)
		}
		fmt.Println("ablations:")
		for _, e := range experiments.Ablations() {
			fmt.Printf("  %-4s %-28s %s\n", e.ID, e.Title, e.Claim)
		}
		if *run == "" {
			fmt.Println("\nuse -run <id>, -run all, or -run ablations")
		}
		return
	}

	cfg := experiments.Config{N: *n, B: *b, Trials: *trials, Seed: *seed, Quick: *quick}
	var todo []experiments.Experiment
	switch *run {
	case "all":
		todo = experiments.All()
	case "ablations":
		todo = experiments.Ablations()
	case "everything":
		todo = experiments.AllWithAblations()
	default:
		e, ok := experiments.ByID(*run)
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown experiment %q\n", *run)
			os.Exit(2)
		}
		todo = []experiments.Experiment{e}
	}

	if *outDir != "" {
		if err := os.MkdirAll(*outDir, 0o755); err != nil {
			fmt.Fprintf(os.Stderr, "creating %s: %v\n", *outDir, err)
			os.Exit(1)
		}
	}
	for _, e := range todo {
		start := time.Now()
		tb := e.Run(cfg)
		if *csv {
			fmt.Print(tb.CSV())
		} else {
			fmt.Println(tb.Render())
		}
		fmt.Printf("# %s finished in %v\n\n", e.ID, time.Since(start).Round(time.Millisecond))
		if *outDir != "" {
			base := filepath.Join(*outDir, e.ID)
			if err := os.WriteFile(base+".txt", []byte(tb.Render()), 0o644); err != nil {
				fmt.Fprintf(os.Stderr, "writing %s.txt: %v\n", base, err)
				os.Exit(1)
			}
			if err := os.WriteFile(base+".csv", []byte(tb.CSV()), 0o644); err != nil {
				fmt.Fprintf(os.Stderr, "writing %s.csv: %v\n", base, err)
				os.Exit(1)
			}
			if chart, ok := experiments.ChartFor(e.ID, tb); ok {
				if err := os.WriteFile(base+".svg", []byte(chart.Render()), 0o644); err != nil {
					fmt.Fprintf(os.Stderr, "writing %s.svg: %v\n", base, err)
					os.Exit(1)
				}
			}
		}
	}
}
