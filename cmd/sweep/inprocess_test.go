package main

import (
	"context"
	"net/http/httptest"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"collabscore/internal/fleet"
	"collabscore/internal/sweep"
)

// In-process exercises of the CLI's mode functions and flag parsers (the
// process-spawning drills live in main_test.go and skip under -short).

func TestFlagListParsers(t *testing.T) {
	if got := intList("1,2, 3,,4"); !reflect.DeepEqual(got, []int{1, 2, 3, 4}) {
		t.Fatalf("intList: %v", got)
	}
	if got := intList(""); got != nil {
		t.Fatalf("intList empty: %v", got)
	}
	if got := floatList("0.5,1.25"); !reflect.DeepEqual(got, []float64{0.5, 1.25}) {
		t.Fatalf("floatList: %v", got)
	}
	if got := strList(" a, ,b,"); !reflect.DeepEqual(got, []string{"a", "b"}) {
		t.Fatalf("strList: %v", got)
	}
	tiers := tierList("16:256:0.25,default")
	if len(tiers) != 2 || tiers[0].Small != 16 || tiers[0].Big != 256 {
		t.Fatalf("tierList: %+v", tiers)
	}
}

func smokePoints(t *testing.T) []sweep.Point {
	t.Helper()
	pts, err := sweep.Expand(sweep.Spec{
		Seed: 23, Trials: 1,
		Players: []int{48}, ClusterSizes: []int{16}, Diameters: []int{4},
		Dishonest: []int{0, 2}, Strategies: []string{"colluders"},
		Protocols: []string{"run"}, FixDiameter: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	return pts
}

// TestCoordinatorModeLocalOnly drives coordinatorMode end to end with no
// workers: the local fallback drains the grid, the checkpoint lands, and
// the function returns (no os.Exit on the happy path).
func TestCoordinatorModeLocalOnly(t *testing.T) {
	pts := smokePoints(t)
	out := filepath.Join(t.TempDir(), "fleet.jsonl")
	stop := make(chan struct{})
	coordinatorMode(pts, "127.0.0.1:0", out, false, false, 1,
		100*time.Millisecond, time.Millisecond, true, stop)

	f, err := os.Open(out)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	recs, _, err := sweep.ReadRecords(f)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != len(pts) {
		t.Fatalf("checkpoint holds %d records for %d points", len(recs), len(pts))
	}
}

// TestWorkerModeAgainstCoordinator runs workerMode in-process against a
// served coordinator until the grid completes.
func TestWorkerModeAgainstCoordinator(t *testing.T) {
	pts := smokePoints(t)
	c, err := fleet.NewCoordinator(pts, fleet.CoordinatorOptions{
		LeaseTTL: time.Second, LocalGrace: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(c.Handler())
	defer srv.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	runDone := make(chan error, 1)
	var recs []sweep.Record
	go func() {
		var err error
		recs, err = c.Run(ctx)
		runDone <- err
	}()

	workerMode(srv.URL+"/", 1, 2, 7, false, nil)

	if err := <-runDone; err != nil {
		t.Fatal(err)
	}
	if len(recs) != len(pts) {
		t.Fatalf("coordinator finished with %d records for %d points", len(recs), len(pts))
	}
}

// TestMergeModeAndSummary covers mergeMode's happy path plus the summary
// printer with failed points.
func TestMergeModeAndSummary(t *testing.T) {
	pts := smokePoints(t)
	dir := t.TempDir()
	a := filepath.Join(dir, "a.jsonl")
	recs, err := sweep.RunFile(pts, a, false, sweep.Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	out := filepath.Join(dir, "merged.jsonl")
	mergeMode([]string{a, a}, out) // self-overlap: pure dedup

	f, err := os.Open(out)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	merged, _, err := sweep.ReadRecords(f)
	if err != nil {
		t.Fatal(err)
	}
	if len(merged) != len(recs) {
		t.Fatalf("merged %d records, want %d", len(merged), len(recs))
	}

	printSummary(recs, []string{"some-key"})
}
