package main

import (
	"bufio"
	"os"
	"os/exec"
	"path/filepath"
	"reflect"
	"regexp"
	"strings"
	"syscall"
	"testing"
	"time"

	"collabscore/internal/sweep"
)

// smokeSpec is the grid the CLI smoke tests sweep — identical flags and
// in-process spec, so the binary's output can be pinned against a direct
// sweep.Run.
var smokeSpec = sweep.Spec{
	Seed:         23,
	Trials:       3,
	Players:      []int{48, 64, 96},
	ClusterSizes: []int{16},
	Diameters:    []int{4},
	Dishonest:    []int{0, 2},
	Strategies:   []string{"colluders"},
	Protocols:    []string{"run", "byzantine"},
	FixDiameter:  true,
}

var smokeFlags = []string{
	"-n", "48,64,96", "-cluster", "16", "-d", "4", "-fixd",
	"-f", "0,2", "-strategies", "colluders", "-protocols", "run,byzantine",
	"-trials", "3", "-seed", "23",
}

func smokeReference(t *testing.T) []sweep.Record {
	t.Helper()
	pts, err := sweep.Expand(smokeSpec)
	if err != nil {
		t.Fatal(err)
	}
	recs, err := sweep.Run(pts, sweep.Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	return recs
}

// buildSweep compiles the sweep binary into a temp dir.
func buildSweep(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "sweep")
	cmd := exec.Command("go", "build", "-o", bin, ".")
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}
	return bin
}

// readRecords loads a JSONL file's intact records keyed for comparison.
func recordsByKey(t *testing.T, path string) map[string]sweep.Record {
	t.Helper()
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	recs, _, err := sweep.ReadRecords(f)
	if err != nil {
		t.Fatal(err)
	}
	m := make(map[string]sweep.Record, len(recs))
	for _, rec := range recs {
		m[rec.Key] = rec
	}
	return m
}

func assertFileMatchesReference(t *testing.T, path string, ref []sweep.Record) {
	t.Helper()
	got := recordsByKey(t, path)
	if len(got) != len(ref) {
		t.Fatalf("%s holds %d records, reference has %d", path, len(got), len(ref))
	}
	for _, want := range ref {
		rec, ok := got[want.Key]
		if !ok {
			t.Fatalf("record %s lost", want.Key)
		}
		rec.Index = want.Index // not serialized
		if !reflect.DeepEqual(rec, want) {
			t.Fatalf("record %s differs from single-process reference\n got %+v\nwant %+v", want.Key, rec, want)
		}
	}
}

// TestFleetCLISmoke is the end-to-end drill from README "Distributed
// sweeps": a real coordinator process, two real worker processes, one of
// them SIGKILLed mid-sweep — the checkpoint must still end byte-identical
// to a single-process run.
func TestFleetCLISmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns real processes")
	}
	ref := smokeReference(t)
	bin := buildSweep(t)
	dir := t.TempDir()
	ckpt := filepath.Join(dir, "fleet.jsonl")

	args := append(append([]string{}, smokeFlags...),
		"-coordinator", "127.0.0.1:0", "-out", ckpt,
		"-leasettl", "500ms", "-localgrace", "5s", "-q")
	coord := exec.Command(bin, args...)
	stderr, err := coord.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := coord.Start(); err != nil {
		t.Fatal(err)
	}
	defer coord.Process.Kill()

	// The bound-address line is the CLI's contract for :0 listeners.
	addrRE := regexp.MustCompile(`coordinator serving \d+ grid points on ([^ ]+) `)
	var addr string
	sc := bufio.NewScanner(stderr)
	for sc.Scan() {
		if m := addrRE.FindStringSubmatch(sc.Text()); m != nil {
			addr = m[1]
			break
		}
	}
	if addr == "" {
		t.Fatal("coordinator never announced its address")
	}
	go func() { // keep draining so the coordinator never blocks on stderr
		for sc.Scan() {
		}
	}()
	url := "http://" + addr

	startWorker := func(name string) *exec.Cmd {
		w := exec.Command(bin, "-worker", url, "-batch", "2", "-workers", "1", "-q")
		w.Stderr = os.Stderr
		if err := w.Start(); err != nil {
			t.Fatalf("starting worker %s: %v", name, err)
		}
		return w
	}
	victim := startWorker("victim")
	survivor := startWorker("survivor")
	defer survivor.Process.Kill()

	// SIGKILL the victim once records are flowing (mid-sweep if the grid is
	// still going; the final pin holds either way).
	deadline := time.Now().Add(60 * time.Second)
	for {
		if st, err := os.Stat(ckpt); err == nil && st.Size() > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("no records checkpointed before the kill")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if err := victim.Process.Signal(syscall.SIGKILL); err != nil {
		t.Fatal(err)
	}
	victim.Wait()

	if err := coord.Wait(); err != nil {
		t.Fatalf("coordinator exited with %v", err)
	}
	survivor.Wait() // coordinator is gone; the worker exits 0 on its own

	assertFileMatchesReference(t, ckpt, ref)
}

// TestShardCLISmoke: three coordinator-free shards plus -merge reproduce
// the single-process records, and a SIGTERM mid-shard leaves a resumable
// file that finishes under -resume.
func TestShardCLISmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns real processes")
	}
	ref := smokeReference(t)
	bin := buildSweep(t)
	dir := t.TempDir()

	var shardFiles []string
	for i := 0; i < 3; i++ {
		out := filepath.Join(dir, "s"+string(rune('0'+i))+".jsonl")
		shardFiles = append(shardFiles, out)
		args := append(append([]string{}, smokeFlags...),
			"-shard", string(rune('0'+i))+"/3", "-out", out, "-q")
		if outb, err := exec.Command(bin, args...).CombinedOutput(); err != nil {
			t.Fatalf("shard %d: %v\n%s", i, err, outb)
		}
	}
	merged := filepath.Join(dir, "all.jsonl")
	margs := []string{"-merge", strings.Join(shardFiles, ","), "-out", merged}
	if outb, err := exec.Command(bin, margs...).CombinedOutput(); err != nil {
		t.Fatalf("merge: %v\n%s", err, outb)
	}
	assertFileMatchesReference(t, merged, ref)
}

// TestSigtermResume: SIGTERM a plain sweep mid-run; it must exit 0 with an
// intact (possibly partial) JSONL file, and -resume must finish it to the
// exact reference.
func TestSigtermResume(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns real processes")
	}
	ref := smokeReference(t)
	bin := buildSweep(t)
	out := filepath.Join(t.TempDir(), "run.jsonl")

	args := append(append([]string{}, smokeFlags...), "-out", out, "-workers", "1", "-q")
	cmd := exec.Command(bin, args...)
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(60 * time.Second)
	for {
		if st, err := os.Stat(out); err == nil && st.Size() > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("no records written before the signal")
		}
		time.Sleep(2 * time.Millisecond)
	}
	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	if err := cmd.Wait(); err != nil {
		t.Fatalf("signaled sweep exited with %v, want 0", err)
	}

	resume := append(append([]string{}, smokeFlags...), "-out", out, "-resume", "-q")
	if outb, err := exec.Command(bin, resume...).CombinedOutput(); err != nil {
		t.Fatalf("resume: %v\n%s", err, outb)
	}
	assertFileMatchesReference(t, out, ref)
}
