// Command sweep runs scenario grids through the pooled sweep engine
// (internal/sweep; DESIGN.md §11): declarative axes expand into
// deterministic per-point seeds, points run across a worker pool with
// per-worker reused allocations, results stream to a JSONL file as points
// complete, and an interrupted sweep resumes from its partial output.
//
// The grid comes from a JSON spec file (-grid, the internal/sweep.Spec
// schema) or from axis flags (comma-separated values):
//
//	sweep -n 512,1024 -cluster 64 -d 16,32 -fixd \
//	      -f 0,21 -strategies colluders,cluster-hijackers \
//	      -protocols byzantine -trials 3 -seed 2010 \
//	      -workers 4 -out sweep.jsonl
//
//	sweep -n 512 -cluster 64 -d 32 -fixd -protocols ratings \
//	      -scales 2,5,10 -f 0,21 -strategies exaggerators \
//	      -out ratings.jsonl                            # §8 rating-scale grid
//
//	sweep -n 512 -cluster 64 -d 32 -fixd -protocols budgets \
//	      -captiers 16:256:0.25,16:256:0.5,default \
//	      -out budgets.jsonl                            # §8 capacity-tier grid
//
//	sweep -n 4096,16384 -cluster 256 -d 16 -fixd \
//	      -protocols run -nidx exact,lsh \
//	      -out nidx.jsonl        # exact vs LSH neighbor index, paired seeds
//
//	sweep -grid grid.json -out sweep.jsonl -resume   # continue after a kill
//
// Each completed point appends one JSON line to -out; rerunning with
// -resume skips every point already recorded (a torn final line from a
// mid-write kill is discarded) and runs exactly the missing ones. A
// summary aggregated over the whole grid prints at the end.
//
// Distributed modes (DESIGN.md §15). A grid can be split across processes
// and machines three ways:
//
//	sweep -n ... -shard 0/3 -out s0.jsonl    # coordinator-free: shard i of k
//	sweep -n ... -shard 1/3 -out s1.jsonl    # (deterministic key-hash
//	sweep -n ... -shard 2/3 -out s2.jsonl    #  partition; run anywhere)
//	sweep -merge s0.jsonl,s1.jsonl,s2.jsonl -out all.jsonl   # combine shards
//
//	sweep -n ... -coordinator :8123 -out fleet.jsonl   # lease coordinator
//	sweep -worker http://host:8123                     # any number of workers
//
// The coordinator expands the grid once, hands out point leases over HTTP,
// merges records exactly-once, and checkpoints them to -out (crash-safe:
// restart with -resume and only missing points re-run). Workers heartbeat
// their leases; a SIGKILLed worker's points lapse back to the queue, and a
// coordinator that never hears from a worker finishes the grid locally.
// All modes trap SIGINT/SIGTERM: in-flight points flush, the process exits
// 0, and the JSONL file stays resumable.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"collabscore/internal/fleet"
	"collabscore/internal/sweep"
)

func main() {
	var (
		grid    = flag.String("grid", "", "JSON grid spec file (internal/sweep.Spec); overrides axis flags")
		ns      = flag.String("n", "", "players axis, comma-separated")
		ms      = flag.String("m", "", "objects axis (0 = players), comma-separated")
		bs      = flag.String("b", "", "budget axis (0 = 8), comma-separated")
		cluster = flag.String("cluster", "", "planted cluster size axis, comma-separated")
		zipf    = flag.String("zipf", "", "Zipf cluster-count axis, comma-separated")
		alphas  = flag.String("alpha", "", "Zipf exponent axis, comma-separated")
		ds      = flag.String("d", "", "planted diameter axis, comma-separated")
		fs      = flag.String("f", "", "dishonest-count axis, comma-separated")
		strats  = flag.String("strategies", "", "dishonest strategy names, comma-separated")
		protos  = flag.String("protocols", "", "protocol variants (run, byzantine, baseline, probe-all, random-guess, ratings, budgets), comma-separated")
		scales  = flag.String("scales", "", "rating-scale axis for the ratings protocol (0 = 5), comma-separated")
		tiers   = flag.String("captiers", "", "capacity-tier axis for the budgets protocol, small:big:frac entries comma-separated")
		nidx    = flag.String("nidx", "", "neighbor-index axis for the clustering protocols (exact, lsh, lsh:BANDS:ROWS; optional +dense/+sparse/+auto graph suffix), comma-separated")
		truth   = flag.String("truth", "", "truth-representation axis (dense, lazy, lazy:TILES), comma-separated; paired seeds, byte-identical reports")
		trials  = flag.Int("trials", 1, "independent trials per coordinate")
		seed    = flag.Uint64("seed", 2010, "root seed")
		fixd    = flag.Bool("fixd", false, "fix the doubling loop to each point's planted diameter")
		paper   = flag.Bool("paper", false, "use the paper's literal constants")
		workers = flag.Int("workers", 0, "worker pool size (0 = GOMAXPROCS)")
		out     = flag.String("out", "sweep.jsonl", "JSONL output file")
		resume  = flag.Bool("resume", false, "skip points already recorded in -out")
		opt     = flag.Bool("opt", false, "compute each planted point's exact optimum error (O(n²m) per point)")
		quiet   = flag.Bool("q", false, "suppress per-point progress lines")
		expand  = flag.Bool("expand", false, "print the expanded grid as JSON and exit without running")

		shard    = flag.String("shard", "", "run shard i of k of the grid (\"i/k\"): deterministic key-hash partition, no coordinator needed")
		merge    = flag.String("merge", "", "merge the given JSONL shard files (comma-separated) into -out and exit")
		coord    = flag.String("coordinator", "", "serve the grid as a fleet coordinator on this address (host:port); workers lease points over HTTP, records checkpoint to -out")
		workerAt = flag.String("worker", "", "run as a fleet worker against this coordinator URL (http://host:port); no grid flags needed")
		leaseTTL = flag.Duration("leasettl", 15*time.Second, "coordinator lease deadline; a worker silent this long forfeits its points")
		grace    = flag.Duration("localgrace", 30*time.Second, "coordinator runs points itself after this long without worker contact (negative disables)")
		batch    = flag.Int("batch", 4, "worker points per lease")
	)
	flag.Parse()

	stop := trapSignals()

	if *merge != "" {
		mergeMode(strList(*merge), *out)
		return
	}
	if *workerAt != "" {
		workerMode(*workerAt, *workers, *batch, *seed, *quiet, stop)
		return
	}

	var spec sweep.Spec
	if *grid != "" {
		raw, err := os.ReadFile(*grid)
		if err != nil {
			fatal("reading grid spec: %v", err)
		}
		dec := json.NewDecoder(strings.NewReader(string(raw)))
		dec.DisallowUnknownFields()
		if err := dec.Decode(&spec); err != nil {
			fatal("parsing grid spec %s: %v", *grid, err)
		}
	} else {
		spec = sweep.Spec{
			Seed:            *seed,
			Trials:          *trials,
			Players:         intList(*ns),
			Objects:         intList(*ms),
			Budgets:         intList(*bs),
			ClusterSizes:    intList(*cluster),
			ZipfClusters:    intList(*zipf),
			ZipfAlphas:      floatList(*alphas),
			Diameters:       intList(*ds),
			Dishonest:       intList(*fs),
			Strategies:      strList(*strats),
			Protocols:       strList(*protos),
			Scales:          intList(*scales),
			CapacityTiers:   tierList(*tiers),
			NeighborIndexes: strList(*nidx),
			TruthSources:    strList(*truth),
			FixDiameter:     *fixd,
			PaperConstants:  *paper,
		}
		if len(spec.Players) == 0 {
			flag.Usage()
			fatal("need -grid or -n")
		}
	}

	points, err := sweep.Expand(spec)
	if err != nil {
		fatal("%v", err)
	}
	if i, k, err := sweep.ParseShard(*shard); err != nil {
		fatal("%v", err)
	} else if k > 1 {
		full := len(points)
		if points, err = sweep.Shard(points, i, k); err != nil {
			fatal("%v", err)
		}
		fmt.Fprintf(os.Stderr, "sweep: shard %d/%d owns %d of %d grid points\n", i, k, len(points), full)
	}
	if *expand {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(points); err != nil {
			fatal("%v", err)
		}
		return
	}

	if *coord != "" {
		coordinatorMode(points, *coord, *out, *resume, *opt, *workers, *leaseTTL, *grace, *quiet, stop)
		return
	}

	fmt.Fprintf(os.Stderr, "sweep: %d grid points → %s\n", len(points), *out)
	opts := sweep.Options{Workers: *workers, ComputeOpt: *opt, Stop: stop}
	var failed []string
	opts.OnFailure = func(pt sweep.Point, err error) {
		failed = append(failed, pt.Key())
		fmt.Fprintf(os.Stderr, "sweep: %v\n", err)
	}
	if !*quiet {
		opts.Progress = func(completed, scheduled int, rec sweep.Record) {
			fmt.Fprintf(os.Stderr, "sweep: [%d/%d] %s: max_err=%d max_probes=%d\n",
				completed, scheduled, rec.Key, rec.MaxError, rec.MaxProbes)
		}
	}
	recs, err := sweep.RunFile(points, *out, *resume, opts)
	if err != nil {
		fatal("%v", err)
	}
	if len(recs) < len(points) && len(failed) == 0 {
		fmt.Fprintf(os.Stderr, "sweep: interrupted with %d of %d points done — rerun with -resume to finish\n", len(recs), len(points))
	}
	printSummary(recs, failed)
}

// trapSignals converts the first SIGINT/SIGTERM into a closed stop channel:
// every mode stops claiming new points, flushes in-flight records to the
// JSONL tail, and exits 0 so the file is always resumable. A second signal
// kills the process the old-fashioned way.
func trapSignals() <-chan struct{} {
	stop := make(chan struct{})
	sigc := make(chan os.Signal, 2)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	go func() {
		<-sigc
		fmt.Fprintln(os.Stderr, "sweep: interrupt — finishing in-flight points and flushing (again to abort)")
		close(stop)
		<-sigc
		os.Exit(1)
	}()
	return stop
}

func printSummary(recs []sweep.Record, failed []string) {
	summary := sweep.Aggregate(recs)
	summary.Failures, summary.FailedPoints = len(failed), failed
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(summary); err != nil {
		fatal("%v", err)
	}
}

// mergeMode combines shard/fleet JSONL outputs into one deduplicated file
// (identical duplicate records collapse; conflicting ones abort).
func mergeMode(paths []string, out string) {
	if len(paths) == 0 {
		fatal("-merge needs at least one file")
	}
	recs, err := sweep.MergeFiles(paths...)
	if err != nil {
		fatal("%v", err)
	}
	f, err := os.Create(out)
	if err != nil {
		fatal("%v", err)
	}
	for _, rec := range recs {
		if err := sweep.WriteRecord(f, rec); err != nil {
			fatal("%v", err)
		}
	}
	if err := f.Close(); err != nil {
		fatal("%v", err)
	}
	fmt.Fprintf(os.Stderr, "sweep: merged %d records from %d files → %s\n", len(recs), len(paths), out)
	printSummary(recs, nil)
}

// workerMode runs a fleet worker against a coordinator until the grid is
// done, the coordinator goes away (clean exit — that is how fleets wind
// down), or an interrupt asks it to stop.
func workerMode(url string, poolWorkers, batch int, seed uint64, quiet bool, stop <-chan struct{}) {
	name, _ := os.Hostname()
	name = fmt.Sprintf("%s-%d", name, os.Getpid())
	opt := fleet.WorkerOptions{
		URL:         strings.TrimRight(url, "/"),
		Name:        name,
		PoolWorkers: poolWorkers,
		Batch:       batch,
		Seed:        seed,
		Stop:        stop,
	}
	if !quiet {
		opt.Logf = func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, "sweep: "+format+"\n", args...)
		}
	}
	stats, err := fleet.RunWorker(opt)
	switch {
	case errors.Is(err, fleet.ErrCoordinatorGone):
		fmt.Fprintf(os.Stderr, "sweep: %v\n", err)
	case err != nil:
		fatal("%v", err)
	}
	fmt.Fprintf(os.Stderr, "sweep: worker %s done: %d completed, %d duplicates, %d leases, %d retries, %d failures\n",
		name, stats.Completed, stats.Duplicates, stats.Leases, stats.Retries, stats.Failures)
}

// coordinatorMode serves the grid to fleet workers, checkpointing records
// to out; an interrupt stops leasing and exits 0 with the checkpoint
// resumable.
func coordinatorMode(points []sweep.Point, addr, out string, resume, computeOpt bool, poolWorkers int, leaseTTL, grace time.Duration, quiet bool, stop <-chan struct{}) {
	opt := fleet.CoordinatorOptions{
		LeaseTTL:     leaseTTL,
		ComputeOpt:   computeOpt,
		Checkpoint:   out,
		Resume:       resume,
		LocalGrace:   grace,
		LocalWorkers: poolWorkers,
	}
	if !quiet {
		opt.Logf = func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, "sweep: "+format+"\n", args...)
		}
	}
	c, err := fleet.NewCoordinator(points, opt)
	if err != nil {
		fatal("%v", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		<-stop
		cancel()
	}()
	recs, err := c.Serve(ctx, addr, func(bound string) {
		// The bound address line is load-bearing: tests and scripts pass
		// ":0" and parse the chosen port from it.
		fmt.Fprintf(os.Stderr, "sweep: coordinator serving %d grid points on %s → %s\n", len(points), bound, out)
	})
	if err != nil && !errors.Is(err, context.Canceled) {
		fatal("%v", err)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "sweep: interrupted with %d of %d points done — restart with -resume to finish\n", len(recs), len(points))
	}
	printSummary(recs, c.Failed())
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "sweep: "+format+"\n", args...)
	os.Exit(1)
}

func intList(s string) []int {
	var out []int
	for _, tok := range strList(s) {
		v, err := strconv.Atoi(tok)
		if err != nil {
			fatal("bad integer %q", tok)
		}
		out = append(out, v)
	}
	return out
}

func floatList(s string) []float64 {
	var out []float64
	for _, tok := range strList(s) {
		v, err := strconv.ParseFloat(tok, 64)
		if err != nil {
			fatal("bad float %q", tok)
		}
		out = append(out, v)
	}
	return out
}

func tierList(s string) []sweep.CapTier {
	var out []sweep.CapTier
	for _, tok := range strList(s) {
		ct, err := sweep.ParseCapTier(tok)
		if err != nil {
			fatal("%v", err)
		}
		out = append(out, ct)
	}
	return out
}

func strList(s string) []string {
	if s == "" {
		return nil
	}
	var out []string
	for _, tok := range strings.Split(s, ",") {
		tok = strings.TrimSpace(tok)
		if tok != "" {
			out = append(out, tok)
		}
	}
	return out
}
