// Command sweep runs scenario grids through the pooled sweep engine
// (internal/sweep; DESIGN.md §11): declarative axes expand into
// deterministic per-point seeds, points run across a worker pool with
// per-worker reused allocations, results stream to a JSONL file as points
// complete, and an interrupted sweep resumes from its partial output.
//
// The grid comes from a JSON spec file (-grid, the internal/sweep.Spec
// schema) or from axis flags (comma-separated values):
//
//	sweep -n 512,1024 -cluster 64 -d 16,32 -fixd \
//	      -f 0,21 -strategies colluders,cluster-hijackers \
//	      -protocols byzantine -trials 3 -seed 2010 \
//	      -workers 4 -out sweep.jsonl
//
//	sweep -n 512 -cluster 64 -d 32 -fixd -protocols ratings \
//	      -scales 2,5,10 -f 0,21 -strategies exaggerators \
//	      -out ratings.jsonl                            # §8 rating-scale grid
//
//	sweep -n 512 -cluster 64 -d 32 -fixd -protocols budgets \
//	      -captiers 16:256:0.25,16:256:0.5,default \
//	      -out budgets.jsonl                            # §8 capacity-tier grid
//
//	sweep -n 4096,16384 -cluster 256 -d 16 -fixd \
//	      -protocols run -nidx exact,lsh \
//	      -out nidx.jsonl        # exact vs LSH neighbor index, paired seeds
//
//	sweep -grid grid.json -out sweep.jsonl -resume   # continue after a kill
//
// Each completed point appends one JSON line to -out; rerunning with
// -resume skips every point already recorded (a torn final line from a
// mid-write kill is discarded) and runs exactly the missing ones. A
// summary aggregated over the whole grid prints at the end.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"collabscore/internal/sweep"
)

func main() {
	var (
		grid    = flag.String("grid", "", "JSON grid spec file (internal/sweep.Spec); overrides axis flags")
		ns      = flag.String("n", "", "players axis, comma-separated")
		ms      = flag.String("m", "", "objects axis (0 = players), comma-separated")
		bs      = flag.String("b", "", "budget axis (0 = 8), comma-separated")
		cluster = flag.String("cluster", "", "planted cluster size axis, comma-separated")
		zipf    = flag.String("zipf", "", "Zipf cluster-count axis, comma-separated")
		alphas  = flag.String("alpha", "", "Zipf exponent axis, comma-separated")
		ds      = flag.String("d", "", "planted diameter axis, comma-separated")
		fs      = flag.String("f", "", "dishonest-count axis, comma-separated")
		strats  = flag.String("strategies", "", "dishonest strategy names, comma-separated")
		protos  = flag.String("protocols", "", "protocol variants (run, byzantine, baseline, probe-all, random-guess, ratings, budgets), comma-separated")
		scales  = flag.String("scales", "", "rating-scale axis for the ratings protocol (0 = 5), comma-separated")
		tiers   = flag.String("captiers", "", "capacity-tier axis for the budgets protocol, small:big:frac entries comma-separated")
		nidx    = flag.String("nidx", "", "neighbor-index axis for the clustering protocols (exact, lsh, lsh:BANDS:ROWS), comma-separated")
		truth   = flag.String("truth", "", "truth-representation axis (dense, lazy, lazy:TILES), comma-separated; paired seeds, byte-identical reports")
		trials  = flag.Int("trials", 1, "independent trials per coordinate")
		seed    = flag.Uint64("seed", 2010, "root seed")
		fixd    = flag.Bool("fixd", false, "fix the doubling loop to each point's planted diameter")
		paper   = flag.Bool("paper", false, "use the paper's literal constants")
		workers = flag.Int("workers", 0, "worker pool size (0 = GOMAXPROCS)")
		out     = flag.String("out", "sweep.jsonl", "JSONL output file")
		resume  = flag.Bool("resume", false, "skip points already recorded in -out")
		opt     = flag.Bool("opt", false, "compute each planted point's exact optimum error (O(n²m) per point)")
		quiet   = flag.Bool("q", false, "suppress per-point progress lines")
		expand  = flag.Bool("expand", false, "print the expanded grid as JSON and exit without running")
	)
	flag.Parse()

	var spec sweep.Spec
	if *grid != "" {
		raw, err := os.ReadFile(*grid)
		if err != nil {
			fatal("reading grid spec: %v", err)
		}
		dec := json.NewDecoder(strings.NewReader(string(raw)))
		dec.DisallowUnknownFields()
		if err := dec.Decode(&spec); err != nil {
			fatal("parsing grid spec %s: %v", *grid, err)
		}
	} else {
		spec = sweep.Spec{
			Seed:            *seed,
			Trials:          *trials,
			Players:         intList(*ns),
			Objects:         intList(*ms),
			Budgets:         intList(*bs),
			ClusterSizes:    intList(*cluster),
			ZipfClusters:    intList(*zipf),
			ZipfAlphas:      floatList(*alphas),
			Diameters:       intList(*ds),
			Dishonest:       intList(*fs),
			Strategies:      strList(*strats),
			Protocols:       strList(*protos),
			Scales:          intList(*scales),
			CapacityTiers:   tierList(*tiers),
			NeighborIndexes: strList(*nidx),
			TruthSources:    strList(*truth),
			FixDiameter:     *fixd,
			PaperConstants:  *paper,
		}
		if len(spec.Players) == 0 {
			flag.Usage()
			fatal("need -grid or -n")
		}
	}

	points, err := sweep.Expand(spec)
	if err != nil {
		fatal("%v", err)
	}
	if *expand {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(points); err != nil {
			fatal("%v", err)
		}
		return
	}
	fmt.Fprintf(os.Stderr, "sweep: %d grid points → %s\n", len(points), *out)

	opts := sweep.Options{Workers: *workers, ComputeOpt: *opt}
	if !*quiet {
		opts.Progress = func(completed, scheduled int, rec sweep.Record) {
			fmt.Fprintf(os.Stderr, "sweep: [%d/%d] %s: max_err=%d max_probes=%d\n",
				completed, scheduled, rec.Key, rec.MaxError, rec.MaxProbes)
		}
	}
	recs, err := sweep.RunFile(points, *out, *resume, opts)
	if err != nil {
		fatal("%v", err)
	}

	summary := sweep.Aggregate(recs)
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(summary); err != nil {
		fatal("%v", err)
	}
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "sweep: "+format+"\n", args...)
	os.Exit(1)
}

func intList(s string) []int {
	var out []int
	for _, tok := range strList(s) {
		v, err := strconv.Atoi(tok)
		if err != nil {
			fatal("bad integer %q", tok)
		}
		out = append(out, v)
	}
	return out
}

func floatList(s string) []float64 {
	var out []float64
	for _, tok := range strList(s) {
		v, err := strconv.ParseFloat(tok, 64)
		if err != nil {
			fatal("bad float %q", tok)
		}
		out = append(out, v)
	}
	return out
}

func tierList(s string) []sweep.CapTier {
	var out []sweep.CapTier
	for _, tok := range strList(s) {
		ct, err := sweep.ParseCapTier(tok)
		if err != nil {
			fatal("%v", err)
		}
		out = append(out, ct)
	}
	return out
}

func strList(s string) []string {
	if s == "" {
		return nil
	}
	var out []string
	for _, tok := range strings.Split(s, ",") {
		tok = strings.TrimSpace(tok)
		if tok != "" {
			out = append(out, tok)
		}
	}
	return out
}
