// Command collabscore runs a single collaborative-scoring simulation from
// the command line and prints a report.
//
// Usage:
//
//	collabscore -n 1024 -b 8 -diameter 32 -dishonest 40 -strategy random-liar -byzantine
//
// Flags:
//
//	-n          number of players (objects default to the same)
//	-m          number of objects (0 = n)
//	-b          budget parameter B
//	-diameter   planted cluster diameter (clusters of size n/B)
//	-fixed-d    restrict the protocol to the single (correct) diameter guess
//	-dishonest  number of dishonest players (max tolerated: n/(3B))
//	-strategy   random-liar | flip-all | colluders | hijackers | strange | zero-spam
//	-byzantine  run the full §7 protocol with leader election
//	-baseline   also run the prior-art baseline and probe-all for comparison
//	-seed       RNG seed
package main

import (
	"flag"
	"fmt"
	"os"

	"collabscore"
)

func main() {
	var (
		n         = flag.Int("n", 1024, "number of players")
		m         = flag.Int("m", 0, "number of objects (0 = n)")
		b         = flag.Int("b", 8, "budget parameter B")
		diameter  = flag.Int("diameter", 32, "planted cluster diameter")
		fixedD    = flag.Bool("fixed-d", false, "restrict to the correct diameter guess")
		dishonest = flag.Int("dishonest", 0, "number of dishonest players")
		strategy  = flag.String("strategy", "random-liar", "dishonest strategy")
		byzantine = flag.Bool("byzantine", false, "run the full Byzantine protocol (§7)")
		baseline  = flag.Bool("baseline", false, "also run baselines for comparison")
		seed      = flag.Uint64("seed", 2010, "random seed")
		verbose   = flag.Bool("v", false, "print per-diameter-guess iteration statistics")
	)
	flag.Parse()

	strat, ok := parseStrategy(*strategy)
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown strategy %q\n", *strategy)
		os.Exit(2)
	}

	cfg := collabscore.Config{Players: *n, Objects: *m, Budget: *b, Seed: *seed}
	if *fixedD {
		cfg.FixedDiameter = *diameter
	}
	sim := collabscore.NewSimulation(cfg)
	sim.PlantClusters(*n / *b, *diameter)
	if *dishonest > 0 {
		sim.Corrupt(*dishonest, strat)
		fmt.Printf("corrupted %d players with %s (tolerance %d)\n", *dishonest, strat, sim.Tolerance())
	}

	var rep *collabscore.Report
	if *byzantine {
		fmt.Println("running CalculatePreferences with leader election (§7)...")
		rep = sim.RunByzantine()
	} else {
		fmt.Println("running CalculatePreferences with trusted shared coins (§6)...")
		rep = sim.Run()
	}
	fmt.Printf("protocol: %s\n", rep)
	if *verbose {
		fmt.Printf("bulletin board traffic: %d writes, %d reads\n", rep.CommWrites, rep.CommReads)
		for _, it := range rep.Iterations {
			if it.FullSmallRadius {
				fmt.Printf("  D=%-5d full SmallRadius on all objects (small-D easy case)\n", it.D)
				continue
			}
			fmt.Printf("  D=%-5d |S|=%-5d clusters=%-3d min=%-4d unassigned=%d\n",
				it.D, it.SampleSize, it.Clusters, it.MinCluster, it.Unassigned)
		}
	}

	if *baseline {
		fmt.Printf("baseline [2,3]: %s\n", sim.RunBaseline())
		fmt.Printf("probe-all: %s\n", sim.RunProbeAll())
		fmt.Printf("random-guess: %s\n", sim.RunRandomGuess())
	}
}

func parseStrategy(s string) (collabscore.Strategy, bool) {
	switch s {
	case "random-liar":
		return collabscore.RandomLiar, true
	case "flip-all":
		return collabscore.FlipAll, true
	case "colluders":
		return collabscore.Colluders, true
	case "hijackers":
		return collabscore.ClusterHijackers, true
	case "strange":
		return collabscore.StrangeObjectAttackers, true
	case "zero-spam":
		return collabscore.ZeroSpammers, true
	}
	return 0, false
}
