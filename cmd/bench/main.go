// Command bench runs the repository's benchmark matrix and records the
// results as a machine-readable JSON artifact, so the performance
// trajectory of the hot paths is pinned PR over PR (BENCH_PR3.json is the
// first point; CI regenerates the file on every push and publishes it as a
// build artifact).
//
// It shells out to the standard benchmark runner — `go test -bench` with
// -benchmem — so the numbers are exactly the ones a developer reproduces
// by hand, then parses the one-line-per-benchmark output into structured
// records: ns/op, B/op, allocs/op, and every custom b.ReportMetric column
// (max_err, honest_leaders, …).
//
// With -profile, each top-level benchmark is re-run under the CPU and
// allocation profilers (-profiletime iterations) and the report gains a
// per-benchmark snapshot of the top-5 hot functions from
// `go tool pprof -top`, so a perf PR's claim about *where* time goes is
// pinned next to the numbers, not just the totals.
//
// Usage:
//
//	go run ./cmd/bench [-bench RunByzantine] [-benchtime 1x] [-count 1]
//	                   [-pkg .] [-out BENCH_PR4.json] [-label pr4]
//	                   [-profile] [-profiletime 50x]
//
// The -out/-label defaults name the current PR's committed snapshot;
// a later PR recording a new trajectory point passes its own
// -out BENCH_PR<k>.json -label pr<k> (and updates the CI bench-smoke
// step) rather than overwriting an older PR's numbers.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"strconv"
	"strings"
)

// Result is one parsed benchmark line.
type Result struct {
	// Name is the full benchmark name including sub-benchmark path,
	// without the -GOMAXPROCS suffix (recorded separately as Procs).
	Name  string `json:"name"`
	Procs int    `json:"procs"`
	Iters int64  `json:"iters"`
	// Metrics holds every per-op column: ns/op, B/op, allocs/op, and any
	// custom b.ReportMetric units.
	Metrics map[string]float64 `json:"metrics"`
}

// HotFunc is one row of `go tool pprof -top`: a function and its flat
// share of the profiled samples.
type HotFunc struct {
	Func    string  `json:"func"`
	Flat    string  `json:"flat"`
	FlatPct float64 `json:"flat_pct"`
}

// Profile is one top-level benchmark's hot-function snapshot: the top-5
// functions by flat CPU time and by allocated bytes.
type Profile struct {
	Bench    string    `json:"bench"`
	CPUTop   []HotFunc `json:"cpu_top"`
	AllocTop []HotFunc `json:"alloc_top"`
}

// Report is the JSON document bench writes.
type Report struct {
	Label     string    `json:"label"`
	GoVersion string    `json:"go_version"`
	GOOS      string    `json:"goos"`
	GOARCH    string    `json:"goarch"`
	NumCPU    int       `json:"num_cpu"`
	CPU       string    `json:"cpu,omitempty"`
	Bench     string    `json:"bench"`
	Benchtime string    `json:"benchtime"`
	Count     int       `json:"count"`
	Results   []Result  `json:"results"`
	Profiles  []Profile `json:"profiles,omitempty"`
}

func main() {
	bench := flag.String("bench", "RunByzantine", "benchmark regexp passed to go test -bench")
	benchtime := flag.String("benchtime", "1x", "go test -benchtime value")
	count := flag.Int("count", 1, "go test -count value")
	pkg := flag.String("pkg", ".", "package to benchmark")
	out := flag.String("out", "BENCH_PR4.json", "output JSON path")
	label := flag.String("label", "pr4", "label recorded in the report")
	profile := flag.Bool("profile", false, "re-run each top-level benchmark under the CPU and alloc profilers and record the top-5 hot functions")
	profiletime := flag.String("profiletime", "50x", "go test -benchtime value for the -profile re-runs")
	flag.Parse()

	args := []string{
		"test", "-run", "^$",
		"-bench", *bench,
		"-benchtime", *benchtime,
		"-count", strconv.Itoa(*count),
		"-benchmem",
		*pkg,
	}
	cmd := exec.Command("go", args...)
	cmd.Stderr = os.Stderr
	var buf bytes.Buffer
	cmd.Stdout = &buf
	fmt.Fprintf(os.Stderr, "bench: go %s\n", strings.Join(args, " "))
	if err := cmd.Run(); err != nil {
		os.Stderr.Write(buf.Bytes())
		fmt.Fprintf(os.Stderr, "bench: go test failed: %v\n", err)
		os.Exit(1)
	}
	os.Stdout.Write(buf.Bytes())

	rep := Report{
		Label:     *label,
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		NumCPU:    runtime.NumCPU(),
		Bench:     *bench,
		Benchtime: *benchtime,
		Count:     *count,
	}
	// benchPkg maps each top-level benchmark to the import path it ran
	// in (from the runner's pkg: headers), so -profile can re-run it
	// alone — the profiler flags reject multi-package patterns.
	benchPkg := map[string]string{}
	curPkg := *pkg
	for _, line := range strings.Split(buf.String(), "\n") {
		line = strings.TrimSpace(line)
		if cpu, ok := strings.CutPrefix(line, "cpu:"); ok {
			rep.CPU = strings.TrimSpace(cpu)
			continue
		}
		if p, ok := strings.CutPrefix(line, "pkg:"); ok {
			curPkg = strings.TrimSpace(p)
			continue
		}
		if r, ok := parseLine(line); ok {
			rep.Results = append(rep.Results, r)
			top, _, _ := strings.Cut(r.Name, "/")
			benchPkg[top] = curPkg
		}
	}
	if len(rep.Results) == 0 {
		fmt.Fprintln(os.Stderr, "bench: no benchmark lines parsed")
		os.Exit(1)
	}
	if *profile {
		seen := map[string]bool{}
		for _, r := range rep.Results {
			top, _, _ := strings.Cut(r.Name, "/")
			if seen[top] {
				continue
			}
			seen[top] = true
			fmt.Fprintf(os.Stderr, "bench: profiling %s in %s (%s)\n", top, benchPkg[top], *profiletime)
			p, err := profileBench(benchPkg[top], top, *profiletime)
			if err != nil {
				fmt.Fprintf(os.Stderr, "bench: profile %s: %v\n", top, err)
				os.Exit(1)
			}
			rep.Profiles = append(rep.Profiles, p)
		}
	}
	js, err := json.MarshalIndent(&rep, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "bench: marshal: %v\n", err)
		os.Exit(1)
	}
	js = append(js, '\n')
	if err := os.WriteFile(*out, js, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "bench: write %s: %v\n", *out, err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "bench: wrote %d results to %s\n", len(rep.Results), *out)
}

// profileBench re-runs one top-level benchmark (and all its
// sub-benchmarks) with -cpuprofile and -memprofile into a temp dir, then
// summarizes each profile to its top-5 hot functions.
func profileBench(pkg, name, benchtime string) (Profile, error) {
	dir, err := os.MkdirTemp("", "benchprof")
	if err != nil {
		return Profile{}, err
	}
	defer os.RemoveAll(dir)
	bin := filepath.Join(dir, "bench.test")
	cpu := filepath.Join(dir, "cpu.out")
	mem := filepath.Join(dir, "mem.out")
	cmd := exec.Command("go", "test", "-run", "^$",
		"-bench", "^"+name+"$",
		"-benchtime", benchtime,
		"-cpuprofile", cpu,
		"-memprofile", mem,
		"-o", bin,
		pkg)
	cmd.Stderr = os.Stderr
	if err := cmd.Run(); err != nil {
		return Profile{}, fmt.Errorf("go test: %w", err)
	}
	cpuTop, err := pprofTop(bin, cpu, nil)
	if err != nil {
		return Profile{}, fmt.Errorf("cpu pprof: %w", err)
	}
	allocTop, err := pprofTop(bin, mem, []string{"-sample_index=alloc_space"})
	if err != nil {
		return Profile{}, fmt.Errorf("alloc pprof: %w", err)
	}
	return Profile{Bench: name, CPUTop: cpuTop, AllocTop: allocTop}, nil
}

// pprofTop parses `go tool pprof -top -nodecount=5` output rows
// (flat, flat%, sum%, cum, cum%, name) into HotFunc records.
func pprofTop(bin, prof string, extra []string) ([]HotFunc, error) {
	args := []string{"tool", "pprof", "-top", "-nodecount=5"}
	args = append(args, extra...)
	args = append(args, bin, prof)
	out, err := exec.Command("go", args...).Output()
	if err != nil {
		return nil, err
	}
	var top []HotFunc
	body := false
	for _, line := range strings.Split(string(out), "\n") {
		fields := strings.Fields(line)
		if !body {
			body = len(fields) >= 2 && fields[0] == "flat" && fields[1] == "flat%"
			continue
		}
		if len(fields) < 6 {
			continue
		}
		pct, err := strconv.ParseFloat(strings.TrimSuffix(fields[1], "%"), 64)
		if err != nil {
			continue
		}
		top = append(top, HotFunc{
			Func:    strings.Join(fields[5:], " "),
			Flat:    fields[0],
			FlatPct: pct,
		})
	}
	return top, nil
}

// parseLine parses one `go test -bench` result line, e.g.
//
//	BenchmarkFoo/n=4096/serial-8  1  123 ns/op  4 B/op  2 allocs/op  1.0 max_err
//
// The first field is the name (with -GOMAXPROCS suffix), the second the
// iteration count, then (value, unit) pairs.
func parseLine(line string) (Result, bool) {
	if !strings.HasPrefix(line, "Benchmark") {
		return Result{}, false
	}
	fields := strings.Fields(line)
	if len(fields) < 4 || len(fields)%2 != 0 {
		return Result{}, false
	}
	name, procs := fields[0], 1
	if i := strings.LastIndex(name, "-"); i > 0 {
		if p, err := strconv.Atoi(name[i+1:]); err == nil {
			name, procs = name[:i], p
		}
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Result{}, false
	}
	r := Result{Name: name, Procs: procs, Iters: iters, Metrics: map[string]float64{}}
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Result{}, false
		}
		r.Metrics[fields[i+1]] = v
	}
	return r, true
}
