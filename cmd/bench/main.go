// Command bench runs the repository's benchmark matrix and records the
// results as a machine-readable JSON artifact, so the performance
// trajectory of the hot paths is pinned PR over PR (BENCH_PR3.json is the
// first point; CI regenerates the file on every push and publishes it as a
// build artifact).
//
// It shells out to the standard benchmark runner — `go test -bench` with
// -benchmem — so the numbers are exactly the ones a developer reproduces
// by hand, then parses the one-line-per-benchmark output into structured
// records: ns/op, B/op, allocs/op, and every custom b.ReportMetric column
// (max_err, honest_leaders, …).
//
// Usage:
//
//	go run ./cmd/bench [-bench RunByzantine] [-benchtime 1x] [-count 1]
//	                   [-pkg .] [-out BENCH_PR4.json] [-label pr4]
//
// The -out/-label defaults name the current PR's committed snapshot;
// a later PR recording a new trajectory point passes its own
// -out BENCH_PR<k>.json -label pr<k> (and updates the CI bench-smoke
// step) rather than overwriting an older PR's numbers.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"runtime"
	"strconv"
	"strings"
)

// Result is one parsed benchmark line.
type Result struct {
	// Name is the full benchmark name including sub-benchmark path,
	// without the -GOMAXPROCS suffix (recorded separately as Procs).
	Name  string `json:"name"`
	Procs int    `json:"procs"`
	Iters int64  `json:"iters"`
	// Metrics holds every per-op column: ns/op, B/op, allocs/op, and any
	// custom b.ReportMetric units.
	Metrics map[string]float64 `json:"metrics"`
}

// Report is the JSON document bench writes.
type Report struct {
	Label     string   `json:"label"`
	GoVersion string   `json:"go_version"`
	GOOS      string   `json:"goos"`
	GOARCH    string   `json:"goarch"`
	NumCPU    int      `json:"num_cpu"`
	CPU       string   `json:"cpu,omitempty"`
	Bench     string   `json:"bench"`
	Benchtime string   `json:"benchtime"`
	Count     int      `json:"count"`
	Results   []Result `json:"results"`
}

func main() {
	bench := flag.String("bench", "RunByzantine", "benchmark regexp passed to go test -bench")
	benchtime := flag.String("benchtime", "1x", "go test -benchtime value")
	count := flag.Int("count", 1, "go test -count value")
	pkg := flag.String("pkg", ".", "package to benchmark")
	out := flag.String("out", "BENCH_PR4.json", "output JSON path")
	label := flag.String("label", "pr4", "label recorded in the report")
	flag.Parse()

	args := []string{
		"test", "-run", "^$",
		"-bench", *bench,
		"-benchtime", *benchtime,
		"-count", strconv.Itoa(*count),
		"-benchmem",
		*pkg,
	}
	cmd := exec.Command("go", args...)
	cmd.Stderr = os.Stderr
	var buf bytes.Buffer
	cmd.Stdout = &buf
	fmt.Fprintf(os.Stderr, "bench: go %s\n", strings.Join(args, " "))
	if err := cmd.Run(); err != nil {
		os.Stderr.Write(buf.Bytes())
		fmt.Fprintf(os.Stderr, "bench: go test failed: %v\n", err)
		os.Exit(1)
	}
	os.Stdout.Write(buf.Bytes())

	rep := Report{
		Label:     *label,
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		NumCPU:    runtime.NumCPU(),
		Bench:     *bench,
		Benchtime: *benchtime,
		Count:     *count,
	}
	for _, line := range strings.Split(buf.String(), "\n") {
		line = strings.TrimSpace(line)
		if cpu, ok := strings.CutPrefix(line, "cpu:"); ok {
			rep.CPU = strings.TrimSpace(cpu)
			continue
		}
		if r, ok := parseLine(line); ok {
			rep.Results = append(rep.Results, r)
		}
	}
	if len(rep.Results) == 0 {
		fmt.Fprintln(os.Stderr, "bench: no benchmark lines parsed")
		os.Exit(1)
	}
	js, err := json.MarshalIndent(&rep, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "bench: marshal: %v\n", err)
		os.Exit(1)
	}
	js = append(js, '\n')
	if err := os.WriteFile(*out, js, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "bench: write %s: %v\n", *out, err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "bench: wrote %d results to %s\n", len(rep.Results), *out)
}

// parseLine parses one `go test -bench` result line, e.g.
//
//	BenchmarkFoo/n=4096/serial-8  1  123 ns/op  4 B/op  2 allocs/op  1.0 max_err
//
// The first field is the name (with -GOMAXPROCS suffix), the second the
// iteration count, then (value, unit) pairs.
func parseLine(line string) (Result, bool) {
	if !strings.HasPrefix(line, "Benchmark") {
		return Result{}, false
	}
	fields := strings.Fields(line)
	if len(fields) < 4 || len(fields)%2 != 0 {
		return Result{}, false
	}
	name, procs := fields[0], 1
	if i := strings.LastIndex(name, "-"); i > 0 {
		if p, err := strconv.Atoi(name[i+1:]); err == nil {
			name, procs = name[:i], p
		}
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Result{}, false
	}
	r := Result{Name: name, Procs: procs, Iters: iters, Metrics: map[string]float64{}}
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Result{}, false
		}
		r.Metrics[fields[i+1]] = v
	}
	return r, true
}
