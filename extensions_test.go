package collabscore

import "testing"

func TestRunWithCapacities(t *testing.T) {
	sim := NewSimulation(Config{Players: 512, Budget: 8, Seed: 31, FixedDiameter: 32})
	sim.PlantClusters(64, 32)
	caps := sim.TwoTierCapacities(16, 256, 0.5)
	if len(caps) != 512 {
		t.Fatalf("capacities length %d", len(caps))
	}
	rep := sim.RunWithCapacities(caps)
	if rep.MaxError > 64 {
		t.Fatalf("heterogeneous-budget max error %d", rep.MaxError)
	}
	if rep.MaxProbes == 0 {
		t.Fatal("no probes recorded")
	}
}

func TestRunWithCapacitiesPanicsOnMismatch(t *testing.T) {
	sim := NewSimulation(Config{Players: 64, Seed: 1})
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	sim.RunWithCapacities([]int{1, 2, 3})
}

func TestRatingSimulationFlow(t *testing.T) {
	rs := NewRatingSimulation(RatingConfig{
		Players: 256, Scale: 5, Budget: 8, Seed: 33, FixedDiameter: 32,
	}, 32, 32)
	rep := rs.Run()
	if rep.MaxL1Error > 96 {
		t.Fatalf("rating max L1 error %d", rep.MaxL1Error)
	}
	if len(rep.Outputs) != 256 || len(rep.Outputs[0]) != 256 {
		t.Fatal("rating outputs shape wrong")
	}
	for _, r := range rep.Outputs[0] {
		if r < 0 || r > 5 {
			t.Fatalf("rating %d out of scale", r)
		}
	}
}

func TestRatingSimulationByzantine(t *testing.T) {
	for _, strat := range []Strategy{RandomLiar, FlipAll, ZeroSpammers, Exaggerators, HarshShifters} {
		rs := NewRatingSimulation(RatingConfig{
			Players: 256, Scale: 5, Budget: 8, Seed: 35, FixedDiameter: 32,
		}, 32, 32)
		rs.Corrupt(rs.Tolerance(), strat)
		rep := rs.RunByzantine(5)
		if rep.MaxL1Error > 96 {
			t.Fatalf("strategy %d: max L1 error %d", strat, rep.MaxL1Error)
		}
		if rep.HonestLeaders == 0 {
			t.Fatalf("strategy %d: no honest leaders", strat)
		}
	}
}

func TestRatingConfigDefaults(t *testing.T) {
	rs := NewRatingSimulation(RatingConfig{Players: 64, Seed: 1}, 8, 4)
	if rs.cfg.Objects != 64 || rs.cfg.Budget != 8 || rs.cfg.Scale != 5 {
		t.Fatalf("defaults wrong: %+v", rs.cfg)
	}
	if rs.Tolerance() != 64/24 {
		t.Fatalf("tolerance %d", rs.Tolerance())
	}
}

func TestReportPrefers(t *testing.T) {
	sim := NewSimulation(Config{Players: 256, Budget: 8, Seed: 37, FixedDiameter: 16})
	sim.PlantClusters(32, 0) // identical clusters: predictions ≈ truth
	rep := sim.Run()
	match := 0
	for o := 0; o < 256; o++ {
		if rep.Prefers(0, o) == sim.World().PeekTruth(0, o) {
			match++
		}
	}
	if match < 250 {
		t.Fatalf("Prefers matched truth on only %d/256 objects", match)
	}
}
