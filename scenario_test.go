package collabscore

import (
	"reflect"
	"testing"
)

// scenarioMatrix is a shape-diverse scenario list: different n, m, budgets,
// plantings, corruption levels, strategies and protocol variants, so pooled
// reuse is exercised across shape changes in both directions.
func scenarioMatrix() []Scenario {
	return []Scenario{
		{Config: Config{Players: 128, Seed: 1, FixedDiameter: 8}, ClusterSize: 16, Diameter: 8, Protocol: ProtoRun},
		{Config: Config{Players: 128, Seed: 2, FixedDiameter: 8}, ClusterSize: 16, Diameter: 8, Dishonest: 5, Strategy: Colluders, Protocol: ProtoByzantine},
		{Config: Config{Players: 64, Objects: 128, Seed: 3}, Protocol: ProtoProbeAll},
		{Config: Config{Players: 96, Seed: 4, FixedDiameter: 4}, ZipfClusters: 4, ZipfAlpha: 1.2, Diameter: 4, Protocol: ProtoRun},
		{Config: Config{Players: 128, Seed: 5, FixedDiameter: 8}, ClusterSize: 16, Diameter: 8, Dishonest: 5, Strategy: ClusterHijackers, Protocol: ProtoByzantine},
		{Config: Config{Players: 128, Seed: 1, FixedDiameter: 8}, ClusterSize: 16, Diameter: 8, Protocol: ProtoBaseline},
		{Config: Config{Players: 64, Seed: 6}, Protocol: ProtoRandomGuess},
		// Same shape twice in a row: the full-reuse path.
		{Config: Config{Players: 128, Seed: 7, FixedDiameter: 8}, ClusterSize: 32, Diameter: 8, Dishonest: 4, Strategy: StrangeObjectAttackers, Protocol: ProtoByzantine},
		{Config: Config{Players: 128, Seed: 8, FixedDiameter: 8}, ClusterSize: 32, Diameter: 8, Dishonest: 4, Strategy: RandomLiar, Protocol: ProtoByzantine},
	}
}

// TestScenarioMatchesFluent pins the declarative path to the fluent one:
// running a Scenario is byte-identical to building the same simulation by
// hand with NewSimulation / PlantClusters / Corrupt / Run*.
func TestScenarioMatchesFluent(t *testing.T) {
	sc := Scenario{
		Config:      Config{Players: 128, Seed: 42, FixedDiameter: 8},
		ClusterSize: 16, Diameter: 8,
		Dishonest: 5, Strategy: Colluders,
		Protocol: ProtoByzantine,
	}
	got := sc.Run()

	sim := NewSimulation(sc.Config)
	sim.PlantClusters(16, 8)
	sim.Corrupt(5, Colluders)
	want := sim.RunByzantine()

	if !reflect.DeepEqual(got, want) {
		t.Fatalf("scenario report differs from fluent construction:\n got %+v\nwant %+v", got, want)
	}

	// And the honest-randomness variant.
	sc.Dishonest, sc.Protocol = 0, ProtoRun
	got = sc.Run()
	sim = NewSimulation(sc.Config)
	sim.PlantClusters(16, 8)
	want = sim.Run()
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("honest scenario report differs from fluent construction")
	}
}

// TestPoolMatchesFresh pins the pooled point-runner's contract: a Pool
// running a shape-diverse scenario sequence produces reports byte-identical
// to running every scenario from scratch — pooling reuses storage, it never
// changes results.
func TestPoolMatchesFresh(t *testing.T) {
	pool := NewPool()
	for i, sc := range scenarioMatrix() {
		want := sc.Run()
		got := pool.Run(sc)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("scenario %d (%v on n=%d): pooled report differs from fresh\n got %+v\nwant %+v",
				i, sc.Protocol, sc.Players, got, want)
		}
	}
	// A second pass over the same pool: reuse after every shape has been
	// seen once must still be exact.
	for i, sc := range scenarioMatrix() {
		want := sc.Run()
		got := pool.Run(sc)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("scenario %d second pass: pooled report differs from fresh", i)
		}
	}
}

// TestPoolNewSimulationMatches pins Pool.NewSimulation to the package-level
// constructor through the fluent API.
func TestPoolNewSimulationMatches(t *testing.T) {
	pool := NewPool()
	cfg := Config{Players: 96, Seed: 9, FixedDiameter: 8}

	sim := pool.NewSimulation(cfg)
	sim.PlantClusters(12, 8)
	got := sim.Run()

	ref := NewSimulation(cfg)
	ref.PlantClusters(12, 8)
	want := ref.Run()

	if !reflect.DeepEqual(got, want) {
		t.Fatalf("pooled NewSimulation report differs from fresh")
	}
}

// TestParseRoundTrips pins the string forms grid specs and JSONL records
// use.
func TestParseRoundTrips(t *testing.T) {
	for _, p := range []Protocol{ProtoRun, ProtoByzantine, ProtoBaseline, ProtoProbeAll, ProtoRandomGuess} {
		got, err := ParseProtocol(p.String())
		if err != nil || got != p {
			t.Fatalf("ParseProtocol(%q) = %v, %v", p.String(), got, err)
		}
	}
	if _, err := ParseProtocol("nope"); err == nil {
		t.Fatal("ParseProtocol accepted an unknown name")
	}
	for _, s := range []Strategy{RandomLiar, FlipAll, Colluders, ClusterHijackers, StrangeObjectAttackers, ZeroSpammers} {
		got, err := ParseStrategy(s.String())
		if err != nil || got != s {
			t.Fatalf("ParseStrategy(%q) = %v, %v", s.String(), got, err)
		}
	}
	if _, err := ParseStrategy("nope"); err == nil {
		t.Fatal("ParseStrategy accepted an unknown name")
	}
}
