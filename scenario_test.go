package collabscore

import (
	"reflect"
	"strings"
	"testing"
)

// scenarioMatrix is a shape-diverse scenario list: different n, m, budgets,
// plantings, corruption levels, strategies and protocol variants, so pooled
// reuse is exercised across shape changes in both directions.
func scenarioMatrix() []Scenario {
	return []Scenario{
		{Config: Config{Players: 128, Seed: 1, FixedDiameter: 8}, ClusterSize: 16, Diameter: 8, Protocol: ProtoRun},
		{Config: Config{Players: 128, Seed: 2, FixedDiameter: 8}, ClusterSize: 16, Diameter: 8, Dishonest: 5, Strategy: Colluders, Protocol: ProtoByzantine},
		{Config: Config{Players: 64, Objects: 128, Seed: 3}, Protocol: ProtoProbeAll},
		{Config: Config{Players: 96, Seed: 4, FixedDiameter: 4}, ZipfClusters: 4, ZipfAlpha: 1.2, Diameter: 4, Protocol: ProtoRun},
		{Config: Config{Players: 128, Seed: 5, FixedDiameter: 8}, ClusterSize: 16, Diameter: 8, Dishonest: 5, Strategy: ClusterHijackers, Protocol: ProtoByzantine},
		{Config: Config{Players: 128, Seed: 1, FixedDiameter: 8}, ClusterSize: 16, Diameter: 8, Protocol: ProtoBaseline},
		{Config: Config{Players: 64, Seed: 6}, Protocol: ProtoRandomGuess},
		// Same shape twice in a row: the full-reuse path.
		{Config: Config{Players: 128, Seed: 7, FixedDiameter: 8}, ClusterSize: 32, Diameter: 8, Dishonest: 4, Strategy: StrangeObjectAttackers, Protocol: ProtoByzantine},
		{Config: Config{Players: 128, Seed: 8, FixedDiameter: 8}, ClusterSize: 32, Diameter: 8, Dishonest: 4, Strategy: RandomLiar, Protocol: ProtoByzantine},
		// §8 extensions: rating-scale points (their own pooled arena, two
		// scales so the bit-plane width changes shape), interleaved with a
		// budgets point on the binary arena.
		{Config: Config{Players: 96, Seed: 9, FixedDiameter: 16}, ClusterSize: 12, Diameter: 16, Scale: 5, Dishonest: 4, Strategy: Exaggerators, Protocol: ProtoRatings},
		{Config: Config{Players: 96, Seed: 10, FixedDiameter: 8}, ClusterSize: 12, Diameter: 8, Protocol: ProtoBudgets, CapSmall: 8, CapBig: 48, CapBigFrac: 0.5},
		{Config: Config{Players: 96, Seed: 11, FixedDiameter: 16}, ClusterSize: 12, Diameter: 16, Scale: 9, Dishonest: 3, Strategy: HarshShifters, Protocol: ProtoRatings},
		{Config: Config{Players: 96, Seed: 12, FixedDiameter: 16}, ClusterSize: 12, Diameter: 16, Scale: 5, Protocol: ProtoRatings},
		// Neighbor-index knob: LSH points on the clustering protocols,
		// pooled and fresh alike.
		{Config: Config{Players: 128, Seed: 13, FixedDiameter: 8, NeighborIndex: "lsh"}, ClusterSize: 16, Diameter: 8, Protocol: ProtoRun},
		{Config: Config{Players: 96, Seed: 14, FixedDiameter: 8, NeighborIndex: "lsh:8:6"}, ClusterSize: 12, Diameter: 8, Protocol: ProtoBudgets, CapSmall: 8, CapBig: 48, CapBigFrac: 0.5},
		// Truth-source knob: lazy worlds recompute truth cells from the seed
		// stream at probe time (with and without a tile cache), across every
		// planting family and substrate. Reports must be byte-identical to
		// the dense default, pooled and fresh alike.
		{Config: Config{Players: 128, Seed: 15, FixedDiameter: 8, TruthSource: "lazy"}, ClusterSize: 16, Diameter: 8, Protocol: ProtoRun},
		{Config: Config{Players: 96, Seed: 16, FixedDiameter: 4, TruthSource: "lazy:8"}, ZipfClusters: 4, ZipfAlpha: 1.2, Diameter: 4, Dishonest: 4, Strategy: RandomLiar, Protocol: ProtoByzantine},
		{Config: Config{Players: 64, Objects: 128, Seed: 17, TruthSource: "lazy"}, Protocol: ProtoProbeAll},
		{Config: Config{Players: 96, Seed: 18, FixedDiameter: 16, TruthSource: "lazy"}, ClusterSize: 12, Diameter: 16, Scale: 5, Dishonest: 3, Strategy: Exaggerators, Protocol: ProtoRatings},
		{Config: Config{Players: 96, Seed: 19, FixedDiameter: 8, TruthSource: "lazy:4"}, ClusterSize: 12, Diameter: 8, Protocol: ProtoBudgets, CapSmall: 8, CapBig: 48, CapBigFrac: 0.5},
	}
}

// TestScenarioMatchesFluent pins the declarative path to the fluent one:
// running a Scenario is byte-identical to building the same simulation by
// hand with NewSimulation / PlantClusters / Corrupt / Run*.
func TestScenarioMatchesFluent(t *testing.T) {
	sc := Scenario{
		Config:      Config{Players: 128, Seed: 42, FixedDiameter: 8},
		ClusterSize: 16, Diameter: 8,
		Dishonest: 5, Strategy: Colluders,
		Protocol: ProtoByzantine,
	}
	got := sc.Run()

	sim := NewSimulation(sc.Config)
	sim.PlantClusters(16, 8)
	sim.Corrupt(5, Colluders)
	want := sim.RunByzantine()

	if !reflect.DeepEqual(got, want) {
		t.Fatalf("scenario report differs from fluent construction:\n got %+v\nwant %+v", got, want)
	}

	// And the honest-randomness variant.
	sc.Dishonest, sc.Protocol = 0, ProtoRun
	got = sc.Run()
	sim = NewSimulation(sc.Config)
	sim.PlantClusters(16, 8)
	want = sim.Run()
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("honest scenario report differs from fluent construction")
	}
}

// TestPoolMatchesFresh pins the pooled point-runner's contract: a Pool
// running a shape-diverse scenario sequence produces reports byte-identical
// to running every scenario from scratch — pooling reuses storage, it never
// changes results.
func TestPoolMatchesFresh(t *testing.T) {
	pool := NewPool()
	for i, sc := range scenarioMatrix() {
		want := sc.Run()
		got := pool.Run(sc)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("scenario %d (%v on n=%d): pooled report differs from fresh\n got %+v\nwant %+v",
				i, sc.Protocol, sc.Players, got, want)
		}
	}
	// A second pass over the same pool: reuse after every shape has been
	// seen once must still be exact.
	for i, sc := range scenarioMatrix() {
		want := sc.Run()
		got := pool.Run(sc)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("scenario %d second pass: pooled report differs from fresh", i)
		}
	}
}

// TestPoolNewSimulationMatches pins Pool.NewSimulation to the package-level
// constructor through the fluent API.
func TestPoolNewSimulationMatches(t *testing.T) {
	pool := NewPool()
	cfg := Config{Players: 96, Seed: 9, FixedDiameter: 8}

	sim := pool.NewSimulation(cfg)
	sim.PlantClusters(12, 8)
	got := sim.Run()

	ref := NewSimulation(cfg)
	ref.PlantClusters(12, 8)
	want := ref.Run()

	if !reflect.DeepEqual(got, want) {
		t.Fatalf("pooled NewSimulation report differs from fresh")
	}
}

// TestParseRoundTrips pins the string forms grid specs and JSONL records
// use.
func TestParseRoundTrips(t *testing.T) {
	for _, p := range []Protocol{ProtoRun, ProtoByzantine, ProtoBaseline, ProtoProbeAll, ProtoRandomGuess, ProtoRatings, ProtoBudgets} {
		got, err := ParseProtocol(p.String())
		if err != nil || got != p {
			t.Fatalf("ParseProtocol(%q) = %v, %v", p.String(), got, err)
		}
	}
	if _, err := ParseProtocol("nope"); err == nil {
		t.Fatal("ParseProtocol accepted an unknown name")
	}
	for _, s := range []Strategy{RandomLiar, FlipAll, Colluders, ClusterHijackers, StrangeObjectAttackers, ZeroSpammers, Exaggerators, HarshShifters} {
		got, err := ParseStrategy(s.String())
		if err != nil || got != s {
			t.Fatalf("ParseStrategy(%q) = %v, %v", s.String(), got, err)
		}
	}
	if _, err := ParseStrategy("nope"); err == nil {
		t.Fatal("ParseStrategy accepted an unknown name")
	}
}

// TestStrategyCapabilities pins which strategies apply to which substrate:
// the sweep expander relies on these predicates to skip uninstantiable
// (strategy, protocol) combinations deterministically.
func TestStrategyCapabilities(t *testing.T) {
	wantRating := map[Strategy]bool{
		RandomLiar: true, FlipAll: true, ZeroSpammers: true,
		Exaggerators: true, HarshShifters: true,
		Colluders: false, ClusterHijackers: false, StrangeObjectAttackers: false,
	}
	for s, want := range wantRating {
		if s.RatingCapable() != want {
			t.Fatalf("%v.RatingCapable() = %v, want %v", s, s.RatingCapable(), want)
		}
	}
	for _, s := range []Strategy{Exaggerators, HarshShifters} {
		if s.BinaryCapable() {
			t.Fatalf("%v should not be binary-capable", s)
		}
	}
	if !Colluders.BinaryCapable() {
		t.Fatal("Colluders should be binary-capable")
	}
}

// TestRatingScenarioMatchesFluent pins the declarative rating path to the
// fluent one: a ProtoRatings scenario is byte-identical to building the
// same RatingSimulation by hand.
func TestRatingScenarioMatchesFluent(t *testing.T) {
	sc := Scenario{
		Config:      Config{Players: 96, Seed: 41, FixedDiameter: 16},
		ClusterSize: 12, Diameter: 16, Scale: 5,
		Dishonest: 4, Strategy: Exaggerators,
		Protocol: ProtoRatings,
	}
	got := sc.Run()

	rs := NewRatingSimulation(RatingConfig{
		Players: 96, Scale: 5, Seed: 41, FixedDiameter: 16,
	}, 12, 16)
	rs.Corrupt(4, Exaggerators)
	rrep := rs.RunByzantine(0)

	if got.MaxError != rrep.MaxL1Error || got.MeanError != rrep.MeanL1Error ||
		got.MaxProbes != int64(rrep.MaxProbes) || got.TotalProbes != rrep.TotalProbes ||
		got.HonestLeaders != rrep.HonestLeaders || got.Repetitions != rrep.Repetitions {
		t.Fatalf("rating scenario report differs from fluent construction:\n got %+v\nwant %+v", got, rrep)
	}
}

// TestNeighborIndexMatchesExact pins the public knob end-to-end: on a
// planted scenario at the paper-regime threshold, selecting the LSH
// banding index produces a report byte-identical to the exact default,
// for both the honest protocol and the capacity extension.
func TestNeighborIndexMatchesExact(t *testing.T) {
	base := Scenario{
		Config:      Config{Players: 256, Seed: 2010, FixedDiameter: 8},
		ClusterSize: 32, Diameter: 8,
		Protocol: ProtoRun,
	}
	want := base.Run()
	lsh := base
	lsh.Config.NeighborIndex = "lsh"
	if got := lsh.Run(); !reflect.DeepEqual(got, want) {
		t.Fatalf("NeighborIndex=lsh report differs from exact default:\n got %+v\nwant %+v", got, want)
	}

	// RunWithCapacities inherits the knob from the simulation's config.
	caps := func(nidx string) *Report {
		sim := NewSimulation(Config{Players: 192, Seed: 7, FixedDiameter: 8, NeighborIndex: nidx})
		sim.PlantClusters(24, 8)
		return sim.RunWithCapacities(sim.TwoTierCapacities(16, 96, 0.5))
	}
	if got, want := caps("lsh:16:12"), caps(""); !reflect.DeepEqual(got, want) {
		t.Fatalf("capacity run with LSH index differs from exact:\n got %+v\nwant %+v", got, want)
	}
}

// TestNeighborIndexInvalidPanics: a malformed index spec must fail fast at
// construction with an actionable message, not deep inside a run.
func TestNeighborIndexInvalidPanics(t *testing.T) {
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("NewSimulation accepted an invalid NeighborIndex")
		}
		if msg, ok := r.(string); !ok || !strings.Contains(msg, "neighbor index") {
			t.Fatalf("unhelpful panic: %v", r)
		}
	}()
	NewSimulation(Config{Players: 16, Seed: 1, NeighborIndex: "lsh:0:4"})
}

// TestRatingScenarioBuildPanics: Build/Execute are the binary-substrate
// path; a ProtoRatings scenario must fail fast with an actionable message
// instead of constructing a wrong-substrate Simulation.
func TestRatingScenarioBuildPanics(t *testing.T) {
	sc := Scenario{
		Config:      Config{Players: 32, Seed: 1},
		ClusterSize: 8, Diameter: 4, Protocol: ProtoRatings,
	}
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("Build accepted a ProtoRatings scenario")
		}
		if msg, ok := r.(string); !ok || !strings.Contains(msg, "ProtoRatings") {
			t.Fatalf("unhelpful panic: %v", r)
		}
	}()
	sc.Build(nil)
}
