package collabscore_test

import (
	"fmt"

	"collabscore"
)

// The basic flow: configure a population, plant correlation structure, run
// the protocol, inspect the report.
func ExampleNewSimulation() {
	sim := collabscore.NewSimulation(collabscore.Config{
		Players: 512, Budget: 8, Seed: 7, FixedDiameter: 32,
	})
	sim.PlantClusters(64, 32) // 8 taste clusters of 64 players, diameter 32

	report := sim.Run()
	fmt.Println("error within diameter:", report.MaxError <= 32)
	fmt.Println("cheaper than probing everything:", report.MaxProbes < 512)
	// Output:
	// error within diameter: true
	// cheaper than probing everything: true
}

// Byzantine runs corrupt part of the population first; the tolerance
// n/(3B) is the paper's bound.
func ExampleSimulation_RunByzantine() {
	sim := collabscore.NewSimulation(collabscore.Config{
		Players: 512, Budget: 8, Seed: 7, FixedDiameter: 32,
	})
	sim.PlantClusters(64, 32)
	sim.Corrupt(sim.Tolerance(), collabscore.Colluders)

	report := sim.RunByzantine()
	fmt.Println("tolerated dishonest players:", sim.Tolerance())
	fmt.Println("error still within diameter:", report.MaxError <= 32)
	// Output:
	// tolerated dishonest players: 21
	// error still within diameter: true
}

// The §8 non-binary extension: ratings on a 0..Scale scale with median
// aggregation, robust to extremist bots.
func ExampleNewRatingSimulation() {
	rs := collabscore.NewRatingSimulation(collabscore.RatingConfig{
		Players: 256, Scale: 5, Budget: 8, Seed: 33, FixedDiameter: 32,
	}, 32, 32)
	rs.Corrupt(rs.Tolerance(), collabscore.Exaggerators)

	report := rs.RunByzantine(5)
	fmt.Println("L1 error within taste spread:", report.MaxL1Error <= 32)
	// Output:
	// L1 error within taste spread: true
}

// Baselines share the same world, so reports are directly comparable.
func ExampleSimulation_RunProbeAll() {
	sim := collabscore.NewSimulation(collabscore.Config{
		Players: 256, Budget: 8, Seed: 3, FixedDiameter: 16,
	})
	sim.PlantClusters(32, 16)

	exhaustive := sim.RunProbeAll()
	fmt.Println("probe-all error:", exhaustive.MaxError)
	fmt.Println("probe-all probes:", exhaustive.MaxProbes)
	// Output:
	// probe-all error: 0
	// probe-all probes: 256
}
