// Package board implements the public bulletin board substrate from the
// paper's model (§2): a shared memory where, in each round, every player can
// publish the result of a probe and read what others have published.
//
// The board enforces the model's one safety property: a dishonest player
// cannot modify data written by honest players. Each player writes only to
// its own lane, and lanes are keyed by player id, so cross-lane writes are
// structurally impossible.
//
// The board also tracks communication cost (total writes and reads), which
// §8 of the paper raises as an open accounting question.
package board

import (
	"sync"
	"sync/atomic"

	"collabscore/internal/bitvec"
)

// Board is a concurrent bulletin board over n players and m objects.
// Entries are (player, object) → bit. Writing is idempotent per cell: the
// first write wins, matching the model where an honest player publishes the
// result of a probe once (re-publishing the same truth is harmless, and a
// dishonest player gains nothing by flip-flopping because honest readers
// snapshot).
type Board struct {
	n, m   int
	lanes  []lane
	writes counter
	reads  counter
}

// lane is one player's region of the board.
type lane struct {
	mu      sync.RWMutex
	written bitvec.Vector
	values  bitvec.Vector
}

// numStripes is the number of counter stripes; a power of two so the stripe
// index is a mask. 32 stripes comfortably exceed the core counts this
// repository targets.
const numStripes = 32

// counter is a striped event counter. Each board belongs to one work-sharing
// phase of one protocol run, but within that phase par.Map hammers the
// write/read totals from every worker goroutine at once, so a single atomic
// word becomes a cache-line ping-pong hotspot (and with concurrent Byzantine
// repetitions, every core is busy doing the same to its own repetition's
// board). Each stripe lives on its own cache line; callers spread increments
// by lane id and totals are summed on read (counts only need to be exact
// between phases, which is when anyone reads them).
type counter struct {
	stripes [numStripes]paddedCount
}

// paddedCount pads each stripe to a full 64-byte cache line to prevent
// false sharing between adjacent stripes.
type paddedCount struct {
	n atomic.Int64
	_ [56]byte
}

// add increments the stripe selected by key.
func (c *counter) add(key int) { c.stripes[key&(numStripes-1)].n.Add(1) }

// total sums all stripes.
func (c *counter) total() int64 {
	var t int64
	for i := range c.stripes {
		t += c.stripes[i].n.Load()
	}
	return t
}

// reset zeroes all stripes.
func (c *counter) reset() {
	for i := range c.stripes {
		c.stripes[i].n.Store(0)
	}
}

// New creates an empty board for n players and m objects.
func New(n, m int) *Board {
	b := &Board{n: n, m: m, lanes: make([]lane, n)}
	for i := range b.lanes {
		b.lanes[i].written = bitvec.New(m)
		b.lanes[i].values = bitvec.New(m)
	}
	return b
}

// Players returns the number of player lanes.
func (b *Board) Players() int { return b.n }

// Objects returns the number of object columns.
func (b *Board) Objects() int { return b.m }

// Write publishes player p's value for object o. The first write to a cell
// sticks; later writes to the same cell are ignored. Write is safe for
// concurrent use.
func (b *Board) Write(p, o int, v bool) {
	ln := &b.lanes[p]
	ln.mu.Lock()
	if !ln.written.Get(o) {
		ln.written.Set(o, true)
		ln.values.Set(o, v)
	}
	ln.mu.Unlock()
	b.writes.add(p)
}

// Read returns player p's published value for object o and whether p has
// published one.
func (b *Board) Read(p, o int) (value, ok bool) {
	ln := &b.lanes[p]
	ln.mu.RLock()
	ok = ln.written.Get(o)
	value = ln.values.Get(o)
	ln.mu.RUnlock()
	b.reads.add(p)
	return value, ok
}

// Votes tallies the published values for object o among the given players.
// Players that have not published for o are skipped.
func (b *Board) Votes(o int, players []int) (ones, zeros int) {
	for _, p := range players {
		v, ok := b.Read(p, o)
		if !ok {
			continue
		}
		if v {
			ones++
		} else {
			zeros++
		}
	}
	return ones, zeros
}

// Snapshot returns a copy of player p's published (mask, values) pair.
// Reads of the snapshot are not counted as board reads.
func (b *Board) Snapshot(p int) (written, values bitvec.Vector) {
	ln := &b.lanes[p]
	ln.mu.RLock()
	defer ln.mu.RUnlock()
	b.reads.add(p)
	return ln.written.Clone(), ln.values.Clone()
}

// WriteCount returns the total number of Write calls (communication cost).
func (b *Board) WriteCount() int64 { return b.writes.total() }

// ReadCount returns the total number of Read/Votes/Snapshot accesses.
func (b *Board) ReadCount() int64 { return b.reads.total() }

// Reset clears all lanes and counters, reusing the allocated storage.
func (b *Board) Reset() {
	for i := range b.lanes {
		ln := &b.lanes[i]
		ln.mu.Lock()
		ln.written = bitvec.New(b.m)
		ln.values = bitvec.New(b.m)
		ln.mu.Unlock()
	}
	b.writes.reset()
	b.reads.reset()
}
