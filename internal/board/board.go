// Package board implements the public bulletin board substrate from the
// paper's model (§2): a shared memory where, in each round, every player can
// publish the result of a probe and read what others have published.
//
// The board enforces the model's one safety property: a dishonest player
// cannot modify data written by honest players. Each player writes only to
// its own lane, and lanes are keyed by player id, so cross-lane writes are
// structurally impossible.
//
// The board also tracks communication cost (total writes and reads), which
// §8 of the paper raises as an open accounting question. Counters are
// striped across cache lines so concurrent phase loops do not contend on a
// single hot word; see DESIGN.md §7 for the board's full concurrency
// contract (publish → Freeze barrier → lock-free tally).
package board

import (
	"math/bits"
	"sync"
	"sync/atomic"

	"collabscore/internal/bitvec"
)

// Board is a concurrent bulletin board over n players and m objects.
// Entries are (player, object) → bit. Writing is idempotent per cell: the
// first write wins, matching the model where an honest player publishes the
// result of a probe once (re-publishing the same truth is harmless, and a
// dishonest player gains nothing by flip-flopping because honest readers
// snapshot).
//
// A board alternates between a publish phase (concurrent Writes, each
// taking its lane's lock) and a tally phase. Calling Freeze at the barrier
// between them seals the board and returns an immutable view whose reads
// need no locks at all — the cheap fan-out read path of the work-sharing
// tally (DESIGN.md §7).
type Board struct {
	n, m   int
	lanes  []lane
	sealed atomic.Bool
	writes counter
	reads  counter
}

// lane is one player's region of the board.
type lane struct {
	mu      sync.RWMutex
	written bitvec.Vector
	values  bitvec.Vector
}

// numStripes is the number of counter stripes; a power of two so the stripe
// index is a mask. 32 stripes comfortably exceed the core counts this
// repository targets.
const numStripes = 32

// counter is a striped event counter. Each board belongs to one work-sharing
// phase of one protocol run, but within that phase par.Map hammers the
// write/read totals from every worker goroutine at once, so a single atomic
// word becomes a cache-line ping-pong hotspot (and with concurrent Byzantine
// repetitions, every core is busy doing the same to its own repetition's
// board). Each stripe lives on its own cache line; callers spread increments
// by lane id and totals are summed on read (counts only need to be exact
// between phases, which is when anyone reads them).
type counter struct {
	stripes [numStripes]paddedCount
}

// paddedCount pads each stripe to a full 64-byte cache line to prevent
// false sharing between adjacent stripes.
type paddedCount struct {
	n atomic.Int64
	_ [56]byte
}

// add increments the stripe selected by key.
func (c *counter) add(key int) { c.stripes[key&(numStripes-1)].n.Add(1) }

// addN adds n events to the stripe selected by key — the bulk-path
// counterpart of add: a word-level write or tally accounts all its cells
// with one atomic instead of one per cell.
func (c *counter) addN(key int, n int64) { c.stripes[key&(numStripes-1)].n.Add(n) }

// total sums all stripes.
func (c *counter) total() int64 {
	var t int64
	for i := range c.stripes {
		t += c.stripes[i].n.Load()
	}
	return t
}

// reset zeroes all stripes.
func (c *counter) reset() {
	for i := range c.stripes {
		c.stripes[i].n.Store(0)
	}
}

// New creates an empty board for n players and m objects.
func New(n, m int) *Board {
	b := &Board{n: n, m: m, lanes: make([]lane, n)}
	for i := range b.lanes {
		b.lanes[i].written = bitvec.New(m)
		b.lanes[i].values = bitvec.New(m)
	}
	return b
}

// Players returns the number of player lanes.
func (b *Board) Players() int { return b.n }

// Objects returns the number of object columns.
func (b *Board) Objects() int { return b.m }

// Write publishes player p's value for object o. The first write to a cell
// sticks; later writes to the same cell are ignored. Write is safe for
// concurrent use. It panics if the board has been sealed by Freeze —
// publishing after the tally barrier is a protocol-phase ordering bug.
// The sealed check happens under the lane lock, so a write racing Freeze
// either completes before the seal or panics; it can never mutate a lane
// the frozen view is already reading.
func (b *Board) Write(p, o int, v bool) {
	ln := &b.lanes[p]
	ln.mu.Lock()
	if b.sealed.Load() {
		ln.mu.Unlock()
		panic("board: Write after Freeze")
	}
	if !ln.written.Get(o) {
		ln.written.Set(o, true)
		ln.values.Set(o, v)
	}
	ln.mu.Unlock()
	b.writes.add(p)
}

// WriteWord publishes player p's values for every object whose bit is set
// in written, within object word wi (objects wi*64 … wi*64+63); bit j of
// values is the value for object wi*64+j (bits of values outside written
// are ignored). Cells keep first-write-wins semantics per object, and the
// whole word costs one lane lock acquisition and one counter update: the
// write count charges popcount(written) — one write per distinct cell in
// the mask, the same as writing those cells through per-object Write
// calls. (A caller that would have issued duplicate Write calls for one
// cell and instead collapses them into a mask bit charges the duplicates
// only once; the workshare does exactly that, so its write counts are
// lower than the pre-word-level implementation's for the same seed.)
// Like Write it is safe for concurrent use and panics after Freeze.
func (b *Board) WriteWord(p, wi int, written, values uint64) {
	written &= b.lanes[p].written.WordMask(wi)
	if written == 0 {
		return
	}
	ln := &b.lanes[p]
	ln.mu.Lock()
	if b.sealed.Load() {
		ln.mu.Unlock()
		panic("board: WriteWord after Freeze")
	}
	newBits := written &^ ln.written.Word(wi)
	ln.written.OrWord(wi, newBits)
	ln.values.OrWord(wi, values&newBits)
	ln.mu.Unlock()
	b.writes.addN(p, int64(bits.OnesCount64(written)))
}

// WriteVector publishes player p's values for every object whose bit is
// set in written, across the whole lane; values is read on written's
// positions only. Both vectors must have length Objects(). It is WriteWord
// applied to every non-empty word.
func (b *Board) WriteVector(p int, written, values bitvec.Vector) {
	if written.Len() != b.m || values.Len() != b.m {
		panic("board: WriteVector length mismatch")
	}
	for wi := 0; wi < written.Words(); wi++ {
		if w := written.Word(wi); w != 0 {
			b.WriteWord(p, wi, w, values.Word(wi))
		}
	}
}

// Read returns player p's published value for object o and whether p has
// published one.
func (b *Board) Read(p, o int) (value, ok bool) {
	ln := &b.lanes[p]
	ln.mu.RLock()
	ok = ln.written.Get(o)
	value = ln.values.Get(o)
	ln.mu.RUnlock()
	b.reads.add(p)
	return value, ok
}

// Votes tallies the published values for object o among the given players.
// Players that have not published for o are skipped.
func (b *Board) Votes(o int, players []int) (ones, zeros int) {
	for _, p := range players {
		v, ok := b.Read(p, o)
		if !ok {
			continue
		}
		if v {
			ones++
		} else {
			zeros++
		}
	}
	return ones, zeros
}

// Snapshot returns a copy of player p's published (mask, values) pair. The
// Snapshot call itself counts as one board read; examining the returned
// copies is free (they share no storage with the board).
func (b *Board) Snapshot(p int) (written, values bitvec.Vector) {
	ln := &b.lanes[p]
	ln.mu.RLock()
	defer ln.mu.RUnlock()
	b.reads.add(p)
	return ln.written.Clone(), ln.values.Clone()
}

// Frozen is an immutable view of a sealed board, produced by Freeze at the
// barrier between a publish phase and a tally phase. Its reads take no
// locks: the underlying lanes cannot change once the board is sealed, so
// any number of goroutines may tally concurrently. Reads are still charged
// to the board's communication counters (striped, so concurrent tallying
// does not contend on a single counter word).
type Frozen struct {
	b *Board
}

// Freeze seals the board against further writes and returns the immutable
// view. Sealing is permanent for the board's lifetime (boards are
// per-phase objects; Reset unseals for reuse). Freeze is the phase
// barrier: after setting the seal it acquires and releases every lane
// lock, so any write that slipped in before the seal has fully completed
// before Freeze returns, and any later write panics under its lane lock.
func (b *Board) Freeze() *Frozen {
	b.sealed.Store(true)
	for i := range b.lanes {
		// The empty critical section is the barrier: it flushes any writer
		// that entered its lane before the seal became visible.
		b.lanes[i].mu.Lock()
		b.lanes[i].mu.Unlock() //nolint:staticcheck // SA2001: intentional
	}
	return &Frozen{b: b}
}

// Read returns player p's published value for object o and whether p has
// published one, without locking. It counts as one board read.
func (f *Frozen) Read(p, o int) (value, ok bool) {
	ln := &f.b.lanes[p]
	ok = ln.written.Get(o)
	value = ln.values.Get(o)
	f.b.reads.add(p)
	return value, ok
}

// Votes tallies the published values for object o among the given players,
// lock-free. Players that have not published for o are skipped.
func (f *Frozen) Votes(o int, players []int) (ones, zeros int) {
	for _, p := range players {
		v, ok := f.Read(p, o)
		if !ok {
			continue
		}
		if v {
			ones++
		} else {
			zeros++
		}
	}
	return ones, zeros
}

// tallyPlanes is the maximum number of bit planes a word tally carries:
// per-object vote counts are bounded by the player count, so 2^20 voters
// is far beyond any board this repository builds.
const tallyPlanes = 20

// wordTally accumulates per-object vote counts for one 64-object word
// across many player lanes in bit-sliced form: plane k holds bit k of each
// object's running count. Adding a lane word is O(log count) word
// operations instead of 64 per-object increments, which is what makes the
// frozen tally word-level instead of cell-level. The zero value is an
// empty tally; it lives on the caller's stack (no allocation).
type wordTally struct {
	ones  [tallyPlanes]uint64 // bit-sliced count of value-1 votes
	total [tallyPlanes]uint64 // bit-sliced count of all votes
	hiOne int                 // highest ones plane touched
	hiTot int                 // highest total plane touched
}

// addPlane adds the set bits of x, interpreted as per-object increments,
// into the bit-sliced counter p, returning the highest plane carried into.
func addPlane(p *[tallyPlanes]uint64, hi int, x uint64) int {
	k := 0
	for carry := x; carry != 0; k++ {
		p[k], carry = p[k]^carry, p[k]&carry
	}
	if k-1 > hi {
		hi = k - 1
	}
	return hi
}

// add accumulates one lane's word: written marks the objects the lane
// voted on, vals the value-1 votes among them (vals ⊆ written).
func (t *wordTally) add(written, vals uint64) {
	if written == 0 {
		return
	}
	t.hiTot = addPlane(&t.total, t.hiTot, written)
	if vals != 0 {
		t.hiOne = addPlane(&t.ones, t.hiOne, vals)
	}
}

// counts returns the number of value-1 votes and total votes for object
// bit b of the tallied word.
func (t *wordTally) counts(b int) (ones, total int) {
	for k := t.hiOne; k >= 0; k-- {
		ones = ones<<1 | int((t.ones[k]>>uint(b))&1)
	}
	for k := t.hiTot; k >= 0; k-- {
		total = total<<1 | int((t.total[k]>>uint(b))&1)
	}
	return ones, total
}

// majority returns the word whose bit b is set iff strictly more than half
// of the votes for object bit b are ones (no votes → 0, matching the
// ones > zeros rule of Votes).
func (t *wordTally) majority() uint64 {
	var any uint64
	for k := 0; k <= t.hiTot; k++ {
		any |= t.total[k]
	}
	var maj uint64
	for x := any; x != 0; x &= x - 1 {
		b := bits.TrailingZeros64(x)
		ones, total := t.counts(b)
		if 2*ones > total {
			maj |= 1 << uint(b)
		}
	}
	return maj
}

// VotesWord tallies, for every object of word wi (objects wi*64 …
// wi*64+63), the published values among the given players, storing the
// value-1 count in ones[b] and the total published count in total[b] for
// object bit b. It is the word-level Votes: instead of one Read per
// (object, player) cell it loads two lane words per player, so a full
// 64-object tally costs O(players·log players) word operations and
// allocates nothing. Reads are charged as one per consulted lane word
// (each player's lane is read once), in a single counter update.
func (f *Frozen) VotesWord(wi int, players []int, ones, total *[64]int32) {
	var t wordTally
	for _, p := range players {
		ln := &f.b.lanes[p]
		w := ln.written.Word(wi)
		t.add(w, ln.values.Word(wi)&w)
	}
	f.b.reads.addN(wi, int64(len(players)))
	for b := 0; b < 64; b++ {
		o, c := t.counts(b)
		ones[b], total[b] = int32(o), int32(c)
	}
}

// MajorityWord returns, for object word wi, the word whose bit b is set
// iff strictly more than half of the players that published for object
// wi*64+b published a 1 — the per-object ones > zeros rule of the
// workshare tally, computed from whole lane words. Objects nobody
// published for get 0. Allocation-free; reads are charged as one per
// consulted lane word in a single counter update — note the consulted
// set is every player passed in (each lane word is loaded whether or not
// that player published), not the per-object publishers a cell-level
// Votes loop would have charged, so read counts measure the word-level
// protocol's communication, not the cell-level one.
func (f *Frozen) MajorityWord(wi int, players []int) uint64 {
	var t wordTally
	for _, p := range players {
		ln := &f.b.lanes[p]
		w := ln.written.Word(wi)
		t.add(w, ln.values.Word(wi)&w)
	}
	f.b.reads.addN(wi, int64(len(players)))
	return t.majority()
}

// MajorityInto fills dst (length Objects()) with the per-object majority
// of the given players' published values, word by word — the whole-board
// MajorityWord. It allocates nothing.
func (f *Frozen) MajorityInto(dst bitvec.Vector, players []int) {
	if dst.Len() != f.b.m {
		panic("board: MajorityInto length mismatch")
	}
	for wi := 0; wi < dst.Words(); wi++ {
		dst.SetWord(wi, f.MajorityWord(wi, players))
	}
}

// WriteCount returns the total number of Write calls (communication cost).
func (b *Board) WriteCount() int64 { return b.writes.total() }

// ReadCount returns the total number of Read/Votes/Snapshot accesses.
func (b *Board) ReadCount() int64 { return b.reads.total() }

// Reset clears all lanes and counters and unseals the board, reusing the
// allocated storage: lanes are zeroed in place, so a reset costs no
// allocations (board pooling across protocol runs depends on this). Any
// Frozen views taken before Reset must be discarded — they would read the
// new phase's lanes, not a snapshot of the old one.
func (b *Board) Reset() {
	b.sealed.Store(false)
	for i := range b.lanes {
		ln := &b.lanes[i]
		ln.mu.Lock()
		ln.written.Zero()
		ln.values.Zero()
		ln.mu.Unlock()
	}
	b.writes.reset()
	b.reads.reset()
}
