package board

import (
	"sync"
	"testing"

	"collabscore/internal/bitvec"
)

func TestWriteRead(t *testing.T) {
	b := New(3, 5)
	if _, ok := b.Read(0, 0); ok {
		t.Fatal("fresh board has data")
	}
	b.Write(0, 0, true)
	v, ok := b.Read(0, 0)
	if !ok || !v {
		t.Fatalf("Read = (%v,%v), want (true,true)", v, ok)
	}
	b.Write(1, 4, false)
	v, ok = b.Read(1, 4)
	if !ok || v {
		t.Fatalf("Read = (%v,%v), want (false,true)", v, ok)
	}
}

func TestFirstWriteWins(t *testing.T) {
	b := New(1, 1)
	b.Write(0, 0, true)
	b.Write(0, 0, false) // attempt to flip-flop
	v, ok := b.Read(0, 0)
	if !ok || !v {
		t.Fatal("second write overrode the first")
	}
}

func TestLaneIsolation(t *testing.T) {
	// Player 1's writes must never affect player 0's lane.
	b := New(2, 4)
	b.Write(0, 2, true)
	b.Write(1, 2, false)
	v, ok := b.Read(0, 2)
	if !ok || !v {
		t.Fatal("player 1 corrupted player 0's lane")
	}
}

func TestVotes(t *testing.T) {
	b := New(5, 1)
	b.Write(0, 0, true)
	b.Write(1, 0, true)
	b.Write(2, 0, false)
	// players 3,4 abstain
	ones, zeros := b.Votes(0, []int{0, 1, 2, 3, 4})
	if ones != 2 || zeros != 1 {
		t.Fatalf("Votes = (%d,%d), want (2,1)", ones, zeros)
	}
	ones, zeros = b.Votes(0, []int{3, 4})
	if ones != 0 || zeros != 0 {
		t.Fatalf("abstainers counted: (%d,%d)", ones, zeros)
	}
}

func TestSnapshot(t *testing.T) {
	b := New(2, 8)
	b.Write(0, 1, true)
	b.Write(0, 3, false)
	written, values := b.Snapshot(0)
	if !written.Get(1) || !written.Get(3) || written.Get(0) {
		t.Fatal("snapshot mask wrong")
	}
	if !values.Get(1) || values.Get(3) {
		t.Fatal("snapshot values wrong")
	}
	// Snapshot must be a copy.
	written.Set(0, true)
	w2, _ := b.Snapshot(0)
	if w2.Get(0) {
		t.Fatal("snapshot shares storage with board")
	}
}

func TestCounters(t *testing.T) {
	b := New(2, 2)
	b.Write(0, 0, true)
	b.Write(0, 1, true)
	b.Read(0, 0)
	if b.WriteCount() != 2 {
		t.Fatalf("WriteCount = %d, want 2", b.WriteCount())
	}
	if b.ReadCount() != 1 {
		t.Fatalf("ReadCount = %d, want 1", b.ReadCount())
	}
	b.Reset()
	if b.WriteCount() != 0 || b.ReadCount() != 0 {
		t.Fatal("Reset did not clear counters")
	}
	if _, ok := b.Read(0, 0); ok {
		t.Fatal("Reset did not clear data")
	}
}

func TestConcurrentWrites(t *testing.T) {
	const n, m = 8, 256
	b := New(n, m)
	var wg sync.WaitGroup
	for p := 0; p < n; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for o := 0; o < m; o++ {
				b.Write(p, o, (p+o)%2 == 0)
			}
		}(p)
	}
	wg.Wait()
	for p := 0; p < n; p++ {
		for o := 0; o < m; o++ {
			v, ok := b.Read(p, o)
			if !ok || v != ((p+o)%2 == 0) {
				t.Fatalf("cell (%d,%d) = (%v,%v)", p, o, v, ok)
			}
		}
	}
	if b.WriteCount() != n*m {
		t.Fatalf("WriteCount = %d, want %d", b.WriteCount(), n*m)
	}
}

func TestFrozenReadsMatchBoard(t *testing.T) {
	b := New(4, 16)
	b.Write(0, 3, true)
	b.Write(1, 3, false)
	b.Write(2, 7, true)
	f := b.Freeze()
	for p := 0; p < 4; p++ {
		for o := 0; o < 16; o++ {
			wantV, wantOK := b.Read(p, o)
			gotV, gotOK := f.Read(p, o)
			if wantV != gotV || wantOK != gotOK {
				t.Fatalf("cell (%d,%d): frozen (%v,%v) vs board (%v,%v)", p, o, gotV, gotOK, wantV, wantOK)
			}
		}
	}
	ones, zeros := f.Votes(3, []int{0, 1, 2, 3})
	if ones != 1 || zeros != 1 {
		t.Fatalf("frozen Votes = (%d,%d), want (1,1)", ones, zeros)
	}
}

func TestFrozenReadsAreCounted(t *testing.T) {
	b := New(2, 2)
	b.Write(0, 0, true)
	before := b.ReadCount()
	f := b.Freeze()
	f.Read(0, 0)
	f.Votes(0, []int{0, 1})
	if got := b.ReadCount() - before; got != 3 {
		t.Fatalf("frozen reads counted %d, want 3", got)
	}
}

func TestWriteAfterFreezePanics(t *testing.T) {
	b := New(1, 1)
	b.Write(0, 0, true)
	b.Freeze()
	defer func() {
		if recover() == nil {
			t.Fatal("Write after Freeze did not panic")
		}
	}()
	b.Write(0, 0, false)
}

func TestResetUnseals(t *testing.T) {
	b := New(1, 2)
	b.Write(0, 0, true)
	b.Freeze()
	b.Reset()
	b.Write(0, 1, true) // must not panic
	if v, ok := b.Read(0, 1); !ok || !v {
		t.Fatal("write after Reset lost")
	}
}

// TestFrozenConcurrentReads exercises the lock-free tally path under the
// race detector: a parallel publish phase, a Freeze barrier, then many
// goroutines reading the immutable view at once.
func TestFrozenConcurrentReads(t *testing.T) {
	const n, m = 8, 256
	b := New(n, m)
	var wg sync.WaitGroup
	for p := 0; p < n; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for o := 0; o < m; o++ {
				b.Write(p, o, (p*o)%3 == 0)
			}
		}(p)
	}
	wg.Wait()
	f := b.Freeze()
	players := []int{0, 1, 2, 3, 4, 5, 6, 7}
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for o := 0; o < m; o++ {
				if v, ok := f.Read(o%n, o); !ok || v != ((o%n)*o%3 == 0) {
					t.Errorf("frozen cell (%d,%d) wrong: (%v,%v)", o%n, o, v, ok)
				}
				ones, zeros := f.Votes(o, players)
				if ones+zeros != n {
					t.Errorf("object %d: %d votes, want %d", o, ones+zeros, n)
				}
			}
		}()
	}
	wg.Wait()
}

func TestDims(t *testing.T) {
	b := New(3, 7)
	if b.Players() != 3 || b.Objects() != 7 {
		t.Fatalf("dims = (%d,%d), want (3,7)", b.Players(), b.Objects())
	}
}

// TestWriteWordSemantics: word writes keep per-cell first-write-wins
// against both earlier word writes and earlier bit writes, mask the tail,
// and count one write per cell published.
func TestWriteWordSemantics(t *testing.T) {
	b := New(2, 70) // two words, 6-bit tail
	b.Write(0, 1, true)
	b.WriteWord(0, 0, 0b0110, 0b0000) // cell 1 already written true: must stick
	if v, ok := b.Read(0, 1); !ok || !v {
		t.Fatalf("cell (0,1) = (%v,%v), want first write (true,true)", v, ok)
	}
	if v, ok := b.Read(0, 2); !ok || v {
		t.Fatalf("cell (0,2) = (%v,%v), want (false,true)", v, ok)
	}
	// Values outside written must be ignored.
	b.WriteWord(0, 0, 0b1000, ^uint64(0))
	if v, ok := b.Read(0, 3); !ok || !v {
		t.Fatalf("cell (0,3) = (%v,%v), want (true,true)", v, ok)
	}
	if _, ok := b.Read(0, 4); ok {
		t.Fatal("cell (0,4) written despite written mask bit clear")
	}
	// Tail word: bits past Objects() are masked off.
	b.WriteWord(1, 1, ^uint64(0), ^uint64(0))
	for o := 64; o < 70; o++ {
		if v, ok := b.Read(1, o); !ok || !v {
			t.Fatalf("tail cell (1,%d) = (%v,%v)", o, v, ok)
		}
	}
	// writes: 1 (bit) + 2 (word cells) + 1 (word cell) + 6 (valid tail cells)
	if got := b.WriteCount(); got != 10 {
		t.Fatalf("WriteCount = %d, want 10", got)
	}
}

// TestWriteVector covers the whole-lane vector write.
func TestWriteVector(t *testing.T) {
	b := New(2, 130)
	written := make([]bool, 130)
	values := make([]bool, 130)
	for o := 0; o < 130; o += 3 {
		written[o] = true
		values[o] = o%2 == 0
	}
	b.WriteVector(1, bitvec.FromBools(written), bitvec.FromBools(values))
	for o := 0; o < 130; o++ {
		v, ok := b.Read(1, o)
		if ok != written[o] {
			t.Fatalf("cell (1,%d): ok = %v, want %v", o, ok, written[o])
		}
		if ok && v != values[o] {
			t.Fatalf("cell (1,%d): value = %v, want %v", o, v, values[o])
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("length-mismatched WriteVector did not panic")
		}
	}()
	b.WriteVector(0, bitvec.FromBools(written[:10]), bitvec.FromBools(values[:10]))
}

// TestWriteWordAfterFreezePanics mirrors the Write ordering contract.
func TestWriteWordAfterFreezePanics(t *testing.T) {
	b := New(1, 64)
	b.Freeze()
	defer func() {
		if recover() == nil {
			t.Fatal("WriteWord after Freeze did not panic")
		}
	}()
	b.WriteWord(0, 0, 1, 1)
}

// TestWordTallyMatchesVotes pins the word-level tally against the
// per-object reference on randomized boards: VotesWord counts,
// MajorityWord bits and MajorityInto vectors must all agree with Votes.
func TestWordTallyMatchesVotes(t *testing.T) {
	const n, m = 37, 200
	s := uint64(42)
	next := func() uint64 { s = s*6364136223846793005 + 1442695040888963407; return s >> 33 }
	b := New(n, m)
	for p := 0; p < n; p++ {
		for o := 0; o < m; o++ {
			switch next() % 3 {
			case 0:
				b.Write(p, o, next()&1 == 1)
			case 1: // leave unwritten
			case 2:
				if o%64 == 0 {
					w := next() | 1
					b.WriteWord(p, o/64, w, next())
				}
			}
		}
	}
	f := b.Freeze()
	players := make([]int, n)
	for i := range players {
		players[i] = i
	}
	maj := bitvec.New(m)
	f.MajorityInto(maj, players)
	for wi := 0; wi < (m+63)/64; wi++ {
		var ones, total [64]int32
		f.VotesWord(wi, players, &ones, &total)
		mw := f.MajorityWord(wi, players)
		for bpos := 0; bpos < 64; bpos++ {
			o := wi*64 + bpos
			if o >= m {
				if ones[bpos] != 0 || total[bpos] != 0 {
					t.Fatalf("tail object %d has counts", o)
				}
				continue
			}
			wantOnes, wantZeros := f.Votes(o, players)
			if int(ones[bpos]) != wantOnes || int(total[bpos]) != wantOnes+wantZeros {
				t.Fatalf("object %d: VotesWord = (%d,%d), Votes = (%d,%d)",
					o, ones[bpos], total[bpos], wantOnes, wantOnes+wantZeros)
			}
			wantMaj := wantOnes > wantZeros
			if gotMaj := mw&(1<<uint(bpos)) != 0; gotMaj != wantMaj {
				t.Fatalf("object %d: MajorityWord bit = %v, Votes majority = %v", o, gotMaj, wantMaj)
			}
			if maj.Get(o) != wantMaj {
				t.Fatalf("object %d: MajorityInto bit = %v, want %v", o, maj.Get(o), wantMaj)
			}
		}
	}
}

// TestMajorityWordAllocFree: the frozen word tally must not allocate
// (satellite regression guard).
func TestMajorityWordAllocFree(t *testing.T) {
	const n, m = 64, 1024
	b := New(n, m)
	for p := 0; p < n; p++ {
		for wi := 0; wi < (m+63)/64; wi++ {
			b.WriteWord(p, wi, ^uint64(0), uint64(p)*0x9E3779B97F4A7C15)
		}
	}
	f := b.Freeze()
	players := make([]int, n)
	for i := range players {
		players[i] = i
	}
	maj := bitvec.New(m)
	var sink uint64
	if a := testing.AllocsPerRun(100, func() {
		sink += f.MajorityWord(3, players)
		f.MajorityInto(maj, players)
	}); a != 0 {
		t.Fatalf("word tally allocates %v times per run", a)
	}
	_ = sink
}

// TestResetReusesStorage: Reset clears lanes in place — no allocations —
// so boards can be pooled across protocol runs (core.Mem), and a reset
// board behaves exactly like a new one.
func TestResetReusesStorage(t *testing.T) {
	b := New(4, 130)
	b.Write(1, 5, true)
	b.WriteWord(2, 1, 0xF0, 0x50)
	f := b.Freeze()
	if _, ok := f.Read(1, 5); !ok {
		t.Fatal("write lost before reset")
	}

	allocs := testing.AllocsPerRun(10, func() { b.Reset() })
	if allocs != 0 {
		t.Fatalf("Reset allocates %v times; board pooling depends on 0", allocs)
	}

	if b.WriteCount() != 0 || b.ReadCount() != 0 {
		t.Fatal("Reset did not clear counters")
	}
	if _, ok := b.Read(1, 5); ok {
		t.Fatal("Reset did not clear lanes")
	}
	// Unsealed again: writes work and tally like a fresh board.
	b.Write(0, 7, true)
	fz := b.Freeze()
	ones, zeros := fz.Votes(7, []int{0, 1, 2, 3})
	if ones != 1 || zeros != 0 {
		t.Fatalf("votes after reset = %d/%d", ones, zeros)
	}
}
