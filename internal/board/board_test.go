package board

import (
	"sync"
	"testing"
)

func TestWriteRead(t *testing.T) {
	b := New(3, 5)
	if _, ok := b.Read(0, 0); ok {
		t.Fatal("fresh board has data")
	}
	b.Write(0, 0, true)
	v, ok := b.Read(0, 0)
	if !ok || !v {
		t.Fatalf("Read = (%v,%v), want (true,true)", v, ok)
	}
	b.Write(1, 4, false)
	v, ok = b.Read(1, 4)
	if !ok || v {
		t.Fatalf("Read = (%v,%v), want (false,true)", v, ok)
	}
}

func TestFirstWriteWins(t *testing.T) {
	b := New(1, 1)
	b.Write(0, 0, true)
	b.Write(0, 0, false) // attempt to flip-flop
	v, ok := b.Read(0, 0)
	if !ok || !v {
		t.Fatal("second write overrode the first")
	}
}

func TestLaneIsolation(t *testing.T) {
	// Player 1's writes must never affect player 0's lane.
	b := New(2, 4)
	b.Write(0, 2, true)
	b.Write(1, 2, false)
	v, ok := b.Read(0, 2)
	if !ok || !v {
		t.Fatal("player 1 corrupted player 0's lane")
	}
}

func TestVotes(t *testing.T) {
	b := New(5, 1)
	b.Write(0, 0, true)
	b.Write(1, 0, true)
	b.Write(2, 0, false)
	// players 3,4 abstain
	ones, zeros := b.Votes(0, []int{0, 1, 2, 3, 4})
	if ones != 2 || zeros != 1 {
		t.Fatalf("Votes = (%d,%d), want (2,1)", ones, zeros)
	}
	ones, zeros = b.Votes(0, []int{3, 4})
	if ones != 0 || zeros != 0 {
		t.Fatalf("abstainers counted: (%d,%d)", ones, zeros)
	}
}

func TestSnapshot(t *testing.T) {
	b := New(2, 8)
	b.Write(0, 1, true)
	b.Write(0, 3, false)
	written, values := b.Snapshot(0)
	if !written.Get(1) || !written.Get(3) || written.Get(0) {
		t.Fatal("snapshot mask wrong")
	}
	if !values.Get(1) || values.Get(3) {
		t.Fatal("snapshot values wrong")
	}
	// Snapshot must be a copy.
	written.Set(0, true)
	w2, _ := b.Snapshot(0)
	if w2.Get(0) {
		t.Fatal("snapshot shares storage with board")
	}
}

func TestCounters(t *testing.T) {
	b := New(2, 2)
	b.Write(0, 0, true)
	b.Write(0, 1, true)
	b.Read(0, 0)
	if b.WriteCount() != 2 {
		t.Fatalf("WriteCount = %d, want 2", b.WriteCount())
	}
	if b.ReadCount() != 1 {
		t.Fatalf("ReadCount = %d, want 1", b.ReadCount())
	}
	b.Reset()
	if b.WriteCount() != 0 || b.ReadCount() != 0 {
		t.Fatal("Reset did not clear counters")
	}
	if _, ok := b.Read(0, 0); ok {
		t.Fatal("Reset did not clear data")
	}
}

func TestConcurrentWrites(t *testing.T) {
	const n, m = 8, 256
	b := New(n, m)
	var wg sync.WaitGroup
	for p := 0; p < n; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for o := 0; o < m; o++ {
				b.Write(p, o, (p+o)%2 == 0)
			}
		}(p)
	}
	wg.Wait()
	for p := 0; p < n; p++ {
		for o := 0; o < m; o++ {
			v, ok := b.Read(p, o)
			if !ok || v != ((p+o)%2 == 0) {
				t.Fatalf("cell (%d,%d) = (%v,%v)", p, o, v, ok)
			}
		}
	}
	if b.WriteCount() != n*m {
		t.Fatalf("WriteCount = %d, want %d", b.WriteCount(), n*m)
	}
}

func TestDims(t *testing.T) {
	b := New(3, 7)
	if b.Players() != 3 || b.Objects() != 7 {
		t.Fatalf("dims = (%d,%d), want (3,7)", b.Players(), b.Objects())
	}
}
