package board

import (
	"sync"
	"testing"
)

func TestWriteRead(t *testing.T) {
	b := New(3, 5)
	if _, ok := b.Read(0, 0); ok {
		t.Fatal("fresh board has data")
	}
	b.Write(0, 0, true)
	v, ok := b.Read(0, 0)
	if !ok || !v {
		t.Fatalf("Read = (%v,%v), want (true,true)", v, ok)
	}
	b.Write(1, 4, false)
	v, ok = b.Read(1, 4)
	if !ok || v {
		t.Fatalf("Read = (%v,%v), want (false,true)", v, ok)
	}
}

func TestFirstWriteWins(t *testing.T) {
	b := New(1, 1)
	b.Write(0, 0, true)
	b.Write(0, 0, false) // attempt to flip-flop
	v, ok := b.Read(0, 0)
	if !ok || !v {
		t.Fatal("second write overrode the first")
	}
}

func TestLaneIsolation(t *testing.T) {
	// Player 1's writes must never affect player 0's lane.
	b := New(2, 4)
	b.Write(0, 2, true)
	b.Write(1, 2, false)
	v, ok := b.Read(0, 2)
	if !ok || !v {
		t.Fatal("player 1 corrupted player 0's lane")
	}
}

func TestVotes(t *testing.T) {
	b := New(5, 1)
	b.Write(0, 0, true)
	b.Write(1, 0, true)
	b.Write(2, 0, false)
	// players 3,4 abstain
	ones, zeros := b.Votes(0, []int{0, 1, 2, 3, 4})
	if ones != 2 || zeros != 1 {
		t.Fatalf("Votes = (%d,%d), want (2,1)", ones, zeros)
	}
	ones, zeros = b.Votes(0, []int{3, 4})
	if ones != 0 || zeros != 0 {
		t.Fatalf("abstainers counted: (%d,%d)", ones, zeros)
	}
}

func TestSnapshot(t *testing.T) {
	b := New(2, 8)
	b.Write(0, 1, true)
	b.Write(0, 3, false)
	written, values := b.Snapshot(0)
	if !written.Get(1) || !written.Get(3) || written.Get(0) {
		t.Fatal("snapshot mask wrong")
	}
	if !values.Get(1) || values.Get(3) {
		t.Fatal("snapshot values wrong")
	}
	// Snapshot must be a copy.
	written.Set(0, true)
	w2, _ := b.Snapshot(0)
	if w2.Get(0) {
		t.Fatal("snapshot shares storage with board")
	}
}

func TestCounters(t *testing.T) {
	b := New(2, 2)
	b.Write(0, 0, true)
	b.Write(0, 1, true)
	b.Read(0, 0)
	if b.WriteCount() != 2 {
		t.Fatalf("WriteCount = %d, want 2", b.WriteCount())
	}
	if b.ReadCount() != 1 {
		t.Fatalf("ReadCount = %d, want 1", b.ReadCount())
	}
	b.Reset()
	if b.WriteCount() != 0 || b.ReadCount() != 0 {
		t.Fatal("Reset did not clear counters")
	}
	if _, ok := b.Read(0, 0); ok {
		t.Fatal("Reset did not clear data")
	}
}

func TestConcurrentWrites(t *testing.T) {
	const n, m = 8, 256
	b := New(n, m)
	var wg sync.WaitGroup
	for p := 0; p < n; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for o := 0; o < m; o++ {
				b.Write(p, o, (p+o)%2 == 0)
			}
		}(p)
	}
	wg.Wait()
	for p := 0; p < n; p++ {
		for o := 0; o < m; o++ {
			v, ok := b.Read(p, o)
			if !ok || v != ((p+o)%2 == 0) {
				t.Fatalf("cell (%d,%d) = (%v,%v)", p, o, v, ok)
			}
		}
	}
	if b.WriteCount() != n*m {
		t.Fatalf("WriteCount = %d, want %d", b.WriteCount(), n*m)
	}
}

func TestFrozenReadsMatchBoard(t *testing.T) {
	b := New(4, 16)
	b.Write(0, 3, true)
	b.Write(1, 3, false)
	b.Write(2, 7, true)
	f := b.Freeze()
	for p := 0; p < 4; p++ {
		for o := 0; o < 16; o++ {
			wantV, wantOK := b.Read(p, o)
			gotV, gotOK := f.Read(p, o)
			if wantV != gotV || wantOK != gotOK {
				t.Fatalf("cell (%d,%d): frozen (%v,%v) vs board (%v,%v)", p, o, gotV, gotOK, wantV, wantOK)
			}
		}
	}
	ones, zeros := f.Votes(3, []int{0, 1, 2, 3})
	if ones != 1 || zeros != 1 {
		t.Fatalf("frozen Votes = (%d,%d), want (1,1)", ones, zeros)
	}
}

func TestFrozenReadsAreCounted(t *testing.T) {
	b := New(2, 2)
	b.Write(0, 0, true)
	before := b.ReadCount()
	f := b.Freeze()
	f.Read(0, 0)
	f.Votes(0, []int{0, 1})
	if got := b.ReadCount() - before; got != 3 {
		t.Fatalf("frozen reads counted %d, want 3", got)
	}
}

func TestWriteAfterFreezePanics(t *testing.T) {
	b := New(1, 1)
	b.Write(0, 0, true)
	b.Freeze()
	defer func() {
		if recover() == nil {
			t.Fatal("Write after Freeze did not panic")
		}
	}()
	b.Write(0, 0, false)
}

func TestResetUnseals(t *testing.T) {
	b := New(1, 2)
	b.Write(0, 0, true)
	b.Freeze()
	b.Reset()
	b.Write(0, 1, true) // must not panic
	if v, ok := b.Read(0, 1); !ok || !v {
		t.Fatal("write after Reset lost")
	}
}

// TestFrozenConcurrentReads exercises the lock-free tally path under the
// race detector: a parallel publish phase, a Freeze barrier, then many
// goroutines reading the immutable view at once.
func TestFrozenConcurrentReads(t *testing.T) {
	const n, m = 8, 256
	b := New(n, m)
	var wg sync.WaitGroup
	for p := 0; p < n; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for o := 0; o < m; o++ {
				b.Write(p, o, (p*o)%3 == 0)
			}
		}(p)
	}
	wg.Wait()
	f := b.Freeze()
	players := []int{0, 1, 2, 3, 4, 5, 6, 7}
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for o := 0; o < m; o++ {
				if v, ok := f.Read(o%n, o); !ok || v != ((o%n)*o%3 == 0) {
					t.Errorf("frozen cell (%d,%d) wrong: (%v,%v)", o%n, o, v, ok)
				}
				ones, zeros := f.Votes(o, players)
				if ones+zeros != n {
					t.Errorf("object %d: %d votes, want %d", o, ones+zeros, n)
				}
			}
		}()
	}
	wg.Wait()
}

func TestDims(t *testing.T) {
	b := New(3, 7)
	if b.Players() != 3 || b.Objects() != 7 {
		t.Fatalf("dims = (%d,%d), want (3,7)", b.Players(), b.Objects())
	}
}
