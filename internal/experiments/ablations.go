package experiments

import (
	"collabscore/internal/adversary"
	"collabscore/internal/core"
	"collabscore/internal/metrics"
	"collabscore/internal/prefgen"
	"collabscore/internal/sim"
	"collabscore/internal/tablefmt"
	"collabscore/internal/world"
	"collabscore/internal/xrand"
)

// Ablations returns the design-choice sweeps (A1–A4). They are not paper
// claims; they quantify how each protocol knob buys its guarantee, and they
// justify the Scaled constants documented in DESIGN.md §4.
func Ablations() []Experiment {
	return []Experiment{
		{"A1", "Work-share redundancy", "Θ(log n) probers per object: below ~1/ln n the Byzantine majority flips", runA1},
		{"A2", "Edge threshold", "Lemma 8 window: too tight → no clusters, too loose → merged clusters", runA2},
		{"A3", "Byzantine repetitions", "Θ(log n) election repeats: failure probability decays geometrically", runA3},
		{"A4", "Sample rate", "Lemma 6 window: the sample must be large enough to separate clusters", runA4},
	}
}

// AllWithAblations returns claim experiments followed by ablations.
func AllWithAblations() []Experiment { return append(All(), Ablations()...) }

// runA1 sweeps the redundancy factor (probers per object) with
// tolerance-level corruption: accuracy holds until the majority loses its
// Chernoff margin.
func runA1(cfg Config) *tablefmt.Table {
	t := header("A1 redundancy ablation", cfg,
		"redundancy factor", "probers/object", "max err (byz)", "mean err (byz)")
	n, d := cfg.N, 32
	factors := []float64{0.25, 0.5, 1.5, 3}
	if cfg.Quick {
		factors = []float64{0.5, 1.5}
	}
	for _, rf := range factors {
		agg := sim.RunSequential(cfg.Trials, cfg.Seed+uint64(rf*100), func(trial int, rng *xrand.Stream) map[string]float64 {
			in := prefgen.DiameterClusters(rng.Split(1), n, n, n/cfg.B, d)
			w := world.New(in.Truth)
			pr := core.Scaled(n, cfg.B)
			pr.RedundancyFactor = rf
			pr.MinD, pr.MaxD = d, d
			f := pr.MaxDishonest(n)
			adversary.Corrupt(w, f, rng.Split(7).Perm(n), func(p int) world.Behavior {
				return adversary.StrangeObjectAttacker{Seed: 0xA1}
			})
			res := core.Run(w, rng.Split(2), pr)
			es := metrics.Error(w, res.Output)
			return map[string]float64{"max": float64(es.Max), "mean": es.Mean}
		})
		t.AddRow(rf, core.Params{RedundancyFactor: rf}.Redundancy(n), agg["max"].Mean, agg["mean"].Mean)
	}
	return t
}

// runA2 sweeps the neighbor-graph edge threshold around the Lemma 8 window.
func runA2(cfg Config) *tablefmt.Table {
	t := header("A2 edge-threshold ablation", cfg,
		"edge factor", "threshold", "clusters", "unassigned", "max err")
	n, d := cfg.N, 32
	factors := []float64{1, 2, 4, 8, 16}
	if cfg.Quick {
		factors = []float64{2, 4}
	}
	for _, ef := range factors {
		agg := sim.RunSequential(cfg.Trials, cfg.Seed+uint64(ef), func(trial int, rng *xrand.Stream) map[string]float64 {
			in := prefgen.DiameterClusters(rng.Split(1), n, n, n/cfg.B, d)
			w := world.New(in.Truth)
			pr := core.Scaled(n, cfg.B)
			pr.EdgeFactor = ef
			pr.MinD, pr.MaxD = d, d
			res := core.Run(w, rng.Split(2), pr)
			es := metrics.Error(w, res.Output)
			var clusters, unassigned float64
			if len(res.Iterations) > 0 {
				clusters = float64(res.Iterations[0].NumClusters)
				unassigned = float64(res.Iterations[0].Unassigned)
			}
			return map[string]float64{
				"max": float64(es.Max), "clusters": clusters, "un": unassigned,
			}
		})
		pr := core.Scaled(n, cfg.B)
		pr.EdgeFactor = ef
		t.AddRow(ef, pr.EdgeThreshold(n), agg["clusters"].Mean, agg["un"].Mean, agg["max"].Mean)
	}
	return t
}

// runA3 sweeps the number of Byzantine repetitions: the probability that
// every repetition had a dishonest leader (and the run fails completely)
// decays geometrically, visible as the tail max error.
func runA3(cfg Config) *tablefmt.Table {
	t := header("A3 Byzantine repetition ablation", cfg,
		"repetitions", "runs", "failed runs", "max err (worst run)")
	n, d := cfg.N, 32
	reps := []int{1, 2, 3, 5}
	if cfg.Quick {
		reps = []int{1, 3}
	}
	runs := 10
	if cfg.Quick {
		runs = 4
	}
	for _, k := range reps {
		failed := 0
		worst := 0
		for trial := 0; trial < runs; trial++ {
			rng := xrand.New(cfg.Seed + uint64(k*1000+trial))
			in := prefgen.DiameterClusters(rng.Split(1), n, n, n/cfg.B, d)
			w := world.New(in.Truth)
			pr := core.Scaled(n, cfg.B)
			pr.ByzIterations = k
			pr.MinD, pr.MaxD = d, d
			f := pr.MaxDishonest(n)
			adversary.Corrupt(w, f, rng.Split(7).Perm(n), func(p int) world.Behavior {
				return adversary.RandomLiar{Seed: 0xA3}
			})
			res := core.RunByzantine(w, rng.Split(2), nil, pr)
			es := metrics.Error(w, res.Output)
			if res.HonestLeaders == 0 {
				failed++
			}
			if es.Max > worst {
				worst = es.Max
			}
		}
		t.AddRow(k, runs, failed, worst)
	}
	return t
}

// runA4 sweeps the sample-rate factor: too small a sample cannot separate
// close from far pairs (Lemma 6) and clustering degrades.
func runA4(cfg Config) *tablefmt.Table {
	t := header("A4 sample-rate ablation", cfg,
		"sample factor", "|S|", "clusters", "max err")
	n, d := cfg.N, 64
	factors := []float64{0.1, 0.25, 0.5, 1, 2}
	if cfg.Quick {
		factors = []float64{0.25, 1}
	}
	for _, sf := range factors {
		agg := sim.RunSequential(cfg.Trials, cfg.Seed+uint64(sf*100), func(trial int, rng *xrand.Stream) map[string]float64 {
			in := prefgen.DiameterClusters(rng.Split(1), n, n, n/cfg.B, d)
			w := world.New(in.Truth)
			pr := core.Scaled(n, cfg.B)
			pr.SampleFactor = sf
			pr.MinD, pr.MaxD = d, d
			res := core.Run(w, rng.Split(2), pr)
			es := metrics.Error(w, res.Output)
			var s, clusters float64
			if len(res.Iterations) > 0 {
				s = float64(res.Iterations[0].SampleSize)
				clusters = float64(res.Iterations[0].NumClusters)
			}
			return map[string]float64{"max": float64(es.Max), "s": s, "clusters": clusters}
		})
		t.AddRow(sf, agg["s"].Mean, agg["clusters"].Mean, agg["max"].Mean)
	}
	return t
}
