package experiments

import (
	"fmt"
	"strings"
	"testing"
)

// quickCfg is a small configuration so every experiment runs in CI time.
func quickCfg() Config {
	return Config{N: 512, B: 8, Trials: 1, Seed: 99, Quick: true}
}

func TestRegistry(t *testing.T) {
	all := All()
	if len(all) != 13 {
		t.Fatalf("registry has %d experiments, want 13", len(all))
	}
	seen := map[string]bool{}
	for _, e := range all {
		if e.ID == "" || e.Title == "" || e.Claim == "" || e.Run == nil {
			t.Fatalf("experiment %q incomplete", e.ID)
		}
		if seen[e.ID] {
			t.Fatalf("duplicate id %s", e.ID)
		}
		seen[e.ID] = true
	}
	if _, ok := ByID("E9"); !ok {
		t.Fatal("ByID(E9) missing")
	}
	if _, ok := ByID("E99"); ok {
		t.Fatal("ByID(E99) should miss")
	}
}

// TestAllExperimentsProduceTables smoke-runs every experiment at quick
// scale and validates the table shape.
func TestAllExperimentsProduceTables(t *testing.T) {
	cfg := quickCfg()
	for _, e := range All() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			tb := e.Run(cfg)
			if tb == nil {
				t.Fatal("nil table")
			}
			if len(tb.Rows) == 0 {
				t.Fatal("no rows")
			}
			out := tb.Render()
			if !strings.Contains(out, e.ID) {
				t.Fatalf("table title missing id: %q", tb.Title)
			}
			for _, row := range tb.Rows {
				if len(row) != len(tb.Headers) {
					t.Fatalf("row width %d != headers %d", len(row), len(tb.Headers))
				}
			}
		})
	}
}

// TestAblationsProduceTables smoke-runs every ablation at quick scale.
func TestAblationsProduceTables(t *testing.T) {
	cfg := quickCfg()
	for _, e := range Ablations() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			tb := e.Run(cfg)
			if tb == nil || len(tb.Rows) == 0 {
				t.Fatal("empty ablation table")
			}
			for _, row := range tb.Rows {
				if len(row) != len(tb.Headers) {
					t.Fatalf("row width %d != headers %d", len(row), len(tb.Headers))
				}
			}
		})
	}
	if len(AllWithAblations()) != len(All())+len(Ablations()) {
		t.Fatal("AllWithAblations miscounts")
	}
	if _, ok := ByID("A1"); !ok {
		t.Fatal("ByID(A1) missing")
	}
}

// TestChartFor covers the table→figure conversion for the plot-shaped
// experiments.
func TestChartFor(t *testing.T) {
	cfg := quickCfg()
	for _, id := range []string{"E8", "E9", "E11"} {
		e, _ := ByID(id)
		tb := e.Run(cfg)
		chart, ok := ChartFor(id, tb)
		if !ok {
			t.Fatalf("%s should have a chart", id)
		}
		svg := chart.Render()
		if !strings.Contains(svg, "<svg") || !strings.Contains(svg, "polyline") {
			t.Fatalf("%s chart not rendered", id)
		}
	}
	if _, ok := ChartFor("E1", nil); ok {
		t.Fatal("E1 should not have a chart")
	}
}

// TestE8ApproxRatioBounded asserts the substance of E8 at quick scale: the
// achieved error is a small multiple of the planted optimum.
func TestE8ApproxRatioBounded(t *testing.T) {
	tb := runE8(quickCfg())
	// approx ratio is column 4 (0-based).
	for _, row := range tb.Rows {
		var ratio float64
		if _, err := sscan(row[4], &ratio); err != nil {
			t.Fatalf("unparseable ratio %q", row[4])
		}
		if ratio > 4 {
			t.Fatalf("approx ratio %v too large", ratio)
		}
	}
}

// TestE9ToleranceRow asserts the substance of E9 at quick scale: at exactly
// the tolerance, error stays within 2× the planted diameter.
func TestE9ToleranceRow(t *testing.T) {
	tb := runE9(quickCfg())
	for _, row := range tb.Rows {
		var maxErr float64
		if _, err := sscan(row[3], &maxErr); err != nil {
			t.Fatalf("unparseable err %q", row[3])
		}
		if maxErr > 64 {
			t.Fatalf("strategy %s at tolerance: max err %v > 64", row[0], maxErr)
		}
	}
}

// sscan parses a float cell.
func sscan(s string, v *float64) (int, error) {
	return fmt.Sscan(s, v)
}
