// Package experiments contains the reproduction harness: one experiment per
// formal claim of the paper (the paper is theoretical and has no empirical
// tables, so its theorems and lemmas are the artifacts to regenerate — see
// DESIGN.md §5 for the mapping and EXPERIMENTS.md for recorded results).
//
// Each experiment builds planted-instance worlds, runs protocols, and
// returns an ASCII table with the measured quantities next to the bound the
// paper claims. Experiments are deterministic given Config.Seed.
package experiments

import (
	"fmt"

	"collabscore/internal/tablefmt"
)

// Config scales an experiment run.
type Config struct {
	// N is the base player count (experiments may sweep around it).
	N int
	// B is the base budget parameter.
	B int
	// Trials is the number of independent repetitions per configuration.
	Trials int
	// Seed drives all randomness.
	Seed uint64
	// Quick shrinks sweeps for smoke-testing.
	Quick bool
}

// Defaults returns the standard configuration used by EXPERIMENTS.md.
func Defaults() Config {
	return Config{N: 1024, B: 8, Trials: 3, Seed: 2010}
}

// Experiment is one reproducible claim-check.
type Experiment struct {
	// ID is the experiment identifier (E1..E12).
	ID string
	// Title is a short human-readable name.
	Title string
	// Claim cites the paper artifact being reproduced.
	Claim string
	// Run executes the experiment and returns its result table.
	Run func(cfg Config) *tablefmt.Table
}

// All lists every experiment in order.
func All() []Experiment {
	return []Experiment{
		{"E1", "Lower bound instance", "Claim 2: any B-budget algorithm errs ≥ D/4 on the adversarial distribution", runE1},
		{"E2", "Sample concentration", "Lemma 6: close pairs stay close and far pairs stay far on the sample set", runE2},
		{"E3", "RSelect", "Theorem 3: output within O(best candidate distance) using O(k² log n) probes", runE3},
		{"E4", "ZeroRadius", "Theorem 4: exact recovery for identical clusters with O(B' log n) probes", runE4},
		{"E5", "SmallRadius", "Theorem 5: error ≤ 5D for diameter-D clusters", runE5},
		{"E6", "Clustering", "Lemmas 7–9: neighbor graph separates clusters; peeled clusters have size ≥ threshold and diameter O(D)", runE6},
		{"E7", "Probe complexity scaling", "Lemmas 10–11: probes grow polylogarithmically in n while probe-all grows linearly", runE7},
		{"E8", "Honest accuracy", "Lemma 12: max honest error O(D) — constant-factor approximation of the planted optimum", runE8},
		{"E9", "Byzantine tolerance", "Lemma 13 + Theorem 14: no accuracy loss up to n/(3B) dishonest players, any strategy", runE9},
		{"E10", "Comparison vs prior art", "§1/§4: fewer probes and better approximation than the Alon et al. baseline", runE10},
		{"E11", "Leader election", "§7.1 (Feige): honest leader with constant probability under rushing bin-stuffing", runE11},
		{"E12", "§8 extensions", "Non-binary ratings (L1 + median) and heterogeneous budgets keep the O(D) error shape", runE12},
		{"E13", "§8 conjecture", "Per-player error tracks the distance to the n/B-th closest peer (conjectured per-distribution bound)", runE13},
	}
}

// ByID returns the experiment (or ablation) with the given ID.
func ByID(id string) (Experiment, bool) {
	for _, e := range AllWithAblations() {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}

// header builds a table titled with the experiment metadata.
func header(e string, cfg Config, cols ...string) *tablefmt.Table {
	title := fmt.Sprintf("%s (n=%d, B=%d, trials=%d, seed=%d)", e, cfg.N, cfg.B, cfg.Trials, cfg.Seed)
	return tablefmt.New(title, cols...)
}
