package experiments

import (
	"sort"

	"collabscore/internal/core"
	"collabscore/internal/metrics"
	"collabscore/internal/prefgen"
	"collabscore/internal/sim"
	"collabscore/internal/tablefmt"
	"collabscore/internal/world"
	"collabscore/internal/xrand"
)

// runE13 probes the open conjecture of §8: "for every distribution of
// preferences, a player p can do no better than, say, the median distance
// to the closest n/B others". We compute, per player, the exact distance
// to its (n/B)-th closest peer (the radius of the tightest candidate
// cluster around p — a per-player, per-distribution difficulty measure)
// and compare the protocol's per-player error against it, on both planted
// and mixture (non-clustered) distributions.
//
// Two readings come out of the table: (i) achieved error stays within a
// small multiple of the per-player radius wherever the radius is within
// the separable regime — the protocol tracks per-player difficulty, not
// just the worst case; (ii) no player beats the radius by a large factor,
// consistent with the conjectured lower bound.
func runE13(cfg Config) *tablefmt.Table {
	t := header("E13 §8 conjecture: per-player difficulty", cfg,
		"instance", "median radius", "max radius", "median err", "max err", "err/radius p90")
	n := cfg.N / 2 // the exact radius computation is O(n²·m/64)
	b := cfg.B
	type instanceGen struct {
		name string
		gen  func(rng *xrand.Stream) *prefgen.Instance
	}
	gens := []instanceGen{
		{"planted D=16", func(rng *xrand.Stream) *prefgen.Instance {
			return prefgen.DiameterClusters(rng, n, n, n/b, 16)
		}},
		{"planted D=32", func(rng *xrand.Stream) *prefgen.Instance {
			return prefgen.DiameterClusters(rng, n, n, n/b, 32)
		}},
		{"zipf clusters", func(rng *xrand.Stream) *prefgen.Instance {
			return prefgen.ZipfClusters(rng, n, n, b, 1.1, 16)
		}},
		{"block structured", func(rng *xrand.Stream) *prefgen.Instance {
			return prefgen.BlockStructured(rng, n, n, b, 8, 0.95)
		}},
	}
	if cfg.Quick {
		gens = gens[:1]
	}
	for _, g := range gens {
		g := g
		agg := sim.RunSequential(cfg.Trials, cfg.Seed+uint64(len(g.name)), func(trial int, rng *xrand.Stream) map[string]float64 {
			in := g.gen(rng.Split(1))
			w := world.New(in.Truth)

			// Exact per-player radius: distance to the (n/B)-th closest.
			radius := perPlayerRadius(in, n/b-1)

			pr := core.Scaled(n, b)
			pr.MinD = 8
			res := core.Run(w, rng.Split(2), pr)
			errs := metrics.Errors(w, res.Output)

			ratios := make([]float64, len(errs))
			for i, e := range errs {
				ratios[i] = metrics.ApproxRatio(float64(e), float64(radius[i]))
			}
			sort.Float64s(ratios)
			sortedR := append([]int(nil), radius...)
			sort.Ints(sortedR)
			es := metrics.Summarize(errs)
			return map[string]float64{
				"medr": float64(sortedR[len(sortedR)/2]),
				"maxr": float64(sortedR[len(sortedR)-1]),
				"mede": float64(es.Median),
				"maxe": float64(es.Max),
				"p90":  ratios[len(ratios)*9/10],
			}
		})
		t.AddRow(g.name, agg["medr"].Mean, agg["maxr"].Mean, agg["mede"].Mean,
			agg["maxe"].Mean, agg["p90"].Mean)
	}
	return t
}

// perPlayerRadius returns, for each player, the Hamming distance to its
// k-th closest other player (callers pass k = n/B − 1: Definition 1's set
// contains p itself) — the tightest possible cluster radius around p, the
// difficulty measure of the §8 conjecture.
func perPlayerRadius(in *prefgen.Instance, k int) []int {
	n := in.N()
	out := make([]int, n)
	if k >= n {
		k = n - 1
	}
	for p := 0; p < n; p++ {
		dists := make([]int, 0, n-1)
		for q := 0; q < n; q++ {
			if q == p {
				continue
			}
			dists = append(dists, in.Truth[p].Hamming(in.Truth[q]))
		}
		sort.Ints(dists)
		if k-1 >= 0 && k-1 < len(dists) {
			out[p] = dists[k-1]
		}
	}
	return out
}
