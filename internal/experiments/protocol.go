package experiments

import (
	"math"

	"collabscore/internal/adversary"
	"collabscore/internal/baseline"
	"collabscore/internal/budgets"
	"collabscore/internal/core"
	"collabscore/internal/election"
	"collabscore/internal/metrics"
	"collabscore/internal/multival"
	"collabscore/internal/prefgen"
	"collabscore/internal/sim"
	"collabscore/internal/tablefmt"
	"collabscore/internal/world"
	"collabscore/internal/xrand"
)

// runE7 sweeps n at fixed B and fixed planted diameter ratio, comparing the
// protocol's probe complexity (at the correct single guess) to the prior-art
// baseline and to probe-everything. The paper's claim: O(B·polylog n) vs
// O(B²·polylog n) vs n.
func runE7(cfg Config) *tablefmt.Table {
	t := header("E7 Lemmas 10–11 probe complexity", cfg,
		"n", "core max probes", "baseline max probes", "probe-all", "core/probe-all", "core max err", "D")
	ns := []int{512, 1024, 2048, 4096}
	if cfg.Quick {
		ns = []int{512, 1024}
	}
	for _, n := range ns {
		d := n / 32 // keep the diameter a fixed fraction of n
		agg := sim.RunSequential(cfg.Trials, cfg.Seed+uint64(n), func(trial int, rng *xrand.Stream) map[string]float64 {
			in := prefgen.DiameterClusters(rng.Split(1), n, n, n/cfg.B, d)

			w := world.New(in.Truth)
			pr := core.Scaled(n, cfg.B)
			pr.MinD, pr.MaxD = d, d
			res := core.Run(w, rng.Split(2), pr)
			coreProbes := float64(metrics.Probes(w).Max)
			coreErr := float64(metrics.Error(w, res.Output).Max)

			wb := world.New(in.Truth)
			bpr := baseline.AASPScaled(n, cfg.B)
			bpr.MinD, bpr.MaxD = d, d
			baseline.AASP(wb, rng.Split(3), bpr)
			basProbes := float64(metrics.Probes(wb).Max)

			return map[string]float64{
				"core": coreProbes, "bas": basProbes, "err": coreErr,
			}
		})
		t.AddRow(n, agg["core"].Mean, agg["bas"].Mean, n, agg["core"].Mean/float64(n),
			agg["err"].Mean, d)
	}
	return t
}

// runE8 sweeps the planted diameter D at fixed n, B and reports the honest
// error of the full protocol against the planted optimum: the
// constant-factor approximation of Lemma 12 / Definition 1.
func runE8(cfg Config) *tablefmt.Table {
	t := header("E8 Lemma 12 honest accuracy", cfg,
		"planted D", "exact opt", "max err", "mean err", "approx ratio", "max probes")
	n := cfg.N
	ds := []int{16, 32, 64, 128}
	if cfg.Quick {
		ds = []int{32}
	}
	for _, d := range ds {
		agg := sim.RunSequential(cfg.Trials, cfg.Seed+uint64(d), func(trial int, rng *xrand.Stream) map[string]float64 {
			in := prefgen.DiameterClusters(rng.Split(1), n, n, n/cfg.B, d)
			opt := float64(metrics.MaxInt(baseline.OptErrors(in)))
			w := world.New(in.Truth)
			pr := core.Scaled(n, cfg.B)
			pr.MinD, pr.MaxD = d, d
			res := core.Run(w, rng.Split(2), pr)
			es := metrics.Error(w, res.Output)
			return map[string]float64{
				"opt": opt, "max": float64(es.Max), "mean": es.Mean,
				"ratio":  metrics.ApproxRatio(float64(es.Max), opt),
				"probes": float64(metrics.Probes(w).Max),
			}
		})
		t.AddRow(d, agg["opt"].Mean, agg["max"].Mean, agg["mean"].Mean,
			agg["ratio"].Mean, agg["probes"].Mean)
	}
	return t
}

// e9Strategies enumerates the attack strategies for E9.
func e9Strategies(n int) map[string]func(p int) world.Behavior {
	return map[string]func(p int) world.Behavior{
		"random-liar": func(p int) world.Behavior { return adversary.RandomLiar{Seed: 0xE9} },
		"colluders":   func(p int) world.Behavior { return adversary.NewColluder(0xE9, n) },
		"hijackers":   func(p int) world.Behavior { return adversary.ClusterHijacker{Victim: (p + 1) % n} },
		"strange-obj": func(p int) world.Behavior { return adversary.StrangeObjectAttacker{Seed: 0xE9} },
	}
}

// runE9 sweeps the dishonest count f from 0 past the paper's tolerance
// n/(3B) for each attack strategy: the headline Byzantine-robustness table
// (Theorem 14). Below tolerance the error must match the honest run.
func runE9(cfg Config) *tablefmt.Table {
	t := header("E9 Theorem 14 Byzantine tolerance", cfg,
		"strategy", "f", "f/tolerance", "max err", "mean err", "honest leaders")
	n := cfg.N
	d := 32
	tol := core.Scaled(n, cfg.B).MaxDishonest(n)
	fracs := []float64{0, 0.5, 1, 2}
	if cfg.Quick {
		fracs = []float64{1}
	}
	names := []string{"random-liar", "colluders", "hijackers", "strange-obj"}
	for _, name := range names {
		for _, frac := range fracs {
			f := int(frac * float64(tol))
			mk := e9Strategies(n)[name]
			agg := sim.RunSequential(cfg.Trials, cfg.Seed+uint64(f)+uint64(len(name)), func(trial int, rng *xrand.Stream) map[string]float64 {
				in := prefgen.DiameterClusters(rng.Split(1), n, n, n/cfg.B, d)
				w := world.New(in.Truth)
				adversary.Corrupt(w, f, rng.Split(7).Perm(n), mk)
				pr := core.Scaled(n, cfg.B)
				pr.MinD, pr.MaxD = d, d
				res := core.RunByzantine(w, rng.Split(2), nil, pr)
				es := metrics.Error(w, res.Output)
				return map[string]float64{
					"max": float64(es.Max), "mean": es.Mean,
					"leaders": float64(res.HonestLeaders),
				}
			})
			t.AddRow(name, f, frac, agg["max"].Mean, agg["mean"].Mean, agg["leaders"].Mean)
		}
	}
	return t
}

// runE10 sweeps B comparing the protocol against the Alon et al. baseline:
// probes (B vs B² shape) and achieved approximation of the planted optimum
// (constant vs B-factor shape).
func runE10(cfg Config) *tablefmt.Table {
	t := header("E10 comparison vs prior art [2,3]", cfg,
		"B", "core probes", "AASP probes", "probe ratio", "core err", "AASP err", "planted D")
	n := cfg.N
	bs := []int{4, 8, 16}
	if cfg.Quick {
		bs = []int{8}
	}
	const d = 32
	for _, b := range bs {
		agg := sim.RunSequential(cfg.Trials, cfg.Seed+uint64(b), func(trial int, rng *xrand.Stream) map[string]float64 {
			in := prefgen.DiameterClusters(rng.Split(1), n, n, n/b, d)

			w := world.New(in.Truth)
			pr := core.Scaled(n, b)
			pr.MinD, pr.MaxD = d, d
			res := core.Run(w, rng.Split(2), pr)
			coreErr := float64(metrics.Error(w, res.Output).Max)
			coreProbes := float64(metrics.Probes(w).Max)

			wb := world.New(in.Truth)
			bpr := baseline.AASPScaled(n, b)
			bpr.MinD, bpr.MaxD = d, d
			bout := baseline.AASP(wb, rng.Split(3), bpr)
			basErr := float64(metrics.Error(wb, bout).Max)
			basProbes := float64(metrics.Probes(wb).Max)

			return map[string]float64{
				"cp": coreProbes, "bp": basProbes, "ce": coreErr, "be": basErr,
			}
		})
		t.AddRow(b, agg["cp"].Mean, agg["bp"].Mean, agg["bp"].Mean/math.Max(agg["cp"].Mean, 1),
			agg["ce"].Mean, agg["be"].Mean, d)
	}
	return t
}

// runE11 sweeps the dishonest fraction in Feige's lightest-bin election
// under the rushing greedy attack and the uniform null attack. The §7.1
// requirement is a constant honest-leader probability at the corruption
// levels the protocol tolerates.
func runE11(cfg Config) *tablefmt.Table {
	t := header("E11 Feige leader election", cfg,
		"dishonest frac", "greedy attack rate", "null attack rate", "elections")
	n := cfg.N
	if n > 1024 {
		n = 1024
	}
	fracs := []float64{0, 1.0 / 24, 1.0 / 12, 1.0 / 6, 1.0 / 3}
	if cfg.Quick {
		fracs = []float64{1.0 / 12}
	}
	elections := 200
	if cfg.Quick {
		elections = 50
	}
	for _, frac := range fracs {
		f := int(frac * float64(n))
		rng := xrand.New(cfg.Seed + uint64(f))
		in := prefgen.Uniform(rng.Split(1), n, 4)
		w := world.New(in.Truth)
		adversary.Corrupt(w, f, rng.Split(2).Perm(n), func(p int) world.Behavior {
			return adversary.RandomLiar{Seed: 0xE11}
		})
		greedy := election.HonestLeaderRate(w, rng.Split(3), election.GreedyLightest{}, election.Defaults(), elections)
		null := election.HonestLeaderRate(w, rng.Split(4), election.Spread{Seed: 5}, election.Defaults(), elections)
		t.AddRow(frac, greedy, null, elections)
	}
	return t
}

// runE12 exercises the §8 extensions: the non-binary (L1/median) protocol
// and the heterogeneous-budget protocol, checking both keep the O(D) error
// shape and that budgets shift load onto high-capacity players.
func runE12(cfg Config) *tablefmt.Table {
	t := header("E12 §8 extensions", cfg,
		"variant", "planted D", "max err", "bound", "max probes", "load ratio big/small")
	n := cfg.N / 2
	d := 32

	// Non-binary ratings.
	const scale = 5
	aggM := sim.RunSequential(cfg.Trials, cfg.Seed+1, func(trial int, rng *xrand.Stream) map[string]float64 {
		truth, _ := multival.Generate(rng.Split(1), n, n, n/cfg.B, d, scale)
		w := multival.NewWorld(truth, scale)
		pr := multival.Scaled(n, cfg.B)
		pr.MinD, pr.MaxD = d, d
		res := multival.Run(w, rng.Split(2), pr)
		es := multival.ErrorStats(w, res.Output)
		return map[string]float64{"max": float64(es.Max), "probes": float64(w.MaxHonestProbes())}
	})
	t.AddRow("multival (L1, median)", d, aggM["max"].Mean, 3*d, aggM["probes"].Mean, "-")

	// Heterogeneous budgets.
	aggB := sim.RunSequential(cfg.Trials, cfg.Seed+2, func(trial int, rng *xrand.Stream) map[string]float64 {
		in := prefgen.DiameterClusters(rng.Split(1), n, n, n/cfg.B, d)
		w := world.New(in.Truth)
		caps := budgets.TwoTier(rng.Split(3), n, 16, 256, 0.5)
		pr := budgets.Scaled(n, caps)
		pr.MinD, pr.MaxD = d, d
		res := budgets.Run(w, rng.Split(2), pr)
		es := metrics.Error(w, res.Output)
		var bigT, bigN, smallT, smallN float64
		for p := 0; p < n; p++ {
			if caps[p] == 256 {
				bigT += float64(w.Probes(p))
				bigN++
			} else {
				smallT += float64(w.Probes(p))
				smallN++
			}
		}
		ratio := (bigT / bigN) / math.Max(smallT/smallN, 1)
		return map[string]float64{
			"max": float64(es.Max), "probes": float64(metrics.Probes(w).Max), "ratio": ratio,
		}
	})
	t.AddRow("budgets (two-tier)", d, aggB["max"].Mean, 2*d, aggB["probes"].Mean, aggB["ratio"].Mean)
	return t
}
