package experiments

import (
	"math"

	"collabscore/internal/adversary"
	"collabscore/internal/budgets"
	"collabscore/internal/core"
	"collabscore/internal/election"
	"collabscore/internal/metrics"
	"collabscore/internal/multival"
	"collabscore/internal/prefgen"
	"collabscore/internal/sim"
	"collabscore/internal/sweep"
	"collabscore/internal/tablefmt"
	"collabscore/internal/world"
	"collabscore/internal/xrand"
)

// expandGrid expands one sweep spec, panicking on spec errors (experiment
// grids are static; a bad one is a programming error).
func expandGrid(sp sweep.Spec) []sweep.Point {
	pts, err := sweep.Expand(sp)
	if err != nil {
		panic(err)
	}
	return pts
}

// runGrid executes grid points through the pooled sweep engine.
func runGrid(pts []sweep.Point, opt sweep.Options) []sweep.Record {
	recs, err := sweep.Run(pts, opt)
	if err != nil {
		panic(err)
	}
	return recs
}

// filterRecs returns the records satisfying pred, in order.
func filterRecs(recs []sweep.Record, pred func(sweep.Record) bool) []sweep.Record {
	var out []sweep.Record
	for _, rec := range recs {
		if pred(rec) {
			out = append(out, rec)
		}
	}
	return out
}

// protoRecs filters the records of one protocol variant.
func protoRecs(recs []sweep.Record, proto string) []sweep.Record {
	return filterRecs(recs, func(r sweep.Record) bool { return r.Protocol == proto })
}

// runE7 sweeps n at fixed B and fixed planted diameter ratio, comparing the
// protocol's probe complexity (at the correct single guess) to the prior-art
// baseline and to probe-everything. The paper's claim: O(B·polylog n) vs
// O(B²·polylog n) vs n. The grid — one spec per n since cluster size and
// diameter track n, the protocol axis giving core and baseline the same
// planted worlds — runs through the pooled sweep engine.
func runE7(cfg Config) *tablefmt.Table {
	t := header("E7 Lemmas 10–11 probe complexity", cfg,
		"n", "core max probes", "baseline max probes", "probe-all", "core/probe-all", "core max err", "D")
	ns := []int{512, 1024, 2048, 4096}
	if cfg.Quick {
		ns = []int{512, 1024}
	}
	var lists [][]sweep.Point
	for _, n := range ns {
		lists = append(lists, expandGrid(sweep.Spec{
			Seed: cfg.Seed, Trials: cfg.Trials,
			Players: []int{n}, Budgets: []int{cfg.B},
			ClusterSizes: []int{n / cfg.B}, Diameters: []int{n / 32}, FixDiameter: true,
			Protocols: []string{"run", "baseline"},
		}))
	}
	grid, err := sweep.Merge(lists...)
	if err != nil {
		panic(err)
	}
	recs := runGrid(grid, sweep.Options{})
	runRecs, basRecs := protoRecs(recs, "run"), protoRecs(recs, "baseline")
	for _, n := range ns {
		core := filterRecs(runRecs, func(r sweep.Record) bool { return r.Players == n })
		bas := filterRecs(basRecs, func(r sweep.Record) bool { return r.Players == n })
		coreProbes := sweep.MeanOf(core, func(r sweep.Record) float64 { return float64(r.MaxProbes) })
		basProbes := sweep.MeanOf(bas, func(r sweep.Record) float64 { return float64(r.MaxProbes) })
		coreErr := sweep.MeanOf(core, func(r sweep.Record) float64 { return float64(r.MaxError) })
		t.AddRow(n, coreProbes, basProbes, n, coreProbes/float64(n), coreErr, n/32)
	}
	return t
}

// runE8 sweeps the planted diameter D at fixed n, B and reports the honest
// error of the full protocol against the planted optimum: the
// constant-factor approximation of Lemma 12 / Definition 1. One declarative
// grid with a diameter axis; the engine computes the exact per-point
// optimum (Options.ComputeOpt).
func runE8(cfg Config) *tablefmt.Table {
	t := header("E8 Lemma 12 honest accuracy", cfg,
		"planted D", "exact opt", "max err", "mean err", "approx ratio", "max probes")
	n := cfg.N
	ds := []int{16, 32, 64, 128}
	if cfg.Quick {
		ds = []int{32}
	}
	recs := runGrid(expandGrid(sweep.Spec{
		Seed: cfg.Seed, Trials: cfg.Trials,
		Players: []int{n}, Budgets: []int{cfg.B},
		ClusterSizes: []int{n / cfg.B}, Diameters: ds, FixDiameter: true,
		Protocols: []string{"run"},
	}), sweep.Options{ComputeOpt: true})
	for _, d := range ds {
		d := d
		rs := filterRecs(recs, func(r sweep.Record) bool { return r.Diameter == d })
		t.AddRow(d,
			sweep.MeanOf(rs, func(r sweep.Record) float64 { return float64(r.OptError) }),
			sweep.MeanOf(rs, func(r sweep.Record) float64 { return float64(r.MaxError) }),
			sweep.MeanOf(rs, func(r sweep.Record) float64 { return r.MeanError }),
			sweep.MeanOf(rs, func(r sweep.Record) float64 {
				return metrics.ApproxRatio(float64(r.MaxError), float64(r.OptError))
			}),
			sweep.MeanOf(rs, func(r sweep.Record) float64 { return float64(r.MaxProbes) }))
	}
	return t
}

// runE9 sweeps the dishonest count f from 0 past the paper's tolerance
// n/(3B) for each attack strategy: the headline Byzantine-robustness table
// (Theorem 14). Below tolerance the error must match the honest run. The
// grid's dishonest × strategy axes share planted worlds point to point
// (sweep seed derivation excludes the corruption axes), so each row
// isolates the attack's effect; the honest row (f = 0) is the shared
// control the engine runs once.
func runE9(cfg Config) *tablefmt.Table {
	t := header("E9 Theorem 14 Byzantine tolerance", cfg,
		"strategy", "f", "f/tolerance", "max err", "mean err", "honest leaders")
	n := cfg.N
	const d = 32
	tol := core.Scaled(n, cfg.B).MaxDishonest(n)
	fracs := []float64{0, 0.5, 1, 2}
	if cfg.Quick {
		fracs = []float64{1}
	}
	var fs []int
	for _, frac := range fracs {
		fs = append(fs, int(frac*float64(tol)))
	}
	strategies := []string{"random-liar", "colluders", "cluster-hijackers", "strange-object"}
	recs := runGrid(expandGrid(sweep.Spec{
		Seed: cfg.Seed, Trials: cfg.Trials,
		Players: []int{n}, Budgets: []int{cfg.B},
		ClusterSizes: []int{n / cfg.B}, Diameters: []int{d}, FixDiameter: true,
		Dishonest: fs, Strategies: strategies,
		Protocols: []string{"byzantine"},
	}), sweep.Options{})
	row := func(name string, frac float64, rs []sweep.Record) {
		t.AddRow(name, int(frac*float64(tol)), frac,
			sweep.MeanOf(rs, func(r sweep.Record) float64 { return float64(r.MaxError) }),
			sweep.MeanOf(rs, func(r sweep.Record) float64 { return r.MeanError }),
			sweep.MeanOf(rs, func(r sweep.Record) float64 { return float64(r.HonestLeaders) }))
	}
	for _, name := range strategies {
		for _, frac := range fracs {
			f := int(frac * float64(tol))
			// The f = 0 control carries no strategy; it anchors every
			// strategy's series.
			rs := filterRecs(recs, func(r sweep.Record) bool {
				return r.Dishonest == f && (f == 0 || r.Strategy == name)
			})
			row(name, frac, rs)
		}
	}
	return t
}

// runE10 sweeps B comparing the protocol against the Alon et al. baseline:
// probes (B vs B² shape) and achieved approximation of the planted optimum
// (constant vs B-factor shape). One spec per B (cluster size tracks B),
// merged into a single engine run.
func runE10(cfg Config) *tablefmt.Table {
	t := header("E10 comparison vs prior art [2,3]", cfg,
		"B", "core probes", "AASP probes", "probe ratio", "core err", "AASP err", "planted D")
	n := cfg.N
	bs := []int{4, 8, 16}
	if cfg.Quick {
		bs = []int{8}
	}
	const d = 32
	var lists [][]sweep.Point
	for _, b := range bs {
		lists = append(lists, expandGrid(sweep.Spec{
			Seed: cfg.Seed, Trials: cfg.Trials,
			Players: []int{n}, Budgets: []int{b},
			ClusterSizes: []int{n / b}, Diameters: []int{d}, FixDiameter: true,
			Protocols: []string{"run", "baseline"},
		}))
	}
	grid, err := sweep.Merge(lists...)
	if err != nil {
		panic(err)
	}
	recs := runGrid(grid, sweep.Options{})
	runRecs, basRecs := protoRecs(recs, "run"), protoRecs(recs, "baseline")
	for _, b := range bs {
		core := filterRecs(runRecs, func(r sweep.Record) bool { return r.Budget == b })
		bas := filterRecs(basRecs, func(r sweep.Record) bool { return r.Budget == b })
		cp := sweep.MeanOf(core, func(r sweep.Record) float64 { return float64(r.MaxProbes) })
		bp := sweep.MeanOf(bas, func(r sweep.Record) float64 { return float64(r.MaxProbes) })
		ce := sweep.MeanOf(core, func(r sweep.Record) float64 { return float64(r.MaxError) })
		be := sweep.MeanOf(bas, func(r sweep.Record) float64 { return float64(r.MaxError) })
		t.AddRow(b, cp, bp, bp/math.Max(cp, 1), ce, be, d)
	}
	return t
}

// runE11 sweeps the dishonest fraction in Feige's lightest-bin election
// under the rushing greedy attack and the uniform null attack. The §7.1
// requirement is a constant honest-leader probability at the corruption
// levels the protocol tolerates.
func runE11(cfg Config) *tablefmt.Table {
	t := header("E11 Feige leader election", cfg,
		"dishonest frac", "greedy attack rate", "null attack rate", "elections")
	n := cfg.N
	if n > 1024 {
		n = 1024
	}
	fracs := []float64{0, 1.0 / 24, 1.0 / 12, 1.0 / 6, 1.0 / 3}
	if cfg.Quick {
		fracs = []float64{1.0 / 12}
	}
	elections := 200
	if cfg.Quick {
		elections = 50
	}
	for _, frac := range fracs {
		f := int(frac * float64(n))
		rng := xrand.New(cfg.Seed + uint64(f))
		in := prefgen.Uniform(rng.Split(1), n, 4)
		w := world.New(in.Truth)
		adversary.Corrupt(w, f, rng.Split(2).Perm(n), func(p int) world.Behavior {
			return adversary.RandomLiar{Seed: 0xE11}
		})
		greedy := election.HonestLeaderRate(w, rng.Split(3), election.GreedyLightest{}, election.Defaults(), elections)
		null := election.HonestLeaderRate(w, rng.Split(4), election.Spread{Seed: 5}, election.Defaults(), elections)
		t.AddRow(frac, greedy, null, elections)
	}
	return t
}

// runE12 exercises the §8 extensions: the non-binary (L1/median) protocol
// and the heterogeneous-budget protocol, checking both keep the O(D) error
// shape and that budgets shift load onto high-capacity players.
func runE12(cfg Config) *tablefmt.Table {
	t := header("E12 §8 extensions", cfg,
		"variant", "planted D", "max err", "bound", "max probes", "load ratio big/small")
	n := cfg.N / 2
	d := 32

	// Non-binary ratings.
	const scale = 5
	aggM := sim.RunSequential(cfg.Trials, cfg.Seed+1, func(trial int, rng *xrand.Stream) map[string]float64 {
		truth, _ := multival.Generate(rng.Split(1), n, n, n/cfg.B, d, scale)
		w := multival.NewWorld(truth, scale)
		pr := multival.Scaled(n, cfg.B)
		pr.MinD, pr.MaxD = d, d
		res := multival.Run(w, rng.Split(2), pr)
		es := multival.ErrorStats(w, res.Output)
		return map[string]float64{"max": float64(es.Max), "probes": float64(w.MaxHonestProbes())}
	})
	t.AddRow("multival (L1, median)", d, aggM["max"].Mean, 3*d, aggM["probes"].Mean, "-")

	// Heterogeneous budgets.
	aggB := sim.RunSequential(cfg.Trials, cfg.Seed+2, func(trial int, rng *xrand.Stream) map[string]float64 {
		in := prefgen.DiameterClusters(rng.Split(1), n, n, n/cfg.B, d)
		w := world.New(in.Truth)
		caps := budgets.TwoTier(rng.Split(3), n, 16, 256, 0.5)
		pr := budgets.Scaled(n, caps)
		pr.MinD, pr.MaxD = d, d
		res := budgets.Run(w, rng.Split(2), pr)
		es := metrics.Error(w, res.Output)
		var bigT, bigN, smallT, smallN float64
		for p := 0; p < n; p++ {
			if caps[p] == 256 {
				bigT += float64(w.Probes(p))
				bigN++
			} else {
				smallT += float64(w.Probes(p))
				smallN++
			}
		}
		ratio := (bigT / bigN) / math.Max(smallT/smallN, 1)
		return map[string]float64{
			"max": float64(es.Max), "probes": float64(metrics.Probes(w).Max), "ratio": ratio,
		}
	})
	t.AddRow("budgets (two-tier)", d, aggB["max"].Mean, 2*d, aggB["probes"].Mean, aggB["ratio"].Mean)
	return t
}
