package experiments

import (
	"strconv"

	"collabscore/internal/svgplot"
	"collabscore/internal/tablefmt"
)

// ChartFor converts the plot-shaped experiment tables into line charts —
// the figure-equivalents of the reproduction (the paper itself publishes
// no result figures). Supported: E7 (probes vs n), E8 (error vs planted D),
// E9 (error vs dishonest count per strategy), E11 (honest-leader rate vs
// dishonest fraction). Returns false for experiments without a natural
// line-chart shape.
func ChartFor(id string, tb *tablefmt.Table) (*svgplot.Chart, bool) {
	switch id {
	case "E7":
		c := &svgplot.Chart{
			Title:  "E7 probe complexity: protocol vs probe-all",
			XLabel: "players n", YLabel: "max probes per player",
		}
		c.Add("protocol", col(tb, 0), col(tb, 1))
		c.Add("baseline [2,3]", col(tb, 0), col(tb, 2))
		c.Add("probe-all", col(tb, 0), col(tb, 3))
		return c, true
	case "E8":
		c := &svgplot.Chart{
			Title:  "E8 honest accuracy vs planted diameter",
			XLabel: "planted D", YLabel: "Hamming error",
		}
		c.Add("exact optimum", col(tb, 0), col(tb, 1))
		c.Add("max error", col(tb, 0), col(tb, 2))
		c.Add("mean error", col(tb, 0), col(tb, 3))
		return c, true
	case "E9":
		c := &svgplot.Chart{
			Title:  "E9 Byzantine tolerance: max error vs dishonest players",
			XLabel: "dishonest players f", YLabel: "max honest error",
		}
		// One series per strategy (rows are grouped by strategy name).
		series := map[string][][2]float64{}
		var order []string
		for _, row := range tb.Rows {
			name := row[0]
			f, err1 := strconv.ParseFloat(row[1], 64)
			e, err2 := strconv.ParseFloat(row[3], 64)
			if err1 != nil || err2 != nil {
				continue
			}
			if _, seen := series[name]; !seen {
				order = append(order, name)
			}
			series[name] = append(series[name], [2]float64{f, e})
		}
		for _, name := range order {
			var xs, ys []float64
			for _, pt := range series[name] {
				xs = append(xs, pt[0])
				ys = append(ys, pt[1])
			}
			c.Add(name, xs, ys)
		}
		return c, true
	case "E11":
		c := &svgplot.Chart{
			Title:  "E11 leader election: honest-leader rate vs corruption",
			XLabel: "dishonest fraction", YLabel: "honest-leader rate",
		}
		c.Add("greedy rushing attack", col(tb, 0), col(tb, 1))
		c.Add("uniform (null) attack", col(tb, 0), col(tb, 2))
		return c, true
	}
	return nil, false
}

// col extracts a numeric column from a table, skipping unparseable cells.
func col(tb *tablefmt.Table, i int) []float64 {
	var out []float64
	for _, row := range tb.Rows {
		if i >= len(row) {
			continue
		}
		v, err := strconv.ParseFloat(row[i], 64)
		if err != nil {
			continue
		}
		out = append(out, v)
	}
	return out
}
