package experiments

import (
	"math"

	"collabscore/internal/bitvec"
	"collabscore/internal/cluster"
	"collabscore/internal/core"
	"collabscore/internal/metrics"
	"collabscore/internal/prefgen"
	"collabscore/internal/selection"
	"collabscore/internal/sim"
	"collabscore/internal/smallradius"
	"collabscore/internal/tablefmt"
	"collabscore/internal/world"
	"collabscore/internal/xrand"
	"collabscore/internal/zeroradius"
)

func identityObjs(m int) []int {
	out := make([]int, m)
	for i := range out {
		out[i] = i
	}
	return out
}

// runE1 builds the Claim 2 adversarial distribution and measures, on the
// distinguished player p₀:
//
//   - an idealized strict-B-budget collaborative predictor (it receives the
//     exact majority vector of p₀'s group for free and even knows the
//     special set S, spending all B probes there): its error must sit at or
//     above the D/4 lower bound — the claim's mechanism in action;
//   - the paper's protocol with its augmented O(B·polylog n) budget, which
//     may legitimately beat D/4 (resource augmentation is exactly the
//     paper's point: the bound binds budget-B algorithms only);
//   - random guessing on p₀ as the no-information floor.
func runE1(cfg Config) *tablefmt.Table {
	t := header("E1 Claim 2 lower-bound instance", cfg,
		"D", "bound D/4", "B-budget err(p0)", "augmented err(p0)", "random err(p0)")
	n := cfg.N
	ds := []int{16, 32, 64}
	if cfg.Quick {
		ds = []int{32}
	}
	for _, d := range ds {
		agg := sim.RunSequential(cfg.Trials, cfg.Seed+uint64(d), func(trial int, rng *xrand.Stream) map[string]float64 {
			in, special := prefgen.AdversarialClaim2(rng.Split(1), n, n, cfg.B, d)
			p0 := in.ClusterMembers(0)[0]

			// Idealized B-budget predictor: start from the group majority
			// (perfect collaboration — correct off S, uninformative on S),
			// then spend the whole budget B probing objects of S.
			w1 := world.New(in.Truth)
			members := in.ClusterMembers(0)
			pred := bitvec.New(n)
			for o := 0; o < n; o++ {
				ones := 0
				for _, q := range members {
					if q != p0 && w1.PeekTruth(q, o) {
						ones++
					}
				}
				pred.Set(o, 2*ones > len(members)-1)
			}
			budgeted := rng.Split(5).SampleFrom(special, cfg.B)
			for _, o := range budgeted {
				pred.Set(o, w1.Probe(p0, o))
			}
			bBudgetErr := w1.HonestError(p0, pred)

			// The augmented-budget protocol.
			w2 := world.New(in.Truth)
			pr := core.Scaled(n, cfg.B)
			res := core.Run(w2, rng.Split(2), pr)
			augErr := w2.HonestError(p0, res.Output[p0])

			// Random guessing.
			guess := bitvec.New(n)
			g := rng.Split(3)
			for o := 0; o < n; o++ {
				if g.Bool() {
					guess.Set(o, true)
				}
			}
			return map[string]float64{
				"budget": float64(bBudgetErr),
				"aug":    float64(augErr),
				"guess":  float64(w1.HonestError(p0, guess)),
			}
		})
		t.AddRow(d, float64(d)/4, agg["budget"].Mean, agg["aug"].Mean, agg["guess"].Mean)
	}
	return t
}

// runE2 measures Lemma 6 directly: draw the sample set at the protocol's
// rate and compare sampled difference counts for planted close pairs
// (distance < D) and far pairs (distance ≥ 3D) against the lemma's
// thresholds.
func runE2(cfg Config) *tablefmt.Table {
	t := header("E2 Lemma 6 sample concentration", cfg,
		"D", "|S|", "close max", "close bound", "far min", "far bound", "separated")
	n := cfg.N
	pr := core.Scaled(n, cfg.B)
	ds := []int{32, 64, 128}
	if cfg.Quick {
		ds = []int{64}
	}
	for _, d := range ds {
		agg := sim.RunSequential(cfg.Trials, cfg.Seed+uint64(d), func(trial int, rng *xrand.Stream) map[string]float64 {
			in := prefgen.DiameterClusters(rng.Split(1), n, n, n/cfg.B, d)
			sample := rng.Split(2).BernoulliSubset(n, pr.SampleProb(n, d))
			closeMax, farMin := 0, math.MaxInt
			// Close pairs: same planted cluster. Far pairs: different
			// clusters (distance ≈ m/2 ≥ 3D for the sizes used here).
			for c := 0; c < 4; c++ {
				members := in.ClusterMembers(c)
				for i := 0; i < 6 && i < len(members); i++ {
					for j := i + 1; j < 6 && j < len(members); j++ {
						diff := in.Truth[members[i]].Gather(sample).Hamming(in.Truth[members[j]].Gather(sample))
						if diff > closeMax {
							closeMax = diff
						}
					}
				}
				other := in.ClusterMembers((c + 1) % len(in.Centers))
				for i := 0; i < 6 && i < len(members) && i < len(other); i++ {
					diff := in.Truth[members[i]].Gather(sample).Hamming(in.Truth[other[i]].Gather(sample))
					if diff < farMin {
						farMin = diff
					}
				}
			}
			sep := 0.0
			if farMin > closeMax {
				sep = 1
			}
			return map[string]float64{
				"s": float64(len(sample)), "close": float64(closeMax),
				"far": float64(farMin), "sep": sep,
			}
		})
		lnn := math.Log(float64(n))
		closeBound := 2 * pr.SampleFactor * lnn // Lemma 6(1) analogue at scaled constants
		farBound := pr.EdgeFactor * lnn         // the edge threshold the clustering uses
		t.AddRow(d, agg["s"].Mean, agg["close"].Mean, closeBound, agg["far"].Mean, farBound,
			agg["sep"].Mean)
	}
	return t
}

// runE3 sweeps the number of RSelect candidates k, planting one candidate
// at distance d* and junk at ≥10·d*: the output must stay within a small
// constant of d* (Theorem 3) with probes bounded by the k²·log n sample
// arithmetic.
func runE3(cfg Config) *tablefmt.Table {
	t := header("E3 Theorem 3 RSelect", cfg,
		"k", "best dist", "output dist", "ratio", "probes", "k²·ln n")
	n := cfg.N
	ks := []int{2, 4, 8, 16}
	if cfg.Quick {
		ks = []int{4}
	}
	const dStar = 16
	for _, k := range ks {
		agg := sim.RunSequential(cfg.Trials, cfg.Seed+uint64(k), func(trial int, rng *xrand.Stream) map[string]float64 {
			in := prefgen.Uniform(rng.Split(1), 2, n)
			w := world.New(in.Truth)
			truth := w.TruthVector(0)
			cands := make([]bitvec.Vector, k)
			for i := range cands {
				c := truth.Clone()
				flips := dStar
				if i != k/2 {
					flips = 10*dStar + 16*i
				}
				for _, o := range rng.Split(uint64(10+i)).Sample(n, flips) {
					c.Flip(o)
				}
				cands[i] = c
			}
			idx := selection.RSelect(w, 0, identityObjs(n), cands, rng.Split(2), selection.Defaults())
			out := truth.Hamming(cands[idx])
			return map[string]float64{
				"out":    float64(out),
				"ratio":  float64(out) / float64(dStar),
				"probes": float64(w.Probes(0)),
			}
		})
		t.AddRow(k, dStar, agg["out"].Mean, agg["ratio"].Mean, agg["probes"].Mean,
			float64(k*k)*math.Log(float64(n)))
	}
	return t
}

// runE4 sweeps the ZeroRadius cluster bound B' over planted identical
// clusters: exact-recovery fraction and probe counts vs the O(B'·log n)
// budget and the probe-all cost m.
func runE4(cfg Config) *tablefmt.Table {
	t := header("E4 Theorem 4 ZeroRadius", cfg,
		"B'", "cluster size", "exact frac", "max probes", "B'·ln n", "m")
	n := cfg.N / 2
	m := cfg.N * 2
	bs := []int{2, 4, 8}
	if cfg.Quick {
		bs = []int{2}
	}
	for _, b := range bs {
		agg := sim.RunSequential(cfg.Trials, cfg.Seed+uint64(b), func(trial int, rng *xrand.Stream) map[string]float64 {
			in := prefgen.IdenticalClusters(rng.Split(1), n, m, n/b)
			w := world.New(in.Truth)
			out := zeroradius.Run(world.NewRun(w), identityObjs(n), identityObjs(m), b, rng.Split(2), zeroradius.Scaled())
			exact := 0
			for p := 0; p < n; p++ {
				if in.Truth[p].Hamming(out[p]) == 0 {
					exact++
				}
			}
			return map[string]float64{
				"exact":  float64(exact) / float64(n),
				"probes": float64(w.MaxHonestProbes()),
			}
		})
		t.AddRow(b, n/b, agg["exact"].Mean, agg["probes"].Mean,
			float64(b)*math.Log(float64(n)), m)
	}
	return t
}

// runE5 sweeps the planted diameter D for SmallRadius and reports max error
// against the 5D bound of Theorem 5.
func runE5(cfg Config) *tablefmt.Table {
	t := header("E5 Theorem 5 SmallRadius", cfg,
		"D", "max err", "bound 5D", "mean err", "max probes", "m")
	n := cfg.N / 2
	m := cfg.N / 2
	ds := []int{2, 4, 8, 16}
	if cfg.Quick {
		ds = []int{8}
	}
	for _, d := range ds {
		agg := sim.RunSequential(cfg.Trials, cfg.Seed+uint64(d), func(trial int, rng *xrand.Stream) map[string]float64 {
			in := prefgen.DiameterClusters(rng.Split(1), n, m, n/cfg.B, d)
			w := world.New(in.Truth)
			out := smallradius.Run(world.NewRun(w), identityObjs(m), d, cfg.B, rng.Split(2), smallradius.Scaled(n))
			var errs []int
			for p := 0; p < n; p++ {
				errs = append(errs, in.Truth[p].Hamming(out[p]))
			}
			es := metrics.Summarize(errs)
			return map[string]float64{
				"max": float64(es.Max), "mean": es.Mean,
				"probes": float64(w.MaxHonestProbes()),
			}
		})
		t.AddRow(d, agg["max"].Mean, 5*d, agg["mean"].Mean, agg["probes"].Mean, m)
	}
	return t
}

// runE6 instruments one protocol iteration: z-vector quality on the sample,
// neighbor separation, and the Lemma 9 cluster invariants.
func runE6(cfg Config) *tablefmt.Table {
	t := header("E6 Lemmas 7–9 clustering", cfg,
		"D", "|S|", "z err max", "clusters", "min size", "size bound", "max diam", "diam/D")
	n := cfg.N
	pr := core.Scaled(n, cfg.B)
	ds := []int{32, 64}
	if cfg.Quick {
		ds = []int{32}
	}
	for _, d := range ds {
		agg := sim.RunSequential(cfg.Trials, cfg.Seed+uint64(d), func(trial int, rng *xrand.Stream) map[string]float64 {
			in := prefgen.DiameterClusters(rng.Split(1), n, n, n/cfg.B, d)
			w := world.New(in.Truth)
			sample := rng.Split(2).BernoulliSubset(n, pr.SampleProb(n, d))
			if len(sample) == 0 {
				sample = []int{0}
			}
			zMap := smallradius.Run(world.NewRun(w), sample, pr.SampleDiameter(n), cfg.B, rng.Split(3), pr.SR)
			z := make([]bitvec.Vector, n)
			zErrMax := 0
			for p := 0; p < n; p++ {
				z[p] = zMap[p]
				if e := in.Truth[p].Gather(sample).Hamming(z[p]); e > zErrMax {
					zErrMax = e
				}
			}
			g := cluster.BuildGraph(z, pr.EdgeThreshold(n))
			cl := cluster.Build(g, pr.MinClusterSize(n))
			maxDiam := 0
			for _, members := range cl.Clusters {
				if dd := cluster.Diameter(in.Truth, members); dd > maxDiam {
					maxDiam = dd
				}
			}
			return map[string]float64{
				"s": float64(len(sample)), "zerr": float64(zErrMax),
				"clusters": float64(len(cl.Clusters)),
				"minsize":  float64(cl.MinClusterSize()),
				"diam":     float64(maxDiam),
			}
		})
		t.AddRow(d, agg["s"].Mean, agg["zerr"].Mean, agg["clusters"].Mean,
			agg["minsize"].Mean, pr.MinClusterSize(n), agg["diam"].Mean,
			agg["diam"].Mean/float64(d))
	}
	return t
}
