package zeroradius

import (
	"testing"

	"collabscore/internal/adversary"
	"collabscore/internal/prefgen"
	"collabscore/internal/world"
	"collabscore/internal/xrand"
)

func identityObjs(m int) []int {
	out := make([]int, m)
	for i := range out {
		out[i] = i
	}
	return out
}

func allPlayers(n int) []int { return identityObjs(n) }

// exactFraction runs ZeroRadius and returns the fraction of honest players
// recovering their exact preference vector, plus the max honest error.
func exactFraction(t *testing.T, w *world.World, in *prefgen.Instance, bPrime int, seed uint64, pr Params) (float64, int) {
	t.Helper()
	n, m := w.N(), w.M()
	out := Run(world.NewRun(w), allPlayers(n), identityObjs(m), bPrime, xrand.New(seed), pr)
	exact, honest, maxErr := 0, 0, 0
	for p := 0; p < n; p++ {
		if !w.IsHonest(p) {
			continue
		}
		honest++
		d := in.Truth[p].Hamming(out[p])
		if d == 0 {
			exact++
		}
		if d > maxErr {
			maxErr = d
		}
	}
	return float64(exact) / float64(honest), maxErr
}

// TestExactRecoveryIdenticalClusters is Theorem 4: with planted identical
// clusters large relative to the vote threshold, every player recovers its
// exact preference vector. The config keeps clusters of size n/B' ≫ the
// per-leaf support threshold, the regime of the whp analysis.
func TestExactRecoveryIdenticalClusters(t *testing.T) {
	const n, m, b = 256, 2048, 2
	rng := xrand.New(11)
	in := prefgen.IdenticalClusters(rng.Split(1), n, m, n/b)
	w := world.New(in.Truth)
	frac, maxErr := exactFraction(t, w, in, b, 21, Defaults())
	if frac != 1 {
		t.Fatalf("exact-recovery fraction %.3f (max err %d), want 1", frac, maxErr)
	}
}

// TestRecoveryModerateClusters: with B'=8 (smaller clusters) occasional
// leaf-level support failures are expected at simulation n, but the vast
// majority of players must still recover exactly.
func TestRecoveryModerateClusters(t *testing.T) {
	const n, m, b = 256, 1024, 8
	rng := xrand.New(13)
	in := prefgen.IdenticalClusters(rng.Split(1), n, m, n/b)
	w := world.New(in.Truth)
	frac, _ := exactFraction(t, w, in, b, 23, Defaults())
	if frac < 0.9 {
		t.Fatalf("exact-recovery fraction %.3f, want ≥ 0.9", frac)
	}
}

// TestProbeComplexity verifies the O(B'·log n) probe bound shape: probes per
// player must be far below m when m is large.
func TestProbeComplexity(t *testing.T) {
	const n, m, b = 256, 4096, 2
	rng := xrand.New(77)
	in := prefgen.IdenticalClusters(rng.Split(1), n, m, n/b)
	w := world.New(in.Truth)
	frac, _ := exactFraction(t, w, in, b, 31, Defaults())
	if frac != 1 {
		t.Fatalf("exact-recovery fraction %.3f, want 1", frac)
	}
	maxProbes := w.MaxHonestProbes()
	if maxProbes >= int64(m)/4 {
		t.Fatalf("probes per player %d — insufficient savings over probing all %d objects", maxProbes, m)
	}
}

// TestSmallInputBaseCase: inputs below the base-case threshold trigger
// probe-everything and must be exactly correct without cluster structure.
func TestSmallInputBaseCase(t *testing.T) {
	const n, m = 4, 64
	rng := xrand.New(3)
	in := prefgen.Uniform(rng.Split(1), n, m)
	w := world.New(in.Truth)
	out := Run(world.NewRun(w), allPlayers(n), identityObjs(m), 2, rng.Split(2), Defaults())
	for p := 0; p < n; p++ {
		if d := in.Truth[p].Hamming(out[p]); d != 0 {
			t.Fatalf("base case player %d error %d", p, d)
		}
	}
}

// TestEmptyInputs must not panic and must return sane shapes.
func TestEmptyInputs(t *testing.T) {
	rng := xrand.New(4)
	in := prefgen.Uniform(rng.Split(1), 4, 8)
	w := world.New(in.Truth)
	out := Run(world.NewRun(w), nil, identityObjs(8), 2, rng.Split(2), Defaults())
	if len(out) != 0 {
		t.Fatalf("no players should give empty output, got %d", len(out))
	}
	out = Run(world.NewRun(w), allPlayers(4), nil, 2, rng.Split(3), Defaults())
	for p, v := range out {
		if v.Len() != 0 {
			t.Fatalf("player %d got vector of length %d for no objects", p, v.Len())
		}
	}
}

// TestSubsetOfObjects: ZeroRadius over a strict subset of the object space
// must return vectors indexed like that subset.
func TestSubsetOfObjects(t *testing.T) {
	const n, m = 64, 128
	rng := xrand.New(5)
	in := prefgen.IdenticalClusters(rng.Split(1), n, m, 16)
	w := world.New(in.Truth)
	objs := []int{3, 17, 40, 41, 90, 100, 101, 120}
	out := Run(world.NewRun(w), allPlayers(n), objs, 4, rng.Split(2), Defaults())
	for p := 0; p < n; p++ {
		v := out[p]
		if v.Len() != len(objs) {
			t.Fatalf("player %d vector length %d, want %d", p, v.Len(), len(objs))
		}
		for j, o := range objs {
			if v.Get(j) != w.PeekTruth(p, o) {
				t.Fatalf("player %d wrong at subset position %d (object %d)", p, j, o)
			}
		}
	}
}

// TestDishonestCannotCorruptHonest is the §7.2 remark: dishonest players
// cannot significantly impact ZeroRadius — honest players still recover
// their vectors when enough honest identical peers exist.
func TestDishonestCannotCorruptHonest(t *testing.T) {
	const n, m, b = 256, 2048, 2
	rng := xrand.New(6)
	in := prefgen.IdenticalClusters(rng.Split(1), n, m, n/b)
	w := world.New(in.Truth)
	f := n / (3 * b)
	perm := rng.Split(9).Perm(n)
	adversary.Corrupt(w, f, perm, func(p int) world.Behavior {
		return adversary.RandomLiar{Seed: 11}
	})
	frac, maxErr := exactFraction(t, w, in, b, 41, Defaults())
	if frac != 1 {
		t.Fatalf("honest exact-recovery fraction %.3f (max err %d) under random liars, want 1", frac, maxErr)
	}
}

// TestColludersCannotInjectWinningVector: a dishonest bloc publishing a
// coordinated junk vector may enter the candidate set, but honest players'
// elimination probes discard it.
func TestColludersCannotInjectWinningVector(t *testing.T) {
	const n, m, b = 256, 2048, 2
	rng := xrand.New(8)
	in := prefgen.IdenticalClusters(rng.Split(1), n, m, n/b)
	w := world.New(in.Truth)
	f := n / (3 * b)
	coll := adversary.NewColluder(99, m)
	perm := rng.Split(10).Perm(n)
	adversary.Corrupt(w, f, perm, func(p int) world.Behavior { return coll })
	frac, maxErr := exactFraction(t, w, in, b, 43, Defaults())
	if frac != 1 {
		t.Fatalf("honest exact-recovery fraction %.3f (max err %d) under colluders, want 1", frac, maxErr)
	}
}

// TestDeterminism: same world + same stream → identical outputs.
func TestDeterminism(t *testing.T) {
	const n, m = 64, 128
	mk := func() map[int]int {
		rng := xrand.New(12)
		in := prefgen.IdenticalClusters(rng.Split(1), n, m, 16)
		w := world.New(in.Truth)
		out := Run(world.NewRun(w), allPlayers(n), identityObjs(m), 4, rng.Split(2), Defaults())
		sig := make(map[int]int, n)
		for p, v := range out {
			sig[p] = v.Count()
		}
		return sig
	}
	a, b := mk(), mk()
	for p := range a {
		if a[p] != b[p] {
			t.Fatal("nondeterministic output")
		}
	}
}

// TestSplitHalfNonEmpty: the partition helper never returns an empty half
// for inputs of size ≥ 2.
func TestSplitHalfNonEmpty(t *testing.T) {
	rng := xrand.New(13)
	for trial := 0; trial < 200; trial++ {
		size := 2 + rng.Intn(50)
		xs := make([]int, size)
		for i := range xs {
			xs[i] = i
		}
		a, b := splitHalf(rng, xs)
		if len(a) == 0 || len(b) == 0 {
			t.Fatalf("empty half for size %d", size)
		}
		if len(a)+len(b) != size {
			t.Fatalf("lost elements: %d + %d != %d", len(a), len(b), size)
		}
	}
}

// TestScaledParamsStillRecover: the simulation-scale parameterization keeps
// exact recovery in the planted regime.
func TestScaledParamsStillRecover(t *testing.T) {
	const n, m, b = 256, 512, 2
	rng := xrand.New(15)
	in := prefgen.IdenticalClusters(rng.Split(1), n, m, n/b)
	w := world.New(in.Truth)
	frac, maxErr := exactFraction(t, w, in, b, 51, Scaled())
	if frac < 0.99 {
		t.Fatalf("scaled exact-recovery fraction %.3f (max err %d), want ≥0.99", frac, maxErr)
	}
}
