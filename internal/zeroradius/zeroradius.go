// Package zeroradius implements the ZeroRadius protocol of Figure 1
// (originally from Awerbuch et al. [4]): collaborative scoring under the
// assumption that each player belongs to a set of at least |P|/B' players
// with *identical* preferences.
//
// The protocol recursively halves both the player set and the object set.
// Each half solves its own subproblem; the halves then exchange results:
// the vectors output by at least |P”|/(2B') players of the other half form
// a candidate set, and each player disambiguates between candidates by
// probing objects on which they disagree. Every such probe eliminates at
// least one candidate, and there are at most 2B' candidates, so the merge
// costs O(B') probes per level and O(B'·log n) probes overall (Theorem 4).
//
// Dishonest players participate by publishing whatever vectors their
// strategies dictate; they can inject at most a bounded number of candidate
// vectors (each needs |P”|/(2B') supporters), and the probe-to-eliminate
// loop discards any candidate that contradicts the prober's own truth.
package zeroradius

import (
	"math"
	"sort"

	"collabscore/internal/bitvec"
	"collabscore/internal/par"
	"collabscore/internal/world"
	"collabscore/internal/xrand"
)

// Params carries the protocol's tunable constants.
type Params struct {
	// BaseFactor sets the recursion base case: when min(|P|, |O|) is at most
	// BaseFactor·B'·ln n, every player probes every object directly.
	BaseFactor float64
	// BaseObjects, when positive, overrides the base-case threshold for the
	// object dimension only. The paper's B'·log n base case already exceeds
	// realistic object sets at laptop scale; a small absolute object base
	// keeps the recursion (and its probe savings) alive there. The player
	// dimension always keeps the BaseFactor·B'·ln n floor: leaf player sets
	// must retain Ω(log n) members of every size-|P|/B' cluster or the
	// publisher side can lose a cluster's vector entirely.
	BaseObjects int
	// VoteDivisor sets the candidate support threshold |P''|/(VoteDivisor·B')
	// (paper: 2).
	VoteDivisor float64
}

// Defaults returns the paper's constants. BaseFactor 2 keeps the recursion
// shallow enough that every leaf player-set retains ≈2·ln n members of each
// size-|P|/B' cluster, so the probability that a cluster publishes nothing
// at some merge is ≈n^{-2} — the whp regime of Theorem 4. The base case
// then costs at most 2·B'·ln n probes, within the O(B'·log n) budget.
func Defaults() Params { return Params{BaseFactor: 2, VoteDivisor: 2} }

// Scaled returns simulation-scale constants: a small absolute object-side
// base case (the probe saver) with the same player-side floor as Defaults
// (the concentration guard).
func Scaled() Params { return Params{BaseFactor: 2, BaseObjects: 16, VoteDivisor: 2} }

// Run executes ZeroRadius for every player in P over the objects objs
// (global ids), with cluster-size bound B' (the protocol assumes each
// honest player has ≥ |P|/B' identical peers in P). shared supplies the
// shared randomness (partitions); each player's private elimination coins
// are split from it per player id, which is harmless because elimination
// probes are verified against the player's own truth.
//
// The result maps player id → output vector indexed like objs. Honest
// players in qualifying zero-radius clusters receive their true preferences
// whp; other players receive best-effort vectors.
//
// The recursion's two halves and every per-player loop (base-case reports,
// cross-fill elimination, vector assembly) fan out on rc's executor with
// per-branch split streams and index-ordered merges, so fixed-seed output
// is byte-identical under any schedule (DESIGN.md §9).
func Run(rc *world.Run, P []int, objs []int, bPrime int, shared *xrand.Stream, pr Params) map[int]bitvec.Vector {
	if bPrime < 1 {
		bPrime = 1
	}
	out := make(map[int]bitvec.Vector, len(P))
	var mu chanLock
	run(rc, P, objs, bPrime, shared, pr, out, &mu, 0)
	return out
}

// chanLock is a tiny mutex used to guard the shared output map during the
// parallel recursion; a channel of capacity 1 keeps the dependency surface
// stdlib-only and is uncontended in practice (writes are batched per call).
type chanLock struct{ ch chan struct{} }

func (l *chanLock) lock() {
	if l.ch == nil {
		l.ch = make(chan struct{}, 1)
	}
	l.ch <- struct{}{}
}
func (l *chanLock) unlock() { <-l.ch }

func run(rc *world.Run, P []int, objs []int, bPrime int, shared *xrand.Stream, pr Params, out map[int]bitvec.Vector, mu *chanLock, depth int) {
	n := rc.N()
	basePlayers := int(math.Ceil(pr.BaseFactor * float64(bPrime) * math.Log(float64(n)+2)))
	if basePlayers < 2 {
		basePlayers = 2
	}
	baseObjects := basePlayers
	if pr.BaseObjects > 0 {
		baseObjects = pr.BaseObjects
	}
	if baseObjects < 2 {
		baseObjects = 2
	}
	if len(P) == 0 {
		return
	}
	if len(P) <= basePlayers || len(objs) <= baseObjects {
		// Base case: every player reports every object directly.
		results := par.MapOn(rc.Exec(), len(P), func(i int) bitvec.Vector {
			return rc.ReportVector(P[i], objs)
		})
		mu.lock()
		for i, p := range P {
			out[p] = results[i]
		}
		mu.unlock()
		return
	}

	// Shared random partition of players and objects into halves. Derive a
	// child stream per recursion node so parallel branches do not race.
	nodeRng := shared.Split(uint64(depth), uint64(len(P)), uint64(len(objs)))
	p0, p1 := splitHalf(nodeRng, P)
	o0, o1 := splitHalf(nodeRng, objs)

	// Recurse on both halves in parallel.
	sub0 := make(map[int]bitvec.Vector, len(p0))
	sub1 := make(map[int]bitvec.Vector, len(p1))
	var mu0, mu1 chanLock
	rc.Exec().Do(
		func() { run(rc, p0, o0, bPrime, nodeRng.Split(0), pr, sub0, &mu0, depth+1) },
		func() { run(rc, p1, o1, bPrime, nodeRng.Split(1), pr, sub1, &mu1, depth+1) },
	)

	// Cross-fill: players of each half learn the other half's objects from
	// the vectors published by the other half's players.
	cross0 := crossFill(rc, p0, o1, sub1, p1, bPrime, pr) // P0 learns O1
	cross1 := crossFill(rc, p1, o0, sub0, p0, bPrime, pr) // P1 learns O0

	// Assemble full vectors over objs for every player.
	pos := make(map[int]int, len(objs))
	for j, o := range objs {
		pos[o] = j
	}
	assemble := func(P []int, own map[int]bitvec.Vector, ownObjs []int, cross map[int]bitvec.Vector, crossObjs []int) {
		results := par.MapOn(rc.Exec(), len(P), func(i int) bitvec.Vector {
			p := P[i]
			v := bitvec.New(len(objs))
			if ov, ok := own[p]; ok {
				for j, o := range ownObjs {
					if ov.Get(j) {
						v.Set(pos[o], true)
					}
				}
			}
			if cv, ok := cross[p]; ok {
				for j, o := range crossObjs {
					if cv.Get(j) {
						v.Set(pos[o], true)
					}
				}
			}
			return v
		})
		mu.lock()
		for i, p := range P {
			out[p] = results[i]
		}
		mu.unlock()
	}
	assemble(p0, sub0, o0, cross0, o1)
	assemble(p1, sub1, o1, cross1, o0)
}

// splitHalf partitions xs into two halves using independent fair coins,
// guaranteeing both halves are non-empty (it moves one element if needed).
func splitHalf(rng *xrand.Stream, xs []int) (a, b []int) {
	for _, x := range xs {
		if rng.Bool() {
			a = append(a, x)
		} else {
			b = append(b, x)
		}
	}
	if len(a) == 0 && len(b) > 1 {
		a = append(a, b[len(b)-1])
		b = b[:len(b)-1]
	}
	if len(b) == 0 && len(a) > 1 {
		b = append(b, a[len(a)-1])
		a = a[:len(a)-1]
	}
	return a, b
}

// candidate is a distinct published vector with its supporter count.
type candidate struct {
	vec     bitvec.Vector
	support int
	key     string
}

// crossFill computes, for every player in learners, its vector over objs
// from the vectors published by the players in publishers (whose outputs
// over objs are in pub).
//
// Candidate selection: the paper admits vectors with support
// ≥ |publishers|/(VoteDivisor·B'), which bounds the candidate count by
// VoteDivisor·B'. At simulation scale, deep recursion leaves can
// under-represent a cluster below that threshold, silently dropping its
// true vector and corrupting the whole subtree; we therefore also admit the
// top 2B' vectors by support. The candidate count stays O(B') — the probe
// budget of the elimination loop is unchanged — and the elimination probes
// discard any junk this lets in.
func crossFill(rc *world.Run, learners []int, objs []int, pub map[int]bitvec.Vector, publishers []int, bPrime int, pr Params) map[int]bitvec.Vector {
	// Tally distinct published vectors.
	tally := make(map[string]*candidate)
	for _, q := range publishers {
		v, ok := pub[q]
		if !ok {
			continue
		}
		k := v.Key()
		if c, ok := tally[k]; ok {
			c.support++
		} else {
			tally[k] = &candidate{vec: v, support: 1}
		}
	}
	all := make([]*candidate, 0, len(tally))
	for k, c := range tally {
		c.key = k
		all = append(all, c)
	}
	// Deterministic order: by support descending, then key.
	sort.Slice(all, func(i, j int) bool {
		if all[i].support != all[j].support {
			return all[i].support > all[j].support
		}
		return all[i].key < all[j].key
	})
	threshold := float64(len(publishers)) / (pr.VoteDivisor * float64(bPrime))
	if threshold < 1 {
		threshold = 1
	}
	topK := 2 * bPrime
	var cands []bitvec.Vector
	for i, c := range all {
		if float64(c.support) >= threshold || i < topK {
			cands = append(cands, c.vec)
		}
	}

	out := make(map[int]bitvec.Vector, len(learners))
	results := par.MapOn(rc.Exec(), len(learners), func(i int) bitvec.Vector {
		p := learners[i]
		if !rc.IsHonest(p) {
			// A dishonest player publishes its strategy's claims rather
			// than running the elimination loop.
			return rc.ReportVector(p, objs)
		}
		return eliminate(rc, p, objs, cands)
	})
	for i, p := range learners {
		out[p] = results[i]
	}
	return out
}

// eliminate runs the probe-to-disambiguate loop of Figure 1 step 5 for one
// player: while surviving candidates disagree somewhere, probe such an
// object and drop the candidates that contradict the probe. Each probe
// removes at least one candidate.
//
// Under an exact zero-radius assumption the player's own vector is always
// among the survivors. In practice (SmallRadius feeds groups whose clusters
// have diameter ≈1, not 0) the player may personally deviate from its
// cluster's modal vector on a probed object, which would eliminate every
// candidate. A probe that would empty the survivor set is therefore treated
// as the player's own idiosyncrasy: the probe result is recorded but the
// survivors are kept. The final survivor is the one agreeing best with all
// recorded probes.
func eliminate(rc *world.Run, p int, objs []int, cands []bitvec.Vector) bitvec.Vector {
	if len(objs) == 0 {
		return bitvec.New(0)
	}
	if len(cands) == 0 {
		return bitvec.New(len(objs))
	}
	// One survivor buffer filtered in place per probe — the per-iteration
	// `next` slice was an allocation per elimination probe per learner.
	survivors := make([]bitvec.Vector, len(cands))
	copy(survivors, cands)
	probed := make(map[int]bool, 8) // position → probed truth
	for len(survivors) > 1 {
		j := firstDisagreement(survivors)
		if j < 0 {
			break // all survivors identical on objs
		}
		truth := rc.Probe(p, objs[j])
		probed[j] = truth
		k := 0
		for _, c := range survivors {
			if c.Get(j) == truth {
				survivors[k] = c
				k++
			}
		}
		if k == 0 {
			// Own deviation from every candidate at j: keep the survivors
			// minus one arbitrary loser to guarantee progress. (No matches
			// means no in-place writes happened, so the prefix is intact.)
			k = len(survivors) - 1
		}
		survivors = survivors[:k]
	}
	// Pick the survivor that agrees best with everything probed. The
	// winner is returned as-is: candidate vectors are shared, immutable
	// inputs, and every downstream consumer only reads them.
	best, bestScore := survivors[0], -1
	for _, c := range survivors {
		score := 0
		for j, truth := range probed {
			if c.Get(j) == truth {
				score++
			}
		}
		if score > bestScore {
			best, bestScore = c, score
		}
	}
	return best
}

// firstDisagreement returns an index where at least two of the vectors
// differ, or -1 if all vectors are identical. FirstDiff scans words and
// allocates nothing — this runs once per elimination probe per learner,
// and materializing every difference (DiffIndices) just to take the first
// was the elimination loop's main allocation.
func firstDisagreement(vs []bitvec.Vector) int {
	base := vs[0]
	for _, v := range vs[1:] {
		if d := base.FirstDiff(v); d >= 0 {
			return d
		}
	}
	return -1
}
