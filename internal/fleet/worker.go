package fleet

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"

	"collabscore/internal/sweep"
	"collabscore/internal/xrand"
)

// ErrCoordinatorGone is the clean-exit sentinel RunWorker returns when the
// coordinator stays unreachable through the full retry budget. It is the
// normal way a fleet winds down — the coordinator finishes the grid and
// stops serving — so callers treat it as success with a note, not a crash.
var ErrCoordinatorGone = errors.New("fleet: coordinator unreachable, worker exiting cleanly")

// WorkerOptions configures a fleet worker.
type WorkerOptions struct {
	// URL is the coordinator's base URL (http://host:port).
	URL string
	// Name labels this worker in coordinator logs.
	Name string
	// PoolWorkers is the width of the local sweep pool each leased batch
	// runs on (sweep.Options.Workers; ≤ 0 means GOMAXPROCS).
	PoolWorkers int
	// Batch is the number of points requested per lease. Default 4.
	Batch int
	// Client issues the HTTP calls; tests swap in a faultinject transport.
	// Default: a client with a 30s timeout.
	Client *http.Client
	// BackoffBase/BackoffCap bound the capped exponential retry backoff:
	// attempt k sleeps min(cap, base·2^k), scaled by deterministic jitter in
	// [0.5, 1) drawn from Seed. Defaults 50ms / 5s.
	BackoffBase time.Duration
	BackoffCap  time.Duration
	// MaxRetries is the consecutive-failure budget for any one call before
	// the worker concludes the coordinator is gone. Default 8.
	MaxRetries int
	// Seed drives the jitter stream — same seed, same retry schedule
	// (deterministic backoff is what makes chaos runs reproducible).
	Seed uint64
	// Stop, when non-nil and closed, makes the worker stop leasing new
	// batches, let its in-flight points flush, and exit cleanly.
	Stop <-chan struct{}
	// Logf, when non-nil, receives progress lines.
	Logf func(format string, args ...any)
}

func (o WorkerOptions) withDefaults() WorkerOptions {
	if o.Batch <= 0 {
		o.Batch = 4
	}
	if o.Client == nil {
		o.Client = &http.Client{Timeout: 30 * time.Second}
	}
	if o.BackoffBase <= 0 {
		o.BackoffBase = 50 * time.Millisecond
	}
	if o.BackoffCap <= 0 {
		o.BackoffCap = 5 * time.Second
	}
	if o.MaxRetries <= 0 {
		o.MaxRetries = 8
	}
	return o
}

// WorkerStats summarizes a worker's session.
type WorkerStats struct {
	// Completed counts records this worker delivered fresh (accepted,
	// not duplicates of another worker's).
	Completed int
	// Duplicates counts records the coordinator already had — the visible
	// footprint of at-least-once dispatch.
	Duplicates int
	// Leases counts granted leases; Retries counts retried HTTP calls.
	Leases  int
	Retries int
	// Failures counts points whose runner panicked through the per-point
	// retry on this worker (reported to the coordinator).
	Failures int
}

type worker struct {
	opt   WorkerOptions
	rng   *xrand.Stream
	stats WorkerStats
	// gridDone is set when a CompleteResponse reports the grid finished, so
	// the worker exits without racing the coordinator's shutdown on one
	// more /lease poll.
	gridDone bool
}

// RunWorker leases batches from the coordinator at opt.URL and runs them on
// the pooled sweep engine until the grid is done (nil error), Stop closes
// (nil error), or the coordinator stays unreachable through the retry
// budget (ErrCoordinatorGone). Any other error is a protocol-level
// integrity failure (e.g. the coordinator rejected a record as
// conflicting), which no amount of retrying can fix.
func RunWorker(opt WorkerOptions) (WorkerStats, error) {
	opt = opt.withDefaults()
	w := &worker{opt: opt, rng: xrand.New(opt.Seed)}
	err := w.run()
	return w.stats, err
}

func (w *worker) logf(format string, args ...any) {
	if w.opt.Logf != nil {
		w.opt.Logf(format, args...)
	}
}

func (w *worker) stopped() bool {
	if w.opt.Stop == nil {
		return false
	}
	select {
	case <-w.opt.Stop:
		return true
	default:
		return false
	}
}

// backoff sleeps the capped exponential delay for the given consecutive
// attempt with deterministic jitter in [0.5, 1).
func (w *worker) backoff(attempt int) {
	d := w.opt.BackoffBase << min(attempt, 30)
	if d > w.opt.BackoffCap || d <= 0 {
		d = w.opt.BackoffCap
	}
	jitter := 0.5 + 0.5*w.rng.Float64()
	time.Sleep(time.Duration(float64(d) * jitter))
}

// post issues one JSON POST with retries. A transport error or 5xx retries
// up to MaxRetries consecutive times (ErrCoordinatorGone after); a 4xx is a
// protocol rejection returned to the caller verbatim.
func (w *worker) post(path string, req, resp any) error {
	body, err := json.Marshal(req)
	if err != nil {
		return err
	}
	for attempt := 0; ; attempt++ {
		if attempt > 0 {
			w.stats.Retries++
			w.backoff(attempt - 1)
			if w.stopped() {
				return ErrCoordinatorGone
			}
		}
		if attempt > w.opt.MaxRetries {
			return ErrCoordinatorGone
		}
		hr, err := w.opt.Client.Post(w.opt.URL+path, "application/json", bytes.NewReader(body))
		if err != nil {
			w.logf("fleet: %s: %v (attempt %d/%d)", path, err, attempt+1, w.opt.MaxRetries+1)
			continue
		}
		payload, rerr := io.ReadAll(io.LimitReader(hr.Body, maxBody))
		hr.Body.Close()
		switch {
		case hr.StatusCode >= 500 || rerr != nil:
			w.logf("fleet: %s: HTTP %d (attempt %d/%d)", path, hr.StatusCode, attempt+1, w.opt.MaxRetries+1)
			continue
		case hr.StatusCode != http.StatusOK:
			return fmt.Errorf("fleet: %s rejected: %s", path, strings.TrimSpace(string(payload)))
		}
		return json.Unmarshal(payload, resp)
	}
}

func (w *worker) run() error {
	for {
		if w.stopped() {
			return nil
		}
		var grant LeaseGrant
		if err := w.post("/lease", LeaseRequest{Worker: w.opt.Name, Max: w.opt.Batch}, &grant); err != nil {
			return err
		}
		switch {
		case grant.Done:
			w.logf("fleet: grid complete, exiting")
			return nil
		case grant.Wait || len(grant.Points) == 0:
			// Everything pending is out on other leases; poll again after a
			// capped-backoff beat (lapses may hand us their points).
			w.backoff(2)
			continue
		}
		w.stats.Leases++
		if err := w.runBatch(grant); err != nil {
			return err
		}
		if w.gridDone {
			w.logf("fleet: grid complete, exiting")
			return nil
		}
	}
}

// runBatch executes one leased batch on the pooled engine, streaming each
// record to /complete as it finishes and heartbeating the lease from a
// side goroutine. A lapsed lease does not abort the batch — the records
// remain deliverable and the queue deduplicates — but it is logged.
func (w *worker) runBatch(grant LeaseGrant) error {
	ttl := time.Duration(grant.TTLMillis) * time.Millisecond
	if ttl <= 0 {
		ttl = 15 * time.Second
	}
	stopBeat := make(chan struct{})
	beatDone := make(chan struct{})
	go func() {
		defer close(beatDone)
		w.heartbeatLoop(grant.LeaseID, ttl, stopBeat)
	}()
	defer func() {
		close(stopBeat)
		<-beatDone
	}()

	var firstErr error
	deliver := func(req CompleteRequest) {
		if firstErr != nil {
			return
		}
		req.Worker, req.LeaseID = w.opt.Name, grant.LeaseID
		var resp CompleteResponse
		if err := w.post("/complete", req, &resp); err != nil {
			firstErr = err
			return
		}
		if resp.Duplicate {
			w.stats.Duplicates++
		} else if req.Record != nil {
			w.stats.Completed++
		}
		if resp.Done {
			w.gridDone = true
		}
	}
	_, err := sweep.Run(grant.Points, sweep.Options{
		Workers:    w.opt.PoolWorkers,
		ComputeOpt: grant.ComputeOpt,
		Stop:       w.opt.Stop,
		Progress: func(completed, scheduled int, rec sweep.Record) {
			deliver(CompleteRequest{Record: &rec})
		},
		OnFailure: func(pt sweep.Point, err error) {
			w.logf("fleet: %v", err)
			w.stats.Failures++
			deliver(CompleteRequest{Failed: pt.Key()})
		},
	})
	if err != nil {
		return err
	}
	return firstErr
}

// heartbeatLoop extends the lease at a third of its TTL until the batch
// finishes. Each beat is a single attempt — a dropped beat is simply
// retried by the next tick, and a fully lapsed lease only causes duplicate
// dispatch, which the queue's merge absorbs. (Single attempts also keep
// this goroutine off the retry/jitter state the batch goroutine owns.)
func (w *worker) heartbeatLoop(leaseID uint64, ttl time.Duration, stop <-chan struct{}) {
	beat := ttl / 3
	if beat < 5*time.Millisecond {
		beat = 5 * time.Millisecond
	}
	body, _ := json.Marshal(HeartbeatRequest{Worker: w.opt.Name, LeaseID: leaseID})
	t := time.NewTicker(beat)
	defer t.Stop()
	for {
		select {
		case <-stop:
			return
		case <-t.C:
			hr, err := w.opt.Client.Post(w.opt.URL+"/heartbeat", "application/json", bytes.NewReader(body))
			if err != nil {
				continue
			}
			var resp HeartbeatResponse
			derr := json.NewDecoder(io.LimitReader(hr.Body, maxBody)).Decode(&resp)
			hr.Body.Close()
			if derr == nil && hr.StatusCode == http.StatusOK && !resp.OK {
				w.logf("fleet: lease %d lapsed (slow batch?); records will still be delivered and deduplicated", leaseID)
				return
			}
		}
	}
}
