package fleet

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"os"
	"sync"
	"time"

	"collabscore/internal/sweep"
)

// CoordinatorOptions configures a fleet coordinator. The zero value is
// usable: in-memory checkpointing, 15s leases, local fallback after 30s of
// silence.
type CoordinatorOptions struct {
	// LeaseTTL is the deadline horizon of every lease and heartbeat
	// extension; a worker silent for this long forfeits its points.
	// Default 15s.
	LeaseTTL time.Duration
	// MaxLeasePoints caps the points per grant regardless of what a worker
	// asks for. Default 8.
	MaxLeasePoints int
	// ComputeOpt mirrors sweep.Options.ComputeOpt: whether this sweep
	// records planted optima. It is sent to workers in every grant and
	// enforced on every record.
	ComputeOpt bool
	// Checkpoint is the JSONL path completed records stream to, in the
	// exact format sweep.RunFile writes — a crashed coordinator restarts
	// with Resume and the sweep.PlanFile planner (same stale-seed and
	// opt-change rejection, same torn-tail truncation) replays it. Empty
	// means in-memory only.
	Checkpoint string
	// Resume replays an existing checkpoint instead of truncating it.
	Resume bool
	// LocalGrace is how long the coordinator waits without hearing from any
	// worker before it starts running pending points itself (a fleet of
	// zero workers still finishes the grid). Negative disables the
	// fallback. Default 30s.
	LocalGrace time.Duration
	// LocalWorkers is the pool width of local-fallback runs (sweep
	// Options.Workers; ≤ 0 means GOMAXPROCS).
	LocalWorkers int
	// FailReports is how many per-worker persistent-failure reports a point
	// accumulates before the coordinator marks it failed and stops
	// re-dispatching it (each report already represents a run-and-retry on
	// that worker). Default 2.
	FailReports int
	// Logf, when non-nil, receives progress lines.
	Logf func(format string, args ...any)
}

func (o CoordinatorOptions) withDefaults() CoordinatorOptions {
	if o.LeaseTTL <= 0 {
		o.LeaseTTL = 15 * time.Second
	}
	if o.MaxLeasePoints <= 0 {
		o.MaxLeasePoints = 8
	}
	if o.LocalGrace == 0 {
		o.LocalGrace = 30 * time.Second
	}
	if o.FailReports <= 0 {
		o.FailReports = 2
	}
	return o
}

// Coordinator owns the expanded grid, the lease queue, and the crash-safe
// checkpoint. It is driven by Run (or Serve) and answers the wire protocol
// through Handler.
type Coordinator struct {
	opt    CoordinatorOptions
	points []sweep.Point
	queue  *sweep.Queue

	mu           sync.Mutex
	sink         *os.File
	sinkClosed   bool
	lastActivity time.Time
	failCount    map[string]int

	done     chan struct{}
	doneOnce sync.Once
}

// NewCoordinator plans the checkpoint (dropping stale records, truncating a
// torn tail — sweep.PlanFile), seeds the lease queue with the surviving
// records, and opens the checkpoint for appending.
func NewCoordinator(points []sweep.Point, opt CoordinatorOptions) (*Coordinator, error) {
	opt = opt.withDefaults()
	c := &Coordinator{
		opt:          opt,
		points:       points,
		failCount:    make(map[string]int),
		done:         make(chan struct{}),
		lastActivity: time.Now(),
	}
	var prior []sweep.Record
	if opt.Checkpoint != "" {
		plan, err := sweep.PlanFile(points, opt.Checkpoint, opt.Resume, opt.ComputeOpt)
		if err != nil {
			return nil, err
		}
		f, err := plan.Open()
		if err != nil {
			return nil, err
		}
		c.sink = f
		prior = plan.Valid
	}
	q, err := sweep.NewQueue(points, prior, opt.ComputeOpt)
	if err != nil {
		if c.sink != nil {
			c.sink.Close()
		}
		return nil, err
	}
	c.queue = q
	if q.Done() {
		c.signalDone()
	}
	return c, nil
}

func (c *Coordinator) logf(format string, args ...any) {
	if c.opt.Logf != nil {
		c.opt.Logf(format, args...)
	}
}

// Queue exposes the underlying lease queue (tests drive lapses through it).
func (c *Coordinator) Queue() *sweep.Queue { return c.queue }

// Failed returns the keys of points the fleet gave up on.
func (c *Coordinator) Failed() []string { return c.queue.Failed() }

func (c *Coordinator) touch() {
	c.mu.Lock()
	c.lastActivity = time.Now()
	c.mu.Unlock()
}

func (c *Coordinator) idleFor() time.Duration {
	c.mu.Lock()
	defer c.mu.Unlock()
	return time.Since(c.lastActivity)
}

func (c *Coordinator) signalDone() {
	c.doneOnce.Do(func() { close(c.done) })
}

// complete runs one record through the queue's exactly-once merge and, when
// it is fresh, appends it to the checkpoint (whole-line writes under the
// coordinator's mutex: a crash tears at most the tail, which the resume
// planner truncates away).
func (c *Coordinator) complete(rec sweep.Record) (fresh bool, err error) {
	fresh, err = c.queue.Complete(rec)
	if err != nil || !fresh {
		return fresh, err
	}
	c.mu.Lock()
	if c.sink != nil && !c.sinkClosed {
		err = sweep.WriteRecord(c.sink, rec)
	}
	c.mu.Unlock()
	if c.queue.Done() {
		c.signalDone()
	}
	return true, err
}

// fail accounts one persistent-failure report for key; after
// FailReports distinct reports the point is marked failed and leaves the
// dispatch cycle, otherwise it re-enters the queue for another worker.
func (c *Coordinator) fail(key string, final bool) error {
	c.mu.Lock()
	c.failCount[key]++
	n := c.failCount[key]
	c.mu.Unlock()
	var err error
	if final || n >= c.opt.FailReports {
		err = c.queue.Fail(key)
		c.logf("fleet: point %s failed persistently (%d reports), abandoned", key, n)
	} else {
		err = c.queue.Release(key)
		c.logf("fleet: point %s failed on a worker (report %d/%d), re-queued", key, n, c.opt.FailReports)
	}
	if c.queue.Done() {
		c.signalDone()
	}
	return err
}

func (c *Coordinator) closeSink() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.sink == nil || c.sinkClosed {
		return nil
	}
	c.sinkClosed = true
	return c.sink.Close()
}

// Run drives the coordinator until the grid completes or ctx is canceled:
// a reaper ticker lapses overdue leases, and after LocalGrace without any
// worker contact the coordinator claims batches itself through the very
// same lease path (so local and remote execution merge identically). It
// returns the completed records in grid-point order; on cancellation the
// partial set plus ctx's error (the checkpoint holds the same records, so
// the sweep resumes).
func (c *Coordinator) Run(ctx context.Context) ([]sweep.Record, error) {
	reap := c.opt.LeaseTTL / 4
	if reap < 10*time.Millisecond {
		reap = 10 * time.Millisecond
	}
	tick := time.NewTicker(reap)
	defer tick.Stop()
	for {
		select {
		case <-ctx.Done():
			c.closeSink()
			return c.queue.Records(), ctx.Err()
		case <-c.done:
			err := c.closeSink()
			return c.queue.Records(), err
		case <-tick.C:
			if n := c.queue.Expire(); n > 0 {
				c.logf("fleet: %d point(s) from lapsed leases re-queued", n)
			}
			if c.queue.Done() {
				c.signalDone()
				continue
			}
			if c.opt.LocalGrace >= 0 && c.idleFor() >= c.opt.LocalGrace {
				c.runLocal(ctx)
			}
		}
	}
}

// runLocal claims and runs pending batches on the coordinator's own pool
// until the grid drains, a worker makes contact again, or ctx cancels.
func (c *Coordinator) runLocal(ctx context.Context) {
	for ctx.Err() == nil {
		if c.opt.LocalGrace >= 0 && c.idleFor() < c.opt.LocalGrace {
			return // a worker showed up; let the fleet have the points
		}
		ls, ok := c.queue.Lease("coordinator-local", c.opt.MaxLeasePoints, c.opt.LeaseTTL)
		if !ok {
			return
		}
		c.logf("fleet: no worker contact for %s — running %d point(s) locally", c.opt.LocalGrace, len(ls.Points))
		var firstErr error
		_, err := sweep.Run(ls.Points, sweep.Options{
			Workers:    c.opt.LocalWorkers,
			ComputeOpt: c.opt.ComputeOpt,
			Stop:       ctx.Done(),
			OnFailure: func(pt sweep.Point, err error) {
				// Local execution is the authority of last resort: a point
				// that panics through the retry here is abandoned outright.
				c.fail(pt.Key(), true)
			},
			Progress: func(completed, scheduled int, rec sweep.Record) {
				if _, err := c.complete(rec); err != nil && firstErr == nil {
					firstErr = err
				}
				// Keep the local lease alive across long batches; a lapse
				// would only cause harmless duplicate dispatch, but there is
				// no reason to invite it.
				c.queue.Heartbeat(ls.ID, c.opt.LeaseTTL)
			},
		})
		if err != nil {
			c.logf("fleet: local run: %v", err)
			return
		}
		if firstErr != nil {
			c.logf("fleet: local run: %v", firstErr)
			return
		}
	}
}

// Serve listens on addr (host:port; port 0 picks a free one), announces the
// bound address through ready (when non-nil), serves the protocol, and
// runs the coordinator loop until the grid completes or ctx cancels.
func (c *Coordinator) Serve(ctx context.Context, addr string, ready func(addr string)) ([]sweep.Record, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	if ready != nil {
		ready(ln.Addr().String())
	}
	// A coordinator is a long-lived listener on an open port, so cap how
	// long a connection may dribble headers (slowloris) or sit idle; the
	// protocol's requests are tiny (maxBody), so generous read/idle caps
	// cost nothing legitimate.
	srv := &http.Server{
		Handler:           c.Handler(),
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       30 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()
	recs, err := c.Run(ctx)
	shutCtx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	if srv.Shutdown(shutCtx) != nil {
		srv.Close()
	}
	// Serve always returns once the listener closes; surface a real serve
	// failure (bad listener, accept loop death) instead of dropping it —
	// without clobbering the run's own error.
	if se := <-serveErr; se != nil && !errors.Is(se, http.ErrServerClosed) {
		if err == nil {
			err = fmt.Errorf("fleet: serve: %w", se)
		} else {
			c.logf("fleet: serve: %v", se)
		}
	}
	return recs, err
}

// Handler returns the coordinator's HTTP protocol surface. Every handler
// decodes with a bounded reader and answers malformed input with a 4xx —
// never a panic (FuzzLeaseProtocol) — so a misbehaving worker cannot take
// the fleet down.
func (c *Coordinator) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /lease", c.handleLease)
	mux.HandleFunc("POST /complete", c.handleComplete)
	mux.HandleFunc("POST /heartbeat", c.handleHeartbeat)
	mux.HandleFunc("GET /status", c.handleStatus)
	return mux
}

// maxBody bounds request bodies: the largest legal message is a
// CompleteRequest holding one record (well under a kilobyte).
const maxBody = 1 << 20

func decode[T any](w http.ResponseWriter, r *http.Request, into *T) bool {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBody))
	if err := dec.Decode(into); err != nil {
		http.Error(w, fmt.Sprintf("fleet: bad request: %v", err), http.StatusBadRequest)
		return false
	}
	return true
}

func reply(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(v)
}

func (c *Coordinator) handleLease(w http.ResponseWriter, r *http.Request) {
	var req LeaseRequest
	if !decode(w, r, &req) {
		return
	}
	c.touch()
	if c.queue.Done() {
		reply(w, LeaseGrant{Done: true})
		return
	}
	max := req.Max
	if max <= 0 || max > c.opt.MaxLeasePoints {
		max = c.opt.MaxLeasePoints
	}
	ls, ok := c.queue.Lease(req.Worker, max, c.opt.LeaseTTL)
	if !ok {
		reply(w, LeaseGrant{Done: c.queue.Done(), Wait: !c.queue.Done()})
		return
	}
	c.logf("fleet: leased %d point(s) to %s (lease %d)", len(ls.Points), req.Worker, ls.ID)
	reply(w, LeaseGrant{
		LeaseID:    ls.ID,
		Points:     ls.Points,
		TTLMillis:  c.opt.LeaseTTL.Milliseconds(),
		ComputeOpt: c.opt.ComputeOpt,
	})
}

func (c *Coordinator) handleComplete(w http.ResponseWriter, r *http.Request) {
	var req CompleteRequest
	if !decode(w, r, &req) {
		return
	}
	c.touch()
	switch {
	case req.Record != nil:
		fresh, err := c.complete(*req.Record)
		switch {
		case errors.Is(err, sweep.ErrConflict):
			http.Error(w, err.Error(), http.StatusConflict)
		case err != nil:
			http.Error(w, err.Error(), http.StatusBadRequest)
		default:
			reply(w, CompleteResponse{OK: true, Duplicate: !fresh, Done: c.queue.Done()})
		}
	case req.Failed != "":
		if err := c.fail(req.Failed, false); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		reply(w, CompleteResponse{OK: true, Done: c.queue.Done()})
	default:
		http.Error(w, "fleet: complete request needs a record or a failed key", http.StatusBadRequest)
	}
}

func (c *Coordinator) handleHeartbeat(w http.ResponseWriter, r *http.Request) {
	var req HeartbeatRequest
	if !decode(w, r, &req) {
		return
	}
	c.touch()
	deadline, ok := c.queue.Heartbeat(req.LeaseID, c.opt.LeaseTTL)
	if !ok {
		reply(w, HeartbeatResponse{OK: false})
		return
	}
	reply(w, HeartbeatResponse{OK: true, TTLMillis: time.Until(deadline).Milliseconds()})
}

func (c *Coordinator) handleStatus(w http.ResponseWriter, r *http.Request) {
	pending, leased, done, failed := c.queue.Counts()
	reply(w, Status{
		Total:    len(c.points),
		Pending:  pending,
		Leased:   leased,
		Done:     done,
		Failed:   failed,
		Complete: c.queue.Done(),
	})
}
