// Package fleet distributes a sweep grid across worker processes with a
// lease-based coordinator/worker protocol over HTTP (DESIGN.md §15). The
// coordinator expands the grid once and hands out point leases; workers run
// leased points through the pooled sweep engine and stream records back.
// Robustness is the design center: leases carry deadlines and lapse when a
// worker stops heartbeating (its points silently re-enter the queue —
// at-least-once dispatch made exactly-once in the output by the queue's
// idempotent, key-deduplicated merge), workers retry coordinator calls with
// capped exponential backoff and deterministic jitter, the coordinator
// checkpoints completed records to the torn-tail-tolerant JSONL format so
// its own crashes resume through the sweep.PlanFile planner unchanged, and
// a coordinator that never hears from a worker finishes the grid locally.
// internal/fleet/faultinject provides the chaos harness the protocol is
// tested under.
package fleet

import "collabscore/internal/sweep"

// Wire messages. Every request is a JSON POST; responses are JSON. The
// coordinator decodes with a bounded reader and treats any malformed body
// as a 400 — worker input must never be able to panic it (FuzzLeaseProtocol
// pins this).

// LeaseRequest asks the coordinator for a batch of points.
type LeaseRequest struct {
	// Worker is a display name for logs and /status; it carries no
	// authority (leases are identified by ID, not holder).
	Worker string `json:"worker"`
	// Max bounds the batch size; the coordinator may grant fewer.
	Max int `json:"max"`
}

// LeaseGrant is the coordinator's answer: a batch to run, "come back
// later", or "the grid is finished".
type LeaseGrant struct {
	// Done means every point is complete (or failed): the worker should
	// exit. When Done is set no other field is meaningful.
	Done bool `json:"done,omitempty"`
	// Wait means nothing is pending right now — every remaining point is
	// out on a live lease. The worker should poll again after a backoff.
	Wait bool `json:"wait,omitempty"`

	LeaseID uint64 `json:"lease_id,omitempty"`
	// Points are the granted points, seeds included — the worker runs
	// exactly these, it never re-derives them.
	Points []sweep.Point `json:"points,omitempty"`
	// TTLMillis is the lease's deadline horizon; the worker heartbeats at a
	// fraction of it.
	TTLMillis int64 `json:"ttl_ms,omitempty"`
	// ComputeOpt tells the worker whether this sweep records planted
	// optima (the coordinator's setting; records that disagree with it are
	// rejected as stale).
	ComputeOpt bool `json:"compute_opt,omitempty"`
}

// CompleteRequest delivers one finished point — or reports one that
// persistently failed on this worker (Failed set, Record nil).
type CompleteRequest struct {
	Worker  string `json:"worker"`
	LeaseID uint64 `json:"lease_id"`
	// Record is the completed record. Exactly one of Record and Failed is
	// set.
	Record *sweep.Record `json:"record,omitempty"`
	// Failed is the key of a point whose runner panicked through the
	// per-point retry on this worker.
	Failed string `json:"failed,omitempty"`
}

// CompleteResponse acknowledges a completion.
type CompleteResponse struct {
	OK bool `json:"ok"`
	// Duplicate is set when the record was already known (and identical —
	// a conflicting duplicate is a 409, not a response).
	Duplicate bool `json:"duplicate,omitempty"`
	// Done mirrors LeaseGrant.Done so workers learn the grid finished
	// without another round trip.
	Done bool `json:"done,omitempty"`
}

// HeartbeatRequest extends a lease.
type HeartbeatRequest struct {
	Worker  string `json:"worker"`
	LeaseID uint64 `json:"lease_id"`
}

// HeartbeatResponse reports whether the lease is still live. OK = false
// means it lapsed: the holder's points are back in the queue and it should
// stop the batch when convenient (records it still delivers are accepted
// and deduplicated) and request a fresh lease.
type HeartbeatResponse struct {
	OK        bool  `json:"ok"`
	TTLMillis int64 `json:"ttl_ms,omitempty"`
}

// Status is the coordinator's /status payload.
type Status struct {
	Total    int  `json:"total"`
	Pending  int  `json:"pending"`
	Leased   int  `json:"leased"`
	Done     int  `json:"done"`
	Failed   int  `json:"failed"`
	Complete bool `json:"complete"`
}
