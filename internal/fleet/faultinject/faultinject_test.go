package faultinject

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// newServer counts requests per path and echoes the request body.
func newServer(t *testing.T, hits *atomic.Int64) *httptest.Server {
	t.Helper()
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		body, _ := io.ReadAll(r.Body)
		w.Write(body)
	}))
	t.Cleanup(srv.Close)
	return srv
}

func post(t *testing.T, client *http.Client, url, body string) (string, error) {
	t.Helper()
	resp, err := client.Post(url, "text/plain", strings.NewReader(body))
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	return string(b), err
}

func TestDropAfterTimes(t *testing.T) {
	var hits atomic.Int64
	srv := newServer(t, &hits)
	f := &Fault{After: 1, Times: 2, Drop: true}
	client := &http.Client{Transport: &Transport{Faults: []*Fault{f}}}

	// Request 1 passes (After skips it), 2 and 3 drop (Times), 4 passes.
	for i, wantErr := range []bool{false, true, true, false} {
		_, err := post(t, client, srv.URL+"/x", "hi")
		if (err != nil) != wantErr {
			t.Fatalf("request %d: err=%v, want error=%v", i+1, err, wantErr)
		}
	}
	if got := hits.Load(); got != 2 {
		t.Fatalf("server saw %d requests, want 2", got)
	}
	tr := client.Transport.(*Transport)
	if tr.Fired(f) != 2 {
		t.Fatalf("Fired = %d, want 2", tr.Fired(f))
	}
}

func TestPathFilter(t *testing.T) {
	var hits atomic.Int64
	srv := newServer(t, &hits)
	f := &Fault{Path: "/heartbeat", Drop: true}
	client := &http.Client{Transport: &Transport{Faults: []*Fault{f}}}

	if _, err := post(t, client, srv.URL+"/complete", "a"); err != nil {
		t.Fatalf("unmatched path dropped: %v", err)
	}
	if _, err := post(t, client, srv.URL+"/heartbeat", "b"); err == nil {
		t.Fatal("matched path delivered")
	}
	if got := hits.Load(); got != 1 {
		t.Fatalf("server saw %d requests, want 1", got)
	}
}

func TestDropResponseDeliversFirst(t *testing.T) {
	var hits atomic.Int64
	srv := newServer(t, &hits)
	f := &Fault{DropResponse: true, Times: 1}
	client := &http.Client{Transport: &Transport{Faults: []*Fault{f}}}

	// The server processes the request, but the client sees a failure —
	// the duplicate-delivery trap distributed completions must survive.
	if _, err := post(t, client, srv.URL+"/x", "a"); err == nil {
		t.Fatal("dropped response reported success")
	}
	if got := hits.Load(); got != 1 {
		t.Fatalf("server saw %d requests, want 1 (request must be delivered)", got)
	}
	if body, err := post(t, client, srv.URL+"/x", "retry"); err != nil || body != "retry" {
		t.Fatalf("retry after fault exhausted: body=%q err=%v", body, err)
	}
}

func TestDuplicateSendsTwice(t *testing.T) {
	var hits atomic.Int64
	srv := newServer(t, &hits)
	f := &Fault{Duplicate: true, Times: 1}
	client := &http.Client{Transport: &Transport{Faults: []*Fault{f}}}

	body, err := post(t, client, srv.URL+"/x", "dup")
	if err != nil || body != "dup" {
		t.Fatalf("duplicated request failed: body=%q err=%v", body, err)
	}
	if got := hits.Load(); got != 2 {
		t.Fatalf("server saw %d requests, want 2", got)
	}
}

func TestDelayHonorsContext(t *testing.T) {
	var hits atomic.Int64
	srv := newServer(t, &hits)
	f := &Fault{Delay: time.Minute}
	client := &http.Client{
		Timeout:   20 * time.Millisecond,
		Transport: &Transport{Faults: []*Fault{f}},
	}
	start := time.Now()
	if _, err := post(t, client, srv.URL+"/x", "slow"); err == nil {
		t.Fatal("delayed request beat the client timeout")
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("delay ignored the canceled context (took %s)", elapsed)
	}
	if got := hits.Load(); got != 0 {
		t.Fatalf("server saw %d requests, want 0", got)
	}
}

func TestShortDelayDelivers(t *testing.T) {
	var hits atomic.Int64
	srv := newServer(t, &hits)
	f := &Fault{Delay: 5 * time.Millisecond}
	client := &http.Client{Transport: &Transport{Faults: []*Fault{f}}}
	if body, err := post(t, client, srv.URL+"/x", "ok"); err != nil || body != "ok" {
		t.Fatalf("delayed-but-delivered request: body=%q err=%v", body, err)
	}
	if got := hits.Load(); got != 1 {
		t.Fatalf("server saw %d requests, want 1", got)
	}
}
