// Package faultinject is the chaos harness the fleet protocol is tested
// under: a deterministic error-injecting http.RoundTripper that drops
// requests, delays responses past client timeouts, loses responses after
// the server has already processed the request (forcing client retries and
// therefore duplicate deliveries), and duplicates requests outright. Every
// fault fires on a deterministic schedule (match counts, not timers or
// randomness), so a chaos run is reproducible.
package faultinject

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"time"
)

// Fault is one injection rule. A request matches when its URL path has the
// Path suffix ("" matches everything); among matching requests, the rule
// skips the first After, then fires on every one until it has fired Times
// times (0 = unlimited). Exactly the actions set on the fault apply, in
// the order Delay → Drop → Duplicate/DropResponse.
type Fault struct {
	// Path is a URL-path suffix filter; "" matches every request.
	Path string
	// After skips the first After matching requests (fire from the
	// (After+1)-th on). A worker whose every call starts failing After k
	// requests is the harness's SIGKILL analogue: it stops heartbeating and
	// completing mid-lease.
	After int
	// Times caps how many requests the fault fires on; 0 = unlimited.
	Times int

	// Delay sleeps before delivering the request — longer than the
	// client's timeout, it turns into a timeout failure on a request the
	// server may still process.
	Delay time.Duration
	// Drop fails the request without delivering it (network black hole).
	Drop bool
	// DropResponse delivers the request, then discards the response and
	// returns a transport error — the client retries what the server
	// already processed, the duplicate-completion path.
	DropResponse bool
	// Duplicate delivers the request twice back-to-back and returns the
	// second response — a duplicate the client doesn't even know it sent.
	Duplicate bool
}

func (f *Fault) matches(req *http.Request) bool {
	return f.Path == "" || strings.HasSuffix(req.URL.Path, f.Path)
}

// Transport wraps an inner http.RoundTripper with fault rules. It buffers
// request bodies (the fleet protocol's messages are small JSON documents)
// so a request can be re-sent for Duplicate and DropResponse faults. Safe
// for concurrent use.
type Transport struct {
	// Inner is the real transport; nil means http.DefaultTransport.
	Inner http.RoundTripper
	// Faults are evaluated in order; every matching, armed fault's actions
	// apply to the request.
	Faults []*Fault

	mu      sync.Mutex
	matched map[*Fault]int
	fired   map[*Fault]int
}

// Fired returns how many requests the fault has fired on.
func (t *Transport) Fired(f *Fault) int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.fired[f]
}

// arm atomically decides which faults fire on this request and records the
// counts.
func (t *Transport) arm(req *http.Request) []*Fault {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.matched == nil {
		t.matched = make(map[*Fault]int)
		t.fired = make(map[*Fault]int)
	}
	var firing []*Fault
	for _, f := range t.Faults {
		if !f.matches(req) {
			continue
		}
		t.matched[f]++
		if t.matched[f] <= f.After {
			continue
		}
		if f.Times > 0 && t.fired[f] >= f.Times {
			continue
		}
		t.fired[f]++
		firing = append(firing, f)
	}
	return firing
}

// RoundTrip applies the armed faults to the request.
func (t *Transport) RoundTrip(req *http.Request) (*http.Response, error) {
	inner := t.Inner
	if inner == nil {
		inner = http.DefaultTransport
	}
	var body []byte
	if req.Body != nil {
		var err error
		body, err = io.ReadAll(req.Body)
		req.Body.Close()
		if err != nil {
			return nil, err
		}
	}
	send := func() (*http.Response, error) {
		r := req.Clone(req.Context())
		if body != nil {
			r.Body = io.NopCloser(bytes.NewReader(body))
			r.ContentLength = int64(len(body))
		}
		return inner.RoundTrip(r)
	}

	firing := t.arm(req)
	var delay time.Duration
	drop, dropResp, dup := false, false, false
	for _, f := range firing {
		delay = max(delay, f.Delay)
		drop = drop || f.Drop
		dropResp = dropResp || f.DropResponse
		dup = dup || f.Duplicate
	}
	if delay > 0 {
		select {
		case <-time.After(delay):
		case <-req.Context().Done():
			return nil, req.Context().Err()
		}
	}
	if drop {
		return nil, fmt.Errorf("faultinject: dropped %s %s", req.Method, req.URL.Path)
	}
	resp, err := send()
	if err != nil {
		return nil, err
	}
	if dup {
		// Deliver again; the first response is discarded unread.
		resp.Body.Close()
		resp, err = send()
		if err != nil {
			return nil, err
		}
	}
	if dropResp {
		resp.Body.Close()
		return nil, fmt.Errorf("faultinject: lost response to %s %s", req.Method, req.URL.Path)
	}
	return resp, nil
}
