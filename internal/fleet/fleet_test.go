package fleet

import (
	"context"
	"errors"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"

	"collabscore/internal/fleet/faultinject"
	"collabscore/internal/sweep"
)

// fleetGrid is the chaos matrix's grid: small enough that a full fleet run
// takes well under a second, diverse enough to cross protocols, corruption,
// and trials.
func fleetGrid(t *testing.T) []sweep.Point {
	t.Helper()
	pts, err := sweep.Expand(sweep.Spec{
		Seed:         23,
		Trials:       2,
		Players:      []int{48, 64},
		ClusterSizes: []int{16},
		Diameters:    []int{4},
		Dishonest:    []int{0, 2},
		Strategies:   []string{"colluders"},
		Protocols:    []string{"run", "byzantine"},
		FixDiameter:  true,
	})
	if err != nil {
		t.Fatal(err)
	}
	return pts
}

// reference is the uninterrupted single-process run every chaos case is
// pinned against.
func reference(t *testing.T, pts []sweep.Point) []sweep.Record {
	t.Helper()
	recs, err := sweep.Run(pts, sweep.Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	return recs
}

// harness runs a coordinator over an httptest server plus the given workers
// and returns the coordinator's final records.
type harness struct {
	coord  *Coordinator
	server *httptest.Server
	cancel context.CancelFunc
	runErr chan error
	recs   []sweep.Record
}

func startHarness(t *testing.T, pts []sweep.Point, opt CoordinatorOptions) *harness {
	t.Helper()
	if opt.LeaseTTL == 0 {
		opt.LeaseTTL = 50 * time.Millisecond
	}
	if opt.LocalGrace == 0 {
		// Backstop: if every worker dies, the coordinator finishes the grid
		// itself rather than hanging the test.
		opt.LocalGrace = 400 * time.Millisecond
	}
	c, err := NewCoordinator(pts, opt)
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(c.Handler())
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	h := &harness{coord: c, server: srv, cancel: cancel, runErr: make(chan error, 1)}
	go func() {
		recs, err := c.Run(ctx)
		h.recs = recs
		h.runErr <- err
	}()
	t.Cleanup(func() { cancel(); srv.Close() })
	return h
}

// wait blocks until the coordinator loop exits and returns its records.
func (h *harness) wait(t *testing.T) []sweep.Record {
	t.Helper()
	if err := <-h.runErr; err != nil {
		t.Fatalf("coordinator: %v", err)
	}
	return h.recs
}

// workerOpts builds fast-retry worker options against the harness with the
// given fault rules.
func (h *harness) workerOpts(name string, seed uint64, faults ...*faultinject.Fault) WorkerOptions {
	client := &http.Client{
		Timeout:   2 * time.Second,
		Transport: &faultinject.Transport{Faults: faults},
	}
	return WorkerOptions{
		URL:         h.server.URL,
		Name:        name,
		PoolWorkers: 1,
		Batch:       3,
		Client:      client,
		BackoffBase: time.Millisecond,
		BackoffCap:  20 * time.Millisecond,
		MaxRetries:  3,
		Seed:        seed,
	}
}

// runWorkers runs each options set as a worker goroutine and waits for all
// of them; a worker error other than ErrCoordinatorGone fails the test.
func runWorkers(t *testing.T, opts ...WorkerOptions) []WorkerStats {
	t.Helper()
	stats := make([]WorkerStats, len(opts))
	errs := make([]error, len(opts))
	done := make(chan int, len(opts))
	for i, o := range opts {
		go func(i int, o WorkerOptions) {
			stats[i], errs[i] = RunWorker(o)
			done <- i
		}(i, o)
	}
	for range opts {
		<-done
	}
	for i, err := range errs {
		if err != nil && !errors.Is(err, ErrCoordinatorGone) {
			t.Fatalf("worker %s: %v", opts[i].Name, err)
		}
	}
	return stats
}

func assertPinned(t *testing.T, got, ref []sweep.Record) {
	t.Helper()
	if len(got) != len(ref) {
		t.Fatalf("fleet produced %d records, reference has %d", len(got), len(ref))
	}
	if !reflect.DeepEqual(got, ref) {
		for i := range ref {
			if !reflect.DeepEqual(got[i], ref[i]) {
				t.Fatalf("record %d (%s) differs from single-process reference\n got %+v\nwant %+v",
					i, ref[i].Key, got[i], ref[i])
			}
		}
		t.Fatal("records differ from single-process reference")
	}
}

// TestFleetCleanTwoWorkers: the no-fault baseline — two workers drain the
// grid and the merged output is byte-identical to a single-process run.
func TestFleetCleanTwoWorkers(t *testing.T) {
	pts := fleetGrid(t)
	ref := reference(t, pts)
	h := startHarness(t, pts, CoordinatorOptions{LocalGrace: -1})
	stats := runWorkers(t, h.workerOpts("w1", 1), h.workerOpts("w2", 2))
	assertPinned(t, h.wait(t), ref)
	if total := stats[0].Completed + stats[1].Completed; total != len(pts) {
		t.Fatalf("workers completed %d fresh records for %d points", total, len(pts))
	}
}

// TestFleetWorkerKilled: one worker goes dark mid-lease (every call fails
// after its first few — the in-process analogue of SIGKILL: no heartbeats,
// no completions, no goodbye). Its lease lapses, the survivor picks the
// points up, and the output still pins to the reference.
func TestFleetWorkerKilled(t *testing.T) {
	pts := fleetGrid(t)
	ref := reference(t, pts)
	h := startHarness(t, pts, CoordinatorOptions{LocalGrace: -1, LeaseTTL: 40 * time.Millisecond})
	killed := &faultinject.Fault{After: 2, Drop: true}
	stats := runWorkers(t, h.workerOpts("victim", 1, killed), h.workerOpts("survivor", 2))
	assertPinned(t, h.wait(t), ref)
	if stats[1].Completed == 0 {
		t.Fatal("survivor completed nothing — the kill never handed work over")
	}
}

// TestFleetDroppedHeartbeats: a worker whose heartbeats all vanish keeps
// running its batch; the lease lapses and its points may be re-dispatched
// to the other worker, but the duplicate completions deduplicate and the
// output is exactly-once.
func TestFleetDroppedHeartbeats(t *testing.T) {
	pts := fleetGrid(t)
	ref := reference(t, pts)
	h := startHarness(t, pts, CoordinatorOptions{LocalGrace: -1, LeaseTTL: 10 * time.Millisecond})
	deaf := &faultinject.Fault{Path: "/heartbeat", Drop: true}
	runWorkers(t, h.workerOpts("deaf", 1, deaf), h.workerOpts("loud", 2))
	assertPinned(t, h.wait(t), ref)
}

// TestFleetDelayedResponses: completions delayed past the client timeout
// fail on the worker side and are retried; the retries succeed and nothing
// is lost or doubled.
func TestFleetDelayedResponses(t *testing.T) {
	pts := fleetGrid(t)
	ref := reference(t, pts)
	h := startHarness(t, pts, CoordinatorOptions{LocalGrace: -1})
	slow := &faultinject.Fault{Path: "/complete", Delay: 300 * time.Millisecond, Times: 2}
	opts := h.workerOpts("slowpoke", 1, slow)
	opts.Client.Timeout = 30 * time.Millisecond
	stats := runWorkers(t, opts, h.workerOpts("peer", 2))
	assertPinned(t, h.wait(t), ref)
	if stats[0].Retries == 0 {
		t.Fatal("delayed responses never forced a retry")
	}
}

// TestFleetDuplicateCompletions: lost responses (the server processed the
// completion, the worker never heard back) force re-sends of records the
// coordinator already has, and outright duplicated requests deliver twice —
// the queue absorbs every copy.
func TestFleetDuplicateCompletions(t *testing.T) {
	pts := fleetGrid(t)
	ref := reference(t, pts)
	h := startHarness(t, pts, CoordinatorOptions{LocalGrace: -1})
	lost := &faultinject.Fault{Path: "/complete", DropResponse: true, After: 1, Times: 3}
	doubled := &faultinject.Fault{Path: "/complete", Duplicate: true, After: 6, Times: 3}
	stats := runWorkers(t, h.workerOpts("echo", 1, lost, doubled), h.workerOpts("peer", 2))
	assertPinned(t, h.wait(t), ref)
	if stats[0].Duplicates == 0 {
		t.Fatal("lost responses never produced a deduplicated re-send")
	}
}

// TestFleetTornCheckpointResume: the coordinator is stopped mid-sweep, its
// checkpoint's tail torn mid-record, and a fresh coordinator resumes from
// the wreckage with no workers at all (local fallback) — the final records
// and the rewritten checkpoint both pin to the reference.
func TestFleetTornCheckpointResume(t *testing.T) {
	pts := fleetGrid(t)
	ref := reference(t, pts)
	ckpt := filepath.Join(t.TempDir(), "fleet.jsonl")

	h := startHarness(t, pts, CoordinatorOptions{Checkpoint: ckpt, LocalGrace: -1})
	workerDone := make(chan error, 1)
	go func() {
		_, err := RunWorker(h.workerOpts("w1", 1))
		workerDone <- err
	}()
	// Let a few records land, then yank the coordinator mid-sweep.
	deadline := time.Now().Add(30 * time.Second)
	for {
		if _, _, done, _ := h.coord.Queue().Counts(); done >= 3 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("no records completed before the kill")
		}
		time.Sleep(time.Millisecond)
	}
	h.cancel()
	if err := <-h.runErr; !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled coordinator returned %v", err)
	}
	h.server.Close()
	if err := <-workerDone; err != nil && !errors.Is(err, ErrCoordinatorGone) {
		t.Fatalf("worker: %v", err)
	}

	// Tear the checkpoint tail mid-line (the crash the format is built for).
	raw, err := os.ReadFile(ckpt)
	if err != nil {
		t.Fatal(err)
	}
	if len(raw) < 20 {
		t.Fatalf("checkpoint only holds %d bytes", len(raw))
	}
	if err := os.WriteFile(ckpt, raw[:len(raw)-17], 0o644); err != nil {
		t.Fatal(err)
	}

	// Resume with zero workers: the local fallback finishes the grid.
	c2, err := NewCoordinator(pts, CoordinatorOptions{
		Checkpoint: ckpt, Resume: true,
		LeaseTTL: 50 * time.Millisecond, LocalGrace: time.Millisecond, LocalWorkers: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	recs, err := c2.Run(ctx)
	if err != nil {
		t.Fatal(err)
	}
	assertPinned(t, recs, ref)

	// The checkpoint itself now replays to the full reference. The file is
	// in completion order, not grid order, so compare by key.
	f, err := os.Open(ckpt)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	onDisk, _, err := sweep.ReadRecords(f)
	if err != nil {
		t.Fatal(err)
	}
	byKey := make(map[string]sweep.Record, len(onDisk))
	for _, rec := range onDisk {
		byKey[rec.Key] = rec
	}
	if len(byKey) != len(ref) {
		t.Fatalf("checkpoint holds %d distinct records, reference has %d", len(byKey), len(ref))
	}
	for _, want := range ref {
		got, ok := byKey[want.Key]
		if !ok {
			t.Fatalf("checkpoint lost record %s", want.Key)
		}
		got.Index = want.Index // not serialized
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("checkpoint record %s differs from reference\n got %+v\nwant %+v", want.Key, got, want)
		}
	}
}

// TestFleetLocalFallbackOnly: a coordinator that never hears from any
// worker runs the whole grid itself through the same lease path.
func TestFleetLocalFallbackOnly(t *testing.T) {
	pts := fleetGrid(t)
	ref := reference(t, pts)
	c, err := NewCoordinator(pts, CoordinatorOptions{
		LeaseTTL: 50 * time.Millisecond, LocalGrace: time.Millisecond, LocalWorkers: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	recs, err := c.Run(ctx)
	if err != nil {
		t.Fatal(err)
	}
	assertPinned(t, recs, ref)
}

// TestFleetFailedPointReporting: a grid containing a point whose runner
// panics deterministically still completes every healthy point; the bad
// point is reported by workers, abandoned after FailReports, and listed in
// Failed() — never silently dropped, never fatal to the fleet.
func TestFleetFailedPointReporting(t *testing.T) {
	pts := fleetGrid(t)
	ref := reference(t, pts)
	bad := sweep.Point{
		Players: 8, Objects: 8, Budget: 8,
		Plant:    sweep.Plant{Kind: "cluster", ClusterSize: 64},
		Protocol: "run", Seed: 99,
	}
	grid := append(append([]sweep.Point{}, pts...), bad)
	for i := range grid {
		grid[i].Index = i
	}
	h := startHarness(t, grid, CoordinatorOptions{LocalGrace: -1, FailReports: 2})
	runWorkers(t, h.workerOpts("w1", 1), h.workerOpts("w2", 2))
	recs := h.wait(t)
	for i := range recs {
		recs[i].Index = ref[i].Index
	}
	assertPinned(t, recs, ref)
	failed := h.coord.Failed()
	if len(failed) != 1 || failed[0] != bad.Key() {
		t.Fatalf("failed points %v, want exactly %s", failed, bad.Key())
	}
}

// TestFleetChaosProperty: randomized kill/lapse/duplicate schedules — for
// every seed, two workers under a random fault cocktail (with the local
// fallback as backstop) must still produce exactly the reference records.
func TestFleetChaosProperty(t *testing.T) {
	pts := fleetGrid(t)
	ref := reference(t, pts)
	iters := 4
	if testing.Short() {
		iters = 2
	}
	for seed := 0; seed < iters; seed++ {
		t.Run("", func(t *testing.T) {
			rng := rand.New(rand.NewSource(int64(seed) + 7))
			mkFaults := func() []*faultinject.Fault {
				var fs []*faultinject.Fault
				if rng.Intn(2) == 0 { // SIGKILL analogue
					fs = append(fs, &faultinject.Fault{After: 1 + rng.Intn(8), Drop: true})
				}
				if rng.Intn(2) == 0 { // deaf heartbeats
					fs = append(fs, &faultinject.Fault{Path: "/heartbeat", Drop: true})
				}
				if rng.Intn(2) == 0 { // lost completion responses
					fs = append(fs, &faultinject.Fault{Path: "/complete", DropResponse: true, After: rng.Intn(4), Times: 1 + rng.Intn(3)})
				}
				if rng.Intn(2) == 0 { // duplicated completions
					fs = append(fs, &faultinject.Fault{Path: "/complete", Duplicate: true, After: rng.Intn(4), Times: 1 + rng.Intn(3)})
				}
				return fs
			}
			h := startHarness(t, pts, CoordinatorOptions{
				LeaseTTL:   time.Duration(10+rng.Intn(40)) * time.Millisecond,
				LocalGrace: 300 * time.Millisecond,
			})
			runWorkers(t,
				h.workerOpts("a", uint64(seed)*2+1, mkFaults()...),
				h.workerOpts("b", uint64(seed)*2+2, mkFaults()...))
			assertPinned(t, h.wait(t), ref)
		})
	}
}

// TestFleetServe: the Serve entry point binds :0, announces the bound
// address, serves a worker, and shuts down when the grid completes.
func TestFleetServe(t *testing.T) {
	pts := fleetGrid(t)[:6]
	ref, err := sweep.Run(pts, sweep.Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	c, err := NewCoordinator(pts, CoordinatorOptions{LeaseTTL: time.Second, LocalGrace: -1})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	bound := make(chan string, 1)
	serveDone := make(chan error, 1)
	var recs []sweep.Record
	go func() {
		var err error
		recs, err = c.Serve(ctx, "127.0.0.1:0", func(addr string) { bound <- addr })
		serveDone <- err
	}()
	addr := <-bound
	if _, err := RunWorker(WorkerOptions{
		URL: "http://" + addr, Name: "w", PoolWorkers: 1,
		BackoffBase: time.Millisecond, BackoffCap: 20 * time.Millisecond,
	}); err != nil {
		t.Fatal(err)
	}
	if err := <-serveDone; err != nil {
		t.Fatal(err)
	}
	assertPinned(t, recs, ref)
}

// TestFleetStatusEndpoint: /status reflects queue state and completes.
func TestFleetStatusEndpoint(t *testing.T) {
	pts := fleetGrid(t)
	h := startHarness(t, pts, CoordinatorOptions{LocalGrace: -1})
	resp, err := http.Get(h.server.URL + "/status")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status returned HTTP %d", resp.StatusCode)
	}
	runWorkers(t, h.workerOpts("w", 1))
	h.wait(t)
	resp2, err := http.Get(h.server.URL + "/status")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	body, err := io.ReadAll(resp2.Body)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(body), `"complete":true`) {
		t.Fatalf("status after completion: %s", body)
	}
}
