package fleet

import (
	"bytes"
	"net/http/httptest"
	"net/url"
	"strings"
	"testing"

	"collabscore/internal/sweep"
)

// FuzzLeaseProtocol pins the coordinator's robustness contract: arbitrary
// worker input — any method, any path, any body — may be rejected (4xx/405)
// but must never panic the handler or corrupt the queue.
func FuzzLeaseProtocol(f *testing.F) {
	f.Add("POST", "/lease", []byte(`{"worker":"w","max":4}`))
	f.Add("POST", "/lease", []byte(`{"worker":"w","max":-1}`))
	f.Add("POST", "/complete", []byte(`{"worker":"w","lease_id":1,"failed":"nope"}`))
	f.Add("POST", "/complete", []byte(`{"record":{"key":"bogus","seed":0}}`))
	f.Add("POST", "/complete", []byte(`{"record":{`))
	f.Add("POST", "/heartbeat", []byte(`{"lease_id":18446744073709551615}`))
	f.Add("GET", "/status", []byte(nil))
	f.Add("PUT", "/lease", []byte(`{}`))
	f.Add("POST", "/nonsense", []byte{0xff, 0xfe, 0x00})
	f.Add("POST", "/complete", []byte(`{"record":{"key":"n=48,m=768,b=768,plant=cluster/16,d=4,proto=run,trial=0","seed":1,"opt_error":7}}`))

	pts, err := sweep.Expand(sweep.Spec{
		Seed: 3, Trials: 1,
		Players: []int{48}, ClusterSizes: []int{16}, Diameters: []int{4},
		Protocols: []string{"run"}, FixDiameter: true,
	})
	if err != nil {
		f.Fatal(err)
	}

	f.Fuzz(func(t *testing.T, method, path string, body []byte) {
		c, err := NewCoordinator(pts, CoordinatorOptions{LocalGrace: -1})
		if err != nil {
			t.Fatal(err)
		}
		h := c.Handler()
		// httptest.NewRequest panics on syntactically invalid methods and
		// targets — that is the request library's contract, not the
		// handler's; normalize instead of losing the fuzz case.
		if !validMethod(method) {
			method = "POST"
		}
		target := "/" + strings.TrimLeft(path, "/")
		if _, err := url.ParseRequestURI(target); err != nil || !printableASCII(target) {
			target = "/lease"
		}
		req := httptest.NewRequest(method, target, bytes.NewReader(body))
		rw := httptest.NewRecorder()
		h.ServeHTTP(rw, req) // must not panic
		if rw.Code == 0 {
			t.Fatal("handler wrote no status")
		}
		// Whatever the input did, the queue must still be coherent.
		pending, leased, done, failed := c.Queue().Counts()
		if pending+leased+done+failed != len(pts) {
			t.Fatalf("queue lost points: %d+%d+%d+%d != %d", pending, leased, done, failed, len(pts))
		}
	})
}

func printableASCII(s string) bool {
	for _, r := range s {
		if r <= ' ' || r > '~' {
			return false
		}
	}
	return true
}

func validMethod(m string) bool {
	if m == "" {
		return false
	}
	for _, r := range m {
		if r < 'A' || r > 'Z' {
			return false
		}
	}
	return true
}
