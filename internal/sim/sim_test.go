package sim

import (
	"math"
	"sync/atomic"
	"testing"

	"collabscore/internal/xrand"
)

func TestRunAggregates(t *testing.T) {
	agg := Run(10, 42, func(trial int, rng *xrand.Stream) map[string]float64 {
		return map[string]float64{"x": float64(trial), "const": 7}
	})
	x := agg["x"]
	if x.N != 10 {
		t.Fatalf("N = %d", x.N)
	}
	if math.Abs(x.Mean-4.5) > 1e-9 {
		t.Fatalf("Mean = %v", x.Mean)
	}
	if x.Min != 0 || x.Max != 9 {
		t.Fatalf("Min/Max = %v/%v", x.Min, x.Max)
	}
	c := agg["const"]
	if c.Std != 0 || c.CI95 != 0 {
		t.Fatalf("constant metric has spread: %+v", c)
	}
}

func TestRunExecutesAllTrials(t *testing.T) {
	var count atomic.Int32
	Run(25, 1, func(trial int, rng *xrand.Stream) map[string]float64 {
		count.Add(1)
		return nil
	})
	if count.Load() != 25 {
		t.Fatalf("ran %d trials, want 25", count.Load())
	}
}

func TestTrialStreamsIndependentButDeterministic(t *testing.T) {
	collect := func() []float64 {
		agg := Run(8, 99, func(trial int, rng *xrand.Stream) map[string]float64 {
			return map[string]float64{"v": rng.Float64()}
		})
		return []float64{agg["v"].Mean, agg["v"].Min, agg["v"].Max}
	}
	a, b := collect(), collect()
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed gave different aggregate")
		}
	}
	if a[1] == a[2] {
		t.Fatal("all trials saw the same random value")
	}
}

func TestRunSequentialMatchesRun(t *testing.T) {
	fn := func(trial int, rng *xrand.Stream) map[string]float64 {
		return map[string]float64{"v": rng.Float64()}
	}
	a := Run(12, 5, fn)
	b := RunSequential(12, 5, fn)
	if a["v"].Mean != b["v"].Mean || a["v"].Min != b["v"].Min {
		t.Fatal("parallel and sequential runs disagree")
	}
}
