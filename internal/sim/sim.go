// Package sim is the experiment engine: it runs independent trials of a
// simulation function in parallel with deterministic per-trial seeds and
// aggregates the resulting measurements.
package sim

import (
	"collabscore/internal/metrics"
	"collabscore/internal/par"
	"collabscore/internal/xrand"
)

// Trial is one independent simulation run: it receives the trial index and
// a dedicated random stream, and returns any number of named measurements.
type Trial func(trial int, rng *xrand.Stream) map[string]float64

// Agg holds aggregated measurements for one metric across trials.
type Agg struct {
	Mean float64
	Std  float64
	CI95 float64
	Min  float64
	Max  float64
	N    int
}

// Run executes k independent trials (in parallel) seeded from seed and
// aggregates each named measurement.
func Run(k int, seed uint64, fn Trial) map[string]Agg {
	root := xrand.New(seed)
	results := par.Map(k, func(i int) map[string]float64 {
		return fn(i, root.Split(uint64(i)))
	})
	byName := map[string][]float64{}
	for _, r := range results {
		for name, v := range r {
			byName[name] = append(byName[name], v)
		}
	}
	out := make(map[string]Agg, len(byName))
	for name, xs := range byName {
		a := Agg{
			Mean: metrics.Mean(xs),
			Std:  metrics.Std(xs),
			CI95: metrics.CI95(xs),
			N:    len(xs),
		}
		for i, x := range xs {
			if i == 0 || x < a.Min {
				a.Min = x
			}
			if i == 0 || x > a.Max {
				a.Max = x
			}
		}
		out[name] = a
	}
	return out
}

// RunSequential is Run without parallelism, for trials that already
// saturate the CPU internally.
func RunSequential(k int, seed uint64, fn Trial) map[string]Agg {
	root := xrand.New(seed)
	results := make([]map[string]float64, k)
	for i := 0; i < k; i++ {
		results[i] = fn(i, root.Split(uint64(i)))
	}
	byName := map[string][]float64{}
	for _, r := range results {
		for name, v := range r {
			byName[name] = append(byName[name], v)
		}
	}
	out := make(map[string]Agg, len(byName))
	for name, xs := range byName {
		a := Agg{
			Mean: metrics.Mean(xs),
			Std:  metrics.Std(xs),
			CI95: metrics.CI95(xs),
			N:    len(xs),
		}
		for i, x := range xs {
			if i == 0 || x < a.Min {
				a.Min = x
			}
			if i == 0 || x > a.Max {
				a.Max = x
			}
		}
		out[name] = a
	}
	return out
}
