// Package rounds implements the synchronous execution model of §2
// literally: "The game proceeds in synchronous rounds. In each round, each
// player can choose one object to probe. … the players can update and read
// the bulletin board after each probe."
//
// The batch protocol implementations in this repository account probes but
// do not schedule them; this package provides the scheduler that maps a
// per-player probe plan onto rounds, one goroutine per player, with a
// barrier between rounds and all inter-player communication through the
// bulletin board. It serves two purposes:
//
//   - model fidelity: tests use it to check that protocol phases fit in
//     the round counts the paper implies (round complexity = the maximum
//     number of probes any player makes, since a player performs exactly
//     one probe per round);
//   - a concurrency substrate demonstration: players really do run
//     concurrently and interact only through the board.
package rounds

import (
	"sync"

	"collabscore/internal/board"
	"collabscore/internal/world"
)

// Action is what a player does in one round.
type Action struct {
	// Probe is the object to probe this round, or -1 to idle.
	Probe int
	// Publish, when true, writes the probed (or reported) value to the
	// player's board lane.
	Publish bool
	// Done signals that the player's program has finished; the player
	// idles in all subsequent rounds.
	Done bool
}

// Program drives one player: called once per round with the round number
// and a read-only view of the board, it returns the player's action.
// Programs run concurrently across players within a round; the engine
// barriers between rounds, so board reads observe all writes of previous
// rounds (and possibly some of the current one — the model lets players
// "update and read the bulletin board after each probe").
type Program func(round int, bd *board.Board) Action

// Engine schedules programs over a world and a board.
type Engine struct {
	W  *world.World
	Bd *board.Board
	// MaxRounds caps execution (0 = 4·m rounds) so buggy programs cannot
	// hang tests.
	MaxRounds int
}

// Result reports a synchronous execution.
type Result struct {
	// Rounds is the number of rounds until every program finished.
	Rounds int
	// Finished reports whether all programs signalled Done within the cap.
	Finished bool
}

// Run executes one program per player until all are done. Programs may be
// nil (such players idle forever and are treated as done).
func (e *Engine) Run(programs []Program) Result {
	n := e.W.N()
	if len(programs) != n {
		panic("rounds: need one program per player")
	}
	cap := e.MaxRounds
	if cap <= 0 {
		cap = 4 * e.W.M()
	}
	done := make([]bool, n)
	remaining := 0
	for p, prog := range programs {
		if prog == nil {
			done[p] = true
		} else {
			remaining++
		}
	}
	res := Result{}
	rc := world.NewRun(e.W)
	var mu sync.Mutex
	for round := 0; remaining > 0 && round < cap; round++ {
		var wg sync.WaitGroup
		for p := 0; p < n; p++ {
			if done[p] {
				continue
			}
			wg.Add(1)
			go func(p int) {
				defer wg.Done()
				act := programs[p](round, e.Bd)
				if act.Probe >= 0 {
					v := rc.Report(p, act.Probe)
					if act.Publish {
						e.Bd.Write(p, act.Probe, v)
					}
				}
				if act.Done {
					mu.Lock()
					done[p] = true
					remaining--
					mu.Unlock()
				}
			}(p)
		}
		wg.Wait()
		res.Rounds++
	}
	res.Finished = remaining == 0
	return res
}

// ProbeList builds a Program that probes the given objects in order, one
// per round, publishing each, then signals done.
func ProbeList(objs []int) Program {
	return func(round int, _ *board.Board) Action {
		if round >= len(objs) {
			return Action{Probe: -1, Done: true}
		}
		return Action{
			Probe:   objs[round],
			Publish: true,
			Done:    round == len(objs)-1,
		}
	}
}
