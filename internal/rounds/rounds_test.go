package rounds

import (
	"testing"

	"collabscore/internal/board"
	"collabscore/internal/prefgen"
	"collabscore/internal/world"
	"collabscore/internal/xrand"
)

func engine(seed uint64, n, m int) (*Engine, *world.World) {
	in := prefgen.Uniform(xrand.New(seed), n, m)
	w := world.New(in.Truth)
	return &Engine{W: w, Bd: board.New(n, m)}, w
}

// TestRoundComplexityEqualsLongestPlan: the synchronous model executes a
// set of probe plans in exactly max(plan length) rounds.
func TestRoundComplexityEqualsLongestPlan(t *testing.T) {
	e, _ := engine(1, 4, 32)
	programs := []Program{
		ProbeList([]int{0, 1, 2}),
		ProbeList([]int{5}),
		ProbeList([]int{7, 8, 9, 10, 11}),
		ProbeList([]int{3, 4}),
	}
	res := e.Run(programs)
	if !res.Finished {
		t.Fatal("programs did not finish")
	}
	if res.Rounds != 5 {
		t.Fatalf("rounds = %d, want 5 (the longest plan)", res.Rounds)
	}
}

// TestOneProbePerRound: a player's probe count equals its plan length —
// the model's "one probe per round" discipline.
func TestOneProbePerRound(t *testing.T) {
	e, w := engine(2, 3, 64)
	plans := [][]int{{1, 2, 3, 4}, {10, 11}, {20, 21, 22}}
	programs := make([]Program, 3)
	for p := range programs {
		programs[p] = ProbeList(plans[p])
	}
	e.Run(programs)
	for p, plan := range plans {
		if got := w.Probes(p); got != int64(len(plan)) {
			t.Fatalf("player %d probed %d objects, plan had %d", p, got, len(plan))
		}
	}
}

// TestPublishesLandOnBoard: every published probe is readable afterwards
// with the player's truth.
func TestPublishesLandOnBoard(t *testing.T) {
	e, w := engine(3, 2, 16)
	e.Run([]Program{ProbeList([]int{4, 5}), ProbeList([]int{6})})
	for _, pc := range []struct{ p, o int }{{0, 4}, {0, 5}, {1, 6}} {
		v, ok := e.Bd.Read(pc.p, pc.o)
		if !ok {
			t.Fatalf("probe (%d,%d) not on board", pc.p, pc.o)
		}
		if v != w.PeekTruth(pc.p, pc.o) {
			t.Fatalf("board value for (%d,%d) is not the truth", pc.p, pc.o)
		}
	}
}

// TestNilProgramsIdle: nil programs finish immediately.
func TestNilProgramsIdle(t *testing.T) {
	e, _ := engine(4, 3, 8)
	res := e.Run([]Program{nil, ProbeList([]int{1}), nil})
	if !res.Finished || res.Rounds != 1 {
		t.Fatalf("result %+v, want finished in 1 round", res)
	}
}

// TestMaxRoundsCapsRunaway: a program that never finishes is cut off.
func TestMaxRoundsCapsRunaway(t *testing.T) {
	e, _ := engine(5, 1, 8)
	e.MaxRounds = 10
	forever := func(round int, _ *board.Board) Action {
		return Action{Probe: round % 8}
	}
	res := e.Run([]Program{forever})
	if res.Finished {
		t.Fatal("runaway program reported finished")
	}
	if res.Rounds != 10 {
		t.Fatalf("rounds = %d, want cap 10", res.Rounds)
	}
}

// TestPanicsOnWrongProgramCount documents the contract.
func TestPanicsOnWrongProgramCount(t *testing.T) {
	e, _ := engine(6, 2, 8)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	e.Run([]Program{nil})
}

// TestWorkShareFitsInExpectedRounds: scheduling the work-share phase of
// the protocol (each player probes its assigned objects) completes in
// rounds equal to the maximum per-player assignment — the Lemma 10 round
// budget O(B·log n) at protocol scale.
func TestWorkShareFitsInExpectedRounds(t *testing.T) {
	const n, m = 64, 256
	e, w := engine(7, n, m)
	rng := xrand.New(8)
	// Assign each object to 3 random players, round-robin into per-player
	// plans (a miniature work-share schedule).
	plans := make([][]int, n)
	for o := 0; o < m; o++ {
		for i := 0; i < 3; i++ {
			p := rng.Intn(n)
			plans[p] = append(plans[p], o)
		}
	}
	longest := 0
	programs := make([]Program, n)
	for p := range programs {
		programs[p] = ProbeList(plans[p])
		if len(plans[p]) > longest {
			longest = len(plans[p])
		}
	}
	res := e.Run(programs)
	if !res.Finished {
		t.Fatal("work-share schedule did not finish")
	}
	if res.Rounds != longest {
		t.Fatalf("rounds %d != longest plan %d", res.Rounds, longest)
	}
	// Every assignment was published; spot check tallies.
	for o := 0; o < m; o += 37 {
		total := 0
		for p := 0; p < n; p++ {
			if _, ok := e.Bd.Read(p, o); ok {
				total++
			}
		}
		if total == 0 {
			t.Fatalf("object %d has no published votes", o)
		}
	}
	_ = w
}
