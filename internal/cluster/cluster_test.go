package cluster

import (
	"testing"
	"testing/quick"

	"collabscore/internal/bitvec"
	"collabscore/internal/par"
	"collabscore/internal/prefgen"
	"collabscore/internal/xrand"
)

// TestBuildGraphEdges: edges exactly at the threshold boundary.
func TestBuildGraphEdges(t *testing.T) {
	z := []bitvec.Vector{
		bitvec.FromBits([]int{0, 0, 0, 0}),
		bitvec.FromBits([]int{1, 0, 0, 0}), // distance 1 from z0
		bitvec.FromBits([]int{1, 1, 1, 0}), // distance 3 from z0
		bitvec.FromBits([]int{1, 1, 1, 1}), // distance 4 from z0
	}
	g := BuildGraph(z, 2)
	if !g.Adjacent(0, 1) {
		t.Fatal("distance-1 pair not adjacent at threshold 2")
	}
	if g.Adjacent(0, 2) {
		t.Fatal("distance-3 pair adjacent at threshold 2")
	}
	if g.Adjacent(0, 0) {
		t.Fatal("self loop")
	}
	if !g.Adjacent(2, 3) { // distance 1
		t.Fatal("close pair not adjacent")
	}
	if g.N() != 4 {
		t.Fatalf("N = %d", g.N())
	}
}

func TestGraphSymmetry(t *testing.T) {
	rng := xrand.New(1)
	in := prefgen.Uniform(rng, 40, 64)
	g := BuildGraph(in.Truth, 30)
	for p := 0; p < 40; p++ {
		for q := 0; q < 40; q++ {
			if g.Adjacent(p, q) != g.Adjacent(q, p) {
				t.Fatalf("asymmetric edge (%d,%d)", p, q)
			}
		}
	}
}

func TestDegreeAndNeighbors(t *testing.T) {
	z := []bitvec.Vector{
		bitvec.FromBits([]int{0, 0}),
		bitvec.FromBits([]int{0, 0}),
		bitvec.FromBits([]int{1, 1}),
	}
	g := BuildGraph(z, 0)
	if g.Degree(0) != 1 {
		t.Fatalf("Degree(0) = %d, want 1", g.Degree(0))
	}
	nb := g.Neighbors(0)
	if len(nb) != 1 || nb[0] != 1 {
		t.Fatalf("Neighbors(0) = %v", nb)
	}
	if g.Degree(2) != 0 {
		t.Fatalf("Degree(2) = %d", g.Degree(2))
	}
}

// TestBuildPlantedClusters: planted well-separated clusters are recovered
// as clusters of exactly the planted membership.
func TestBuildPlantedClusters(t *testing.T) {
	const n, m, size, d = 120, 400, 30, 4
	rng := xrand.New(2)
	in := prefgen.DiameterClusters(rng, n, m, size, d)
	g := BuildGraph(in.Truth, 2*d) // within-cluster ≤ d, cross ≈ m/2
	cl := Build(g, size)
	if len(cl.Clusters) != n/size {
		t.Fatalf("found %d clusters, want %d", len(cl.Clusters), n/size)
	}
	if len(cl.Unassigned()) != 0 {
		t.Fatalf("%d unassigned players", len(cl.Unassigned()))
	}
	// Each output cluster must be exactly one planted cluster.
	for j, members := range cl.Clusters {
		planted := in.ClusterOf[members[0]]
		for _, p := range members {
			if in.ClusterOf[p] != planted {
				t.Fatalf("cluster %d mixes planted clusters", j)
			}
		}
		if len(members) != size {
			t.Fatalf("cluster %d size %d, want %d", j, len(members), size)
		}
	}
}

// TestClusterInvariants is Lemma 9: every player in at most one cluster;
// clusters at least minSize; partition covers everyone with enough degree.
func TestClusterInvariants(t *testing.T) {
	const n, m = 100, 200
	rng := xrand.New(3)
	in := prefgen.DiameterClusters(rng, n, m, 25, 6)
	g := BuildGraph(in.Truth, 12)
	cl := Build(g, 25)
	seen := map[int]int{}
	for j, members := range cl.Clusters {
		if len(members) < 25 {
			t.Fatalf("cluster %d size %d < 25", j, len(members))
		}
		for _, p := range members {
			if prev, dup := seen[p]; dup {
				t.Fatalf("player %d in clusters %d and %d", p, prev, j)
			}
			seen[p] = j
			if cl.Of[p] != j {
				t.Fatalf("Of[%d] = %d, want %d", p, cl.Of[p], j)
			}
		}
	}
	for _, p := range cl.Unassigned() {
		if _, dup := seen[p]; dup {
			t.Fatal("unassigned player also in a cluster")
		}
	}
}

// TestLeftoverAttachment: a player below the degree threshold whose
// neighbors were peeled must be attached to a neighbor's cluster.
func TestLeftoverAttachment(t *testing.T) {
	// 5 identical players + 1 at distance 1 from them (threshold 1).
	z := []bitvec.Vector{
		bitvec.FromBits([]int{0, 0, 0}),
		bitvec.FromBits([]int{0, 0, 0}),
		bitvec.FromBits([]int{0, 0, 0}),
		bitvec.FromBits([]int{0, 0, 0}),
		bitvec.FromBits([]int{0, 0, 0}),
		bitvec.FromBits([]int{1, 0, 0}),
	}
	g := BuildGraph(z, 1)
	// minSize 5: peeling grabs the 5+1 at once actually (all within
	// threshold). Use minSize 6: first peel takes everyone adjacent to a
	// degree-5 player.
	cl := Build(g, 6)
	if len(cl.Unassigned()) != 0 {
		t.Fatalf("unassigned: %v", cl.Unassigned())
	}
}

func TestNoClustersWhenSparse(t *testing.T) {
	// All-far players: no edges, minSize 2 → no clusters, all unassigned.
	rng := xrand.New(4)
	in := prefgen.Uniform(rng, 20, 512)
	g := BuildGraph(in.Truth, 10)
	cl := Build(g, 2)
	if len(cl.Clusters) != 0 {
		t.Fatalf("sparse graph produced %d clusters", len(cl.Clusters))
	}
	if len(cl.Unassigned()) != 20 {
		t.Fatalf("unassigned = %d, want 20", len(cl.Unassigned()))
	}
}

func TestMinClusterSizeHelper(t *testing.T) {
	c := &Clustering{Clusters: [][]int{{1, 2, 3}, {4, 5}}}
	if c.MinClusterSize() != 2 {
		t.Fatalf("MinClusterSize = %d", c.MinClusterSize())
	}
	empty := &Clustering{}
	if empty.MinClusterSize() != 0 {
		t.Fatal("empty clustering min size should be 0")
	}
}

func TestDiameterHelper(t *testing.T) {
	vecs := []bitvec.Vector{
		bitvec.FromBits([]int{0, 0, 0}),
		bitvec.FromBits([]int{1, 1, 0}),
		bitvec.FromBits([]int{1, 1, 1}),
	}
	if d := Diameter(vecs, []int{0, 1, 2}); d != 3 {
		t.Fatalf("Diameter = %d, want 3", d)
	}
	if d := Diameter(vecs, []int{0}); d != 0 {
		t.Fatalf("singleton Diameter = %d", d)
	}
}

// TestBuildGraphSchedulesAgree pins the determinism contract of the
// block-partitioned sweep: serial, default-parallel and fixed-width
// executors must produce the identical graph, at sizes chosen to exercise
// partial blocks, exact block boundaries and multi-block triangles.
func TestBuildGraphSchedulesAgree(t *testing.T) {
	for _, n := range []int{1, 2, 63, 64, 65, 128, 130, 257} {
		rng := xrand.New(uint64(n))
		in := prefgen.Uniform(rng, n, 96)
		threshold := 40
		ref := BuildGraphOn(par.Serial(), in.Truth, threshold)
		for name, exec := range map[string]*par.Runner{
			"parallel": par.Parallel(),
			"fixed4":   par.Fixed(4),
			"nil":      nil,
		} {
			g := BuildGraphOn(exec, in.Truth, threshold)
			if g.N() != ref.N() {
				t.Fatalf("n=%d %s: N %d vs %d", n, name, g.N(), ref.N())
			}
			for p := 0; p < n; p++ {
				for q := 0; q < n; q++ {
					if g.Adjacent(p, q) != ref.Adjacent(p, q) {
						t.Fatalf("n=%d %s: edge (%d,%d) differs from serial", n, name, p, q)
					}
				}
			}
		}
	}
}

// TestDiameterSchedulesAgree: the parallel max-reduce must match the
// serial pairwise sweep.
func TestDiameterSchedulesAgree(t *testing.T) {
	rng := xrand.New(9)
	in := prefgen.Uniform(rng, 150, 200)
	members := make([]int, 150)
	for i := range members {
		members[i] = i
	}
	want := DiameterOn(par.Serial(), in.Truth, members)
	if got := DiameterOn(par.Parallel(), in.Truth, members); got != want {
		t.Fatalf("parallel Diameter %d, serial %d", got, want)
	}
	if got := DiameterOn(par.Fixed(3), in.Truth, members); got != want {
		t.Fatalf("fixed-width Diameter %d, serial %d", got, want)
	}
	if got := Diameter(in.Truth, nil); got != 0 {
		t.Fatalf("empty member Diameter = %d", got)
	}
}

// TestEdgeImpliesBoundedDistance is the property behind Lemma 8(ii): any
// edge in the graph connects players whose vectors are within threshold.
func TestEdgeImpliesBoundedDistance(t *testing.T) {
	f := func(seed uint64) bool {
		rng := xrand.New(seed)
		n := 10 + rng.Intn(30)
		in := prefgen.Uniform(rng, n, 64)
		threshold := rng.Intn(40)
		g := BuildGraph(in.Truth, threshold)
		for p := 0; p < n; p++ {
			for q := p + 1; q < n; q++ {
				d := in.Truth[p].Hamming(in.Truth[q])
				if g.Adjacent(p, q) != (d <= threshold) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

// TestPeeledClusterDiameterBounded: members of any produced cluster are
// within 4 graph hops, hence within 4·threshold in vector distance.
func TestPeeledClusterDiameterBounded(t *testing.T) {
	const threshold = 8
	rng := xrand.New(5)
	in := prefgen.DiameterClusters(rng, 90, 300, 30, threshold)
	g := BuildGraph(in.Truth, threshold)
	cl := Build(g, 10)
	for j, members := range cl.Clusters {
		if d := Diameter(in.Truth, members); d > 4*threshold {
			t.Fatalf("cluster %d diameter %d > %d", j, d, 4*threshold)
		}
	}
}
