package cluster

import (
	"reflect"
	"testing"
	"testing/quick"

	"collabscore/internal/bitvec"
	"collabscore/internal/par"
	"collabscore/internal/prefgen"
	"collabscore/internal/xrand"
)

// TestBuildGraphEdges: edges exactly at the threshold boundary.
func TestBuildGraphEdges(t *testing.T) {
	z := []bitvec.Vector{
		bitvec.FromBits([]int{0, 0, 0, 0}),
		bitvec.FromBits([]int{1, 0, 0, 0}), // distance 1 from z0
		bitvec.FromBits([]int{1, 1, 1, 0}), // distance 3 from z0
		bitvec.FromBits([]int{1, 1, 1, 1}), // distance 4 from z0
	}
	g := BuildGraph(z, 2)
	if !g.Adjacent(0, 1) {
		t.Fatal("distance-1 pair not adjacent at threshold 2")
	}
	if g.Adjacent(0, 2) {
		t.Fatal("distance-3 pair adjacent at threshold 2")
	}
	if g.Adjacent(0, 0) {
		t.Fatal("self loop")
	}
	if !g.Adjacent(2, 3) { // distance 1
		t.Fatal("close pair not adjacent")
	}
	if g.N() != 4 {
		t.Fatalf("N = %d", g.N())
	}
}

func TestGraphSymmetry(t *testing.T) {
	rng := xrand.New(1)
	in := prefgen.Uniform(rng, 40, 64)
	g := BuildGraph(in.Truth, 30)
	for p := 0; p < 40; p++ {
		for q := 0; q < 40; q++ {
			if g.Adjacent(p, q) != g.Adjacent(q, p) {
				t.Fatalf("asymmetric edge (%d,%d)", p, q)
			}
		}
	}
}

func TestDegreeAndNeighbors(t *testing.T) {
	z := []bitvec.Vector{
		bitvec.FromBits([]int{0, 0}),
		bitvec.FromBits([]int{0, 0}),
		bitvec.FromBits([]int{1, 1}),
	}
	g := BuildGraph(z, 0)
	if g.Degree(0) != 1 {
		t.Fatalf("Degree(0) = %d, want 1", g.Degree(0))
	}
	nb := g.Neighbors(0)
	if len(nb) != 1 || nb[0] != 1 {
		t.Fatalf("Neighbors(0) = %v", nb)
	}
	if g.Degree(2) != 0 {
		t.Fatalf("Degree(2) = %d", g.Degree(2))
	}
}

// TestBuildPlantedClusters: planted well-separated clusters are recovered
// as clusters of exactly the planted membership.
func TestBuildPlantedClusters(t *testing.T) {
	const n, m, size, d = 120, 400, 30, 4
	rng := xrand.New(2)
	in := prefgen.DiameterClusters(rng, n, m, size, d)
	g := BuildGraph(in.Truth, 2*d) // within-cluster ≤ d, cross ≈ m/2
	cl := Build(g, size)
	if len(cl.Clusters) != n/size {
		t.Fatalf("found %d clusters, want %d", len(cl.Clusters), n/size)
	}
	if len(cl.Unassigned()) != 0 {
		t.Fatalf("%d unassigned players", len(cl.Unassigned()))
	}
	// Each output cluster must be exactly one planted cluster.
	for j, members := range cl.Clusters {
		planted := in.ClusterOf[members[0]]
		for _, p := range members {
			if in.ClusterOf[p] != planted {
				t.Fatalf("cluster %d mixes planted clusters", j)
			}
		}
		if len(members) != size {
			t.Fatalf("cluster %d size %d, want %d", j, len(members), size)
		}
	}
}

// TestClusterInvariants is Lemma 9: every player in at most one cluster;
// clusters at least minSize; partition covers everyone with enough degree.
func TestClusterInvariants(t *testing.T) {
	const n, m = 100, 200
	rng := xrand.New(3)
	in := prefgen.DiameterClusters(rng, n, m, 25, 6)
	g := BuildGraph(in.Truth, 12)
	cl := Build(g, 25)
	seen := map[int]int{}
	for j, members := range cl.Clusters {
		if len(members) < 25 {
			t.Fatalf("cluster %d size %d < 25", j, len(members))
		}
		for _, p := range members {
			if prev, dup := seen[p]; dup {
				t.Fatalf("player %d in clusters %d and %d", p, prev, j)
			}
			seen[p] = j
			if cl.Of[p] != j {
				t.Fatalf("Of[%d] = %d, want %d", p, cl.Of[p], j)
			}
		}
	}
	for _, p := range cl.Unassigned() {
		if _, dup := seen[p]; dup {
			t.Fatal("unassigned player also in a cluster")
		}
	}
}

// TestLeftoverAttachment: a player below the degree threshold whose
// neighbors were peeled must be attached to a neighbor's cluster.
func TestLeftoverAttachment(t *testing.T) {
	// 5 identical players + 1 at distance 1 from them (threshold 1).
	z := []bitvec.Vector{
		bitvec.FromBits([]int{0, 0, 0}),
		bitvec.FromBits([]int{0, 0, 0}),
		bitvec.FromBits([]int{0, 0, 0}),
		bitvec.FromBits([]int{0, 0, 0}),
		bitvec.FromBits([]int{0, 0, 0}),
		bitvec.FromBits([]int{1, 0, 0}),
	}
	g := BuildGraph(z, 1)
	// minSize 5: peeling grabs the 5+1 at once actually (all within
	// threshold). Use minSize 6: first peel takes everyone adjacent to a
	// degree-5 player.
	cl := Build(g, 6)
	if len(cl.Unassigned()) != 0 {
		t.Fatalf("unassigned: %v", cl.Unassigned())
	}
}

func TestNoClustersWhenSparse(t *testing.T) {
	// All-far players: no edges, minSize 2 → no clusters, all unassigned.
	rng := xrand.New(4)
	in := prefgen.Uniform(rng, 20, 512)
	g := BuildGraph(in.Truth, 10)
	cl := Build(g, 2)
	if len(cl.Clusters) != 0 {
		t.Fatalf("sparse graph produced %d clusters", len(cl.Clusters))
	}
	if len(cl.Unassigned()) != 20 {
		t.Fatalf("unassigned = %d, want 20", len(cl.Unassigned()))
	}
}

func TestMinClusterSizeHelper(t *testing.T) {
	c := &Clustering{Clusters: [][]int{{1, 2, 3}, {4, 5}}}
	if c.MinClusterSize() != 2 {
		t.Fatalf("MinClusterSize = %d", c.MinClusterSize())
	}
	empty := &Clustering{}
	if empty.MinClusterSize() != 0 {
		t.Fatal("empty clustering min size should be 0")
	}
}

func TestDiameterHelper(t *testing.T) {
	vecs := []bitvec.Vector{
		bitvec.FromBits([]int{0, 0, 0}),
		bitvec.FromBits([]int{1, 1, 0}),
		bitvec.FromBits([]int{1, 1, 1}),
	}
	if d := Diameter(vecs, []int{0, 1, 2}); d != 3 {
		t.Fatalf("Diameter = %d, want 3", d)
	}
	if d := Diameter(vecs, []int{0}); d != 0 {
		t.Fatalf("singleton Diameter = %d", d)
	}
}

// TestBuildGraphSchedulesAgree pins the determinism contract of the
// block-partitioned sweep: serial, default-parallel and fixed-width
// executors must produce the identical graph, at sizes chosen to exercise
// partial blocks, exact block boundaries and multi-block triangles.
func TestBuildGraphSchedulesAgree(t *testing.T) {
	for _, n := range []int{1, 2, 63, 64, 65, 128, 130, 257} {
		rng := xrand.New(uint64(n))
		in := prefgen.Uniform(rng, n, 96)
		threshold := 40
		ref := BuildGraphOn(par.Serial(), in.Truth, threshold)
		for name, exec := range map[string]*par.Runner{
			"parallel": par.Parallel(),
			"fixed4":   par.Fixed(4),
			"nil":      nil,
		} {
			g := BuildGraphOn(exec, in.Truth, threshold)
			if g.N() != ref.N() {
				t.Fatalf("n=%d %s: N %d vs %d", n, name, g.N(), ref.N())
			}
			for p := 0; p < n; p++ {
				for q := 0; q < n; q++ {
					if g.Adjacent(p, q) != ref.Adjacent(p, q) {
						t.Fatalf("n=%d %s: edge (%d,%d) differs from serial", n, name, p, q)
					}
				}
			}
		}
	}
}

// TestDiameterSchedulesAgree: the parallel max-reduce must match the
// serial pairwise sweep.
func TestDiameterSchedulesAgree(t *testing.T) {
	rng := xrand.New(9)
	in := prefgen.Uniform(rng, 150, 200)
	members := make([]int, 150)
	for i := range members {
		members[i] = i
	}
	want := DiameterOn(par.Serial(), in.Truth, members)
	if got := DiameterOn(par.Parallel(), in.Truth, members); got != want {
		t.Fatalf("parallel Diameter %d, serial %d", got, want)
	}
	if got := DiameterOn(par.Fixed(3), in.Truth, members); got != want {
		t.Fatalf("fixed-width Diameter %d, serial %d", got, want)
	}
	if got := Diameter(in.Truth, nil); got != 0 {
		t.Fatalf("empty member Diameter = %d", got)
	}
}

// TestEdgeImpliesBoundedDistance is the property behind Lemma 8(ii): any
// edge in the graph connects players whose vectors are within threshold.
func TestEdgeImpliesBoundedDistance(t *testing.T) {
	f := func(seed uint64) bool {
		rng := xrand.New(seed)
		n := 10 + rng.Intn(30)
		in := prefgen.Uniform(rng, n, 64)
		threshold := rng.Intn(40)
		g := BuildGraph(in.Truth, threshold)
		for p := 0; p < n; p++ {
			for q := p + 1; q < n; q++ {
				d := in.Truth[p].Hamming(in.Truth[q])
				if g.Adjacent(p, q) != (d <= threshold) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

// TestPeeledClusterDiameterBounded: members of any produced cluster are
// within 4 graph hops, hence within 4·threshold in vector distance.
func TestPeeledClusterDiameterBounded(t *testing.T) {
	const threshold = 8
	rng := xrand.New(5)
	in := prefgen.DiameterClusters(rng, 90, 300, 30, threshold)
	g := BuildGraph(in.Truth, threshold)
	cl := Build(g, 10)
	for j, members := range cl.Clusters {
		if d := Diameter(in.Truth, members); d > 4*threshold {
			t.Fatalf("cluster %d diameter %d > %d", j, d, 4*threshold)
		}
	}
}

// buildReference is the pre-cursor Build, kept verbatim as the comparison
// oracle for TestPeelCursorMatchesRescan: restart the candidate scan at
// p=0 after every peel and attach leftovers via materialized neighbor
// slices. The production Build must match it byte for byte.
func buildReference(g *BitGraph, minSize int) *Clustering {
	if minSize < 1 {
		minSize = 1
	}
	n := g.n
	alive := bitvec.New(n)
	for p := 0; p < n; p++ {
		alive.Set(p, true)
	}
	of := make([]int, n)
	for p := range of {
		of[p] = -1
	}
	var clusters [][]int
	for {
		found := -1
		for p := 0; p < n; p++ {
			if !alive.Get(p) {
				continue
			}
			if g.adj[p].And(alive).Count() >= minSize-1 {
				found = p
				break
			}
		}
		if found < 0 {
			break
		}
		members := append([]int{found}, g.adj[found].And(alive).OnesIndices()...)
		j := len(clusters)
		for _, q := range members {
			alive.Set(q, false)
			of[q] = j
		}
		clusters = append(clusters, members)
	}
	for p := 0; p < n; p++ {
		if !alive.Get(p) {
			continue
		}
		for _, q := range g.Neighbors(p) {
			if of[q] >= 0 {
				of[p] = of[q]
				clusters[of[q]] = append(clusters[of[q]], p)
				alive.Set(p, false)
				break
			}
		}
	}
	return &Clustering{Clusters: clusters, Of: of}
}

// TestPeelCursorMatchesRescan pins the monotone-cursor peel: on planted,
// uniform and near-threshold graphs at several n, Build's output must be
// identical (cluster lists, member order, Of) to the rescan-from-0
// reference.
func TestPeelCursorMatchesRescan(t *testing.T) {
	type world struct {
		name      string
		z         []bitvec.Vector
		threshold int
		minSize   int
	}
	var worlds []world
	for _, n := range []int{1, 7, 64, 120, 257} {
		rng := xrand.New(uint64(n) * 13)
		size := n / 4
		if size < 1 {
			size = 1
		}
		in := prefgen.DiameterClusters(rng, n, 300, size, 6)
		worlds = append(worlds, world{"planted", in.Truth, 12, size})
		u := prefgen.Uniform(rng, n, 96)
		// Threshold near the median distance makes a dense, messy graph
		// where many seeds qualify and peel order matters.
		worlds = append(worlds, world{"uniform", u.Truth, 48, 3})
		worlds = append(worlds, world{"sparse", u.Truth, 20, 2})
	}
	for _, w := range worlds {
		g := BuildGraph(w.z, w.threshold)
		got := Build(g, w.minSize)
		want := buildReference(g, w.minSize)
		if !reflect.DeepEqual(got.Clusters, want.Clusters) || !reflect.DeepEqual(got.Of, want.Of) {
			t.Fatalf("%s n=%d: cursor peel differs from rescan reference", w.name, len(w.z))
		}
	}
}

// TestBuildGraphThresholdZero: at threshold 0 only exact duplicates share
// edges.
func TestBuildGraphThresholdZero(t *testing.T) {
	z := []bitvec.Vector{
		bitvec.FromBits([]int{0, 1, 0}),
		bitvec.FromBits([]int{0, 1, 0}),
		bitvec.FromBits([]int{0, 1, 1}),
	}
	g := BuildGraph(z, 0)
	if !g.Adjacent(0, 1) || g.Adjacent(0, 2) || g.Adjacent(1, 2) {
		t.Fatal("threshold-0 adjacency wrong")
	}
}

// TestSinglePlayer: n = 1 worlds cluster trivially at minSize 1 and leave
// the player unassigned at minSize 2.
func TestSinglePlayer(t *testing.T) {
	z := []bitvec.Vector{bitvec.FromBits([]int{1, 0})}
	g := BuildGraph(z, 1)
	if g.N() != 1 || g.Degree(0) != 0 {
		t.Fatalf("single-player graph N=%d deg=%d", g.N(), g.Degree(0))
	}
	cl := Build(g, 1)
	if len(cl.Clusters) != 1 || cl.Of[0] != 0 {
		t.Fatalf("minSize 1: clusters %v, Of %v", cl.Clusters, cl.Of)
	}
	cl = Build(g, 2)
	if len(cl.Clusters) != 0 || cl.Of[0] != -1 || len(cl.Unassigned()) != 1 {
		t.Fatalf("minSize 2: clusters %v, unassigned %v", cl.Clusters, cl.Unassigned())
	}
}

// TestIsolatedPlayers: players with no neighbors at all stay unassigned
// and never perturb MinClusterSize.
func TestIsolatedPlayers(t *testing.T) {
	// 4 identical players + 2 isolated ones far from everyone.
	z := []bitvec.Vector{
		bitvec.FromBits([]int{0, 0, 0, 0, 0, 0, 0, 0}),
		bitvec.FromBits([]int{0, 0, 0, 0, 0, 0, 0, 0}),
		bitvec.FromBits([]int{0, 0, 0, 0, 0, 0, 0, 0}),
		bitvec.FromBits([]int{0, 0, 0, 0, 0, 0, 0, 0}),
		bitvec.FromBits([]int{1, 1, 1, 1, 1, 1, 1, 1}),
		bitvec.FromBits([]int{1, 1, 1, 1, 0, 0, 0, 0}),
	}
	g := BuildGraph(z, 1)
	cl := Build(g, 4)
	if len(cl.Clusters) != 1 || len(cl.Clusters[0]) != 4 {
		t.Fatalf("clusters %v", cl.Clusters)
	}
	if got := cl.Unassigned(); len(got) != 2 || got[0] != 4 || got[1] != 5 {
		t.Fatalf("Unassigned = %v, want [4 5]", got)
	}
	if cl.MinClusterSize() != 4 {
		t.Fatalf("MinClusterSize = %d", cl.MinClusterSize())
	}
	for _, p := range []int{4, 5} {
		if cl.Of[p] != -1 {
			t.Fatalf("isolated player %d assigned to cluster %d", p, cl.Of[p])
		}
	}
}

// TestVisitNeighbors: word-walking iteration matches Neighbors and honors
// early stop.
func TestVisitNeighbors(t *testing.T) {
	rng := xrand.New(31)
	in := prefgen.Uniform(rng, 130, 96)
	g := BuildGraph(in.Truth, 44)
	for p := 0; p < g.N(); p++ {
		var got []int
		g.VisitNeighbors(p, func(q int) bool {
			got = append(got, q)
			return true
		})
		if !reflect.DeepEqual(got, g.Neighbors(p)) {
			t.Fatalf("VisitNeighbors(%d) = %v, Neighbors = %v", p, got, g.Neighbors(p))
		}
		// Early stop after the first neighbor.
		count := 0
		g.VisitNeighbors(p, func(q int) bool {
			count++
			return false
		})
		if want := minTestInt(1, len(got)); count != want {
			t.Fatalf("early stop visited %d neighbors, want %d", count, want)
		}
	}
}

func minTestInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
