package cluster

import (
	"reflect"
	"testing"
	"testing/quick"

	"collabscore/internal/bitvec"
	"collabscore/internal/par"
	"collabscore/internal/prefgen"
	"collabscore/internal/xrand"
)

// sparseExact builds the CSR graph through the exact sweep — the sparse
// counterpart of BuildGraph for tests.
func sparseExact(z []bitvec.Vector, threshold int) *CSRGraph {
	return buildCSROn(nil, z, threshold)
}

// TestGraphRepPick pins the auto rule: dense below the cutoff, sparse at
// or above it, and forced reps ignore n.
func TestGraphRepPick(t *testing.T) {
	for _, tc := range []struct {
		rep  GraphRep
		n    int
		want GraphRep
	}{
		{RepAuto, 0, RepDense},
		{RepAuto, AutoSparseCutoff - 1, RepDense},
		{RepAuto, AutoSparseCutoff, RepSparse},
		{RepAuto, AutoSparseCutoff * 4, RepSparse},
		{RepDense, AutoSparseCutoff * 4, RepDense},
		{RepSparse, 1, RepSparse},
	} {
		if got := tc.rep.pick(tc.n); got != tc.want {
			t.Fatalf("pick(%v, n=%d) = %v, want %v", tc.rep, tc.n, got, tc.want)
		}
	}
	for _, tc := range []struct {
		sp   IndexSpec
		want GraphRep
	}{
		{IndexSpec{}, RepAuto},
		{IndexSpec{Graph: "auto"}, RepAuto},
		{IndexSpec{Graph: "dense"}, RepDense},
		{IndexSpec{Graph: "sparse"}, RepSparse},
	} {
		if got := tc.sp.Rep(); got != tc.want {
			t.Fatalf("Rep(%+v) = %v, want %v", tc.sp, got, tc.want)
		}
	}
}

// TestSparseMatchesDenseQuick is the representation-equivalence property:
// on random worlds the CSR graph must answer N, Degree, Adjacent,
// Neighbors, VisitNeighbors, LiveDegree and AppendLiveNeighbors exactly
// like the dense oracle over the same edge set.
func TestSparseMatchesDenseQuick(t *testing.T) {
	f := func(seed uint64) bool {
		rng := xrand.New(seed)
		n := rng.Intn(80) // includes 0 and 1
		in := prefgen.Uniform(rng, n, 96)
		threshold := rng.Intn(50)
		dense := BuildGraph(in.Truth, threshold)
		sparse := sparseExact(in.Truth, threshold)
		if sparse.N() != dense.N() {
			return false
		}
		// A random alive set exercises the live queries mid-peel.
		alive := bitvec.New(n)
		for p := 0; p < n; p++ {
			alive.Set(p, rng.Intn(2) == 0)
		}
		dst := []int{-1} // append semantics: existing prefix preserved
		for p := 0; p < n; p++ {
			if sparse.Degree(p) != dense.Degree(p) {
				return false
			}
			if !reflect.DeepEqual(sparse.Neighbors(p), dense.Neighbors(p)) {
				return false
			}
			for q := 0; q < n; q++ {
				if sparse.Adjacent(p, q) != dense.Adjacent(p, q) {
					return false
				}
			}
			var visited []int
			sparse.VisitNeighbors(p, func(q int) bool {
				visited = append(visited, q)
				return true
			})
			if !reflect.DeepEqual(visited, dense.Neighbors(p)) {
				return false
			}
			if sparse.LiveDegree(p, alive) != dense.LiveDegree(p, alive) {
				return false
			}
			a := dense.AppendLiveNeighbors(dst, p, alive)
			b := sparse.AppendLiveNeighbors(dst, p, alive)
			if !reflect.DeepEqual(a, b) || a[0] != -1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// TestSparseVisitEarlyStop: CSR iteration honors the early-stop contract.
func TestSparseVisitEarlyStop(t *testing.T) {
	rng := xrand.New(17)
	in := prefgen.Uniform(rng, 60, 96)
	g := sparseExact(in.Truth, 44)
	for p := 0; p < g.N(); p++ {
		count := 0
		g.VisitNeighbors(p, func(q int) bool {
			count++
			return false
		})
		want := 0
		if g.Degree(p) > 0 {
			want = 1
		}
		if count != want {
			t.Fatalf("early stop visited %d neighbors of %d, want %d", count, p, want)
		}
	}
}

// TestBuildMatchesAcrossRepresentations pins the tentpole contract at the
// cluster layer: Build over the sparse graph is byte-identical (cluster
// lists, member order, Of) to Build over the dense graph, on planted,
// uniform and messy near-threshold worlds — and both match the pre-seam
// reference implementation.
func TestBuildMatchesAcrossRepresentations(t *testing.T) {
	type world struct {
		name      string
		z         []bitvec.Vector
		threshold int
		minSize   int
	}
	var worlds []world
	worlds = append(worlds, world{"empty", nil, 12, 1}) // n = 0
	for _, n := range []int{1, 7, 64, 120, 257} {
		rng := xrand.New(uint64(n)*29 + 1)
		size := n / 4
		if size < 1 {
			size = 1
		}
		in := prefgen.DiameterClusters(rng, n, 300, size, 6)
		worlds = append(worlds, world{"planted", in.Truth, 12, size})
		u := prefgen.Uniform(rng, n, 96)
		worlds = append(worlds, world{"uniform", u.Truth, 48, 3})
		worlds = append(worlds, world{"sparse", u.Truth, 20, 2})
	}
	for _, w := range worlds {
		dense := BuildGraph(w.z, w.threshold)
		want := Build(dense, w.minSize)
		got := Build(sparseExact(w.z, w.threshold), w.minSize)
		if !reflect.DeepEqual(got.Clusters, want.Clusters) || !reflect.DeepEqual(got.Of, want.Of) {
			t.Fatalf("%s n=%d: sparse clustering differs from dense", w.name, len(w.z))
		}
		ref := buildReference(dense, w.minSize)
		if !reflect.DeepEqual(got.Clusters, ref.Clusters) || !reflect.DeepEqual(got.Of, ref.Of) {
			t.Fatalf("%s n=%d: sparse clustering differs from pre-seam reference", w.name, len(w.z))
		}
	}
}

// TestLSHSparseMatchesDense: the banding index filling a CSR sink yields
// the same graph as filling the bitset sink, seed for seed — the sink seam
// cannot perturb the discovered edge set.
func TestLSHSparseMatchesDense(t *testing.T) {
	for _, n := range []int{2, 64, 130, 257} {
		rng := xrand.New(uint64(n) * 11)
		in := prefgen.DiameterClusters(rng, n, 192, maxTestInt(2, n/4), 4)
		dense := LSH{}.BuildGraph(nil, in.Truth, 8, xrand.New(uint64(n)), RepDense)
		sparse := LSH{}.BuildGraph(nil, in.Truth, 8, xrand.New(uint64(n)), RepSparse)
		if _, ok := dense.(*BitGraph); !ok {
			t.Fatalf("n=%d: RepDense built %T", n, dense)
		}
		if _, ok := sparse.(*CSRGraph); !ok {
			t.Fatalf("n=%d: RepSparse built %T", n, sparse)
		}
		if !graphsEqual(dense, sparse) {
			t.Fatalf("n=%d: LSH edge set differs between representations", n)
		}
		// Schedule independence holds for the sparse sink too.
		serial := LSH{}.BuildGraph(par.Serial(), in.Truth, 8, xrand.New(uint64(n)), RepSparse)
		if !graphsEqual(sparse, serial) {
			t.Fatalf("n=%d: sparse LSH graph differs between schedules", n)
		}
	}
}

// TestCSRBuilderDuplicateEdges: the builder must tolerate the duplicate
// emissions multi-band LSH collisions can produce — duplicates and
// emission order change nothing, and rows come out sorted and unique.
func TestCSRBuilderDuplicateEdges(t *testing.T) {
	b := newCSRBuilder(5)
	// Edge set {0-1, 0-3, 2-3}, emitted with duplicates, in both
	// orientations, out of order, across multiple flushes.
	b.flush([][2]int32{{0, 3}, {0, 1}, {0, 1}})
	b.flush([][2]int32{{3, 2}, {1, 0}, {0, 3}, {2, 3}})
	g := b.finish(nil).(*CSRGraph)
	wantRows := [][]int{{1, 3}, {0}, {3}, {0, 2}, {}}
	for p, want := range wantRows {
		got := g.Neighbors(p)
		if len(got) == 0 && len(want) == 0 {
			continue
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("Neighbors(%d) = %v, want %v", p, got, want)
		}
	}
	if g.Degree(0) != 2 || g.Degree(4) != 0 {
		t.Fatalf("degrees: %d, %d", g.Degree(0), g.Degree(4))
	}
	if !g.Adjacent(0, 1) || g.Adjacent(1, 2) || g.Adjacent(4, 0) {
		t.Fatal("adjacency wrong after duplicate ingestion")
	}
	if int(g.off[5]) != 6 {
		t.Fatalf("compacted targets length %d, want 6 (duplicates kept?)", g.off[5])
	}
}

// TestCSRTiny: n = 0 and n = 1 sparse graphs behave like their dense
// counterparts, including through Build.
func TestCSRTiny(t *testing.T) {
	empty := sparseExact(nil, 3)
	if empty.N() != 0 {
		t.Fatalf("empty CSR N = %d", empty.N())
	}
	cl := Build(empty, 1)
	if len(cl.Clusters) != 0 || len(cl.Of) != 0 {
		t.Fatalf("empty clustering %+v", cl)
	}
	one := sparseExact([]bitvec.Vector{bitvec.FromBits([]int{1, 0})}, 1)
	if one.N() != 1 || one.Degree(0) != 0 || one.Adjacent(0, 0) {
		t.Fatalf("single-player CSR N=%d deg=%d", one.N(), one.Degree(0))
	}
	cl = Build(one, 1)
	if len(cl.Clusters) != 1 || cl.Of[0] != 0 {
		t.Fatalf("minSize 1: clusters %v, Of %v", cl.Clusters, cl.Of)
	}
	cl = Build(one, 2)
	if len(cl.Clusters) != 0 || cl.Of[0] != -1 {
		t.Fatalf("minSize 2: clusters %v, Of %v", cl.Clusters, cl.Of)
	}
	// The builder with no edges at all still yields a well-formed graph.
	if g := newCSRBuilder(3).finish(nil); g.N() != 3 || g.Degree(2) != 0 {
		t.Fatal("edge-free builder produced a malformed graph")
	}
}

// TestCSRIsolatedAttachmentFallback: isolated vertices stay unassigned
// through the sparse peel + attachment (Of[p] == -1), and leftover players
// with peeled neighbors do get attached — same shape as the dense
// TestIsolatedPlayers / TestLeftoverAttachment, run against CSR.
func TestCSRIsolatedAttachmentFallback(t *testing.T) {
	z := []bitvec.Vector{
		bitvec.FromBits([]int{0, 0, 0, 0, 0, 0, 0, 0}),
		bitvec.FromBits([]int{0, 0, 0, 0, 0, 0, 0, 0}),
		bitvec.FromBits([]int{0, 0, 0, 0, 0, 0, 0, 0}),
		bitvec.FromBits([]int{0, 0, 0, 0, 0, 0, 0, 0}),
		bitvec.FromBits([]int{1, 1, 1, 1, 1, 1, 1, 1}), // isolated
		bitvec.FromBits([]int{1, 1, 1, 1, 0, 0, 0, 0}), // isolated
	}
	g := sparseExact(z, 1)
	cl := Build(g, 4)
	if len(cl.Clusters) != 1 || len(cl.Clusters[0]) != 4 {
		t.Fatalf("clusters %v", cl.Clusters)
	}
	if got := cl.Unassigned(); len(got) != 2 || got[0] != 4 || got[1] != 5 {
		t.Fatalf("Unassigned = %v, want [4 5]", got)
	}
	for _, p := range []int{4, 5} {
		if cl.Of[p] != -1 {
			t.Fatalf("isolated player %d assigned to cluster %d", p, cl.Of[p])
		}
	}
	// Attachment fallback: one player at distance 1 from a peeled clique.
	z2 := []bitvec.Vector{
		bitvec.FromBits([]int{0, 0, 0}),
		bitvec.FromBits([]int{0, 0, 0}),
		bitvec.FromBits([]int{0, 0, 0}),
		bitvec.FromBits([]int{0, 0, 0}),
		bitvec.FromBits([]int{0, 0, 0}),
		bitvec.FromBits([]int{1, 0, 0}),
	}
	cl = Build(sparseExact(z2, 1), 6)
	if len(cl.Unassigned()) != 0 {
		t.Fatalf("unassigned after attachment: %v", cl.Unassigned())
	}
}

// TestLiveQueriesAllocFree pins the satellite fix at the graph layer: the
// peel's per-candidate queries must not allocate, for either
// representation (the pre-fix dense path allocated a fresh n-bit vector
// per scanned candidate per round).
func TestLiveQueriesAllocFree(t *testing.T) {
	rng := xrand.New(23)
	in := prefgen.Uniform(rng, 256, 96)
	alive := bitvec.New(256)
	for p := 0; p < 256; p += 2 {
		alive.Set(p, true)
	}
	dst := make([]int, 0, 256)
	for name, g := range map[string]Graph{
		"dense":  BuildGraph(in.Truth, 44),
		"sparse": sparseExact(in.Truth, 44),
	} {
		sink := 0
		if allocs := testing.AllocsPerRun(100, func() {
			for p := 0; p < 256; p++ {
				sink += g.LiveDegree(p, alive)
			}
		}); allocs != 0 {
			t.Errorf("%s LiveDegree allocates %.1f per run", name, allocs)
		}
		if allocs := testing.AllocsPerRun(100, func() {
			for p := 0; p < 256; p++ {
				dst = g.AppendLiveNeighbors(dst[:0], p, alive)
			}
		}); allocs != 0 {
			t.Errorf("%s AppendLiveNeighbors allocates %.1f per run", name, allocs)
		}
		_ = sink
	}
}
