package cluster

import (
	"reflect"
	"testing"

	"collabscore/internal/bitvec"
	"collabscore/internal/par"
	"collabscore/internal/prefgen"
	"collabscore/internal/xrand"
)

// peelWorlds returns the shared world matrix the batched-peel pins run
// over: empty, planted-cluster, uniform, and sparse regimes at several
// sizes (mirrors TestBuildMatchesAcrossRepresentations).
func peelWorlds() []struct {
	name      string
	z         []bitvec.Vector
	threshold int
	minSize   int
} {
	type world = struct {
		name      string
		z         []bitvec.Vector
		threshold int
		minSize   int
	}
	var worlds []world
	worlds = append(worlds, world{"empty", nil, 12, 1})
	for _, n := range []int{1, 7, 64, 120, 257} {
		rng := xrand.New(uint64(n)*31 + 5)
		size := n / 4
		if size < 1 {
			size = 1
		}
		in := prefgen.DiameterClusters(rng, n, 300, size, 6)
		worlds = append(worlds, world{"planted", in.Truth, 12, size})
		u := prefgen.Uniform(rng, n, 96)
		worlds = append(worlds, world{"uniform", u.Truth, 48, 3})
		worlds = append(worlds, world{"sparse", u.Truth, 20, 2})
	}
	return worlds
}

// peelExecs is the schedule matrix for the batched peel: the serial
// reference, a fixed width forcing real goroutine interleavings, and the
// parallel default.
func peelExecs() map[string]*par.Runner {
	return map[string]*par.Runner{
		"serial":   par.Serial(),
		"fixed3":   par.Fixed(3),
		"parallel": par.Parallel(),
	}
}

// TestBuildOnMatchesBuild: the batched peel is byte-identical to the
// serial greedy on every world, both graph representations, and every
// schedule.
func TestBuildOnMatchesBuild(t *testing.T) {
	for _, w := range peelWorlds() {
		dense := BuildGraph(w.z, w.threshold)
		want := Build(dense, w.minSize)
		graphs := map[string]Graph{
			"dense":  dense,
			"sparse": sparseExact(w.z, w.threshold),
		}
		for gname, g := range graphs {
			for ename, exec := range peelExecs() {
				got := BuildOn(exec, g, w.minSize)
				if !reflect.DeepEqual(got.Clusters, want.Clusters) || !reflect.DeepEqual(got.Of, want.Of) {
					t.Fatalf("%s n=%d %s/%s: batched peel differs from serial greedy",
						w.name, len(w.z), gname, ename)
				}
			}
		}
	}
}

// TestBuildByWeightOnUnitMatchesBuild: unit weights reduce the weighted
// batched peel to the plain one, so it must match the serial greedy with
// needed = minSize.
func TestBuildByWeightOnUnitMatchesBuild(t *testing.T) {
	for _, w := range peelWorlds() {
		g := BuildGraph(w.z, w.threshold)
		want := Build(g, w.minSize)
		unit := make([]int, len(w.z))
		for i := range unit {
			unit[i] = 1
		}
		got := BuildByWeightOn(par.Fixed(2), g, unit, w.minSize)
		if !reflect.DeepEqual(got.Clusters, want.Clusters) || !reflect.DeepEqual(got.Of, want.Of) {
			t.Fatalf("%s n=%d: unit-weight batched peel differs from serial greedy", w.name, len(w.z))
		}
	}
}

// TestCSRFinishMatchesSerial: the parallel CSR row compaction yields the
// exact graph of the serial in-place finish for the same edge stream —
// duplicate edges included — under every schedule.
func TestCSRFinishMatchesSerial(t *testing.T) {
	rng := xrand.New(97)
	for _, n := range []int{1, 5, 63, 200} {
		// A messy stream: random edges, many duplicates, both orientations.
		var edges [][2]int32
		for i := 0; i < 6*n; i++ {
			p := int32(rng.Intn(n))
			q := int32(rng.Intn(n))
			if p == q {
				continue
			}
			edges = append(edges, [2]int32{p, q})
			if i%3 == 0 {
				edges = append(edges, [2]int32{q, p}) // duplicate, flipped
			}
		}
		serial := newCSRBuilder(n)
		serial.flush(edges)
		want := serial.build()
		for ename, exec := range peelExecs() {
			b := newCSRBuilder(n)
			b.flush(edges)
			got := b.buildOn(exec)
			if !reflect.DeepEqual(got.off, want.off) || !reflect.DeepEqual(got.tgt, want.tgt) {
				t.Fatalf("n=%d %s: parallel CSR finish differs from serial build", n, ename)
			}
		}
	}
}

// TestBuildGraphL1Matches: the shared L1 block sweep discovers exactly the
// brute-force edge set, across representations and schedules.
func TestBuildGraphL1Matches(t *testing.T) {
	rng := xrand.New(131)
	for _, n := range []int{0, 1, 9, 70, 130} {
		const m, scale = 40, 7
		rows := make([]bitvec.Planes, n)
		for p := range rows {
			rows[p] = bitvec.PlanesForScale(m, scale)
			for o := 0; o < m; o++ {
				rows[p].Set(o, rng.Intn(scale+1))
			}
		}
		threshold := m * scale / 8
		for gname, rep := range map[string]GraphRep{"dense": RepDense, "sparse": RepSparse} {
			for ename, exec := range peelExecs() {
				g := BuildGraphL1On(exec, rows, threshold, rep)
				if g.N() != n {
					t.Fatalf("n=%d: got N=%d", n, g.N())
				}
				for p := 0; p < n; p++ {
					for q := 0; q < n; q++ {
						want := p != q && rows[p].L1(rows[q]) <= threshold
						if got := g.Adjacent(p, q); got != want {
							t.Fatalf("n=%d %s/%s: edge (%d,%d) = %v, want %v",
								n, gname, ename, p, q, got, want)
						}
					}
				}
			}
		}
	}
}
