// L1 neighbor discovery for the multi-valued (§8 ratings) protocol. The
// rating substrate publishes bit-sliced rows (bitvec.Planes) instead of
// binary vectors, and neighbors are pairs within an L1 — not Hamming —
// threshold, so it cannot ride NeighborIndex (whose LSH banding hashes
// Hamming lanes). What it can share is everything downstream of the
// distance test: the block-pair sweep that computes every pair once, and
// the graphSink seam that lets the same edge stream fill either the dense
// BitGraph or the sparse CSRGraph.
package cluster

import (
	"collabscore/internal/bitvec"
	"collabscore/internal/par"
)

// BuildGraphL1On builds the neighbor graph over bit-sliced rating rows:
// players p and q are adjacent iff the L1 distance of their rows is at most
// threshold. The sweep is block-partitioned over the executor (nil means
// parallel) exactly like the Hamming sweep — each task owns one block pair
// and computes each distance once — and emits through per-worker edge
// buffers into the sink for the chosen representation. The graph is a pure
// function of (rows, threshold, rep) under every schedule.
//
// This replaces the multival engine's private adjacency build, which
// computed every distance twice (a full row scan per player) and
// materialized a [][]int slice-of-slices graph.
func BuildGraphL1On(exec *par.Runner, rows []bitvec.Planes, threshold int, rep GraphRep) Graph {
	n := len(rows)
	sink := newGraphSink(n, rep)
	if n < 2 {
		return sink.finish(exec)
	}
	nb := (n + blockRows - 1) / blockRows
	type blockPair struct{ bi, bj int }
	tasks := make([]blockPair, 0, nb*(nb+1)/2)
	for bi := 0; bi < nb; bi++ {
		for bj := bi; bj < nb; bj++ {
			tasks = append(tasks, blockPair{bi, bj})
		}
	}
	bufs := make([][][2]int32, exec.Workers(len(tasks)))
	exec.ForWorker(len(tasks), func(wk, t int) {
		bi, bj := tasks[t].bi, tasks[t].bj
		pHi := min(n, (bi+1)*blockRows)
		qHi := min(n, (bj+1)*blockRows)
		buf := bufs[wk]
		for p := bi * blockRows; p < pHi; p++ {
			qLo := bj * blockRows
			if bi == bj {
				qLo = p + 1
			}
			for q := qLo; q < qHi; q++ {
				if rows[p].L1(rows[q]) <= threshold {
					buf = append(buf, [2]int32{int32(p), int32(q)})
					if len(buf) >= sinkFlushAt {
						sink.flush(buf)
						buf = buf[:0]
					}
				}
			}
		}
		bufs[wk] = buf
	})
	for _, buf := range bufs {
		sink.flush(buf)
	}
	return sink.finish(exec)
}
