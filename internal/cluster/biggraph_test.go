package cluster

import (
	"os"
	"runtime"
	"testing"

	"collabscore/internal/prefgen"
	"collabscore/internal/xrand"
)

// heapAlloc returns the live-heap size after a full collection; differences
// between two calls bound the retained cost of what was built in between.
func heapAlloc() uint64 {
	runtime.GC()
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return ms.HeapAlloc
}

// heapDelta runs build and returns the retained heap it added.
func heapDelta(build func()) uint64 {
	before := heapAlloc()
	build()
	after := heapAlloc()
	if after < before {
		return 0
	}
	return after - before
}

// assertPlantedRecovery checks that the clustering is exactly the planted
// partition: n/size pure clusters of exactly size members, nobody left
// unassigned.
func assertPlantedRecovery(t *testing.T, cl *Clustering, in *prefgen.Instance, n, size int) {
	t.Helper()
	if got, want := len(cl.Clusters), n/size; got != want {
		t.Fatalf("recovered %d clusters, want %d", got, want)
	}
	if un := cl.Unassigned(); len(un) != 0 {
		t.Fatalf("%d players unassigned", len(un))
	}
	for j, members := range cl.Clusters {
		if len(members) != size {
			t.Fatalf("cluster %d size %d, want %d", j, len(members), size)
		}
		planted := in.ClusterOf[members[0]]
		for _, p := range members {
			if in.ClusterOf[p] != planted {
				t.Fatalf("cluster %d mixes planted clusters", j)
			}
		}
	}
}

// TestSparseGraphBoundedMemorySmoke is the short-mode memory pin for the
// graph layer (it runs in the CI race job): at n = 8192 the LSH+sparse
// graph must retain well under a quarter of the dense bitset's footprint,
// and the clustering peeled from each must be byte-identical.
func TestSparseGraphBoundedMemorySmoke(t *testing.T) {
	const n, m, size, d = 8192, 512, 32, 4
	in := prefgen.DiameterClusters(xrand.New(81), n, m, size, d)
	threshold := 2 * d

	var dense, sparse Graph
	denseDelta := heapDelta(func() {
		dense = LSH{}.BuildGraph(nil, in.Truth, threshold, xrand.New(81), RepDense)
	})
	sparseDelta := heapDelta(func() {
		sparse = LSH{}.BuildGraph(nil, in.Truth, threshold, xrand.New(81), RepSparse)
	})
	if sparseDelta*4 > denseDelta {
		t.Fatalf("sparse graph retains %d bytes, dense %d — want sparse < dense/4", sparseDelta, denseDelta)
	}

	want := Build(dense, size)
	got := Build(sparse, size)
	if len(got.Clusters) != len(want.Clusters) {
		t.Fatalf("cluster counts differ: %d sparse, %d dense", len(got.Clusters), len(want.Clusters))
	}
	for j := range want.Clusters {
		if len(got.Clusters[j]) != len(want.Clusters[j]) {
			t.Fatalf("cluster %d sizes differ", j)
		}
		for i := range want.Clusters[j] {
			if got.Clusters[j][i] != want.Clusters[j][i] {
				t.Fatalf("cluster %d member %d differs", j, i)
			}
		}
	}
	for p := 0; p < n; p++ {
		if got.Of[p] != want.Of[p] {
			t.Fatalf("Of[%d] differs between representations", p)
		}
	}
	assertPlantedRecovery(t, got, in, n, size)
	runtime.KeepAlive(dense)
}

// TestSparseGraphBoundedMemoryLarge is the tentpole acceptance run
// (ROADMAP item 2): build and peel an LSH+sparse neighbor graph at
// n = 10⁵ — where the dense adjacency would be n² bits = 1.25 GB — under a
// 96 MB retained-heap ceiling, more than 10× below the dense footprint,
// and verify the peel recovers the planted clusters exactly. The zero-rep
// spec exercises the auto rule: 10⁵ ≥ AutoSparseCutoff must pick CSR
// without being asked. There is no dense oracle at this scale (that is the
// point); byte-identity is pinned at oracle scales by the smoke test and
// the cluster/core/budgets representation pins.
func TestSparseGraphBoundedMemoryLarge(t *testing.T) {
	if testing.Short() {
		t.Skip("10⁵-player graph build; skipped in -short (smoke test covers the bound)")
	}
	const (
		n, m    = 100_000, 1024
		size    = 100
		d       = 8
		ceiling = 96 << 20 // bytes of retained heap for graph + clustering
	)
	denseBytes := uint64(n) * uint64(n) / 8
	if uint64(ceiling)*10 > denseBytes {
		t.Fatalf("ceiling %d is not 10× below the dense footprint %d", uint64(ceiling), denseBytes)
	}

	// The truth matrix (12.8 MB) is the input, not the artifact under
	// test — build it outside the measured window.
	in := prefgen.DiameterClusters(xrand.New(100_003), n, m, size, d)

	var g Graph
	var cl *Clustering
	delta := heapDelta(func() {
		g = IndexSpec{Kind: "lsh"}.BuildGraph(nil, in.Truth, 2*d, xrand.New(100_003))
		cl = Build(g, size)
	})
	if delta > ceiling {
		t.Fatalf("graph + clustering retain %d bytes, over the %d ceiling", delta, uint64(ceiling))
	}
	if _, ok := g.(*CSRGraph); !ok {
		t.Fatalf("auto rule built %T at n=%d, want *CSRGraph", g, n)
	}
	assertPlantedRecovery(t, cl, in, n, size)
	// Spot-check graph structure: within-cluster adjacency, no
	// cross-cluster edges, planted degree.
	for p := 0; p < n; p += 9973 {
		if got, want := g.Degree(p), size-1; got != want {
			t.Fatalf("Degree(%d) = %d, want %d", p, got, want)
		}
		g.VisitNeighbors(p, func(q int) bool {
			if in.ClusterOf[q] != in.ClusterOf[p] {
				t.Fatalf("edge (%d,%d) crosses planted clusters", p, q)
			}
			return true
		})
	}
	runtime.KeepAlive(g)
}

// TestSparseGraphMillionPlayers is the skipped-by-default long run: the
// full 10⁶-player graph + clustering — a 125 GB adjacency if dense, beyond
// any single machine — built sparse under a 1 GB retained-heap ceiling.
// With PR 7's lazy worlds this closes the last quadratic term in the
// million-player acceptance story. Enable with COLLABSCORE_BIGWORLD=1.
func TestSparseGraphMillionPlayers(t *testing.T) {
	if os.Getenv("COLLABSCORE_BIGWORLD") == "" {
		t.Skip("set COLLABSCORE_BIGWORLD=1 to run the 10⁶-player acceptance test")
	}
	const (
		n, m    = 1_000_000, 1024
		size    = 125 // divides n exactly — the planted generator folds any remainder into the last cluster
		d       = 8
		ceiling = 1 << 30
	)
	in := prefgen.DiameterClusters(xrand.New(1_000_003), n, m, size, d)
	var g Graph
	var cl *Clustering
	delta := heapDelta(func() {
		g = IndexSpec{Kind: "lsh"}.BuildGraph(nil, in.Truth, 2*d, xrand.New(1_000_003))
		cl = Build(g, size)
	})
	if delta > ceiling {
		t.Fatalf("graph + clustering retain %d bytes, over the %d ceiling", delta, uint64(ceiling))
	}
	assertPlantedRecovery(t, cl, in, n, size)
	runtime.KeepAlive(g)
}
