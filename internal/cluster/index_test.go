package cluster

import (
	"reflect"
	"testing"
	"testing/quick"

	"collabscore/internal/bitvec"
	"collabscore/internal/par"
	"collabscore/internal/prefgen"
	"collabscore/internal/xrand"
)

// graphsEqual compares through the Graph interface so dense and sparse
// representations of the same edge set compare equal.
func graphsEqual(a, b Graph) bool {
	if a.N() != b.N() {
		return false
	}
	for p := 0; p < a.N(); p++ {
		if a.Degree(p) != b.Degree(p) {
			return false
		}
		for q := 0; q < a.N(); q++ {
			if a.Adjacent(p, q) != b.Adjacent(p, q) {
				return false
			}
		}
	}
	return true
}

func TestParseIndexSpec(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want IndexSpec
	}{
		{"", IndexSpec{}},
		{"exact", IndexSpec{}},
		{"lsh", IndexSpec{Kind: "lsh"}},
		{"lsh:8:6", IndexSpec{Kind: "lsh", Bands: 8, Rows: 6}},
		{"lsh:32:16", IndexSpec{Kind: "lsh", Bands: 32, Rows: 16}},
		{"exact+dense", IndexSpec{Graph: "dense"}},
		{"exact+sparse", IndexSpec{Graph: "sparse"}},
		{"+sparse", IndexSpec{Graph: "sparse"}},
		{"exact+auto", IndexSpec{}},
		{"lsh+sparse", IndexSpec{Kind: "lsh", Graph: "sparse"}},
		{"lsh:8:6+dense", IndexSpec{Kind: "lsh", Bands: 8, Rows: 6, Graph: "dense"}},
		{"lsh+auto", IndexSpec{Kind: "lsh"}},
	} {
		got, err := ParseIndexSpec(tc.in)
		if err != nil {
			t.Fatalf("ParseIndexSpec(%q): %v", tc.in, err)
		}
		if got != tc.want {
			t.Fatalf("ParseIndexSpec(%q) = %+v, want %+v", tc.in, got, tc.want)
		}
		// String round-trips back to the same spec.
		again, err := ParseIndexSpec(got.String())
		if err != nil || again != got {
			t.Fatalf("round trip %q → %q → %+v (%v)", tc.in, got.String(), again, err)
		}
	}
	for _, bad := range []string{
		"lsh:0:4", "lsh:4:0", "lsh:-1:4", "lsh:4", "lsh:4:4:4",
		"lsh:a:4", "lsh:4:b", "banding", "exact:1:2", "LSH",
		"exact+csr", "lsh+", "+", "lsh+sparse+dense", "auto",
	} {
		if _, err := ParseIndexSpec(bad); err == nil {
			t.Fatalf("ParseIndexSpec(%q) accepted", bad)
		}
	}
	if !(IndexSpec{}).IsExact() || !(IndexSpec{Kind: "exact"}).IsExact() {
		t.Fatal("exact specs not IsExact")
	}
	if (IndexSpec{Kind: "lsh"}).IsExact() {
		t.Fatal("lsh spec IsExact")
	}
	if got := (IndexSpec{}).String(); got != "exact" {
		t.Fatalf("zero spec String = %q", got)
	}
}

// TestIndexSpecExactDispatch: the zero spec routed through the seam is the
// reference sweep, graph for graph.
func TestIndexSpecExactDispatch(t *testing.T) {
	rng := xrand.New(21)
	in := prefgen.Uniform(rng, 70, 128)
	want := BuildGraphOn(nil, in.Truth, 50)
	got := IndexSpec{}.BuildGraph(nil, in.Truth, 50, xrand.New(99))
	if !graphsEqual(got, want) {
		t.Fatal("exact spec through the seam differs from BuildGraphOn")
	}
}

// TestLSHSubsetOfExact is the no-false-positives property: every LSH edge
// must exist in the exact oracle's graph, on arbitrary (unclustered)
// inputs — candidates are always verified by exact distance, so the index
// can only miss edges, never invent them.
func TestLSHSubsetOfExact(t *testing.T) {
	f := func(seed uint64) bool {
		rng := xrand.New(seed)
		n := 5 + rng.Intn(60)
		in := prefgen.Uniform(rng, n, 96)
		threshold := rng.Intn(50)
		exact := BuildGraph(in.Truth, threshold)
		lsh := LSH{}.BuildGraph(nil, in.Truth, threshold, xrand.New(seed^0x1D), RepAuto)
		for p := 0; p < n; p++ {
			for q := 0; q < n; q++ {
				if lsh.Adjacent(p, q) && !exact.Adjacent(p, q) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// TestLSHRecallPlanted pins the acceptance property: on planted worlds at
// paper-regime thresholds the banding index recovers ≥ 99.9% of the exact
// oracle's edges, and the end-to-end clustering built from its graph is
// equivalent to the oracle's.
func TestLSHRecallPlanted(t *testing.T) {
	const n, m, size, d = 256, 512, 32, 8
	for _, seed := range []uint64{1, 2, 3, 42, 2010} {
		rng := xrand.New(seed)
		in := prefgen.DiameterClusters(rng, n, m, size, d)
		threshold := 2 * d
		exact := BuildGraph(in.Truth, threshold)
		lsh := LSH{}.BuildGraph(nil, in.Truth, threshold, xrand.New(seed), RepAuto)
		edges, found := 0, 0
		for p := 0; p < n; p++ {
			for q := p + 1; q < n; q++ {
				if exact.Adjacent(p, q) {
					edges++
					if lsh.Adjacent(p, q) {
						found++
					}
				}
				if lsh.Adjacent(p, q) && !exact.Adjacent(p, q) {
					t.Fatalf("seed %d: false positive edge (%d,%d)", seed, p, q)
				}
			}
		}
		if edges == 0 {
			t.Fatalf("seed %d: planted world produced no edges", seed)
		}
		if recall := float64(found) / float64(edges); recall < 0.999 {
			t.Fatalf("seed %d: recall %.6f < 0.999 (%d/%d edges)", seed, recall, found, edges)
		}
		// End-to-end equivalence of the clustering built on each graph.
		want := Build(exact, size)
		got := Build(lsh, size)
		if !reflect.DeepEqual(got.Clusters, want.Clusters) || !reflect.DeepEqual(got.Of, want.Of) {
			t.Fatalf("seed %d: clustering from LSH graph differs from oracle", seed)
		}
	}
}

// TestLSHSchedulesAgree is the schedule-matrix treatment for the banding
// index: serial, fixed-width, parallel and nil executors must produce the
// identical graph for the same seed, at sizes exercising partial words.
func TestLSHSchedulesAgree(t *testing.T) {
	for _, n := range []int{2, 63, 64, 65, 130, 257} {
		rng := xrand.New(uint64(n) * 7)
		in := prefgen.DiameterClusters(rng, n, 192, maxTestInt(2, n/4), 4)
		threshold := 8
		ref := LSH{}.BuildGraph(par.Serial(), in.Truth, threshold, xrand.New(uint64(n)), RepAuto)
		for name, exec := range map[string]*par.Runner{
			"parallel": par.Parallel(),
			"fixed3":   par.Fixed(3),
			"nil":      nil,
		} {
			g := LSH{}.BuildGraph(exec, in.Truth, threshold, xrand.New(uint64(n)), RepAuto)
			if !graphsEqual(g, ref) {
				t.Fatalf("n=%d: %s schedule differs from serial", n, name)
			}
		}
	}
}

// TestLSHDeterministicGivenSeed: the same seed yields the same graph call
// after call; custom band/row shapes run through the same machinery.
func TestLSHDeterministicGivenSeed(t *testing.T) {
	rng := xrand.New(77)
	in := prefgen.DiameterClusters(rng, 128, 256, 16, 4)
	for _, ix := range []LSH{{}, {Bands: 8, Rows: 6}, {Bands: 32, Rows: 4}} {
		a := ix.BuildGraph(nil, in.Truth, 8, xrand.New(5), RepAuto)
		b := ix.BuildGraph(nil, in.Truth, 8, xrand.New(5), RepAuto)
		if !graphsEqual(a, b) {
			t.Fatalf("LSH %+v not deterministic for fixed seed", ix)
		}
	}
}

// TestLSHAllIdentical is the worst case called out in the issue: identical
// vectors put every player in one giant bucket, and the index must still
// return the exact (complete) graph.
func TestLSHAllIdentical(t *testing.T) {
	const n = 70
	z := make([]bitvec.Vector, n)
	for p := range z {
		v := bitvec.New(100)
		v.Set(3, true)
		v.Set(64, true)
		z[p] = v
	}
	for _, threshold := range []int{0, 5} {
		g := LSH{}.BuildGraph(nil, z, threshold, xrand.New(1), RepAuto)
		for p := 0; p < n; p++ {
			for q := 0; q < n; q++ {
				if (p != q) != g.Adjacent(p, q) {
					t.Fatalf("threshold %d: identical vectors, edge (%d,%d) = %v", threshold, p, q, g.Adjacent(p, q))
				}
			}
		}
	}
}

// TestLSHTiny: n ∈ {0, 1} and empty vectors must not panic and must have
// no edges.
func TestLSHTiny(t *testing.T) {
	if g := (LSH{}).BuildGraph(nil, nil, 3, xrand.New(1), RepAuto); g.N() != 0 {
		t.Fatalf("empty input N = %d", g.N())
	}
	one := []bitvec.Vector{bitvec.FromBits([]int{1, 0, 1})}
	if g := (LSH{}).BuildGraph(nil, one, 3, xrand.New(1), RepAuto); g.N() != 1 || g.Degree(0) != 0 {
		t.Fatal("single player grew an edge")
	}
	// Zero-length vectors: all identical at distance 0.
	zl := []bitvec.Vector{bitvec.New(0), bitvec.New(0), bitvec.New(0)}
	g := LSH{}.BuildGraph(nil, zl, 0, xrand.New(1), RepAuto)
	if !g.Adjacent(0, 1) || !g.Adjacent(1, 2) {
		t.Fatal("zero-length vectors are at distance 0 and must be adjacent at threshold 0")
	}
}

// TestLSHThresholdZero: only exact duplicates connect, mirroring the exact
// sweep.
func TestLSHThresholdZero(t *testing.T) {
	z := []bitvec.Vector{
		bitvec.FromBits([]int{0, 0, 1}),
		bitvec.FromBits([]int{0, 0, 1}),
		bitvec.FromBits([]int{0, 1, 1}),
	}
	g := LSH{}.BuildGraph(nil, z, 0, xrand.New(3), RepAuto)
	exact := BuildGraph(z, 0)
	if !graphsEqual(g, exact) {
		t.Fatal("threshold-0 LSH graph differs from exact")
	}
	if !g.Adjacent(0, 1) || g.Adjacent(0, 2) {
		t.Fatal("threshold-0 adjacency wrong")
	}
}

func maxTestInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
