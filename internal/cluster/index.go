// Neighbor discovery is a pluggable layer (DESIGN.md §13): the protocol
// needs the graph where players p and q are adjacent iff their sample-set
// vectors are within the edge threshold, but HOW candidate pairs are found
// is an implementation choice. The exact all-pairs sweep (BuildGraphOn) is
// the reference oracle; the LSH banding index buckets players by hashes of
// sampled bit positions and verifies exact Hamming distance only within
// buckets, replacing the O(n²) wall with near-linear work on clustered
// inputs. Both are deterministic given their inputs and produce identical
// graphs under every par.Runner schedule.
//
// Orthogonally, WHERE the discovered edges are stored is the graph
// representation choice (DESIGN.md §16): dense bitset rows (BitGraph) or
// compressed sparse rows (CSRGraph), selected by GraphRep and threaded
// through the same IndexSpec seam.
package cluster

import (
	"fmt"
	"math/bits"
	"strconv"
	"strings"

	"collabscore/internal/bitvec"
	"collabscore/internal/par"
	"collabscore/internal/xrand"
)

// GraphRep selects the neighbor-graph representation an index builds into.
// The zero value RepAuto defers to the size rule: dense below
// AutoSparseCutoff players, sparse at or above it. Either representation
// yields byte-identical clusterings over the same edge set; the choice
// trades the BitGraph's n² bits (word-parallel live-degree counting)
// against the CSRGraph's Θ(n + edges) words (the only option at 10⁶
// players, where dense is 125 GB).
type GraphRep int

const (
	// RepAuto picks dense below AutoSparseCutoff, sparse at or above.
	RepAuto GraphRep = iota
	// RepDense forces the bitset BitGraph.
	RepDense
	// RepSparse forces the CSRGraph.
	RepSparse
)

// AutoSparseCutoff is the player count at which RepAuto switches from the
// dense bitset to CSR. At the cutoff the dense adjacency is 128 MB
// (n²/8 bytes) and growing quadratically, while the sparse graph tracks
// the actual edge count — below it, dense is cheap enough that its
// word-parallel peeling wins.
const AutoSparseCutoff = 1 << 15

// pick resolves RepAuto against the player count.
func (r GraphRep) pick(n int) GraphRep {
	if r != RepAuto {
		return r
	}
	if n >= AutoSparseCutoff {
		return RepSparse
	}
	return RepDense
}

// NeighborIndex is the neighbor-discovery seam: an implementation builds
// the neighbor graph over the players' vectors for a Hamming threshold.
// Exact is the reference oracle (every edge, no misses); approximate
// implementations like LSH may miss a vanishing fraction of edges but must
// never invent one (candidates are always verified by exact distance), and
// must be pure functions of (z, threshold, rng) under every executor
// schedule — the determinism contract of DESIGN.md §9. rep selects the
// representation the edges land in and must not change the edge set.
type NeighborIndex interface {
	// BuildGraph returns the graph with an edge for (a subset of) the pairs
	// p < q with z[p].Hamming(z[q]) ≤ threshold. rng carries the shared
	// coins the index may consume (ignored by Exact); exec nil means the
	// default parallel executor; rep picks the graph representation.
	BuildGraph(exec *par.Runner, z []bitvec.Vector, threshold int, rng *xrand.Stream, rep GraphRep) Graph
}

// Exact is the all-pairs reference oracle: the block-partitioned pairwise
// sweep of BuildGraphOn. It consumes no randomness.
type Exact struct{}

// BuildGraph implements NeighborIndex by the exact sweep.
func (Exact) BuildGraph(exec *par.Runner, z []bitvec.Vector, threshold int, _ *xrand.Stream, rep GraphRep) Graph {
	if rep.pick(len(z)) == RepSparse {
		return buildCSROn(exec, z, threshold)
	}
	return BuildGraphOn(exec, z, threshold)
}

// Default LSH shape: DefaultBands hash tables of DefaultRows sampled bit
// positions each. For a close pair agreeing on a fraction s of the
// informative positions, per-band collision probability is s^Rows and the
// miss probability (1 − s^Rows)^Bands; at the paper-regime thresholds
// (threshold ≪ informative positions, so s ≈ 1) the defaults put the miss
// probability well below 10⁻³ per pair — see DESIGN.md §13 for the recall
// argument and the planted-world tests that pin it.
const (
	DefaultBands = 16
	DefaultRows  = 12
)

// LSH is the banding index: a bit-sampling locality-sensitive hash for
// Hamming distance. Bands hash tables each hash Rows sampled bit positions
// of every vector into a bucket key; players sharing a bucket in any band
// become candidate pairs, and only candidates are verified by exact
// Hamming distance. Close pairs (distance ≤ threshold) agree on almost
// every position, so they collide in some band with probability
// 1 − (1 − s^Rows)^Bands ≈ 1; far pairs almost never do, so on clustered
// inputs the verification work is Σ (bucket size)² ≈ n·(cluster size)
// instead of n².
//
// Determinism: the sampled positions come from the rng stream passed to
// BuildGraph (split by the caller from the iteration's shared coins —
// xrand.SplitValue, no global randomness), hashing and bucketing are pure
// functions of the vectors, each candidate pair is verified in exactly one
// band (the first band where its hashes collide), and edges are written as
// an order-insensitive set union — so the graph is identical under serial,
// fixed-width, and parallel schedules (TestLSHSchedulesAgree).
//
// Positions are sampled only from the informative columns (bits on which
// the players disagree somewhere); constant columns carry no distance
// signal. When every column is constant — all vectors identical, the LSH
// worst case — every player lands in one giant bucket and the index
// degenerates to the exact sweep's O(n²) verification (of distance-0
// pairs), correct but no faster.
type LSH struct {
	// Bands is the number of hash tables; 0 means DefaultBands.
	Bands int
	// Rows is the number of sampled bit positions per band; 0 means
	// DefaultRows.
	Rows int
}

// BuildGraph implements NeighborIndex by banding. Verified edges flow
// through the graphSink seam, so the same discovery pass fills either the
// dense or the sparse representation.
func (ix LSH) BuildGraph(exec *par.Runner, z []bitvec.Vector, threshold int, rng *xrand.Stream, rep GraphRep) Graph {
	b, r := ix.Bands, ix.Rows
	if b < 1 {
		b = DefaultBands
	}
	if r < 1 {
		r = DefaultRows
	}
	n := len(z)
	sink := newGraphSink(n, rep)
	if n < 2 {
		return sink.finish(exec)
	}

	// Informative positions: bits where some pair of players disagrees
	// (word-column OR minus AND — commutative reductions, so the parallel
	// fan-out over word columns cannot affect the result). Constant
	// positions contribute nothing to any pairwise distance.
	words := z[0].Words()
	orW := make([]uint64, words)
	andW := make([]uint64, words)
	exec.For(words, func(wi int) {
		o, a := uint64(0), ^uint64(0)
		for p := 0; p < n; p++ {
			w := z[p].Word(wi)
			o |= w
			a &= w
		}
		orW[wi], andW[wi] = o, a
	})
	var positions []int
	for wi := 0; wi < words; wi++ {
		for x := orW[wi] &^ andW[wi]; x != 0; x &= x - 1 {
			positions = append(positions, wi*64+bits.TrailingZeros64(x))
		}
	}

	// Sample the Bands×Rows hash positions from the informative set with
	// replacement, serially from the index stream (deterministic given the
	// seed). With no informative positions every hash below stays at the
	// offset basis and all players share one bucket per band.
	sampled := make([]int32, b*r)
	for i := range sampled {
		if len(positions) == 0 {
			break
		}
		sampled[i] = int32(positions[rng.Intn(len(positions))])
	}

	// Hash every player's bands (parallel over players; pure function of
	// z[p], index-ordered writes into the flat hashes array).
	const (
		fnvOffset = 14695981039346656037
		fnvPrime  = 1099511628211
	)
	hashes := make([]uint64, n*b)
	if len(positions) > 0 {
		exec.For(n, func(p int) {
			v := z[p]
			for band := 0; band < b; band++ {
				h := uint64(fnvOffset)
				for _, pos := range sampled[band*r : (band+1)*r] {
					bit := v.Word(int(pos)>>6) >> (uint(pos) & 63) & 1
					h = (h ^ bit) * fnvPrime
				}
				hashes[p*b+band] = h
			}
		})
	}

	// Bucket players per band (parallel over bands; each band appends its
	// players in id order, buckets in first-touch order, so the flattened
	// task list is schedule-independent). Singleton buckets generate no
	// pairs and are dropped.
	type bucket struct {
		band    int
		members []int32
	}
	perBand := make([][]bucket, b)
	exec.For(b, func(band int) {
		idx := make(map[uint64]int)
		var bks []bucket
		for p := 0; p < n; p++ {
			h := hashes[p*b+band]
			bi, ok := idx[h]
			if !ok {
				bi = len(bks)
				idx[h] = bi
				bks = append(bks, bucket{band: band})
			}
			bks[bi].members = append(bks[bi].members, int32(p))
		}
		perBand[band] = bks
	})
	var tasks []bucket
	for _, bks := range perBand {
		for _, bk := range bks {
			if len(bk.members) > 1 {
				tasks = append(tasks, bk)
			}
		}
	}

	// Verify candidates (parallel over buckets). A pair sharing buckets in
	// several bands is verified exactly once — in the first band where its
	// hashes collide; later bands detect the earlier collision with a cheap
	// hash-prefix comparison and skip. Verified edges accumulate in
	// per-worker buffers and flush into the sink in batches: the graph is
	// the set union of the verified pairs and both sinks ingest edges as an
	// unordered set, so neither the flush order nor the worker assignment
	// can affect the result.
	bufs := make([][][2]int32, exec.Workers(len(tasks)))
	exec.ForWorker(len(tasks), func(wk, t int) {
		bk := tasks[t]
		buf := bufs[wk]
		members := bk.members
		for i := 0; i < len(members); i++ {
			p := int(members[i])
			hp := hashes[p*b : p*b+bk.band]
		pairs:
			for j := i + 1; j < len(members); j++ {
				q := int(members[j])
				hq := hashes[q*b:]
				for e := range hp {
					if hp[e] == hq[e] {
						continue pairs // verified at the earlier band
					}
				}
				if z[p].Hamming(z[q]) <= threshold {
					buf = append(buf, [2]int32{int32(p), int32(q)})
					if len(buf) >= sinkFlushAt {
						sink.flush(buf)
						buf = buf[:0]
					}
				}
			}
		}
		bufs[wk] = buf
	})
	for _, buf := range bufs {
		sink.flush(buf)
	}
	return sink.finish(exec)
}

// IndexSpec is the serializable neighbor-index knob carried by protocol
// parameters, scenario configs, and sweep grids. The zero value selects
// Exact with the auto representation rule — the default, so unset knobs
// keep the historical behavior bit for bit below AutoSparseCutoff (and the
// historical clustering, via a sparse graph, above it). Kind "lsh" selects
// the banding index with the given shape (zero Bands/Rows mean the
// defaults); Graph forces a representation.
type IndexSpec struct {
	// Kind is "" or "exact" for the all-pairs oracle, "lsh" for banding.
	Kind string
	// Bands/Rows shape the LSH index (ignored for exact).
	Bands int
	Rows  int
	// Graph selects the representation: "" or "auto" for the size rule
	// (dense below AutoSparseCutoff), "dense" or "sparse" to force one.
	Graph string
}

// IsExact reports whether the spec selects the exact reference sweep
// (regardless of representation).
func (sp IndexSpec) IsExact() bool { return sp.Kind == "" || sp.Kind == "exact" }

// Rep returns the spec's representation choice.
func (sp IndexSpec) Rep() GraphRep {
	switch sp.Graph {
	case "dense":
		return RepDense
	case "sparse":
		return RepSparse
	}
	return RepAuto
}

// String returns the canonical flag/axis form: "exact", "lsh", or
// "lsh:BANDS:ROWS", with a "+dense"/"+sparse" suffix when a representation
// is forced (auto, the default, has no suffix). ParseIndexSpec inverts it.
func (sp IndexSpec) String() string {
	base := "exact"
	if !sp.IsExact() {
		if sp.Bands == 0 && sp.Rows == 0 {
			base = sp.Kind
		} else {
			base = fmt.Sprintf("%s:%d:%d", sp.Kind, sp.Bands, sp.Rows)
		}
	}
	switch sp.Graph {
	case "dense", "sparse":
		return base + "+" + sp.Graph
	}
	return base
}

// ParseIndexSpec parses the "exact" | "lsh" | "lsh:BANDS:ROWS" forms used
// by Config.NeighborIndex, sweep specs, and cmd/sweep's -nidx flag, each
// optionally suffixed "+dense" | "+sparse" | "+auto" to pick the graph
// representation ("" and "exact" both yield the zero spec, and "+auto"
// normalizes to the empty Graph field, so defaults stay canonical).
// Parsing is strict — wrong field counts, non-positive shapes, and unknown
// representations are rejected rather than silently running a wrong
// experiment.
func ParseIndexSpec(s string) (IndexSpec, error) {
	bad := func() (IndexSpec, error) {
		return IndexSpec{}, fmt.Errorf("cluster: bad neighbor index %q (want exact, lsh, or lsh:BANDS:ROWS with positive shape, optionally +dense/+sparse/+auto)", s)
	}
	base, rep := s, ""
	if i := strings.IndexByte(s, '+'); i >= 0 {
		base, rep = s[:i], s[i+1:]
		switch rep {
		case "auto":
			rep = "" // canonical form of the default rule
		case "dense", "sparse":
		default:
			return bad()
		}
	}
	sp := IndexSpec{Graph: rep}
	switch base {
	case "", "exact":
		return sp, nil
	case "lsh":
		sp.Kind = "lsh"
		return sp, nil
	}
	parts := strings.Split(base, ":")
	if len(parts) != 3 || parts[0] != "lsh" {
		return bad()
	}
	bands, err1 := strconv.Atoi(parts[1])
	rows, err2 := strconv.Atoi(parts[2])
	if err1 != nil || err2 != nil || bands < 1 || rows < 1 {
		return bad()
	}
	sp.Kind, sp.Bands, sp.Rows = "lsh", bands, rows
	return sp, nil
}

// Index resolves the spec to its implementation. It panics on an unknown
// Kind — specs reaching protocol code went through ParseIndexSpec (or are
// zero), so an unknown kind is a programming error, not bad input.
func (sp IndexSpec) Index() NeighborIndex {
	if sp.IsExact() {
		return Exact{}
	}
	if sp.Kind != "lsh" {
		panic(fmt.Sprintf("cluster: unknown neighbor index kind %q", sp.Kind))
	}
	return LSH{Bands: sp.Bands, Rows: sp.Rows}
}

// BuildGraph builds the neighbor graph through the spec'd implementation
// and representation — the one-line seam both protocol call sites use.
func (sp IndexSpec) BuildGraph(exec *par.Runner, z []bitvec.Vector, threshold int, rng *xrand.Stream) Graph {
	return sp.Index().BuildGraph(exec, z, threshold, rng, sp.Rep())
}
