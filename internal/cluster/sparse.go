// Sparse graph representation (DESIGN.md §16). The dense BitGraph spends
// n² bits regardless of how many edges exist — 125 GB at n = 10⁶ — while
// the paper-regime graphs carry only Θ(n·size) edges (every player's
// neighborhood is essentially its cluster, Lemma 8). CSRGraph stores
// exactly those edges in compressed-sparse-row form: one offsets slice and
// one flat slice of sorted per-vertex neighbor lists. Construction goes
// through graphSink, the small seam both edge producers (the exact
// block-pair sweep and the LSH banding index) write through, so either
// producer can fill either representation.
package cluster

import (
	"slices"
	"sync"

	"collabscore/internal/bitvec"
	"collabscore/internal/par"
)

// CSRGraph is the sparse neighbor-graph representation: per-vertex
// neighbor lists sorted by id, compacted into one offsets slice (off, n+1
// entries) and one targets slice (tgt). Memory is Θ(n + edges) instead of
// the BitGraph's n² bits; neighbor iteration is a contiguous scan, and
// Adjacent a binary search of the row. Rows are sorted and deduplicated at
// build time, so iteration order — and therefore the clustering Build
// produces — is a pure function of the edge set, byte-identical to the
// BitGraph over the same edges.
type CSRGraph struct {
	n   int
	off []int64
	tgt []int32
}

// N returns the number of players in the graph.
func (g *CSRGraph) N() int { return g.n }

// Degree returns the degree of player p.
func (g *CSRGraph) Degree(p int) int { return int(g.off[p+1] - g.off[p]) }

// row returns p's sorted neighbor list (a view into tgt).
func (g *CSRGraph) row(p int) []int32 { return g.tgt[g.off[p]:g.off[p+1]] }

// Adjacent reports whether p and q share an edge, by binary search of p's
// sorted row.
func (g *CSRGraph) Adjacent(p, q int) bool {
	_, found := slices.BinarySearch(g.row(p), int32(q))
	return found
}

// Neighbors returns the neighbor ids of player p (nil when isolated,
// matching the dense implementation).
func (g *CSRGraph) Neighbors(p int) []int {
	row := g.row(p)
	if len(row) == 0 {
		return nil
	}
	out := make([]int, len(row))
	for i, q := range row {
		out[i] = int(q)
	}
	return out
}

// VisitNeighbors calls fn on p's neighbors in increasing id order,
// stopping early when fn returns false.
func (g *CSRGraph) VisitNeighbors(p int, fn func(q int) bool) {
	for _, q := range g.row(p) {
		if !fn(int(q)) {
			return
		}
	}
}

// LiveDegree counts p's neighbors still in the alive set — a contiguous
// row scan with one bit test per neighbor, allocation-free.
func (g *CSRGraph) LiveDegree(p int, alive bitvec.Vector) int {
	c := 0
	for _, q := range g.row(p) {
		if alive.Get(int(q)) {
			c++
		}
	}
	return c
}

// AppendLiveNeighbors appends p's surviving neighbors to dst in increasing
// id order (rows are sorted) and returns the extended slice.
func (g *CSRGraph) AppendLiveNeighbors(dst []int, p int, alive bitvec.Vector) []int {
	for _, q := range g.row(p) {
		if alive.Get(int(q)) {
			dst = append(dst, int(q))
		}
	}
	return dst
}

// markLive marks p's surviving neighbors with ids in [wLo·64, wHi·64) in
// dst — the batched peel's dirty marking (see liveMarker), as a contiguous
// row scan. Rows are sorted ascending, so the scan stops at the range end.
func (g *CSRGraph) markLive(dst bitvec.Vector, p int, alive bitvec.Vector, wLo, wHi int) {
	lo, hi := int32(wLo*64), int32(wHi*64)
	for _, q := range g.row(p) {
		if q >= hi {
			return
		}
		if q >= lo && alive.Get(int(q)) {
			dst.Set(int(q), true)
		}
	}
}

// graphSink is the construction seam between edge producers and graph
// representations: producers discover pairs p < q within threshold (in
// whatever order their schedule yields) and flush them in batches; finish
// returns the completed graph. Both implementations treat the edge stream
// as an unordered multiset — duplicates and flush order cannot affect the
// result — which is what lets the producers keep their scheduling freedom
// (DESIGN.md §9) without perturbing the graph.
type graphSink interface {
	// flush ingests a batch of undirected edges {e[0], e[1]}, e[0] ≠ e[1].
	// Safe for concurrent callers; the batch is copied before returning.
	flush(edges [][2]int32)
	// finish completes construction on the given executor (nil means
	// parallel) and returns the graph. Call once, after every flush has
	// returned. The finished graph must be a pure function of the flushed
	// edge multiset — never of the executor's schedule.
	finish(exec *par.Runner) Graph
}

// newGraphSink picks the sink for the resolved representation: the dense
// bitset below the auto cutoff, CSR at or above it (or as forced by rep).
func newGraphSink(n int, rep GraphRep) graphSink {
	if rep.pick(n) == RepSparse {
		return newCSRBuilder(n)
	}
	return &bitSink{g: newBitGraph(n)}
}

// bitSink adapts the dense BitGraph to the sink seam: batches set both
// directions of each edge under a mutex. Set bits are idempotent, so
// duplicate edges and flush order are harmless.
type bitSink struct {
	mu sync.Mutex
	g  *BitGraph
}

func (s *bitSink) flush(edges [][2]int32) {
	s.mu.Lock()
	for _, e := range edges {
		s.g.adj[e[0]].Set(int(e[1]), true)
		s.g.adj[e[1]].Set(int(e[0]), true)
	}
	s.mu.Unlock()
}

func (s *bitSink) finish(*par.Runner) Graph { return s.g }

// csrBuilder accumulates the raw edge stream and compacts it into a
// CSRGraph at finish: count per-vertex degrees (duplicates included),
// prefix-sum into offsets, scatter each edge in both directions, then sort
// every row and deduplicate in place, rewriting the offsets to the
// compacted bounds. Sorting makes the result independent of emission
// order; deduplication makes it independent of multiplicity — together
// the CSR rows are exactly the BitGraph's bit rows read in id order.
type csrBuilder struct {
	mu    sync.Mutex
	n     int
	edges [][2]int32
}

func newCSRBuilder(n int) *csrBuilder { return &csrBuilder{n: n} }

func (b *csrBuilder) flush(edges [][2]int32) {
	b.mu.Lock()
	b.edges = append(b.edges, edges...)
	b.mu.Unlock()
}

func (b *csrBuilder) finish(exec *par.Runner) Graph { return b.buildOn(exec) }

// buildOn is the parallel finish: the scatter pass is unchanged, but the
// per-row sort + dedup — each row is a disjoint slice of tgt, so rows are
// embarrassingly parallel — fans out on the executor, followed by a serial
// prefix sum of the compacted lengths and a parallel copy into a
// fresh, exactly-sized targets slice (rows cannot be compacted left in
// place concurrently: a row's destination overlaps its left neighbor's
// source). Sorting and deduplication make each row a pure function of its
// edge multiset, so the graph is byte-identical to the serial build()
// under every schedule (TestCSRFinishMatchesSerial pins it).
func (b *csrBuilder) buildOn(exec *par.Runner) *CSRGraph {
	n := b.n
	off := make([]int64, n+1)
	for _, e := range b.edges {
		off[e[0]+1]++
		off[e[1]+1]++
	}
	for p := 0; p < n; p++ {
		off[p+1] += off[p]
	}
	raw := make([]int32, off[n])
	cur := make([]int64, n)
	copy(cur, off[:n])
	for _, e := range b.edges {
		raw[cur[e[0]]] = e[1]
		cur[e[0]]++
		raw[cur[e[1]]] = e[0]
		cur[e[1]]++
	}
	b.edges = nil // release the raw stream before the graph outlives us

	// Parallel per-row sort + in-place dedup, recording compacted lengths.
	newLen := make([]int64, n)
	exec.For(n, func(p int) {
		row := raw[off[p]:off[p+1]]
		slices.Sort(row)
		w := 0
		prev := int32(-1)
		for _, q := range row {
			if q != prev {
				row[w] = q
				w++
				prev = q
			}
		}
		newLen[p] = int64(w)
	})

	// Serial prefix sum of the compacted lengths, then a parallel gather
	// into the exactly-sized targets slice.
	newOff := make([]int64, n+1)
	for p := 0; p < n; p++ {
		newOff[p+1] = newOff[p] + newLen[p]
	}
	tgt := make([]int32, newOff[n])
	exec.For(n, func(p int) {
		copy(tgt[newOff[p]:newOff[p+1]], raw[off[p]:off[p]+newLen[p]])
	})
	return &CSRGraph{n: n, off: newOff, tgt: tgt}
}

// build is the serial reference finish the parallel buildOn is pinned
// against: one pass sorts, dedups, and compacts rows left in place.
func (b *csrBuilder) build() *CSRGraph {
	n := b.n
	off := make([]int64, n+1)
	for _, e := range b.edges {
		off[e[0]+1]++
		off[e[1]+1]++
	}
	for p := 0; p < n; p++ {
		off[p+1] += off[p]
	}
	tgt := make([]int32, off[n])
	cur := make([]int64, n)
	copy(cur, off[:n])
	for _, e := range b.edges {
		tgt[cur[e[0]]] = e[1]
		cur[e[0]]++
		tgt[cur[e[1]]] = e[0]
		cur[e[1]]++
	}
	b.edges = nil // release the raw stream before the graph outlives us

	// Sort and deduplicate each row in place. The write cursor w never
	// passes the read position (compaction only shrinks rows), so the
	// compacted prefix of tgt can be rebuilt while the tail is still being
	// read.
	var w int64
	lo := int64(0)
	for p := 0; p < n; p++ {
		hi := off[p+1]
		row := tgt[lo:hi]
		slices.Sort(row)
		off[p] = w
		prev := int32(-1)
		for _, q := range row {
			if q != prev {
				tgt[w] = q
				w++
				prev = q
			}
		}
		lo = hi
	}
	off[n] = w
	if w <= int64(len(tgt))-int64(len(tgt))/8 {
		// Heavy duplication: reallocate to the compact size rather than
		// retaining the oversized backing array for the graph's lifetime.
		tgt = append(make([]int32, 0, w), tgt[:w]...)
	} else {
		tgt = tgt[:w]
	}
	return &CSRGraph{n: n, off: off, tgt: tgt}
}

// sinkFlushAt bounds producers' per-worker edge buffers: big enough to
// amortize the sink mutex, small enough to keep peak buffer memory
// negligible next to the graph itself.
const sinkFlushAt = 1 << 14

// buildCSROn is the exact all-pairs sweep emitting into a CSRGraph — the
// same block-pair partition as BuildGraphOn (see blockRows), but since CSR
// rows cannot be written word-disjointly in place, verified edges
// accumulate in per-worker buffers and flush into the builder in batches.
// The builder sorts and dedups at finish, so the schedule still cannot
// affect the result.
func buildCSROn(exec *par.Runner, z []bitvec.Vector, threshold int) *CSRGraph {
	n := len(z)
	b := newCSRBuilder(n)
	nb := (n + blockRows - 1) / blockRows
	type blockPair struct{ bi, bj int }
	tasks := make([]blockPair, 0, nb*(nb+1)/2)
	for bi := 0; bi < nb; bi++ {
		for bj := bi; bj < nb; bj++ {
			tasks = append(tasks, blockPair{bi, bj})
		}
	}
	bufs := make([][][2]int32, exec.Workers(len(tasks)))
	exec.ForWorker(len(tasks), func(wk, t int) {
		bi, bj := tasks[t].bi, tasks[t].bj
		pHi := min(n, (bi+1)*blockRows)
		qHi := min(n, (bj+1)*blockRows)
		buf := bufs[wk]
		for p := bi * blockRows; p < pHi; p++ {
			qLo := bj * blockRows
			if bi == bj {
				qLo = p + 1
			}
			for q := qLo; q < qHi; q++ {
				if z[p].Hamming(z[q]) <= threshold {
					buf = append(buf, [2]int32{int32(p), int32(q)})
					if len(buf) >= sinkFlushAt {
						b.flush(buf)
						buf = buf[:0]
					}
				}
			}
		}
		bufs[wk] = buf
	})
	for _, buf := range bufs {
		b.flush(buf)
	}
	return b.buildOn(exec)
}
