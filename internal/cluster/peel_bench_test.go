package cluster

import (
	"testing"

	"collabscore/internal/par"
	"collabscore/internal/prefgen"
	"collabscore/internal/xrand"
)

// BenchmarkPeel compares the serial greedy peel (Build) against the batched
// peel (BuildOn) on both graph representations and two qualification
// regimes. "planted" peels 128 clusters — the serial cursor's best case,
// since it row-scans only the seeds it commits, so the chunked prescan's
// extra scans are pure single-core overhead. "scan" sets minSize just past
// every degree, making the peel one full qualification sweep over all n
// rows — the regime the prescan parallelizes; single-core it must hold
// parity, multicore it divides by the worker count.
func BenchmarkPeel(b *testing.B) {
	const n, m, size, d = 4096, 512, 32, 4
	in := prefgen.DiameterClusters(xrand.New(4096), n, m, size, d)
	threshold := 2 * d
	graphs := map[string]Graph{
		"dense":  BuildGraph(in.Truth, threshold),
		"sparse": buildCSROn(nil, in.Truth, threshold),
	}
	regimes := map[string]int{"planted": size, "scan": size + 2}
	exec := par.Parallel()
	for name, g := range graphs {
		for regime, minSize := range regimes {
			b.Run(name+"/"+regime+"/serial", func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					Build(g, minSize)
				}
			})
			b.Run(name+"/"+regime+"/batched", func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					BuildOn(exec, g, minSize)
				}
			})
		}
	}
}

// BenchmarkCSRFinish compares the serial in-place CSR row compaction
// against the parallel finish on a duplicate-heavy edge stream.
func BenchmarkCSRFinish(b *testing.B) {
	const n = 8192
	rng := xrand.New(77)
	var edges [][2]int32
	for i := 0; i < 24*n; i++ {
		p := int32(rng.Intn(n))
		q := int32(rng.Intn(n))
		if p == q {
			continue
		}
		edges = append(edges, [2]int32{p, q}, [2]int32{q, p})
	}
	exec := par.Parallel()
	b.Run("serial", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			bl := newCSRBuilder(n)
			bl.flush(edges)
			bl.build()
		}
	})
	b.Run("parallel", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			bl := newCSRBuilder(n)
			bl.flush(edges)
			bl.buildOn(exec)
		}
	})
}
