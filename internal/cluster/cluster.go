// Package cluster implements step 3 of CalculatePreferences (§6.5): build a
// neighbor graph over players from their estimated preferences on the
// sample set, then peel off clusters of size at least n/B.
//
// Two players share an edge iff their sample-set vectors differ in at most
// the edge threshold (paper: 220·ln n). Lemma 8 shows edges connect only
// players whose true distance is ≤ 84·D, and every player has degree
// ≥ n/B − 1 when the diameter guess D is correct; Lemma 9 shows the peeled
// clusters have size ≥ n/B and diameter O(D).
//
// BuildGraph and Build are pure functions of their inputs (they touch no
// world or board state), so concurrent protocol runs — e.g. parallel
// Byzantine repetitions, DESIGN.md §6 — may call them freely on their own
// z-vectors. Within one run, the O(n²) pairwise sweep is itself
// block-partitioned across the run's executor (BuildGraphOn, DESIGN.md
// §9), and neighbor discovery as a whole is pluggable through the
// NeighborIndex seam (index.go, DESIGN.md §13) — the exact sweep is the
// default and reference oracle, the LSH banding index the sub-quadratic
// alternative. HOW the discovered edges are stored is a second, orthogonal
// seam (DESIGN.md §16): Graph is an interface, BitGraph the dense bitset
// reference implementation, CSRGraph the sparse one that holds only the
// Θ(n·size) edges the index actually emits. The peeling in Build stays
// sequential because each peel depends on which players the previous peel
// removed, and it is a cheap scan over the precomputed adjacency.
package cluster

import (
	"math/bits"

	"collabscore/internal/bitvec"
	"collabscore/internal/par"
)

// Clustering is the output of Build: a partition of (most) players into
// clusters, plus per-player membership. Players with no graph neighbors at
// all remain unassigned (Of[p] == -1); under a correct diameter guess this
// does not happen (Lemma 8), and under wrong guesses the caller's final
// RSelect discards the affected candidate vectors.
type Clustering struct {
	// Clusters lists player ids per cluster.
	Clusters [][]int
	// Of maps player id → cluster index, or -1 if unassigned.
	Of []int
}

// Graph is the neighbor-graph abstraction the clustering consumers use —
// exactly the queries Build's peeling/attachment and the budgets capacity
// iteration need, so any representation that answers them yields
// byte-identical clusterings. BitGraph (dense n-bit adjacency rows, the
// small-n default and reference oracle) and CSRGraph (per-vertex sorted
// edge lists, the at-scale representation) both implement it; the
// representation is chosen through IndexSpec (DESIGN.md §16).
//
// All implementations present neighbors in strictly increasing id order —
// Build's member ordering, and hence the whole downstream protocol,
// depends on it.
type Graph interface {
	// N returns the number of players in the graph.
	N() int
	// Degree returns the degree of player p.
	Degree(p int) int
	// Adjacent reports whether p and q share an edge.
	Adjacent(p, q int) bool
	// VisitNeighbors calls fn on p's neighbors in increasing id order,
	// stopping early when fn returns false — the attachment phases here
	// and in budgets scan until the first assigned neighbor.
	VisitNeighbors(p int, fn func(q int) bool)
	// LiveDegree returns the number of p's neighbors q with alive.Get(q)
	// set — the peel's per-candidate qualification test. Implementations
	// must not allocate (the scan runs once per candidate per round).
	LiveDegree(p int, alive bitvec.Vector) int
	// AppendLiveNeighbors appends p's neighbors q with alive.Get(q) set to
	// dst in increasing id order and returns the extended slice, so the
	// peel can reuse one scratch slice across rounds.
	AppendLiveNeighbors(dst []int, p int, alive bitvec.Vector) []int
}

// BitGraph is the dense neighbor-graph representation: adjacency encoded
// as one bit vector of players per player, enabling word-parallel degree
// counting. Its n² bits make it the reference oracle and the small-n
// default; at large n the CSRGraph holds the same edges in Θ(edges) words.
type BitGraph struct {
	n   int
	adj []bitvec.Vector
}

// blockRows is the row-block granularity of the pairwise sweep. It is a
// multiple of 64 so that a block's column range covers whole words of every
// adjacency row: two tasks writing different column blocks of the same row
// then touch disjoint words of its backing array, which lets the sweep set
// both directions of each edge without locks or merge buffers.
const blockRows = 64

// BuildGraph constructs the dense neighbor graph from sample-set vectors:
// players p and q are adjacent iff |z(p) − z(q)| ≤ threshold. z must
// contain a vector of a common length for every player id in [0,n). It
// runs on the default parallel executor; BuildGraphOn accepts an explicit
// one.
func BuildGraph(z []bitvec.Vector, threshold int) *BitGraph {
	return BuildGraphOn(nil, z, threshold)
}

// BuildGraphOn is BuildGraph under the given executor (nil means parallel;
// par.Serial() gives the reference schedule of DESIGN.md §9).
//
// The O(n²) pairwise-Hamming sweep is the serial bottleneck of the
// clustering step, so it is block-partitioned: rows are cut into
// word-aligned blocks of blockRows players, and each task owns one block
// pair (bi ≤ bj), computing every distance with p < q exactly once and
// setting both adj[p](q) and adj[q](p). Word alignment makes the writes of
// distinct tasks land in disjoint words (see blockRows), so the schedule
// cannot affect the result: the graph is a pure function of z and
// threshold under any executor.
func BuildGraphOn(exec *par.Runner, z []bitvec.Vector, threshold int) *BitGraph {
	n := len(z)
	g := newBitGraph(n)
	sweepPairs(exec, z, threshold, func(p, q int) {
		g.adj[p].Set(q, true)
		g.adj[q].Set(p, true)
	})
	return g
}

// sweepPairs runs the block-partitioned all-pairs sweep and calls emit for
// every pair p < q within threshold. Tasks write through emit concurrently;
// the two callers make that safe in different ways (word-disjoint bitset
// writes here, per-worker buffers in the sparse builder).
func sweepPairs(exec *par.Runner, z []bitvec.Vector, threshold int, emit func(p, q int)) {
	n := len(z)
	nb := (n + blockRows - 1) / blockRows
	type blockPair struct{ bi, bj int }
	tasks := make([]blockPair, 0, nb*(nb+1)/2)
	for bi := 0; bi < nb; bi++ {
		for bj := bi; bj < nb; bj++ {
			tasks = append(tasks, blockPair{bi, bj})
		}
	}
	exec.For(len(tasks), func(t int) {
		bi, bj := tasks[t].bi, tasks[t].bj
		pHi := min(n, (bi+1)*blockRows)
		qHi := min(n, (bj+1)*blockRows)
		for p := bi * blockRows; p < pHi; p++ {
			qLo := bj * blockRows
			if bi == bj {
				qLo = p + 1
			}
			for q := qLo; q < qHi; q++ {
				if z[p].Hamming(z[q]) <= threshold {
					emit(p, q)
				}
			}
		}
	})
}

func newBitGraph(n int) *BitGraph {
	g := &BitGraph{n: n, adj: make([]bitvec.Vector, n)}
	for p := range g.adj {
		g.adj[p] = bitvec.New(n)
	}
	return g
}

// N returns the number of players in the graph.
func (g *BitGraph) N() int { return g.n }

// Degree returns the degree of player p.
func (g *BitGraph) Degree(p int) int { return g.adj[p].Count() }

// Adjacent reports whether p and q share an edge.
func (g *BitGraph) Adjacent(p, q int) bool { return g.adj[p].Get(q) }

// Neighbors returns the neighbor ids of player p.
func (g *BitGraph) Neighbors(p int) []int { return g.adj[p].OnesIndices() }

// VisitNeighbors calls fn on p's neighbors in increasing id order, stopping
// early when fn returns false. It walks the adjacency bitset words directly
// — the allocation-free counterpart of Neighbors for callers that only scan
// until a match (the attachment phases here and in budgets).
func (g *BitGraph) VisitNeighbors(p int, fn func(q int) bool) {
	row := g.adj[p]
	for wi, nw := 0, row.Words(); wi < nw; wi++ {
		for x := row.Word(wi); x != 0; x &= x - 1 {
			if !fn(wi*64 + bits.TrailingZeros64(x)) {
				return
			}
		}
	}
}

// LiveDegree counts p's surviving neighbors by a word-parallel AND
// popcount against the alive set — allocation-free (bitvec.AndCount),
// where the pre-seam peel materialized a fresh n-bit AND vector per
// scanned candidate per round.
func (g *BitGraph) LiveDegree(p int, alive bitvec.Vector) int {
	return g.adj[p].AndCount(alive)
}

// AppendLiveNeighbors appends p's surviving neighbors in increasing id
// order, walking the AND words in place (bitvec.AndOnesInto).
func (g *BitGraph) AppendLiveNeighbors(dst []int, p int, alive bitvec.Vector) []int {
	return g.adj[p].AndOnesInto(alive, dst)
}

// Build peels clusters from the graph per §6.5: repeatedly pick a player
// with at least minSize−1 surviving neighbors, make a cluster of it and its
// surviving neighbors, and remove them; then attach each leftover player to
// a cluster containing one of its original neighbors. It consumes the
// graph purely through the Graph interface, so dense and sparse
// representations of the same edge set produce byte-identical clusterings
// (TestBuildMatchesAcrossRepresentations).
func Build(g Graph, minSize int) *Clustering {
	if minSize < 1 {
		minSize = 1
	}
	n := g.N()
	alive := bitvec.New(n)
	for p := 0; p < n; p++ {
		alive.Set(p, true)
	}
	of := make([]int, n)
	for p := range of {
		of[p] = -1
	}
	var clusters [][]int

	// Peeling phase. Scanning players in id order is deterministic; the
	// paper allows any choice. The scan keeps a monotone cursor rather than
	// restarting at 0 after every peel: removals only ever shrink surviving
	// degree, so a player rejected in an earlier pass can never later
	// qualify — the first qualifying player is always past the previous one
	// (output byte-identical to the full rescan; TestPeelCursorMatchesRescan
	// pins it). The live-neighbor scratch is reused across peels; each
	// cluster still gets its own freshly allocated member slice.
	cursor := 0
	var live []int
	for {
		found := -1
		for p := cursor; p < n; p++ {
			if !alive.Get(p) {
				continue
			}
			if g.LiveDegree(p, alive) >= minSize-1 {
				found = p
				break
			}
		}
		if found < 0 {
			break
		}
		cursor = found + 1
		live = g.AppendLiveNeighbors(live[:0], found, alive)
		members := make([]int, 0, 1+len(live))
		members = append(members, found)
		members = append(members, live...)
		j := len(clusters)
		for _, q := range members {
			alive.Set(q, false)
			of[q] = j
		}
		clusters = append(clusters, members)
	}

	// Attachment phase: leftover players join the cluster of their first
	// (lowest-id) assigned original neighbor (V'_j in the paper), scanning
	// the adjacency in place instead of materializing a neighbor slice per
	// leftover player. Attachment marks of[p] only — nothing reads alive
	// after the peel (a historical alive.Set(p, false) here was a dead
	// write; later iterations test of[q] < 0, and an attached player is a
	// valid attachment target either way).
	for p := 0; p < n; p++ {
		if of[p] >= 0 {
			continue
		}
		g.VisitNeighbors(p, func(q int) bool {
			if of[q] < 0 {
				return true
			}
			of[p] = of[q]
			clusters[of[q]] = append(clusters[of[q]], p)
			return false
		})
	}
	return &Clustering{Clusters: clusters, Of: of}
}

// BuildOn is the batched twin of Build: the same peel, restructured so the
// per-candidate qualification scans — the serial tail of the clustering
// step — run on the given executor (nil means parallel; Build is the
// byte-identity reference oracle, selected at the protocol layer by
// Params.PeelSerial).
//
// The restructuring rests on the peel's monotonicity: removals only ever
// shrink a candidate's surviving neighborhood, so qualification can only
// decay. BuildOn walks the positions in word-aligned chunks: each chunk's
// surviving candidates are prescanned in parallel against the
// chunk-entry alive set, then the serial commit scan replays over the
// chunk keeping a dirty set of players whose neighborhood lost a member
// since that prescan. A candidate that is still clean when the scan
// reaches it has exactly its chunk-entry neighborhood, so the prescan
// verdict is the serial verdict; a dirty candidate whose prescan verdict
// was already negative stays negative by monotonicity; only dirty
// candidates with a positive prescan verdict need an exact serial
// recompute. Every decision the commit scan makes is thus the decision
// Build makes at the same position, and the output clustering is
// byte-identical under every schedule (TestBuildOnMatchesBuild).
//
// Chunking is what keeps the batching from over-scanning: positions peeled
// away before their chunk starts are never prescanned (the serial cursor
// gets the same skip for free), and dirty marking only has to cover the
// current chunk's word range instead of whole adjacency rows.
func BuildOn(exec *par.Runner, g Graph, minSize int) *Clustering {
	if minSize < 1 {
		minSize = 1
	}
	return peelBatched(exec, g, nil, minSize)
}

// BuildByWeightOn is the weighted batched peel used by the budgets
// extension: a candidate seed qualifies when the total weight of its closed
// surviving neighborhood (itself plus its live neighbors) reaches needed.
// Unit weights reduce to BuildOn with minSize = needed. Weights must be
// positive — that is what keeps qualification monotone under removals,
// which the batching depends on (and what the serial capacity peel's
// cursor already depended on).
func BuildByWeightOn(exec *par.Runner, g Graph, weight []int, needed int) *Clustering {
	return peelBatched(exec, g, weight, needed)
}

// liveMarker is the optional word-level fast path for the batched peel's
// dirty marking: mark into dst every surviving neighbor of p whose id lies
// in the word range [wLo·64, wHi·64). BitGraph does it with a word-parallel
// OR-AND over the adjacency row; implementations without it fall back to
// VisitNeighbors.
type liveMarker interface {
	markLive(dst bitvec.Vector, p int, alive bitvec.Vector, wLo, wHi int)
}

func (g *BitGraph) markLive(dst bitvec.Vector, p int, alive bitvec.Vector, wLo, wHi int) {
	row := g.adj[p]
	for wi := wLo; wi < wHi; wi++ {
		if x := row.Word(wi) & alive.Word(wi); x != 0 {
			dst.OrWord(wi, x)
		}
	}
}

// peelChunk is the batched peel's prescan granularity in positions — a
// multiple of 64 so chunk boundaries are word-aligned, which keeps each
// chunk's dirty bits in words no other chunk touches.
const peelChunk = 256

// peelBatched is the engine behind BuildOn and BuildByWeightOn. weight nil
// means unit weights (needed = minSize). See BuildOn for why its output is
// byte-identical to the serial greedy.
func peelBatched(exec *par.Runner, g Graph, weight []int, needed int) *Clustering {
	n := g.N()
	alive := bitvec.New(n)
	for p := 0; p < n; p++ {
		alive.Set(p, true)
	}
	of := make([]int, n)
	for p := range of {
		of[p] = -1
	}
	var clusters [][]int

	marker, _ := g.(liveMarker)
	dirty := bitvec.New(n)
	var live []int
	qual := make([]bool, peelChunk)
	for base := 0; base < n; base += peelChunk {
		hi := base + peelChunk
		if hi > n {
			hi = n
		}
		// Parallel prescan of the chunk's surviving candidates against the
		// chunk-entry alive set. Positions peeled by earlier chunks cost
		// nothing — exactly the skip the serial cursor gets.
		exec.For(hi-base, func(i int) {
			p := base + i
			if !alive.Get(p) {
				qual[i] = false
				return
			}
			if weight == nil {
				qual[i] = g.LiveDegree(p, alive) >= needed-1
				return
			}
			sum := weight[p]
			g.VisitNeighbors(p, func(q int) bool {
				if alive.Get(q) {
					sum += weight[q]
				}
				return true
			})
			qual[i] = sum >= needed
		})

		// Serial commit scan of the chunk. dirty marks players whose
		// neighborhood has lost a member since this chunk's prescan; only
		// those can disagree with it.
		wLo, wHi := base/64, (hi+63)/64
		for p := base; p < hi; p++ {
			if !alive.Get(p) || !qual[p-base] {
				continue
			}
			if dirty.Get(p) {
				// Stale verdict: recompute exactly as the serial peel would.
				if weight == nil {
					if g.LiveDegree(p, alive) < needed-1 {
						continue
					}
				} else {
					sum := weight[p]
					g.VisitNeighbors(p, func(q int) bool {
						if alive.Get(q) {
							sum += weight[q]
						}
						return true
					})
					if sum < needed {
						continue
					}
				}
			}
			live = g.AppendLiveNeighbors(live[:0], p, alive)
			members := make([]int, 0, 1+len(live))
			members = append(members, p)
			members = append(members, live...)
			j := len(clusters)
			for _, q := range members {
				alive.Set(q, false)
				of[q] = j
			}
			clusters = append(clusters, members)
			// Mark survivors that just lost a neighbor — only within this
			// chunk's word range; later chunks get a fresh prescan. The seed
			// needs no marking pass: any survivor adjacent to it would have
			// been live, hence a member, hence not a survivor.
			for _, q := range members[1:] {
				if marker != nil {
					marker.markLive(dirty, q, alive, wLo, wHi)
					continue
				}
				g.VisitNeighbors(q, func(r int) bool {
					if r >= hi {
						return false
					}
					if r >= base && alive.Get(r) {
						dirty.Set(r, true)
					}
					return true
				})
			}
		}
	}

	// Attachment phase, verbatim from Build: leftovers join the cluster of
	// their first assigned original neighbor.
	for p := 0; p < n; p++ {
		if of[p] >= 0 {
			continue
		}
		g.VisitNeighbors(p, func(q int) bool {
			if of[q] < 0 {
				return true
			}
			of[p] = of[q]
			clusters[of[q]] = append(clusters[of[q]], p)
			return false
		})
	}
	return &Clustering{Clusters: clusters, Of: of}
}

// Diameter computes the exact maximum pairwise Hamming distance of the
// given players' vectors. Measurement/testing helper; DiameterOn accepts
// an explicit executor.
func Diameter(vecs []bitvec.Vector, members []int) int {
	return DiameterOn(nil, vecs, members)
}

// DiameterOn is Diameter under the given executor (nil means parallel).
// The pairwise max sweep fans out per anchor index with a private maximum
// each, merged by a final max-reduce — commutative, so the result is
// schedule-independent.
func DiameterOn(exec *par.Runner, vecs []bitvec.Vector, members []int) int {
	k := len(members)
	rowMax := par.MapOn(exec, k, func(i int) int {
		mx := 0
		for j := i + 1; j < k; j++ {
			if d := vecs[members[i]].Hamming(vecs[members[j]]); d > mx {
				mx = d
			}
		}
		return mx
	})
	mx := 0
	for _, d := range rowMax {
		if d > mx {
			mx = d
		}
	}
	return mx
}

// MinClusterSize returns the size of the smallest cluster, or 0 if there
// are none.
func (c *Clustering) MinClusterSize() int {
	if len(c.Clusters) == 0 {
		return 0
	}
	mn := len(c.Clusters[0])
	for _, cl := range c.Clusters[1:] {
		if len(cl) < mn {
			mn = len(cl)
		}
	}
	return mn
}

// Unassigned returns the ids of players not placed in any cluster.
func (c *Clustering) Unassigned() []int {
	var out []int
	for p, j := range c.Of {
		if j < 0 {
			out = append(out, p)
		}
	}
	return out
}
