// Package cluster implements step 3 of CalculatePreferences (§6.5): build a
// neighbor graph over players from their estimated preferences on the
// sample set, then peel off clusters of size at least n/B.
//
// Two players share an edge iff their sample-set vectors differ in at most
// the edge threshold (paper: 220·ln n). Lemma 8 shows edges connect only
// players whose true distance is ≤ 84·D, and every player has degree
// ≥ n/B − 1 when the diameter guess D is correct; Lemma 9 shows the peeled
// clusters have size ≥ n/B and diameter O(D).
//
// BuildGraph and Build are pure functions of their inputs (they touch no
// world or board state), so concurrent protocol runs — e.g. parallel
// Byzantine repetitions, DESIGN.md §6 — may call them freely on their own
// z-vectors. Within one run, the O(n²) pairwise sweep is itself
// block-partitioned across the run's executor (BuildGraphOn, DESIGN.md
// §9), and neighbor discovery as a whole is pluggable through the
// NeighborIndex seam (index.go, DESIGN.md §13) — the exact sweep is the
// default and reference oracle, the LSH banding index the sub-quadratic
// alternative. The peeling in Build stays sequential because each peel
// depends on which players the previous peel removed, and it is a cheap
// bitset scan over the precomputed adjacency.
package cluster

import (
	"math/bits"

	"collabscore/internal/bitvec"
	"collabscore/internal/par"
)

// Clustering is the output of Build: a partition of (most) players into
// clusters, plus per-player membership. Players with no graph neighbors at
// all remain unassigned (Of[p] == -1); under a correct diameter guess this
// does not happen (Lemma 8), and under wrong guesses the caller's final
// RSelect discards the affected candidate vectors.
type Clustering struct {
	// Clusters lists player ids per cluster.
	Clusters [][]int
	// Of maps player id → cluster index, or -1 if unassigned.
	Of []int
}

// Graph is the neighbor graph: adjacency encoded as one bit vector of
// players per player, enabling word-parallel degree counting.
type Graph struct {
	n   int
	adj []bitvec.Vector
}

// blockRows is the row-block granularity of the pairwise sweep. It is a
// multiple of 64 so that a block's column range covers whole words of every
// adjacency row: two tasks writing different column blocks of the same row
// then touch disjoint words of its backing array, which lets the sweep set
// both directions of each edge without locks or merge buffers.
const blockRows = 64

// BuildGraph constructs the neighbor graph from sample-set vectors: players
// p and q are adjacent iff |z(p) − z(q)| ≤ threshold. z must contain a
// vector of a common length for every player id in [0,n). It runs on the
// default parallel executor; BuildGraphOn accepts an explicit one.
func BuildGraph(z []bitvec.Vector, threshold int) *Graph {
	return BuildGraphOn(nil, z, threshold)
}

// BuildGraphOn is BuildGraph under the given executor (nil means parallel;
// par.Serial() gives the reference schedule of DESIGN.md §9).
//
// The O(n²) pairwise-Hamming sweep is the serial bottleneck of the
// clustering step, so it is block-partitioned: rows are cut into
// word-aligned blocks of blockRows players, and each task owns one block
// pair (bi ≤ bj), computing every distance with p < q exactly once and
// setting both adj[p](q) and adj[q](p). Word alignment makes the writes of
// distinct tasks land in disjoint words (see blockRows), so the schedule
// cannot affect the result: the graph is a pure function of z and
// threshold under any executor.
func BuildGraphOn(exec *par.Runner, z []bitvec.Vector, threshold int) *Graph {
	n := len(z)
	g := &Graph{n: n, adj: make([]bitvec.Vector, n)}
	for p := range g.adj {
		g.adj[p] = bitvec.New(n)
	}
	nb := (n + blockRows - 1) / blockRows
	type blockPair struct{ bi, bj int }
	tasks := make([]blockPair, 0, nb*(nb+1)/2)
	for bi := 0; bi < nb; bi++ {
		for bj := bi; bj < nb; bj++ {
			tasks = append(tasks, blockPair{bi, bj})
		}
	}
	exec.For(len(tasks), func(t int) {
		bi, bj := tasks[t].bi, tasks[t].bj
		pHi := min(n, (bi+1)*blockRows)
		qHi := min(n, (bj+1)*blockRows)
		for p := bi * blockRows; p < pHi; p++ {
			qLo := bj * blockRows
			if bi == bj {
				qLo = p + 1
			}
			for q := qLo; q < qHi; q++ {
				if z[p].Hamming(z[q]) <= threshold {
					g.adj[p].Set(q, true)
					g.adj[q].Set(p, true)
				}
			}
		}
	})
	return g
}

// N returns the number of players in the graph.
func (g *Graph) N() int { return g.n }

// Degree returns the degree of player p.
func (g *Graph) Degree(p int) int { return g.adj[p].Count() }

// Adjacent reports whether p and q share an edge.
func (g *Graph) Adjacent(p, q int) bool { return g.adj[p].Get(q) }

// Neighbors returns the neighbor ids of player p.
func (g *Graph) Neighbors(p int) []int { return g.adj[p].OnesIndices() }

// VisitNeighbors calls fn on p's neighbors in increasing id order, stopping
// early when fn returns false. It walks the adjacency bitset words directly
// — the allocation-free counterpart of Neighbors for callers that only scan
// until a match (the attachment phases here and in budgets).
func (g *Graph) VisitNeighbors(p int, fn func(q int) bool) {
	row := g.adj[p]
	for wi, nw := 0, row.Words(); wi < nw; wi++ {
		for x := row.Word(wi); x != 0; x &= x - 1 {
			if !fn(wi*64 + bits.TrailingZeros64(x)) {
				return
			}
		}
	}
}

// Build peels clusters from the graph per §6.5: repeatedly pick a player
// with at least minSize−1 surviving neighbors, make a cluster of it and its
// surviving neighbors, and remove them; then attach each leftover player to
// a cluster containing one of its original neighbors.
func Build(g *Graph, minSize int) *Clustering {
	if minSize < 1 {
		minSize = 1
	}
	n := g.n
	alive := bitvec.New(n)
	for p := 0; p < n; p++ {
		alive.Set(p, true)
	}
	of := make([]int, n)
	for p := range of {
		of[p] = -1
	}
	var clusters [][]int

	// Peeling phase. Scanning players in id order is deterministic; the
	// paper allows any choice. The scan keeps a monotone cursor rather than
	// restarting at 0 after every peel: removals only ever shrink surviving
	// degree, so a player rejected in an earlier pass can never later
	// qualify — the first qualifying player is always past the previous one
	// (output byte-identical to the full rescan; TestPeelCursorMatchesRescan
	// pins it).
	cursor := 0
	for {
		found := -1
		for p := cursor; p < n; p++ {
			if !alive.Get(p) {
				continue
			}
			if g.adj[p].And(alive).Count() >= minSize-1 {
				found = p
				break
			}
		}
		if found < 0 {
			break
		}
		cursor = found + 1
		members := append([]int{found}, g.adj[found].And(alive).OnesIndices()...)
		j := len(clusters)
		for _, q := range members {
			alive.Set(q, false)
			of[q] = j
		}
		clusters = append(clusters, members)
	}

	// Attachment phase: leftover players join the cluster of their first
	// (lowest-id) assigned original neighbor (V'_j in the paper), scanning
	// the adjacency words in place instead of materializing a neighbor
	// slice per leftover player.
	for p := 0; p < n; p++ {
		if !alive.Get(p) {
			continue
		}
		g.VisitNeighbors(p, func(q int) bool {
			if of[q] < 0 {
				return true
			}
			of[p] = of[q]
			clusters[of[q]] = append(clusters[of[q]], p)
			alive.Set(p, false)
			return false
		})
	}
	return &Clustering{Clusters: clusters, Of: of}
}

// Diameter computes the exact maximum pairwise Hamming distance of the
// given players' vectors. Measurement/testing helper; DiameterOn accepts
// an explicit executor.
func Diameter(vecs []bitvec.Vector, members []int) int {
	return DiameterOn(nil, vecs, members)
}

// DiameterOn is Diameter under the given executor (nil means parallel).
// The pairwise max sweep fans out per anchor index with a private maximum
// each, merged by a final max-reduce — commutative, so the result is
// schedule-independent.
func DiameterOn(exec *par.Runner, vecs []bitvec.Vector, members []int) int {
	k := len(members)
	rowMax := par.MapOn(exec, k, func(i int) int {
		mx := 0
		for j := i + 1; j < k; j++ {
			if d := vecs[members[i]].Hamming(vecs[members[j]]); d > mx {
				mx = d
			}
		}
		return mx
	})
	mx := 0
	for _, d := range rowMax {
		if d > mx {
			mx = d
		}
	}
	return mx
}

// MinClusterSize returns the size of the smallest cluster, or 0 if there
// are none.
func (c *Clustering) MinClusterSize() int {
	if len(c.Clusters) == 0 {
		return 0
	}
	mn := len(c.Clusters[0])
	for _, cl := range c.Clusters[1:] {
		if len(cl) < mn {
			mn = len(cl)
		}
	}
	return mn
}

// Unassigned returns the ids of players not placed in any cluster.
func (c *Clustering) Unassigned() []int {
	var out []int
	for p, j := range c.Of {
		if j < 0 {
			out = append(out, p)
		}
	}
	return out
}
