package election

import (
	"testing"

	"collabscore/internal/adversary"
	"collabscore/internal/prefgen"
	"collabscore/internal/world"
	"collabscore/internal/xrand"
)

func electionWorld(seed uint64, n int) *world.World {
	in := prefgen.Uniform(xrand.New(seed), n, 4)
	return world.New(in.Truth)
}

func TestAllHonestElectsSomeone(t *testing.T) {
	w := electionWorld(1, 64)
	res := Run(w, xrand.New(2), nil, Defaults())
	if res.Leader < 0 || res.Leader >= 64 {
		t.Fatalf("invalid leader %d", res.Leader)
	}
	if res.Rounds == 0 {
		t.Fatal("no rounds recorded")
	}
}

func TestSinglePlayer(t *testing.T) {
	w := electionWorld(3, 1)
	res := Run(w, xrand.New(4), nil, Defaults())
	if res.Leader != 0 {
		t.Fatalf("leader = %d, want 0", res.Leader)
	}
}

func TestDeterministicGivenStream(t *testing.T) {
	w := electionWorld(5, 128)
	a := Run(w, xrand.New(6), nil, Defaults())
	b := Run(w, xrand.New(6), nil, Defaults())
	if a.Leader != b.Leader || a.Rounds != b.Rounds {
		t.Fatal("election nondeterministic for same stream")
	}
}

func TestLeadersVaryAcrossStreams(t *testing.T) {
	w := electionWorld(7, 128)
	seen := map[int]bool{}
	for i := uint64(0); i < 20; i++ {
		seen[Run(w, xrand.New(100+i), nil, Defaults()).Leader] = true
	}
	if len(seen) < 5 {
		t.Fatalf("only %d distinct leaders in 20 elections — not random enough", len(seen))
	}
}

// TestHonestLeaderRateNoAdversary: with everyone honest the leader is
// trivially always honest.
func TestHonestLeaderRateNoAdversary(t *testing.T) {
	w := electionWorld(8, 64)
	if rate := HonestLeaderRate(w, xrand.New(9), nil, Defaults(), 20); rate != 1 {
		t.Fatalf("honest rate %v, want 1", rate)
	}
}

// TestHonestLeaderRateUnderAttack is the §7.1 requirement: with a third of
// the players dishonest and rushing greedily, an honest leader must still
// be elected with constant probability.
func TestHonestLeaderRateUnderAttack(t *testing.T) {
	const n = 192
	w := electionWorld(10, n)
	adversary.Corrupt(w, n/3, xrand.New(11).Perm(n), func(p int) world.Behavior {
		return adversary.RandomLiar{Seed: 3}
	})
	rate := HonestLeaderRate(w, xrand.New(12), GreedyLightest{}, Defaults(), 100)
	if rate < 0.25 {
		t.Fatalf("honest-leader rate %.2f under greedy attack, want ≥ 0.25", rate)
	}
}

// TestSmallDishonestFractionBarelyHurts: at the protocol's actual tolerance
// (n/(3B) with B ≥ 1, i.e. ≤ 1/3 and usually far less) the honest rate
// should be high.
func TestSmallDishonestFractionBarelyHurts(t *testing.T) {
	const n = 192
	w := electionWorld(13, n)
	adversary.Corrupt(w, n/24, xrand.New(14).Perm(n), func(p int) world.Behavior {
		return adversary.RandomLiar{Seed: 5}
	})
	rate := HonestLeaderRate(w, xrand.New(15), GreedyLightest{}, Defaults(), 100)
	if rate < 0.7 {
		t.Fatalf("honest-leader rate %.2f with 1/24 dishonest, want ≥ 0.7", rate)
	}
}

func TestSpreadStrategyIsHarmless(t *testing.T) {
	const n = 128
	w := electionWorld(16, n)
	adversary.Corrupt(w, n/3, xrand.New(17).Perm(n), func(p int) world.Behavior {
		return adversary.RandomLiar{Seed: 7}
	})
	rate := HonestLeaderRate(w, xrand.New(18), Spread{Seed: 1}, Defaults(), 100)
	// Spreading like honest players: honest rate ≈ honest fraction (2/3).
	if rate < 0.5 {
		t.Fatalf("honest rate %.2f under null attack, want ≥ 0.5", rate)
	}
}

func TestGreedyLightestChoosesLightest(t *testing.T) {
	g := GreedyLightest{}
	if b := g.ChooseBin(0, 0, []int{5, 2, 7, 2}); b != 1 {
		t.Fatalf("ChooseBin = %d, want 1 (first lightest)", b)
	}
}

func TestSpreadInRange(t *testing.T) {
	s := Spread{Seed: 9}
	for p := 0; p < 50; p++ {
		b := s.ChooseBin(p, 3, make([]int, 7))
		if b < 0 || b >= 7 {
			t.Fatalf("Spread bin %d out of range", b)
		}
	}
}

func TestSurvivorsShrink(t *testing.T) {
	w := electionWorld(19, 256)
	res := Run(w, xrand.New(20), nil, Defaults())
	prev := 256
	for _, s := range res.Survived {
		if len(s) > prev {
			t.Fatalf("survivor set grew: %d → %d", prev, len(s))
		}
		prev = len(s)
	}
	if len(res.Survived[len(res.Survived)-1]) != 1 {
		t.Fatal("final round did not reduce to one leader")
	}
}
