// Package election implements the Byzantine-tolerant leader election used
// in §7.1 to generate shared randomness: Feige's lightest-bin protocol [10]
// over the bulletin board.
//
// In each round, every surviving player announces a bin; the occupants of
// the lightest bin survive to the next round, everyone else is eliminated.
// Honest players choose bins uniformly at random. Dishonest players are
// "rushing": they see every honest announcement before choosing (the
// strongest full-information adversary). The key property (Feige [10]) is
// that dishonest players cannot disproportionately crowd into the lightest
// bin — if they do, it stops being lightest — so the surviving set keeps
// roughly the original honest fraction and an honest leader is elected with
// constant probability (Ω(δ^1.65) for honest fraction (1+δ)/2).
package election

import (
	"math"

	"collabscore/internal/xrand"
)

// Roster is the view of the player population the election needs: how many
// players there are and which follow the protocol. Both the binary world
// (world.World) and the rating-scale world (multival.World) satisfy it.
type Roster interface {
	N() int
	IsHonest(p int) bool
}

// BinStrategy decides, for a rushing dishonest player, which bin to join
// given the current honest tallies. Implementations see everything.
type BinStrategy interface {
	// ChooseBin returns the bin for dishonest player p. tallies holds the
	// current occupancy of each bin (honest players plus dishonest players
	// that have already chosen this round).
	ChooseBin(p, round int, tallies []int) int
}

// GreedyLightest is the canonical rushing attack: each dishonest player
// joins the currently lightest bin, maximizing its own survival chance.
type GreedyLightest struct{}

// ChooseBin returns the index of the lightest bin (ties to the lowest id).
func (GreedyLightest) ChooseBin(_, _ int, tallies []int) int {
	best, bestLoad := 0, math.MaxInt
	for b, t := range tallies {
		if t < bestLoad {
			best, bestLoad = b, t
		}
	}
	return best
}

// Spread makes dishonest players spread uniformly (the honest strategy),
// a null attack useful as a control.
type Spread struct{ Seed uint64 }

// ChooseBin returns a deterministic pseudo-random bin.
func (s Spread) ChooseBin(p, round int, tallies []int) int {
	x := s.Seed ^ uint64(p)<<20 ^ uint64(round)
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	return int(x % uint64(len(tallies)))
}

// Params configures the tournament shape.
type Params struct {
	// LoadFactor sets the target expected bin load: each round uses
	// max(2, ⌈|R|/LoadFactor⌉) bins. Loads of Θ(log n) give the
	// concentration Feige's analysis needs.
	LoadFactor int
}

// Defaults returns a load factor of 8.
func Defaults() Params { return Params{LoadFactor: 8} }

// Result reports the elected leader and per-round survivor counts.
type Result struct {
	Leader   int
	Rounds   int
	Survived [][]int // survivors after each round
}

// Run elects a leader among all players of w. rng supplies the honest
// players' private coins (split per player and round). strategy drives the
// dishonest players; nil defaults to GreedyLightest.
//
// Run only reads the roster and consumes its own rng, so concurrent
// elections — one per parallel Byzantine repetition (DESIGN.md §6) — are
// safe as long as each call gets a dedicated stream; BinStrategy
// implementations must likewise be safe for concurrent use (the in-tree
// ones are stateless).
func Run(w Roster, rng *xrand.Stream, strategy BinStrategy, pr Params) Result {
	if strategy == nil {
		strategy = GreedyLightest{}
	}
	if pr.LoadFactor < 2 {
		pr.LoadFactor = 2
	}
	alive := make([]int, w.N())
	for i := range alive {
		alive[i] = i
	}
	res := Result{}
	for round := 0; len(alive) > 1; round++ {
		numBins := (len(alive) + pr.LoadFactor - 1) / pr.LoadFactor
		if numBins < 2 {
			numBins = 2
		}
		tallies := make([]int, numBins)
		choice := make(map[int]int, len(alive))

		// Honest players announce first (uniform private coins)...
		for _, p := range alive {
			if !w.IsHonest(p) {
				continue
			}
			b := rng.Split(uint64(round), uint64(p)).Intn(numBins)
			choice[p] = b
			tallies[b]++
		}
		// ...then the rushing dishonest players, one by one.
		for _, p := range alive {
			if w.IsHonest(p) {
				continue
			}
			b := strategy.ChooseBin(p, round, tallies)
			if b < 0 || b >= numBins {
				b = 0
			}
			choice[p] = b
			tallies[b]++
		}

		// The lightest non-empty bin survives (ties to the lowest index).
		lightest, load := -1, math.MaxInt
		for b, t := range tallies {
			if t > 0 && t < load {
				lightest, load = b, t
			}
		}
		var next []int
		for _, p := range alive {
			if choice[p] == lightest {
				next = append(next, p)
			}
		}
		if len(next) == len(alive) {
			// Degenerate round (everyone in one bin): split by parity of a
			// fresh coin to guarantee progress.
			var forced []int
			for _, p := range alive {
				if rng.Split(uint64(round), 0xDEAD, uint64(p)).Bool() {
					forced = append(forced, p)
				}
			}
			if len(forced) > 0 && len(forced) < len(alive) {
				next = forced
			} else {
				next = alive[:1]
			}
		}
		alive = next
		res.Rounds++
		cp := make([]int, len(alive))
		copy(cp, alive)
		res.Survived = append(res.Survived, cp)
	}
	res.Leader = alive[0]
	return res
}

// HonestLeaderRate runs the election k times with independent coins and
// returns the fraction of runs electing an honest leader. Measurement
// helper for experiment E11.
func HonestLeaderRate(w Roster, baseRng *xrand.Stream, strategy BinStrategy, pr Params, k int) float64 {
	honest := 0
	for i := 0; i < k; i++ {
		r := Run(w, baseRng.Split(uint64(i)), strategy, pr)
		if w.IsHonest(r.Leader) {
			honest++
		}
	}
	return float64(honest) / float64(k)
}
