// Package lru provides a small, mutex-guarded LRU cache with deterministic
// eviction order. It backs the lazy truth sources' tile caches (DESIGN.md
// §14): generated truth tiles are immutable, so a cache hit hands out the
// same words a recomputation would produce — the cache changes where bits
// come from, never what they are — and eviction merely drops a reference.
//
// Determinism note: the cache accelerates pure functions. Protocol results
// must not depend on cache state, and they cannot: Get either returns a
// previously inserted value (bit-identical to recomputation by the purity of
// the fill function) or misses, in which case the caller recomputes. The
// oracle tests pin hit ≡ recompute under concurrent probes.
package lru

import (
	"container/list"
	"sync"
)

// Cache is a fixed-capacity LRU map from K to V. The zero value is unusable;
// use New. A nil *Cache is a valid cacheless cache: every Get misses and
// every Put is a no-op, so callers need no branches for the uncached case.
//
// All methods are safe for concurrent use. Recency order is mutation order
// under the internal mutex: a Get that hits moves the entry to
// most-recently-used; a Put that exceeds capacity evicts the
// least-recently-used entry.
type Cache[K comparable, V any] struct {
	mu       sync.Mutex
	capacity int
	ll       *list.List // front = most recently used
	items    map[K]*list.Element
}

type entry[K comparable, V any] struct {
	key K
	val V
}

// New returns an LRU cache holding at most capacity entries. A capacity
// ≤ 0 returns nil — the cacheless cache — so "lazy" (no tiles) and
// "lazy:TILES" share one code path.
func New[K comparable, V any](capacity int) *Cache[K, V] {
	if capacity <= 0 {
		return nil
	}
	return &Cache[K, V]{
		capacity: capacity,
		ll:       list.New(),
		items:    make(map[K]*list.Element, capacity),
	}
}

// Get returns the cached value for key and whether it was present, marking
// the entry most-recently-used on a hit. A nil cache always misses.
func (c *Cache[K, V]) Get(key K) (V, bool) {
	if c == nil {
		var zero V
		return zero, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		var zero V
		return zero, false
	}
	c.ll.MoveToFront(el)
	return el.Value.(*entry[K, V]).val, true
}

// Put inserts or refreshes key → val, evicting the least-recently-used
// entry when the cache is over capacity. Inserting an existing key updates
// its value and marks it most-recently-used. A nil cache ignores the call.
func (c *Cache[K, V]) Put(key K, val V) {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		el.Value.(*entry[K, V]).val = val
		c.ll.MoveToFront(el)
		return
	}
	c.items[key] = c.ll.PushFront(&entry[K, V]{key: key, val: val})
	if c.ll.Len() > c.capacity {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.items, oldest.Value.(*entry[K, V]).key)
	}
}

// Len returns the number of cached entries (0 for a nil cache).
func (c *Cache[K, V]) Len() int {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// Cap returns the capacity (0 for a nil cache).
func (c *Cache[K, V]) Cap() int {
	if c == nil {
		return 0
	}
	return c.capacity
}

// Keys returns the cached keys from most- to least-recently-used — the
// reverse of eviction order. It exists for the eviction-order tests; a nil
// cache returns nil.
func (c *Cache[K, V]) Keys() []K {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]K, 0, c.ll.Len())
	for el := c.ll.Front(); el != nil; el = el.Next() {
		out = append(out, el.Value.(*entry[K, V]).key)
	}
	return out
}
