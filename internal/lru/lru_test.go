package lru

import (
	"fmt"
	"sync"
	"testing"
)

// TestEvictionOrder pins the LRU discipline exactly: fills, hits, and
// over-capacity Puts must evict in least-recently-used order.
func TestEvictionOrder(t *testing.T) {
	c := New[int, string](3)
	c.Put(1, "a")
	c.Put(2, "b")
	c.Put(3, "c")
	wantKeys(t, c, []int{3, 2, 1})

	// A hit refreshes recency: 1 becomes most recent.
	if v, ok := c.Get(1); !ok || v != "a" {
		t.Fatalf("Get(1) = %q, %v", v, ok)
	}
	wantKeys(t, c, []int{1, 3, 2})

	// Over capacity: 2 is now the LRU entry and must go.
	c.Put(4, "d")
	wantKeys(t, c, []int{4, 1, 3})
	if _, ok := c.Get(2); ok {
		t.Fatal("evicted key 2 still present")
	}

	// Updating an existing key refreshes recency without evicting.
	c.Put(3, "c2")
	wantKeys(t, c, []int{3, 4, 1})
	if v, _ := c.Get(3); v != "c2" {
		t.Fatalf("updated value = %q, want c2", v)
	}
	if c.Len() != 3 {
		t.Fatalf("Len = %d, want 3", c.Len())
	}
}

func wantKeys(t *testing.T, c *Cache[int, string], want []int) {
	t.Helper()
	got := c.Keys()
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("Keys = %v, want %v", got, want)
	}
}

// TestCapacityOne degenerates to a single-entry cache: every insert of a
// new key evicts the previous one.
func TestCapacityOne(t *testing.T) {
	c := New[int, int](1)
	c.Put(1, 10)
	c.Put(2, 20)
	if _, ok := c.Get(1); ok {
		t.Fatal("capacity-1 cache kept two entries")
	}
	if v, ok := c.Get(2); !ok || v != 20 {
		t.Fatalf("Get(2) = %d, %v", v, ok)
	}
}

// TestZeroCapacityIsCacheless pins the nil-cache contract: New(0) and
// New(-1) return nil, and a nil cache misses every Get, ignores every Put,
// and reports empty — the "lazy" (no tiles) configuration.
func TestZeroCapacityIsCacheless(t *testing.T) {
	for _, capacity := range []int{0, -5} {
		c := New[string, int](capacity)
		if c != nil {
			t.Fatalf("New(%d) != nil", capacity)
		}
		c.Put("k", 1) // must not panic
		if _, ok := c.Get("k"); ok {
			t.Fatal("nil cache hit")
		}
		if c.Len() != 0 || c.Cap() != 0 || c.Keys() != nil {
			t.Fatal("nil cache reports non-empty state")
		}
	}
}

// TestConcurrentAccess hammers one cache from several goroutines under the
// race detector. Values are pure functions of their keys, so every hit must
// return exactly what a recomputation would — the bit-identity contract the
// lazy tile caches rely on.
func TestConcurrentAccess(t *testing.T) {
	c := New[int, uint64](16)
	value := func(k int) uint64 { return uint64(k) * 0x9e3779b97f4a7c15 }
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 2000; i++ {
				k := (g*7 + i) % 64
				v, ok := c.Get(k)
				if !ok {
					v = value(k)
					c.Put(k, v)
				}
				if v != value(k) {
					t.Errorf("key %d: cached %#x, recompute %#x", k, v, value(k))
					return
				}
			}
		}(g)
	}
	wg.Wait()
	if c.Len() > 16 {
		t.Fatalf("Len %d exceeds capacity", c.Len())
	}
}
