package selection

import (
	"testing"

	"collabscore/internal/bitvec"
	"collabscore/internal/xrand"
)

// stridedObjs returns m positions spread over a larger object space with
// the given stride — the shape of SmallRadius's per-group object lists,
// where consecutive candidate positions map to scattered world words.
func stridedObjs(m, stride int) []int {
	out := make([]int, m)
	for i := range out {
		out[i] = i * stride
	}
	return out
}

// TestDuelStreamMatchesSerial: the word-block streaming duel is
// byte-identical to the bit-at-a-time reference — same verdict, same
// probe charges, and the same coins consumed — across object mappings
// (identity and strided), distances (equal, below budget, above budget),
// and budgets (including the heap-spill regime past maxPairBudget).
func TestDuelStreamMatchesSerial(t *testing.T) {
	const n = 4
	cases := []struct {
		name   string
		objs   []int
		worldM int
	}{
		{"identity", identityObjs(512), 512},
		{"identity-odd", identityObjs(413), 413},
		{"strided", stridedObjs(96, 7), 96 * 7},
		{"tiny", identityObjs(40), 40},
	}
	for _, tc := range cases {
		mc := len(tc.objs)
		base := buildWorld(21, n, tc.worldM)
		truth := base.TruthVector(0).Gather(tc.objs)
		pairs := []struct {
			name  string
			flips int
		}{
			{"equal", 0},
			{"near", 5},
			{"mid", mc / 8},
			{"far", mc / 2},
		}
		for _, pb := range pairs {
			for _, budget := range []int{4, 13, 200} {
				a := truth.Clone()
				b := flipped(truth, xrand.New(uint64(pb.flips)*3+1), pb.flips)
				// Fresh, identical worlds per path so probe counters and
				// memo state compare exactly.
				ws := buildWorld(21, n, tc.worldM)
				wb := buildWorld(21, n, tc.worldM)
				rs := xrand.New(77)
				rb := xrand.New(77)
				ctxS := duelCtx{w: ws, p: 0, objs: tc.objs, ident: identObjs(tc.objs), serial: true}
				ctxB := duelCtx{w: wb, p: 0, objs: tc.objs, ident: identObjs(tc.objs)}
				agreeS, totalS := duelProbes(&ctxS, a, b, rs, budget)
				agreeB, totalB := duelProbes(&ctxB, a, b, rb, budget)
				if agreeS != agreeB || totalS != totalB {
					t.Fatalf("%s/%s budget=%d: stream (%d,%d) != serial (%d,%d)",
						tc.name, pb.name, budget, agreeB, totalB, agreeS, totalS)
				}
				if ws.Probes(0) != wb.Probes(0) {
					t.Fatalf("%s/%s budget=%d: stream charged %d probes, serial %d",
						tc.name, pb.name, budget, wb.Probes(0), ws.Probes(0))
				}
				// Identical coin consumption: the streams must be in the
				// same state afterwards.
				for i := 0; i < 8; i++ {
					if x, y := rs.Intn(1<<20), rb.Intn(1<<20); x != y {
						t.Fatalf("%s/%s budget=%d: coin streams diverged after duel",
							tc.name, pb.name, budget)
					}
				}
			}
		}
	}
}

// TestRSelectStreamMatchesSerial: whole tournaments agree — winner index
// and per-player probe totals — between the streaming and serial duel
// paths, over identity and strided object mappings.
func TestRSelectStreamMatchesSerial(t *testing.T) {
	for _, objs := range [][]int{identityObjs(700), stridedObjs(100, 5)} {
		worldM := objs[len(objs)-1] + 1
		ws := buildWorld(33, 6, worldM)
		wb := buildWorld(33, 6, worldM)
		truth := ws.TruthVector(2).Gather(objs)
		rng := xrand.New(9)
		var cands []bitvec.Vector
		for i := 0; i < 7; i++ {
			cands = append(cands, flipped(truth, rng.Split(uint64(i)), 11*i*i))
		}
		serialPr := Scaled()
		serialPr.DuelSerial = true
		gotS := RSelect(ws, 2, objs, cands, xrand.New(55), serialPr)
		gotB := RSelect(wb, 2, objs, cands, xrand.New(55), Scaled())
		if gotS != gotB {
			t.Fatalf("RSelect winner: stream %d != serial %d", gotB, gotS)
		}
		if ws.Probes(2) != wb.Probes(2) {
			t.Fatalf("RSelect probes: stream %d != serial %d", wb.Probes(2), ws.Probes(2))
		}
		// Select (the champion tournament) over the same candidates.
		ws2 := buildWorld(33, 6, worldM)
		wb2 := buildWorld(33, 6, worldM)
		gotS = Select(ws2, 2, objs, cands, 9, xrand.New(56), serialPr)
		gotB = Select(wb2, 2, objs, cands, 9, xrand.New(56), Scaled())
		if gotS != gotB {
			t.Fatalf("Select champion: stream %d != serial %d", gotB, gotS)
		}
		if ws2.Probes(2) != wb2.Probes(2) {
			t.Fatalf("Select probes: stream %d != serial %d", wb2.Probes(2), ws2.Probes(2))
		}
	}
}

// TestDuelStreamAllocFree: the word-block duel allocates nothing, on both
// the identity and the batching (strided) paths.
func TestDuelStreamAllocFree(t *testing.T) {
	objs := stridedObjs(128, 5)
	w := buildWorld(41, 2, 128*5)
	truth := w.TruthVector(0).Gather(objs)
	far := flipped(truth, xrand.New(3), 60)
	rng := xrand.New(4)
	for name, ctx := range map[string]*duelCtx{
		"strided":  {w: w, p: 0, objs: objs},
		"identity": {w: w, p: 0, objs: identityObjs(128*5 - 1), ident: true},
	} {
		a, b := truth, far
		if ctx.ident {
			a = w.TruthVector(0).Gather(ctx.objs)
			b = flipped(a, xrand.New(5), 60)
		}
		if avg := testing.AllocsPerRun(50, func() {
			duelProbesStream(ctx, a, b, rng, 13)
		}); avg != 0 {
			t.Fatalf("%s duel allocates %.1f times per run, want 0", name, avg)
		}
	}
}
