// Package selection implements the candidate-vector selection protocols of
// Figure 1: RSelect (randomized, Theorem 3) and Select (the deterministic
// diameter-bounded variant used inside SmallRadius, Theorem 5).
//
// Both protocols run locally at one player p: given candidate preference
// vectors over some object set, p probes a few objects on which candidates
// disagree and eliminates candidates that lose the resulting votes. RSelect
// guarantees the output is within a constant factor of the best candidate's
// distance; Select additionally exploits a promised diameter bound D.
//
// Selection is deliberately the sequential tail of each player's work: a
// tournament's next duel depends on who survived the previous one, so its
// loops cannot fan out without changing which objects are probed. Callers
// parallelize one level up instead — SmallRadius and the final
// CalculatePreferences step run one independent Select/RSelect per player
// on the run's executor (DESIGN.md §9). Both functions take the read-only
// *world.World rather than a *world.Run because they only probe (a
// player's private act) and never publish protocol state.
package selection

import (
	"math"
	"math/bits"

	"collabscore/internal/bitvec"
	"collabscore/internal/world"
	"collabscore/internal/xrand"
)

// Params holds the tunable constants of the selection protocols. The paper
// specifies Θ(log n) probes per candidate pair and a 2/3 elimination
// threshold; Defaults follows it.
type Params struct {
	// SampleFactor scales the per-pair probe budget of RSelect: each pair
	// probes ⌈SampleFactor · ln n⌉ randomly chosen differing objects.
	SampleFactor float64
	// SelectSampleFactor scales the per-duel probe budget of Select, which
	// runs a linear champion tournament and can therefore afford fewer
	// probes per duel.
	SelectSampleFactor float64
	// EliminateFrac is the agreement fraction above which the losing
	// candidate is eliminated in RSelect (paper: 2/3).
	EliminateFrac float64
	// KeepWithin (Select only): a challenger within KeepWithin·D of the
	// current champion is skipped — either is acceptable under the
	// diameter promise.
	KeepWithin int
}

// Defaults returns the paper's constants.
func Defaults() Params {
	return Params{SampleFactor: 6, SelectSampleFactor: 2, EliminateFrac: 2.0 / 3.0, KeepWithin: 4}
}

// Scaled returns simulation-scale budgets. Duels are cheap here because a
// player's probes are memoized (a duel can never cost more than the object
// set it runs over), so Scaled buys reliability with a larger per-duel
// budget and a tighter skip threshold instead of saving duel probes.
func Scaled() Params {
	return Params{SampleFactor: 1, SelectSampleFactor: 1.5, EliminateFrac: 2.0 / 3.0, KeepWithin: 1}
}

// pairBudget returns the number of probes used per candidate pair.
func pairBudget(factor float64, n int) int {
	k := int(math.Ceil(factor * math.Log(float64(n)+2)))
	if k < 4 {
		k = 4
	}
	return k
}

// RSelect runs the randomized tournament of Figure 1 for player p over the
// given candidates. Each candidate is a vector over objs (bit j of a
// candidate corresponds to global object objs[j]). The returned index
// identifies the surviving candidate; whp its distance to v(p) is O(d*),
// where d* is the distance of the best candidate (Theorem 3), using
// O(k²·log n) probes.
//
// RSelect returns -1 only if candidates is empty.
func RSelect(w *world.World, p int, objs []int, candidates []bitvec.Vector, rng *xrand.Stream, pr Params) int {
	k := len(candidates)
	if k == 0 {
		return -1
	}
	if k == 1 {
		return 0
	}
	budget := pairBudget(pr.SampleFactor, w.N())
	alive := make([]bool, k)
	for i := range alive {
		alive[i] = true
	}
	for i := 0; i < k; i++ {
		if !alive[i] {
			continue
		}
		for j := i + 1; j < k; j++ {
			if !alive[j] || !alive[i] {
				continue
			}
			winner := duel(w, p, objs, candidates[i], candidates[j], rng, budget, pr.EliminateFrac)
			switch winner {
			case 0: // i wins, j eliminated
				alive[j] = false
			case 1: // j wins, i eliminated
				alive[i] = false
			}
		}
	}
	for i, a := range alive {
		if a {
			return i
		}
	}
	return 0 // unreachable: a duel never eliminates both
}

// duel probes up to budget objects where a and b differ and returns
// 0 if b should be eliminated, 1 if a should be eliminated, -1 to keep both.
func duel(w *world.World, p int, objs []int, a, b bitvec.Vector, rng *xrand.Stream, budget int, frac float64) int {
	agreeA, total := duelProbes(w, p, objs, a, b, rng, budget)
	if total == 0 {
		return -1
	}
	if float64(agreeA) >= frac*float64(total) {
		return 0
	}
	if float64(total-agreeA) >= frac*float64(total) {
		return 1
	}
	return -1
}

// maxPairBudget is the size of the on-stack rank buffer. Budgets are
// Θ(log n), so real configurations fit (it would take n ≈ e^21 players to
// exceed it at the paper's SampleFactor 6); a configured budget beyond it
// is honored in full via a heap buffer rather than silently truncated.
const maxPairBudget = 128

// duelProbes probes up to budget objects on which a and b differ — all of
// them when there are at most budget, otherwise a uniform distinct sample —
// and returns how many probed objects agreed with a, plus the number
// probed. The differing positions stream directly from the XOR of the
// candidates' words and the sample ranks live in a fixed stack buffer
// (budgets beyond maxPairBudget spill to a heap buffer and are honored in
// full), so a duel normally allocates nothing; materializing the full
// difference list (often
// a large fraction of the object set) to then probe Θ(log n) entries was
// the selection tournaments' dominant allocation. The rank sample is
// Floyd's algorithm with the same draws xrand.Stream.Sample makes, so the
// probed set is bit-for-bit the one the list-based implementation chose.
func duelProbes(w *world.World, p int, objs []int, a, b bitvec.Vector, rng *xrand.Stream, budget int) (agreeA, total int) {
	d := a.Hamming(b)
	if d == 0 {
		return 0, 0
	}
	nw := a.Words()
	if d <= budget {
		// Probe every differing position.
		for wi := 0; wi < nw; wi++ {
			for x := a.Word(wi) ^ b.Word(wi); x != 0; x &= x - 1 {
				j := wi*64 + bits.TrailingZeros64(x)
				if w.Probe(p, objs[j]) == a.Get(j) {
					agreeA++
				}
			}
		}
		return agreeA, d
	}
	// Floyd's sample of budget distinct ranks in [0,d), identical to
	// xrand.Stream.Sample(d, budget) draw for draw.
	var buf [maxPairBudget]int
	ranks := buf[:]
	if budget > maxPairBudget {
		ranks = make([]int, budget)
	}
	cnt := 0
	for j := d - budget; j < d; j++ {
		t := rng.Intn(j + 1)
		for i := 0; i < cnt; i++ {
			if ranks[i] == t {
				t = j
				break
			}
		}
		ranks[cnt] = t
		cnt++
	}
	// Insertion sort: probe in ascending rank (= ascending position) order,
	// matching the sorted sample of the list-based implementation.
	for i := 1; i < cnt; i++ {
		for k := i; k > 0 && ranks[k] < ranks[k-1]; k-- {
			ranks[k], ranks[k-1] = ranks[k-1], ranks[k]
		}
	}
	// Walk the XOR words once, selecting the positions with the sampled
	// ranks among the set bits.
	ri, seen := 0, 0
	for wi := 0; wi < nw && ri < cnt; wi++ {
		x := a.Word(wi) ^ b.Word(wi)
		c := bits.OnesCount64(x)
		for ri < cnt && ranks[ri]-seen < c {
			y := x
			for k := ranks[ri] - seen; k > 0; k-- {
				y &= y - 1
			}
			j := wi*64 + bits.TrailingZeros64(y)
			if w.Probe(p, objs[j]) == a.Get(j) {
				agreeA++
			}
			ri++
		}
		seen += c
	}
	return agreeA, cnt
}

// Select is the diameter-bounded selection protocol used by SmallRadius:
// given the promise that at least one candidate is within distance d of
// v(p), it returns the index of a candidate within O(d) of v(p), whp.
//
// It runs a linear champion tournament rather than the full pairwise
// tournament of RSelect: challengers within KeepWithin·d of the champion
// are skipped (either is acceptable under the promise), and far challengers
// duel the champion by majority over a small probe sample. The best
// candidate w* wins every far duel whp, so the final champion is w* or a
// candidate within KeepWithin·d of it — within (KeepWithin+1)·d of v(p).
// Probes: O(k·log n) instead of O(k²·log n), which is what lets SmallRadius
// afford a Select per object group. (The paper leaves Select's pseudocode
// to [2]; this variant satisfies the same contract.)
//
// Select returns -1 only if candidates is empty.
func Select(w *world.World, p int, objs []int, candidates []bitvec.Vector, d int, rng *xrand.Stream, pr Params) int {
	k := len(candidates)
	if k == 0 {
		return -1
	}
	if k == 1 {
		return 0
	}
	if d < 1 {
		d = 1
	}
	budget := pairBudget(pr.SelectSampleFactor, w.N())
	near := pr.KeepWithin * d
	champ := 0
	for i := 1; i < k; i++ {
		if candidates[champ].Hamming(candidates[i]) <= near {
			continue // equally acceptable; keep the incumbent
		}
		if duelMajority(w, p, objs, candidates[champ], candidates[i], rng, budget) == 1 {
			champ = i
		}
	}
	return champ
}

// duelMajority probes up to budget differing objects and returns 0 if a
// wins the majority, 1 if b does (ties to the incumbent a).
func duelMajority(w *world.World, p int, objs []int, a, b bitvec.Vector, rng *xrand.Stream, budget int) int {
	agreeA, total := duelProbes(w, p, objs, a, b, rng, budget)
	if total == 0 {
		return 0
	}
	if 2*agreeA >= total {
		return 0
	}
	return 1
}
