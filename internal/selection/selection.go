// Package selection implements the candidate-vector selection protocols of
// Figure 1: RSelect (randomized, Theorem 3) and Select (the deterministic
// diameter-bounded variant used inside SmallRadius, Theorem 5).
//
// Both protocols run locally at one player p: given candidate preference
// vectors over some object set, p probes a few objects on which candidates
// disagree and eliminates candidates that lose the resulting votes. RSelect
// guarantees the output is within a constant factor of the best candidate's
// distance; Select additionally exploits a promised diameter bound D.
//
// Selection is deliberately the sequential tail of each player's work: a
// tournament's next duel depends on who survived the previous one (and on
// the coins the previous duel consumed), so its loops cannot fan out
// without changing which objects are probed. Callers parallelize one level
// up instead — SmallRadius and the final CalculatePreferences step run one
// independent Select/RSelect per player on the run's executor (DESIGN.md
// §9) — while inside a duel the probes stream whole 64-object word-blocks
// (duelProbesStream, DESIGN.md §17), with the bit-at-a-time loop kept as
// the byte-identity oracle behind Params.DuelSerial. Both functions take the read-only
// *world.World rather than a *world.Run because they only probe (a
// player's private act) and never publish protocol state.
package selection

import (
	"math"
	"math/bits"

	"collabscore/internal/bitvec"
	"collabscore/internal/world"
	"collabscore/internal/xrand"
)

// Params holds the tunable constants of the selection protocols. The paper
// specifies Θ(log n) probes per candidate pair and a 2/3 elimination
// threshold; Defaults follows it.
type Params struct {
	// SampleFactor scales the per-pair probe budget of RSelect: each pair
	// probes ⌈SampleFactor · ln n⌉ randomly chosen differing objects.
	SampleFactor float64
	// SelectSampleFactor scales the per-duel probe budget of Select, which
	// runs a linear champion tournament and can therefore afford fewer
	// probes per duel.
	SelectSampleFactor float64
	// EliminateFrac is the agreement fraction above which the losing
	// candidate is eliminated in RSelect (paper: 2/3).
	EliminateFrac float64
	// KeepWithin (Select only): a challenger within KeepWithin·D of the
	// current champion is skipped — either is acceptable under the
	// diameter promise.
	KeepWithin int
	// DuelSerial selects the bit-at-a-time reference implementation of the
	// duel probes instead of the word-block streaming one. The two are
	// pinned byte-identical — same coins, same probed objects, same
	// charges, same verdicts (TestDuelStreamMatchesSerial) — so this knob
	// exists purely as the oracle for those pins and for benchmarking the
	// streaming path against its predecessor.
	DuelSerial bool
}

// Defaults returns the paper's constants.
func Defaults() Params {
	return Params{SampleFactor: 6, SelectSampleFactor: 2, EliminateFrac: 2.0 / 3.0, KeepWithin: 4}
}

// Scaled returns simulation-scale budgets. Duels are cheap here because a
// player's probes are memoized (a duel can never cost more than the object
// set it runs over), so Scaled buys reliability with a larger per-duel
// budget and a tighter skip threshold instead of saving duel probes.
func Scaled() Params {
	return Params{SampleFactor: 1, SelectSampleFactor: 1.5, EliminateFrac: 2.0 / 3.0, KeepWithin: 1}
}

// pairBudget returns the number of probes used per candidate pair.
func pairBudget(factor float64, n int) int {
	k := int(math.Ceil(factor * math.Log(float64(n)+2)))
	if k < 4 {
		k = 4
	}
	return k
}

// RSelect runs the randomized tournament of Figure 1 for player p over the
// given candidates. Each candidate is a vector over objs (bit j of a
// candidate corresponds to global object objs[j]). The returned index
// identifies the surviving candidate; whp its distance to v(p) is O(d*),
// where d* is the distance of the best candidate (Theorem 3), using
// O(k²·log n) probes.
//
// RSelect returns -1 only if candidates is empty.
func RSelect(w *world.World, p int, objs []int, candidates []bitvec.Vector, rng *xrand.Stream, pr Params) int {
	k := len(candidates)
	if k == 0 {
		return -1
	}
	if k == 1 {
		return 0
	}
	budget := pairBudget(pr.SampleFactor, w.N())
	ctx := duelCtx{w: w, p: p, objs: objs, ident: identObjs(objs), serial: pr.DuelSerial}
	alive := make([]bool, k)
	for i := range alive {
		alive[i] = true
	}
	for i := 0; i < k; i++ {
		if !alive[i] {
			continue
		}
		for j := i + 1; j < k; j++ {
			if !alive[j] || !alive[i] {
				continue
			}
			winner := duel(&ctx, candidates[i], candidates[j], rng, budget, pr.EliminateFrac)
			switch winner {
			case 0: // i wins, j eliminated
				alive[j] = false
			case 1: // j wins, i eliminated
				alive[i] = false
			}
		}
	}
	for i, a := range alive {
		if a {
			return i
		}
	}
	return 0 // unreachable: a duel never eliminates both
}

// duelCtx carries one tournament's duel state: the prober's identity, the
// object mapping (with its identity-ness precomputed once — an identity
// mapping lets the streaming path probe whole aligned words), and the
// serial-oracle knob.
type duelCtx struct {
	w      *world.World
	p      int
	objs   []int
	ident  bool
	serial bool
}

// identObjs reports whether objs is the identity mapping (objs[j] == j) —
// the common case at the final selection, where candidates span the whole
// object set in order.
func identObjs(objs []int) bool {
	for j, o := range objs {
		if o != j {
			return false
		}
	}
	return true
}

// duelProbes dispatches between the word-block streaming implementation
// and the bit-at-a-time reference it is pinned against (Params.DuelSerial).
func duelProbes(ctx *duelCtx, a, b bitvec.Vector, rng *xrand.Stream, budget int) (agreeA, total int) {
	if ctx.serial {
		return duelProbesSerial(ctx.w, ctx.p, ctx.objs, a, b, rng, budget)
	}
	return duelProbesStream(ctx, a, b, rng, budget)
}

// duel probes up to budget objects where a and b differ and returns
// 0 if b should be eliminated, 1 if a should be eliminated, -1 to keep both.
func duel(ctx *duelCtx, a, b bitvec.Vector, rng *xrand.Stream, budget int, frac float64) int {
	agreeA, total := duelProbes(ctx, a, b, rng, budget)
	if total == 0 {
		return -1
	}
	if float64(agreeA) >= frac*float64(total) {
		return 0
	}
	if float64(total-agreeA) >= frac*float64(total) {
		return 1
	}
	return -1
}

// maxPairBudget is the size of the on-stack rank buffer. Budgets are
// Θ(log n), so real configurations fit (it would take n ≈ e^21 players to
// exceed it at the paper's SampleFactor 6); a configured budget beyond it
// is honored in full via a heap buffer rather than silently truncated.
const maxPairBudget = 128

// maxRankBitmap bounds the stack bitmap the streaming path uses to track
// Floyd's chosen ranks: when the pair distance fits, membership is a bit
// test and the ascending rank order falls out of bit order for free,
// replacing the serial oracle's O(budget²) rescan-and-sort bookkeeping.
// Larger distances fall back to the oracle's exact bookkeeping, as do
// budgets below minBitmapBudget, where the quadratic bookkeeping is
// cheaper than zeroing the 512-byte bitmap every far duel.
const (
	maxRankBitmap   = 4096
	minBitmapBudget = 24
)

// duelProbesSerial is the bit-at-a-time reference implementation of the
// duel probes, kept verbatim as the byte-identity oracle for the streaming
// path (Params.DuelSerial selects it). It probes up to budget objects on
// which a and b differ — all of them when there are at most budget,
// otherwise a uniform distinct sample — and returns how many probed
// objects agreed with a, plus the number probed. The differing positions
// stream directly from the XOR of the candidates' words and the sample
// ranks live in a fixed stack buffer (budgets beyond maxPairBudget spill
// to a heap buffer and are honored in full), so a duel normally allocates
// nothing. The rank sample is Floyd's algorithm with the same draws
// xrand.Stream.Sample makes, so the probed set is bit-for-bit the one the
// list-based implementation chose.
func duelProbesSerial(w *world.World, p int, objs []int, a, b bitvec.Vector, rng *xrand.Stream, budget int) (agreeA, total int) {
	d := a.Hamming(b)
	if d == 0 {
		return 0, 0
	}
	nw := a.Words()
	if d <= budget {
		// Probe every differing position.
		for wi := 0; wi < nw; wi++ {
			for x := a.Word(wi) ^ b.Word(wi); x != 0; x &= x - 1 {
				j := wi*64 + bits.TrailingZeros64(x)
				if w.Probe(p, objs[j]) == a.Get(j) {
					agreeA++
				}
			}
		}
		return agreeA, d
	}
	// Floyd's sample of budget distinct ranks in [0,d), identical to
	// xrand.Stream.Sample(d, budget) draw for draw.
	var buf [maxPairBudget]int
	ranks := buf[:]
	if budget > maxPairBudget {
		ranks = make([]int, budget)
	}
	cnt := 0
	for j := d - budget; j < d; j++ {
		t := rng.Intn(j + 1)
		for i := 0; i < cnt; i++ {
			if ranks[i] == t {
				t = j
				break
			}
		}
		ranks[cnt] = t
		cnt++
	}
	// Insertion sort: probe in ascending rank (= ascending position) order,
	// matching the sorted sample of the list-based implementation.
	for i := 1; i < cnt; i++ {
		for k := i; k > 0 && ranks[k] < ranks[k-1]; k-- {
			ranks[k], ranks[k-1] = ranks[k-1], ranks[k]
		}
	}
	// Walk the XOR words once, selecting the positions with the sampled
	// ranks among the set bits.
	ri, seen := 0, 0
	for wi := 0; wi < nw && ri < cnt; wi++ {
		x := a.Word(wi) ^ b.Word(wi)
		c := bits.OnesCount64(x)
		for ri < cnt && ranks[ri]-seen < c {
			y := x
			for k := ranks[ri] - seen; k > 0; k-- {
				y &= y - 1
			}
			j := wi*64 + bits.TrailingZeros64(y)
			if w.Probe(p, objs[j]) == a.Get(j) {
				agreeA++
			}
			ri++
		}
		seen += c
	}
	return agreeA, cnt
}

// duelProbesStream is the word-block streaming duel (DESIGN.md §17): the
// same probed objects, coins, and charges as duelProbesSerial, restructured
// so probes leave in 64-object blocks instead of one memo CAS per bit.
//
// The pass structure mirrors the serial oracle exactly — the word-parallel
// Hamming count that sizes the rank sample, then one early-exiting walk of
// the XOR words — but where the serial path fetches each selected position
// with its own Probe (an atomic memo update and a truth read per bit), the
// streaming walk accumulates every selected position of a word into a mask
// and fetches it with a single bulk ProbeWord: one CAS, one truth-word
// read, and one popcount compare for up to 64 objects. Identity object
// mappings (the final selection) map candidate words straight onto world
// words; general mappings batch runs of positions sharing a world word
// (wordProber). Probe charging is identical bit for bit: ProbeWord charges
// exactly the newly learned objects of its mask, and the mask is exactly
// the serial path's probe set. Coins are identical because the Floyd
// sample below is draw-for-draw the serial one and no other branch
// consumes randomness.
func duelProbesStream(ctx *duelCtx, a, b bitvec.Vector, rng *xrand.Stream, budget int) (agreeA, total int) {
	d := a.Hamming(b)
	if d == 0 {
		return 0, 0
	}
	w, p := ctx.w, ctx.p
	nw := a.Words()
	if d <= budget {
		// Probe every differing position, a word-block at a time.
		if ctx.ident {
			for wi := 0; wi < nw; wi++ {
				aw := a.Word(wi)
				x := aw ^ b.Word(wi)
				if x == 0 {
					continue
				}
				tw := w.ProbeWord(p, wi, x)
				agreeA += bits.OnesCount64(^(tw ^ aw) & x)
			}
			return agreeA, d
		}
		bp := wordProber{w: w, p: p, objs: ctx.objs, a: a, curW: -1}
		for wi := 0; wi < nw; wi++ {
			for x := a.Word(wi) ^ b.Word(wi); x != 0; x &= x - 1 {
				bp.add(wi*64 + bits.TrailingZeros64(x))
			}
		}
		bp.flush()
		return bp.agree, d
	}
	// Floyd's sample of budget distinct ranks in [0,d) — draw-for-draw the
	// serial implementation's coins. The chosen set is identical; only the
	// bookkeeping differs: when d fits the stack bitmap, membership is one
	// bit test instead of the serial path's linear rescan, and the ascending
	// order falls out of bit order with no sort. (Floyd's invariant makes
	// the fallback value j always fresh: earlier draws were bounded by
	// earlier, smaller j.)
	var buf [maxPairBudget]int
	ranks := buf[:]
	if budget > maxPairBudget {
		ranks = make([]int, budget)
	}
	cnt := 0
	if budget >= minBitmapBudget && d <= maxRankBitmap {
		var rb [maxRankBitmap / 64]uint64
		rw := (d + 63) / 64
		for j := d - budget; j < d; j++ {
			t := rng.Intn(j + 1)
			if rb[t>>6]>>(uint(t)&63)&1 == 1 {
				t = j
			}
			rb[t>>6] |= 1 << (uint(t) & 63)
			cnt++
		}
		cnt = 0
		for i := 0; i < rw; i++ {
			for x := rb[i]; x != 0; x &= x - 1 {
				ranks[cnt] = i*64 + bits.TrailingZeros64(x)
				cnt++
			}
		}
	} else {
		for j := d - budget; j < d; j++ {
			t := rng.Intn(j + 1)
			for i := 0; i < cnt; i++ {
				if ranks[i] == t {
					t = j
					break
				}
			}
			ranks[cnt] = t
			cnt++
		}
		for i := 1; i < cnt; i++ {
			for k := i; k > 0 && ranks[k] < ranks[k-1]; k-- {
				ranks[k], ranks[k-1] = ranks[k-1], ranks[k]
			}
		}
	}
	// Walk the XOR words once like the serial path, but collapse all ranks
	// landing in one word into a single bulk fetch.
	ri, seen := 0, 0
	if ctx.ident {
		for wi := 0; wi < nw && ri < cnt; wi++ {
			aw := a.Word(wi)
			x := aw ^ b.Word(wi)
			c := bits.OnesCount64(x)
			if ri < cnt && ranks[ri]-seen < c {
				var mask uint64
				for ; ri < cnt && ranks[ri]-seen < c; ri++ {
					y := x
					for k := ranks[ri] - seen; k > 0; k-- {
						y &= y - 1
					}
					mask |= y & -y
				}
				tw := w.ProbeWord(p, wi, mask)
				agreeA += bits.OnesCount64(^(tw ^ aw) & mask)
			}
			seen += c
		}
		return agreeA, cnt
	}
	bp := wordProber{w: w, p: p, objs: ctx.objs, a: a, curW: -1}
	for wi := 0; wi < nw && ri < cnt; wi++ {
		x := a.Word(wi) ^ b.Word(wi)
		c := bits.OnesCount64(x)
		for ; ri < cnt && ranks[ri]-seen < c; ri++ {
			y := x
			for k := ranks[ri] - seen; k > 0; k-- {
				y &= y - 1
			}
			bp.add(wi*64 + bits.TrailingZeros64(y))
		}
		seen += c
	}
	bp.flush()
	return bp.agree, cnt
}

// wordProber batches probes of a general (non-identity) object mapping:
// consecutive candidate positions whose objects share a 64-bit world word
// accumulate into one mask and fetch with a single ProbeWord. Pending
// positions live in a fixed array, so the prober stays on the caller's
// stack and the duel inner loop allocates nothing
// (TestDuelStreamAllocFree).
type wordProber struct {
	w     *world.World
	p     int
	objs  []int
	a     bitvec.Vector
	curW  int
	mask  uint64
	pn    int
	pjs   [64]int32
	agree int
}

// add stages candidate position j (ascending across calls) for probing.
func (bp *wordProber) add(j int) {
	o := bp.objs[j]
	wi := o >> 6
	if wi != bp.curW || bp.pn == len(bp.pjs) {
		bp.flush()
		bp.curW = wi
	}
	bp.mask |= 1 << (uint(o) & 63)
	bp.pjs[bp.pn] = int32(j)
	bp.pn++
}

// flush probes the staged word in bulk and tallies agreements with a.
func (bp *wordProber) flush() {
	if bp.curW < 0 {
		return
	}
	tw := bp.w.ProbeWord(bp.p, bp.curW, bp.mask)
	for i := 0; i < bp.pn; i++ {
		j := int(bp.pjs[i])
		bit := uint(bp.objs[j]) & 63
		if ((tw>>bit)&1 != 0) == bp.a.Get(j) {
			bp.agree++
		}
	}
	bp.curW, bp.mask, bp.pn = -1, 0, 0
}

// Select is the diameter-bounded selection protocol used by SmallRadius:
// given the promise that at least one candidate is within distance d of
// v(p), it returns the index of a candidate within O(d) of v(p), whp.
//
// It runs a linear champion tournament rather than the full pairwise
// tournament of RSelect: challengers within KeepWithin·d of the champion
// are skipped (either is acceptable under the promise), and far challengers
// duel the champion by majority over a small probe sample. The best
// candidate w* wins every far duel whp, so the final champion is w* or a
// candidate within KeepWithin·d of it — within (KeepWithin+1)·d of v(p).
// Probes: O(k·log n) instead of O(k²·log n), which is what lets SmallRadius
// afford a Select per object group. (The paper leaves Select's pseudocode
// to [2]; this variant satisfies the same contract.)
//
// Select returns -1 only if candidates is empty.
func Select(w *world.World, p int, objs []int, candidates []bitvec.Vector, d int, rng *xrand.Stream, pr Params) int {
	k := len(candidates)
	if k == 0 {
		return -1
	}
	if k == 1 {
		return 0
	}
	if d < 1 {
		d = 1
	}
	budget := pairBudget(pr.SelectSampleFactor, w.N())
	ctx := duelCtx{w: w, p: p, objs: objs, ident: identObjs(objs), serial: pr.DuelSerial}
	near := pr.KeepWithin * d
	champ := 0
	for i := 1; i < k; i++ {
		if candidates[champ].Hamming(candidates[i]) <= near {
			continue // equally acceptable; keep the incumbent
		}
		if duelMajority(&ctx, candidates[champ], candidates[i], rng, budget) == 1 {
			champ = i
		}
	}
	return champ
}

// duelMajority probes up to budget differing objects and returns 0 if a
// wins the majority, 1 if b does (ties to the incumbent a).
func duelMajority(ctx *duelCtx, a, b bitvec.Vector, rng *xrand.Stream, budget int) int {
	agreeA, total := duelProbes(ctx, a, b, rng, budget)
	if total == 0 {
		return 0
	}
	if 2*agreeA >= total {
		return 0
	}
	return 1
}
