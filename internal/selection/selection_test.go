package selection

import (
	"testing"

	"collabscore/internal/bitvec"
	"collabscore/internal/prefgen"
	"collabscore/internal/world"
	"collabscore/internal/xrand"
)

// buildWorld returns a world with n players over m objects and uniform
// random truth.
func buildWorld(seed uint64, n, m int) *world.World {
	in := prefgen.Uniform(xrand.New(seed), n, m)
	return world.New(in.Truth)
}

// identityObjs returns [0..m).
func identityObjs(m int) []int {
	out := make([]int, m)
	for i := range out {
		out[i] = i
	}
	return out
}

// flipped returns v with k random bits flipped.
func flipped(v bitvec.Vector, rng *xrand.Stream, k int) bitvec.Vector {
	out := v.Clone()
	for _, i := range rng.Sample(v.Len(), k) {
		out.Flip(i)
	}
	return out
}

func TestRSelectEmptyAndSingle(t *testing.T) {
	w := buildWorld(1, 4, 64)
	objs := identityObjs(64)
	rng := xrand.New(2)
	if got := RSelect(w, 0, objs, nil, rng, Defaults()); got != -1 {
		t.Fatalf("empty candidates: got %d, want -1", got)
	}
	one := []bitvec.Vector{bitvec.New(64)}
	if got := RSelect(w, 0, objs, one, rng, Defaults()); got != 0 {
		t.Fatalf("single candidate: got %d, want 0", got)
	}
}

func TestRSelectPicksExactVector(t *testing.T) {
	// One candidate equals the player's truth exactly; others are far.
	w := buildWorld(3, 4, 512)
	objs := identityObjs(512)
	rng := xrand.New(4)
	truth := w.TruthVector(0)
	cands := []bitvec.Vector{
		flipped(truth, rng.Split(1), 200),
		truth.Clone(),
		flipped(truth, rng.Split(2), 250),
		truth.Clone().Not(),
	}
	idx := RSelect(w, 0, objs, cands, rng.Split(3), Defaults())
	if got := w.TruthVector(0).Hamming(cands[idx]); got != 0 {
		t.Fatalf("RSelect picked candidate at distance %d, want 0", got)
	}
}

func TestRSelectConstantFactorOfBest(t *testing.T) {
	// Best candidate is at distance 10; RSelect must return something
	// within a small constant factor of that (Theorem 3).
	const m = 1024
	w := buildWorld(5, 2, m)
	objs := identityObjs(m)
	for trial := uint64(0); trial < 20; trial++ {
		rng := xrand.New(100 + trial)
		truth := w.TruthVector(0)
		cands := []bitvec.Vector{
			flipped(truth, rng.Split(1), 400),
			flipped(truth, rng.Split(2), 10), // best
			flipped(truth, rng.Split(3), 300),
			flipped(truth, rng.Split(4), 500),
			flipped(truth, rng.Split(5), 250),
		}
		idx := RSelect(w, 0, objs, cands, rng.Split(6), Defaults())
		if d := truth.Hamming(cands[idx]); d > 60 {
			t.Fatalf("trial %d: RSelect output at distance %d, best is 10", trial, d)
		}
	}
}

func TestRSelectProbeComplexity(t *testing.T) {
	// Probes should be O(k² log n): verify they stay within the budget's
	// arithmetic for k candidates.
	const m = 4096
	const k = 8
	w := buildWorld(7, 2, m)
	objs := identityObjs(m)
	rng := xrand.New(8)
	truth := w.TruthVector(0)
	cands := make([]bitvec.Vector, k)
	for i := range cands {
		cands[i] = flipped(truth, rng.Split(uint64(i)), 50*(i+1))
	}
	RSelect(w, 0, objs, cands, rng.Split(99), Defaults())
	budget := pairBudget(Defaults().SampleFactor, w.N())
	maxProbes := int64(k * k * budget)
	if got := w.Probes(0); got > maxProbes {
		t.Fatalf("RSelect used %d probes, budget arithmetic allows %d", got, maxProbes)
	}
}

func TestSelectEmptyAndSingle(t *testing.T) {
	w := buildWorld(9, 2, 64)
	objs := identityObjs(64)
	rng := xrand.New(10)
	if got := Select(w, 0, objs, nil, 4, rng, Defaults()); got != -1 {
		t.Fatalf("empty candidates: got %d, want -1", got)
	}
	one := []bitvec.Vector{bitvec.New(64)}
	if got := Select(w, 0, objs, one, 4, rng, Defaults()); got != 0 {
		t.Fatalf("single candidate: got %d, want 0", got)
	}
}

func TestSelectHonorsDiameterPromise(t *testing.T) {
	// With the promise that one candidate is within d, the output must be
	// within (KeepWithin+1)·d whp.
	const m = 1024
	const d = 8
	pr := Defaults()
	for trial := uint64(0); trial < 20; trial++ {
		w := buildWorld(200+trial, 2, m)
		objs := identityObjs(m)
		rng := xrand.New(300 + trial)
		truth := w.TruthVector(0)
		cands := []bitvec.Vector{
			flipped(truth, rng.Split(1), 300),
			flipped(truth, rng.Split(2), d), // satisfies the promise
			flipped(truth, rng.Split(3), 400),
			flipped(truth, rng.Split(4), 200),
		}
		idx := Select(w, 0, objs, cands, d, rng.Split(5), pr)
		bound := (pr.KeepWithin + 1) * d
		if got := truth.Hamming(cands[idx]); got > bound {
			t.Fatalf("trial %d: Select output at distance %d > bound %d", trial, got, bound)
		}
	}
}

func TestSelectSkipsCloseChallengers(t *testing.T) {
	// All candidates within KeepWithin·d of each other: Select must not
	// probe at all and return the incumbent.
	const m = 256
	const d = 20
	w := buildWorld(11, 2, m)
	objs := identityObjs(m)
	rng := xrand.New(12)
	truth := w.TruthVector(0)
	base := flipped(truth, rng.Split(1), 5)
	cands := []bitvec.Vector{
		base,
		flipped(base, rng.Split(2), 3),
		flipped(base, rng.Split(3), 2),
	}
	idx := Select(w, 0, objs, cands, d, rng.Split(4), Defaults())
	if idx != 0 {
		t.Fatalf("Select = %d, want incumbent 0", idx)
	}
	if w.Probes(0) != 0 {
		t.Fatalf("Select probed %d objects for all-close candidates", w.Probes(0))
	}
}

func TestSelectLinearProbeComplexity(t *testing.T) {
	// Select runs k-1 duels, each within the duel budget.
	const m = 4096
	const k = 16
	const d = 4
	w := buildWorld(13, 2, m)
	objs := identityObjs(m)
	rng := xrand.New(14)
	truth := w.TruthVector(0)
	cands := make([]bitvec.Vector, k)
	for i := range cands {
		cands[i] = flipped(truth, rng.Split(uint64(i)), 100+30*i)
	}
	Select(w, 0, objs, cands, d, rng.Split(77), Defaults())
	budget := pairBudget(Defaults().SelectSampleFactor, w.N())
	maxProbes := int64((k - 1) * budget)
	if got := w.Probes(0); got > maxProbes {
		t.Fatalf("Select used %d probes, linear budget is %d", got, maxProbes)
	}
}

func TestDuelEliminatesFarCandidate(t *testing.T) {
	const m = 512
	w := buildWorld(15, 2, m)
	objs := identityObjs(m)
	rng := xrand.New(16)
	truth := w.TruthVector(0)
	far := truth.Clone().Not()
	// truth vs its complement: truth must win every time.
	ctx := duelCtx{w: w, p: 0, objs: objs, ident: true}
	for i := 0; i < 10; i++ {
		if duel(&ctx, truth, far, rng.Split(uint64(i)), 20, 2.0/3.0) != 0 {
			t.Fatal("truth lost a duel against its complement")
		}
		if duel(&ctx, far, truth, rng.Split(uint64(i+50)), 20, 2.0/3.0) != 1 {
			t.Fatal("complement won a duel against truth")
		}
	}
}

func TestDuelKeepsBothWhenAmbiguous(t *testing.T) {
	// Two candidates equidistant from truth: the 2/3 rule should keep both
	// most of the time. Verify it never eliminates BOTH (impossible by
	// construction) and that identical vectors are kept.
	const m = 512
	w := buildWorld(17, 2, m)
	objs := identityObjs(m)
	truth := w.TruthVector(0)
	ctx := duelCtx{w: w, p: 0, objs: objs, ident: true}
	if duel(&ctx, truth, truth, xrand.New(18), 20, 2.0/3.0) != -1 {
		t.Fatal("identical candidates should be kept")
	}
}

func TestDishonestCandidatesCannotHurtRSelect(t *testing.T) {
	// Candidate vectors may come from dishonest players, but RSelect probes
	// the player's own truth, so a perfect candidate still wins against
	// arbitrarily many junk candidates.
	const m = 1024
	w := buildWorld(19, 2, m)
	objs := identityObjs(m)
	rng := xrand.New(20)
	truth := w.TruthVector(0)
	cands := []bitvec.Vector{truth.Clone()}
	for i := 0; i < 9; i++ {
		cands = append(cands, flipped(truth, rng.Split(uint64(i)), 400+10*i))
	}
	idx := RSelect(w, 0, objs, cands, rng.Split(55), Defaults())
	if d := truth.Hamming(cands[idx]); d > 0 {
		t.Fatalf("junk candidates displaced the exact vector (distance %d)", d)
	}
}
