package selection

import (
	"testing"

	"collabscore/internal/bitvec"
	"collabscore/internal/xrand"
)

// BenchmarkRSelect compares the serial bit-at-a-time duel loop
// (Params.DuelSerial) against the word-block streaming path on full
// tournaments, over the shapes the protocol actually runs:
//
//   - final4096: the final whole-vector selection — identity mapping over a
//     large object set, simulation-scale probe budgets (Scaled), duels
//     dominated by the XOR walks both paths share.
//   - group512: the per-group Select regime at the paper's constants
//     (Defaults, budget ≈ 50) — a group-sized object set where most duel
//     cost is probe traffic, which the streaming path collapses 64 objects
//     per memo CAS.
//   - strided512x7: group512's shape through the general (non-identity)
//     object mapping, exercising the wordProber batching.
//
// Both paths draw identical coins and charge identical probes.
func BenchmarkRSelect(b *testing.B) {
	shapes := []struct {
		name string
		objs []int
		pr   Params
	}{
		{"final4096", identityObjs(4096), Scaled()},
		{"group512", identityObjs(512), Defaults()},
		{"strided512x7", stridedObjs(512, 7), Defaults()},
	}
	for _, sh := range shapes {
		worldM := sh.objs[len(sh.objs)-1] + 1
		w := buildWorld(19, 4096, worldM)
		truth := w.TruthVector(0).Gather(sh.objs)
		rng := xrand.New(23)
		m := len(sh.objs)
		// Candidate distances span the regimes: equal, below budget, and a
		// ramp of far candidates up to m/2 (a wrong-cluster vector).
		var cands []bitvec.Vector
		for _, flips := range []int{0, 3, m / 64, m / 10, m / 6, m / 4, m / 3, m / 2} {
			cands = append(cands, flipped(truth, rng.Split(uint64(flips)), flips))
		}
		for _, mode := range []struct {
			name   string
			serial bool
		}{{"serial", true}, {"stream", false}} {
			pr := sh.pr
			pr.DuelSerial = mode.serial
			b.Run(sh.name+"/"+mode.name, func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					RSelect(w, 0, sh.objs, cands, xrand.New(55), pr)
				}
			})
		}
	}
}
