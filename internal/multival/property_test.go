package multival

import (
	"testing"
	"testing/quick"

	"collabscore/internal/xrand"
)

// schedule matrix shared by the determinism and conservation properties.
var ratingSchedules = []struct {
	name         string
	phaseSerial  bool
	phaseWorkers int
	byzSerial    bool
}{
	{"serial", true, 0, true},
	{"fixed3", false, 3, true},
	{"parallel", false, 0, false},
}

// TestRatingScheduleMatrixMatches: the vectorized rating protocol's
// fixed-seed output is byte-identical under the serial reference, a
// fixed-width, and the fully parallel schedule — for both the
// honest-randomness run and the Byzantine wrapper, under corruption.
func TestRatingScheduleMatrixMatches(t *testing.T) {
	const n, m, b, d, scale = 128, 128, 8, 16, 5
	for _, byz := range []bool{false, true} {
		var refOut []Ratings
		var refProbes []int64
		for _, sched := range ratingSchedules {
			truth, _ := Generate(xrand.New(51), n, m, n/b, d, scale)
			w := NewWorld(truth, scale)
			corrupt(w, n/(3*b), xrand.New(52), func(p int) Behavior { return Exaggerator{} })
			pr := Scaled(n, b)
			pr.MinD, pr.MaxD = d, d
			pr.PhaseSerial = sched.phaseSerial
			pr.PhaseWorkers = sched.phaseWorkers
			pr.ByzSerial = sched.byzSerial
			var out []Ratings
			if byz {
				res := RunByzantine(w, xrand.New(53), nil, 3, pr)
				for _, row := range res.Output {
					out = append(out, Ratings(row.Ints()))
				}
			} else {
				res := Run(w, xrand.New(53), pr)
				for _, row := range res.Output {
					out = append(out, Ratings(row.Ints()))
				}
			}
			probes := make([]int64, n)
			for p := 0; p < n; p++ {
				probes[p] = w.Probes(p)
			}
			if refOut == nil {
				refOut, refProbes = out, probes
				continue
			}
			for p := 0; p < n; p++ {
				if out[p].L1(refOut[p]) != 0 {
					t.Fatalf("byz=%v: output for player %d differs under %s", byz, p, sched.name)
				}
				if probes[p] != refProbes[p] {
					t.Fatalf("byz=%v: probes for player %d differ under %s: %d vs %d",
						byz, p, sched.name, probes[p], refProbes[p])
				}
			}
		}
	}
}

// TestPropertyRatingProbeConservation mirrors core's probe-conservation
// property for the bit-plane path: across random small instances and every
// schedule, bulk word-level probing charges each (player, object) pair
// exactly once — per-player counters are schedule-independent, capped at
// m, and the aggregate views equal the counters they summarize.
func TestPropertyRatingProbeConservation(t *testing.T) {
	if testing.Short() {
		t.Skip("property test")
	}
	f := func(seed uint64, byzantine bool) bool {
		rng := xrand.New(seed)
		n := 64 + int(seed%3)*32
		const b, scale = 8, 5
		d := 8 << (seed % 2)
		truth, _ := Generate(rng.Split(1), n, n, n/b, d, scale)
		fcnt := int(seed % uint64(n/(3*b)+1))

		var refProbes []int64
		for _, sched := range ratingSchedules {
			w := NewWorld(truth, scale)
			corrupt(w, fcnt, rng.Split(3), func(p int) Behavior { return RandomRater{Seed: seed} })
			pr := Scaled(n, b)
			pr.MinD, pr.MaxD = d, d
			pr.PhaseSerial = sched.phaseSerial
			pr.PhaseWorkers = sched.phaseWorkers
			pr.ByzSerial = sched.byzSerial
			if byzantine {
				RunByzantine(w, rng.Split(2), nil, 3, pr)
			} else {
				Run(w, rng.Split(2), pr)
			}

			var total, honestMax int64
			probes := make([]int64, n)
			for p := 0; p < n; p++ {
				probes[p] = w.Probes(p)
				if probes[p] < 0 || probes[p] > int64(n) {
					return false // memo cap: at most m distinct objects
				}
				total += probes[p]
				if w.IsHonest(p) && probes[p] > honestMax {
					honestMax = probes[p]
				}
			}
			if w.TotalProbes() != total || w.MaxHonestProbes() != honestMax {
				return false
			}
			if refProbes == nil {
				refProbes = probes
				continue
			}
			for p := 0; p < n; p++ {
				if probes[p] != refProbes[p] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 6}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyPooledRatingRunConserves: the pooled construction path
// (Buffer.Generate into reused planes + World Renew) conserves outputs and
// probe accounting exactly — a recycled rating arena is indistinguishable
// from fresh construction, including across shape and scale changes.
func TestPropertyPooledRatingRunConserves(t *testing.T) {
	shapes := []struct{ n, m, b, d, scale int }{
		{96, 96, 8, 16, 5},
		{64, 96, 8, 8, 9},
		{96, 96, 8, 16, 5}, // full-reuse pass
	}
	var buf Buffer
	var w *World
	for round, sh := range shapes {
		freshTruth, _ := Generate(xrand.New(uint64(70+round)), sh.n, sh.m, sh.n/sh.b, sh.d, sh.scale)
		fw := NewWorld(freshTruth, sh.scale)
		pr := Scaled(sh.n, sh.b)
		pr.MinD, pr.MaxD = sh.d, sh.d
		ref := Run(fw, xrand.New(uint64(80+round)), pr)

		pooledTruth, _ := buf.Generate(xrand.New(uint64(70+round)), sh.n, sh.m, sh.n/sh.b, sh.d, sh.scale)
		w = Renew(w, pooledTruth, sh.scale)
		res := Run(w, xrand.New(uint64(80+round)), pr)

		for p := 0; p < sh.n; p++ {
			if !res.Output[p].Equal(ref.Output[p]) {
				t.Fatalf("round %d: pooled output differs for player %d", round, p)
			}
			if w.Probes(p) != fw.Probes(p) {
				t.Fatalf("round %d: pooled probes differ for player %d: %d vs %d",
					round, p, w.Probes(p), fw.Probes(p))
			}
		}
	}
}

// TestByzantineClusterReporting pins the PR 5 bugfix: the wrapper's
// NumClusters follows the documented convention (per-guess counts of the
// last honest-leader repetition, merged in repetition order) and is empty
// — not a silent stale zero — when every elected leader was dishonest,
// while Reps always carries the full per-repetition picture.
func TestByzantineClusterReporting(t *testing.T) {
	const n, m, b, d, scale = 128, 128, 8, 16, 5

	// All players dishonest ⇒ every leader dishonest ⇒ no protocol runs.
	truth, _ := Generate(xrand.New(61), n, m, n/b, d, scale)
	w := NewWorld(truth, scale)
	corrupt(w, n, xrand.New(62), func(p int) Behavior { return Exaggerator{} })
	pr := Scaled(n, b)
	pr.MinD, pr.MaxD = d, d
	res := RunByzantine(w, xrand.New(63), nil, 3, pr)
	if res.HonestLeaders != 0 {
		t.Fatalf("all-dishonest world elected %d honest leaders", res.HonestLeaders)
	}
	if len(res.NumClusters) != 0 || len(res.Ds) != 0 {
		t.Fatalf("dishonest-only run reported cluster stats: %v / %v", res.NumClusters, res.Ds)
	}
	if len(res.Reps) != 3 {
		t.Fatalf("Reps has %d entries, want 3", len(res.Reps))
	}
	for it, rep := range res.Reps {
		if rep.HonestLeader || len(rep.Iterations) != 0 {
			t.Fatalf("repetition %d claims honest-leader stats in an all-dishonest world", it)
		}
	}

	// Honest world ⇒ every repetition reports, and the merged NumClusters
	// equals the LAST repetition's counts regardless of completion order
	// (serial and parallel schedules agree).
	for _, serial := range []bool{true, false} {
		truth, _ := Generate(xrand.New(64), n, m, n/b, d, scale)
		w := NewWorld(truth, scale)
		pr := Scaled(n, b)
		pr.MinD, pr.MaxD = d, d
		pr.ByzSerial = serial
		res := RunByzantine(w, xrand.New(65), nil, 3, pr)
		if res.HonestLeaders != 3 {
			t.Fatalf("honest world elected %d/3 honest leaders", res.HonestLeaders)
		}
		last := res.Reps[2]
		if !last.HonestLeader || len(last.Iterations) == 0 {
			t.Fatal("last repetition carries no stats")
		}
		if len(res.NumClusters) != len(last.Iterations) {
			t.Fatalf("NumClusters has %d entries, want %d", len(res.NumClusters), len(last.Iterations))
		}
		for gi, is := range last.Iterations {
			if res.NumClusters[gi] != is.NumClusters || res.Ds[gi] != is.D {
				t.Fatalf("serial=%v: merged stats differ from last repetition at guess %d", serial, gi)
			}
		}
	}
}
