package multival

import (
	"collabscore/internal/election"
	"collabscore/internal/par"
	"collabscore/internal/xrand"
)

// ByzResult extends Result with election bookkeeping.
type ByzResult struct {
	Result
	// HonestLeaders counts repetitions whose elected leader was honest.
	HonestLeaders int
	// Repetitions is the number of leader-election repetitions executed.
	Repetitions int
}

// RunByzantine executes the §7-style wrapper over the non-binary protocol:
// repeat the generalized CalculatePreferences under Θ(log n) elected
// leaders (Feige's lightest-bin election works unchanged — it only needs
// to know who is honest) and select the best repetition per player by an
// L1 spot check. When a dishonest leader is elected, the repetition's
// shared coins are adversarial; as in the binary protocol we model the
// worst case by replacing the repetition's outputs with maximally wrong
// rating vectors (scale − truth).
func RunByzantine(w *World, trueRng *xrand.Stream, binStrategy election.BinStrategy, repetitions int, pr Params) *ByzResult {
	n, m := w.N(), w.M()
	if repetitions < 1 {
		repetitions = 1
	}
	res := &ByzResult{Repetitions: repetitions}

	candidates := make([][]Ratings, repetitions)
	for it := 0; it < repetitions; it++ {
		el := election.Run(w, trueRng.Split(0xE1EC, uint64(it)), binStrategy, election.Defaults())
		if w.IsHonest(el.Leader) {
			res.HonestLeaders++
			sub := Run(w, trueRng.Split(0x5EED, uint64(it)), pr)
			candidates[it] = sub.Output
			res.NumClusters = sub.NumClusters
		} else {
			// Adversarial coins: worst-case repetition outputs.
			worst := make([]Ratings, n)
			for p := 0; p < n; p++ {
				row := make(Ratings, m)
				for o := 0; o < m; o++ {
					row[o] = w.Scale() - w.PeekTruth(p, o)
				}
				worst[p] = row
			}
			candidates[it] = worst
		}
	}

	// Per-player selection among repetitions by probed L1 disagreement.
	lnn := lnN(n)
	res.Output = par.Map(n, func(p int) Ratings {
		if !w.IsHonest(p) {
			return make(Ratings, m)
		}
		if repetitions == 1 {
			return candidates[0][p]
		}
		rng := trueRng.Split(0xF17A1, uint64(p))
		check := rng.Sample(m, minInt(m, 8*int(lnn)))
		best, bestScore := 0, 1<<60
		for it := 0; it < repetitions; it++ {
			score := 0
			for _, o := range check {
				truth := w.Probe(p, o)
				r := candidates[it][p][o]
				if r > truth {
					score += r - truth
				} else {
					score += truth - r
				}
			}
			if score < bestScore {
				best, bestScore = it, score
			}
		}
		return candidates[best][p]
	})
	return res
}
