package multival

import (
	"fmt"
	"sync"
	"testing"

	"collabscore/internal/par"
	"collabscore/internal/xrand"
)

// contractBehaviors enumerates every rating Behavior this package exports,
// mirroring the adversary package's determinism-contract meta-test
// (internal/adversary/contract_test.go): now that multival is
// schedule-gated, protocols may ask for the same report through the
// per-object path (Report), the bulk gather path (ReportValues), or the
// word-level path (ReportPlaneWords), possibly from concurrent phase
// goroutines — and every answer must agree. Any NEW stateful rater added
// to this package must either appear here and hold the contract, or be
// documented as an exception the way adversary.Flipflopper is.
func contractBehaviors() map[string]Behavior {
	return map[string]Behavior{
		"RandomRater": RandomRater{Seed: 0xC0},
		"Exaggerator": Exaggerator{},
		"Shifter":     Shifter{Delta: -3},
		"Inverter":    Inverter{},
		"Honest":      Honest{},
	}
}

// contractWorld builds a small rating world with a non-trivial scale so
// clamping and plane widths are exercised.
func contractWorld(t *testing.T) *World {
	t.Helper()
	truth, _ := Generate(xrand.New(0xAD), 16, 100, 4, 8, 6)
	return NewWorld(truth, 6)
}

// reportMatrix collects behavior b's reports for every (player, object)
// cell under the given executor, through the per-object path.
func reportMatrix(w *World, b Behavior, exec *par.Runner) [][]int {
	n, m := w.N(), w.M()
	out := make([][]int, n)
	exec.For(n, func(p int) {
		row := make([]int, m)
		for o := 0; o < m; o++ {
			row[o] = b.Report(w, p, o)
		}
		out[p] = row
	})
	return out
}

// TestRaterDeterminismContract asserts the documented contract for every
// exported rating behavior across the serial/fixed-width/parallel schedule
// matrix: identical answers when asked twice, identical answers under
// every schedule, and agreement between the per-object, bulk-gather, and
// word-level report paths.
func TestRaterDeterminismContract(t *testing.T) {
	scheds := []struct {
		name string
		exec *par.Runner
	}{
		{"serial", par.Serial()},
		{"fixed4", par.Fixed(4)},
		{"parallel", par.Parallel()},
	}
	for name, b := range contractBehaviors() {
		t.Run(name, func(t *testing.T) {
			var ref [][]int
			for _, sched := range scheds {
				w := contractWorld(t)
				for p := 0; p < w.N(); p++ {
					w.SetBehavior(p, b)
				}
				first := reportMatrix(w, b, sched.exec)
				second := reportMatrix(w, b, sched.exec)
				for p := range first {
					for o := range first[p] {
						if first[p][o] != second[p][o] {
							t.Fatalf("%s flip-flopped at (%d,%d) under %s", name, p, o, sched.name)
						}
					}
				}
				// The bulk report paths must agree with the per-object path
				// (honest players ride the probe memo; dishonest ones are
				// asked per object — both must reproduce the matrix, with
				// out-of-scale reports clamped identically).
				for p := 0; p < w.N(); p++ {
					objs := []int{0, 3, 17, 40, 63, 64, 99}
					vals := w.ReportValues(p, objs)
					for j, o := range objs {
						if vals.Get(j) != clampRating(first[p][o], w.Scale()) {
							t.Fatalf("%s: ReportValues(%d) disagrees with Report at object %d under %s",
								name, p, o, sched.name)
						}
					}
					dst := make([]uint64, w.Bits())
					w.ReportPlaneWords(p, 1, 0x3FF, dst) // objects 64..73
					for bit := 0; bit < 10; bit++ {
						v := 0
						for l, wv := range dst {
							v |= int(wv>>uint(bit)&1) << l
						}
						if v != clampRating(first[p][64+bit], w.Scale()) {
							t.Fatalf("%s: ReportPlaneWords(%d) disagrees with Report at object %d under %s",
								name, p, 64+bit, sched.name)
						}
					}
				}
				if ref == nil {
					ref = first
					continue
				}
				for p := range ref {
					for o := range ref[p] {
						if ref[p][o] != first[p][o] {
							t.Fatalf("%s answers at (%d,%d) depend on the schedule (%s differs from serial)",
								name, p, o, sched.name)
						}
					}
				}
			}
		})
	}
}

// TestRaterConcurrentConsistency hammers each behavior's Report for the
// same cells from many goroutines at once (run under -race): concurrent
// asks must agree with the serial answer.
func TestRaterConcurrentConsistency(t *testing.T) {
	for name, b := range contractBehaviors() {
		t.Run(name, func(t *testing.T) {
			w := contractWorld(t)
			for p := 0; p < w.N(); p++ {
				w.SetBehavior(p, b)
			}
			ref := reportMatrix(w, b, par.Serial())
			var wg sync.WaitGroup
			errs := make(chan string, 8)
			for g := 0; g < 8; g++ {
				wg.Add(1)
				go func(g int) {
					defer wg.Done()
					for rep := 0; rep < 4; rep++ {
						for p := 0; p < w.N(); p++ {
							for _, o := range []int{g, 32 + g, 90 + g} {
								if b.Report(w, p, o) != ref[p][o] {
									select {
									case errs <- fmt.Sprintf("(%d,%d)", p, o):
									default:
									}
								}
							}
						}
					}
				}(g)
			}
			wg.Wait()
			close(errs)
			if cell, bad := <-errs; bad {
				t.Fatalf("%s gave a schedule-dependent answer at %s", name, cell)
			}
		})
	}
}
