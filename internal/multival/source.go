package multival

// The rating-world half of the truth-source seam (DESIGN.md §14). Unlike
// the binary generators — whose coin layout is fixed, so any cell is an
// O(1) xrand.At read — Generate draws center cells with Intn (Lemire
// rejection sampling, variable draws per cell), which is not randomly
// addressable. The lazy representation therefore materializes the CENTER
// rows only (numClusters ≪ n of them) and replays each player's bounded
// ±1 edit walk into sorted sparse (object, value) overrides: memory drops
// from O(n·m·k) bits to O((n/clusterSize)·m·k + n·diameter) while every
// cell stays bit-identical to the dense matrix.

import (
	"sort"

	"collabscore/internal/bitvec"
	"collabscore/internal/xrand"
)

// RatingSource is the pluggable representation of a hidden rating matrix:
// n players × m objects of ratings in [0, scale], bit-sliced into Bits()
// planes. Implementations must be pure and safe for concurrent readers.
// PlaneWords writes one full object word per plane (bits past the last
// object zero), mirroring bitvec.Planes.PlaneWord.
type RatingSource interface {
	Players() int
	Objects() int
	// Bits returns the number of bit-planes per rating, PlaneBits(scale).
	Bits() int
	// Rating returns the single true rating of (p, o).
	Rating(p, o int) int
	// PlaneWords writes the Bits() plane words of player p's object word wi
	// into dst (dst must have at least Bits() entries).
	PlaneWords(p, wi int, dst []uint64)
}

// DensePlanes is the materialized rating source: a wrapper over bit-sliced
// truth rows, the reference oracle for the lazy representation.
type DensePlanes struct {
	rows []bitvec.Planes
}

// NewDensePlanes wraps materialized rating rows as a RatingSource.
func NewDensePlanes(rows []bitvec.Planes) *DensePlanes { return &DensePlanes{rows: rows} }

// Players returns the number of rows.
func (d *DensePlanes) Players() int { return len(d.rows) }

// Objects returns the row length (0 when empty).
func (d *DensePlanes) Objects() int {
	if len(d.rows) == 0 {
		return 0
	}
	return d.rows[0].Len()
}

// Bits returns the planes per rating (0 when empty).
func (d *DensePlanes) Bits() int {
	if len(d.rows) == 0 {
		return 0
	}
	return d.rows[0].Bits()
}

// Rating returns the rating of (p, o).
func (d *DensePlanes) Rating(p, o int) int { return d.rows[p].Get(o) }

// PlaneWords copies row p's plane words at wi.
func (d *DensePlanes) PlaneWords(p, wi int, dst []uint64) {
	row := d.rows[p]
	for l := 0; l < row.Bits(); l++ {
		dst[l] = row.PlaneWord(l, wi)
	}
}

// Rows exposes the backing planes (world fast paths and Renew reuse).
func (d *DensePlanes) Rows() []bitvec.Planes { return d.rows }

// LazyPlanes is the on-demand rating source: materialized cluster centers
// plus per-player sorted sparse edits. A player's row is its center's
// plane words with its edits' ratings overlaid.
type LazyPlanes struct {
	n, m, k   int
	centers   []bitvec.Planes
	clusterOf []int
	// Player p's edits are editObj/editVal[editStart[p]:editStart[p+1]],
	// object-ascending: the FINAL rating of each object p's edit walk
	// touched.
	editStart []int32
	editObj   []int32
	editVal   []int32
}

// Players returns n; Objects returns m; Bits the planes per rating.
func (lz *LazyPlanes) Players() int { return lz.n }

// Objects returns m.
func (lz *LazyPlanes) Objects() int { return lz.m }

// Bits returns the planes per rating.
func (lz *LazyPlanes) Bits() int { return lz.k }

// Rating returns the rating of (p, o): the player's edit override if the
// walk touched o, its center's cell otherwise.
func (lz *LazyPlanes) Rating(p, o int) int {
	lo, hi := lz.editStart[p], lz.editStart[p+1]
	for i := lo; i < hi; i++ {
		if int(lz.editObj[i]) == o {
			return int(lz.editVal[i])
		}
	}
	return lz.centers[lz.clusterOf[p]].Get(o)
}

// PlaneWords writes player p's plane words at wi: the center's words with
// the player's in-word edits spliced in bit by bit.
func (lz *LazyPlanes) PlaneWords(p, wi int, dst []uint64) {
	row := lz.centers[lz.clusterOf[p]]
	for l := 0; l < lz.k; l++ {
		dst[l] = row.PlaneWord(l, wi)
	}
	for i := lz.editStart[p]; i < lz.editStart[p+1]; i++ {
		o := int(lz.editObj[i])
		if o/64 != wi {
			continue
		}
		b := uint(o) % 64
		v := uint64(lz.editVal[i])
		for l := 0; l < lz.k; l++ {
			dst[l] = dst[l]&^(1<<b) | (v>>uint(l)&1)<<b
		}
	}
}

// LazyGenerate is the lazy Generate: identical draws, identical ratings,
// O(centers + edits) memory. It returns the source and the cluster
// assignment, mirroring Generate's ([]bitvec.Planes, []int).
func LazyGenerate(rng *xrand.Stream, n, m, clusterSize, diameter, scale int) (*LazyPlanes, []int) {
	return (*Buffer)(nil).LazyGenerate(rng, n, m, clusterSize, diameter, scale)
}

// LazyGenerate is the pooled lazy Generate; see Buffer.
func (b *Buffer) LazyGenerate(rng *xrand.Stream, n, m, clusterSize, diameter, scale int) (*LazyPlanes, []int) {
	if clusterSize <= 0 || clusterSize > n {
		panic("multival: bad cluster size")
	}
	if scale < 1 {
		panic("multival: scale must be ≥ 1")
	}
	numClusters := n / clusterSize
	if numClusters == 0 {
		numClusters = 1
	}
	k := bitvec.PlaneBits(scale)
	var lz *LazyPlanes
	if b == nil {
		lz = &LazyPlanes{clusterOf: make([]int, n)}
	} else {
		if cap(b.clusterOf) < n {
			b.clusterOf = make([]int, n)
		}
		lz = &b.lz
		*lz = LazyPlanes{clusterOf: b.clusterOf[:n]}
		b.centers = zeroPlanes(b.centers, numClusters, m, k)
		lz.centers = b.centers
	}
	lz.n, lz.m, lz.k = n, m, k
	if lz.centers == nil {
		lz.centers = zeroPlanes(nil, numClusters, m, k)
	}
	// Center draws are identical to Generate's (Intn per cell, in order).
	for c := range lz.centers {
		row := lz.centers[c]
		for o := 0; o < m; o++ {
			row.Set(o, rng.Intn(scale+1))
		}
	}
	perm := rng.Perm(n)
	type edit struct {
		p, o, v int32
	}
	var ents []edit
	overlay := make(map[int]int, diameter/2+1)
	for rank, p := range perm {
		c := rank / clusterSize
		if c >= numClusters {
			c = numClusters - 1
		}
		lz.clusterOf[p] = c
		// Replay the dense ±1 edit walk against an overlay instead of a
		// materialized row: Get reads the walk's CURRENT value, so draws,
		// accept/reject decisions, and final ratings all match Generate.
		clear(overlay)
		center := lz.centers[c]
		budget := diameter / 2
		for budget > 0 {
			o := rng.Intn(m)
			delta := 1
			if rng.Bool() {
				delta = -1
			}
			cur, touched := overlay[o]
			if !touched {
				cur = center.Get(o)
			}
			if nv := cur + delta; nv >= 0 && nv <= scale {
				overlay[o] = nv
				budget--
			}
		}
		objs := make([]int, 0, len(overlay))
		for o := range overlay {
			objs = append(objs, o)
		}
		sort.Ints(objs)
		for _, o := range objs {
			ents = append(ents, edit{p: int32(p), o: int32(o), v: int32(overlay[o])})
		}
	}
	// Counting-sort the per-player groups into flat object-ascending ranges.
	start := make([]int32, n+1)
	for _, e := range ents {
		start[e.p+1]++
	}
	for i := 1; i <= n; i++ {
		start[i] += start[i-1]
	}
	cursor := append([]int32(nil), start[:n]...)
	objsFlat := make([]int32, len(ents))
	valsFlat := make([]int32, len(ents))
	for _, e := range ents {
		pos := cursor[e.p]
		cursor[e.p]++
		objsFlat[pos], valsFlat[pos] = e.o, e.v
	}
	lz.editStart, lz.editObj, lz.editVal = start, objsFlat, valsFlat
	return lz, lz.clusterOf
}

// materializeRow builds player p's full bit-sliced row from any source.
func materializeRow(src RatingSource, p int) bitvec.Planes {
	if d, ok := src.(*DensePlanes); ok {
		return d.rows[p].Clone()
	}
	m, k := src.Objects(), src.Bits()
	row := bitvec.NewPlanes(m, k)
	dst := make([]uint64, k)
	for wi := 0; wi < (m+63)/64; wi++ {
		src.PlaneWords(p, wi, dst)
		for l := 0; l < k; l++ {
			row.SetPlaneWord(l, wi, dst[l])
		}
	}
	return row
}
