// Package multival implements the §8 extension of the paper: collaborative
// scoring with non-binary preferences. Players rate objects on a numeric
// scale 0..R instead of like/dislike, and similarity is measured with the
// L1 metric instead of Hamming distance.
//
// The paper conjectures that "the basic idea of using sampling to cluster
// players does not rely on these particular assumptions" (binary values,
// Hamming distance). This package realizes that claim with the natural
// generalization of CalculatePreferences:
//
//  1. draw a shared random sample set S of Θ(ln n · scale/D) of the objects;
//  2. every player probes S directly and publishes its ratings;
//  3. players whose published sample ratings are L1-close become neighbors,
//     and clusters of ≥ n/B − n/(3B) players are peeled greedily;
//  4. the probing of all m objects is shared within each cluster with
//     Θ(log n)-fold redundancy, aggregated by MEDIAN — the median of
//     Θ(log n) reports from a ≥2/3-honest cluster is within the honest
//     rating spread even under adversarial manipulation (the rank
//     statistics version of the majority argument in Lemma 13).
//
// Probing the sample directly (instead of the binary SmallRadius recursion)
// costs |S| probes per player; the binary machinery's probe savings rely on
// exact-agreement vote counting, which does not transfer to dense rating
// scales. The cluster work-sharing savings — the dominant term — transfer
// unchanged.
//
// Since PR 5 the package runs on the same vectorized engine as the binary
// protocol (DESIGN.md §12): rating rows are bit-sliced into
// ⌈log₂(scale+1)⌉ bit-planes (bitvec.Planes) so L1 distances are word-level
// plane arithmetic, the probe memo is a lock-free CAS bitset
// (bitvec.Atomic) with bulk whole-word charging, phase loops fan out on
// par.Runner schedules gated by Params.PhaseSerial/PhaseWorkers, and the
// median work-share runs over (cluster, word-block) cells with per-worker
// scratch arenas. Shared coins are split per (cluster, object) exactly as
// before the vectorization, so fixed-seed outputs are identical under every
// schedule.
package multival

import (
	"fmt"
	"math"
	"math/bits"
	"sort"
	"sync/atomic"

	"collabscore/internal/bitvec"
	"collabscore/internal/cluster"
	"collabscore/internal/metrics"
	"collabscore/internal/par"
	"collabscore/internal/xrand"
)

// Ratings is a plain integer rating row in [0, Scale] — the scalar
// reference representation. The engine itself computes on bit-sliced
// bitvec.Planes; Ratings remains the public-API materialization and the
// per-element reference the vectorized L1 is tested against.
type Ratings []int

// L1 returns the L1 distance Σ|a_i − b_i|. It panics on length mismatch.
func (a Ratings) L1(b Ratings) int {
	if len(a) != len(b) {
		panic(fmt.Sprintf("multival: length mismatch %d vs %d", len(a), len(b)))
	}
	d := 0
	for i := range a {
		if a[i] > b[i] {
			d += a[i] - b[i]
		} else {
			d += b[i] - a[i]
		}
	}
	return d
}

// Clone returns a deep copy.
func (a Ratings) Clone() Ratings {
	out := make(Ratings, len(a))
	copy(out, a)
	return out
}

// Gather extracts the ratings at the given positions.
func (a Ratings) Gather(idx []int) Ratings {
	out := make(Ratings, len(idx))
	for j, i := range idx {
		out[j] = a[i]
	}
	return out
}

// Median returns the lower median of xs (xs is modified by sorting). It is
// the scalar reference of the counting median the work-share phase uses.
func Median(xs []int) int {
	if len(xs) == 0 {
		return 0
	}
	sort.Ints(xs)
	return xs[(len(xs)-1)/2]
}

// Behavior decides what rating a player reports for an object.
// Implementations must be deterministic per (player, object) and safe for
// concurrent use: the vectorized engine may ask through bulk word-level
// paths, per-object paths, or concurrent phase goroutines, and all must
// agree (the determinism contract of internal/adversary, tested by this
// package's contract meta-test).
type Behavior interface {
	// Report returns the rating player p publishes for object o.
	Report(w *World, p, o int) int
}

// Honest probes and reports the true rating.
type Honest struct{}

// Report probes object o and returns the truth.
func (Honest) Report(w *World, p, o int) int { return w.Probe(p, o) }

// World is the rating-scale game substrate: hidden bit-sliced rating
// matrix, lock-free probe accounting, pluggable behaviors. It mirrors
// world.World for the non-binary setting: truth rows are bitvec.Planes
// (⌈log₂(scale+1)⌉ bit-planes over the object set), the probe memo is a
// CAS bitset charging each (player, object) pair exactly once under any
// schedule, and ProbePlaneWords is the bulk whole-word probe.
type World struct {
	n, m, words int
	scale       int
	k           int // bit-planes per rating, PlaneBits(scale)
	// src is the pluggable truth representation (DESIGN.md §14); truth is
	// the dense fast path, aliasing src's rows when src is *DensePlanes and
	// nil for lazy sources.
	src       RatingSource
	truth     []bitvec.Planes
	tailMask  uint64
	honest    []bool
	behaviors []Behavior
	probes    []atomic.Int64
	// known is the per-player probe memo, installed on a player's first
	// probe (memo) rather than at construction — mirroring world.World, so
	// lazy rating worlds stay O(centers + edits) until probed.
	known []atomic.Pointer[bitvec.Atomic]
}

// NewWorld builds a rating world from a bit-sliced truth matrix with
// ratings in [0, scale]. Rows must have PlaneBits(scale) planes (as
// Generate produces).
func NewWorld(truth []bitvec.Planes, scale int) *World {
	return NewWorldFrom(NewDensePlanes(truth), scale)
}

// NewWorldFrom builds a rating world over any rating source — the
// materialized DensePlanes wrapper (NewWorld) or a lazy on-demand source.
func NewWorldFrom(src RatingSource, scale int) *World {
	if src.Players() == 0 {
		panic("multival: no players")
	}
	if scale < 1 {
		panic("multival: scale must be ≥ 1")
	}
	n, m := src.Players(), src.Objects()
	w := &World{
		n:         n,
		m:         m,
		words:     (m + 63) / 64,
		scale:     scale,
		k:         bitvec.PlaneBits(scale),
		src:       src,
		truth:     densePlaneRows(src),
		tailMask:  planesTailMask(m),
		honest:    make([]bool, n),
		behaviors: make([]Behavior, n),
		probes:    make([]atomic.Int64, n),
		known:     make([]atomic.Pointer[bitvec.Atomic], n),
	}
	w.checkRows()
	for p := range w.honest {
		w.honest[p] = true
		w.behaviors[p] = Honest{}
	}
	return w
}

// Renew re-initializes a world for a new truth matrix and scale, reusing
// w's allocations (role slices, probe counters, probe memos) when the
// player/object shape matches; a nil w or a shape change falls back to
// NewWorld. All players start honest and all counters start at zero,
// exactly as NewWorld leaves them, so a renewed world is observationally
// identical to a fresh one — it is the pooled constructor the sweep
// engine's rating arenas use (DESIGN.md §12). The previous truth matrix
// and any outstanding references to the old world must no longer be in use.
func Renew(w *World, truth []bitvec.Planes, scale int) *World {
	return RenewFrom(w, NewDensePlanes(truth), scale)
}

// RenewFrom is Renew over any rating source; see Renew and NewWorldFrom.
func RenewFrom(w *World, src RatingSource, scale int) *World {
	if w == nil || src.Players() != w.n || src.Players() == 0 || src.Objects() != w.m || scale < 1 {
		return NewWorldFrom(src, scale)
	}
	w.src = src
	w.truth = densePlaneRows(src)
	w.scale = scale
	w.k = bitvec.PlaneBits(scale)
	w.checkRows()
	for p := range w.honest {
		w.honest[p] = true
		w.behaviors[p] = Honest{}
	}
	w.ResetProbes()
	return w
}

// densePlaneRows returns the fast-path rows of a dense source, nil for any
// other source.
func densePlaneRows(src RatingSource) []bitvec.Planes {
	if d, ok := src.(*DensePlanes); ok {
		return d.Rows()
	}
	return nil
}

// planesTailMask returns the valid-bit mask of the last word of an m-object
// plane.
func planesTailMask(m int) uint64 {
	if r := m % 64; r != 0 {
		return (1 << uint(r)) - 1
	}
	return ^uint64(0)
}

func (w *World) checkRows() {
	if w.truth == nil {
		if w.src.Bits() != w.k {
			panic(fmt.Sprintf("multival: truth source has %d planes, want %d", w.src.Bits(), w.k))
		}
		return
	}
	for p, row := range w.truth {
		if row.Len() != w.m || row.Bits() != w.k {
			panic(fmt.Sprintf("multival: truth row %d has shape %d×%d, want %d×%d",
				p, row.Len(), row.Bits(), w.m, w.k))
		}
	}
}

// N returns the number of players; M the number of objects; Scale the
// rating scale; Bits the number of bit-planes per rating.
func (w *World) N() int     { return w.n }
func (w *World) M() int     { return w.m }
func (w *World) Scale() int { return w.scale }
func (w *World) Bits() int  { return w.k }

// ProbeWords returns the number of 64-bit words spanning the object set:
// the word index range valid for ProbePlaneWords. Object o lives in word
// o/64, bit o%64 of every plane.
func (w *World) ProbeWords() int { return (w.m + 63) / 64 }

// memo returns player p's probe memo, installing it on first use (the CAS
// race is settled exactly as in world.World.memo).
func (w *World) memo(p int) *bitvec.Atomic {
	if k := w.known[p].Load(); k != nil {
		return k
	}
	fresh := bitvec.NewAtomic(w.m)
	if w.known[p].CompareAndSwap(nil, &fresh) {
		return &fresh
	}
	return w.known[p].Load()
}

// chargeWord marks every bit of mask probed in object word wi and charges
// the newly learned bits — one CAS and one atomic add for up to 64
// (player, object) pairs, with per-pair exactly-once charging under any
// schedule (the memo's CAS settles races).
func (w *World) chargeWord(p, wi int, mask uint64) {
	if nb := w.memo(p).OrWord(wi, mask); nb != 0 {
		w.probes[p].Add(int64(bits.OnesCount64(nb)))
	}
}

// wordMask returns the valid-bit mask for object word wi, panicking on an
// out-of-range index like bitvec.Planes.WordMask does — representation-
// independent, so dense and lazy worlds fail identically.
func (w *World) wordMask(wi int) uint64 {
	if wi < 0 || wi >= w.words {
		panic(fmt.Sprintf("bitvec: word %d out of range [0,%d)", wi, w.words))
	}
	if wi == w.words-1 {
		return w.tailMask
	}
	return ^uint64(0)
}

// Probe returns the true rating and charges a probe for the first visit.
// It is safe and lock-free under concurrent use: the memo's CAS ensures
// exactly one caller charges each (player, object) pair, so probe counters
// are schedule-independent.
func (w *World) Probe(p, o int) int {
	if !w.memo(p).TestAndSet(o) {
		w.probes[p].Add(1)
	}
	if w.truth != nil {
		return w.truth[p].Get(o)
	}
	return w.src.Rating(p, o)
}

// ProbePlaneWords probes, as player p, every object whose bit is set in
// mask within object word wi, and writes the true rating bits for exactly
// those objects into dst (one word per plane, aligned with mask; dst must
// have Bits() entries). Bits of mask past the last object are ignored.
// Charging is identical to per-object Probe calls on the mask's objects.
func (w *World) ProbePlaneWords(p, wi int, mask uint64, dst []uint64) {
	mask &= w.wordMask(wi)
	w.chargeWord(p, wi, mask)
	if w.truth != nil {
		row := w.truth[p]
		for l := 0; l < w.k; l++ {
			dst[l] = row.PlaneWord(l, wi) & mask
		}
		return
	}
	w.src.PlaneWords(p, wi, dst[:w.k])
	for l := 0; l < w.k; l++ {
		dst[l] &= mask
	}
}

// ProbeValues probes, as player p, every object in objs and returns the
// true ratings bit-sliced and indexed like objs. Runs of objects sharing a
// 64-bit word — the common case, since protocol object lists are sorted —
// collapse into single whole-word memo updates, and the only allocation is
// the returned Planes. Probe charging is identical to calling Probe per
// object.
func (w *World) ProbeValues(p int, objs []int) bitvec.Planes {
	curW := -1
	var curMask uint64
	for _, o := range objs {
		if o < 0 || o >= w.m {
			panic(fmt.Sprintf("multival: object %d out of range [0,%d)", o, w.m))
		}
		wi := o / 64
		if wi != curW {
			if curMask != 0 {
				w.chargeWord(p, curW, curMask)
			}
			curW, curMask = wi, 0
		}
		curMask |= 1 << (uint(o) % 64)
	}
	if curMask != 0 {
		w.chargeWord(p, curW, curMask)
	}
	if w.truth != nil {
		return w.truth[p].Gather(objs)
	}
	out := bitvec.NewPlanes(len(objs), w.k)
	for j, o := range objs {
		out.Set(j, w.src.Rating(p, o))
	}
	return out
}

// PeekTruth returns the true rating without accounting (adversary and
// measurement use).
func (w *World) PeekTruth(p, o int) int {
	if w.truth != nil {
		return w.truth[p].Get(o)
	}
	return w.src.Rating(p, o)
}

// truthRow returns p's bit-sliced truth row, materializing it for lazy
// sources (measurement paths only).
func (w *World) truthRow(p int) bitvec.Planes {
	if w.truth != nil {
		return w.truth[p]
	}
	return materializeRow(w.src, p)
}

// TruthRow returns a copy of p's true ratings as a scalar row
// (measurement use only).
func (w *World) TruthRow(p int) Ratings { return Ratings(w.truthRow(p).Ints()) }

// TruthMirror returns scale − truth for player p, word-parallel — the §7
// worst-case repetition output (adversary and measurement use; no probe
// accounting).
func (w *World) TruthMirror(p int) bitvec.Planes { return w.truthRow(p).SubFrom(w.scale) }

// Probes returns the probe count of player p.
func (w *World) Probes(p int) int64 { return w.probes[p].Load() }

// MaxHonestProbes returns the probe complexity measure: the worst probe
// count over honest players.
func (w *World) MaxHonestProbes() int64 {
	var mx int64
	for p := 0; p < w.n; p++ {
		if w.honest[p] {
			if c := w.probes[p].Load(); c > mx {
				mx = c
			}
		}
	}
	return mx
}

// MeanHonestProbes returns the average probe count over honest players.
func (w *World) MeanHonestProbes() float64 {
	var total int64
	cnt := 0
	for p := 0; p < w.n; p++ {
		if w.honest[p] {
			total += w.probes[p].Load()
			cnt++
		}
	}
	if cnt == 0 {
		return 0
	}
	return float64(total) / float64(cnt)
}

// TotalProbes returns the total probes charged across all players.
func (w *World) TotalProbes() int64 {
	var t int64
	for p := range w.probes {
		t += w.probes[p].Load()
	}
	return t
}

// ResetProbes zeroes all probe counters and forgets all memoized probes.
// It must not run concurrently with Probe calls (a between-runs operation).
func (w *World) ResetProbes() {
	for p := range w.probes {
		w.probes[p].Store(0)
		if k := w.known[p].Load(); k != nil {
			k.Reset() // keep the allocation for pooled reuse
		}
	}
}

// SetBehavior installs a behavior; non-Honest behaviors mark the player
// dishonest.
func (w *World) SetBehavior(p int, b Behavior) {
	w.behaviors[p] = b
	_, isHonest := b.(Honest)
	w.honest[p] = isHonest
}

// IsHonest reports whether p follows the protocol.
func (w *World) IsHonest(p int) bool { return w.honest[p] }

// Report asks p's behavior for its published rating of o.
func (w *World) Report(p, o int) int { return w.behaviors[p].Report(w, p, o) }

// ReportValues returns player p's reports for the given objects,
// bit-sliced and indexed like objs. Honest players ride the bulk probe
// path (ProbeValues, identical charging to per-object probes); dishonest
// players are asked per object through their behavior, with out-of-scale
// reports clamped — the bulletin board validates writes.
func (w *World) ReportValues(p int, objs []int) bitvec.Planes {
	if w.honest[p] {
		return w.ProbeValues(p, objs)
	}
	out := bitvec.NewPlanes(len(objs), w.k)
	for j, o := range objs {
		out.Set(j, clampRating(w.Report(p, o), w.scale))
	}
	return out
}

// ReportPlaneWords writes player p's reports for the objects whose bits
// are set in mask within object word wi into dst (one word per plane,
// aligned with mask). Honest players ride ProbePlaneWords (two atomics for
// the whole word); dishonest players are asked per object through their
// behavior, in ascending object order, clamped into scale.
func (w *World) ReportPlaneWords(p, wi int, mask uint64, dst []uint64) {
	mask &= w.wordMask(wi)
	if w.honest[p] {
		w.ProbePlaneWords(p, wi, mask, dst)
		return
	}
	for l := range dst {
		dst[l] = 0
	}
	base := wi * 64
	for t := mask; t != 0; t &= t - 1 {
		b := uint(bits.TrailingZeros64(t))
		v := clampRating(w.Report(p, base+int(b)), w.scale)
		for l := 0; l < w.k; l++ {
			if v>>l&1 == 1 {
				dst[l] |= 1 << b
			}
		}
	}
}

// Params configures the generalized protocol.
type Params struct {
	// B is the budget parameter (clusters of ≥ n/B − n/(3B) players).
	B int
	// SampleFactor f sets |S| ≈ f·ln(n)·n·scale/D for diameter guess D
	// (sampling rate f·ln(n)·scale/D per object, capped at 1).
	SampleFactor float64
	// EdgeFactor e sets the neighbor threshold to e× the expected sampled
	// L1 distance of a pair at the diameter guess (e·rate·D).
	EdgeFactor float64
	// RedundancyFactor r sets ⌈r·ln n⌉ probers per (cluster, object).
	RedundancyFactor float64
	// MinD/MaxD restrict the diameter-doubling loop (L1 diameters).
	MinD, MaxD int

	// PhaseSerial forces the protocol's phase loops (publish, neighbor
	// graph, median work-share, final selection) onto the single-threaded
	// reference schedule; PhaseWorkers, when positive and PhaseSerial is
	// unset, pins them to exactly that many workers (par.Fixed). Phase
	// loops fan out on pre-split streams with index-ordered merges, so
	// fixed-seed output is byte-identical under every schedule — the same
	// contract as core.Params (DESIGN.md §9, §12).
	PhaseSerial  bool
	PhaseWorkers int
	// ByzSerial forces the Byzantine wrapper's repetitions to execute one
	// after another instead of concurrently, mirroring core.Params.
	ByzSerial bool

	// PeelSerial forces the clustering step's peel onto the verbatim
	// greedy loop (cluster.Build) instead of the batched peel
	// (cluster.BuildOn); the two are pinned byte-identical, mirroring
	// core.Params.PeelSerial (DESIGN.md §17).
	PeelSerial bool

	// NeighborIndex selects the neighbor graph's representation
	// ("+dense"/"+sparse"/"+auto"), mirroring core.Params.NeighborIndex.
	// Only the representation half of the spec applies here: L1 neighbor
	// discovery always runs the exact block-pair sweep
	// (cluster.BuildGraphL1On) because the LSH banding index hashes
	// Hamming lanes, not bit-sliced L1 rows; Run panics on Kind "lsh" to
	// keep the knob honest.
	NeighborIndex cluster.IndexSpec
}

// Scaled returns simulation-scale constants mirroring core.Scaled.
func Scaled(n, b int) Params {
	return Params{B: b, SampleFactor: 0.5, EdgeFactor: 4, RedundancyFactor: 1.5}
}

// phaseExec resolves the schedule flags to the phase-loop executor.
func phaseExec(pr Params) *par.Runner {
	return par.Sched(pr.PhaseSerial, pr.PhaseWorkers)
}

// Result is the protocol output.
type Result struct {
	// Output[p] is the predicted bit-sliced rating vector of player p.
	Output []bitvec.Planes
	// Ds lists the diameter guesses executed, and NumClusters[i] the
	// number of clusters peeled at guess Ds[i], for instrumentation.
	Ds          []int
	NumClusters []int
}

// Run executes the generalized CalculatePreferences over the rating world.
// Shared coins are split per phase, per cluster, and per object from the
// given stream, so for a fixed seed the output is identical under every
// schedule (PhaseSerial, fixed-width, parallel).
func Run(w *World, shared *xrand.Stream, pr Params) *Result {
	if !pr.NeighborIndex.IsExact() {
		panic("multival: NeighborIndex kind " + pr.NeighborIndex.Kind +
			" is Hamming-only; L1 discovery supports representation specs only")
	}
	n, m := w.N(), w.M()
	exec := phaseExec(pr)
	lnn := lnN(n)
	minSize := n/pr.B - n/(3*pr.B)
	if minSize < 1 {
		minSize = 1
	}
	res := &Result{}

	lo, hi := pr.MinD, pr.MaxD
	if lo <= 0 {
		lo = 1
	}
	if hi <= 0 {
		hi = n * w.scale
	}
	var candidates [][]bitvec.Planes // per guess: one vector per player
	gi := 0
	for d := 1; d <= n*w.scale; d *= 2 {
		if d < lo || d > hi {
			continue
		}
		iterRng := shared.Split(uint64(gi), uint64(d))
		gi++
		res.Ds = append(res.Ds, d)
		candidates = append(candidates, runIteration(w, exec, d, minSize, lnn, iterRng, pr, res))
	}
	if len(candidates) == 0 {
		zero := bitvec.NewPlanes(m, w.k)
		res.Output = make([]bitvec.Planes, n)
		for p := range res.Output {
			res.Output[p] = zero // shared zero vector, never mutated
		}
		return res
	}

	// Final selection per player: probe a few random objects and keep the
	// candidate with the smallest L1 disagreement (the RSelect analogue;
	// sampling L1 distances concentrates the same way). Selection coins are
	// split per player, so the outcome is schedule-independent.
	zero := bitvec.NewPlanes(m, w.k)
	res.Output = make([]bitvec.Planes, n)
	exec.For(n, func(p int) {
		if !w.IsHonest(p) {
			res.Output[p] = zero
			return
		}
		if len(candidates) == 1 {
			res.Output[p] = candidates[0][p]
			return
		}
		rng := shared.Split(0xFE11, uint64(p))
		check := rng.Sample(m, minInt(m, 8*int(lnn)))
		best, bestScore := 0, 1<<60
		for ci := range candidates {
			cand := candidates[ci][p]
			score := 0
			for _, o := range check {
				truth := w.Probe(p, o)
				r := cand.Get(o)
				if r > truth {
					score += r - truth
				} else {
					score += truth - r
				}
			}
			if score < bestScore {
				best, bestScore = ci, score
			}
		}
		res.Output[p] = candidates[best][p]
	})
	return res
}

// runIteration performs one diameter guess: sample, publish, cluster,
// median work-share — all on the run's executor and the word-level data
// path.
func runIteration(w *World, exec *par.Runner, d, minSize int, lnn float64, shared *xrand.Stream, pr Params, res *Result) []bitvec.Planes {
	n, m := w.N(), w.M()
	rate := pr.SampleFactor * lnn * float64(w.scale) / float64(d)
	if rate > 1 {
		rate = 1
	}
	sample := shared.Split(0x5A).BernoulliSubset(m, rate)
	if len(sample) == 0 {
		sample = []int{0}
	}

	// Every player publishes its (claimed) ratings on the sample,
	// bit-sliced; honest rows ride the bulk probe path.
	published := make([]bitvec.Planes, n)
	exec.For(n, func(p int) {
		published[p] = w.ReportValues(p, sample)
	})

	// Neighbor graph on L1 sample distance: a pair at true L1 distance d
	// lands at ≈ rate·d on the sample, so the edge threshold is a small
	// multiple of that. The sweep rides the cluster.Graph seam like the
	// binary path — block-partitioned over the executor, each pair's
	// bit-sliced L1 computed once (the engine's private [][]int adjacency
	// build computed every distance twice), filling the representation the
	// NeighborIndex spec picks — and the peel is the shared batched one,
	// with PeelSerial selecting the verbatim greedy loop. The scalar
	// slice-of-slices peel this replaced survives in the tests as the
	// reference oracle (TestGraphSeamMatchesScalarPeel).
	threshold := int(pr.EdgeFactor * rate * float64(d))
	if threshold < 1 {
		threshold = 1
	}
	g := cluster.BuildGraphL1On(exec, published, threshold, pr.NeighborIndex.Rep())
	var cl *cluster.Clustering
	if pr.PeelSerial {
		cl = cluster.Build(g, minSize)
	} else {
		cl = cluster.BuildOn(exec, g, minSize)
	}
	res.NumClusters = append(res.NumClusters, len(cl.Clusters))

	// Median work sharing over (cluster, word-block) cells — 64 objects per
	// cell — with per-worker scratch arenas (no allocation in the loop
	// body). For each object the shared per-(cluster, object) stream picks
	// red probers with repetition (exactly the scalar engine's draw order);
	// each touched member's reports for the whole block are fetched once,
	// bit-sliced (bulk probes for honest members), and the per-object
	// counting median — equal to Median over the same multiset — is
	// accumulated a plane word at a time. Every member of a cluster shares
	// the cluster's one immutable median vector; candidates are never
	// mutated downstream, so a per-member clone would be pure allocation.
	red := int(pr.RedundancyFactor*lnn) + 1
	out := make([]bitvec.Planes, n)
	zero := bitvec.NewPlanes(m, w.k)
	for p := range out {
		out[p] = zero // shared default for unassigned players (never mutated)
	}
	numCl := len(cl.Clusters)
	if numCl == 0 || m == 0 {
		return out
	}
	maxMembers := 0
	for _, members := range cl.Clusters {
		if len(members) > maxMembers {
			maxMembers = len(members)
		}
	}
	clusterStreams := make([]xrand.Stream, numCl)
	for j := range clusterStreams {
		clusterStreams[j] = shared.SplitValue(0x5C, uint64(j))
	}
	majs := make([]bitvec.Planes, numCl)
	for j := range majs {
		majs[j] = bitvec.NewPlanes(m, w.k)
	}

	words := (m + 63) / 64
	cells := numCl * words
	scratches := make([]mvScratch, exec.Workers(cells))
	for i := range scratches {
		scratches[i].init(red, maxMembers, w.k, w.scale)
	}
	exec.ForWorker(cells, func(wk, cell int) {
		sc := &scratches[wk]
		j, wb := cell/words, cell%words
		members := cl.Clusters[j]
		base := wb * 64
		hi := base + 64
		if hi > m {
			hi = m
		}
		// Pass 1: shared coins choose each object's probers (member
		// indices, with repetition — duplicates count twice in the median,
		// as in the scalar engine), accumulating each touched member's
		// 64-object fetch mask.
		for o := base; o < hi; o++ {
			rng := clusterStreams[j].SplitValue(uint64(o))
			row := sc.picks[(o-base)*red : (o-base)*red+red]
			bit := uint64(1) << uint(o-base)
			for i := range row {
				mi := rng.Intn(len(members))
				row[i] = mi
				if sc.mask[mi] == 0 {
					sc.touched = append(sc.touched, mi)
				}
				sc.mask[mi] |= bit
			}
		}
		// Pass 2: fetch each touched member's bit-sliced reports for the
		// block — one bulk probe (two atomics) per honest (member, block).
		for _, mi := range sc.touched {
			w.ReportPlaneWords(members[mi], wb, sc.mask[mi], sc.vals[mi*w.k:mi*w.k+w.k])
		}
		// Pass 3: per-object counting median, accumulated into plane words.
		for l := 0; l < w.k; l++ {
			sc.outw[l] = 0
		}
		for o := base; o < hi; o++ {
			b := uint(o - base)
			for v := range sc.counts {
				sc.counts[v] = 0
			}
			row := sc.picks[(o-base)*red : (o-base)*red+red]
			for _, mi := range row {
				v := 0
				vals := sc.vals[mi*w.k : mi*w.k+w.k]
				for l, wv := range vals {
					v |= int(wv>>b&1) << l
				}
				sc.counts[v]++
			}
			med, cum := 0, 0
			target := (red - 1) / 2
			for v, c := range sc.counts {
				cum += c
				if cum > target {
					med = v
					break
				}
			}
			for l := 0; l < w.k; l++ {
				if med>>l&1 == 1 {
					sc.outw[l] |= 1 << b
				}
			}
		}
		for l := 0; l < w.k; l++ {
			majs[j].SetPlaneWord(l, wb, sc.outw[l])
		}
		// Reset the arena: no state crosses cells, so results stay
		// schedule-independent (par.Runner.ForWorker contract).
		for _, mi := range sc.touched {
			sc.mask[mi] = 0
		}
		sc.touched = sc.touched[:0]
	})
	for j, members := range cl.Clusters {
		for _, p := range members {
			out[p] = majs[j]
		}
	}
	return out
}

// mvScratch is one worker's reusable buffers for the median work-share
// loop: the per-object prober choices for a 64-object block, each touched
// member's fetch mask and bit-sliced report words, the counting-median
// histogram, and the accumulated output plane words. A worker resets its
// arena at the end of every cell (par.Runner.ForWorker).
type mvScratch struct {
	picks   []int    // 64·red prober choices (member indices) for one block
	mask    []uint64 // mask[mi] = member mi's fetch mask, this block
	vals    []uint64 // vals[mi·k : (mi+1)·k] = member mi's report planes
	touched []int    // member indices with mask != 0, in first-touch order
	counts  []int    // scale+1 counting-median histogram
	outw    []uint64 // k accumulated median plane words
}

func (sc *mvScratch) init(red, maxMembers, k, scale int) {
	sc.picks = make([]int, 64*red)
	sc.mask = make([]uint64, maxMembers)
	sc.vals = make([]uint64, maxMembers*k)
	sc.touched = make([]int, 0, maxMembers)
	sc.counts = make([]int, scale+1)
	sc.outw = make([]uint64, k)
}

// clampRating forces reported ratings into [0, scale]; dishonest players
// cannot inject out-of-scale values (the bulletin board validates writes).
func clampRating(r, scale int) int {
	if r < 0 {
		return 0
	}
	if r > scale {
		return scale
	}
	return r
}

// peel is the scalar §6.5 peeling over a plain adjacency list — the
// engine's pre-seam clustering, kept as the reference oracle the
// graph-seam path (BuildGraphL1On + cluster.Build/BuildOn) is pinned
// byte-identical to (TestGraphSeamMatchesScalarPeel).
func peel(adj [][]int, n, minSize int) *cluster.Clustering {
	alive := make([]bool, n)
	for i := range alive {
		alive[i] = true
	}
	of := make([]int, n)
	for i := range of {
		of[i] = -1
	}
	var clusters [][]int
	for {
		found := -1
		for p := 0; p < n; p++ {
			if !alive[p] {
				continue
			}
			deg := 0
			for _, q := range adj[p] {
				if alive[q] {
					deg++
				}
			}
			if deg >= minSize-1 {
				found = p
				break
			}
		}
		if found < 0 {
			break
		}
		members := []int{found}
		for _, q := range adj[found] {
			if alive[q] {
				members = append(members, q)
			}
		}
		j := len(clusters)
		for _, q := range members {
			alive[q] = false
			of[q] = j
		}
		clusters = append(clusters, members)
	}
	for p := 0; p < n; p++ {
		if !alive[p] {
			continue
		}
		for _, q := range adj[p] {
			if of[q] >= 0 {
				of[p] = of[q]
				clusters[of[q]] = append(clusters[of[q]], p)
				alive[p] = false
				break
			}
		}
	}
	return &cluster.Clustering{Clusters: clusters, Of: of}
}

// Errors returns per-honest-player L1 errors of the outputs, word-level.
func Errors(w *World, out []bitvec.Planes) []int {
	var errs []int
	for p := 0; p < w.N(); p++ {
		if !w.IsHonest(p) {
			continue
		}
		errs = append(errs, w.truthRow(p).L1(out[p]))
	}
	return errs
}

// ErrorStats summarizes per-player L1 errors.
func ErrorStats(w *World, out []bitvec.Planes) metrics.ErrorStats {
	return metrics.Summarize(Errors(w, out))
}

// Buffer is a reusable allocation arena for rating-instance generation,
// mirroring prefgen.Buffer: its Generate draws exactly the same random
// streams as the package-level Generate — for a given rng the generated
// instance is bit-identical — but builds the truth planes in pooled
// storage. Each call invalidates the rows returned by the previous call on
// the same Buffer. A Buffer is not safe for concurrent use: pool one per
// worker. The zero value is ready; a nil *Buffer allocates fresh on every
// call, which is how the package-level Generate is implemented.
type Buffer struct {
	truth     []bitvec.Planes
	centers   []bitvec.Planes
	clusterOf []int
	// lz is the pooled LazyPlanes value LazyGenerate hands out (source.go).
	lz LazyPlanes
}

// Generate plants clusters of the given size whose members are within L1
// diameter of each other on a 0..scale rating scale, mirroring
// prefgen.DiameterClusters. The returned rows are bit-sliced
// (PlaneBits(scale) planes each).
func Generate(rng *xrand.Stream, n, m, clusterSize, diameter, scale int) ([]bitvec.Planes, []int) {
	return (*Buffer)(nil).Generate(rng, n, m, clusterSize, diameter, scale)
}

// Generate is the pooled Generate; see Buffer.
func (b *Buffer) Generate(rng *xrand.Stream, n, m, clusterSize, diameter, scale int) ([]bitvec.Planes, []int) {
	if clusterSize <= 0 || clusterSize > n {
		panic("multival: bad cluster size")
	}
	if scale < 1 {
		panic("multival: scale must be ≥ 1")
	}
	numClusters := n / clusterSize
	if numClusters == 0 {
		numClusters = 1
	}
	k := bitvec.PlaneBits(scale)
	var centers, truth []bitvec.Planes
	var clusterOf []int
	if b == nil {
		centers = zeroPlanes(nil, numClusters, m, k)
		truth = zeroPlanes(nil, n, m, k)
		clusterOf = make([]int, n)
	} else {
		b.centers = zeroPlanes(b.centers, numClusters, m, k)
		b.truth = zeroPlanes(b.truth, n, m, k)
		if cap(b.clusterOf) < n {
			b.clusterOf = make([]int, n)
		}
		centers, truth, clusterOf = b.centers, b.truth, b.clusterOf[:n]
	}
	for c := range centers {
		row := centers[c]
		for o := 0; o < m; o++ {
			row.Set(o, rng.Intn(scale+1))
		}
	}
	perm := rng.Perm(n)
	for rank, p := range perm {
		c := rank / clusterSize
		if c >= numClusters {
			c = numClusters - 1
		}
		clusterOf[p] = c
		row := truth[p]
		row.CopyFrom(centers[c])
		budget := diameter / 2
		for budget > 0 {
			o := rng.Intn(m)
			delta := 1
			if rng.Bool() {
				delta = -1
			}
			nv := row.Get(o) + delta
			if nv >= 0 && nv <= scale {
				row.Set(o, nv)
				budget--
			}
		}
	}
	return truth, clusterOf
}

// zeroPlanes resizes ps to count zeroed Planes of m values × k bits,
// reusing both the slice and each row's backing words when capacities
// allow (mirroring prefgen.zeroVecs).
func zeroPlanes(ps []bitvec.Planes, count, m, k int) []bitvec.Planes {
	if cap(ps) < count {
		grown := make([]bitvec.Planes, count)
		copy(grown, ps[:cap(ps)]) // keep old rows' storage for Renew
		ps = grown
	}
	ps = ps[:count]
	for i := range ps {
		ps[i] = ps[i].Renew(m, k)
	}
	return ps
}

// RandomRater is the non-binary random liar: consistent pseudo-random
// ratings.
type RandomRater struct{ Seed uint64 }

// Report returns a consistent pseudo-random rating.
func (r RandomRater) Report(w *World, p, o int) int {
	x := r.Seed ^ uint64(p)<<32 ^ uint64(o)
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	return int(x % uint64(w.Scale()+1))
}

// Exaggerator pushes every rating to the nearest extreme of the scale —
// the attack median aggregation is specifically robust to.
type Exaggerator struct{}

// Report returns 0 or scale depending on the player's true lean.
func (Exaggerator) Report(w *World, p, o int) int {
	if w.PeekTruth(p, o)*2 >= w.Scale() {
		return w.Scale()
	}
	return 0
}

// Shifter reports truth plus a constant bias (clamped), modeling a
// systematically harsh or generous dishonest reviewer.
type Shifter struct{ Delta int }

// Report returns the biased rating.
func (s Shifter) Report(w *World, p, o int) int {
	return clampRating(w.PeekTruth(p, o)+s.Delta, w.Scale())
}

// Inverter reports scale − truth: the rating-scale analogue of the binary
// complement liar (adversary.FlipAll).
type Inverter struct{}

// Report returns the mirrored rating.
func (Inverter) Report(w *World, p, o int) int {
	return w.Scale() - w.PeekTruth(p, o)
}

func lnN(n int) float64 {
	v := math.Log(float64(n))
	if v < 1 {
		v = 1
	}
	return v
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
