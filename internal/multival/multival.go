// Package multival implements the §8 extension of the paper: collaborative
// scoring with non-binary preferences. Players rate objects on a numeric
// scale 0..R instead of like/dislike, and similarity is measured with the
// L1 metric instead of Hamming distance.
//
// The paper conjectures that "the basic idea of using sampling to cluster
// players does not rely on these particular assumptions" (binary values,
// Hamming distance). This package realizes that claim with the natural
// generalization of CalculatePreferences:
//
//  1. draw a shared random sample set S of Θ(ln n · scale/D) of the objects;
//  2. every player probes S directly and publishes its ratings;
//  3. players whose published sample ratings are L1-close become neighbors,
//     and clusters of ≥ n/B − n/(3B) players are peeled greedily;
//  4. the probing of all m objects is shared within each cluster with
//     Θ(log n)-fold redundancy, aggregated by MEDIAN — the median of
//     Θ(log n) reports from a ≥2/3-honest cluster is within the honest
//     rating spread even under adversarial manipulation (the rank
//     statistics version of the majority argument in Lemma 13).
//
// Probing the sample directly (instead of the binary SmallRadius recursion)
// costs |S| probes per player; the binary machinery's probe savings rely on
// exact-agreement vote counting, which does not transfer to dense rating
// scales. The cluster work-sharing savings — the dominant term — transfer
// unchanged.
package multival

import (
	"fmt"
	"math"
	"sort"

	"collabscore/internal/cluster"
	"collabscore/internal/metrics"
	"collabscore/internal/par"
	"collabscore/internal/xrand"
)

// Ratings is a vector of integer ratings in [0, Scale].
type Ratings []int

// L1 returns the L1 distance Σ|a_i − b_i|. It panics on length mismatch.
func (a Ratings) L1(b Ratings) int {
	if len(a) != len(b) {
		panic(fmt.Sprintf("multival: length mismatch %d vs %d", len(a), len(b)))
	}
	d := 0
	for i := range a {
		if a[i] > b[i] {
			d += a[i] - b[i]
		} else {
			d += b[i] - a[i]
		}
	}
	return d
}

// Clone returns a deep copy.
func (a Ratings) Clone() Ratings {
	out := make(Ratings, len(a))
	copy(out, a)
	return out
}

// Gather extracts the ratings at the given positions.
func (a Ratings) Gather(idx []int) Ratings {
	out := make(Ratings, len(idx))
	for j, i := range idx {
		out[j] = a[i]
	}
	return out
}

// Median returns the lower median of xs (xs is modified by sorting).
func Median(xs []int) int {
	if len(xs) == 0 {
		return 0
	}
	sort.Ints(xs)
	return xs[(len(xs)-1)/2]
}

// Behavior decides what rating a player reports for an object.
type Behavior interface {
	// Report returns the rating player p publishes for object o.
	Report(w *World, p, o int) int
}

// Honest probes and reports the true rating.
type Honest struct{}

// Report probes object o and returns the truth.
func (Honest) Report(w *World, p, o int) int { return w.Probe(p, o) }

// World is the rating-scale game substrate: hidden rating matrix, probe
// accounting, pluggable behaviors. It mirrors world.World for the
// non-binary setting.
type World struct {
	n, m      int
	scale     int
	truth     [][]int
	honest    []bool
	behaviors []Behavior
	probed    [][]bool
	probes    []int
}

// NewWorld builds a rating world from a truth matrix with ratings in
// [0, scale].
func NewWorld(truth [][]int, scale int) *World {
	if len(truth) == 0 {
		panic("multival: no players")
	}
	m := len(truth[0])
	w := &World{
		n:         len(truth),
		m:         m,
		scale:     scale,
		truth:     truth,
		honest:    make([]bool, len(truth)),
		behaviors: make([]Behavior, len(truth)),
		probed:    make([][]bool, len(truth)),
		probes:    make([]int, len(truth)),
	}
	for p := range truth {
		if len(truth[p]) != m {
			panic("multival: ragged truth matrix")
		}
		w.honest[p] = true
		w.behaviors[p] = Honest{}
		w.probed[p] = make([]bool, m)
	}
	return w
}

// N returns the number of players; M the number of objects; Scale the
// rating scale.
func (w *World) N() int     { return w.n }
func (w *World) M() int     { return w.m }
func (w *World) Scale() int { return w.scale }

// Probe returns the true rating and charges a probe for the first visit.
// Not safe for concurrent probes by the same player; the protocol phases
// here parallelize across players only.
func (w *World) Probe(p, o int) int {
	if !w.probed[p][o] {
		w.probed[p][o] = true
		w.probes[p]++
	}
	return w.truth[p][o]
}

// PeekTruth returns the true rating without accounting (adversary and
// measurement use).
func (w *World) PeekTruth(p, o int) int { return w.truth[p][o] }

// Probes returns the probe count of player p.
func (w *World) Probes(p int) int { return w.probes[p] }

// MaxHonestProbes returns the probe complexity measure.
func (w *World) MaxHonestProbes() int {
	mx := 0
	for p := 0; p < w.n; p++ {
		if w.honest[p] && w.probes[p] > mx {
			mx = w.probes[p]
		}
	}
	return mx
}

// SetBehavior installs a behavior; non-Honest behaviors mark the player
// dishonest.
func (w *World) SetBehavior(p int, b Behavior) {
	w.behaviors[p] = b
	_, isHonest := b.(Honest)
	w.honest[p] = isHonest
}

// IsHonest reports whether p follows the protocol.
func (w *World) IsHonest(p int) bool { return w.honest[p] }

// Report asks p's behavior for its published rating of o.
func (w *World) Report(p, o int) int { return w.behaviors[p].Report(w, p, o) }

// TruthRow returns a copy of p's true ratings.
func (w *World) TruthRow(p int) Ratings { return Ratings(w.truth[p]).Clone() }

// Params configures the generalized protocol.
type Params struct {
	// B is the budget parameter (clusters of ≥ n/B − n/(3B) players).
	B int
	// SampleFactor f sets |S| ≈ f·ln(n)·n·scale/D for diameter guess D
	// (sampling rate f·ln(n)·scale/D per object, capped at 1).
	SampleFactor float64
	// EdgeFactor e sets the neighbor threshold to e× the expected sampled
	// L1 distance of a pair at the diameter guess (e·rate·D).
	EdgeFactor float64
	// RedundancyFactor r sets ⌈r·ln n⌉ probers per (cluster, object).
	RedundancyFactor float64
	// MinD/MaxD restrict the diameter-doubling loop (L1 diameters).
	MinD, MaxD int
}

// Scaled returns simulation-scale constants mirroring core.Scaled.
func Scaled(n, b int) Params {
	return Params{B: b, SampleFactor: 0.5, EdgeFactor: 4, RedundancyFactor: 1.5}
}

// Result is the protocol output.
type Result struct {
	// Output[p] is the predicted rating vector of player p.
	Output []Ratings
	// NumClusters per diameter guess, for instrumentation.
	NumClusters []int
}

// Run executes the generalized CalculatePreferences over the rating world.
func Run(w *World, shared *xrand.Stream, pr Params) *Result {
	n, m := w.N(), w.M()
	lnn := lnN(n)
	minSize := n/pr.B - n/(3*pr.B)
	if minSize < 1 {
		minSize = 1
	}
	res := &Result{}

	lo, hi := pr.MinD, pr.MaxD
	if lo <= 0 {
		lo = 1
	}
	if hi <= 0 {
		hi = n * w.scale
	}
	type candidateSet struct {
		vecs []Ratings // one per player
	}
	var candidates []candidateSet
	gi := 0
	for d := 1; d <= n*w.scale; d *= 2 {
		if d < lo || d > hi {
			continue
		}
		iterRng := shared.Split(uint64(gi), uint64(d))
		gi++
		out := runIteration(w, d, minSize, lnn, iterRng, pr, res)
		candidates = append(candidates, candidateSet{vecs: out})
	}
	if len(candidates) == 0 {
		res.Output = make([]Ratings, n)
		for p := range res.Output {
			res.Output[p] = make(Ratings, m)
		}
		return res
	}

	// Final selection per player: probe a few random objects and keep the
	// candidate with the smallest L1 disagreement (the RSelect analogue;
	// sampling L1 distances concentrates the same way).
	res.Output = par.Map(n, func(p int) Ratings {
		if !w.IsHonest(p) {
			return make(Ratings, m)
		}
		if len(candidates) == 1 {
			return candidates[0].vecs[p]
		}
		rng := shared.Split(0xFE11, uint64(p))
		check := rng.Sample(m, minInt(m, 8*int(lnn)))
		best, bestScore := 0, 1<<60
		for ci := range candidates {
			score := 0
			for _, o := range check {
				truth := w.Probe(p, o)
				r := candidates[ci].vecs[p][o]
				if r > truth {
					score += r - truth
				} else {
					score += truth - r
				}
			}
			if score < bestScore {
				best, bestScore = ci, score
			}
		}
		return candidates[best].vecs[p]
	})
	return res
}

// runIteration performs one diameter guess: sample, publish, cluster,
// median work-share.
func runIteration(w *World, d, minSize int, lnn float64, shared *xrand.Stream, pr Params, res *Result) []Ratings {
	n, m := w.N(), w.M()
	rate := pr.SampleFactor * lnn * float64(w.scale) / float64(d)
	if rate > 1 {
		rate = 1
	}
	sample := shared.Split(0x5A).BernoulliSubset(m, rate)
	if len(sample) == 0 {
		sample = []int{0}
	}

	// Every player publishes its (claimed) ratings on the sample.
	published := par.Map(n, func(p int) Ratings {
		out := make(Ratings, len(sample))
		for j, o := range sample {
			out[j] = clampRating(w.Report(p, o), w.scale)
		}
		return out
	})

	// Neighbor graph on L1 sample distance: a pair at true L1 distance d
	// lands at ≈ rate·d on the sample, so the edge threshold is a small
	// multiple of that.
	threshold := int(pr.EdgeFactor * rate * float64(d))
	if threshold < 1 {
		threshold = 1
	}
	adj := par.Map(n, func(p int) []int {
		var nb []int
		for q := 0; q < n; q++ {
			if q != p && published[p].L1(published[q]) <= threshold {
				nb = append(nb, q)
			}
		}
		return nb
	})
	cl := peel(adj, n, minSize)
	res.NumClusters = append(res.NumClusters, len(cl.Clusters))

	// Median work sharing.
	red := int(pr.RedundancyFactor*lnn) + 1
	out := make([]Ratings, n)
	for p := range out {
		out[p] = make(Ratings, m)
	}
	for j, members := range cl.Clusters {
		clusterRng := shared.Split(0x5C, uint64(j))
		ratings := par.Map(m, func(o int) int {
			rng := clusterRng.Split(uint64(o))
			reports := make([]int, 0, red)
			for i := 0; i < red; i++ {
				q := members[rng.Intn(len(members))]
				reports = append(reports, clampRating(w.Report(q, o), w.scale))
			}
			return Median(reports)
		})
		for _, p := range members {
			copy(out[p], ratings)
		}
	}
	return out
}

// clampRating forces reported ratings into [0, scale]; dishonest players
// cannot inject out-of-scale values (the bulletin board validates writes).
func clampRating(r, scale int) int {
	if r < 0 {
		return 0
	}
	if r > scale {
		return scale
	}
	return r
}

// peel reuses the §6.5 peeling on a plain adjacency list.
func peel(adj [][]int, n, minSize int) *cluster.Clustering {
	alive := make([]bool, n)
	for i := range alive {
		alive[i] = true
	}
	of := make([]int, n)
	for i := range of {
		of[i] = -1
	}
	var clusters [][]int
	for {
		found := -1
		for p := 0; p < n; p++ {
			if !alive[p] {
				continue
			}
			deg := 0
			for _, q := range adj[p] {
				if alive[q] {
					deg++
				}
			}
			if deg >= minSize-1 {
				found = p
				break
			}
		}
		if found < 0 {
			break
		}
		members := []int{found}
		for _, q := range adj[found] {
			if alive[q] {
				members = append(members, q)
			}
		}
		j := len(clusters)
		for _, q := range members {
			alive[q] = false
			of[q] = j
		}
		clusters = append(clusters, members)
	}
	for p := 0; p < n; p++ {
		if !alive[p] {
			continue
		}
		for _, q := range adj[p] {
			if of[q] >= 0 {
				of[p] = of[q]
				clusters[of[q]] = append(clusters[of[q]], p)
				alive[p] = false
				break
			}
		}
	}
	return &cluster.Clustering{Clusters: clusters, Of: of}
}

// Errors returns per-honest-player L1 errors of the outputs.
func Errors(w *World, out []Ratings) []int {
	var errs []int
	for p := 0; p < w.N(); p++ {
		if !w.IsHonest(p) {
			continue
		}
		errs = append(errs, Ratings(w.truth[p]).L1(out[p]))
	}
	return errs
}

// ErrorStats summarizes per-player L1 errors.
func ErrorStats(w *World, out []Ratings) metrics.ErrorStats {
	return metrics.Summarize(Errors(w, out))
}

// Generate plants clusters of the given size whose members are within L1
// diameter of each other on a 0..scale rating scale, mirroring
// prefgen.DiameterClusters.
func Generate(rng *xrand.Stream, n, m, clusterSize, diameter, scale int) ([][]int, []int) {
	if clusterSize <= 0 || clusterSize > n {
		panic("multival: bad cluster size")
	}
	numClusters := n / clusterSize
	if numClusters == 0 {
		numClusters = 1
	}
	centers := make([][]int, numClusters)
	for c := range centers {
		row := make([]int, m)
		for o := range row {
			row[o] = rng.Intn(scale + 1)
		}
		centers[c] = row
	}
	truth := make([][]int, n)
	clusterOf := make([]int, n)
	perm := rng.Perm(n)
	for rank, p := range perm {
		c := rank / clusterSize
		if c >= numClusters {
			c = numClusters - 1
		}
		clusterOf[p] = c
		row := append([]int(nil), centers[c]...)
		budget := diameter / 2
		for budget > 0 {
			o := rng.Intn(m)
			delta := 1
			if rng.Bool() {
				delta = -1
			}
			nv := row[o] + delta
			if nv >= 0 && nv <= scale {
				row[o] = nv
				budget--
			}
		}
		truth[p] = row
	}
	return truth, clusterOf
}

// RandomRater is the non-binary random liar: consistent pseudo-random
// ratings.
type RandomRater struct{ Seed uint64 }

// Report returns a consistent pseudo-random rating.
func (r RandomRater) Report(w *World, p, o int) int {
	x := r.Seed ^ uint64(p)<<32 ^ uint64(o)
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	return int(x % uint64(w.Scale()+1))
}

// Exaggerator pushes every rating to the nearest extreme of the scale —
// the attack median aggregation is specifically robust to.
type Exaggerator struct{}

// Report returns 0 or scale depending on the player's true lean.
func (Exaggerator) Report(w *World, p, o int) int {
	if w.PeekTruth(p, o)*2 >= w.Scale() {
		return w.Scale()
	}
	return 0
}

// Shifter reports truth plus a constant bias (clamped), modeling a
// systematically harsh or generous dishonest reviewer.
type Shifter struct{ Delta int }

// Report returns the biased rating.
func (s Shifter) Report(w *World, p, o int) int {
	return clampRating(w.PeekTruth(p, o)+s.Delta, w.Scale())
}

func lnN(n int) float64 {
	v := math.Log(float64(n))
	if v < 1 {
		v = 1
	}
	return v
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
