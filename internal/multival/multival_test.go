package multival

import (
	"testing"
	"testing/quick"

	"collabscore/internal/xrand"
)

func TestRatingsL1(t *testing.T) {
	a := Ratings{1, 5, 3}
	b := Ratings{2, 2, 3}
	if d := a.L1(b); d != 4 {
		t.Fatalf("L1 = %d, want 4", d)
	}
	if a.L1(a) != 0 {
		t.Fatal("self distance nonzero")
	}
}

func TestL1IsMetric(t *testing.T) {
	f := func(xa, xb, xc []uint8) bool {
		n := len(xa)
		if len(xb) < n {
			n = len(xb)
		}
		if len(xc) < n {
			n = len(xc)
		}
		if n == 0 {
			return true
		}
		a, b, c := make(Ratings, n), make(Ratings, n), make(Ratings, n)
		for i := 0; i < n; i++ {
			a[i], b[i], c[i] = int(xa[i]%11), int(xb[i]%11), int(xc[i]%11)
		}
		if a.L1(b) != b.L1(a) {
			return false
		}
		return a.L1(c) <= a.L1(b)+b.L1(c)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestL1PanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Ratings{1}.L1(Ratings{1, 2})
}

func TestMedian(t *testing.T) {
	if Median([]int{5, 1, 3}) != 3 {
		t.Fatal("odd median")
	}
	if Median([]int{4, 1, 3, 2}) != 2 {
		t.Fatal("even (lower) median")
	}
	if Median(nil) != 0 {
		t.Fatal("empty median")
	}
}

func TestMedianRobustToOutliers(t *testing.T) {
	// 7 honest reports of 5, 3 adversarial extremes: median must stay 5.
	reports := []int{5, 5, 5, 5, 5, 5, 5, 10, 10, 0}
	if m := Median(reports); m != 5 {
		t.Fatalf("median %d, want 5", m)
	}
}

func TestGenerateDiameterBound(t *testing.T) {
	const n, m, size, d, scale = 60, 100, 20, 10, 10
	truth, clusterOf := Generate(xrand.New(1), n, m, size, d, scale)
	for p := 0; p < n; p++ {
		for q := p + 1; q < n; q++ {
			if clusterOf[p] != clusterOf[q] {
				continue
			}
			if dist := truth[p].L1(truth[q]); dist > d {
				t.Fatalf("pair (%d,%d) L1 %d > planted %d", p, q, dist, d)
			}
		}
	}
	for p := 0; p < n; p++ {
		for o := 0; o < m; o++ {
			if v := truth[p].Get(o); v < 0 || v > scale {
				t.Fatalf("rating %d out of scale", v)
			}
		}
	}
}

// TestGeneratePooledMatchesFresh: Buffer.Generate draws the same coins into
// pooled storage — bit-identical rows to the package-level Generate, even
// after the buffer has been used for other shapes.
func TestGeneratePooledMatchesFresh(t *testing.T) {
	var buf Buffer
	buf.Generate(xrand.New(9), 40, 64, 8, 6, 3) // dirty the arena
	for _, shape := range []struct{ n, m, size, d, scale int }{
		{60, 100, 20, 10, 10},
		{24, 130, 6, 4, 5}, // smaller: exercises shrink-in-place reuse
	} {
		fresh, freshOf := Generate(xrand.New(2), shape.n, shape.m, shape.size, shape.d, shape.scale)
		pooled, pooledOf := buf.Generate(xrand.New(2), shape.n, shape.m, shape.size, shape.d, shape.scale)
		for p := range fresh {
			if !fresh[p].Equal(pooled[p]) {
				t.Fatalf("pooled row %d differs from fresh", p)
			}
			if freshOf[p] != pooledOf[p] {
				t.Fatalf("pooled cluster assignment differs at %d", p)
			}
		}
	}
}

func TestWorldProbeAccounting(t *testing.T) {
	truth, _ := Generate(xrand.New(2), 8, 16, 4, 2, 5)
	w := NewWorld(truth, 5)
	w.Probe(0, 3)
	w.Probe(0, 3)
	if w.Probes(0) != 1 {
		t.Fatalf("probes = %d, want 1 (memoized)", w.Probes(0))
	}
	if w.Probe(0, 3) != truth[0].Get(3) {
		t.Fatal("probe returned wrong truth")
	}
	// Bulk word-level probing charges identically: re-probing the same
	// object through ProbePlaneWords learns nothing new.
	dst := make([]uint64, w.Bits())
	w.ProbePlaneWords(0, 0, 1<<3|1<<7, dst)
	if w.Probes(0) != 2 {
		t.Fatalf("probes = %d after word probe, want 2", w.Probes(0))
	}
	if dst[0]&(1<<3) != 0 != (truth[0].Get(3)&1 == 1) {
		t.Fatal("ProbePlaneWords returned wrong plane bits")
	}
}

func TestHonestAccuracy(t *testing.T) {
	const n, m, b, d, scale = 256, 256, 8, 32, 5
	truth, _ := Generate(xrand.New(3), n, m, n/b, d, scale)
	w := NewWorld(truth, scale)
	pr := Scaled(n, b)
	pr.MinD, pr.MaxD = d, d
	res := Run(w, xrand.New(4), pr)
	es := ErrorStats(w, res.Output)
	if es.Max > 3*d {
		t.Fatalf("max L1 error %d > %d", es.Max, 3*d)
	}
}

func TestProbeSavings(t *testing.T) {
	const n, m, b, d, scale = 512, 512, 8, 64, 5
	truth, _ := Generate(xrand.New(5), n, m, n/b, d, scale)
	w := NewWorld(truth, scale)
	pr := Scaled(n, b)
	pr.MinD, pr.MaxD = d, d
	res := Run(w, xrand.New(6), pr)
	es := ErrorStats(w, res.Output)
	if es.Max > 3*d {
		t.Fatalf("max L1 error %d", es.Max)
	}
	if probes := w.MaxHonestProbes(); probes > m/2 {
		t.Fatalf("max probes %d ≥ m/2", probes)
	}
}

func corrupt(w *World, k int, rng *xrand.Stream, mk func(p int) Behavior) {
	perm := rng.Perm(w.N())
	for i := 0; i < k; i++ {
		w.SetBehavior(perm[i], mk(perm[i]))
	}
}

func TestByzantineMedianRobustness(t *testing.T) {
	const n, m, b, d, scale = 256, 256, 8, 32, 5
	strategies := map[string]func(p int) Behavior{
		"random":      func(p int) Behavior { return RandomRater{Seed: 7} },
		"exaggerator": func(p int) Behavior { return Exaggerator{} },
		"shifter":     func(p int) Behavior { return Shifter{Delta: 4} },
	}
	for name, mk := range strategies {
		truth, _ := Generate(xrand.New(8), n, m, n/b, d, scale)
		w := NewWorld(truth, scale)
		corrupt(w, n/(3*b), xrand.New(9), mk)
		pr := Scaled(n, b)
		pr.MinD, pr.MaxD = d, d
		res := Run(w, xrand.New(10), pr)
		es := ErrorStats(w, res.Output)
		if es.Max > 3*d {
			t.Fatalf("%s: max L1 error %d > %d", name, es.Max, 3*d)
		}
	}
}

func TestAdversaryBehaviors(t *testing.T) {
	truth, _ := Generate(xrand.New(11), 4, 8, 2, 2, 10)
	w := NewWorld(truth, 10)
	rr := RandomRater{Seed: 1}
	if rr.Report(w, 0, 0) != rr.Report(w, 0, 0) {
		t.Fatal("RandomRater inconsistent")
	}
	ex := Exaggerator{}
	for o := 0; o < 8; o++ {
		r := ex.Report(w, 0, o)
		if r != 0 && r != 10 {
			t.Fatalf("Exaggerator rated %d", r)
		}
	}
	sh := Shifter{Delta: 100}
	if sh.Report(w, 0, 0) != 10 {
		t.Fatal("Shifter not clamped")
	}
}

func TestDishonestMarked(t *testing.T) {
	truth, _ := Generate(xrand.New(12), 4, 8, 2, 2, 5)
	w := NewWorld(truth, 5)
	w.SetBehavior(1, Exaggerator{})
	if w.IsHonest(1) {
		t.Fatal("Exaggerator marked honest")
	}
	if !w.IsHonest(0) {
		t.Fatal("player 0 should be honest")
	}
}

func TestByzantineWrapperHonest(t *testing.T) {
	const n, m, b, d, scale = 256, 256, 8, 32, 5
	truth, _ := Generate(xrand.New(21), n, m, n/b, d, scale)
	w := NewWorld(truth, scale)
	pr := Scaled(n, b)
	pr.MinD, pr.MaxD = d, d
	res := RunByzantine(w, xrand.New(22), nil, 3, pr)
	if res.HonestLeaders != 3 {
		t.Fatalf("honest leaders %d/3 with no adversary", res.HonestLeaders)
	}
	es := ErrorStats(w, res.Output)
	if es.Max > 3*d {
		t.Fatalf("max L1 error %d > %d", es.Max, 3*d)
	}
}

func TestByzantineWrapperUnderAttack(t *testing.T) {
	const n, m, b, d, scale = 256, 256, 8, 32, 5
	truth, _ := Generate(xrand.New(23), n, m, n/b, d, scale)
	w := NewWorld(truth, scale)
	corrupt(w, n/(3*b), xrand.New(24), func(p int) Behavior { return Exaggerator{} })
	pr := Scaled(n, b)
	pr.MinD, pr.MaxD = d, d
	res := RunByzantine(w, xrand.New(25), nil, 5, pr)
	if res.HonestLeaders == 0 {
		t.Fatal("no honest leader elected")
	}
	es := ErrorStats(w, res.Output)
	if es.Max > 3*d {
		t.Fatalf("Byzantine max L1 error %d > %d", es.Max, 3*d)
	}
	// Dishonest entries are zeroed.
	for p := 0; p < n; p++ {
		if !w.IsHonest(p) {
			for _, r := range res.Output[p].Ints() {
				if r != 0 {
					t.Fatal("dishonest output not zeroed")
				}
			}
		}
	}
}

// TestPlanesL1MatchesRatings cross-checks the engine's bit-sliced L1
// against the scalar Ratings reference on generated instances.
func TestPlanesL1MatchesRatings(t *testing.T) {
	truth, _ := Generate(xrand.New(31), 24, 100, 6, 12, 9)
	for p := 0; p < len(truth); p++ {
		for q := p + 1; q < len(truth); q++ {
			want := Ratings(truth[p].Ints()).L1(Ratings(truth[q].Ints()))
			if got := truth[p].L1(truth[q]); got != want {
				t.Fatalf("bit-sliced L1(%d,%d) = %d, scalar %d", p, q, got, want)
			}
		}
	}
}

func TestGatherClone(t *testing.T) {
	a := Ratings{1, 2, 3, 4}
	g := a.Gather([]int{3, 0})
	if g[0] != 4 || g[1] != 1 {
		t.Fatalf("Gather = %v", g)
	}
	c := a.Clone()
	c[0] = 99
	if a[0] == 99 {
		t.Fatal("Clone shares storage")
	}
}
