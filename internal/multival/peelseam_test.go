package multival

import (
	"reflect"
	"testing"

	"collabscore/internal/cluster"
	"collabscore/internal/par"
	"collabscore/internal/xrand"
)

// TestGraphSeamMatchesScalarPeel: the graph-seam clustering path the rating
// engine now uses (cluster.BuildGraphL1On + cluster.Build / BuildOn) is
// byte-identical to the scalar slice-of-slices adjacency build plus the
// retained peel oracle, across representations and schedules (DESIGN.md §17).
func TestGraphSeamMatchesScalarPeel(t *testing.T) {
	execs := map[string]*par.Runner{
		"serial":   par.Serial(),
		"fixed3":   par.Fixed(3),
		"parallel": par.Parallel(),
	}
	rng := xrand.New(171)
	for _, n := range []int{1, 9, 64, 150} {
		const m, scale = 48, 5
		rows, _ := Generate(rng.Split(uint64(n)), n, m, maxInt(n/6, 1), 8, scale)
		for _, threshold := range []int{1, m * scale / 10, m * scale / 3} {
			// Scalar reference: the engine's pre-seam [][]int adjacency
			// (every pair's L1 computed from both sides) feeding the scalar
			// peel oracle.
			adj := make([][]int, n)
			for p := 0; p < n; p++ {
				for q := 0; q < n; q++ {
					if p != q && rows[p].L1(rows[q]) <= threshold {
						adj[p] = append(adj[p], q)
					}
				}
			}
			for _, minSize := range []int{1, 3, n/4 + 1} {
				want := peel(adj, n, minSize)
				for gname, rep := range map[string]cluster.GraphRep{
					"dense": cluster.RepDense, "sparse": cluster.RepSparse,
				} {
					for ename, exec := range execs {
						g := cluster.BuildGraphL1On(exec, rows, threshold, rep)
						serial := cluster.Build(g, minSize)
						batched := cluster.BuildOn(exec, g, minSize)
						for path, got := range map[string]*cluster.Clustering{
							"Build": serial, "BuildOn": batched,
						} {
							if !reflect.DeepEqual(got.Clusters, want.Clusters) ||
								!reflect.DeepEqual(got.Of, want.Of) {
								t.Fatalf("n=%d thr=%d min=%d %s/%s/%s: graph-seam clustering differs from scalar peel",
									n, threshold, minSize, gname, ename, path)
							}
						}
					}
				}
			}
		}
	}
}

// TestRatingPeelKnobMatrixMatches: the full rating protocol produces
// byte-identical output and probe charges with the batched and the serial
// peel, under every phase schedule and both graph representations.
func TestRatingPeelKnobMatrixMatches(t *testing.T) {
	const n, m, b, d, scale = 128, 128, 8, 16, 5
	type cfg struct {
		name         string
		peelSerial   bool
		phaseSerial  bool
		phaseWorkers int
		graph        string
	}
	var refOut []Ratings
	var refProbes []int64
	for _, c := range []cfg{
		{"serial+peelserial", true, true, 0, ""},
		{"serial+batched", false, true, 0, ""},
		{"fixed3+batched", false, false, 3, ""},
		{"parallel+batched", false, false, 0, ""},
		{"parallel+batched+sparse", false, false, 0, "sparse"},
		{"parallel+peelserial+sparse", true, false, 0, "sparse"},
	} {
		truth, _ := Generate(xrand.New(51), n, m, n/b, d, scale)
		w := NewWorld(truth, scale)
		corrupt(w, n/(3*b), xrand.New(52), func(p int) Behavior { return Exaggerator{} })
		pr := Scaled(n, b)
		pr.MinD, pr.MaxD = d, d
		pr.PeelSerial = c.peelSerial
		pr.PhaseSerial = c.phaseSerial
		pr.PhaseWorkers = c.phaseWorkers
		pr.NeighborIndex = cluster.IndexSpec{Graph: c.graph}
		res := Run(w, xrand.New(53), pr)
		out := make([]Ratings, n)
		for p, row := range res.Output {
			out[p] = Ratings(row.Ints())
		}
		probes := make([]int64, n)
		for p := 0; p < n; p++ {
			probes[p] = w.Probes(p)
		}
		if refOut == nil {
			refOut, refProbes = out, probes
			continue
		}
		for p := 0; p < n; p++ {
			if out[p].L1(refOut[p]) != 0 {
				t.Fatalf("%s: output for player %d differs from serial reference", c.name, p)
			}
			if probes[p] != refProbes[p] {
				t.Fatalf("%s: probes for player %d differ: %d vs %d", c.name, p, probes[p], refProbes[p])
			}
		}
	}
}

// TestRunPanicsOnLSHIndex: the rating protocol only honors representation
// specs — the banding index hashes Hamming lanes, so Kind "lsh" must panic
// rather than silently fall back.
func TestRunPanicsOnLSHIndex(t *testing.T) {
	truth, _ := Generate(xrand.New(1), 8, 8, 2, 2, 3)
	w := NewWorld(truth, 3)
	pr := Scaled(8, 2)
	pr.NeighborIndex = cluster.IndexSpec{Kind: "lsh"}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for LSH NeighborIndex on the rating path")
		}
	}()
	Run(w, xrand.New(2), pr)
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
