package multival

import (
	"testing"

	"collabscore/internal/bitvec"
	"collabscore/internal/xrand"
)

// TestLazyGenerateMatchesGenerate pins the rating-side oracle: LazyGenerate
// must consume the stream exactly as Generate does and expose a cell-for-
// cell identical matrix, across odd object counts, scales, and diameters.
func TestLazyGenerateMatchesGenerate(t *testing.T) {
	cases := []struct {
		n, m, clusterSize, diameter, scale int
	}{
		{20, 130, 4, 10, 5},
		{15, 64, 3, 0, 7},
		{24, 99, 6, 16, 3},
		{10, 70, 10, 4, 1}, // single cluster, binary scale
	}
	for _, tc := range cases {
		for seed := uint64(1); seed <= 3; seed++ {
			dRng, lRng := xrand.New(seed), xrand.New(seed)
			truth, wantCl := Generate(dRng, tc.n, tc.m, tc.clusterSize, tc.diameter, tc.scale)
			src, gotCl := LazyGenerate(lRng, tc.n, tc.m, tc.clusterSize, tc.diameter, tc.scale)
			if dRng.Uint64() != lRng.Uint64() {
				t.Fatalf("%+v seed=%d: lazy generator left the stream in a different state", tc, seed)
			}
			if src.Players() != tc.n || src.Objects() != tc.m || src.Bits() != bitvec.PlaneBits(tc.scale) {
				t.Fatalf("%+v: lazy dims (%d,%d,%d)", tc, src.Players(), src.Objects(), src.Bits())
			}
			for p := 0; p < tc.n; p++ {
				if gotCl[p] != wantCl[p] {
					t.Fatalf("%+v seed=%d: clusterOf[%d] = %d, want %d", tc, seed, p, gotCl[p], wantCl[p])
				}
				for o := 0; o < tc.m; o++ {
					if got, want := src.Rating(p, o), truth[p].Get(o); got != want {
						t.Fatalf("%+v seed=%d: Rating(%d,%d) = %d, want %d", tc, seed, p, o, got, want)
					}
				}
				if !materializeRow(src, p).Equal(truth[p]) {
					t.Fatalf("%+v seed=%d: materialized row %d differs (PlaneWords path)", tc, seed, p)
				}
			}
		}
	}
}

// TestLazyGeneratePooledMatchesFresh pins Buffer.LazyGenerate against the
// package-level function across reused, shape-changing calls, interleaved
// with dense Generate calls on the same buffer.
func TestLazyGeneratePooledMatchesFresh(t *testing.T) {
	var buf Buffer
	points := []struct {
		n, m, diameter, scale int
	}{
		{18, 90, 8, 5},
		{30, 64, 0, 3},
		{12, 150, 12, 7},
	}
	for _, pt := range points {
		seed := uint64(pt.n*1000 + pt.m)
		fresh, pooled := xrand.New(seed), xrand.New(seed)
		want, wantCl := LazyGenerate(fresh, pt.n, pt.m, 3, pt.diameter, pt.scale)
		got, gotCl := buf.LazyGenerate(pooled, pt.n, pt.m, 3, pt.diameter, pt.scale)
		if fresh.Uint64() != pooled.Uint64() {
			t.Fatalf("%+v: pooled stream diverged", pt)
		}
		for p := 0; p < pt.n; p++ {
			if gotCl[p] != wantCl[p] {
				t.Fatalf("%+v: clusterOf[%d] mismatch", pt, p)
			}
			if !materializeRow(got, p).Equal(materializeRow(want, p)) {
				t.Fatalf("%+v: pooled row %d differs from fresh", pt, p)
			}
		}
		// Interleave a dense generation; the buffer arenas must stay sound.
		buf.Generate(xrand.New(seed^1), pt.n, pt.m, 3, pt.diameter, pt.scale)
	}
}

// TestLazyRatingWorldMatchesDense pins the world layer: Probe,
// ProbePlaneWords, ProbeValues, PeekTruth, TruthRow, TruthMirror, and
// Errors must agree between dense and lazy rating worlds over the same
// stream, with identical probe charging.
func TestLazyRatingWorldMatchesDense(t *testing.T) {
	const n, m, clusterSize, diameter, scale = 16, 130, 4, 10, 5
	truth, _ := Generate(xrand.New(11), n, m, clusterSize, diameter, scale)
	src, _ := LazyGenerate(xrand.New(11), n, m, clusterSize, diameter, scale)
	dw := NewWorld(truth, scale)
	lw := NewWorldFrom(src, scale)
	if lw.N() != dw.N() || lw.M() != dw.M() || lw.Bits() != dw.Bits() {
		t.Fatalf("lazy world dims (%d,%d,%d)", lw.N(), lw.M(), lw.Bits())
	}
	order := xrand.New(3)
	for i := 0; i < 1500; i++ {
		p, o := order.Intn(n), order.Intn(m)
		if lw.Probe(p, o) != dw.Probe(p, o) {
			t.Fatalf("Probe(%d,%d) mismatch", p, o)
		}
		if lw.PeekTruth(p, o) != dw.PeekTruth(p, o) {
			t.Fatalf("PeekTruth(%d,%d) mismatch", p, o)
		}
	}
	k := dw.Bits()
	dDst, lDst := make([]uint64, k), make([]uint64, k)
	for wi := 0; wi < dw.ProbeWords(); wi++ {
		dw.ProbePlaneWords(2, wi, ^uint64(0), dDst)
		lw.ProbePlaneWords(2, wi, ^uint64(0), lDst)
		for l := 0; l < k; l++ {
			if dDst[l] != lDst[l] {
				t.Fatalf("ProbePlaneWords(2,%d) plane %d: %#x vs %#x", wi, l, lDst[l], dDst[l])
			}
		}
	}
	objs := []int{5, 64, 65, 2, 129, 99, 64}
	if !lw.ProbeValues(6, objs).Equal(dw.ProbeValues(6, objs)) {
		t.Fatal("ProbeValues mismatch")
	}
	for p := 0; p < n; p++ {
		if lw.Probes(p) != dw.Probes(p) {
			t.Fatalf("player %d charged %d (lazy) vs %d (dense)", p, lw.Probes(p), dw.Probes(p))
		}
		if lw.TruthRow(p).L1(dw.TruthRow(p)) != 0 {
			t.Fatalf("TruthRow(%d) mismatch", p)
		}
		if !lw.TruthMirror(p).Equal(dw.TruthMirror(p)) {
			t.Fatalf("TruthMirror(%d) mismatch", p)
		}
	}
	zero := make([]bitvec.Planes, n)
	for p := range zero {
		zero[p] = bitvec.NewPlanes(m, k)
	}
	de, le := Errors(dw, zero), Errors(lw, zero)
	for i := range de {
		if de[i] != le[i] {
			t.Fatalf("Errors[%d]: %d (lazy) vs %d (dense)", i, le[i], de[i])
		}
	}
}

// TestLazyRatingProtocolMatchesDense is the end-to-end oracle at the
// ratings layer: a full generalized-protocol run over a lazy world must be
// byte-identical to the dense run — outputs, iteration stats, and probe
// counts — under serial, fixed-width, and parallel schedules.
func TestLazyRatingProtocolMatchesDense(t *testing.T) {
	const n, m, clusterSize, diameter, scale = 24, 200, 6, 8, 5
	type schedule struct {
		name string
		pr   func(Params) Params
	}
	schedules := []schedule{
		{"serial", func(pr Params) Params { pr.PhaseSerial = true; return pr }},
		{"fixed2", func(pr Params) Params { pr.PhaseWorkers = 2; return pr }},
		{"parallel", func(pr Params) Params { return pr }},
	}
	var ref *Result
	var refProbes []int64
	for _, repr := range []string{"dense", "lazy"} {
		for _, sch := range schedules {
			var w *World
			if repr == "dense" {
				truth, _ := Generate(xrand.New(21), n, m, clusterSize, diameter, scale)
				w = NewWorld(truth, scale)
			} else {
				src, _ := LazyGenerate(xrand.New(21), n, m, clusterSize, diameter, scale)
				w = NewWorldFrom(src, scale)
			}
			w.SetBehavior(1, Inverter{})
			w.SetBehavior(7, Exaggerator{})
			pr := sch.pr(Scaled(n, 4))
			pr.MaxD = 64
			res := Run(w, xrand.New(77), pr)
			probes := make([]int64, n)
			for p := range probes {
				probes[p] = w.Probes(p)
			}
			if ref == nil {
				ref, refProbes = res, probes
				continue
			}
			for p := 0; p < n; p++ {
				if !res.Output[p].Equal(ref.Output[p]) {
					t.Fatalf("%s/%s: output for player %d diverges from reference", repr, sch.name, p)
				}
				if probes[p] != refProbes[p] {
					t.Fatalf("%s/%s: player %d probes %d, reference %d", repr, sch.name, p, probes[p], refProbes[p])
				}
			}
			if len(res.Ds) != len(ref.Ds) || len(res.NumClusters) != len(ref.NumClusters) {
				t.Fatalf("%s/%s: iteration stats diverge", repr, sch.name)
			}
			for i := range res.Ds {
				if res.Ds[i] != ref.Ds[i] || res.NumClusters[i] != ref.NumClusters[i] {
					t.Fatalf("%s/%s: iteration %d stats diverge", repr, sch.name, i)
				}
			}
		}
	}
}

// TestLazyRatingProbeAllocFree guards the lazy rating probe hot path: once
// a player's memo is installed, plane-word probes into a caller-provided
// buffer must not allocate.
func TestLazyRatingProbeAllocFree(t *testing.T) {
	src, _ := LazyGenerate(xrand.New(9), 4, 4096, 2, 8, 5)
	w := NewWorldFrom(src, 5)
	dst := make([]uint64, w.Bits())
	wi := 0
	if n := testing.AllocsPerRun(200, func() {
		w.ProbePlaneWords(0, wi%w.ProbeWords(), ^uint64(0), dst)
		wi++
	}); n != 0 {
		t.Fatalf("lazy ProbePlaneWords allocates %v times per run", n)
	}
}
