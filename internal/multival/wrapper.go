package multival

import (
	"collabscore/internal/bitvec"
	"collabscore/internal/core"
	"collabscore/internal/election"
	"collabscore/internal/xrand"
)

// ByzResult extends Result with election bookkeeping.
//
// NumClusters/Ds (embedded from Result) follow the same convention as
// core.Result.Iterations: they hold the per-guess statistics of the LAST
// repetition that elected an honest leader, merged deterministically in
// repetition order, and stay empty when every elected leader was dishonest
// (those repetitions run no protocol under the worst-case model, so there
// are no clusters to count) — Reps always has the full per-repetition
// picture. Before PR 5 this was reported inconsistently: a last-writer-wins
// race under concurrent repetitions, and a silent zero when no leader was
// honest.
type ByzResult struct {
	Result
	// HonestLeaders counts repetitions whose elected leader was honest.
	HonestLeaders int
	// Repetitions is the number of leader-election repetitions executed.
	Repetitions int
	// Reps details each repetition in order: the elected leader, whether it
	// was honest, and — for honest-leader repetitions — one IterationStats
	// per diameter guess carrying D and NumClusters.
	Reps []core.RepetitionStats
}

// RunByzantine executes the §7-style wrapper over the non-binary protocol:
// repeat the generalized CalculatePreferences under Θ(log n) elected
// leaders (Feige's lightest-bin election works unchanged — it only needs
// to know who is honest) and select the best repetition per player by an
// L1 spot check. When a dishonest leader is elected, the repetition's
// shared coins are adversarial; as in the binary protocol we model the
// worst case by replacing the repetition's outputs with maximally wrong
// rating vectors (scale − truth).
//
// The election/repetition/selection skeleton is the one generic wrapper
// shared with the binary protocol (core.RunByzantineOver); this function
// only supplies the rating-domain pieces — the bit-sliced repetition
// runner, the mirrored worst case, and the L1 candidate-distance measure.
// Repetitions execute concurrently unless pr.ByzSerial is set, with
// deterministic repetition-order merges either way.
func RunByzantine(w *World, trueRng *xrand.Stream, binStrategy election.BinStrategy, repetitions int, pr Params) *ByzResult {
	n, m := w.N(), w.M()
	if repetitions < 1 {
		repetitions = 1
	}
	res := &ByzResult{Repetitions: repetitions}
	lnn := lnN(n)

	outputs, reps := core.RunByzantineOver(w, trueRng, core.ByzProtocol[bitvec.Planes]{
		Repetitions: repetitions,
		Serial:      pr.ByzSerial,
		Strategy:    binStrategy,
		Election:    election.Defaults(),
		RunRep: func(it int, shared *xrand.Stream, st *core.RepetitionStats) []bitvec.Planes {
			sub := Run(w, shared, pr)
			for gi, d := range sub.Ds {
				st.Iterations = append(st.Iterations, core.IterationStats{
					D: d, NumClusters: sub.NumClusters[gi],
				})
			}
			return sub.Output
		},
		Adversarial: func(int) []bitvec.Planes {
			// Adversarial coins: worst-case repetition outputs, maximally
			// wrong for every player — the bit-sliced broadcast scale −
			// truth (the rating analogue of the binary complement).
			worst := make([]bitvec.Planes, n)
			for p := 0; p < n; p++ {
				worst[p] = w.TruthMirror(p)
			}
			return worst
		},
		SelectFinal: func(rng *xrand.Stream, byRep [][]bitvec.Planes) []bitvec.Planes {
			// Per-player selection among repetitions by probed L1
			// disagreement; each player's coins split from the wrapper's
			// selection stream by player id (schedule-independent).
			out := make([]bitvec.Planes, n)
			zero := bitvec.NewPlanes(m, w.Bits())
			phaseExec(pr).For(n, func(p int) {
				if !w.IsHonest(p) {
					out[p] = zero
					return
				}
				if repetitions == 1 {
					out[p] = byRep[0][p]
					return
				}
				prng := rng.Split(uint64(p))
				check := prng.Sample(m, minInt(m, 8*int(lnn)))
				best, bestScore := 0, 1<<60
				for it := 0; it < repetitions; it++ {
					cand := byRep[it][p]
					score := 0
					for _, o := range check {
						truth := w.Probe(p, o)
						r := cand.Get(o)
						if r > truth {
							score += r - truth
						} else {
							score += truth - r
						}
					}
					if score < bestScore {
						best, bestScore = it, score
					}
				}
				out[p] = byRep[best][p]
			})
			return out
		},
	})

	res.Output = outputs
	res.Reps = reps
	// Deterministic merge in repetition order (the pre-PR5 wrapper kept
	// whichever honest repetition finished last and a silent zero when none
	// did; see ByzResult).
	for it := range reps {
		st := &reps[it]
		if !st.HonestLeader {
			continue
		}
		res.HonestLeaders++
		res.Ds = res.Ds[:0]
		res.NumClusters = res.NumClusters[:0]
		for _, is := range st.Iterations {
			res.Ds = append(res.Ds, is.D)
			res.NumClusters = append(res.NumClusters, is.NumClusters)
		}
	}
	return res
}
