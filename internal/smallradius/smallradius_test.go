package smallradius

import (
	"testing"

	"collabscore/internal/adversary"
	"collabscore/internal/metrics"
	"collabscore/internal/prefgen"
	"collabscore/internal/world"
	"collabscore/internal/xrand"
)

func identityObjs(m int) []int {
	out := make([]int, m)
	for i := range out {
		out[i] = i
	}
	return out
}

// runErrors executes SmallRadius and returns the per-honest-player errors
// measured against the truth restricted to objs.
func runErrors(w *world.World, objs []int, d, b int, seed uint64, pr Params) []int {
	out := Run(world.NewRun(w), objs, d, b, xrand.New(seed), pr)
	var errs []int
	for p := 0; p < w.N(); p++ {
		if !w.IsHonest(p) {
			continue
		}
		truth := w.TruthVector(p).Gather(objs)
		errs = append(errs, truth.Hamming(out[p]))
	}
	return errs
}

// TestErrorWithinTheoremBound is Theorem 5: with clusters of diameter ≤ d,
// every player's output is within 5d of its truth.
func TestErrorWithinTheoremBound(t *testing.T) {
	const n, m, b, d = 256, 512, 4, 8
	rng := xrand.New(1)
	in := prefgen.DiameterClusters(rng.Split(1), n, m, n/b, d)
	w := world.New(in.Truth)
	errs := runErrors(w, identityObjs(m), d, b, 7, Scaled(n))
	if mx := metrics.MaxInt(errs); mx > 5*d {
		t.Fatalf("max error %d exceeds Theorem 5 bound %d", mx, 5*d)
	}
}

// TestZeroDiameterIsExactMostly: with identical clusters SmallRadius should
// recover nearly everyone exactly (d=1 guess).
func TestZeroDiameterIsExactMostly(t *testing.T) {
	const n, m, b = 256, 256, 4
	rng := xrand.New(2)
	in := prefgen.IdenticalClusters(rng.Split(1), n, m, n/b)
	w := world.New(in.Truth)
	errs := runErrors(w, identityObjs(m), 1, b, 8, Scaled(n))
	exact := 0
	for _, e := range errs {
		if e == 0 {
			exact++
		}
	}
	if frac := float64(exact) / float64(len(errs)); frac < 0.95 {
		t.Fatalf("exact fraction %.3f, want ≥0.95", frac)
	}
}

// TestSubsetObjects: SmallRadius over an object subset returns vectors
// indexed like the subset and still meets the error bound there.
func TestSubsetObjects(t *testing.T) {
	const n, m, b, d = 128, 512, 4, 6
	rng := xrand.New(3)
	in := prefgen.DiameterClusters(rng.Split(1), n, m, n/b, d)
	w := world.New(in.Truth)
	objs := rng.Split(5).Sample(m, 200)
	out := Run(world.NewRun(w), objs, d, b, xrand.New(11), Scaled(n))
	for p := 0; p < n; p++ {
		if out[p].Len() != len(objs) {
			t.Fatalf("player %d vector length %d, want %d", p, out[p].Len(), len(objs))
		}
	}
	errs := runErrors(w, objs, d, b, 11, Scaled(n))
	if mx := metrics.MaxInt(errs); mx > 5*d {
		t.Fatalf("subset max error %d > %d", mx, 5*d)
	}
}

// TestEmptyObjects must not panic.
func TestEmptyObjects(t *testing.T) {
	rng := xrand.New(4)
	in := prefgen.Uniform(rng.Split(1), 16, 32)
	w := world.New(in.Truth)
	out := Run(world.NewRun(w), nil, 4, 2, xrand.New(13), Scaled(16))
	for p, v := range out {
		if v.Len() != 0 {
			t.Fatalf("player %d got non-empty vector %d", p, v.Len())
		}
	}
}

// TestDishonestEntriesAreClaims: dishonest players' outputs must be their
// strategies' claims, not protocol results.
func TestDishonestEntriesAreClaims(t *testing.T) {
	const n, m, b, d = 128, 256, 4, 4
	rng := xrand.New(5)
	in := prefgen.DiameterClusters(rng.Split(1), n, m, n/b, d)
	w := world.New(in.Truth)
	w.SetBehavior(3, adversary.FlipAll{})
	out := Run(world.NewRun(w), identityObjs(m), d, b, xrand.New(17), Scaled(n))
	want := w.TruthVector(3).Not()
	if !out[3].Equal(want) {
		t.Fatal("dishonest player's entry is not its claim vector")
	}
}

// TestHonestUnaffectedByLiars: up to n/(3B) random liars must not push
// honest errors beyond the Theorem 5 bound.
func TestHonestUnaffectedByLiars(t *testing.T) {
	const n, m, b, d = 256, 512, 4, 8
	rng := xrand.New(6)
	in := prefgen.DiameterClusters(rng.Split(1), n, m, n/b, d)
	w := world.New(in.Truth)
	f := n / (3 * b)
	adversary.Corrupt(w, f, rng.Split(9).Perm(n), func(p int) world.Behavior {
		return adversary.RandomLiar{Seed: 21}
	})
	errs := runErrors(w, identityObjs(m), d, b, 19, Scaled(n))
	if mx := metrics.MaxInt(errs); mx > 5*d {
		t.Fatalf("max honest error %d > %d under liars", mx, 5*d)
	}
}

// TestProbeSavings: for large m the per-player probe count must be well
// below probing everything.
func TestProbeSavings(t *testing.T) {
	const n, m, b, d = 256, 4096, 2, 4
	rng := xrand.New(7)
	in := prefgen.DiameterClusters(rng.Split(1), n, m, n/b, d)
	w := world.New(in.Truth)
	errs := runErrors(w, identityObjs(m), d, b, 23, Scaled(n))
	if mx := metrics.MaxInt(errs); mx > 5*d {
		t.Fatalf("max error %d > %d", mx, 5*d)
	}
	// Each of the two repetitions probes a different random partition, so
	// the bound is per-repetition cost ×2; it must still be well under m.
	if probes := w.MaxHonestProbes(); probes > int64(m)/2 {
		t.Fatalf("max probes %d — insufficient savings vs %d objects", probes, m)
	}
}

// TestNumGroups covers the group-count arithmetic.
func TestNumGroups(t *testing.T) {
	pr := Paper(1024)
	if got := pr.numGroups(4, 10000); got != 8 {
		t.Fatalf("paper numGroups(4) = %d, want 8 (=4^1.5)", got)
	}
	pr = Scaled(1024)
	if got := pr.numGroups(16, 10000); got != 16 {
		t.Fatalf("scaled numGroups(16) = %d, want 16 (=d)", got)
	}
	// Capped by MinGroupObjects.
	if got := pr.numGroups(100, 64); got > 64/pr.MinGroupObjects {
		t.Fatalf("numGroups not capped: %d", got)
	}
	// Degenerate inputs.
	if got := pr.numGroups(0, 100); got < 1 {
		t.Fatalf("numGroups(0) = %d", got)
	}
	if got := pr.numGroups(10, 1); got != 1 {
		t.Fatalf("numGroups with 1 object = %d", got)
	}
}

// TestDeterminism: identical seeds produce identical outputs.
func TestDeterminism(t *testing.T) {
	const n, m, b, d = 128, 256, 4, 6
	sig := func() int {
		rng := xrand.New(25)
		in := prefgen.DiameterClusters(rng.Split(1), n, m, n/b, d)
		w := world.New(in.Truth)
		out := Run(world.NewRun(w), identityObjs(m), d, b, xrand.New(27), Scaled(n))
		total := 0
		for _, v := range out {
			total += v.Count()
		}
		return total
	}
	if sig() != sig() {
		t.Fatal("nondeterministic outputs")
	}
}
