// Package smallradius implements the SmallRadius protocol of Figure 1
// (from Alon, Awerbuch, Azar, Patt-Shamir [2,3]): collaborative scoring
// under the assumption that each player has at least n/B peers within
// Hamming distance D, for D up to about log n.
//
// Each of Θ(log n) repetitions randomly partitions the object set into
// s = Θ(D^{3/2}) groups. Within a group, a diameter-D cluster restricted to
// the group has expected diameter D/s < 1, i.e. it is almost always a
// zero-radius cluster, so ZeroRadius recovers the group's preferences. Each
// player selects the best group-vector with Select, concatenates across
// groups, and finally selects the best repetition (Theorem 5: error ≤ 5D).
package smallradius

import (
	"math"
	"sort"

	"collabscore/internal/bitvec"
	"collabscore/internal/par"
	"collabscore/internal/selection"
	"collabscore/internal/world"
	"collabscore/internal/xrand"
	"collabscore/internal/zeroradius"
)

// Params carries the protocol's tunable constants. The paper's asymptotic
// constants make the polylog factors exceed n itself at laptop scale (see
// DESIGN.md §4); Scaled returns a parameterization that preserves the
// guarantee shapes at simulation sizes, while Paper returns the literal
// constants.
type Params struct {
	// Repeats is the number of independent repetitions (paper: Θ(log n)).
	Repeats int
	// SubsetScale and SubsetExp set the number of groups:
	// s = ⌈SubsetScale·D^SubsetExp⌉ (paper: 1·D^{3/2}). The structural
	// requirement is s ≳ D so that a diameter-D cluster restricted to one
	// group has diameter ≲ 1 — the zero-radius regime ZeroRadius needs.
	SubsetScale float64
	SubsetExp   float64
	// MinGroupObjects lowers s so that each group keeps at least this many
	// objects; tiny groups degenerate ZeroRadius to probe-everything.
	MinGroupObjects int
	// BudgetMultiplier is the factor on B passed to ZeroRadius (paper: 5).
	BudgetMultiplier int
	// SupportDivisor sets the group-vector support threshold n/(SupportDivisor·B)
	// (paper: 5).
	SupportDivisor float64
	// ZR configures the inner ZeroRadius runs.
	ZR zeroradius.Params
	// Sel configures the Select/RSelect calls.
	Sel selection.Params
}

// Paper returns the constants as stated in Figure 1.
func Paper(n int) Params {
	return Params{
		Repeats:          int(math.Ceil(math.Log2(float64(n) + 2))),
		SubsetScale:      1,
		SubsetExp:        1.5,
		MinGroupObjects:  1,
		BudgetMultiplier: 5,
		SupportDivisor:   5,
		ZR:               zeroradius.Defaults(),
		Sel:              selection.Defaults(),
	}
}

// Scaled returns simulation-friendly constants: fewer repetitions, fewer
// and larger groups, a small ZeroRadius base case, and tighter Select probe
// budgets, preserving the partition-then-zero-radius structure.
func Scaled(n int) Params {
	p := Paper(n)
	p.Repeats = 2
	p.SubsetScale = 1
	p.SubsetExp = 1 // s ≈ D: one expected intra-cluster difference per group
	p.MinGroupObjects = 16
	p.ZR = zeroradius.Scaled()
	p.Sel = selection.Scaled()
	return p
}

// groups partitions positions [0,len(objs)) into s groups using shared
// randomness, returning the group index of each position.
func (pr Params) numGroups(d, numObjs int) int {
	if d < 1 {
		d = 1
	}
	exp := pr.SubsetExp
	if exp == 0 {
		exp = 1.5
	}
	s := int(math.Ceil(pr.SubsetScale * math.Pow(float64(d), exp)))
	if s < 1 {
		s = 1
	}
	if pr.MinGroupObjects > 0 && s > numObjs/pr.MinGroupObjects {
		s = numObjs / pr.MinGroupObjects
	}
	if s < 1 {
		s = 1
	}
	return s
}

// Run executes SmallRadius for all players over the objects objs (global
// ids), with diameter bound d and per-player budget b. It returns, for each
// player id, an output vector indexed like objs. Honest players satisfying
// the small-radius assumption receive vectors within O(d) of their truth
// whp; dishonest players' entries hold the vectors they publish (their
// strategies' claims), which downstream steps treat as their z-vectors.
//
// Within each repetition the per-group ZeroRadius runs and the per-player
// select-and-concatenate loops fan out on rc's executor; group streams are
// split per (repetition, group) and player streams per player id, so
// fixed-seed output is byte-identical under any schedule (DESIGN.md §9).
func Run(rc *world.Run, objs []int, d, b int, shared *xrand.Stream, pr Params) map[int]bitvec.Vector {
	n := rc.N()
	if b < 1 {
		b = 1
	}
	out := make(map[int]bitvec.Vector, n)

	// Dishonest players publish claims; compute once.
	dishonest := rc.DishonestPlayers()
	claims := par.MapOn(rc.Exec(), len(dishonest), func(i int) bitvec.Vector {
		return rc.ReportVector(dishonest[i], objs)
	})
	for i, p := range dishonest {
		out[p] = claims[i]
	}

	honest := rc.HonestPlayers()
	if len(objs) == 0 {
		for _, p := range honest {
			out[p] = bitvec.New(0)
		}
		return out
	}

	// candidates[p] accumulates one concatenated vector per repetition.
	candidates := make(map[int][]bitvec.Vector, len(honest))

	allPlayers := make([]int, n)
	for i := range allPlayers {
		allPlayers[i] = i
	}

	for rep := 0; rep < pr.Repeats; rep++ {
		repRng := shared.Split(uint64(rep))
		s := pr.numGroups(d, len(objs))
		// A diameter-d cluster restricted to one of s random groups has
		// expected diameter d/s; that is the promise the per-group Select
		// works against.
		dGroup := (d + s - 1) / s
		if dGroup < 1 {
			dGroup = 1
		}

		// Shared random partition of objs into s groups.
		groupOf := make([]int, len(objs))
		for j := range groupOf {
			groupOf[j] = repRng.Intn(s)
		}
		groupPositions := make([][]int, s) // positions within objs
		for j, g := range groupOf {
			groupPositions[g] = append(groupPositions[g], j)
		}

		// Per-group ZeroRadius over all players, in parallel across groups.
		type groupResult struct {
			positions []int
			objs      []int           // global ids, computed once per group
			ui        []bitvec.Vector // supported candidate vectors
			outputs   map[int]bitvec.Vector
		}
		results := par.MapOn(rc.Exec(), s, func(g int) groupResult {
			positions := groupPositions[g]
			if len(positions) == 0 {
				return groupResult{}
			}
			groupObjs := make([]int, len(positions))
			for i, j := range positions {
				groupObjs[i] = objs[j]
			}
			zr := zeroradius.Run(rc, allPlayers, groupObjs, pr.BudgetMultiplier*b, repRng.Split(uint64(g)), pr.ZR)
			// U_g: vectors output by at least n/(SupportDivisor·B) players.
			threshold := float64(n) / (pr.SupportDivisor * float64(b))
			if threshold < 1 {
				threshold = 1
			}
			tally := make(map[string]int)
			byKey := make(map[string]bitvec.Vector)
			for _, v := range zr {
				k := v.Key()
				tally[k]++
				byKey[k] = v
			}
			// Deterministic candidate order: support descending, then key.
			keys := make([]string, 0, len(tally))
			for k, c := range tally {
				if float64(c) >= threshold {
					keys = append(keys, k)
				}
			}
			sort.Slice(keys, func(i, j int) bool {
				if tally[keys[i]] != tally[keys[j]] {
					return tally[keys[i]] > tally[keys[j]]
				}
				return keys[i] < keys[j]
			})
			ui := make([]bitvec.Vector, 0, len(keys))
			for _, k := range keys {
				ui = append(ui, byKey[k])
			}
			return groupResult{positions: positions, objs: groupObjs, ui: ui, outputs: zr}
		})

		// Each honest player selects a vector per group and concatenates.
		// The group object lists were computed once above (rebuilding them
		// per (player, group) is pure allocation), and the per-player
		// selection stream stays on the stack.
		repCandidates := par.MapOn(rc.Exec(), len(honest), func(i int) bitvec.Vector {
			p := honest[i]
			full := bitvec.New(len(objs))
			selRng := repRng.SplitValue(0xC0FFEE, uint64(p))
			for g := range results {
				res := &results[g]
				if len(res.positions) == 0 {
					continue
				}
				var chosen bitvec.Vector
				switch {
				case len(res.ui) > 0:
					idx := selection.Select(rc.World, p, res.objs, res.ui, dGroup, &selRng, pr.Sel)
					chosen = res.ui[idx]
				case res.outputs[p].Len() > 0:
					// No supported candidate (assumption violated for this
					// group); fall back to the player's own ZeroRadius output.
					chosen = res.outputs[p]
				default:
					chosen = bitvec.New(len(res.positions))
				}
				for k, j := range res.positions {
					if chosen.Get(k) {
						full.Set(j, true)
					}
				}
			}
			return full
		})
		for i, p := range honest {
			candidates[p] = append(candidates[p], repCandidates[i])
		}
	}

	// Final per-player selection among the repetition candidates.
	finals := par.MapOn(rc.Exec(), len(honest), func(i int) bitvec.Vector {
		p := honest[i]
		cands := candidates[p]
		selRng := shared.SplitValue(0xF1A7, uint64(p))
		idx := selection.Select(rc.World, p, objs, cands, d, &selRng, pr.Sel)
		if idx < 0 {
			return bitvec.New(len(objs))
		}
		return cands[idx]
	})
	for i, p := range honest {
		out[p] = finals[i]
	}
	return out
}
