// Package sweep is the scenario-grid engine: it expands declarative axis
// specifications into deterministic grid points, schedules the points
// across a worker pool with per-worker reused allocations
// (collabscore.Pool), streams results to a JSONL sink as points complete,
// supports resuming an interrupted sweep from its partial output file, and
// aggregates results through internal/metrics. See DESIGN.md §11.
//
// Determinism contract: every point's seed is derived by splitting the
// spec's root seed with the point's instance-defining coordinates
// (xrand.SplitValue), so a point's result depends only on its own
// coordinates — never on execution order, worker count, which other axis
// values exist in the grid, or whether the run was resumed. Points that
// differ only in dishonest count, strategy, or protocol share a seed on
// purpose: they run over the identical planted world (and the identical
// corruption permutation prefix), which is what makes sweep columns
// directly comparable, paired comparisons rather than independent draws.
package sweep

import (
	"fmt"
	"math"
	"strconv"
	"strings"

	"collabscore"
	"collabscore/internal/cluster"
	"collabscore/internal/prefgen"
	"collabscore/internal/xrand"
)

// Spec declares a scenario grid as per-axis value lists. Expand takes the
// cross product in a fixed canonical order (players × objects × budgets ×
// plantings × diameters × dishonest × strategies × protocols × trials).
// Empty axes get the documented defaults. The struct is plain JSON, which
// is how cmd/sweep accepts grid files.
type Spec struct {
	// Name labels the sweep in logs and summaries (optional).
	Name string `json:"name,omitempty"`
	// Seed is the root seed every point seed is split from.
	Seed uint64 `json:"seed"`
	// Trials is the number of independent repetitions per coordinate
	// (distinct instances); default 1.
	Trials int `json:"trials,omitempty"`

	// Players is the player-count axis (required, values ≥ 1).
	Players []int `json:"players"`
	// Objects is the object-count axis; 0 (the default) means
	// objects = players.
	Objects []int `json:"objects,omitempty"`
	// Budgets is the budget axis; 0 (the default) means B = 8.
	Budgets []int `json:"budgets,omitempty"`

	// ClusterSizes plants diameter-bounded clusters of each listed size.
	ClusterSizes []int `json:"cluster_sizes,omitempty"`
	// ZipfClusters/ZipfAlphas plant Zipf-sized cluster populations: one
	// planting per (count, alpha) pair. ZipfAlphas defaults to [1.1] when
	// ZipfClusters is set.
	ZipfClusters []int     `json:"zipf_clusters,omitempty"`
	ZipfAlphas   []float64 `json:"zipf_alphas,omitempty"`
	// Diameters is the planted-diameter axis; default [0]. For the uniform
	// planting (no ClusterSizes/ZipfClusters) diameters are meaningless and
	// the axis collapses to a single 0 unless FixDiameter is set.
	Diameters []int `json:"diameters,omitempty"`
	// FixDiameter sets each point's Config.FixedDiameter to its planted
	// diameter, restricting the doubling loop to the single correct guess
	// (the standard experiment configuration).
	FixDiameter bool `json:"fix_diameter,omitempty"`
	// PaperConstants selects the paper's literal constants (DESIGN.md §4).
	PaperConstants bool `json:"paper_constants,omitempty"`

	// Dishonest is the corruption-count axis; default [0].
	Dishonest []int `json:"dishonest,omitempty"`
	// Strategies names the dishonest strategies (collabscore.Strategy
	// names); default ["random-liar"]. Honest points (dishonest = 0) are
	// emitted once, not once per strategy. Strategies that have no
	// behavior on a protocol's substrate (rating-only strategies on binary
	// protocols and vice versa; Strategy.RatingCapable/BinaryCapable) are
	// skipped deterministically for that protocol's corrupted points.
	Strategies []string `json:"strategies,omitempty"`
	// Protocols names the protocol variants (collabscore.Protocol names);
	// default ["byzantine"].
	Protocols []string `json:"protocols,omitempty"`

	// Scales is the rating-scale axis, applied to "ratings" protocol
	// points only (every other protocol's points collapse to scale 0);
	// 0 entries default to 5. Rating points require a cluster planting —
	// combinations with uniform or Zipf plantings are skipped.
	Scales []int `json:"scales,omitempty"`
	// CapacityTiers is the capacity-tier axis, applied to "budgets"
	// protocol points only. An empty axis yields the scenario's default
	// tier; the zero tier means "scenario defaults" (m/32, m/2, 0.25).
	CapacityTiers []CapTier `json:"capacity_tiers,omitempty"`
	// NeighborIndexes is the neighbor-discovery axis ("exact", "lsh", or
	// "lsh:BANDS:ROWS", each optionally suffixed "+dense"/"+sparse"/
	// "+auto" to pick the graph representation — cluster.ParseIndexSpec
	// forms), applied to the clustering protocols (run, byzantine,
	// budgets) only; the baselines and ratings points never build a
	// neighbor graph and collapse to the exact default. Like CapacityTiers
	// it is not instance-defining: points differing only in the index
	// share a seed and a planted world (paired comparisons — the
	// representation cannot even change the clustering, only its memory),
	// and the exact+auto default keeps every existing key, seed, and JSONL
	// record unchanged.
	NeighborIndexes []string `json:"neighbor_indexes,omitempty"`
	// TruthSources is the truth-representation axis ("dense", "lazy", or
	// "lazy:TILES" — prefgen.ParseSourceSpec forms; see DESIGN.md §14).
	// The representation is observationally invisible — every source yields
	// byte-identical reports — so like NeighborIndexes it is not
	// instance-defining: points differing only in the source share a seed
	// and a planted world (paired comparisons), and the dense default keeps
	// every existing key, seed, and JSONL record unchanged.
	TruthSources []string `json:"truth_sources,omitempty"`
}

// CapTier is one capacity-tier axis value: the §8 heterogeneous-budget
// two-tier capacity mix (a BigFrac fraction of players volunteer Big
// probes, the rest Small).
type CapTier struct {
	Small   int     `json:"small,omitempty"`
	Big     int     `json:"big,omitempty"`
	BigFrac float64 `json:"big_frac,omitempty"`
}

// IsZero reports whether the tier is the scenario-defaults tier.
func (ct CapTier) IsZero() bool { return ct == CapTier{} }

func (ct CapTier) String() string {
	if ct.IsZero() {
		return "default"
	}
	return fmt.Sprintf("%d:%d:%g", ct.Small, ct.Big, ct.BigFrac)
}

// ParseCapTier parses the "small:big:frac" form used by cmd/sweep's
// -captiers flag ("default" or "" yields the zero tier). Parsing is
// strict: trailing garbage, extra fields, and non-finite or out-of-range
// fractions are rejected rather than silently running a wrong experiment.
func ParseCapTier(s string) (CapTier, error) {
	if s == "" || s == "default" {
		return CapTier{}, nil
	}
	bad := func() (CapTier, error) {
		return CapTier{}, fmt.Errorf("sweep: bad capacity tier %q (want small:big:frac with 0 ≤ frac ≤ 1)", s)
	}
	parts := strings.Split(s, ":")
	if len(parts) != 3 {
		return bad()
	}
	small, err1 := strconv.Atoi(parts[0])
	big, err2 := strconv.Atoi(parts[1])
	frac, err3 := strconv.ParseFloat(parts[2], 64)
	if err1 != nil || err2 != nil || err3 != nil ||
		small < 0 || big < 0 || !(frac >= 0 && frac <= 1) {
		return bad()
	}
	return CapTier{Small: small, Big: big, BigFrac: frac}, nil
}

// Plant identifies a planting-axis value.
type Plant struct {
	// Kind is "uniform", "cluster", or "zipf".
	Kind string `json:"kind"`
	// ClusterSize is set for Kind "cluster".
	ClusterSize int `json:"cluster_size,omitempty"`
	// ZipfClusters/ZipfAlpha are set for Kind "zipf".
	ZipfClusters int     `json:"zipf_clusters,omitempty"`
	ZipfAlpha    float64 `json:"zipf_alpha,omitempty"`
}

func (pl Plant) String() string {
	switch pl.Kind {
	case "cluster":
		return fmt.Sprintf("cluster/%d", pl.ClusterSize)
	case "zipf":
		return fmt.Sprintf("zipf/%d/%g", pl.ZipfClusters, pl.ZipfAlpha)
	default:
		return "uniform"
	}
}

// Point is one fully resolved grid point: the coordinates, the derived
// seed, and nothing else — running a Point is running its Scenario.
type Point struct {
	// Index is the point's position in the expanded grid (set by Expand,
	// re-set by Merge).
	Index int `json:"-"`

	Players int `json:"n"`
	// Objects is resolved (never 0).
	Objects int   `json:"m"`
	Budget  int   `json:"b"`
	Plant   Plant `json:"plant"`
	// Diameter is the planted diameter (0 for uniform plantings).
	Diameter  int    `json:"d"`
	Dishonest int    `json:"f,omitempty"`
	Strategy  string `json:"strategy,omitempty"`
	Protocol  string `json:"protocol"`
	// Scale is the rating scale of "ratings" points (0 elsewhere).
	Scale int `json:"scale,omitempty"`
	// Cap is the capacity tier of "budgets" points (zero elsewhere).
	Cap   CapTier `json:"cap,omitzero"`
	Trial int     `json:"trial"`
	// NeighborIndex is the canonical neighbor-index spec of clustering
	// points ("" means the exact default, so pre-axis records round-trip
	// unchanged; otherwise a cluster.ParseIndexSpec form such as "lsh").
	NeighborIndex string `json:"neighbor_index,omitempty"`
	// TruthSource is the canonical truth-representation spec ("" means the
	// dense default, keeping pre-axis records round-tripping unchanged;
	// otherwise a prefgen.ParseSourceSpec form such as "lazy" or
	// "lazy:4096").
	TruthSource string `json:"truth,omitempty"`

	FixDiameter    bool `json:"fix_diameter,omitempty"`
	PaperConstants bool `json:"paper_constants,omitempty"`

	// Seed is the point's derived Config seed: a pure function of the
	// instance-defining coordinates (n, m, b, plant, d, trial) and the
	// spec's root seed.
	Seed uint64 `json:"seed"`
}

// Key returns the point's canonical identity string — the resume key. Two
// points with equal keys are the same scenario.
func (pt Point) Key() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "n=%d,m=%d,b=%d,plant=%s,d=%d,f=%d", pt.Players, pt.Objects, pt.Budget, pt.Plant, pt.Diameter, pt.Dishonest)
	if pt.Strategy != "" {
		fmt.Fprintf(&sb, ",strat=%s", pt.Strategy)
	}
	if pt.Scale > 0 {
		fmt.Fprintf(&sb, ",scale=%d", pt.Scale)
	}
	if !pt.Cap.IsZero() {
		fmt.Fprintf(&sb, ",cap=%s", pt.Cap)
	}
	if pt.NeighborIndex != "" {
		fmt.Fprintf(&sb, ",nidx=%s", pt.NeighborIndex)
	}
	if pt.TruthSource != "" {
		fmt.Fprintf(&sb, ",truth=%s", pt.TruthSource)
	}
	fmt.Fprintf(&sb, ",proto=%s,trial=%d", pt.Protocol, pt.Trial)
	if pt.FixDiameter {
		sb.WriteString(",fixd")
	}
	if pt.PaperConstants {
		sb.WriteString(",paper")
	}
	return sb.String()
}

// Scenario converts the point to its collabscore scenario. It returns an
// error for unknown strategy or protocol names (Expand never produces
// those, but points can also arrive from JSONL files).
func (pt Point) Scenario() (collabscore.Scenario, error) {
	sc := collabscore.Scenario{
		Config: collabscore.Config{
			Players:        pt.Players,
			Objects:        pt.Objects,
			Budget:         pt.Budget,
			Seed:           pt.Seed,
			PaperConstants: pt.PaperConstants,
		},
		Diameter: pt.Diameter,
	}
	if pt.FixDiameter {
		sc.Config.FixedDiameter = pt.Diameter
	}
	switch pt.Plant.Kind {
	case "uniform":
	case "cluster":
		sc.ClusterSize = pt.Plant.ClusterSize
	case "zipf":
		sc.ZipfClusters = pt.Plant.ZipfClusters
		sc.ZipfAlpha = pt.Plant.ZipfAlpha
	default:
		return sc, fmt.Errorf("sweep: unknown planting kind %q", pt.Plant.Kind)
	}
	if pt.Dishonest > 0 {
		st, err := collabscore.ParseStrategy(pt.Strategy)
		if err != nil {
			return sc, err
		}
		sc.Dishonest = pt.Dishonest
		sc.Strategy = st
	}
	proto, err := collabscore.ParseProtocol(pt.Protocol)
	if err != nil {
		return sc, err
	}
	sc.Protocol = proto
	sc.Scale = pt.Scale
	sc.CapSmall, sc.CapBig, sc.CapBigFrac = pt.Cap.Small, pt.Cap.Big, pt.Cap.BigFrac
	// Validate the index here rather than letting the simulation panic on
	// it later: like strategies and protocols, points from JSONL files can
	// hold anything.
	if _, err := cluster.ParseIndexSpec(pt.NeighborIndex); err != nil {
		return sc, fmt.Errorf("sweep: %v", err)
	}
	sc.Config.NeighborIndex = pt.NeighborIndex
	if _, err := prefgen.ParseSourceSpec(pt.TruthSource); err != nil {
		return sc, fmt.Errorf("sweep: %v", err)
	}
	sc.Config.TruthSource = pt.TruthSource
	// Substrate checks for points that did not come from Expand (JSONL
	// files can hold anything): rating points need a cluster planting and a
	// rating-capable strategy; binary points a binary-capable one.
	if proto == collabscore.ProtoRatings {
		if sc.ClusterSize <= 0 {
			return sc, fmt.Errorf("sweep: ratings point %s needs a cluster planting", pt.Key())
		}
		if sc.Dishonest > 0 && !sc.Strategy.RatingCapable() {
			return sc, fmt.Errorf("sweep: strategy %q has no rating-scale behavior", pt.Strategy)
		}
	} else if sc.Dishonest > 0 && !sc.Strategy.BinaryCapable() {
		return sc, fmt.Errorf("sweep: strategy %q has no binary behavior", pt.Strategy)
	}
	return sc, nil
}

// plantCode numbers planting kinds for seed-split tags.
func plantCode(kind string) uint64 {
	switch kind {
	case "cluster":
		return 1
	case "zipf":
		return 2
	default:
		return 0
	}
}

// pointSeed derives the point's Config seed from the instance-defining
// coordinates only: points differing in dishonest/strategy/protocol,
// capacity tier, or neighbor index share a seed (and therefore a world) by
// design — paired comparisons. The rating scale IS instance-defining (it changes the
// planted truth matrix), so it joins the split tags — but only when
// nonzero, which keeps every pre-existing binary point's seed unchanged.
func pointSeed(root *xrand.Stream, pt *Point) uint64 {
	tags := []uint64{
		uint64(pt.Players), uint64(pt.Objects), uint64(pt.Budget),
		plantCode(pt.Plant.Kind), uint64(pt.Plant.ClusterSize), uint64(pt.Plant.ZipfClusters),
		math.Float64bits(pt.Plant.ZipfAlpha), uint64(pt.Diameter), uint64(pt.Trial),
	}
	if pt.Scale > 0 {
		tags = append(tags, 0x5CA1E, uint64(pt.Scale))
	}
	s := root.SplitValue(tags...)
	return s.Uint64()
}

// plantings resolves the spec's planting axis.
func (sp Spec) plantings() []Plant {
	var out []Plant
	for _, cs := range sp.ClusterSizes {
		out = append(out, Plant{Kind: "cluster", ClusterSize: cs})
	}
	alphas := sp.ZipfAlphas
	if len(alphas) == 0 {
		alphas = []float64{1.1}
	}
	alphas = uniq(alphas)
	for _, zc := range sp.ZipfClusters {
		for _, a := range alphas {
			out = append(out, Plant{Kind: "zipf", ZipfClusters: zc, ZipfAlpha: a})
		}
	}
	if len(out) == 0 {
		out = []Plant{{Kind: "uniform"}}
	}
	return uniq(out)
}

// resolveInts maps each zero entry of xs to def (the axis default), leaving
// other values untouched.
func resolveInts(xs []int, def int) []int {
	out := make([]int, len(xs))
	for i, x := range xs {
		if x == 0 {
			x = def
		}
		out[i] = x
	}
	return out
}

func defInts(xs []int, def int) []int {
	if len(xs) == 0 {
		return []int{def}
	}
	return xs
}

func defStrs(xs []string, def string) []string {
	if len(xs) == 0 {
		return []string{def}
	}
	return xs
}

// uniq returns xs with duplicates removed, preserving first-seen order.
// Axis values are deduplicated after default resolution so that e.g.
// Budgets [0, 8] (both meaning B = 8) yields one budget, not two identical
// grid slices. The quadratic scan is fine at axis-list sizes.
func uniq[T comparable](xs []T) []T {
	out := xs[:0:0]
	for _, x := range xs {
		dup := false
		for _, y := range out {
			if x == y {
				dup = true
				break
			}
		}
		if !dup {
			out = append(out, x)
		}
	}
	return out
}

// Expand validates the spec and returns its grid points in canonical order
// with derived seeds. Combinations that cannot be instantiated are skipped
// deterministically rather than erroring, so axes can mix scales freely:
//
//   - cluster size > players (prefgen cannot plant it);
//   - dishonest > players (cannot corrupt more players than exist).
//
// Two normalizations prevent semantic duplicates: honest points
// (dishonest = 0) are emitted for the first strategy only, with the
// strategy name cleared; and for the uniform planting without FixDiameter
// the diameter axis collapses to the single value 0 (the diameter would
// otherwise be dead weight in the key).
func Expand(sp Spec) ([]Point, error) {
	if len(sp.Players) == 0 {
		return nil, fmt.Errorf("sweep: spec needs at least one players value")
	}
	for _, n := range sp.Players {
		if n < 1 {
			return nil, fmt.Errorf("sweep: players value %d must be ≥ 1", n)
		}
	}
	for _, m := range sp.Objects {
		if m < 0 {
			return nil, fmt.Errorf("sweep: objects value %d must be ≥ 0", m)
		}
	}
	for _, b := range sp.Budgets {
		if b < 0 {
			return nil, fmt.Errorf("sweep: budget value %d must be ≥ 0", b)
		}
	}
	for _, cs := range sp.ClusterSizes {
		if cs < 1 {
			return nil, fmt.Errorf("sweep: cluster size %d must be ≥ 1", cs)
		}
	}
	for _, zc := range sp.ZipfClusters {
		if zc < 1 {
			return nil, fmt.Errorf("sweep: zipf cluster count %d must be ≥ 1", zc)
		}
	}
	for _, a := range sp.ZipfAlphas {
		if !(a > 0) {
			return nil, fmt.Errorf("sweep: zipf alpha %g must be > 0", a)
		}
	}
	for _, d := range sp.Diameters {
		if d < 0 {
			return nil, fmt.Errorf("sweep: diameter %d must be ≥ 0", d)
		}
	}
	for _, f := range sp.Dishonest {
		if f < 0 {
			return nil, fmt.Errorf("sweep: dishonest count %d must be ≥ 0", f)
		}
	}
	for _, sc := range sp.Scales {
		if sc < 0 {
			return nil, fmt.Errorf("sweep: rating scale %d must be ≥ 0", sc)
		}
	}
	for _, ct := range sp.CapacityTiers {
		// The negated form rejects NaN fractions too (NaN fails ≥).
		if ct.Small < 0 || ct.Big < 0 || !(ct.BigFrac >= 0 && ct.BigFrac <= 1) {
			return nil, fmt.Errorf("sweep: bad capacity tier %s", ct)
		}
	}
	// Canonicalize the neighbor-index axis up front: every entry must
	// parse, and the exact default becomes "" so that default points keep
	// their historical keys.
	nidxes := []string{""}
	if len(sp.NeighborIndexes) > 0 {
		nidxes = nidxes[:0]
		for _, s := range sp.NeighborIndexes {
			spec, err := cluster.ParseIndexSpec(s)
			if err != nil {
				return nil, fmt.Errorf("sweep: %v", err)
			}
			// Only the full default (exact discovery AND auto
			// representation — the zero spec) collapses to "": a forced
			// representation like "exact+sparse" is a distinct point, and
			// IsExact alone would wrongly erase it.
			if spec == (cluster.IndexSpec{}) {
				nidxes = append(nidxes, "")
			} else {
				nidxes = append(nidxes, spec.String())
			}
		}
		nidxes = uniq(nidxes)
	}
	// Same treatment for the truth-representation axis: every entry must
	// parse, and the dense default becomes "" so default points keep their
	// historical keys.
	truths := []string{""}
	if len(sp.TruthSources) > 0 {
		truths = truths[:0]
		for _, s := range sp.TruthSources {
			spec, err := prefgen.ParseSourceSpec(s)
			if err != nil {
				return nil, fmt.Errorf("sweep: %v", err)
			}
			if spec.IsDense() {
				truths = append(truths, "")
			} else {
				truths = append(truths, spec.String())
			}
		}
		truths = uniq(truths)
	}
	strategies := defStrs(sp.Strategies, collabscore.RandomLiar.String())
	for _, s := range strategies {
		if _, err := collabscore.ParseStrategy(s); err != nil {
			return nil, err
		}
	}
	protocols := defStrs(sp.Protocols, collabscore.ProtoByzantine.String())
	for _, p := range protocols {
		if _, err := collabscore.ParseProtocol(p); err != nil {
			return nil, err
		}
	}
	trials := sp.Trials
	if trials <= 0 {
		trials = 1
	}

	players := uniq(sp.Players)
	objects := defInts(sp.Objects, 0)
	budgets := uniq(resolveInts(defInts(sp.Budgets, 0), 8))
	diameters := uniq(defInts(sp.Diameters, 0))
	dishonest := uniq(defInts(sp.Dishonest, 0))
	strategies = uniq(strategies)
	protocols = uniq(protocols)
	scales := uniq(resolveInts(defInts(sp.Scales, 0), 5))
	tiers := sp.CapacityTiers
	if len(tiers) == 0 {
		tiers = []CapTier{{}}
	}
	tiers = uniq(tiers)
	plants := sp.plantings()
	ratingsName := collabscore.ProtoRatings.String()
	budgetsName := collabscore.ProtoBudgets.String()
	clusteringProto := map[string]bool{
		collabscore.ProtoRun.String():       true,
		collabscore.ProtoByzantine.String(): true,
		budgetsName:                         true,
	}
	stratOf := make(map[string]collabscore.Strategy, len(strategies))
	for _, name := range strategies {
		st, _ := collabscore.ParseStrategy(name) // validated above
		stratOf[name] = st
	}
	root := xrand.New(sp.Seed)

	var out []Point
	for _, n := range players {
		for _, m := range uniq(resolveInts(objects, n)) {
			for _, b := range budgets {
				for _, plant := range plants {
					if plant.Kind == "cluster" && plant.ClusterSize > n {
						continue
					}
					ds := diameters
					if plant.Kind == "uniform" && !sp.FixDiameter {
						ds = []int{0}
					}
					for _, d := range ds {
						for _, f := range dishonest {
							if f > n {
								continue
							}
							strats := strategies
							if f == 0 {
								strats = strategies[:1]
							}
							for _, strat := range strats {
								for _, proto := range protocols {
									// Substrate-mismatched combinations are
									// skipped deterministically: rating points
									// need a cluster planting and a
									// rating-capable strategy; other protocols
									// a binary-capable one. The scale axis
									// applies to rating points, the
									// capacity-tier axis to budgets points;
									// each collapses to its zero value
									// elsewhere, as does the neighbor-index
									// axis on the non-clustering protocols.
									// The truth-source axis applies to every
									// protocol: all substrates carry both
									// representations.
									protoScales := []int{0}
									protoTiers := []CapTier{{}}
									protoNidx := []string{""}
									if proto == ratingsName {
										if plant.Kind != "cluster" {
											continue
										}
										if f > 0 && !stratOf[strat].RatingCapable() {
											continue
										}
										protoScales = scales
									} else {
										if f > 0 && !stratOf[strat].BinaryCapable() {
											continue
										}
										if proto == budgetsName {
											protoTiers = tiers
										}
										if clusteringProto[proto] {
											protoNidx = nidxes
										}
									}
									for _, scale := range protoScales {
										for _, tier := range protoTiers {
											for _, nidx := range protoNidx {
												for _, truth := range truths {
													for trial := 0; trial < trials; trial++ {
														pt := Point{
															Index:          len(out),
															Players:        n,
															Objects:        m,
															Budget:         b,
															Plant:          plant,
															Diameter:       d,
															Dishonest:      f,
															Strategy:       strat,
															Protocol:       proto,
															Scale:          scale,
															Cap:            tier,
															Trial:          trial,
															NeighborIndex:  nidx,
															TruthSource:    truth,
															FixDiameter:    sp.FixDiameter,
															PaperConstants: sp.PaperConstants,
														}
														if f == 0 {
															pt.Strategy = ""
														}
														pt.Seed = pointSeed(root, &pt)
														out = append(out, pt)
													}
												}
											}
										}
									}
								}
							}
						}
					}
				}
			}
		}
	}
	return out, nil
}

// Merge concatenates point lists from several Expand calls into one grid,
// reassigning contiguous indices. It returns an error on duplicate keys —
// merged specs must describe disjoint grids.
func Merge(lists ...[]Point) ([]Point, error) {
	var out []Point
	seen := make(map[string]struct{})
	for _, list := range lists {
		for _, pt := range list {
			k := pt.Key()
			if _, dup := seen[k]; dup {
				return nil, fmt.Errorf("sweep: duplicate point %s across merged specs", k)
			}
			seen[k] = struct{}{}
			pt.Index = len(out)
			out = append(out, pt)
		}
	}
	return out, nil
}
