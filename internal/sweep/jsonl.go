package sweep

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
)

// Record is one completed grid point: the point's coordinates plus the
// deterministic measurements of its report. Records are streamed to the
// sink as one JSON object per line (JSONL); every field is a pure function
// of the point's seed and coordinates, so a record is byte-comparable
// across runs, workers, pooled and unpooled execution, and resumes.
type Record struct {
	Point
	// Key is the point's canonical identity (Point.Key) — the resume key.
	Key string `json:"key"`

	MaxError   int     `json:"max_error"`
	MeanError  float64 `json:"mean_error"`
	MaxProbes  int64   `json:"max_probes"`
	MeanProbes float64 `json:"mean_probes"`
	// TotalProbes sums probes over all players, honest and dishonest.
	TotalProbes int64 `json:"total_probes"`
	// OptError is the exact planted optimum (max over players of the
	// distance to their cluster's best representable vector), or -1 when
	// not computed (Options.ComputeOpt) or no structure was planted.
	OptError int `json:"opt_error"`
	// HonestLeaders/Repetitions report the Byzantine wrapper's elections
	// (both 0 for non-Byzantine protocols).
	HonestLeaders int `json:"honest_leaders"`
	Repetitions   int `json:"repetitions"`
	// CommWrites/CommReads are the bulletin-board traffic totals.
	CommWrites int64 `json:"comm_writes"`
	CommReads  int64 `json:"comm_reads"`
	// Rounds is the point's synchronous-round complexity under the §2
	// round model (internal/rounds): each player performs exactly one
	// probe per round, so the rounds a protocol needs equal the worst
	// per-player probe count — the rounds axis every grid point carries
	// for free.
	Rounds int64 `json:"rounds"`
}

// writeRecord appends one JSONL line to w. The line is marshaled first and
// written with a single Write call, so concurrent writers serialized by the
// engine's mutex produce whole lines (a crash can truncate only the tail).
func writeRecord(w io.Writer, rec Record) error {
	b, err := json.Marshal(rec)
	if err != nil {
		return err
	}
	b = append(b, '\n')
	_, err = w.Write(b)
	return err
}

// ReadRecords parses a JSONL results file, tolerating a truncated tail (the
// kill-mid-sweep case): it returns the records of every intact line and the
// byte offset just past the last intact line. A line is intact when it is
// newline-terminated and unmarshals to a record with a non-empty key;
// parsing stops at the first line that is not, and the remainder of the
// stream is reported in truncated bytes via the offset (callers resume by
// truncating the file there and appending).
func ReadRecords(r io.Reader) (recs []Record, intact int64, err error) {
	br := bufio.NewReader(r)
	for {
		line, rerr := br.ReadBytes('\n')
		if rerr != nil && rerr != io.EOF {
			return recs, intact, rerr
		}
		complete := len(line) > 0 && line[len(line)-1] == '\n'
		if complete {
			var rec Record
			if json.Unmarshal(line, &rec) == nil && rec.Key != "" {
				recs = append(recs, rec)
				intact += int64(len(line))
				if rerr == io.EOF {
					return recs, intact, nil
				}
				continue
			}
		}
		// Truncated or corrupt line: stop here; everything before is good.
		return recs, intact, nil
	}
}

// CompletedKeys returns the set of point keys present in recs.
func CompletedKeys(recs []Record) map[string]struct{} {
	out := make(map[string]struct{}, len(recs))
	for _, rec := range recs {
		out[rec.Key] = struct{}{}
	}
	return out
}

// RunFile executes the grid with results streamed to the JSONL file at
// path. With resume set, points already recorded intact in the file are
// skipped and exactly the missing ones run; without it the file is
// truncated and the whole grid runs. A previous record only counts as
// completing a point when it matches what this run would produce: its key
// AND seed equal the expanded point's (a record from a different root
// seed, or from a grid the file no longer describes, is another sweep's
// number), and its opt_error presence matches this run's
// Options.ComputeOpt (resuming a no-opt file with -opt, or vice versa,
// must recompute rather than mix). Stale records are dropped by rewriting
// the file with the valid ones before appending; a torn final line from a
// mid-write kill is discarded the same way. RunFile returns one record
// per grid point in point order — previously recorded points contribute
// their stored records, so the result is record-equal to an uninterrupted
// sweep with the same options.
func RunFile(points []Point, path string, resume bool, opt Options) ([]Record, error) {
	type want struct {
		seed    uint64
		withOpt bool
	}
	wants := make(map[string]want, len(points))
	for _, pt := range points {
		wants[pt.Key()] = want{
			seed: pt.Seed,
			// Uniform plantings and rating points have no optimum to
			// compute (OptError -1 either way), and neither do lazy
			// truth sources (the oracle scans the materialized matrix);
			// planted dense binary points carry one iff ComputeOpt is on.
			withOpt: opt.ComputeOpt && pt.Plant.Kind != "uniform" && pt.Protocol != "ratings" && pt.TruthSource == "",
		}
	}

	var valid []Record
	rewrite := !resume
	if resume {
		f, err := os.Open(path)
		switch {
		case err == nil:
			prev, intact, rerr := ReadRecords(f)
			size, _ := f.Seek(0, 2)
			f.Close()
			if rerr != nil {
				return nil, fmt.Errorf("sweep: reading %s: %w", path, rerr)
			}
			for _, rec := range prev {
				w, ok := wants[rec.Key]
				if ok && w.seed == rec.Seed && w.withOpt == (rec.OptError >= 0) {
					valid = append(valid, rec)
				}
			}
			switch {
			case len(valid) != len(prev):
				rewrite = true // stale records: rebuild the file from the valid ones
			case intact < size:
				if err := os.Truncate(path, intact); err != nil {
					return nil, fmt.Errorf("sweep: truncating %s to last intact record: %w", path, err)
				}
			}
		case os.IsNotExist(err):
			// Nothing to resume from; run the full grid.
		default:
			return nil, err
		}
	}
	flags := os.O_CREATE | os.O_WRONLY
	if rewrite {
		flags |= os.O_TRUNC
	} else {
		flags |= os.O_APPEND
	}
	f, err := os.OpenFile(path, flags, 0o644)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	if rewrite {
		for _, rec := range valid {
			if err := writeRecord(f, rec); err != nil {
				return nil, err
			}
		}
	}

	opt.Sink = f
	opt.Done = CompletedKeys(valid)
	fresh, err := Run(points, opt)
	if err != nil {
		return nil, err
	}
	if err := f.Close(); err != nil {
		return nil, err
	}

	byKey := make(map[string]Record, len(valid)+len(fresh))
	for _, rec := range valid {
		byKey[rec.Key] = rec
	}
	for _, rec := range fresh {
		byKey[rec.Key] = rec
	}
	out := make([]Record, 0, len(points))
	for _, pt := range points {
		rec, ok := byKey[pt.Key()]
		if !ok {
			return nil, fmt.Errorf("sweep: point %s has no record after run", pt.Key())
		}
		rec.Index = pt.Index
		out = append(out, rec)
	}
	return out, nil
}
