package sweep

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"reflect"
)

// Record is one completed grid point: the point's coordinates plus the
// deterministic measurements of its report. Records are streamed to the
// sink as one JSON object per line (JSONL); every field is a pure function
// of the point's seed and coordinates, so a record is byte-comparable
// across runs, workers, pooled and unpooled execution, and resumes.
type Record struct {
	Point
	// Key is the point's canonical identity (Point.Key) — the resume key.
	Key string `json:"key"`

	MaxError   int     `json:"max_error"`
	MeanError  float64 `json:"mean_error"`
	MaxProbes  int64   `json:"max_probes"`
	MeanProbes float64 `json:"mean_probes"`
	// TotalProbes sums probes over all players, honest and dishonest.
	TotalProbes int64 `json:"total_probes"`
	// OptError is the exact planted optimum (max over players of the
	// distance to their cluster's best representable vector), or -1 when
	// not computed (Options.ComputeOpt) or no structure was planted.
	OptError int `json:"opt_error"`
	// HonestLeaders/Repetitions report the Byzantine wrapper's elections
	// (both 0 for non-Byzantine protocols).
	HonestLeaders int `json:"honest_leaders"`
	Repetitions   int `json:"repetitions"`
	// CommWrites/CommReads are the bulletin-board traffic totals.
	CommWrites int64 `json:"comm_writes"`
	CommReads  int64 `json:"comm_reads"`
	// Rounds is the point's synchronous-round complexity under the §2
	// round model (internal/rounds): each player performs exactly one
	// probe per round, so the rounds a protocol needs equal the worst
	// per-player probe count — the rounds axis every grid point carries
	// for free.
	Rounds int64 `json:"rounds"`
}

// WriteRecord appends one JSONL line to w. The line is marshaled first and
// written with a single Write call, so concurrent writers serialized by the
// engine's mutex (or the fleet coordinator's) produce whole lines — a crash
// can truncate only the tail, which ReadRecords tolerates.
func WriteRecord(w io.Writer, rec Record) error {
	b, err := json.Marshal(rec)
	if err != nil {
		return err
	}
	b = append(b, '\n')
	_, err = w.Write(b)
	return err
}

// ReadRecords parses a JSONL results file, tolerating a truncated tail (the
// kill-mid-sweep case): it returns the records of every intact line and the
// byte offset just past the last intact line. A line is intact when it is
// newline-terminated and unmarshals to a record with a non-empty key;
// parsing stops at the first line that is not, and the remainder of the
// stream is reported in truncated bytes via the offset (callers resume by
// truncating the file there and appending).
func ReadRecords(r io.Reader) (recs []Record, intact int64, err error) {
	br := bufio.NewReader(r)
	for {
		line, rerr := br.ReadBytes('\n')
		if rerr != nil && rerr != io.EOF {
			return recs, intact, rerr
		}
		complete := len(line) > 0 && line[len(line)-1] == '\n'
		if complete {
			var rec Record
			if json.Unmarshal(line, &rec) == nil && rec.Key != "" {
				recs = append(recs, rec)
				intact += int64(len(line))
				if rerr == io.EOF {
					return recs, intact, nil
				}
				continue
			}
		}
		// Truncated or corrupt line: stop here; everything before is good.
		return recs, intact, nil
	}
}

// CompletedKeys returns the set of point keys present in recs.
func CompletedKeys(recs []Record) map[string]struct{} {
	out := make(map[string]struct{}, len(recs))
	for _, rec := range recs {
		out[rec.Key] = struct{}{}
	}
	return out
}

// wantsOpt reports whether a run with the given ComputeOpt setting records
// a planted optimum for pt: uniform plantings and rating points have no
// optimum to compute (OptError -1 either way), and neither do lazy truth
// sources (the oracle scans the materialized matrix); planted dense binary
// points carry one iff ComputeOpt is on. This single predicate is the
// opt-consistency rule every resume and merge path applies — a record's
// opt_error presence must match what the current run would produce.
func wantsOpt(pt Point, computeOpt bool) bool {
	return computeOpt && pt.Plant.Kind != "uniform" && pt.Protocol != "ratings" && pt.TruthSource == ""
}

// FilePlan is the resume plan for a JSONL results file against a grid: the
// prior records that satisfy grid points under this run's options, and how
// the file must be opened to continue it. PlanFile is the single
// stale-record gate shared by RunFile and the fleet coordinator's
// checkpoint, so both apply identical rejection rules.
type FilePlan struct {
	// Valid holds the prior records that count as completing grid points:
	// key AND seed equal the expanded point's (a record from a different
	// root seed, or from a grid the file no longer describes, is another
	// sweep's number), and opt_error presence matches this run's ComputeOpt
	// (resuming a no-opt file with -opt, or vice versa, must recompute
	// rather than mix).
	Valid []Record

	path    string
	rewrite bool
}

// PlanFile reads the results file at path (when resume is set) and plans
// how a run over points continues it: stale records are scheduled to be
// dropped by rewriting the file with the valid ones, and a torn final line
// from a mid-write kill is truncated away. Without resume the plan is a
// fresh file. The file not existing is a valid plan (full grid runs).
func PlanFile(points []Point, path string, resume, computeOpt bool) (*FilePlan, error) {
	type want struct {
		seed    uint64
		withOpt bool
	}
	wants := make(map[string]want, len(points))
	for _, pt := range points {
		wants[pt.Key()] = want{seed: pt.Seed, withOpt: wantsOpt(pt, computeOpt)}
	}

	plan := &FilePlan{path: path, rewrite: !resume}
	if !resume {
		return plan, nil
	}
	f, err := os.Open(path)
	switch {
	case err == nil:
		prev, intact, rerr := ReadRecords(f)
		size, _ := f.Seek(0, 2)
		f.Close()
		if rerr != nil {
			return nil, fmt.Errorf("sweep: reading %s: %w", path, rerr)
		}
		for _, rec := range prev {
			w, ok := wants[rec.Key]
			if ok && w.seed == rec.Seed && w.withOpt == (rec.OptError >= 0) {
				plan.Valid = append(plan.Valid, rec)
			}
		}
		switch {
		case len(plan.Valid) != len(prev):
			plan.rewrite = true // stale records: rebuild the file from the valid ones
		case intact < size:
			if err := os.Truncate(path, intact); err != nil {
				return nil, fmt.Errorf("sweep: truncating %s to last intact record: %w", path, err)
			}
		}
	case os.IsNotExist(err):
		// Nothing to resume from; run the full grid.
	default:
		return nil, err
	}
	return plan, nil
}

// Open opens the planned file for appending fresh records: truncated and
// re-seeded with the valid records when the plan calls for a rewrite,
// append-at-tail otherwise. The caller owns closing the file.
func (p *FilePlan) Open() (*os.File, error) {
	flags := os.O_CREATE | os.O_WRONLY
	if p.rewrite {
		flags |= os.O_TRUNC
	} else {
		flags |= os.O_APPEND
	}
	f, err := os.OpenFile(p.path, flags, 0o644)
	if err != nil {
		return nil, err
	}
	if p.rewrite {
		for _, rec := range p.Valid {
			if err := WriteRecord(f, rec); err != nil {
				f.Close()
				return nil, err
			}
		}
	}
	return f, nil
}

// RunFile executes the grid with results streamed to the JSONL file at
// path. With resume set, points already recorded intact in the file are
// skipped and exactly the missing ones run, under PlanFile's stale-seed and
// opt-change rejection rules; without it the file is truncated and the
// whole grid runs. RunFile returns one record per grid point in point order
// — previously recorded points contribute their stored records, so the
// result is record-equal to an uninterrupted sweep with the same options.
// Two documented exceptions return fewer records without error: points a
// closed Options.Stop kept from running (the file stays resumable), and
// points reported through Options.OnFailure (persistent panics).
func RunFile(points []Point, path string, resume bool, opt Options) ([]Record, error) {
	plan, err := PlanFile(points, path, resume, opt.ComputeOpt)
	if err != nil {
		return nil, err
	}
	f, err := plan.Open()
	if err != nil {
		return nil, err
	}
	defer f.Close()

	failed := make(map[string]struct{})
	userFail := opt.OnFailure
	opt.OnFailure = func(pt Point, err error) {
		failed[pt.Key()] = struct{}{}
		if userFail != nil {
			userFail(pt, err)
		}
	}
	opt.Sink = f
	opt.Done = CompletedKeys(plan.Valid)
	fresh, err := Run(points, opt)
	if err != nil {
		return nil, err
	}
	if err := f.Close(); err != nil {
		return nil, err
	}

	byKey := make(map[string]Record, len(plan.Valid)+len(fresh))
	for _, rec := range plan.Valid {
		byKey[rec.Key] = rec
	}
	for _, rec := range fresh {
		byKey[rec.Key] = rec
	}
	stopped := stopRequested(opt.Stop)
	out := make([]Record, 0, len(points))
	for _, pt := range points {
		rec, ok := byKey[pt.Key()]
		if !ok {
			if _, f := failed[pt.Key()]; f || stopped {
				continue
			}
			return nil, fmt.Errorf("sweep: point %s has no record after run", pt.Key())
		}
		rec.Index = pt.Index
		out = append(out, rec)
	}
	return out, nil
}

// MergeFiles reads several JSONL results files — shard or fleet worker
// outputs — and merges their records into one key-deduplicated list in
// first-seen order. Duplicate keys are legal only when the records are
// identical (the at-least-once dispatch case: the same deterministic point
// run twice); conflicting records for the same key mean the files came from
// different sweeps and merging them would corrupt both, so that is an
// error, as is an unreadable file. Torn tails are tolerated per file (the
// torn point is simply absent, exactly as in a single-file resume).
func MergeFiles(paths ...string) ([]Record, error) {
	byKey := make(map[string]Record)
	var out []Record
	for _, path := range paths {
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		recs, _, err := ReadRecords(f)
		f.Close()
		if err != nil {
			return nil, fmt.Errorf("sweep: reading %s: %w", path, err)
		}
		for _, rec := range recs {
			prev, dup := byKey[rec.Key]
			if !dup {
				byKey[rec.Key] = rec
				out = append(out, rec)
				continue
			}
			if !reflect.DeepEqual(prev, rec) {
				return nil, fmt.Errorf("sweep: conflicting records for point %s (merged files are from different sweeps?)", rec.Key)
			}
		}
	}
	return out, nil
}
