package sweep

import (
	"collabscore/internal/metrics"
)

// Summary aggregates a set of point records through internal/metrics: the
// distribution of per-point accuracy (max and mean honest error), probe
// totals, and the honest-leader rate of the Byzantine points.
type Summary struct {
	// Points is the number of records aggregated.
	Points int `json:"points"`
	// MaxError summarizes the per-point worst honest error: its Max is the
	// worst error anywhere in the grid, Mean/Median/P95 the distribution
	// over points.
	MaxError metrics.ErrorStats `json:"max_error"`
	// MeanError is the grand mean of the per-point mean honest errors.
	MeanError float64 `json:"mean_error"`
	// MaxProbes is the worst per-player probe count anywhere in the grid;
	// MeanMaxProbes its mean over points.
	MaxProbes     int64   `json:"max_probes"`
	MeanMaxProbes float64 `json:"mean_max_probes"`
	// TotalProbes sums every player's probes over all points — the grid's
	// total probing work.
	TotalProbes int64 `json:"total_probes"`
	// HonestLeaderRate is elected-honest-leaders over total repetitions,
	// across the points that ran the Byzantine wrapper (0 when none did).
	HonestLeaderRate float64 `json:"honest_leader_rate"`
	// CommWrites/CommReads sum bulletin-board traffic over all points.
	CommWrites int64 `json:"comm_writes"`
	CommReads  int64 `json:"comm_reads"`
	// Failures counts points that persistently failed (their runner
	// panicked through the per-point retry) and so have no record;
	// FailedPoints lists their keys. Aggregate only sees records, so the
	// caller fills these from its Options.OnFailure tally (cmd/sweep does).
	Failures     int      `json:"failures,omitempty"`
	FailedPoints []string `json:"failed_points,omitempty"`
}

// Aggregate summarizes the given records.
func Aggregate(recs []Record) Summary {
	s := Summary{Points: len(recs)}
	if len(recs) == 0 {
		return s
	}
	maxErrs := make([]int, len(recs))
	var meanErrSum, meanProbesSum float64
	var leaders, reps int64
	for i, rec := range recs {
		maxErrs[i] = rec.MaxError
		meanErrSum += rec.MeanError
		meanProbesSum += float64(rec.MaxProbes)
		if rec.MaxProbes > s.MaxProbes {
			s.MaxProbes = rec.MaxProbes
		}
		s.TotalProbes += rec.TotalProbes
		s.CommWrites += rec.CommWrites
		s.CommReads += rec.CommReads
		leaders += int64(rec.HonestLeaders)
		reps += int64(rec.Repetitions)
	}
	s.MaxError = metrics.Summarize(maxErrs)
	s.MeanError = meanErrSum / float64(len(recs))
	s.MeanMaxProbes = meanProbesSum / float64(len(recs))
	if reps > 0 {
		s.HonestLeaderRate = float64(leaders) / float64(reps)
	}
	return s
}

// MeanOf returns the mean of fn over the records (0 for none) — the helper
// trial-averaged table columns are built from.
func MeanOf(recs []Record, fn func(Record) float64) float64 {
	if len(recs) == 0 {
		return 0
	}
	t := 0.0
	for _, rec := range recs {
		t += fn(rec)
	}
	return t / float64(len(recs))
}
