package sweep

import (
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"
)

// panicPoint returns a syntactically valid point whose runner panics
// deterministically (planted cluster larger than the player count —
// Expand never emits it, but hand-built grids and wire input can).
func panicPoint(seed uint64) Point {
	return Point{
		Players: 8, Objects: 8, Budget: 8,
		Plant:    Plant{Kind: "cluster", ClusterSize: 64},
		Protocol: "run", Seed: seed,
	}
}

// TestRunRecoversPointPanic: a panicking point no longer takes down the
// pool — it is retried once, reported through OnFailure, and every other
// point completes normally with records identical to a clean run.
func TestRunRecoversPointPanic(t *testing.T) {
	good := testGrid(t)
	ref, err := Run(good, Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	mixed := append(append([]Point{panicPoint(7)}, good[:len(good)/2]...),
		append([]Point{panicPoint(9)}, good[len(good)/2:]...)...)
	for i := range mixed {
		mixed[i].Index = i
	}
	var failed []string
	var failErrs []error
	recs, err := Run(mixed, Options{
		Workers: 2,
		OnFailure: func(pt Point, err error) {
			failed = append(failed, pt.Key())
			failErrs = append(failErrs, err)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(failed) != 2 {
		t.Fatalf("got %d failures, want 2: %v", len(failed), failed)
	}
	for _, err := range failErrs {
		if _, ok := err.(*PointError); !ok {
			t.Fatalf("failure error %T is not a *PointError: %v", err, err)
		}
	}
	if len(recs) != len(good) {
		t.Fatalf("got %d records for %d good points", len(recs), len(good))
	}
	byKey := make(map[string]Record)
	for _, rec := range recs {
		rec.Index = 0
		byKey[rec.Key] = rec
	}
	for _, want := range ref {
		want.Index = 0
		if got := byKey[want.Key]; !reflect.DeepEqual(got, want) {
			t.Fatalf("point %s: record differs from clean run\n got %+v\nwant %+v", want.Key, got, want)
		}
	}
}

// TestRunSurfacesFailuresWithoutHook: with no OnFailure hook the failures
// come back as one aggregate error AFTER every other point completed —
// never a crash, never silent loss.
func TestRunSurfacesFailuresWithoutHook(t *testing.T) {
	good := testGrid(t)[:3]
	mixed := append([]Point{panicPoint(7)}, good...)
	recs, err := Run(mixed, Options{Workers: 2})
	if err == nil {
		t.Fatal("persistent failure not surfaced")
	}
	if len(recs) != len(good) {
		t.Fatalf("failure discarded the %d good records (got %d)", len(good), len(recs))
	}
}

// TestRunFileTolleratesFailures: RunFile with a failure hook returns the
// completed subset, and the file resumes cleanly once the bad point is
// gone.
func TestRunFileToleratesFailures(t *testing.T) {
	good := testGrid(t)[:4]
	mixed := append([]Point{panicPoint(7)}, good...)
	for i := range mixed {
		mixed[i].Index = i
	}
	path := filepath.Join(t.TempDir(), "out.jsonl")
	var failures int
	recs, err := RunFile(mixed, path, false, Options{
		Workers:   2,
		OnFailure: func(pt Point, err error) { failures++ },
	})
	if err != nil {
		t.Fatal(err)
	}
	if failures != 1 || len(recs) != len(good) {
		t.Fatalf("failures=%d records=%d, want 1 and %d", failures, len(recs), len(good))
	}
	// Resuming the good sub-grid over the same file schedules nothing.
	var reran int
	if _, err := RunFile(good, path, true, Options{
		Workers:  1,
		Progress: func(completed, scheduled int, rec Record) { reran = scheduled },
	}); err != nil {
		t.Fatal(err)
	}
	if reran != 0 {
		t.Fatalf("resume after failures reran %d points, want 0", reran)
	}
}

// TestRunStops: closing Options.Stop mid-run stops new points from being
// claimed; completed records flush and the file resumes to exactly the
// reference set — the graceful-shutdown contract of every cmd/sweep mode.
func TestRunStops(t *testing.T) {
	pts := testGrid(t)
	dir := t.TempDir()
	refPath := filepath.Join(dir, "ref.jsonl")
	ref, err := RunFile(pts, refPath, false, Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}

	stop := make(chan struct{})
	path := filepath.Join(dir, "stopped.jsonl")
	k := 3
	partial, err := RunFile(pts, path, false, Options{
		Workers: 1,
		Stop:    stop,
		Progress: func(completed, scheduled int, rec Record) {
			if completed == k {
				close(stop)
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(partial) >= len(pts) || len(partial) < k {
		t.Fatalf("stopped run returned %d records for %d points (stopped at %d)", len(partial), len(pts), k)
	}
	// Stopped output is a prefix-by-key subset of the reference records.
	refByKey := make(map[string]Record)
	for _, rec := range ref {
		refByKey[rec.Key] = rec
	}
	for _, rec := range partial {
		if !reflect.DeepEqual(refByKey[rec.Key], rec) {
			t.Fatalf("stopped record %s differs from reference", rec.Key)
		}
	}
	// Resume completes exactly the missing points and matches the reference.
	resumed, err := RunFile(pts, path, true, Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(resumed, ref) {
		t.Fatal("resumed records differ from uninterrupted reference")
	}
}

// TestShardPartition: shards 0..k-1 cover the grid exactly once, the
// partition is deterministic, and out-of-range shards error.
func TestShardPartition(t *testing.T) {
	pts := testGrid(t)
	for _, k := range []int{1, 2, 3, 5} {
		seen := make(map[string]int)
		total := 0
		for i := 0; i < k; i++ {
			shard, err := Shard(pts, i, k)
			if err != nil {
				t.Fatal(err)
			}
			again, err := Shard(pts, i, k)
			if err != nil || !reflect.DeepEqual(shard, again) {
				t.Fatalf("shard %d/%d is not deterministic", i, k)
			}
			for _, pt := range shard {
				seen[pt.Key()]++
				if pt.Index != pts[pt.Index].Index {
					t.Fatalf("shard lost the full-grid index for %s", pt.Key())
				}
			}
			total += len(shard)
		}
		if total != len(pts) {
			t.Fatalf("k=%d: shards cover %d of %d points", k, total, len(pts))
		}
		for key, n := range seen {
			if n != 1 {
				t.Fatalf("k=%d: point %s appears in %d shards", k, key, n)
			}
		}
	}
	if _, err := Shard(pts, 3, 3); err == nil {
		t.Fatal("out-of-range shard index accepted")
	}
	if _, err := Shard(pts, 0, 0); err == nil {
		t.Fatal("zero shard count accepted")
	}
}

func TestParseShard(t *testing.T) {
	cases := []struct {
		in   string
		i, k int
		ok   bool
	}{
		{"", 0, 1, true}, {"0/1", 0, 1, true}, {"2/3", 2, 3, true},
		{"3/3", 0, 0, false}, {"-1/3", 0, 0, false}, {"1", 0, 0, false},
		{"a/b", 0, 0, false}, {"1/0", 0, 0, false},
	}
	for _, c := range cases {
		i, k, err := ParseShard(c.in)
		if (err == nil) != c.ok || (c.ok && (i != c.i || k != c.k)) {
			t.Fatalf("ParseShard(%q) = %d,%d,%v want %d,%d,ok=%v", c.in, i, k, err, c.i, c.k, c.ok)
		}
	}
}

// TestMergeFilesShards: k shard sweeps merged with MergeFiles are
// record-equal to a single-process sweep of the whole grid; overlapping
// identical records deduplicate, conflicting ones error.
func TestMergeFilesShards(t *testing.T) {
	pts := testGrid(t)
	dir := t.TempDir()
	refPath := filepath.Join(dir, "ref.jsonl")
	ref, err := RunFile(pts, refPath, false, Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}

	const k = 3
	paths := make([]string, 0, k+1)
	for i := 0; i < k; i++ {
		shard, err := Shard(pts, i, k)
		if err != nil {
			t.Fatal(err)
		}
		p := filepath.Join(dir, "shard"+string(rune('0'+i))+".jsonl")
		if _, err := RunFile(shard, p, false, Options{Workers: 1}); err != nil {
			t.Fatal(err)
		}
		paths = append(paths, p)
	}
	// Overlap: the reference file holds every point again — identical
	// records, so the merge must deduplicate, not reject.
	paths = append(paths, refPath)

	merged, err := MergeFiles(paths...)
	if err != nil {
		t.Fatal(err)
	}
	if len(merged) != len(pts) {
		t.Fatalf("merge holds %d records for %d points", len(merged), len(pts))
	}
	byKey := make(map[string]Record)
	for _, rec := range merged {
		byKey[rec.Key] = rec
	}
	for _, want := range ref {
		want.Index = 0
		got := byKey[want.Key]
		got.Index = 0
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("merged record %s differs from single-process run", want.Key)
		}
	}

	// Conflict: tamper with one shard's record → merge must refuse.
	raw, err := os.ReadFile(paths[0])
	if err != nil {
		t.Fatal(err)
	}
	tampered := []byte(string(raw))
	// Flip a digit inside the first record's max_probes field.
	idx := indexOf(tampered, []byte(`"max_probes":`))
	if idx < 0 {
		t.Fatal("no max_probes field to tamper with")
	}
	tampered[idx+len(`"max_probes":`)] = '9'
	bad := filepath.Join(dir, "tampered.jsonl")
	if err := os.WriteFile(bad, tampered, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := MergeFiles(refPath, bad); err == nil {
		t.Fatal("conflicting records merged without error")
	}
}

func indexOf(b, sub []byte) int {
	for i := 0; i+len(sub) <= len(b); i++ {
		if string(b[i:i+len(sub)]) == string(sub) {
			return i
		}
	}
	return -1
}

// TestQueueLifecycle drives a point through pending → leased → lapsed →
// re-leased → done on a fake clock, including the duplicate-completion and
// conflict rules.
func TestQueueLifecycle(t *testing.T) {
	pts := testGrid(t)[:4]
	recs, err := Run(pts, Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}

	q, err := NewQueue(pts, nil, false)
	if err != nil {
		t.Fatal(err)
	}
	now := time.Unix(1000, 0)
	q.SetClock(func() time.Time { return now })

	ls, ok := q.Lease("w1", 2, time.Second)
	if !ok || len(ls.Points) != 2 {
		t.Fatalf("lease granted %d points, want 2", len(ls.Points))
	}
	if pending, leased, done, _ := q.Counts(); pending != 2 || leased != 2 || done != 0 {
		t.Fatalf("counts after lease: pending=%d leased=%d done=%d", pending, leased, done)
	}

	// Heartbeat extends; the lease survives its original deadline.
	now = now.Add(900 * time.Millisecond)
	if _, ok := q.Heartbeat(ls.ID, time.Second); !ok {
		t.Fatal("live lease refused a heartbeat")
	}
	now = now.Add(900 * time.Millisecond)
	if n := q.Expire(); n != 0 {
		t.Fatalf("heartbeated lease lapsed (%d points re-queued)", n)
	}

	// Silence past the deadline lapses it and re-queues both points.
	now = now.Add(2 * time.Second)
	if n := q.Expire(); n != 2 {
		t.Fatalf("lapse re-queued %d points, want 2", n)
	}
	if _, ok := q.Heartbeat(ls.ID, time.Second); ok {
		t.Fatal("lapsed lease accepted a heartbeat")
	}

	// Both the lapsed holder and a new one run the points: first completion
	// is fresh, the identical duplicate is absorbed, a conflicting one is
	// rejected.
	ls2, ok := q.Lease("w2", 4, time.Second)
	if !ok || len(ls2.Points) != 4 {
		t.Fatalf("re-lease granted %d points, want all 4", len(ls2.Points))
	}
	for i, rec := range recs {
		fresh, err := q.Complete(rec)
		if err != nil || !fresh {
			t.Fatalf("completion %d: fresh=%v err=%v", i, fresh, err)
		}
	}
	fresh, err := q.Complete(recs[0])
	if err != nil || fresh {
		t.Fatalf("identical duplicate: fresh=%v err=%v, want absorbed", fresh, err)
	}
	evil := recs[0]
	evil.MaxProbes += 1000
	if _, err := q.Complete(evil); err == nil {
		t.Fatal("conflicting duplicate accepted")
	}
	stale := recs[1]
	stale.Seed++
	stale.Point.Seed++
	if _, err := q.Complete(stale); err == nil {
		t.Fatal("stale-seed record accepted")
	}
	unknown := recs[2]
	unknown.Key = "n=1,m=1,b=1,plant=uniform,d=0,f=0,proto=run,trial=0"
	if _, err := q.Complete(unknown); err == nil {
		t.Fatal("unknown-point record accepted")
	}

	if !q.Done() {
		t.Fatal("queue not done after all completions")
	}
	got := q.Records()
	want := append([]Record(nil), recs...)
	if !reflect.DeepEqual(got, want) {
		t.Fatal("queue records differ from the run's")
	}
}

// TestQueueFailAndRelease: Release re-queues a leased point immediately,
// Fail removes it from dispatch, and a later valid completion overrides
// the failure verdict.
func TestQueueFailAndRelease(t *testing.T) {
	pts := testGrid(t)[:2]
	recs, err := Run(pts, Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	q, err := NewQueue(pts, nil, false)
	if err != nil {
		t.Fatal(err)
	}
	ls, ok := q.Lease("w", 2, time.Minute)
	if !ok || len(ls.Points) != 2 {
		t.Fatal("lease failed")
	}
	if err := q.Release(pts[0].Key()); err != nil {
		t.Fatal(err)
	}
	if pending, _, _, _ := q.Counts(); pending != 1 {
		t.Fatalf("release left %d pending, want 1", pending)
	}
	if err := q.Fail(pts[1].Key()); err != nil {
		t.Fatal(err)
	}
	if q.Done() {
		t.Fatal("queue done with a pending point")
	}
	if _, err := q.Complete(recs[0]); err != nil {
		t.Fatal(err)
	}
	if !q.Done() {
		t.Fatal("queue not done: one completed, one failed")
	}
	if failed := q.Failed(); len(failed) != 1 || failed[0] != pts[1].Key() {
		t.Fatalf("failed list %v", failed)
	}
	// A late success for the failed point reinstates it.
	if fresh, err := q.Complete(recs[1]); err != nil || !fresh {
		t.Fatalf("late success rejected: fresh=%v err=%v", fresh, err)
	}
	if failed := q.Failed(); len(failed) != 0 {
		t.Fatalf("failure verdict survived a valid completion: %v", failed)
	}
	if len(q.Records()) != 2 {
		t.Fatal("records missing after reinstated completion")
	}
}

// TestQueueResumeFromPrior: a queue seeded with checkpoint records starts
// with them done and only hands out the rest.
func TestQueueResumeFromPrior(t *testing.T) {
	pts := testGrid(t)
	recs, err := Run(pts, Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	q, err := NewQueue(pts, recs[:3], false)
	if err != nil {
		t.Fatal(err)
	}
	ls, ok := q.Lease("w", len(pts), time.Minute)
	if !ok || len(ls.Points) != len(pts)-3 {
		t.Fatalf("resumed queue leased %d points, want %d", len(ls.Points), len(pts)-3)
	}
	// A prior record that fails validation poisons construction.
	bad := recs[0]
	bad.Seed++
	bad.Point.Seed++
	if _, err := NewQueue(pts, []Record{bad}, false); err == nil {
		t.Fatal("stale prior record accepted into a fresh queue")
	}
}
