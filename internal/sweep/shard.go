package sweep

import (
	"fmt"
	"hash/fnv"
	"strconv"
	"strings"
)

// Shard returns the sub-grid of points owned by shard i of k under the
// deterministic key-hash partition (FNV-1a 64 of the canonical key, mod k):
// k independent invocations of the same grid with shards 0/k … (k-1)/k
// cover every point exactly once, with no coordinator — the coordinator-
// free half of the distribution story. Points keep their full-grid Index,
// so shard outputs merged with MergeFiles are record-equal to a
// single-process sweep. Shard(points, 0, 1) is the identity.
func Shard(points []Point, i, k int) ([]Point, error) {
	if k < 1 {
		return nil, fmt.Errorf("sweep: shard count %d must be ≥ 1", k)
	}
	if i < 0 || i >= k {
		return nil, fmt.Errorf("sweep: shard index %d out of range [0,%d)", i, k)
	}
	if k == 1 {
		return points, nil
	}
	var out []Point
	for _, pt := range points {
		if shardOf(pt.Key(), k) == i {
			out = append(out, pt)
		}
	}
	return out, nil
}

func shardOf(key string, k int) int {
	h := fnv.New64a()
	h.Write([]byte(key))
	return int(h.Sum64() % uint64(k))
}

// ParseShard parses the "i/k" form of cmd/sweep's -shard flag. The empty
// string is the whole grid (0/1).
func ParseShard(s string) (i, k int, err error) {
	if s == "" {
		return 0, 1, nil
	}
	lhs, rhs, ok := strings.Cut(s, "/")
	if !ok {
		return 0, 0, fmt.Errorf("sweep: bad shard %q (want i/k)", s)
	}
	i, err1 := strconv.Atoi(lhs)
	k, err2 := strconv.Atoi(rhs)
	if err1 != nil || err2 != nil || k < 1 || i < 0 || i >= k {
		return 0, 0, fmt.Errorf("sweep: bad shard %q (want 0 ≤ i < k)", s)
	}
	return i, k, nil
}
