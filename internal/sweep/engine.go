package sweep

import (
	"fmt"
	"io"
	"sync"

	"collabscore"
	"collabscore/internal/baseline"
	"collabscore/internal/metrics"
	"collabscore/internal/par"
)

// Options configures a sweep run.
type Options struct {
	// Workers bounds the worker pool; ≤ 0 means up to GOMAXPROCS. Each
	// worker owns one collabscore.Pool, so truth matrices, probe memos and
	// bulletin boards are reused across the points that worker executes
	// instead of rebuilt per point.
	Workers int
	// Sink, when non-nil, receives one JSONL line per completed point, as
	// points complete (schedule order; records themselves are order-
	// independent). Writes are serialized by the engine.
	Sink io.Writer
	// Done holds keys of points to skip — the resume set (RunFile fills it
	// from the output file's intact records).
	Done map[string]struct{}
	// ComputeOpt computes each planted point's exact optimum error
	// (Record.OptError) before running it. O(n²·m/64) per point — leave it
	// off for large throughput sweeps.
	ComputeOpt bool
	// Progress, when non-nil, is called after each completed point with the
	// number of points completed so far this run, the number scheduled, and
	// the point's record. Calls are serialized.
	Progress func(completed, scheduled int, rec Record)
	// Stop, when non-nil, makes the engine stop claiming new points once the
	// channel is closed: in-flight points finish and their records flush to
	// the sink, then Run returns the completed subset with no error. Together
	// with the JSONL sink this is what makes an interrupted sweep always
	// resumable — the tail is flushed, never torn mid-batch.
	Stop <-chan struct{}
	// OnFailure, when non-nil, receives each point that persistently failed:
	// a panic in protocol code is recovered per point (it no longer takes
	// down the worker pool), the point is retried once on fresh allocations
	// (pool state that a panic unwound through is suspect), and only a second
	// panic reports here. Failed points produce no record and are excluded
	// from Run's results. When OnFailure is nil the sweep still completes
	// every other point — the failures are returned as one error at the end
	// instead of silently dropped. Calls are serialized.
	OnFailure func(pt Point, err error)
}

// PointError is the persistent per-point failure OnFailure receives: the
// point's key and the recovered panic value of the second (retried) attempt.
type PointError struct {
	Key string
	// Panic is the recovered panic value.
	Panic any
}

func (e *PointError) Error() string {
	return fmt.Sprintf("sweep: point %s panicked twice: %v", e.Key, e.Panic)
}

// stopRequested reports whether the options' stop channel is closed.
func stopRequested(stop <-chan struct{}) bool {
	if stop == nil {
		return false
	}
	select {
	case <-stop:
		return true
	default:
		return false
	}
}

// Run executes every point not in opt.Done across the worker pool and
// returns the fresh records in point order. Results are deterministic per
// point (see the package comment); only completion order varies with the
// schedule. Malformed points (unknown strategy/protocol names on points
// that did not come from Expand) and sink write failures abort the run;
// panics in protocol code are recovered per point, retried once, and
// surfaced through Options.OnFailure (or one aggregate error when it is
// nil) — never by crashing the pool. When Options.Stop closes mid-run the
// completed subset is returned with no error.
func Run(points []Point, opt Options) ([]Record, error) {
	pending := make([]int, 0, len(points))
	for i, pt := range points {
		if _, done := opt.Done[pt.Key()]; !done {
			pending = append(pending, i)
		}
	}
	if len(pending) == 0 {
		return nil, nil
	}

	var runner *par.Runner
	if opt.Workers > 0 {
		runner = par.Fixed(opt.Workers)
	} else {
		runner = par.Parallel()
	}
	pools := make([]*collabscore.Pool, runner.Workers(len(pending)))
	for i := range pools {
		pools[i] = collabscore.NewPool()
	}

	recs := make([]Record, len(pending))
	ran := make([]bool, len(pending))
	errs := make([]error, len(pending))
	var mu sync.Mutex
	var sinkErr error
	var failures []*PointError
	completed := 0
	runner.ForWorker(len(pending), func(wk, i int) {
		// A failed sink (disk full, closed file) makes every further
		// record unrecordable — stop burning CPU on points whose results
		// would be discarded and let the caller resume after fixing it.
		// A closed stop channel likewise stops new points from starting;
		// in-flight ones flush normally, keeping the output resumable.
		mu.Lock()
		abort := sinkErr != nil
		mu.Unlock()
		if abort || stopRequested(opt.Stop) {
			return
		}
		pt := points[pending[i]]
		rec, err := runPointRetry(pools[wk], pt, opt.ComputeOpt)
		if perr, ok := err.(*PointError); ok {
			mu.Lock()
			failures = append(failures, perr)
			if opt.OnFailure != nil {
				opt.OnFailure(pt, perr)
			}
			mu.Unlock()
			return
		}
		recs[i], ran[i], errs[i] = rec, err == nil, err
		if err != nil {
			return
		}
		mu.Lock()
		defer mu.Unlock()
		if opt.Sink != nil && sinkErr == nil {
			sinkErr = WriteRecord(opt.Sink, rec)
		}
		completed++
		if opt.Progress != nil {
			opt.Progress(completed, len(pending), rec)
		}
	})
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	out := recs[:0]
	for i, rec := range recs {
		if ran[i] {
			out = append(out, rec)
		}
	}
	if len(failures) > 0 && opt.OnFailure == nil && sinkErr == nil {
		// No failure hook: every other point has completed and flushed, so
		// surface the failures without discarding that work — the caller
		// still has a resumable file and the full error list.
		errFail := fmt.Errorf("sweep: %d point(s) failed persistently", len(failures))
		for _, f := range failures {
			errFail = fmt.Errorf("%w; %v", errFail, f)
		}
		return out, errFail
	}
	return out, sinkErr
}

// runPointRetry runs one point with per-point panic containment: a panic in
// protocol code is recovered and the point retried once on fresh
// allocations (nil pool — reused arenas a panic unwound through may hold
// torn state). A second panic returns a *PointError.
func runPointRetry(pl *collabscore.Pool, pt Point, computeOpt bool) (Record, error) {
	rec, err := runPointRecover(pl, pt, computeOpt)
	if _, panicked := err.(*PointError); panicked {
		rec, err = runPointRecover(nil, pt, computeOpt)
	}
	return rec, err
}

func runPointRecover(pl *collabscore.Pool, pt Point, computeOpt bool) (rec Record, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = &PointError{Key: pt.Key(), Panic: r}
		}
	}()
	return runPoint(pl, pt, computeOpt)
}

// runPoint executes one grid point on the worker's pool. Rating points
// have no binary Simulation (and no planted-optimum oracle); they run
// through the pooled Scenario path directly.
func runPoint(pl *collabscore.Pool, pt Point, computeOpt bool) (Record, error) {
	sc, err := pt.Scenario()
	if err != nil {
		return Record{}, err
	}
	var rep *collabscore.Report
	optErr := -1
	if sc.Protocol == collabscore.ProtoRatings {
		if pl != nil {
			rep = pl.Run(sc)
		} else {
			rep = sc.Run()
		}
	} else {
		sim := sc.Build(pl)
		// The planted-optimum oracle scans the materialized truth matrix;
		// lazy instances (Truth == nil) skip it — by design, the whole point
		// of the lazy representation is never holding that matrix.
		if computeOpt && sim.Instance().PlantedDiameter >= 0 && sim.Instance().Truth != nil {
			optErr = metrics.MaxInt(baseline.OptErrors(sim.Instance()))
		}
		rep = sc.Execute(sim)
	}
	return Record{
		Point:         pt,
		Key:           pt.Key(),
		MaxError:      rep.MaxError,
		MeanError:     rep.MeanError,
		MaxProbes:     rep.MaxProbes,
		MeanProbes:    rep.MeanProbes,
		TotalProbes:   rep.TotalProbes,
		OptError:      optErr,
		HonestLeaders: rep.HonestLeaders,
		Repetitions:   rep.Repetitions,
		CommWrites:    rep.CommWrites,
		CommReads:     rep.CommReads,
		Rounds:        rep.MaxProbes,
	}, nil
}
