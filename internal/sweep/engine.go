package sweep

import (
	"io"
	"sync"

	"collabscore"
	"collabscore/internal/baseline"
	"collabscore/internal/metrics"
	"collabscore/internal/par"
)

// Options configures a sweep run.
type Options struct {
	// Workers bounds the worker pool; ≤ 0 means up to GOMAXPROCS. Each
	// worker owns one collabscore.Pool, so truth matrices, probe memos and
	// bulletin boards are reused across the points that worker executes
	// instead of rebuilt per point.
	Workers int
	// Sink, when non-nil, receives one JSONL line per completed point, as
	// points complete (schedule order; records themselves are order-
	// independent). Writes are serialized by the engine.
	Sink io.Writer
	// Done holds keys of points to skip — the resume set (RunFile fills it
	// from the output file's intact records).
	Done map[string]struct{}
	// ComputeOpt computes each planted point's exact optimum error
	// (Record.OptError) before running it. O(n²·m/64) per point — leave it
	// off for large throughput sweeps.
	ComputeOpt bool
	// Progress, when non-nil, is called after each completed point with the
	// number of points completed so far this run, the number scheduled, and
	// the point's record. Calls are serialized.
	Progress func(completed, scheduled int, rec Record)
}

// Run executes every point not in opt.Done across the worker pool and
// returns the fresh records in point order. Results are deterministic per
// point (see the package comment); only completion order varies with the
// schedule. Panics from protocol code propagate; the only error paths are
// malformed points (unknown strategy/protocol names on points that did not
// come from Expand) and sink write failures.
func Run(points []Point, opt Options) ([]Record, error) {
	pending := make([]int, 0, len(points))
	for i, pt := range points {
		if _, done := opt.Done[pt.Key()]; !done {
			pending = append(pending, i)
		}
	}
	if len(pending) == 0 {
		return nil, nil
	}

	var runner *par.Runner
	if opt.Workers > 0 {
		runner = par.Fixed(opt.Workers)
	} else {
		runner = par.Parallel()
	}
	pools := make([]*collabscore.Pool, runner.Workers(len(pending)))
	for i := range pools {
		pools[i] = collabscore.NewPool()
	}

	recs := make([]Record, len(pending))
	errs := make([]error, len(pending))
	var mu sync.Mutex
	var sinkErr error
	completed := 0
	runner.ForWorker(len(pending), func(wk, i int) {
		// A failed sink (disk full, closed file) makes every further
		// record unrecordable — stop burning CPU on points whose results
		// would be discarded and let the caller resume after fixing it.
		mu.Lock()
		abort := sinkErr != nil
		mu.Unlock()
		if abort {
			return
		}
		rec, err := runPoint(pools[wk], points[pending[i]], opt.ComputeOpt)
		recs[i], errs[i] = rec, err
		if err != nil {
			return
		}
		mu.Lock()
		defer mu.Unlock()
		if opt.Sink != nil && sinkErr == nil {
			sinkErr = writeRecord(opt.Sink, rec)
		}
		completed++
		if opt.Progress != nil {
			opt.Progress(completed, len(pending), rec)
		}
	})
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return recs, sinkErr
}

// runPoint executes one grid point on the worker's pool. Rating points
// have no binary Simulation (and no planted-optimum oracle); they run
// through the pooled Scenario path directly.
func runPoint(pl *collabscore.Pool, pt Point, computeOpt bool) (Record, error) {
	sc, err := pt.Scenario()
	if err != nil {
		return Record{}, err
	}
	var rep *collabscore.Report
	optErr := -1
	if sc.Protocol == collabscore.ProtoRatings {
		if pl != nil {
			rep = pl.Run(sc)
		} else {
			rep = sc.Run()
		}
	} else {
		sim := sc.Build(pl)
		// The planted-optimum oracle scans the materialized truth matrix;
		// lazy instances (Truth == nil) skip it — by design, the whole point
		// of the lazy representation is never holding that matrix.
		if computeOpt && sim.Instance().PlantedDiameter >= 0 && sim.Instance().Truth != nil {
			optErr = metrics.MaxInt(baseline.OptErrors(sim.Instance()))
		}
		rep = sc.Execute(sim)
	}
	return Record{
		Point:         pt,
		Key:           pt.Key(),
		MaxError:      rep.MaxError,
		MeanError:     rep.MeanError,
		MaxProbes:     rep.MaxProbes,
		MeanProbes:    rep.MeanProbes,
		TotalProbes:   rep.TotalProbes,
		OptError:      optErr,
		HonestLeaders: rep.HonestLeaders,
		Repetitions:   rep.Repetitions,
		CommWrites:    rep.CommWrites,
		CommReads:     rep.CommReads,
		Rounds:        rep.MaxProbes,
	}, nil
}
