package sweep

import (
	"math"
	"reflect"
	"testing"
)

func TestExpandDefaults(t *testing.T) {
	pts, err := Expand(Spec{Seed: 1, Players: []int{64}})
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 1 {
		t.Fatalf("default spec expanded to %d points, want 1", len(pts))
	}
	pt := pts[0]
	if pt.Objects != 64 || pt.Budget != 8 || pt.Plant.Kind != "uniform" ||
		pt.Dishonest != 0 || pt.Strategy != "" || pt.Protocol != "byzantine" || pt.Trial != 0 {
		t.Fatalf("unexpected default point: %+v", pt)
	}
	if _, err := pt.Scenario(); err != nil {
		t.Fatalf("default point scenario: %v", err)
	}
}

func TestExpandGridShape(t *testing.T) {
	pts, err := Expand(Spec{
		Seed:         7,
		Trials:       2,
		Players:      []int{64, 128},
		Budgets:      []int{4, 8},
		ClusterSizes: []int{16},
		Diameters:    []int{4, 8},
		Dishonest:    []int{0, 2},
		Strategies:   []string{"colluders", "random-liar"},
		Protocols:    []string{"run", "byzantine"},
		FixDiameter:  true,
	})
	if err != nil {
		t.Fatal(err)
	}
	// players(2) × budgets(2) × diameters(2) × [f=0: 1 strategy-slot,
	// f=2: 2 strategies] × protocols(2) × trials(2).
	want := 2 * 2 * 2 * (1 + 2) * 2 * 2
	if len(pts) != want {
		t.Fatalf("expanded to %d points, want %d", len(pts), want)
	}
	keys := make(map[string]struct{}, len(pts))
	for i, pt := range pts {
		if pt.Index != i {
			t.Fatalf("point %d has index %d", i, pt.Index)
		}
		k := pt.Key()
		if _, dup := keys[k]; dup {
			t.Fatalf("duplicate key %s", k)
		}
		keys[k] = struct{}{}
		if pt.Dishonest == 0 && pt.Strategy != "" {
			t.Fatalf("honest point %s carries strategy %q", k, pt.Strategy)
		}
		if !pt.FixDiameter || pt.Diameter == 0 {
			t.Fatalf("point %s lost the diameter axis", k)
		}
	}
}

// TestExpandSeedsIgnoreComparisonAxes: points differing only in dishonest
// count, strategy, or protocol share a seed (paired comparisons over the
// identical world); points differing in any instance-defining coordinate
// get independent seeds.
func TestExpandSeedsIgnoreComparisonAxes(t *testing.T) {
	pts, err := Expand(Spec{
		Seed:         3,
		Players:      []int{64},
		ClusterSizes: []int{16},
		Diameters:    []int{4},
		Dishonest:    []int{0, 4},
		Strategies:   []string{"colluders", "flip-all"},
		Protocols:    []string{"run", "byzantine"},
	})
	if err != nil {
		t.Fatal(err)
	}
	seed := pts[0].Seed
	for _, pt := range pts {
		if pt.Seed != seed {
			t.Fatalf("point %s has seed %d, want shared %d", pt.Key(), pt.Seed, seed)
		}
	}
	pts2, err := Expand(Spec{Seed: 3, Players: []int{64}, ClusterSizes: []int{16}, Diameters: []int{8}})
	if err != nil {
		t.Fatal(err)
	}
	if pts2[0].Seed == seed {
		t.Fatal("different diameter should derive a different seed")
	}
}

// TestExpandSeedsOrderInvariant: reordering axis value lists permutes the
// points but changes no (key → seed) association.
func TestExpandSeedsOrderInvariant(t *testing.T) {
	a, err := Expand(Spec{
		Seed: 5, Trials: 2,
		Players: []int{64, 128}, ClusterSizes: []int{8, 16}, Diameters: []int{2, 4},
		Dishonest: []int{0, 3}, Protocols: []string{"run", "byzantine"},
	})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Expand(Spec{
		Seed: 5, Trials: 2,
		Players: []int{128, 64}, ClusterSizes: []int{16, 8}, Diameters: []int{4, 2},
		Dishonest: []int{3, 0}, Protocols: []string{"byzantine", "run"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) {
		t.Fatalf("reordered axes changed point count: %d vs %d", len(a), len(b))
	}
	seeds := make(map[string]uint64, len(a))
	for _, pt := range a {
		seeds[pt.Key()] = pt.Seed
	}
	for _, pt := range b {
		want, ok := seeds[pt.Key()]
		if !ok {
			t.Fatalf("reordered axes produced new point %s", pt.Key())
		}
		if pt.Seed != want {
			t.Fatalf("point %s seed depends on axis order: %d vs %d", pt.Key(), pt.Seed, want)
		}
	}
}

func TestExpandSkipsInvalidCombos(t *testing.T) {
	pts, err := Expand(Spec{
		Seed:         1,
		Players:      []int{8, 64},
		ClusterSizes: []int{16},
		Dishonest:    []int{0, 32},
		Protocols:    []string{"run"},
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, pt := range pts {
		if pt.Plant.ClusterSize > pt.Players {
			t.Fatalf("kept unplantable point %s", pt.Key())
		}
		if pt.Dishonest > pt.Players {
			t.Fatalf("kept over-corrupted point %s", pt.Key())
		}
	}
	// n=8 skips both cluster-size 16 and f=32; n=64 keeps both.
	if len(pts) != 2 {
		t.Fatalf("expanded to %d points, want 2", len(pts))
	}
}

func TestExpandDeduplicatesResolvedAxes(t *testing.T) {
	pts, err := Expand(Spec{
		Seed:    1,
		Players: []int{64, 64},
		Objects: []int{0, 64},
		Budgets: []int{0, 8},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 1 {
		t.Fatalf("resolved-duplicate axes expanded to %d points, want 1", len(pts))
	}
}

func TestExpandErrors(t *testing.T) {
	bad := []Spec{
		{Seed: 1},                    // no players
		{Seed: 1, Players: []int{0}}, // players < 1
		{Seed: 1, Players: []int{8}, ClusterSizes: []int{0}},                           // cluster size < 1
		{Seed: 1, Players: []int{8}, Strategies: []string{"nope"}},                     // unknown strategy
		{Seed: 1, Players: []int{8}, Protocols: []string{"nope"}},                      // unknown protocol
		{Seed: 1, Players: []int{8}, Dishonest: []int{-1}},                             // negative corruption
		{Seed: 1, Players: []int{8}, Diameters: []int{-2}},                             // negative diameter
		{Seed: 1, Players: []int{8}, ZipfClusters: []int{2}, ZipfAlphas: []float64{0}}, // bad alpha
	}
	for i, sp := range bad {
		if _, err := Expand(sp); err == nil {
			t.Fatalf("spec %d: expected error", i)
		}
	}
}

func TestMerge(t *testing.T) {
	a, _ := Expand(Spec{Seed: 1, Players: []int{64}, Protocols: []string{"run"}})
	b, _ := Expand(Spec{Seed: 1, Players: []int{128}, Protocols: []string{"run"}})
	merged, err := Merge(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if len(merged) != 2 || merged[0].Index != 0 || merged[1].Index != 1 {
		t.Fatalf("bad merge: %+v", merged)
	}
	if _, err := Merge(a, a); err == nil {
		t.Fatal("Merge accepted duplicate grids")
	}
}

func TestExpandDeterministic(t *testing.T) {
	sp := Spec{
		Seed: 9, Trials: 2,
		Players: []int{64, 96}, ClusterSizes: []int{8}, ZipfClusters: []int{3},
		Diameters: []int{2, 4}, Dishonest: []int{0, 2},
		Protocols: []string{"run", "byzantine"}, FixDiameter: true,
	}
	a, err := Expand(sp)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Expand(sp)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("Expand is not deterministic")
	}
}

// TestExpandExtensionAxes: the scale axis applies to ratings points only,
// the capacity-tier axis to budgets points only, and substrate-mismatched
// strategy combinations are skipped deterministically.
func TestExpandExtensionAxes(t *testing.T) {
	pts, err := Expand(Spec{
		Seed:          13,
		Players:       []int{64},
		ClusterSizes:  []int{16},
		Diameters:     []int{8},
		FixDiameter:   true,
		Dishonest:     []int{0, 2},
		Strategies:    []string{"exaggerators", "colluders", "random-liar"},
		Protocols:     []string{"byzantine", "ratings", "budgets"},
		Scales:        []int{0, 2, 10}, // 0 resolves to the default 5
		CapacityTiers: []CapTier{{}, {Small: 8, Big: 32, BigFrac: 0.5}},
	})
	if err != nil {
		t.Fatal(err)
	}
	counts := map[string]int{}
	for _, pt := range pts {
		counts[pt.Protocol]++
		switch pt.Protocol {
		case "ratings":
			if pt.Scale == 0 {
				t.Fatalf("ratings point %s has no scale", pt.Key())
			}
			if !pt.Cap.IsZero() {
				t.Fatalf("ratings point %s carries a capacity tier", pt.Key())
			}
			if pt.Strategy == "colluders" {
				t.Fatalf("binary-only strategy survived on ratings point %s", pt.Key())
			}
		case "budgets":
			if pt.Scale != 0 {
				t.Fatalf("budgets point %s carries a scale", pt.Key())
			}
			if pt.Strategy == "exaggerators" {
				t.Fatalf("rating-only strategy survived on budgets point %s", pt.Key())
			}
		default:
			if pt.Scale != 0 || !pt.Cap.IsZero() {
				t.Fatalf("binary point %s carries extension axes", pt.Key())
			}
		}
		if _, err := pt.Scenario(); err != nil {
			t.Fatalf("point %s scenario: %v", pt.Key(), err)
		}
	}
	// byzantine: f=0 (1) + f=2 × {colluders, random-liar} (2) = 3.
	if counts["byzantine"] != 3 {
		t.Fatalf("byzantine points: %d, want 3", counts["byzantine"])
	}
	// ratings: 3 scales × (f=0 once + f=2 × {exaggerators, random-liar}) = 9.
	if counts["ratings"] != 9 {
		t.Fatalf("ratings points: %d, want 9", counts["ratings"])
	}
	// budgets: 2 tiers × (f=0 once + f=2 × {colluders, random-liar}) = 6.
	if counts["budgets"] != 6 {
		t.Fatalf("budgets points: %d, want 6", counts["budgets"])
	}
}

// TestExpandRatingsNeedClusterPlanting: rating points are skipped for
// uniform and Zipf plantings (the rating generator plants clusters).
func TestExpandRatingsNeedClusterPlanting(t *testing.T) {
	pts, err := Expand(Spec{
		Seed:         1,
		Players:      []int{64},
		ZipfClusters: []int{4},
		Protocols:    []string{"ratings", "run"},
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, pt := range pts {
		if pt.Protocol == "ratings" {
			t.Fatalf("ratings point %s kept a non-cluster planting", pt.Key())
		}
	}
	if len(pts) == 0 {
		t.Fatal("run points should survive")
	}
}

// TestExpandExtensionSeeds: the rating scale is instance-defining (distinct
// scales get independent seeds) while the capacity tier is a comparison
// axis (all tiers share their coordinate's seed with the binary
// protocols) — and binary points derive exactly the seeds they did before
// the extension axes existed.
func TestExpandExtensionSeeds(t *testing.T) {
	sp := Spec{
		Seed:          3,
		Players:       []int{64},
		ClusterSizes:  []int{16},
		Diameters:     []int{4},
		Protocols:     []string{"byzantine", "budgets", "ratings"},
		Scales:        []int{2, 5},
		CapacityTiers: []CapTier{{Small: 4, Big: 16, BigFrac: 0.5}, {Small: 8, Big: 32, BigFrac: 0.25}},
	}
	pts, err := Expand(sp)
	if err != nil {
		t.Fatal(err)
	}
	seedsByProto := map[string]map[uint64]bool{}
	scaleSeeds := map[int]uint64{}
	for _, pt := range pts {
		if seedsByProto[pt.Protocol] == nil {
			seedsByProto[pt.Protocol] = map[uint64]bool{}
		}
		seedsByProto[pt.Protocol][pt.Seed] = true
		if pt.Protocol == "ratings" {
			scaleSeeds[pt.Scale] = pt.Seed
		}
	}
	// Binary and budgets points (any tier) share one seed: paired columns.
	if len(seedsByProto["byzantine"]) != 1 || len(seedsByProto["budgets"]) != 1 {
		t.Fatalf("comparison protocols split seeds: %+v", seedsByProto)
	}
	var byz, bud uint64
	for s := range seedsByProto["byzantine"] {
		byz = s
	}
	for s := range seedsByProto["budgets"] {
		bud = s
	}
	if byz != bud {
		t.Fatal("budgets points do not share the binary world seed")
	}
	// Distinct scales are distinct instances.
	if len(scaleSeeds) != 2 || scaleSeeds[2] == scaleSeeds[5] {
		t.Fatalf("rating scales share a seed: %+v", scaleSeeds)
	}
	if scaleSeeds[2] == byz {
		t.Fatal("rating point reuses the binary seed")
	}
	// Pre-extension binary seeds are unchanged: the same grid without the
	// extension protocols derives the identical seed for the same key.
	ref, err := Expand(Spec{
		Seed: 3, Players: []int{64}, ClusterSizes: []int{16}, Diameters: []int{4},
		Protocols: []string{"byzantine"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if ref[0].Seed != byz {
		t.Fatal("adding extension axes changed a binary point's seed")
	}
}

// TestParseCapTier pins the strict tier parsing: round trips, defaults,
// and rejection of garbage, extra fields, and non-finite fractions (a NaN
// fraction would silently degenerate TwoTier to all-small capacities).
func TestParseCapTier(t *testing.T) {
	for _, s := range []string{"", "default"} {
		ct, err := ParseCapTier(s)
		if err != nil || !ct.IsZero() {
			t.Fatalf("ParseCapTier(%q) = %+v, %v", s, ct, err)
		}
	}
	ct, err := ParseCapTier("16:256:0.25")
	if err != nil || ct != (CapTier{Small: 16, Big: 256, BigFrac: 0.25}) {
		t.Fatalf("ParseCapTier round trip: %+v, %v", ct, err)
	}
	if got, err := ParseCapTier(ct.String()); err != nil || got != ct {
		t.Fatalf("String round trip: %+v, %v", got, err)
	}
	for _, bad := range []string{
		"16:256", "16:256:0.25:9", "16:256:0.25x", "x:256:0.25",
		"16:256:NaN", "16:256:+Inf", "16:256:1.5", "16:256:-0.1", "-1:256:0.5",
	} {
		if _, err := ParseCapTier(bad); err == nil {
			t.Fatalf("ParseCapTier accepted %q", bad)
		}
	}
	// Expand rejects NaN fractions arriving through JSON-built specs too.
	if _, err := Expand(Spec{
		Seed: 1, Players: []int{8}, Protocols: []string{"budgets"},
		CapacityTiers: []CapTier{{Small: 1, Big: 2, BigFrac: math.NaN()}},
	}); err == nil {
		t.Fatal("Expand accepted a NaN capacity fraction")
	}
}

// TestExpandNeighborIndexAxis: the neighbor-index axis applies to the
// clustering protocols only, canonicalizes the exact default to "" (keys
// and seeds identical to a spec without the axis), and pairs LSH points
// with their exact twins on the same seed.
func TestExpandNeighborIndexAxis(t *testing.T) {
	sp := Spec{
		Seed:            9,
		Players:         []int{64},
		ClusterSizes:    []int{16},
		Diameters:       []int{4},
		Protocols:       []string{"run", "byzantine", "budgets", "baseline", "ratings"},
		NeighborIndexes: []string{"exact", "lsh", "lsh:8:6"},
	}
	pts, err := Expand(sp)
	if err != nil {
		t.Fatal(err)
	}
	byProto := map[string][]Point{}
	for _, pt := range pts {
		byProto[pt.Protocol] = append(byProto[pt.Protocol], pt)
		if _, err := pt.Scenario(); err != nil {
			t.Fatalf("point %s scenario: %v", pt.Key(), err)
		}
	}
	for _, proto := range []string{"run", "byzantine", "budgets"} {
		if got := len(byProto[proto]); got != 3 {
			t.Fatalf("%s points: %d, want 3 (exact, lsh, lsh:8:6)", proto, got)
		}
		seeds := map[uint64]bool{}
		nidx := map[string]bool{}
		for _, pt := range byProto[proto] {
			seeds[pt.Seed] = true
			nidx[pt.NeighborIndex] = true
			sc, err := pt.Scenario()
			if err != nil {
				t.Fatal(err)
			}
			if sc.Config.NeighborIndex != pt.NeighborIndex {
				t.Fatalf("point %s: scenario index %q", pt.Key(), sc.Config.NeighborIndex)
			}
		}
		// Paired comparisons: one seed across the axis.
		if len(seeds) != 1 {
			t.Fatalf("%s: index axis split seeds %v", proto, seeds)
		}
		if !nidx[""] || !nidx["lsh"] || !nidx["lsh:8:6"] {
			t.Fatalf("%s: canonical index values %v", proto, nidx)
		}
	}
	// Non-clustering protocols collapse the axis entirely.
	for _, proto := range []string{"baseline", "ratings"} {
		if got := len(byProto[proto]); got != 1 {
			t.Fatalf("%s points: %d, want 1 (axis must collapse)", proto, got)
		}
		if byProto[proto][0].NeighborIndex != "" {
			t.Fatalf("%s point carries a neighbor index", proto)
		}
	}
	// Exact points keep the exact historical key and seed of a spec with no
	// axis at all.
	ref, err := Expand(Spec{
		Seed: 9, Players: []int{64}, ClusterSizes: []int{16}, Diameters: []int{4},
		Protocols: []string{"run", "byzantine", "budgets", "baseline", "ratings"},
	})
	if err != nil {
		t.Fatal(err)
	}
	refByKey := map[string]Point{}
	for _, pt := range ref {
		refByKey[pt.Key()] = pt
	}
	for _, pt := range pts {
		if pt.NeighborIndex != "" {
			if _, clash := refByKey[pt.Key()]; clash {
				t.Fatalf("LSH point key %s collides with a default point", pt.Key())
			}
			continue
		}
		rp, ok := refByKey[pt.Key()]
		if !ok {
			t.Fatalf("exact point key %s missing from the no-axis grid", pt.Key())
		}
		if rp.Seed != pt.Seed {
			t.Fatalf("exact point %s seed changed with the axis present", pt.Key())
		}
	}

	// Invalid axis entries are rejected.
	for _, bad := range []string{"lsh:0:3", "banding", "lsh:2"} {
		sp := sp
		sp.NeighborIndexes = []string{bad}
		if _, err := Expand(sp); err == nil {
			t.Fatalf("Expand accepted neighbor index %q", bad)
		}
	}
	// Invalid index on a JSONL-borne point is caught by Scenario.
	pt := pts[0]
	pt.NeighborIndex = "garbage"
	if _, err := pt.Scenario(); err == nil {
		t.Fatal("Scenario accepted a garbage neighbor index")
	}
}

// TestExpandNeighborIndexRepForms: the graph-representation suffix rides
// the same axis. Only the full default "exact+auto" collapses to the
// historical "" key; a forced representation like "exact+sparse" is a
// distinct point (canonicalizing on IsExact alone would wrongly erase it).
func TestExpandNeighborIndexRepForms(t *testing.T) {
	pts, err := Expand(Spec{
		Seed:            3,
		Players:         []int{64},
		ClusterSizes:    []int{16},
		Diameters:       []int{4},
		Protocols:       []string{"run"},
		NeighborIndexes: []string{"exact+auto", "exact+sparse", "lsh+sparse", "lsh+auto"},
	})
	if err != nil {
		t.Fatal(err)
	}
	got := map[string]bool{}
	for _, pt := range pts {
		got[pt.NeighborIndex] = true
		if _, err := pt.Scenario(); err != nil {
			t.Fatalf("point %s scenario: %v", pt.Key(), err)
		}
	}
	want := map[string]bool{"": true, "exact+sparse": true, "lsh+sparse": true, "lsh": true}
	if len(pts) != len(want) {
		t.Fatalf("expanded %d points %v, want %d", len(pts), got, len(want))
	}
	for k := range want {
		if !got[k] {
			t.Fatalf("canonical axis values %v missing %q", got, k)
		}
	}
	if _, err := Expand(Spec{
		Seed: 3, Players: []int{64}, ClusterSizes: []int{16}, Diameters: []int{4},
		Protocols: []string{"run"}, NeighborIndexes: []string{"lsh+csr"},
	}); err == nil {
		t.Fatal("Expand accepted an unknown representation suffix")
	}
}

// TestExpandTruthSourceAxis: the truth-representation axis applies to every
// protocol, canonicalizes the dense default to "" (keys and seeds identical
// to a spec without the axis), and pairs lazy points with their dense twins
// on the same seed — the representation is never instance-defining.
func TestExpandTruthSourceAxis(t *testing.T) {
	sp := Spec{
		Seed:         13,
		Players:      []int{64},
		ClusterSizes: []int{16},
		Diameters:    []int{4},
		Protocols:    []string{"run", "byzantine", "budgets", "baseline", "ratings"},
		TruthSources: []string{"dense", "lazy", "lazy:16"},
	}
	pts, err := Expand(sp)
	if err != nil {
		t.Fatal(err)
	}
	byProto := map[string][]Point{}
	for _, pt := range pts {
		byProto[pt.Protocol] = append(byProto[pt.Protocol], pt)
		sc, err := pt.Scenario()
		if err != nil {
			t.Fatalf("point %s scenario: %v", pt.Key(), err)
		}
		if sc.Config.TruthSource != pt.TruthSource {
			t.Fatalf("point %s: scenario truth source %q", pt.Key(), sc.Config.TruthSource)
		}
	}
	for _, proto := range []string{"run", "byzantine", "budgets", "baseline", "ratings"} {
		if got := len(byProto[proto]); got != 3 {
			t.Fatalf("%s points: %d, want 3 (dense, lazy, lazy:16)", proto, got)
		}
		seeds := map[uint64]bool{}
		srcs := map[string]bool{}
		for _, pt := range byProto[proto] {
			seeds[pt.Seed] = true
			srcs[pt.TruthSource] = true
		}
		// Paired comparisons: one seed across the axis.
		if len(seeds) != 1 {
			t.Fatalf("%s: truth axis split seeds %v", proto, seeds)
		}
		if !srcs[""] || !srcs["lazy"] || !srcs["lazy:16"] {
			t.Fatalf("%s: canonical truth values %v", proto, srcs)
		}
	}
	// Dense points keep the exact historical key and seed of a spec with no
	// axis at all.
	noAxis := sp
	noAxis.TruthSources = nil
	ref, err := Expand(noAxis)
	if err != nil {
		t.Fatal(err)
	}
	refByKey := map[string]Point{}
	for _, pt := range ref {
		refByKey[pt.Key()] = pt
	}
	for _, pt := range pts {
		if pt.TruthSource != "" {
			if _, clash := refByKey[pt.Key()]; clash {
				t.Fatalf("lazy point key %s collides with a default point", pt.Key())
			}
			continue
		}
		rp, ok := refByKey[pt.Key()]
		if !ok {
			t.Fatalf("dense point key %s missing from the no-axis grid", pt.Key())
		}
		if rp.Seed != pt.Seed {
			t.Fatalf("dense point %s seed changed with the axis present", pt.Key())
		}
	}
	// "dense" and "" collapse to one canonical value, not two grid slices.
	collapsed := sp
	collapsed.TruthSources = []string{"", "dense", "lazy", "lazy"}
	cpts, err := Expand(collapsed)
	if err != nil {
		t.Fatal(err)
	}
	if want := len(ref) * 2; len(cpts) != want {
		t.Fatalf("duplicate-laden axis expanded to %d points, want %d", len(cpts), want)
	}

	// Invalid axis entries are rejected.
	for _, bad := range []string{"lazy:0", "sparse", "lazy:", "lazy:-1", "LAZY"} {
		sp := sp
		sp.TruthSources = []string{bad}
		if _, err := Expand(sp); err == nil {
			t.Fatalf("Expand accepted truth source %q", bad)
		}
	}
	// Invalid source on a JSONL-borne point is caught by Scenario.
	pt := pts[0]
	pt.TruthSource = "garbage"
	if _, err := pt.Scenario(); err == nil {
		t.Fatal("Scenario accepted a garbage truth source")
	}
}
