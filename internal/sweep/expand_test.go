package sweep

import (
	"reflect"
	"testing"
)

func TestExpandDefaults(t *testing.T) {
	pts, err := Expand(Spec{Seed: 1, Players: []int{64}})
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 1 {
		t.Fatalf("default spec expanded to %d points, want 1", len(pts))
	}
	pt := pts[0]
	if pt.Objects != 64 || pt.Budget != 8 || pt.Plant.Kind != "uniform" ||
		pt.Dishonest != 0 || pt.Strategy != "" || pt.Protocol != "byzantine" || pt.Trial != 0 {
		t.Fatalf("unexpected default point: %+v", pt)
	}
	if _, err := pt.Scenario(); err != nil {
		t.Fatalf("default point scenario: %v", err)
	}
}

func TestExpandGridShape(t *testing.T) {
	pts, err := Expand(Spec{
		Seed:         7,
		Trials:       2,
		Players:      []int{64, 128},
		Budgets:      []int{4, 8},
		ClusterSizes: []int{16},
		Diameters:    []int{4, 8},
		Dishonest:    []int{0, 2},
		Strategies:   []string{"colluders", "random-liar"},
		Protocols:    []string{"run", "byzantine"},
		FixDiameter:  true,
	})
	if err != nil {
		t.Fatal(err)
	}
	// players(2) × budgets(2) × diameters(2) × [f=0: 1 strategy-slot,
	// f=2: 2 strategies] × protocols(2) × trials(2).
	want := 2 * 2 * 2 * (1 + 2) * 2 * 2
	if len(pts) != want {
		t.Fatalf("expanded to %d points, want %d", len(pts), want)
	}
	keys := make(map[string]struct{}, len(pts))
	for i, pt := range pts {
		if pt.Index != i {
			t.Fatalf("point %d has index %d", i, pt.Index)
		}
		k := pt.Key()
		if _, dup := keys[k]; dup {
			t.Fatalf("duplicate key %s", k)
		}
		keys[k] = struct{}{}
		if pt.Dishonest == 0 && pt.Strategy != "" {
			t.Fatalf("honest point %s carries strategy %q", k, pt.Strategy)
		}
		if !pt.FixDiameter || pt.Diameter == 0 {
			t.Fatalf("point %s lost the diameter axis", k)
		}
	}
}

// TestExpandSeedsIgnoreComparisonAxes: points differing only in dishonest
// count, strategy, or protocol share a seed (paired comparisons over the
// identical world); points differing in any instance-defining coordinate
// get independent seeds.
func TestExpandSeedsIgnoreComparisonAxes(t *testing.T) {
	pts, err := Expand(Spec{
		Seed:         3,
		Players:      []int{64},
		ClusterSizes: []int{16},
		Diameters:    []int{4},
		Dishonest:    []int{0, 4},
		Strategies:   []string{"colluders", "flip-all"},
		Protocols:    []string{"run", "byzantine"},
	})
	if err != nil {
		t.Fatal(err)
	}
	seed := pts[0].Seed
	for _, pt := range pts {
		if pt.Seed != seed {
			t.Fatalf("point %s has seed %d, want shared %d", pt.Key(), pt.Seed, seed)
		}
	}
	pts2, err := Expand(Spec{Seed: 3, Players: []int{64}, ClusterSizes: []int{16}, Diameters: []int{8}})
	if err != nil {
		t.Fatal(err)
	}
	if pts2[0].Seed == seed {
		t.Fatal("different diameter should derive a different seed")
	}
}

// TestExpandSeedsOrderInvariant: reordering axis value lists permutes the
// points but changes no (key → seed) association.
func TestExpandSeedsOrderInvariant(t *testing.T) {
	a, err := Expand(Spec{
		Seed: 5, Trials: 2,
		Players: []int{64, 128}, ClusterSizes: []int{8, 16}, Diameters: []int{2, 4},
		Dishonest: []int{0, 3}, Protocols: []string{"run", "byzantine"},
	})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Expand(Spec{
		Seed: 5, Trials: 2,
		Players: []int{128, 64}, ClusterSizes: []int{16, 8}, Diameters: []int{4, 2},
		Dishonest: []int{3, 0}, Protocols: []string{"byzantine", "run"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) {
		t.Fatalf("reordered axes changed point count: %d vs %d", len(a), len(b))
	}
	seeds := make(map[string]uint64, len(a))
	for _, pt := range a {
		seeds[pt.Key()] = pt.Seed
	}
	for _, pt := range b {
		want, ok := seeds[pt.Key()]
		if !ok {
			t.Fatalf("reordered axes produced new point %s", pt.Key())
		}
		if pt.Seed != want {
			t.Fatalf("point %s seed depends on axis order: %d vs %d", pt.Key(), pt.Seed, want)
		}
	}
}

func TestExpandSkipsInvalidCombos(t *testing.T) {
	pts, err := Expand(Spec{
		Seed:         1,
		Players:      []int{8, 64},
		ClusterSizes: []int{16},
		Dishonest:    []int{0, 32},
		Protocols:    []string{"run"},
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, pt := range pts {
		if pt.Plant.ClusterSize > pt.Players {
			t.Fatalf("kept unplantable point %s", pt.Key())
		}
		if pt.Dishonest > pt.Players {
			t.Fatalf("kept over-corrupted point %s", pt.Key())
		}
	}
	// n=8 skips both cluster-size 16 and f=32; n=64 keeps both.
	if len(pts) != 2 {
		t.Fatalf("expanded to %d points, want 2", len(pts))
	}
}

func TestExpandDeduplicatesResolvedAxes(t *testing.T) {
	pts, err := Expand(Spec{
		Seed:    1,
		Players: []int{64, 64},
		Objects: []int{0, 64},
		Budgets: []int{0, 8},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 1 {
		t.Fatalf("resolved-duplicate axes expanded to %d points, want 1", len(pts))
	}
}

func TestExpandErrors(t *testing.T) {
	bad := []Spec{
		{Seed: 1},                    // no players
		{Seed: 1, Players: []int{0}}, // players < 1
		{Seed: 1, Players: []int{8}, ClusterSizes: []int{0}},                           // cluster size < 1
		{Seed: 1, Players: []int{8}, Strategies: []string{"nope"}},                     // unknown strategy
		{Seed: 1, Players: []int{8}, Protocols: []string{"nope"}},                      // unknown protocol
		{Seed: 1, Players: []int{8}, Dishonest: []int{-1}},                             // negative corruption
		{Seed: 1, Players: []int{8}, Diameters: []int{-2}},                             // negative diameter
		{Seed: 1, Players: []int{8}, ZipfClusters: []int{2}, ZipfAlphas: []float64{0}}, // bad alpha
	}
	for i, sp := range bad {
		if _, err := Expand(sp); err == nil {
			t.Fatalf("spec %d: expected error", i)
		}
	}
}

func TestMerge(t *testing.T) {
	a, _ := Expand(Spec{Seed: 1, Players: []int{64}, Protocols: []string{"run"}})
	b, _ := Expand(Spec{Seed: 1, Players: []int{128}, Protocols: []string{"run"}})
	merged, err := Merge(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if len(merged) != 2 || merged[0].Index != 0 || merged[1].Index != 1 {
		t.Fatalf("bad merge: %+v", merged)
	}
	if _, err := Merge(a, a); err == nil {
		t.Fatal("Merge accepted duplicate grids")
	}
}

func TestExpandDeterministic(t *testing.T) {
	sp := Spec{
		Seed: 9, Trials: 2,
		Players: []int{64, 96}, ClusterSizes: []int{8}, ZipfClusters: []int{3},
		Diameters: []int{2, 4}, Dishonest: []int{0, 2},
		Protocols: []string{"run", "byzantine"}, FixDiameter: true,
	}
	a, err := Expand(sp)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Expand(sp)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("Expand is not deterministic")
	}
}
