package sweep

import (
	"bytes"
	"encoding/json"
	"fmt"
	"testing"

	"collabscore/internal/xrand"
)

// fuzzSpec derives a bounded pseudo-random Spec from the fuzz seed. All
// axis values stay tiny so expansion is fast, but the shape space (which
// axes are present, how many values, which planting modes) is explored
// broadly.
func fuzzSpec(seed uint64) Spec {
	rng := xrand.New(seed)
	pick := func(k, lo, hi int) []int {
		out := make([]int, k)
		for i := range out {
			out[i] = lo + rng.Intn(hi-lo+1)
		}
		return out
	}
	sp := Spec{
		Seed:    rng.Uint64(),
		Trials:  rng.Intn(3),
		Players: pick(1+rng.Intn(3), 1, 12),
	}
	if rng.Bool() {
		sp.Objects = pick(1+rng.Intn(2), 0, 10)
	}
	if rng.Bool() {
		sp.Budgets = pick(1+rng.Intn(2), 0, 4)
	}
	if rng.Bool() {
		sp.ClusterSizes = pick(1+rng.Intn(2), 1, 10)
	}
	if rng.Bool() {
		sp.ZipfClusters = pick(1+rng.Intn(2), 1, 3)
		sp.ZipfAlphas = []float64{0.5 + rng.Float64()}
	}
	if rng.Bool() {
		sp.Diameters = pick(1+rng.Intn(2), 0, 6)
	}
	if rng.Bool() {
		sp.Dishonest = pick(1+rng.Intn(3), 0, 14)
	}
	strategies := []string{"random-liar", "colluders", "flip-all", "zero-spam", "exaggerators", "harsh-shifters"}
	if rng.Bool() {
		sp.Strategies = []string{strategies[rng.Intn(len(strategies))], strategies[rng.Intn(len(strategies))]}
	}
	protocols := []string{"run", "byzantine", "baseline", "probe-all", "random-guess", "ratings", "budgets"}
	if rng.Bool() {
		sp.Protocols = []string{protocols[rng.Intn(len(protocols))], protocols[rng.Intn(len(protocols))]}
	}
	if rng.Bool() {
		sp.Scales = pick(1+rng.Intn(2), 0, 9)
	}
	if rng.Bool() {
		sp.CapacityTiers = []CapTier{{}, {Small: 1 + rng.Intn(4), Big: 4 + rng.Intn(16), BigFrac: 0.25}}
	}
	sp.FixDiameter = rng.Bool()
	sp.PaperConstants = rng.Bool()
	return sp
}

// reverseInts/reverseStrs produce reordered-axis variants for the
// order-invariance check.
func reverseInts(xs []int) []int {
	out := make([]int, len(xs))
	for i, x := range xs {
		out[len(xs)-1-i] = x
	}
	return out
}

func reverseStrs(xs []string) []string {
	out := make([]string, len(xs))
	for i, x := range xs {
		out[len(xs)-1-i] = x
	}
	return out
}

// FuzzExpand checks the expander's invariants on arbitrary axis specs:
// no duplicate points, no skipped (then re-emitted) points, valid and
// convertible points only, deterministic re-expansion, and key→seed
// associations independent of axis value order.
func FuzzExpand(f *testing.F) {
	for s := uint64(0); s < 8; s++ {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, seed uint64) {
		sp := fuzzSpec(seed)
		pts, err := Expand(sp)
		if err != nil {
			t.Skip() // structurally invalid spec (e.g. empty players) — fine
		}
		keys := make(map[string]uint64, len(pts))
		for i, pt := range pts {
			if pt.Index != i {
				t.Fatalf("point %d has index %d", i, pt.Index)
			}
			k := pt.Key()
			if _, dup := keys[k]; dup {
				t.Fatalf("duplicate point %s", k)
			}
			keys[k] = pt.Seed
			if pt.Players < 1 || pt.Objects < 1 || pt.Budget < 1 {
				t.Fatalf("unresolved point %s", k)
			}
			if pt.Plant.Kind == "cluster" && pt.Plant.ClusterSize > pt.Players {
				t.Fatalf("unplantable point %s survived", k)
			}
			if pt.Dishonest > pt.Players {
				t.Fatalf("over-corrupted point %s survived", k)
			}
			if pt.Dishonest == 0 && pt.Strategy != "" {
				t.Fatalf("honest point %s carries a strategy", k)
			}
			if _, err := pt.Scenario(); err != nil {
				t.Fatalf("point %s does not convert: %v", k, err)
			}
		}

		// Re-expansion is deterministic.
		again, err := Expand(sp)
		if err != nil || len(again) != len(pts) {
			t.Fatalf("re-expansion differs: %d vs %d points (%v)", len(again), len(pts), err)
		}
		for i := range pts {
			if pts[i] != again[i] {
				t.Fatalf("re-expansion changed point %d", i)
			}
		}

		// Axis value order is irrelevant to the point set and its seeds.
		rev := sp
		rev.Players = reverseInts(sp.Players)
		rev.Objects = reverseInts(sp.Objects)
		rev.Budgets = reverseInts(sp.Budgets)
		rev.ClusterSizes = reverseInts(sp.ClusterSizes)
		rev.Diameters = reverseInts(sp.Diameters)
		rev.Dishonest = reverseInts(sp.Dishonest)
		rev.Strategies = reverseStrs(sp.Strategies)
		rev.Protocols = reverseStrs(sp.Protocols)
		rev.Scales = reverseInts(sp.Scales)
		reordered, err := Expand(rev)
		if err != nil {
			t.Fatalf("reordered spec failed: %v", err)
		}
		if len(reordered) != len(pts) {
			t.Fatalf("reordered spec expanded to %d points, want %d", len(reordered), len(pts))
		}
		for _, pt := range reordered {
			want, ok := keys[pt.Key()]
			if !ok {
				t.Fatalf("reordered spec produced new point %s", pt.Key())
			}
			if pt.Seed != want {
				t.Fatalf("point %s seed depends on axis order", pt.Key())
			}
		}
	})
}

// FuzzResume checks the resume plan against arbitrarily truncated JSONL:
// whatever byte prefix of a results file survives a kill, the intact
// records parse back exactly, and the pending set re-runs exactly the
// missing points — nothing twice, nothing dropped.
func FuzzResume(f *testing.F) {
	f.Add(uint64(1), uint(40))
	f.Add(uint64(2), uint(0))
	f.Add(uint64(3), uint(1<<20))
	f.Fuzz(func(t *testing.T, seed uint64, cut uint) {
		sp := fuzzSpec(seed)
		pts, err := Expand(sp)
		if err != nil || len(pts) == 0 {
			t.Skip()
		}
		// Fabricate a full results file (measurement values are irrelevant
		// to resume; only keys and framing matter).
		var buf bytes.Buffer
		for i, pt := range pts {
			rec := Record{Point: pt, Key: pt.Key(), MaxError: i, MaxProbes: int64(i)}
			if err := WriteRecord(&buf, rec); err != nil {
				t.Fatal(err)
			}
		}
		full := buf.Bytes()
		cutAt := int(cut % uint(len(full)+1))
		torn := full[:cutAt]

		recs, intact, err := ReadRecords(bytes.NewReader(torn))
		if err != nil {
			t.Fatal(err)
		}
		if intact > int64(cutAt) {
			t.Fatalf("intact offset %d past file size %d", intact, cutAt)
		}
		// Every parsed record is an exact record of the full file, in
		// order, and the intact offset is the byte length of those lines.
		lines := bytes.SplitAfter(full, []byte("\n"))
		if len(recs) > len(pts) {
			t.Fatalf("parsed %d records from a %d-point file", len(recs), len(pts))
		}
		var wantIntact int64
		for i := range recs {
			wantIntact += int64(len(lines[i]))
			var want Record
			if err := json.Unmarshal(lines[i], &want); err != nil {
				t.Fatal(err)
			}
			if recs[i].Key != want.Key || recs[i].MaxError != want.MaxError {
				t.Fatalf("record %d corrupted by truncation handling", i)
			}
		}
		if intact != wantIntact {
			t.Fatalf("intact offset %d, want %d", intact, wantIntact)
		}

		// The pending plan is exactly the complement of the intact records.
		done := CompletedKeys(recs)
		pending := 0
		for _, pt := range pts {
			if _, ok := done[pt.Key()]; !ok {
				pending++
			}
		}
		if pending != len(pts)-len(recs) {
			t.Fatalf("pending %d + done %d != %d points", pending, len(recs), len(pts))
		}
	})
}

// FuzzReadRecordsGarbage: ReadRecords must never error or mis-frame on
// arbitrary bytes — garbage yields zero records at offset 0, valid
// prefixes yield exactly their records.
func FuzzReadRecordsGarbage(f *testing.F) {
	f.Add([]byte("not json\n"))
	f.Add([]byte("{\"key\":\"\"}\n"))
	f.Add([]byte{})
	f.Add([]byte(fmt.Sprintf("{\"key\":\"k\",\"n\":1,\"m\":1,\"b\":8,\"plant\":{\"kind\":\"uniform\"},\"d\":0,\"protocol\":\"run\",\"trial\":0,\"seed\":1,\"max_error\":0,\"mean_error\":0,\"max_probes\":0,\"mean_probes\":0,\"total_probes\":0,\"opt_error\":-1,\"honest_leaders\":0,\"repetitions\":0,\"comm_writes\":0,\"comm_reads\":0}\n")))
	f.Fuzz(func(t *testing.T, data []byte) {
		recs, intact, err := ReadRecords(bytes.NewReader(data))
		if err != nil {
			t.Fatalf("ReadRecords errored on arbitrary bytes: %v", err)
		}
		if intact < 0 || intact > int64(len(data)) {
			t.Fatalf("intact offset %d outside [0,%d]", intact, len(data))
		}
		for _, rec := range recs {
			if rec.Key == "" {
				t.Fatal("accepted a record with empty key")
			}
		}
		// The intact prefix re-parses to the same records.
		again, intact2, err := ReadRecords(bytes.NewReader(data[:intact]))
		if err != nil || intact2 != intact || len(again) != len(recs) {
			t.Fatalf("intact prefix does not round-trip: %d/%d records, offset %d/%d, err %v",
				len(again), len(recs), intact2, intact, err)
		}
	})
}
