package sweep

import (
	"errors"
	"fmt"
	"reflect"
	"sync"
	"time"
)

// Queue errors. ErrConflict is the integrity violation a duplicate
// completion with a DIFFERENT record raises: every record is a pure
// function of its point's seed and coordinates, so two honest runs of the
// same point are byte-identical — a mismatch means a worker ran a stale
// grid, a different build, or corrupted the record in flight, and accepting
// either copy would silently poison the output.
var (
	ErrConflict     = errors.New("sweep: conflicting record for completed point")
	ErrUnknownPoint = errors.New("sweep: record for a point not in this grid")
	ErrStaleRecord  = errors.New("sweep: record does not match the point it claims to complete")
)

// Queue is the lease queue distributed sweeps coordinate through (DESIGN.md
// §15): every grid point moves pending → leased → done, where leases carry
// deadlines and lapse back to pending when their holder stops heartbeating.
// Dispatch is therefore at-least-once — the same point can run on two
// workers after a lapse — and Complete makes the output exactly-once by
// key-deduplicated merging that asserts identical records on duplicates.
// All methods are safe for concurrent use.
type Queue struct {
	mu         sync.Mutex
	points     []Point
	index      map[string]int // key → points index
	state      []pointState
	pending    []int // point indices awaiting a lease, FIFO; lapses re-queue here
	holder     []uint64
	leases     map[uint64]*queueLease
	nextID     uint64
	records    map[string]Record
	failed     []string
	computeOpt bool
	now        func() time.Time
}

type pointState uint8

const (
	statePending pointState = iota
	stateLeased
	stateDone
	stateFailed
)

type queueLease struct {
	worker   string
	keys     []string
	deadline time.Time
}

// Lease is one granted batch: the points the holder may run and the
// deadline by which it must Complete them or Heartbeat to extend.
type Lease struct {
	ID       uint64
	Points   []Point
	Deadline time.Time
}

// NewQueue builds the queue over the grid with the given prior records
// (e.g. a resumed checkpoint's FilePlan.Valid) already completed. Each
// prior record passes through the same validation as a live completion;
// computeOpt fixes the opt-consistency rule records are checked against.
func NewQueue(points []Point, prior []Record, computeOpt bool) (*Queue, error) {
	q := &Queue{
		points:     points,
		index:      make(map[string]int, len(points)),
		state:      make([]pointState, len(points)),
		holder:     make([]uint64, len(points)),
		leases:     make(map[uint64]*queueLease),
		records:    make(map[string]Record, len(points)),
		computeOpt: computeOpt,
		now:        time.Now,
	}
	for i, pt := range points {
		k := pt.Key()
		if _, dup := q.index[k]; dup {
			return nil, fmt.Errorf("sweep: duplicate point %s in queue grid", k)
		}
		q.index[k] = i
		q.pending = append(q.pending, i)
	}
	for _, rec := range prior {
		if _, err := q.Complete(rec); err != nil {
			return nil, err
		}
	}
	return q, nil
}

// SetClock replaces the queue's time source (tests drive lease lapses
// deterministically with a fake clock).
func (q *Queue) SetClock(now func() time.Time) {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.now = now
}

// Lease grants up to max pending points to worker for ttl. It returns
// ok = false when nothing is pending right now — either the grid is done
// or every remaining point is out on an unexpired lease (callers poll
// again; Done distinguishes the cases). Lapsed leases are expired first,
// so a dead worker's points are re-grantable the moment their deadline
// passes.
func (q *Queue) Lease(worker string, max int, ttl time.Duration) (Lease, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.expireLocked()
	if max < 1 {
		max = 1
	}
	if len(q.pending) == 0 {
		return Lease{}, false
	}
	n := min(max, len(q.pending))
	q.nextID++
	ql := &queueLease{worker: worker, deadline: q.now().Add(ttl)}
	ls := Lease{ID: q.nextID, Deadline: ql.deadline}
	for _, i := range q.pending[:n] {
		q.state[i] = stateLeased
		q.holder[i] = q.nextID
		ql.keys = append(ql.keys, q.points[i].Key())
		ls.Points = append(ls.Points, q.points[i])
	}
	q.pending = q.pending[n:]
	q.leases[q.nextID] = ql
	return ls, true
}

// Heartbeat extends the lease's deadline by ttl from now. It returns
// false when the lease has already lapsed (or never existed) — the holder
// should abandon the batch and request a fresh lease; any records it still
// sends remain acceptable through Complete's deduplication.
func (q *Queue) Heartbeat(id uint64, ttl time.Duration) (time.Time, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.expireLocked()
	ql, ok := q.leases[id]
	if !ok {
		return time.Time{}, false
	}
	ql.deadline = q.now().Add(ttl)
	return ql.deadline, true
}

// Expire lapses every lease past its deadline, re-queueing its unfinished
// points, and returns how many points re-entered the pending queue. The
// coordinator's reaper calls it on a ticker; Lease and Heartbeat also
// expire lazily.
func (q *Queue) Expire() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.expireLocked()
}

func (q *Queue) expireLocked() int {
	now := q.now()
	requeued := 0
	for id, ql := range q.leases {
		if !ql.deadline.Before(now) {
			continue
		}
		for _, k := range ql.keys {
			i := q.index[k]
			if q.state[i] == stateLeased && q.holder[i] == id {
				q.state[i] = statePending
				q.holder[i] = 0
				q.pending = append(q.pending, i)
				requeued++
			}
		}
		delete(q.leases, id)
	}
	return requeued
}

// Complete records one finished point, idempotently. The record must name a
// point of this grid and match it exactly — same key-derived coordinates,
// same seed, and opt_error presence matching the queue's computeOpt rule
// (the wire-level twin of RunFile's stale-record rejection). A duplicate
// completion is legal only when the record equals the stored one
// (fresh = false); a mismatch is ErrConflict. Completion does not require a
// live lease: a worker whose lease lapsed mid-run may still deliver its
// records, and deduplication keeps the output exactly-once.
func (q *Queue) Complete(rec Record) (fresh bool, err error) {
	q.mu.Lock()
	defer q.mu.Unlock()
	i, ok := q.index[rec.Key]
	if !ok {
		return false, fmt.Errorf("%w: %s", ErrUnknownPoint, rec.Key)
	}
	pt := q.points[i]
	// Records arrive over the wire without Index (it is not serialized);
	// normalize to the grid's so stored records equal a single-process run's.
	rec.Index = pt.Index
	if rec.Point.Key() != rec.Key {
		return false, fmt.Errorf("%w: %s (coordinates do not re-derive the key)", ErrStaleRecord, rec.Key)
	}
	if rec.Seed != pt.Seed {
		return false, fmt.Errorf("%w: %s (seed %d, grid wants %d)", ErrStaleRecord, rec.Key, rec.Seed, pt.Seed)
	}
	if wantsOpt(pt, q.computeOpt) != (rec.OptError >= 0) {
		return false, fmt.Errorf("%w: %s (opt_error presence does not match this sweep's options)", ErrStaleRecord, rec.Key)
	}
	switch q.state[i] {
	case stateDone:
		if !reflect.DeepEqual(q.records[rec.Key], rec) {
			return false, fmt.Errorf("%w: %s", ErrConflict, rec.Key)
		}
		return false, nil
	case stateFailed:
		// A late success beats an earlier failure verdict: the record is
		// valid, so keep it.
		q.failed = removeKey(q.failed, rec.Key)
	case statePending:
		q.pending = removeIndex(q.pending, i)
	}
	q.state[i] = stateDone
	q.holder[i] = 0
	q.records[rec.Key] = rec
	return true, nil
}

// Release returns a leased point to the pending queue immediately — a
// holder reporting it will not complete the batch (e.g. one failure report
// short of abandoning the point). Done, failed, and already-pending points
// are left untouched.
func (q *Queue) Release(key string) error {
	q.mu.Lock()
	defer q.mu.Unlock()
	i, ok := q.index[key]
	if !ok {
		return fmt.Errorf("%w: %s", ErrUnknownPoint, key)
	}
	if q.state[i] == stateLeased {
		q.state[i] = statePending
		q.holder[i] = 0
		q.pending = append(q.pending, i)
	}
	return nil
}

// Fail marks a point as persistently failed (its runner panicked through
// the per-point retry on several holders), removing it from dispatch so the
// grid can finish around it. Failing an already-done point is a no-op.
func (q *Queue) Fail(key string) error {
	q.mu.Lock()
	defer q.mu.Unlock()
	i, ok := q.index[key]
	if !ok {
		return fmt.Errorf("%w: %s", ErrUnknownPoint, key)
	}
	switch q.state[i] {
	case stateDone, stateFailed:
		return nil
	case statePending:
		q.pending = removeIndex(q.pending, i)
	}
	q.state[i] = stateFailed
	q.holder[i] = 0
	q.failed = append(q.failed, key)
	return nil
}

// Done reports whether every point has completed or failed — no pending
// points and no outstanding leased work.
func (q *Queue) Done() bool {
	q.mu.Lock()
	defer q.mu.Unlock()
	for _, st := range q.state {
		if st == statePending || st == stateLeased {
			return false
		}
	}
	return true
}

// Counts returns the number of points in each state.
func (q *Queue) Counts() (pending, leased, done, failed int) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for _, st := range q.state {
		switch st {
		case statePending:
			pending++
		case stateLeased:
			leased++
		case stateDone:
			done++
		case stateFailed:
			failed++
		}
	}
	return
}

// Records returns the completed records in grid-point order (failed and
// not-yet-completed points are absent).
func (q *Queue) Records() []Record {
	q.mu.Lock()
	defer q.mu.Unlock()
	out := make([]Record, 0, len(q.records))
	for i, pt := range q.points {
		if q.state[i] == stateDone {
			out = append(out, q.records[pt.Key()])
		}
	}
	return out
}

// Failed returns the keys of persistently failed points.
func (q *Queue) Failed() []string {
	q.mu.Lock()
	defer q.mu.Unlock()
	return append([]string(nil), q.failed...)
}

func removeIndex(xs []int, x int) []int {
	for j, v := range xs {
		if v == x {
			return append(xs[:j], xs[j+1:]...)
		}
	}
	return xs
}

func removeKey(xs []string, x string) []string {
	for j, v := range xs {
		if v == x {
			return append(xs[:j], xs[j+1:]...)
		}
	}
	return xs
}
