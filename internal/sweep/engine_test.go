package sweep

import (
	"bytes"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

// testGrid is a small shape-diverse grid that still exercises planting,
// corruption, both comparison protocols, and trials.
func testGrid(t *testing.T) []Point {
	t.Helper()
	pts, err := Expand(Spec{
		Seed:         11,
		Trials:       2,
		Players:      []int{48, 64},
		ClusterSizes: []int{16},
		Diameters:    []int{4},
		Dishonest:    []int{0, 2},
		Strategies:   []string{"colluders"},
		Protocols:    []string{"run", "byzantine"},
		FixDiameter:  true,
	})
	if err != nil {
		t.Fatal(err)
	}
	return pts
}

// TestEngineMatchesStandalone pins the acceptance property: every record
// the pooled multi-worker engine produces is identical to running that
// point's scenario standalone (fresh allocations, no engine).
func TestEngineMatchesStandalone(t *testing.T) {
	pts := testGrid(t)
	var sink bytes.Buffer
	recs, err := Run(pts, Options{Workers: 3, Sink: &sink, ComputeOpt: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != len(pts) {
		t.Fatalf("engine returned %d records for %d points", len(recs), len(pts))
	}
	for i, rec := range recs {
		want, err := runPoint(nil, pts[i], true)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(rec, want) {
			t.Fatalf("point %s: engine record differs from standalone\n got %+v\nwant %+v",
				pts[i].Key(), rec, want)
		}
	}
	// The sink holds one intact line per point, with records identical to
	// the returned ones.
	fromSink, intact, err := ReadRecords(&sink)
	if err != nil {
		t.Fatal(err)
	}
	if len(fromSink) != len(pts) || intact == 0 {
		t.Fatalf("sink holds %d records for %d points", len(fromSink), len(pts))
	}
	byKey := make(map[string]Record)
	for _, rec := range fromSink {
		rec.Index = 0
		byKey[rec.Key] = rec
	}
	for _, rec := range recs {
		rec.Index = 0
		if !reflect.DeepEqual(byKey[rec.Key], rec) {
			t.Fatalf("sink record for %s differs from returned record", rec.Key)
		}
	}
}

// TestEngineWorkerCounts: the same grid under different worker counts
// yields identical record sets — scheduling is invisible in results.
func TestEngineWorkerCounts(t *testing.T) {
	pts := testGrid(t)
	ref, err := Run(pts, Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 4, 0} {
		got, err := Run(pts, Options{Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, ref) {
			t.Fatalf("workers=%d: records differ from single-worker run", workers)
		}
	}
}

// failingSink accepts n writes then fails every subsequent one.
type failingSink struct{ n int }

func (f *failingSink) Write(p []byte) (int, error) {
	if f.n <= 0 {
		return 0, errWrite
	}
	f.n--
	return len(p), nil
}

var errWrite = os.ErrClosed

// TestRunAbortsOnSinkFailure: once the sink fails, the engine stops
// scheduling points (their records would be unrecordable) and surfaces the
// write error.
func TestRunAbortsOnSinkFailure(t *testing.T) {
	pts := testGrid(t)
	var progressed int
	_, err := Run(pts, sinkOptions(&failingSink{n: 1}, &progressed))
	if err == nil {
		t.Fatal("sink failure not surfaced")
	}
	if progressed >= len(pts) {
		t.Fatalf("engine ran all %d points despite a dead sink", len(pts))
	}
}

func sinkOptions(sink *failingSink, progressed *int) Options {
	return Options{
		Workers: 1,
		Sink:    sink,
		Progress: func(completed, scheduled int, rec Record) {
			*progressed = completed
		},
	}
}

// TestRunFileResume simulates a sweep killed mid-run — some records
// written, the last line truncated mid-write — and requires resume to
// re-run exactly the missing points and leave a file equal to an
// uninterrupted sweep's record set.
func TestRunFileResume(t *testing.T) {
	pts := testGrid(t)
	dir := t.TempDir()

	// Reference: uninterrupted sweep.
	refPath := filepath.Join(dir, "ref.jsonl")
	ref, err := RunFile(pts, refPath, false, Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(ref) != len(pts) {
		t.Fatalf("reference run returned %d records for %d points", len(ref), len(pts))
	}

	// Interrupted file: the first k records, then a record cut mid-line.
	refBytes, err := os.ReadFile(refPath)
	if err != nil {
		t.Fatal(err)
	}
	lines := bytes.SplitAfter(refBytes, []byte("\n"))
	k := 3
	partial := bytes.Join(lines[:k], nil)
	partial = append(partial, lines[k][:len(lines[k])/2]...) // torn write
	killedPath := filepath.Join(dir, "killed.jsonl")
	if err := os.WriteFile(killedPath, partial, 0o644); err != nil {
		t.Fatal(err)
	}

	var reran int
	resumed, err := RunFile(pts, killedPath, true, Options{
		Workers:  2,
		Progress: func(completed, scheduled int, rec Record) { reran = scheduled },
	})
	if err != nil {
		t.Fatal(err)
	}
	if want := len(pts) - k; reran != want {
		t.Fatalf("resume scheduled %d points, want exactly the %d missing", reran, want)
	}
	if !reflect.DeepEqual(resumed, ref) {
		t.Fatalf("resumed records differ from uninterrupted run")
	}

	// The resumed file itself holds every point exactly once, intact.
	f, err := os.Open(killedPath)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	final, _, err := ReadRecords(f)
	if err != nil {
		t.Fatal(err)
	}
	seen := make(map[string]int)
	for _, rec := range final {
		seen[rec.Key]++
	}
	for _, pt := range pts {
		if seen[pt.Key()] != 1 {
			t.Fatalf("resumed file holds %d records for %s, want 1", seen[pt.Key()], pt.Key())
		}
	}
	if len(final) != len(pts) {
		t.Fatalf("resumed file holds %d records for %d points", len(final), len(pts))
	}
}

// TestRunFileResumeRejectsStaleSeeds: a results file recorded under a
// different root seed must NOT satisfy a resume — same keys, different
// seeds means different sweeps, and silently substituting the old numbers
// would corrupt the new sweep. The stale records are dropped (the file is
// rebuilt) and the full grid runs.
func TestRunFileResumeRejectsStaleSeeds(t *testing.T) {
	spec := Spec{
		Seed: 21, Players: []int{48}, ClusterSizes: []int{16}, Diameters: []int{4},
		FixDiameter: true, Protocols: []string{"run"}, Trials: 2,
	}
	pts, err := Expand(spec)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "out.jsonl")
	if _, err := RunFile(pts, path, false, Options{Workers: 1}); err != nil {
		t.Fatal(err)
	}

	reseeded := spec
	reseeded.Seed = 22
	pts2, err := Expand(reseeded)
	if err != nil {
		t.Fatal(err)
	}
	var reran int
	recs, err := RunFile(pts2, path, true, Options{
		Workers:  1,
		Progress: func(completed, scheduled int, rec Record) { reran = scheduled },
	})
	if err != nil {
		t.Fatal(err)
	}
	if reran != len(pts2) {
		t.Fatalf("resume under a new root seed reran %d points, want all %d", reran, len(pts2))
	}
	for i, rec := range recs {
		if rec.Seed != pts2[i].Seed {
			t.Fatalf("record %d kept a stale seed", i)
		}
	}
	// The rebuilt file holds exactly the new sweep's records.
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	onDisk, _, err := ReadRecords(f)
	if err != nil {
		t.Fatal(err)
	}
	if len(onDisk) != len(pts2) {
		t.Fatalf("rebuilt file holds %d records, want %d", len(onDisk), len(pts2))
	}
	for _, rec := range onDisk {
		if rec.Seed == pts[0].Seed && rec.Seed != pts2[0].Seed {
			t.Fatal("stale record survived the rebuild")
		}
	}
	// And a same-seed resume over the now-complete file schedules nothing.
	reran = 0
	if _, err := RunFile(pts2, path, true, Options{
		Workers:  1,
		Progress: func(completed, scheduled int, rec Record) { reran = scheduled },
	}); err != nil {
		t.Fatal(err)
	}
	if reran != 0 {
		t.Fatalf("complete file reran %d points on resume, want 0", reran)
	}
}

// TestRunFileResumeRecomputesForOptChange: records written without
// ComputeOpt do not satisfy a resume that wants optima (and vice versa) —
// the resumed file must be record-equal to an uninterrupted sweep with the
// same options, never a mixture.
func TestRunFileResumeRecomputesForOptChange(t *testing.T) {
	pts, err := Expand(Spec{
		Seed: 31, Players: []int{48}, ClusterSizes: []int{16}, Diameters: []int{4},
		FixDiameter: true, Protocols: []string{"run"}, Trials: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "out.jsonl")
	if _, err := RunFile(pts, path, false, Options{Workers: 1}); err != nil {
		t.Fatal(err)
	}
	var reran int
	recs, err := RunFile(pts, path, true, Options{
		Workers: 1, ComputeOpt: true,
		Progress: func(completed, scheduled int, rec Record) { reran = scheduled },
	})
	if err != nil {
		t.Fatal(err)
	}
	if reran != len(pts) {
		t.Fatalf("opt-changing resume reran %d points, want all %d", reran, len(pts))
	}
	for _, rec := range recs {
		if rec.OptError < 0 {
			t.Fatalf("point %s kept a no-opt record through an -opt resume", rec.Key)
		}
	}
	// Resuming again with the same options schedules nothing.
	reran = 0
	if _, err := RunFile(pts, path, true, Options{
		Workers: 1, ComputeOpt: true,
		Progress: func(completed, scheduled int, rec Record) { reran = scheduled },
	}); err != nil {
		t.Fatal(err)
	}
	if reran != 0 {
		t.Fatalf("matched-options resume reran %d points, want 0", reran)
	}
}

// TestRunFileFresh: without resume an existing file is truncated, not
// appended to.
func TestRunFileFresh(t *testing.T) {
	pts := testGrid(t)[:2]
	path := filepath.Join(t.TempDir(), "out.jsonl")
	if err := os.WriteFile(path, []byte("garbage that must disappear\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	recs, err := RunFile(pts, path, false, Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	onDisk, _, err := ReadRecords(f)
	if err != nil {
		t.Fatal(err)
	}
	if len(onDisk) != len(recs) {
		t.Fatalf("file holds %d records, want %d", len(onDisk), len(recs))
	}
}

func TestAggregate(t *testing.T) {
	recs := []Record{
		{MaxError: 4, MeanError: 2, MaxProbes: 100, TotalProbes: 1000, HonestLeaders: 4, Repetitions: 5, CommWrites: 10, CommReads: 20},
		{MaxError: 8, MeanError: 4, MaxProbes: 50, TotalProbes: 500, HonestLeaders: 3, Repetitions: 5, CommWrites: 1, CommReads: 2},
	}
	s := Aggregate(recs)
	if s.Points != 2 || s.MaxError.Max != 8 || s.MaxError.Mean != 6 {
		t.Fatalf("bad error aggregation: %+v", s)
	}
	if s.MaxProbes != 100 || s.TotalProbes != 1500 || s.MeanMaxProbes != 75 {
		t.Fatalf("bad probe aggregation: %+v", s)
	}
	if s.HonestLeaderRate != 0.7 {
		t.Fatalf("honest leader rate %v, want 0.7", s.HonestLeaderRate)
	}
	if s.CommWrites != 11 || s.CommReads != 22 {
		t.Fatalf("bad comm aggregation: %+v", s)
	}
	if empty := Aggregate(nil); empty.Points != 0 {
		t.Fatalf("bad empty aggregation: %+v", empty)
	}
}

// TestRunFileResumeRatingsGrid is the §8 acceptance path: a grid over a
// rating-scale axis (plus a budgets column) runs through the pooled
// engine, is killed mid-file (torn tail), and resumes with exactly the
// missing points recomputed — record-equal to the uninterrupted sweep.
func TestRunFileResumeRatingsGrid(t *testing.T) {
	pts, err := Expand(Spec{
		Seed:          17,
		Players:       []int{48},
		ClusterSizes:  []int{12},
		Diameters:     []int{8},
		FixDiameter:   true,
		Dishonest:     []int{0, 2},
		Strategies:    []string{"exaggerators"},
		Protocols:     []string{"ratings", "budgets"},
		Scales:        []int{2, 5},
		CapacityTiers: []CapTier{{Small: 4, Big: 24, BigFrac: 0.5}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) < 5 {
		t.Fatalf("grid too small to exercise resume: %d points", len(pts))
	}
	dir := t.TempDir()
	refPath := filepath.Join(dir, "ref.jsonl")
	ref, err := RunFile(pts, refPath, false, Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}

	// Kill: keep two intact records plus a torn third line.
	refBytes, err := os.ReadFile(refPath)
	if err != nil {
		t.Fatal(err)
	}
	lines := bytes.SplitAfter(refBytes, []byte("\n"))
	partial := bytes.Join(lines[:2], nil)
	partial = append(partial, lines[2][:len(lines[2])/2]...)
	killedPath := filepath.Join(dir, "killed.jsonl")
	if err := os.WriteFile(killedPath, partial, 0o644); err != nil {
		t.Fatal(err)
	}

	var reran int
	resumed, err := RunFile(pts, killedPath, true, Options{
		Workers:  2,
		Progress: func(completed, scheduled int, rec Record) { reran = scheduled },
	})
	if err != nil {
		t.Fatal(err)
	}
	if want := len(pts) - 2; reran != want {
		t.Fatalf("resume scheduled %d points, want exactly the %d missing", reran, want)
	}
	if !reflect.DeepEqual(resumed, ref) {
		t.Fatal("resumed rating-grid records differ from uninterrupted run")
	}
	for _, rec := range resumed {
		if rec.Rounds != rec.MaxProbes {
			t.Fatalf("point %s: rounds column %d != max probes %d", rec.Key, rec.Rounds, rec.MaxProbes)
		}
	}
}

// TestEngineRatingsMatchStandalone: pooled rating/budget records equal the
// standalone (fresh-allocation) scenario runs — the sweep-side half of the
// pooling contract for the §8 extensions.
func TestEngineRatingsMatchStandalone(t *testing.T) {
	pts, err := Expand(Spec{
		Seed:         19,
		Players:      []int{48},
		ClusterSizes: []int{12},
		Diameters:    []int{8},
		FixDiameter:  true,
		Dishonest:    []int{2},
		Strategies:   []string{"harsh-shifters"},
		Protocols:    []string{"ratings", "budgets"},
		Scales:       []int{5, 9},
	})
	if err != nil {
		t.Fatal(err)
	}
	recs, err := Run(pts, Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	for i, rec := range recs {
		want, err := runPoint(nil, pts[i], false)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(rec, want) {
			t.Fatalf("point %s: pooled record differs from standalone\n got %+v\nwant %+v",
				pts[i].Key(), rec, want)
		}
	}
}

// TestRunFileResumeTruthGrid drives the truth-source axis end to end
// through the engine: a mixed dense/lazy grid across substrates runs,
// resumes from a torn file re-running only the missing points, and every
// lazy record carries exactly the same results as its dense twin (same
// seed, same world — the representation must be invisible in the JSONL).
func TestRunFileResumeTruthGrid(t *testing.T) {
	pts, err := Expand(Spec{
		Seed:         17,
		Players:      []int{48},
		ClusterSizes: []int{12},
		Diameters:    []int{4},
		Dishonest:    []int{0, 2},
		Strategies:   []string{"random-liar"},
		Protocols:    []string{"run", "byzantine", "ratings", "budgets"},
		TruthSources: []string{"dense", "lazy", "lazy:8"},
		FixDiameter:  true,
	})
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	refPath := filepath.Join(dir, "ref.jsonl")
	ref, err := RunFile(pts, refPath, false, Options{Workers: 2, ComputeOpt: true})
	if err != nil {
		t.Fatal(err)
	}

	// Pair every lazy record with its dense twin: identical apart from the
	// identity fields and the planted-optimum column (the exact-optimum
	// oracle needs the materialized matrix, so lazy points skip it).
	denseByKey := map[string]Record{}
	for _, rec := range ref {
		if rec.TruthSource == "" {
			denseByKey[rec.Key] = rec
		}
	}
	var lazySeen int
	for _, rec := range ref {
		if rec.TruthSource == "" {
			continue
		}
		lazySeen++
		twin := rec
		twin.TruthSource = ""
		want, ok := denseByKey[twin.Point.Key()]
		if !ok {
			t.Fatalf("lazy record %s has no dense twin", rec.Key)
		}
		if rec.OptError != -1 {
			t.Fatalf("lazy record %s computed the dense-only optimum oracle", rec.Key)
		}
		got := rec
		got.Point.TruthSource, got.Key, got.Index = "", want.Key, want.Index
		got.OptError = want.OptError
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("lazy record %s differs from its dense twin beyond identity fields\n got %+v\nwant %+v",
				rec.Key, rec, want)
		}
	}
	if lazySeen == 0 {
		t.Fatal("grid produced no lazy points")
	}

	// Tear the file and resume: only the missing points re-run, and the
	// final record set matches the uninterrupted sweep.
	refBytes, err := os.ReadFile(refPath)
	if err != nil {
		t.Fatal(err)
	}
	lines := bytes.SplitAfter(refBytes, []byte("\n"))
	k := len(pts) / 2
	partial := bytes.Join(lines[:k], nil)
	partial = append(partial, lines[k][:len(lines[k])/2]...)
	killedPath := filepath.Join(dir, "killed.jsonl")
	if err := os.WriteFile(killedPath, partial, 0o644); err != nil {
		t.Fatal(err)
	}
	var reran int
	resumed, err := RunFile(pts, killedPath, true, Options{
		Workers:    2,
		ComputeOpt: true,
		Progress:   func(completed, scheduled int, rec Record) { reran = scheduled },
	})
	if err != nil {
		t.Fatal(err)
	}
	if want := len(pts) - k; reran != want {
		t.Fatalf("resume scheduled %d points, want exactly the %d missing", reran, want)
	}
	if !reflect.DeepEqual(resumed, ref) {
		t.Fatal("resumed truth-grid records differ from the uninterrupted run")
	}
}
