package world

import (
	"os"
	"runtime"
	"testing"

	"collabscore/internal/par"
	"collabscore/internal/prefgen"
	"collabscore/internal/xrand"
)

// heapAlloc returns the live-heap size after a full collection; differences
// between two calls bound the retained cost of what was built in between.
func heapAlloc() uint64 {
	runtime.GC()
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return ms.HeapAlloc
}

// heapDelta runs build and returns the retained heap it added.
func heapDelta(build func()) uint64 {
	before := heapAlloc()
	build()
	after := heapAlloc()
	if after < before {
		return 0
	}
	return after - before
}

// TestLazyWorldBoundedMemorySmoke is the short-mode memory pin (it runs in
// the CI race job): even at small n, a lazy world must retain well under a
// quarter of what its dense twin holds, before any probing installs memos.
func TestLazyWorldBoundedMemorySmoke(t *testing.T) {
	const n, m, clusterSize, diameter = 4096, 4096, 64, 8
	var dw, lw *World
	denseDelta := heapDelta(func() {
		dw = New(prefgen.DiameterClusters(xrand.New(5), n, m, clusterSize, diameter).Truth)
	})
	lazyDelta := heapDelta(func() {
		lw = NewFrom(prefgen.LazyDiameterClusters(xrand.New(5), n, m, clusterSize, diameter, 0).Source())
	})
	if lazyDelta*4 > denseDelta {
		t.Fatalf("lazy world retains %d bytes, dense %d — want lazy < dense/4", lazyDelta, denseDelta)
	}
	// Same truth regardless of representation.
	for p := 0; p < n; p += 511 {
		for wi := 0; wi < lw.ProbeWords(); wi += 7 {
			if lw.ProbeWord(p, wi, ^uint64(0)) != dw.ProbeWord(p, wi, ^uint64(0)) {
				t.Fatalf("ProbeWord(%d,%d) diverges from dense", p, wi)
			}
		}
	}
	runtime.KeepAlive(dw)
}

// TestLazyWorldBoundedMemoryLarge is the tentpole acceptance run: an
// n = m = 10⁵ world — a 1.25 GB truth matrix when materialized — built
// lazily under a 96 MB retained-heap ceiling the dense representation
// cannot possibly meet, then probed (serially and in parallel, with and
// without a tile cache) with every word checked against the dense oracle.
func TestLazyWorldBoundedMemoryLarge(t *testing.T) {
	if testing.Short() {
		t.Skip("1.25 GB dense oracle; skipped in -short (smoke test covers the bound)")
	}
	const (
		n, m        = 100_000, 100_000
		clusterSize = 500
		diameter    = 16
		tiles       = 32_768
		ceiling     = 96 << 20 // bytes of retained heap the lazy world may add
	)
	denseBytes := uint64(n) * uint64(m) / 8
	if ceiling >= denseBytes {
		t.Fatalf("ceiling %d does not exclude a dense world (%d bytes)", uint64(ceiling), denseBytes)
	}

	var lw, cw *World // cacheless and tile-cached lazy twins
	lazyDelta := heapDelta(func() {
		lw = NewFrom(prefgen.LazyDiameterClusters(xrand.New(2010), n, m, clusterSize, diameter, 0).Source())
		cw = NewFrom(prefgen.LazyDiameterClusters(xrand.New(2010), n, m, clusterSize, diameter, tiles).Source())
	})
	if lazyDelta > ceiling {
		t.Fatalf("two lazy worlds retain %d bytes, over the %d ceiling", lazyDelta, ceiling)
	}

	// The dense twin: same stream, same truth, three orders of magnitude
	// more memory (the planted generator draws only numClusters·m coins, so
	// building it is cheap in time — the cost is purely the matrix).
	var dw *World
	denseDelta := heapDelta(func() {
		dw = New(prefgen.DiameterClusters(xrand.New(2010), n, m, clusterSize, diameter).Truth)
	})
	if denseDelta <= ceiling {
		t.Fatalf("dense world retained only %d bytes — the %d ceiling no longer separates representations", denseDelta, uint64(ceiling))
	}

	// Probe-path oracle at full scale: scattered players, every word,
	// cacheless and cached lazy worlds against the dense one.
	for p := 0; p < n; p += 9973 {
		for wi := 0; wi < dw.ProbeWords(); wi += 101 {
			want := dw.ProbeWord(p, wi, ^uint64(0))
			if got := lw.ProbeWord(p, wi, ^uint64(0)); got != want {
				t.Fatalf("lazy ProbeWord(%d,%d) = %#x, want %#x", p, wi, got, want)
			}
			if got := cw.ProbeWord(p, wi, ^uint64(0)); got != want {
				t.Fatalf("cached ProbeWord(%d,%d) = %#x, want %#x", p, wi, got, want)
			}
		}
	}
	// A parallel pass over one cluster races first-probe memo installs at
	// scale; charging must stay exact.
	lw.ResetProbes()
	words := lw.ProbeWords()
	par.Fixed(8).For(clusterSize*words, func(i int) {
		p, wi := i/words, i%words
		if lw.ProbeWord(p, wi, ^uint64(0)) != dw.ProbeWord(p, wi, ^uint64(0)) {
			t.Errorf("parallel ProbeWord(%d,%d) diverges from dense", p, wi)
		}
	})
	for p := 0; p < clusterSize; p++ {
		if got := lw.Probes(p); got != int64(m) {
			t.Fatalf("player %d charged %d probes, want exactly %d", p, got, m)
		}
	}
	runtime.KeepAlive(dw)
	runtime.KeepAlive(cw)
}

// TestLazyWorldMillionPlayers is the skipped-by-default long run: an
// n = m = 10⁶ world — a 125 GB matrix if materialized, beyond this
// machine — built and probed lazily under a 1 GB retained-heap ceiling.
// There is no dense oracle at this scale (that is the point); correctness
// rests on self-consistency plus the bit-identical pins at oracle scales.
// Enable with COLLABSCORE_BIGWORLD=1.
func TestLazyWorldMillionPlayers(t *testing.T) {
	if os.Getenv("COLLABSCORE_BIGWORLD") == "" {
		t.Skip("set COLLABSCORE_BIGWORLD=1 to run the 10⁶-player acceptance test")
	}
	const (
		n, m        = 1_000_000, 1_000_000
		clusterSize = 1000
		diameter    = 16
		tiles       = 32_768
		ceiling     = 1 << 30
	)
	var lw *World
	var src prefgen.TruthSource
	lazyDelta := heapDelta(func() {
		in := prefgen.LazyDiameterClusters(xrand.New(1_000_003), n, m, clusterSize, diameter, tiles)
		src = in.Source()
		lw = NewFrom(src)
	})
	if lazyDelta > ceiling {
		t.Fatalf("lazy world retains %d bytes, over the %d ceiling", lazyDelta, uint64(ceiling))
	}
	// Probe a scattered sample; words must agree with single-bit reads and
	// with a second probe of the same word (memo-stable), and cluster
	// members must differ from their center by at most diameter flips.
	for p := 0; p < n; p += 99_991 {
		for wi := 0; wi < lw.ProbeWords(); wi += 4999 {
			w1 := lw.ProbeWord(p, wi, ^uint64(0))
			if w2 := lw.ProbeWord(p, wi, ^uint64(0)); w2 != w1 {
				t.Fatalf("ProbeWord(%d,%d) unstable across probes", p, wi)
			}
			for b := 0; b < 64 && wi*64+b < m; b += 13 {
				if src.TruthBit(p, wi*64+b) != (w1>>uint(b)&1 == 1) {
					t.Fatalf("TruthBit(%d,%d) disagrees with its word", p, wi*64+b)
				}
			}
		}
	}
	if after := heapAlloc(); after > uint64(2)<<30 {
		t.Fatalf("probe phase grew the heap to %d bytes", after)
	}
}
