package world

import (
	"fmt"
	"testing"

	"collabscore/internal/bitvec"
	"collabscore/internal/par"
	"collabscore/internal/prefgen"
	"collabscore/internal/xrand"
)

// lazyDensePair builds two worlds over the SAME generation stream: the
// dense reference and its lazy twin. Everything observable about them must
// agree; only memory layout differs.
func lazyDensePair(seed uint64, n, m, clusterSize, diameter, tiles int) (dense, lazy *World) {
	d := prefgen.DiameterClusters(xrand.New(seed), n, m, clusterSize, diameter)
	l := prefgen.LazyDiameterClusters(xrand.New(seed), n, m, clusterSize, diameter, tiles)
	return New(d.Truth), NewFrom(l.Source())
}

// TestLazyWorldMatchesDense pins the probe-path oracle at the world layer:
// Probe, ProbeWord, ProbeVector, PeekTruth, TruthVector, and HonestError
// must be byte-identical between a dense world and a lazy world built from
// the same stream, with identical probe charging.
func TestLazyWorldMatchesDense(t *testing.T) {
	for _, tiles := range []int{0, 3} {
		dw, lw := lazyDensePair(42, 20, 300, 4, 10, tiles)
		if lw.N() != dw.N() || lw.M() != dw.M() {
			t.Fatalf("dims (%d,%d), want (%d,%d)", lw.N(), lw.M(), dw.N(), dw.M())
		}
		order := xrand.New(7)
		for i := 0; i < 2000; i++ {
			p, o := order.Intn(dw.N()), order.Intn(dw.M())
			if lw.Probe(p, o) != dw.Probe(p, o) {
				t.Fatalf("tiles=%d: Probe(%d,%d) mismatch", tiles, p, o)
			}
			if lw.PeekTruth(p, o) != dw.PeekTruth(p, o) {
				t.Fatalf("tiles=%d: PeekTruth(%d,%d) mismatch", tiles, p, o)
			}
		}
		for wi := 0; wi < dw.ProbeWords(); wi++ {
			if got, want := lw.ProbeWord(3, wi, ^uint64(0)), dw.ProbeWord(3, wi, ^uint64(0)); got != want {
				t.Fatalf("tiles=%d: ProbeWord(3,%d) = %#x, want %#x", tiles, wi, got, want)
			}
		}
		objs := []int{5, 64, 65, 2, 299, 131, 64}
		if !lw.ProbeVector(6, objs).Equal(dw.ProbeVector(6, objs)) {
			t.Fatalf("tiles=%d: ProbeVector mismatch", tiles)
		}
		for p := 0; p < dw.N(); p++ {
			if lw.Probes(p) != dw.Probes(p) {
				t.Fatalf("tiles=%d: player %d charged %d (lazy) vs %d (dense)", tiles, p, lw.Probes(p), dw.Probes(p))
			}
			tv := lw.TruthVector(p)
			if !tv.Equal(dw.TruthVector(p)) {
				t.Fatalf("tiles=%d: TruthVector(%d) mismatch", tiles, p)
			}
			if lw.HonestError(p, bitvec.New(dw.M())) != dw.HonestError(p, bitvec.New(dw.M())) {
				t.Fatalf("tiles=%d: HonestError(%d) mismatch", tiles, p)
			}
		}
		if lw.MaxHonestProbes() != dw.MaxHonestProbes() || lw.TotalProbes() != dw.TotalProbes() {
			t.Fatalf("tiles=%d: probe totals diverge", tiles)
		}
	}
}

// TestLazyWorldConcurrentFirstProbe races many goroutines into the very
// first probes of each player, where the memo install CAS happens: per-pair
// charging must stay exact under the race detector, and every read must
// match the dense oracle.
func TestLazyWorldConcurrentFirstProbe(t *testing.T) {
	const n, m = 8, 1024
	dw, lw := lazyDensePair(9, n, m, 2, 8, 4)
	par.Fixed(8).For(n*lw.ProbeWords(), func(i int) {
		wi := i % lw.ProbeWords()
		p := i / lw.ProbeWords()
		if lw.ProbeWord(p, wi, ^uint64(0)) != dw.ProbeWord(p, wi, ^uint64(0)) {
			t.Errorf("ProbeWord(%d,%d) diverged from dense truth", p, wi)
		}
		for b := 0; b < 64 && wi*64+b < m; b += 9 {
			if lw.Probe(p, wi*64+b) != dw.PeekTruth(p, wi*64+b) {
				t.Errorf("Probe(%d,%d) diverged from dense truth", p, wi*64+b)
			}
		}
	})
	for p := 0; p < n; p++ {
		if got := lw.Probes(p); got != int64(m) {
			t.Fatalf("player %d charged %d probes, want exactly %d", p, got, m)
		}
	}
}

// TestLazyWorldRenewFromReusesMemos pins the pooling contract: renewing a
// lazy world onto a new same-shape source resets counters and memos but
// behaves observationally like a fresh NewFrom.
func TestLazyWorldRenewFromReusesMemos(t *testing.T) {
	mk := func(seed uint64) prefgen.TruthSource {
		return prefgen.LazyDiameterClusters(xrand.New(seed), 10, 200, 2, 6, 0).Source()
	}
	w := NewFrom(mk(1))
	w.Probe(3, 7)
	w.SetBehavior(4, flipBehavior{})
	w = RenewFrom(w, mk(2))
	fresh := NewFrom(mk(2))
	if w.Probes(3) != 0 || !w.IsHonest(4) {
		t.Fatal("RenewFrom did not reset probe counters and roles")
	}
	for p := 0; p < 10; p++ {
		for o := 0; o < 200; o += 7 {
			if w.Probe(p, o) != fresh.Probe(p, o) {
				t.Fatalf("renewed world diverges from fresh at (%d,%d)", p, o)
			}
		}
		if w.Probes(p) != fresh.Probes(p) {
			t.Fatalf("renewed world charges %d, fresh %d", w.Probes(p), fresh.Probes(p))
		}
	}
	// Shape change falls back to a fresh world.
	small := RenewFrom(w, prefgen.LazyUniform(xrand.New(3), 4, 50, 0).Source())
	if small.N() != 4 || small.M() != 50 {
		t.Fatalf("shape-change RenewFrom dims (%d,%d)", small.N(), small.M())
	}
}

// TestLazyProbeWordAllocFree guards the lazy probe hot path: once a
// player's memo is installed, cacheless word probes must not allocate
// (warm-up run installs the memo).
func TestLazyProbeWordAllocFree(t *testing.T) {
	in := prefgen.LazyDiameterClusters(xrand.New(3), 2, 4096, 2, 8, 0)
	w := NewFrom(in.Source())
	var sink uint64
	wi := 0
	if n := testing.AllocsPerRun(200, func() {
		sink += w.ProbeWord(0, wi%w.ProbeWords(), ^uint64(0))
		wi++
	}); n != 0 {
		t.Fatalf("lazy ProbeWord allocates %v times per run", n)
	}
	_ = sink
}

// TestLazyWorldWordMaskPanics pins that lazy worlds reject out-of-range
// word probes exactly like dense ones.
func TestLazyWorldWordMaskPanics(t *testing.T) {
	dw, lw := lazyDensePair(1, 4, 100, 2, 0, 0)
	for _, w := range []*World{dw, lw} {
		for _, wi := range []int{-1, w.ProbeWords()} {
			func() {
				defer func() {
					msg, ok := recover().(string)
					if !ok {
						t.Fatalf("ProbeWord(0,%d) did not panic with a string", wi)
					}
					want := fmt.Sprintf("bitvec: word %d out of range [0,%d)", wi, w.ProbeWords())
					if msg != want {
						t.Fatalf("panic %q, want %q", msg, want)
					}
				}()
				w.ProbeWord(0, wi, 1)
			}()
		}
	}
}
