// Package world implements the game substrate of the paper's model (§2):
// n players, m objects, a hidden binary preference matrix, a probe oracle
// with per-player probe accounting, and pluggable per-player behaviors so
// dishonest strategies can be injected at every point where a player reports
// a value.
//
// Probes versus reports. Probing is the paper's cost measure: when player p
// probes object o it learns the truth v(p)_o, and we charge one probe to p.
// What p *reports* (writes to the bulletin board, or returns from a protocol
// subroutine) is a separate act: honest players report probed truth,
// dishonest players report whatever their strategy dictates — without
// necessarily probing, since the adversary is full-information.
package world

import (
	"fmt"
	"math/bits"
	"sync/atomic"

	"collabscore/internal/bitvec"
	"collabscore/internal/par"
	"collabscore/internal/prefgen"
)

// Behavior decides what a player reports when the protocol asks it to probe
// an object and publish the result. Implementations must be safe for
// concurrent use across distinct calls, including calls from concurrently
// executing Runs over the same World.
type Behavior interface {
	// Report returns the value player p publishes for object o. Honest
	// behaviors probe (charging p) and return the truth; dishonest ones may
	// return anything and typically do not probe. The Run carries the
	// published protocol state of the execution asking for the report.
	Report(rc *Run, p, o int) bool
}

// Honest is the protocol-following behavior: probe and report the truth.
type Honest struct{}

// Report probes object o as player p and returns the true preference.
func (Honest) Report(rc *Run, p, o int) bool { return rc.Probe(p, o) }

// Public is protocol state visible to all players — and therefore to the
// full-information adversary. Protocol phases update it as they go so that
// adaptive strategies (cluster hijacking, strange-object attacks) can react.
type Public struct {
	// Phase names the currently executing protocol phase, e.g. "sample",
	// "smallradius", "workshare".
	Phase string
	// Sample holds the current sample set S (global object ids), when one
	// has been published. Use SetSample to keep the membership index in sync.
	Sample []int
	// sampleSet indexes Sample as a bitset for O(1) membership tests.
	// Adversary behaviors consult it on every report of the smallradius
	// phase, so it must be cheap and safe under concurrent reads: the
	// vector is immutable between SetSample calls (which happen only at
	// phase barriers), and a bit test beats a map lookup on this path.
	sampleSet bitvec.Vector
	// Clusters holds the current clustering (player ids per cluster), when
	// one has been computed.
	Clusters [][]int
	// TargetDiameter is the diameter guess D of the current iteration.
	TargetDiameter int
}

// SetSample publishes a sample set and rebuilds the membership index.
// Passing nil clears the sample.
func (pub *Public) SetSample(sample []int) {
	pub.Sample = sample
	if sample == nil {
		pub.sampleSet = bitvec.Vector{}
		return
	}
	mx := 0
	for _, o := range sample {
		if o > mx {
			mx = o
		}
	}
	set := bitvec.New(mx + 1)
	for _, o := range sample {
		set.Set(o, true)
	}
	pub.sampleSet = set
}

// InSample reports whether object o belongs to the published sample set.
// It returns false when no sample is published.
func (pub *Public) InSample(o int) bool {
	return o >= 0 && o < pub.sampleSet.Len() && pub.sampleSet.Get(o)
}

// HasSample reports whether a sample set is currently published.
func (pub *Public) HasSample() bool { return pub.Sample != nil }

// Run is a per-execution context: one protocol run over a read-only World.
// It owns the mutable published state (Pub) that protocol phases update as
// they go and that full-information adversary behaviors observe. Because
// every run carries its own Pub, independent runs — e.g. the repetitions of
// the Byzantine wrapper — can execute concurrently over one World without
// their observer state interfering (see DESIGN.md §6).
//
// A Run embeds the World, so all read-only accessors (N, M, Probe,
// IsHonest, …) are available on it directly. Pub must only be mutated
// between parallel phases of the owning run (never concurrently with Report
// calls that read it), exactly as the World-global Pub had to be before
// Runs existed.
//
// A Run also carries the execution policy for its phase loops: protocol
// packages schedule their per-player and per-object fan-out on Exec(), so
// an entire run can be pinned to the single-threaded reference schedule
// (core.Params.PhaseSerial → NewRunOn(w, par.Serial()); DESIGN.md §9)
// without threading a flag through every protocol signature.
type Run struct {
	*World
	Pub Public
	// exec is the phase-loop executor; nil means par.Parallel().
	exec *par.Runner
}

// NewRun creates a fresh execution context over w with empty published
// state and the default parallel phase executor.
func NewRun(w *World) *Run { return &Run{World: w} }

// NewRunOn creates a fresh execution context whose phase loops run under
// the given executor (nil means parallel). Pass par.Serial() for the
// deterministic reference schedule, or par.Fixed(k) to force k workers in
// race tests.
func NewRunOn(w *World, exec *par.Runner) *Run { return &Run{World: w, exec: exec} }

// Exec returns the executor protocol phases must schedule their loops on.
// It never returns nil.
func (rc *Run) Exec() *par.Runner {
	if rc.exec == nil {
		return par.Parallel()
	}
	return rc.exec
}

// Report asks player p's behavior for its published value for object o, in
// the context of this run.
func (rc *Run) Report(p, o int) bool { return rc.behaviors[p].Report(rc, p, o) }

// ReportVector returns player p's reports for the given objects as a vector
// indexed like objs (bit j corresponds to objs[j]). For honest players this
// probes every listed object — on the word-level bulk path (ProbeVector),
// which charges identically to per-object probing. Dishonest players are
// asked per object, since their behaviors decide each report.
func (rc *Run) ReportVector(p int, objs []int) bitvec.Vector {
	if rc.honest[p] {
		return rc.ProbeVector(p, objs)
	}
	v := bitvec.New(len(objs))
	for j, o := range objs {
		if rc.Report(p, o) {
			v.Set(j, true)
		}
	}
	return v
}

// ReportWord returns player p's reports for the objects whose bits are set
// in mask within object word wi, as a word aligned with mask. Honest
// players ride ProbeWord (two atomics for the whole word); dishonest
// players are asked per object through their behavior, in ascending object
// order.
func (rc *Run) ReportWord(p, wi int, mask uint64) uint64 {
	if rc.honest[p] {
		return rc.ProbeWord(p, wi, mask)
	}
	var vals uint64
	base := wi * 64
	for t := mask; t != 0; t &= t - 1 {
		b := bits.TrailingZeros64(t)
		if rc.Report(p, base+b) {
			vals |= 1 << uint(b)
		}
	}
	return vals
}

// World is the simulation substrate. The truth matrix, roles, and behaviors
// are fixed at construction; probe counters are updated concurrently. A
// World is read-only during protocol execution: all mutable published state
// lives in the per-execution Run.
type World struct {
	n, m, words int
	// src is the pluggable truth representation (DESIGN.md §14); truth is
	// the dense fast path, aliasing src's rows when src is *prefgen.Dense
	// and nil for lazy sources.
	src   prefgen.TruthSource
	truth []bitvec.Vector
	// tailMask masks the valid bits of the last object word.
	tailMask  uint64
	honest    []bool
	behaviors []Behavior
	probes    []atomic.Int64
	// known is the per-player probe memo: a lock-free atomic bitset
	// (bitvec.Atomic) so that concurrent probes of one (player, object)
	// pair charge exactly once under any schedule. Once a player has
	// probed an object it knows the answer forever, so re-probing is
	// free: the paper's probe complexity counts distinct objects examined.
	//
	// Memos are installed on a player's FIRST probe (memo), not at
	// construction: eagerly allocating n bitsets of m bits is itself the
	// O(n·m) wall the lazy truth sources remove, and protocols only ever
	// probe a vanishing fraction of players at the scales where that wall
	// matters.
	known []atomic.Pointer[bitvec.Atomic]
}

// New creates a world from a truth matrix. All players start honest; use
// SetBehavior/SetDishonest to corrupt some of them. It panics if truth is
// empty or rows have unequal lengths.
func New(truth []bitvec.Vector) *World { return NewFrom(prefgen.NewDense(truth)) }

// NewFrom creates a world over any truth source — the materialized Dense
// wrapper (New) or a lazy on-demand source. It panics if the source is
// empty or (for dense sources) rows have unequal lengths.
func NewFrom(src prefgen.TruthSource) *World {
	n := src.Players()
	if n == 0 {
		panic("world: no players")
	}
	m := src.Objects()
	w := &World{
		n:         n,
		m:         m,
		words:     (m + 63) / 64,
		src:       src,
		truth:     denseRows(src, m),
		tailMask:  tailMask(m),
		honest:    make([]bool, n),
		behaviors: make([]Behavior, n),
		probes:    make([]atomic.Int64, n),
		known:     make([]atomic.Pointer[bitvec.Atomic], n),
	}
	for p := range w.honest {
		w.honest[p] = true
		w.behaviors[p] = Honest{}
	}
	return w
}

// denseRows returns the fast-path row slice for a dense source (validating
// row lengths exactly as New always has), nil for any other source.
func denseRows(src prefgen.TruthSource, m int) []bitvec.Vector {
	d, ok := src.(*prefgen.Dense)
	if !ok {
		return nil
	}
	rows := d.Rows()
	for p, v := range rows {
		if v.Len() != m {
			panic(fmt.Sprintf("world: truth row %d has length %d, want %d", p, v.Len(), m))
		}
	}
	return rows
}

// tailMask returns the valid-bit mask of the last word of an m-bit row.
func tailMask(m int) uint64 {
	if r := m % 64; r != 0 {
		return (1 << uint(r)) - 1
	}
	return ^uint64(0)
}

// Renew re-initializes a world for a new truth matrix, reusing w's
// allocations (role slices, probe counters, probe memos) when the shape
// matches; a nil w or a shape change falls back to New. All players start
// honest and all counters start at zero, exactly as New leaves them, so
//
//	w = world.Renew(w, truth)
//
// is observationally identical to world.New(truth) — it is the pooled
// constructor the sweep engine's per-worker arenas use to avoid rebuilding
// O(n·m/64) memo storage on every grid point. The previous truth matrix and
// any outstanding Runs over the old world must no longer be in use.
func Renew(w *World, truth []bitvec.Vector) *World {
	return RenewFrom(w, prefgen.NewDense(truth))
}

// RenewFrom is Renew over any truth source; see Renew and NewFrom.
func RenewFrom(w *World, src prefgen.TruthSource) *World {
	if w == nil || src.Players() != w.n || src.Players() == 0 || src.Objects() != w.m {
		return NewFrom(src)
	}
	w.src = src
	w.truth = denseRows(src, w.m)
	for p := range w.honest {
		w.honest[p] = true
		w.behaviors[p] = Honest{}
	}
	w.ResetProbes()
	return w
}

// N returns the number of players.
func (w *World) N() int { return w.n }

// M returns the number of objects.
func (w *World) M() int { return w.m }

// memo returns player p's probe memo, installing it on first use. The
// install is a CAS race any number of concurrent probers may enter; losers
// adopt the winner's bitset, so exactly one memo ever serves a player and
// the charge-once guarantee below is unaffected.
func (w *World) memo(p int) *bitvec.Atomic {
	if k := w.known[p].Load(); k != nil {
		return k
	}
	fresh := bitvec.NewAtomic(w.m)
	if w.known[p].CompareAndSwap(nil, &fresh) {
		return &fresh
	}
	return w.known[p].Load()
}

// Probe returns the true preference v(p)_o and charges one probe to player
// p unless p has probed o before (probing teaches the answer permanently,
// so only distinct objects count). It is safe and lock-free under
// concurrent use: the memo's CAS ensures exactly one caller charges each
// (player, object) pair, so probe counters are schedule-independent.
func (w *World) Probe(p, o int) bool {
	if !w.memo(p).TestAndSet(o) {
		w.probes[p].Add(1)
	}
	if w.truth != nil {
		return w.truth[p].Get(o)
	}
	return w.src.TruthBit(p, o)
}

// ProbeWords returns the number of 64-bit words spanning the object set:
// the word index range valid for ProbeWord. Object o lives in word o/64,
// bit o%64.
func (w *World) ProbeWords() int { return (w.m + 63) / 64 }

// ProbeWord probes, as player p, every object whose bit is set in mask
// within object word wi (object ids wi*64 … wi*64+63), and returns the
// true preference bits for exactly those objects. Bits of mask past the
// last object are ignored. It is the word-level Probe: one CAS marks all
// the mask's objects known and one atomic add charges popcount of the
// newly learned bits, so a full word costs the same two atomics a single
// bit used to — with per-player totals identical to bit-at-a-time Probe
// under every schedule (each (player, object) pair is charged exactly
// once, by whichever caller's CAS learns it first).
func (w *World) ProbeWord(p, wi int, mask uint64) uint64 {
	mask &= w.wordMask(wi)
	if nb := w.memo(p).OrWord(wi, mask); nb != 0 {
		w.probes[p].Add(int64(bits.OnesCount64(nb)))
	}
	if w.truth != nil {
		return w.truth[p].Word(wi) & mask
	}
	return w.src.TruthWord(p, wi) & mask
}

// wordMask returns the valid-bit mask for object word wi, panicking on an
// out-of-range index like bitvec.Vector.WordMask does — representation-
// independent, so dense and lazy worlds fail identically.
func (w *World) wordMask(wi int) uint64 {
	if wi < 0 || wi >= w.words {
		panic(fmt.Sprintf("bitvec: word %d out of range [0,%d)", wi, w.words))
	}
	if wi == w.words-1 {
		return w.tailMask
	}
	return ^uint64(0)
}

// ProbeVector probes, as player p, every object in objs and returns the
// true preferences as a vector indexed like objs (bit j is the truth for
// objs[j]). Runs of objects sharing a 64-bit word — the common case, since
// protocol object lists are sorted — collapse into single ProbeWord calls,
// and the only allocation is the returned vector. Probe charging is
// identical to calling Probe per object.
func (w *World) ProbeVector(p int, objs []int) bitvec.Vector {
	out := bitvec.New(len(objs))
	curW := -1
	var curMask uint64
	for _, o := range objs {
		if o < 0 || o >= w.m {
			panic(fmt.Sprintf("world: object %d out of range [0,%d)", o, w.m))
		}
		wi := o / 64
		if wi != curW {
			if curMask != 0 {
				w.ProbeWord(p, curW, curMask)
			}
			curW, curMask = wi, 0
		}
		curMask |= 1 << (uint(o) % 64)
	}
	if curMask != 0 {
		w.ProbeWord(p, curW, curMask)
	}
	if w.truth != nil {
		truth := w.truth[p]
		for j, o := range objs {
			if truth.Get(o) {
				out.Set(j, true)
			}
		}
		return out
	}
	for j, o := range objs {
		if w.src.TruthBit(p, o) {
			out.Set(j, true)
		}
	}
	return out
}

// PeekTruth returns v(p)_o without charging a probe. It exists for the
// full-information adversary and for measurement code; protocol logic must
// use Probe.
func (w *World) PeekTruth(p, o int) bool {
	if w.truth != nil {
		return w.truth[p].Get(o)
	}
	return w.src.TruthBit(p, o)
}

// TruthVector returns a copy of player p's full truth vector (measurement
// use only). For lazy sources this materializes the row.
func (w *World) TruthVector(p int) bitvec.Vector { return prefgen.Materialize(w.src, p) }

// Source returns the world's truth source.
func (w *World) Source() prefgen.TruthSource { return w.src }

// SetBehavior installs a behavior for player p and marks it dishonest
// unless the behavior is Honest.
func (w *World) SetBehavior(p int, b Behavior) {
	w.behaviors[p] = b
	_, isHonest := b.(Honest)
	w.honest[p] = isHonest
}

// IsHonest reports whether player p follows the protocol.
func (w *World) IsHonest(p int) bool { return w.honest[p] }

// HonestPlayers returns the ids of all honest players, ascending.
func (w *World) HonestPlayers() []int {
	var out []int
	for p := 0; p < w.n; p++ {
		if w.honest[p] {
			out = append(out, p)
		}
	}
	return out
}

// DishonestPlayers returns the ids of all dishonest players, ascending.
func (w *World) DishonestPlayers() []int {
	var out []int
	for p := 0; p < w.n; p++ {
		if !w.honest[p] {
			out = append(out, p)
		}
	}
	return out
}

// NumDishonest returns the number of dishonest players.
func (w *World) NumDishonest() int {
	c := 0
	for _, h := range w.honest {
		if !h {
			c++
		}
	}
	return c
}

// Probes returns the number of probes charged to player p so far.
func (w *World) Probes(p int) int64 { return w.probes[p].Load() }

// MaxHonestProbes returns the maximum probe count over honest players —
// the paper's per-player probe complexity measure.
func (w *World) MaxHonestProbes() int64 {
	var mx int64
	for p := 0; p < w.n; p++ {
		if w.honest[p] {
			if c := w.probes[p].Load(); c > mx {
				mx = c
			}
		}
	}
	return mx
}

// TotalProbes returns the total probes charged across all players.
func (w *World) TotalProbes() int64 {
	var t int64
	for p := range w.probes {
		t += w.probes[p].Load()
	}
	return t
}

// ResetProbes zeroes all probe counters and forgets all memoized probes.
// It must not run concurrently with Probe calls (it is a between-runs
// operation, not a phase operation).
func (w *World) ResetProbes() {
	for p := range w.probes {
		w.probes[p].Store(0)
		if k := w.known[p].Load(); k != nil {
			k.Reset() // keep the allocation for pooled reuse
		}
	}
}

// HonestError returns, for honest player p, the Hamming distance between
// the supplied output vector (over all m objects) and p's truth. It panics
// if the lengths differ.
func (w *World) HonestError(p int, out bitvec.Vector) int {
	if w.truth != nil {
		return w.truth[p].Hamming(out)
	}
	if out.Len() != w.m {
		panic(fmt.Sprintf("bitvec: length mismatch %d vs %d", w.m, out.Len()))
	}
	d := 0
	for wi := 0; wi < w.words; wi++ {
		d += bits.OnesCount64(w.src.TruthWord(p, wi) ^ out.Word(wi))
	}
	return d
}
