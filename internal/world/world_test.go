package world

import (
	"sync"
	"testing"

	"collabscore/internal/bitvec"
	"collabscore/internal/par"
)

func twoByThree() *World {
	// 2 players, 3 objects
	return New([]bitvec.Vector{
		bitvec.FromBits([]int{1, 0, 1}),
		bitvec.FromBits([]int{0, 1, 1}),
	})
}

func TestProbeReturnsTruth(t *testing.T) {
	w := twoByThree()
	if !w.Probe(0, 0) || w.Probe(0, 1) || !w.Probe(0, 2) {
		t.Fatal("probe returned wrong truth for player 0")
	}
	if w.Probe(1, 0) || !w.Probe(1, 1) || !w.Probe(1, 2) {
		t.Fatal("probe returned wrong truth for player 1")
	}
}

func TestProbeAccountingDistinctObjects(t *testing.T) {
	w := twoByThree()
	w.Probe(0, 0)
	w.Probe(0, 0)
	w.Probe(0, 0)
	if w.Probes(0) != 1 {
		t.Fatalf("re-probing the same object charged %d probes, want 1", w.Probes(0))
	}
	w.Probe(0, 1)
	if w.Probes(0) != 2 {
		t.Fatalf("Probes = %d, want 2", w.Probes(0))
	}
	if w.Probes(1) != 0 {
		t.Fatal("probes leaked across players")
	}
}

func TestPeekTruthDoesNotCharge(t *testing.T) {
	w := twoByThree()
	w.PeekTruth(0, 0)
	w.PeekTruth(0, 1)
	if w.Probes(0) != 0 {
		t.Fatal("PeekTruth charged probes")
	}
}

func TestResetProbes(t *testing.T) {
	w := twoByThree()
	w.Probe(0, 0)
	w.ResetProbes()
	if w.Probes(0) != 0 {
		t.Fatal("ResetProbes did not zero counters")
	}
	w.Probe(0, 0)
	if w.Probes(0) != 1 {
		t.Fatal("probe memo not cleared by ResetProbes")
	}
}

func TestHonestByDefault(t *testing.T) {
	w := twoByThree()
	if !w.IsHonest(0) || !w.IsHonest(1) {
		t.Fatal("players not honest by default")
	}
	if w.NumDishonest() != 0 {
		t.Fatal("NumDishonest != 0 on fresh world")
	}
	if got := w.HonestPlayers(); len(got) != 2 {
		t.Fatalf("HonestPlayers = %v", got)
	}
}

type liar struct{}

func (liar) Report(rc *Run, p, o int) bool { return !rc.PeekTruth(p, o) }

func TestSetBehaviorMarksDishonest(t *testing.T) {
	w := twoByThree()
	w.SetBehavior(1, liar{})
	if w.IsHonest(1) {
		t.Fatal("SetBehavior(liar) left player honest")
	}
	if w.NumDishonest() != 1 {
		t.Fatalf("NumDishonest = %d, want 1", w.NumDishonest())
	}
	if got := w.DishonestPlayers(); len(got) != 1 || got[0] != 1 {
		t.Fatalf("DishonestPlayers = %v", got)
	}
	// Re-installing Honest restores honesty.
	w.SetBehavior(1, Honest{})
	if !w.IsHonest(1) {
		t.Fatal("SetBehavior(Honest) did not restore honesty")
	}
}

func TestReportHonestProbes(t *testing.T) {
	w := twoByThree()
	v := NewRun(w).Report(0, 0)
	if !v {
		t.Fatal("honest report returned wrong value")
	}
	if w.Probes(0) != 1 {
		t.Fatal("honest report did not charge a probe")
	}
}

func TestReportDishonestLies(t *testing.T) {
	w := twoByThree()
	w.SetBehavior(0, liar{})
	if NewRun(w).Report(0, 0) {
		t.Fatal("liar told the truth")
	}
	if w.Probes(0) != 0 {
		t.Fatal("liar charged a probe")
	}
}

func TestReportVector(t *testing.T) {
	w := twoByThree()
	v := NewRun(w).ReportVector(0, []int{2, 0})
	// objs[0]=2 → truth 1; objs[1]=0 → truth 1
	if !v.Get(0) || !v.Get(1) || v.Len() != 2 {
		t.Fatalf("ReportVector = %v", v)
	}
	if w.Probes(0) != 2 {
		t.Fatalf("ReportVector charged %d probes, want 2", w.Probes(0))
	}
}

func TestHonestError(t *testing.T) {
	w := twoByThree()
	out := bitvec.FromBits([]int{1, 1, 1}) // truth for p0 is 101
	if e := w.HonestError(0, out); e != 1 {
		t.Fatalf("HonestError = %d, want 1", e)
	}
}

func TestMaxHonestProbesIgnoresDishonest(t *testing.T) {
	w := twoByThree()
	w.SetBehavior(1, liar{})
	w.Probe(1, 0)
	w.Probe(1, 1)
	w.Probe(0, 0)
	if got := w.MaxHonestProbes(); got != 1 {
		t.Fatalf("MaxHonestProbes = %d, want 1", got)
	}
	if w.TotalProbes() != 3 {
		t.Fatalf("TotalProbes = %d, want 3", w.TotalProbes())
	}
}

func TestConcurrentProbes(t *testing.T) {
	n, m := 4, 512
	truth := make([]bitvec.Vector, n)
	for p := range truth {
		truth[p] = bitvec.New(m)
	}
	w := New(truth)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for p := 0; p < n; p++ {
				for o := 0; o < m; o++ {
					w.Probe(p, o)
				}
			}
		}()
	}
	wg.Wait()
	for p := 0; p < n; p++ {
		if w.Probes(p) != int64(m) {
			t.Fatalf("player %d charged %d probes, want %d", p, w.Probes(p), m)
		}
	}
}

func TestRunExec(t *testing.T) {
	w := twoByThree()
	if NewRun(w).Exec() == nil || NewRun(w).Exec().IsSerial() {
		t.Fatal("default run executor must be non-nil and parallel")
	}
	if !NewRunOn(w, par.Serial()).Exec().IsSerial() {
		t.Fatal("NewRunOn(Serial) executor not serial")
	}
	if NewRunOn(w, nil).Exec() == nil {
		t.Fatal("NewRunOn(nil) must fall back to the parallel executor")
	}
}

// TestProbeChargesOnceUnderContention hammers the same few (player, object)
// cells from fixed-width workers: the CAS memo must charge each distinct
// cell exactly once regardless of interleaving (run under -race).
func TestProbeChargesOnceUnderContention(t *testing.T) {
	const n, m, distinct = 2, 256, 64
	truth := make([]bitvec.Vector, n)
	for p := range truth {
		truth[p] = bitvec.New(m)
	}
	w := New(truth)
	par.Fixed(8).For(8*n*distinct, func(i int) {
		j := i % (n * distinct)
		w.Probe(j/distinct, (j%distinct)*3)
	})
	for p := 0; p < n; p++ {
		if w.Probes(p) != distinct {
			t.Fatalf("player %d charged %d probes, want %d", p, w.Probes(p), distinct)
		}
	}
}

func TestPublicSample(t *testing.T) {
	rc := NewRun(twoByThree())
	if rc.Pub.HasSample() {
		t.Fatal("fresh run has a sample")
	}
	rc.Pub.SetSample([]int{0, 2})
	if !rc.Pub.HasSample() || !rc.Pub.InSample(0) || rc.Pub.InSample(1) || !rc.Pub.InSample(2) {
		t.Fatal("sample membership wrong")
	}
	rc.Pub.SetSample(nil)
	if rc.Pub.HasSample() || rc.Pub.InSample(0) {
		t.Fatal("clearing sample failed")
	}
}

func TestRunsAreIndependent(t *testing.T) {
	w := twoByThree()
	a, b := NewRun(w), NewRun(w)
	a.Pub.SetSample([]int{1})
	a.Pub.Phase = "workshare"
	if b.Pub.HasSample() || b.Pub.Phase != "" {
		t.Fatal("published state leaked between runs over one world")
	}
	if a.N() != w.N() || a.M() != w.M() {
		t.Fatal("run does not expose the embedded world")
	}
}

func TestNewValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for ragged truth")
		}
	}()
	New([]bitvec.Vector{bitvec.New(3), bitvec.New(4)})
}

func TestTruthVectorIsCopy(t *testing.T) {
	w := twoByThree()
	v := w.TruthVector(0)
	v.Flip(0)
	if !w.PeekTruth(0, 0) {
		t.Fatal("TruthVector shares storage with world truth")
	}
}
