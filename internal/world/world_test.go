package world

import (
	"sync"
	"testing"

	"collabscore/internal/bitvec"
	"collabscore/internal/par"
)

func twoByThree() *World {
	// 2 players, 3 objects
	return New([]bitvec.Vector{
		bitvec.FromBits([]int{1, 0, 1}),
		bitvec.FromBits([]int{0, 1, 1}),
	})
}

func TestProbeReturnsTruth(t *testing.T) {
	w := twoByThree()
	if !w.Probe(0, 0) || w.Probe(0, 1) || !w.Probe(0, 2) {
		t.Fatal("probe returned wrong truth for player 0")
	}
	if w.Probe(1, 0) || !w.Probe(1, 1) || !w.Probe(1, 2) {
		t.Fatal("probe returned wrong truth for player 1")
	}
}

func TestProbeAccountingDistinctObjects(t *testing.T) {
	w := twoByThree()
	w.Probe(0, 0)
	w.Probe(0, 0)
	w.Probe(0, 0)
	if w.Probes(0) != 1 {
		t.Fatalf("re-probing the same object charged %d probes, want 1", w.Probes(0))
	}
	w.Probe(0, 1)
	if w.Probes(0) != 2 {
		t.Fatalf("Probes = %d, want 2", w.Probes(0))
	}
	if w.Probes(1) != 0 {
		t.Fatal("probes leaked across players")
	}
}

func TestPeekTruthDoesNotCharge(t *testing.T) {
	w := twoByThree()
	w.PeekTruth(0, 0)
	w.PeekTruth(0, 1)
	if w.Probes(0) != 0 {
		t.Fatal("PeekTruth charged probes")
	}
}

func TestResetProbes(t *testing.T) {
	w := twoByThree()
	w.Probe(0, 0)
	w.ResetProbes()
	if w.Probes(0) != 0 {
		t.Fatal("ResetProbes did not zero counters")
	}
	w.Probe(0, 0)
	if w.Probes(0) != 1 {
		t.Fatal("probe memo not cleared by ResetProbes")
	}
}

func TestHonestByDefault(t *testing.T) {
	w := twoByThree()
	if !w.IsHonest(0) || !w.IsHonest(1) {
		t.Fatal("players not honest by default")
	}
	if w.NumDishonest() != 0 {
		t.Fatal("NumDishonest != 0 on fresh world")
	}
	if got := w.HonestPlayers(); len(got) != 2 {
		t.Fatalf("HonestPlayers = %v", got)
	}
}

type liar struct{}

func (liar) Report(rc *Run, p, o int) bool { return !rc.PeekTruth(p, o) }

func TestSetBehaviorMarksDishonest(t *testing.T) {
	w := twoByThree()
	w.SetBehavior(1, liar{})
	if w.IsHonest(1) {
		t.Fatal("SetBehavior(liar) left player honest")
	}
	if w.NumDishonest() != 1 {
		t.Fatalf("NumDishonest = %d, want 1", w.NumDishonest())
	}
	if got := w.DishonestPlayers(); len(got) != 1 || got[0] != 1 {
		t.Fatalf("DishonestPlayers = %v", got)
	}
	// Re-installing Honest restores honesty.
	w.SetBehavior(1, Honest{})
	if !w.IsHonest(1) {
		t.Fatal("SetBehavior(Honest) did not restore honesty")
	}
}

func TestReportHonestProbes(t *testing.T) {
	w := twoByThree()
	v := NewRun(w).Report(0, 0)
	if !v {
		t.Fatal("honest report returned wrong value")
	}
	if w.Probes(0) != 1 {
		t.Fatal("honest report did not charge a probe")
	}
}

func TestReportDishonestLies(t *testing.T) {
	w := twoByThree()
	w.SetBehavior(0, liar{})
	if NewRun(w).Report(0, 0) {
		t.Fatal("liar told the truth")
	}
	if w.Probes(0) != 0 {
		t.Fatal("liar charged a probe")
	}
}

func TestReportVector(t *testing.T) {
	w := twoByThree()
	v := NewRun(w).ReportVector(0, []int{2, 0})
	// objs[0]=2 → truth 1; objs[1]=0 → truth 1
	if !v.Get(0) || !v.Get(1) || v.Len() != 2 {
		t.Fatalf("ReportVector = %v", v)
	}
	if w.Probes(0) != 2 {
		t.Fatalf("ReportVector charged %d probes, want 2", w.Probes(0))
	}
}

func TestHonestError(t *testing.T) {
	w := twoByThree()
	out := bitvec.FromBits([]int{1, 1, 1}) // truth for p0 is 101
	if e := w.HonestError(0, out); e != 1 {
		t.Fatalf("HonestError = %d, want 1", e)
	}
}

func TestMaxHonestProbesIgnoresDishonest(t *testing.T) {
	w := twoByThree()
	w.SetBehavior(1, liar{})
	w.Probe(1, 0)
	w.Probe(1, 1)
	w.Probe(0, 0)
	if got := w.MaxHonestProbes(); got != 1 {
		t.Fatalf("MaxHonestProbes = %d, want 1", got)
	}
	if w.TotalProbes() != 3 {
		t.Fatalf("TotalProbes = %d, want 3", w.TotalProbes())
	}
}

func TestConcurrentProbes(t *testing.T) {
	n, m := 4, 512
	truth := make([]bitvec.Vector, n)
	for p := range truth {
		truth[p] = bitvec.New(m)
	}
	w := New(truth)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for p := 0; p < n; p++ {
				for o := 0; o < m; o++ {
					w.Probe(p, o)
				}
			}
		}()
	}
	wg.Wait()
	for p := 0; p < n; p++ {
		if w.Probes(p) != int64(m) {
			t.Fatalf("player %d charged %d probes, want %d", p, w.Probes(p), m)
		}
	}
}

func TestRunExec(t *testing.T) {
	w := twoByThree()
	if NewRun(w).Exec() == nil || NewRun(w).Exec().IsSerial() {
		t.Fatal("default run executor must be non-nil and parallel")
	}
	if !NewRunOn(w, par.Serial()).Exec().IsSerial() {
		t.Fatal("NewRunOn(Serial) executor not serial")
	}
	if NewRunOn(w, nil).Exec() == nil {
		t.Fatal("NewRunOn(nil) must fall back to the parallel executor")
	}
}

// TestProbeChargesOnceUnderContention hammers the same few (player, object)
// cells from fixed-width workers: the CAS memo must charge each distinct
// cell exactly once regardless of interleaving (run under -race).
func TestProbeChargesOnceUnderContention(t *testing.T) {
	const n, m, distinct = 2, 256, 64
	truth := make([]bitvec.Vector, n)
	for p := range truth {
		truth[p] = bitvec.New(m)
	}
	w := New(truth)
	par.Fixed(8).For(8*n*distinct, func(i int) {
		j := i % (n * distinct)
		w.Probe(j/distinct, (j%distinct)*3)
	})
	for p := 0; p < n; p++ {
		if w.Probes(p) != distinct {
			t.Fatalf("player %d charged %d probes, want %d", p, w.Probes(p), distinct)
		}
	}
}

func TestPublicSample(t *testing.T) {
	rc := NewRun(twoByThree())
	if rc.Pub.HasSample() {
		t.Fatal("fresh run has a sample")
	}
	rc.Pub.SetSample([]int{0, 2})
	if !rc.Pub.HasSample() || !rc.Pub.InSample(0) || rc.Pub.InSample(1) || !rc.Pub.InSample(2) {
		t.Fatal("sample membership wrong")
	}
	rc.Pub.SetSample(nil)
	if rc.Pub.HasSample() || rc.Pub.InSample(0) {
		t.Fatal("clearing sample failed")
	}
}

func TestRunsAreIndependent(t *testing.T) {
	w := twoByThree()
	a, b := NewRun(w), NewRun(w)
	a.Pub.SetSample([]int{1})
	a.Pub.Phase = "workshare"
	if b.Pub.HasSample() || b.Pub.Phase != "" {
		t.Fatal("published state leaked between runs over one world")
	}
	if a.N() != w.N() || a.M() != w.M() {
		t.Fatal("run does not expose the embedded world")
	}
}

func TestNewValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for ragged truth")
		}
	}()
	New([]bitvec.Vector{bitvec.New(3), bitvec.New(4)})
}

func TestTruthVectorIsCopy(t *testing.T) {
	w := twoByThree()
	v := w.TruthVector(0)
	v.Flip(0)
	if !w.PeekTruth(0, 0) {
		t.Fatal("TruthVector shares storage with world truth")
	}
}

// randTruth builds an n×m truth matrix from a cheap deterministic hash.
func randTruth(n, m int, seed uint64) []bitvec.Vector {
	truth := make([]bitvec.Vector, n)
	s := seed
	for p := range truth {
		v := bitvec.New(m)
		for o := 0; o < m; o++ {
			s = s*6364136223846793005 + 1442695040888963407
			if s>>60&1 == 1 {
				v.Set(o, true)
			}
		}
		truth[p] = v
	}
	return truth
}

// TestProbeWordMatchesProbe: the word-level probe must return the same
// truth bits and charge the same per-player totals as bit-at-a-time Probe,
// including across overlapping masks and the word-boundary tail.
func TestProbeWordMatchesProbe(t *testing.T) {
	const n, m = 4, 130
	wordW := New(randTruth(n, m, 7))
	bitW := New(randTruth(n, m, 7))
	masks := []struct {
		wi   int
		mask uint64
	}{
		{0, 0xF0F0F0F0F0F0F0F0},
		{0, 0x00000000FFFFFFFF}, // overlaps the first mask
		{1, ^uint64(0)},
		{2, ^uint64(0)}, // tail word: only 2 bits are valid
		{2, 0b01},       // already-known tail bit: charges nothing
	}
	for p := 0; p < n; p++ {
		for _, mk := range masks {
			got := wordW.ProbeWord(p, mk.wi, mk.mask)
			var want uint64
			base := mk.wi * 64
			for b := 0; b < 64; b++ {
				o := base + b
				if mk.mask&(1<<uint(b)) == 0 || o >= m {
					continue
				}
				if bitW.Probe(p, o) {
					want |= 1 << uint(b)
				}
			}
			if got != want {
				t.Fatalf("p=%d word %d mask %#x: ProbeWord = %#x, want %#x", p, mk.wi, mk.mask, got, want)
			}
			if wordW.Probes(p) != bitW.Probes(p) {
				t.Fatalf("p=%d after word %d: charges %d (word) vs %d (bit)", p, mk.wi, wordW.Probes(p), bitW.Probes(p))
			}
		}
	}
}

// TestProbeWordConcurrentCharging: under real goroutine interleavings with
// overlapping word masks, every (player, object) pair must be charged
// exactly once — the schedule-independence half of the bulk-probe contract.
func TestProbeWordConcurrentCharging(t *testing.T) {
	const n, m = 2, 1024
	w := New(randTruth(n, m, 13))
	// 8 workers repeatedly probe overlapping words bit-wise and word-wise.
	par.Fixed(8).For(8*w.ProbeWords(), func(i int) {
		wi := i % w.ProbeWords()
		switch i % 3 {
		case 0:
			w.ProbeWord(0, wi, ^uint64(0))
		case 1:
			w.ProbeWord(0, wi, 0xAAAAAAAAAAAAAAAA)
		default:
			for b := 0; b < 64 && wi*64+b < m; b += 7 {
				w.Probe(0, wi*64+b)
			}
		}
	})
	if got := w.Probes(0); got != m {
		t.Fatalf("player 0 charged %d probes, want exactly %d", got, m)
	}
	if got := w.Probes(1); got != 0 {
		t.Fatalf("player 1 charged %d probes, want 0", got)
	}
}

// TestProbeVectorMatchesReportVector: the bulk vector probe must agree
// with per-object probing on scattered, unsorted object lists, and charge
// identically.
func TestProbeVectorMatchesReportVector(t *testing.T) {
	const n, m = 3, 300
	bulkW := New(randTruth(n, m, 21))
	bitW := New(randTruth(n, m, 21))
	objs := []int{5, 6, 7, 64, 65, 130, 2, 299, 131, 64} // repeats and jumps
	for p := 0; p < n; p++ {
		got := bulkW.ProbeVector(p, objs)
		want := bitvec.New(len(objs))
		for j, o := range objs {
			if bitW.Probe(p, o) {
				want.Set(j, true)
			}
		}
		if !got.Equal(want) {
			t.Fatalf("p=%d: ProbeVector = %v, want %v", p, got, want)
		}
		if bulkW.Probes(p) != bitW.Probes(p) {
			t.Fatalf("p=%d: charges %d (bulk) vs %d (bit)", p, bulkW.Probes(p), bitW.Probes(p))
		}
	}
}

// TestProbeWordAllocFree: the bulk-probe hot path must not allocate
// (satellite regression guard).
func TestProbeWordAllocFree(t *testing.T) {
	w := New(randTruth(2, 4096, 3))
	var sink uint64
	wi := 0
	if n := testing.AllocsPerRun(200, func() {
		sink += w.ProbeWord(0, wi%w.ProbeWords(), ^uint64(0))
		wi++
	}); n != 0 {
		t.Fatalf("ProbeWord allocates %v times per run", n)
	}
	_ = sink
}

// TestReportWordHonestAndDishonest: honest players ride the bulk path;
// dishonest reports still flow through their behavior per object.
func TestReportWordHonestAndDishonest(t *testing.T) {
	w := New(randTruth(2, 100, 5))
	w.SetBehavior(1, flipBehavior{})
	rc := NewRun(w)
	gotHonest := rc.ReportWord(0, 0, ^uint64(0))
	if want := w.truth[0].Word(0); gotHonest != want {
		t.Fatalf("honest ReportWord = %#x, want truth %#x", gotHonest, want)
	}
	gotLiar := rc.ReportWord(1, 0, ^uint64(0))
	if want := ^w.truth[1].Word(0) & w.truth[1].WordMask(0); gotLiar != want {
		t.Fatalf("dishonest ReportWord = %#x, want flipped %#x", gotLiar, want)
	}
	if w.Probes(1) != 0 {
		t.Fatalf("liar charged %d probes", w.Probes(1))
	}
}

// flipBehavior reports the opposite of the truth without probing.
type flipBehavior struct{}

func (flipBehavior) Report(rc *Run, p, o int) bool { return !rc.PeekTruth(p, o) }

// rows builds an n×m truth matrix whose bits derive from seed.
func rows(n, m int, seed uint64) []bitvec.Vector {
	out := make([]bitvec.Vector, n)
	for p := range out {
		v := bitvec.New(m)
		for o := 0; o < m; o++ {
			if (uint64(p)*31+uint64(o)*7+seed)%3 == 0 {
				v.Set(o, true)
			}
		}
		out[p] = v
	}
	return out
}

// TestRenewMatchesNew: a renewed world is observationally identical to a
// fresh one — roles, counters, memos all reset — while reusing storage at
// a stable shape, and falling back to allocation on shape changes.
func TestRenewMatchesNew(t *testing.T) {
	truthA := rows(8, 16, 3)
	truthB := rows(8, 16, 4)

	w := New(truthA)
	w.SetBehavior(2, ZeroSpam{})
	w.Probe(1, 5)
	w.Probe(1, 5)
	if w.Probes(1) != 1 {
		t.Fatalf("probes = %d", w.Probes(1))
	}

	renewed := Renew(w, truthB)
	if renewed != w {
		t.Fatal("same-shape Renew should reuse the World")
	}
	for p := 0; p < renewed.N(); p++ {
		if !renewed.IsHonest(p) {
			t.Fatalf("player %d still dishonest after Renew", p)
		}
		if renewed.Probes(p) != 0 {
			t.Fatalf("player %d keeps %d probes after Renew", p, renewed.Probes(p))
		}
	}
	// The memo was cleared: re-probing charges again.
	renewed.Probe(1, 5)
	if renewed.Probes(1) != 1 {
		t.Fatalf("memo survived Renew: probes = %d", renewed.Probes(1))
	}
	if renewed.PeekTruth(0, 0) != truthB[0].Get(0) {
		t.Fatal("Renew did not install the new truth")
	}

	// Shape change falls back to New.
	grown := Renew(renewed, rows(10, 16, 5))
	if grown == renewed {
		t.Fatal("shape-changing Renew must allocate a fresh World")
	}
	if Renew(nil, truthA) == nil {
		t.Fatal("nil Renew must allocate")
	}
}

// ZeroSpam-equivalent test behavior for Renew (world_test is package world;
// keep the dependency local).
type ZeroSpam struct{}

func (ZeroSpam) Report(_ *Run, _, _ int) bool { return false }
