// Package budgets implements the §8 extension of the paper: players with
// heterogeneous probing budgets. Some players are willing to probe a large
// number B_big of objects, others only a small number B_small; the paper
// sketches that "each cluster must be chosen to contain a sufficient total
// number of queries among all the members".
//
// This package realizes that sketch on top of the binary substrate:
//
//   - each player carries a capacity (its willingness to probe);
//   - the neighbor graph and peeling are unchanged, but a peeled set only
//     becomes a cluster once its TOTAL capacity reaches the work it must
//     absorb (redundancy · m probes), instead of once it reaches n/B
//     members;
//   - the work-sharing phase assigns probers with probability proportional
//     to capacity, so each player's expected probe count is proportional to
//     what it volunteered.
//
// The accuracy analysis is untouched (cluster diameter still comes from the
// edge threshold; majorities still ≥2/3 honest under the same corruption
// cap), while the probe loads become capacity-weighted.
package budgets

import (
	"math"

	"collabscore/internal/bitvec"
	"collabscore/internal/cluster"
	"collabscore/internal/par"
	"collabscore/internal/smallradius"
	"collabscore/internal/world"
	"collabscore/internal/xrand"
)

// Params configures the heterogeneous-budget protocol.
type Params struct {
	// Capacity[p] is the number of probes player p volunteers (its
	// personal budget). Must be positive for every player.
	Capacity []int
	// SampleFactor / EdgeFactor / RedundancyFactor mirror core.Params.
	SampleFactor     float64
	EdgeFactor       float64
	RedundancyFactor float64
	// SR configures the SmallRadius run on the sample set; its budget
	// parameter is derived from the mean capacity.
	SR smallradius.Params
	// MinD/MaxD restrict the diameter guesses.
	MinD, MaxD int

	// NeighborIndex selects the neighbor-discovery implementation of the
	// clustering step, mirroring core.Params.NeighborIndex: zero value is
	// the exact all-pairs sweep (byte-identical to the pre-seam behavior),
	// Kind "lsh" the banding index (DESIGN.md §13).
	NeighborIndex cluster.IndexSpec

	// PhaseSerial forces the protocol's phase loops onto the
	// single-threaded reference schedule; PhaseWorkers, when positive and
	// PhaseSerial is unset, pins them to exactly that many workers. The
	// flags mirror core.Params (DESIGN.md §9): phase loops fan out on
	// pre-split streams with index-ordered merges, so fixed-seed output is
	// byte-identical under every schedule.
	PhaseSerial  bool
	PhaseWorkers int

	// PeelSerial forces the capacity peel onto the verbatim greedy loop
	// (buildByCapacity) instead of the batched peel
	// (cluster.BuildByWeightOn); the two are pinned byte-identical, so
	// this mirrors core.Params.PeelSerial as a pure execution knob
	// (DESIGN.md §17).
	PeelSerial bool
}

// Scaled returns simulation-scale parameters with the given capacities.
func Scaled(n int, capacity []int) Params {
	return Params{
		Capacity:         capacity,
		SampleFactor:     1,
		EdgeFactor:       4,
		RedundancyFactor: 1.5,
		SR:               smallradius.Scaled(n),
	}
}

// Uniform returns a capacity vector with every player at c.
func Uniform(n, c int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = c
	}
	return out
}

// TwoTier returns a capacity vector where a fraction bigFrac of players
// volunteer bigCap probes and the rest smallCap, assigned by the stream.
func TwoTier(rng *xrand.Stream, n, smallCap, bigCap int, bigFrac float64) []int {
	out := make([]int, n)
	for i := range out {
		if rng.Bernoulli(bigFrac) {
			out[i] = bigCap
		} else {
			out[i] = smallCap
		}
	}
	return out
}

// Result is the protocol output plus capacity bookkeeping.
type Result struct {
	Output []bitvec.Vector
	// ClusterCapacity[j] is the total capacity of cluster j in the last
	// diameter guess that formed clusters.
	ClusterCapacity []int
	NumClusters     int
}

// meanCapacity returns the average capacity, at least 1.
func meanCapacity(capacity []int) int {
	if len(capacity) == 0 {
		return 1
	}
	t := 0
	for _, c := range capacity {
		t += c
	}
	m := t / len(capacity)
	if m < 1 {
		m = 1
	}
	return m
}

// Run executes the capacity-aware protocol: diameter doubling, sampling,
// SmallRadius on the sample, capacity-validated clustering, and
// capacity-weighted work sharing, with a final RSelect-style spot check.
func Run(w *world.World, shared *xrand.Stream, pr Params) *Result {
	n, m := w.N(), w.M()
	if len(pr.Capacity) != n {
		panic("budgets: capacity vector must have one entry per player")
	}
	lnn := math.Log(float64(n))
	if lnn < 1 {
		lnn = 1
	}
	red := int(math.Ceil(pr.RedundancyFactor * lnn))
	if red < 3 {
		red = 3
	}
	res := &Result{}
	rc := world.NewRunOn(w, par.Sched(pr.PhaseSerial, pr.PhaseWorkers))
	lo, hi := pr.MinD, pr.MaxD
	if lo <= 0 {
		lo = 1
	}
	if hi <= 0 {
		hi = n
	}
	var candidates [][]bitvec.Vector
	gi := 0
	for d := 1; d <= n; d *= 2 {
		if d < lo || d > hi {
			continue
		}
		iterRng := shared.Split(uint64(gi), uint64(d))
		gi++
		out := runIteration(rc, d, red, lnn, iterRng, pr, res)
		candidates = append(candidates, out)
	}
	if len(candidates) == 0 {
		res.Output = zeroOutputs(n, m)
		return res
	}
	res.Output = par.MapOn(rc.Exec(), n, func(p int) bitvec.Vector {
		if !w.IsHonest(p) {
			return bitvec.New(m)
		}
		if len(candidates) == 1 {
			return candidates[0][p]
		}
		// Spot-check selection among guesses (RSelect analogue).
		rng := shared.Split(0xFE11, uint64(p))
		check := rng.Sample(m, minInt(m, 8*int(lnn)))
		best, bestScore := 0, -1
		for ci := range candidates {
			score := 0
			for _, o := range check {
				if w.Probe(p, o) == candidates[ci][p].Get(o) {
					score++
				}
			}
			if score > bestScore {
				best, bestScore = ci, score
			}
		}
		return candidates[best][p]
	})
	return res
}

func zeroOutputs(n, m int) []bitvec.Vector {
	out := make([]bitvec.Vector, n)
	for p := range out {
		out[p] = bitvec.New(m)
	}
	return out
}

func runIteration(rc *world.Run, d, red int, lnn float64, shared *xrand.Stream, pr Params, res *Result) []bitvec.Vector {
	n, m := rc.N(), rc.M()

	// Sample and estimate sample preferences (same machinery as core).
	rate := pr.SampleFactor * lnn / float64(d)
	if rate > 1 {
		rate = 1
	}
	rc.Pub.Phase = "sample"
	sample := shared.Split(0x5A).BernoulliSubset(m, rate)
	if len(sample) == 0 {
		sample = []int{0}
	}
	rc.Pub.SetSample(sample)
	rc.Pub.Phase = "smallradius"
	srBudget := maxInt(1, n/maxInt(1, m*red/maxInt(1, meanCapacity(pr.Capacity))))
	zMap := smallradius.Run(rc, sample, int(math.Ceil(2*lnn)), srBudget, shared.Split(0x5B), pr.SR)
	z := make([]bitvec.Vector, n)
	for p := 0; p < n; p++ {
		z[p] = zMap[p]
	}

	// Neighbor graph as in core, through the NeighborIndex seam (the index
	// stream split is a pure read of the shared coins, so the default exact
	// path consumes exactly the coins it always did).
	g := pr.NeighborIndex.BuildGraph(rc.Exec(), z, int(math.Ceil(pr.EdgeFactor*lnn)), shared.Split(0x5D))

	// Capacity-validated peeling: a seed player and its alive neighbors
	// form a cluster only when their total capacity can absorb the work.
	// The batched peel prescans the capacity sums on the run's executor;
	// PeelSerial selects the verbatim greedy loop it is pinned
	// byte-identical to.
	needed := m * red // total probes the cluster must provide
	var cl *cluster.Clustering
	if pr.PeelSerial {
		cl = buildByCapacity(g, pr.Capacity, needed)
	} else {
		cl = cluster.BuildByWeightOn(rc.Exec(), g, pr.Capacity, needed)
	}
	res.NumClusters = len(cl.Clusters)
	res.ClusterCapacity = res.ClusterCapacity[:0]
	for _, members := range cl.Clusters {
		t := 0
		for _, p := range members {
			t += pr.Capacity[p]
		}
		res.ClusterCapacity = append(res.ClusterCapacity, t)
	}
	rc.Pub.Clusters = cl.Clusters

	// Capacity-weighted work sharing.
	rc.Pub.Phase = "workshare"
	out := zeroOutputs(n, m)
	for j, members := range cl.Clusters {
		clusterRng := shared.Split(0x5C, uint64(j))
		// Build the sampling weights once per cluster.
		weights := make([]int, len(members))
		total := 0
		for i, p := range members {
			total += pr.Capacity[p]
			weights[i] = total
		}
		bits := par.MapOn(rc.Exec(), m, func(o int) bool {
			rng := clusterRng.Split(uint64(o))
			ones, zeros := 0, 0
			for i := 0; i < red; i++ {
				q := members[weightedPick(rng, weights, total)]
				if rc.Report(q, o) {
					ones++
				} else {
					zeros++
				}
			}
			return ones > zeros
		})
		maj := bitvec.New(m)
		for o, b := range bits {
			if b {
				maj.Set(o, true)
			}
		}
		// Every member shares the cluster's one immutable majority vector —
		// candidates are never mutated downstream, so a per-member clone
		// would be pure allocation (the same sharing as core's workshare).
		for _, p := range members {
			out[p] = maj
		}
	}
	rc.Pub.SetSample(nil)
	rc.Pub.Clusters = nil
	rc.Pub.Phase = ""
	return out
}

// weightedPick returns an index into the cumulative weight table.
func weightedPick(rng *xrand.Stream, cumWeights []int, total int) int {
	x := rng.Intn(total)
	lo, hi := 0, len(cumWeights)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if cumWeights[mid] <= x {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// buildByCapacity peels clusters like §6.5 but admits a seed's neighborhood
// as a cluster only when its total capacity reaches needed. It is the
// verbatim serial reference the batched cluster.BuildByWeightOn is pinned
// byte-identical to (Params.PeelSerial selects it).
func buildByCapacity(g cluster.Graph, capacity []int, needed int) *cluster.Clustering {
	n := g.N()
	alive := make([]bool, n)
	for i := range alive {
		alive[i] = true
	}
	of := make([]int, n)
	for i := range of {
		of[i] = -1
	}
	var clusters [][]int
	// Like cluster.Build's peel, the scan keeps a monotone cursor: peeling
	// only removes players, so a surviving neighborhood's capacity sum can
	// only shrink and a once-rejected seed can never later qualify. The
	// neighbor scans walk the adjacency words in place (VisitNeighbors)
	// instead of materializing a slice per candidate seed.
	cursor := 0
	for {
		found := -1
		for p := cursor; p < n; p++ {
			if !alive[p] {
				continue
			}
			capSum := capacity[p]
			g.VisitNeighbors(p, func(q int) bool {
				if alive[q] {
					capSum += capacity[q]
				}
				return true
			})
			if capSum >= needed {
				found = p
				break
			}
		}
		if found < 0 {
			break
		}
		cursor = found + 1
		members := []int{found}
		g.VisitNeighbors(found, func(q int) bool {
			if alive[q] {
				members = append(members, q)
			}
			return true
		})
		j := len(clusters)
		for _, q := range members {
			alive[q] = false
			of[q] = j
		}
		clusters = append(clusters, members)
	}
	// Attach leftovers to a neighbor's cluster (they add capacity for free).
	// Attachment only writes of[p] — nothing reads alive after the peel,
	// and attachment eligibility is of[q] < 0, so attached players need no
	// alive update (mirrors cluster.Build's attachment phase).
	for p := 0; p < n; p++ {
		if !alive[p] {
			continue
		}
		g.VisitNeighbors(p, func(q int) bool {
			if of[q] < 0 {
				return true
			}
			of[p] = of[q]
			clusters[of[q]] = append(clusters[of[q]], p)
			return false
		})
	}
	return &cluster.Clustering{Clusters: clusters, Of: of}
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
