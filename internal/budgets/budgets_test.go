package budgets

import (
	"testing"
	"testing/quick"

	"collabscore/internal/bitvec"
	"collabscore/internal/cluster"
	"collabscore/internal/metrics"
	"collabscore/internal/prefgen"
	"collabscore/internal/world"
	"collabscore/internal/xrand"
)

func TestUniformCapacityMatchesCore(t *testing.T) {
	// Uniform capacities reduce to the homogeneous protocol: error O(D).
	const n, d = 512, 32
	rng := xrand.New(1)
	in := prefgen.DiameterClusters(rng.Split(1), n, n, 64, d)
	w := world.New(in.Truth)
	pr := Scaled(n, Uniform(n, 128))
	pr.MinD, pr.MaxD = d, d
	res := Run(w, rng.Split(2), pr)
	es := metrics.Error(w, res.Output)
	if es.Max > 2*d {
		t.Fatalf("max error %d > %d", es.Max, 2*d)
	}
	if res.NumClusters == 0 {
		t.Fatal("no clusters formed")
	}
}

func TestTwoTierAccuracy(t *testing.T) {
	const n, d = 512, 32
	rng := xrand.New(3)
	in := prefgen.DiameterClusters(rng.Split(1), n, n, 64, d)
	w := world.New(in.Truth)
	caps := TwoTier(rng.Split(5), n, 32, 512, 0.25)
	pr := Scaled(n, caps)
	pr.MinD, pr.MaxD = d, d
	res := Run(w, rng.Split(2), pr)
	es := metrics.Error(w, res.Output)
	if es.Max > 2*d {
		t.Fatalf("two-tier max error %d > %d", es.Max, 2*d)
	}
}

func TestLoadProportionalToCapacity(t *testing.T) {
	// Big-capacity players must carry substantially more of the probing
	// work than small-capacity players in the same cluster.
	const n, d = 512, 32
	rng := xrand.New(7)
	in := prefgen.DiameterClusters(rng.Split(1), n, n, 64, d)
	w := world.New(in.Truth)
	caps := TwoTier(rng.Split(5), n, 16, 256, 0.5)
	pr := Scaled(n, caps)
	pr.MinD, pr.MaxD = d, d
	Run(w, rng.Split(2), pr)
	var bigTotal, bigN, smallTotal, smallN int64
	for p := 0; p < n; p++ {
		if caps[p] == 256 {
			bigTotal += w.Probes(p)
			bigN++
		} else {
			smallTotal += w.Probes(p)
			smallN++
		}
	}
	bigMean := float64(bigTotal) / float64(bigN)
	smallMean := float64(smallTotal) / float64(smallN)
	if bigMean < 2*smallMean {
		t.Fatalf("big-capacity mean %.1f not ≫ small-capacity mean %.1f", bigMean, smallMean)
	}
}

func TestClusterCapacityMeetsNeed(t *testing.T) {
	const n, d = 512, 32
	rng := xrand.New(9)
	in := prefgen.DiameterClusters(rng.Split(1), n, n, 64, d)
	w := world.New(in.Truth)
	pr := Scaled(n, Uniform(n, 64))
	pr.MinD, pr.MaxD = d, d
	res := Run(w, rng.Split(2), pr)
	for j, c := range res.ClusterCapacity {
		if c <= 0 {
			t.Fatalf("cluster %d capacity %d", j, c)
		}
	}
}

func TestPanicsOnBadCapacity(t *testing.T) {
	rng := xrand.New(11)
	in := prefgen.Uniform(rng.Split(1), 16, 16)
	w := world.New(in.Truth)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for short capacity vector")
		}
	}()
	Run(w, rng.Split(2), Scaled(16, Uniform(8, 4)))
}

func TestWeightedPick(t *testing.T) {
	rng := xrand.New(13)
	// weights 1, 3 → cumulative [1, 4]; index 1 should win ~75%.
	counts := [2]int{}
	for i := 0; i < 10000; i++ {
		counts[weightedPick(rng, []int{1, 4}, 4)]++
	}
	frac := float64(counts[1]) / 10000
	if frac < 0.70 || frac > 0.80 {
		t.Fatalf("weighted pick fraction %.3f, want ≈0.75", frac)
	}
}

func TestTwoTierGenerator(t *testing.T) {
	caps := TwoTier(xrand.New(15), 1000, 8, 64, 0.3)
	big := 0
	for _, c := range caps {
		switch c {
		case 8:
		case 64:
			big++
		default:
			t.Fatalf("unexpected capacity %d", c)
		}
	}
	if big < 220 || big > 380 {
		t.Fatalf("big fraction %d/1000, want ≈300", big)
	}
}

// TestBudgetsScheduleMatrixMatches: the capacity-aware protocol's
// fixed-seed output and probe accounting are identical under the serial
// reference, a fixed-width, and the fully parallel phase schedule
// (PhaseSerial/PhaseWorkers mirror core.Params; DESIGN.md §9, §12).
func TestBudgetsScheduleMatrixMatches(t *testing.T) {
	const n, d = 256, 16
	schedules := []struct {
		name         string
		phaseSerial  bool
		phaseWorkers int
	}{
		{"serial", true, 0},
		{"fixed3", false, 3},
		{"parallel", false, 0},
	}
	rng := xrand.New(21)
	in := prefgen.DiameterClusters(rng.Split(1), n, n, 32, d)
	caps := TwoTier(rng.Split(5), n, 16, 128, 0.5)
	var refOut []bitvec.Vector
	var refProbes []int64
	for _, sched := range schedules {
		w := world.New(in.Truth)
		pr := Scaled(n, caps)
		pr.MinD, pr.MaxD = d, d
		pr.PhaseSerial = sched.phaseSerial
		pr.PhaseWorkers = sched.phaseWorkers
		res := Run(w, rng.Split(2), pr)
		probes := make([]int64, n)
		for p := 0; p < n; p++ {
			probes[p] = w.Probes(p)
		}
		if refOut == nil {
			refOut = res.Output
			refProbes = probes
			continue
		}
		for p := 0; p < n; p++ {
			if !res.Output[p].Equal(refOut[p]) {
				t.Fatalf("output for player %d differs under %s", p, sched.name)
			}
			if probes[p] != refProbes[p] {
				t.Fatalf("probes for player %d differ under %s: %d vs %d",
					p, sched.name, probes[p], refProbes[p])
			}
		}
	}
}

// TestPropertyBudgetsProbeConservation mirrors core's conservation
// property for the capacity-weighted path: across random capacity mixes
// and schedules, every (player, object) pair charges exactly once — the
// counters are schedule-independent, capped at m, and the aggregates match.
func TestPropertyBudgetsProbeConservation(t *testing.T) {
	if testing.Short() {
		t.Skip("property test")
	}
	f := func(seed uint64) bool {
		rng := xrand.New(seed)
		n := 96 + int(seed%2)*32
		const d = 16
		in := prefgen.DiameterClusters(rng.Split(1), n, n, n/8, d)
		caps := TwoTier(rng.Split(5), n, 8+int(seed%8), 64+int(seed%64), 0.25+float64(seed%2)/4)
		var refProbes []int64
		for _, sched := range []struct {
			phaseSerial  bool
			phaseWorkers int
		}{{true, 0}, {false, 3}, {false, 0}} {
			w := world.New(in.Truth)
			pr := Scaled(n, caps)
			pr.MinD, pr.MaxD = d, d
			pr.PhaseSerial = sched.phaseSerial
			pr.PhaseWorkers = sched.phaseWorkers
			Run(w, rng.Split(2), pr)
			var total, honestMax int64
			probes := make([]int64, n)
			for p := 0; p < n; p++ {
				probes[p] = w.Probes(p)
				if probes[p] < 0 || probes[p] > int64(n) {
					return false
				}
				total += probes[p]
				if w.IsHonest(p) && probes[p] > honestMax {
					honestMax = probes[p]
				}
			}
			if w.TotalProbes() != total || w.MaxHonestProbes() != honestMax {
				return false
			}
			if refProbes == nil {
				refProbes = probes
				continue
			}
			for p := 0; p < n; p++ {
				if probes[p] != refProbes[p] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5}); err != nil {
		t.Fatal(err)
	}
}

// TestMajorityVectorShared pins the allocation contract of the workshare:
// every member of a cluster shares the cluster's one immutable majority
// vector (no per-member clones).
func TestMajorityVectorShared(t *testing.T) {
	const n, d = 256, 16
	rng := xrand.New(31)
	in := prefgen.DiameterClusters(rng.Split(1), n, n, 32, d)
	w := world.New(in.Truth)
	pr := Scaled(n, Uniform(n, 128))
	pr.MinD, pr.MaxD = d, d
	res := Run(w, rng.Split(2), pr)
	shared := 0
	for p := 0; p < n; p++ {
		for q := p + 1; q < n; q++ {
			if bitvec.SameStorage(res.Output[p], res.Output[q]) {
				shared++
			}
		}
	}
	if shared == 0 {
		t.Fatal("no two cluster members share a majority vector — the clone removal regressed")
	}
}

// TestNeighborIndexLSHMatchesExact pins the seam on the budgets path: on a
// planted two-tier world at the paper-regime threshold, the banding index
// yields the identical outputs, cluster counts and capacities, and probe
// charges as the exact oracle.
func TestNeighborIndexLSHMatchesExact(t *testing.T) {
	const n, d = 512, 16
	rng := xrand.New(6)
	in := prefgen.DiameterClusters(rng.Split(1), n, n, 64, d)
	caps := TwoTier(rng.Split(2), n, 32, 512, 0.25)

	run := func(spec cluster.IndexSpec) (*Result, *world.World) {
		w := world.New(in.Truth)
		pr := Scaled(n, caps)
		pr.MinD, pr.MaxD = d, d
		pr.NeighborIndex = spec
		return Run(w, xrand.New(6).Split(3), pr), w
	}
	ref, refW := run(cluster.IndexSpec{})
	got, gotW := run(cluster.IndexSpec{Kind: "lsh"})

	if got.NumClusters != ref.NumClusters {
		t.Fatalf("LSH formed %d clusters, exact %d", got.NumClusters, ref.NumClusters)
	}
	if len(got.ClusterCapacity) != len(ref.ClusterCapacity) {
		t.Fatalf("cluster capacity lists differ in length")
	}
	for j := range ref.ClusterCapacity {
		if got.ClusterCapacity[j] != ref.ClusterCapacity[j] {
			t.Fatalf("cluster %d capacity %d (lsh) vs %d (exact)", j, got.ClusterCapacity[j], ref.ClusterCapacity[j])
		}
	}
	for p := 0; p < n; p++ {
		if got.Output[p].Hamming(ref.Output[p]) != 0 {
			t.Fatalf("player %d output differs between LSH and exact", p)
		}
		if gotW.Probes(p) != refW.Probes(p) {
			t.Fatalf("player %d probes %d (lsh) vs %d (exact)", p, gotW.Probes(p), refW.Probes(p))
		}
	}
}

// TestNeighborIndexSparseMatchesDense pins the graph representation on the
// budgets path (DESIGN.md §16): the capacity-aware peel fed a sparse CSR
// graph yields the identical outputs, cluster counts and capacities, and
// probe charges as the dense bitset, for both exact and LSH discovery.
func TestNeighborIndexSparseMatchesDense(t *testing.T) {
	const n, d = 512, 16
	rng := xrand.New(6)
	in := prefgen.DiameterClusters(rng.Split(1), n, n, 64, d)
	caps := TwoTier(rng.Split(2), n, 32, 512, 0.25)

	run := func(spec cluster.IndexSpec) (*Result, *world.World) {
		w := world.New(in.Truth)
		pr := Scaled(n, caps)
		pr.MinD, pr.MaxD = d, d
		pr.NeighborIndex = spec
		return Run(w, xrand.New(6).Split(3), pr), w
	}
	for _, kind := range []string{"", "lsh"} {
		ref, refW := run(cluster.IndexSpec{Kind: kind, Graph: "dense"})
		got, gotW := run(cluster.IndexSpec{Kind: kind, Graph: "sparse"})

		if got.NumClusters != ref.NumClusters {
			t.Fatalf("kind=%q: sparse formed %d clusters, dense %d", kind, got.NumClusters, ref.NumClusters)
		}
		if len(got.ClusterCapacity) != len(ref.ClusterCapacity) {
			t.Fatalf("kind=%q: cluster capacity lists differ in length", kind)
		}
		for j := range ref.ClusterCapacity {
			if got.ClusterCapacity[j] != ref.ClusterCapacity[j] {
				t.Fatalf("kind=%q: cluster %d capacity %d (sparse) vs %d (dense)",
					kind, j, got.ClusterCapacity[j], ref.ClusterCapacity[j])
			}
		}
		for p := 0; p < n; p++ {
			if got.Output[p].Hamming(ref.Output[p]) != 0 {
				t.Fatalf("kind=%q: player %d output differs between representations", kind, p)
			}
			if gotW.Probes(p) != refW.Probes(p) {
				t.Fatalf("kind=%q: player %d probes %d (sparse) vs %d (dense)",
					kind, p, gotW.Probes(p), refW.Probes(p))
			}
		}
	}
}

// TestLSHScheduleMatrix: the budgets protocol with the banding index is
// byte-identical across phase schedules, like every other configuration.
func TestLSHScheduleMatrix(t *testing.T) {
	const n, d = 256, 16
	rng := xrand.New(8)
	in := prefgen.DiameterClusters(rng.Split(1), n, n, 32, d)
	caps := TwoTier(rng.Split(2), n, 16, 256, 0.3)

	var ref *Result
	for _, sched := range []struct {
		serial  bool
		workers int
	}{{true, 0}, {false, 0}, {false, 3}} {
		w := world.New(in.Truth)
		pr := Scaled(n, caps)
		pr.MinD, pr.MaxD = d, d
		pr.NeighborIndex = cluster.IndexSpec{Kind: "lsh", Bands: 12, Rows: 10}
		pr.PhaseSerial = sched.serial
		pr.PhaseWorkers = sched.workers
		res := Run(w, xrand.New(8).Split(3), pr)
		if ref == nil {
			ref = res
			continue
		}
		for p := 0; p < n; p++ {
			if res.Output[p].Hamming(ref.Output[p]) != 0 {
				t.Fatalf("schedule %+v: player %d output differs from serial", sched, p)
			}
		}
	}
}
