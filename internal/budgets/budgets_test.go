package budgets

import (
	"testing"

	"collabscore/internal/metrics"
	"collabscore/internal/prefgen"
	"collabscore/internal/world"
	"collabscore/internal/xrand"
)

func TestUniformCapacityMatchesCore(t *testing.T) {
	// Uniform capacities reduce to the homogeneous protocol: error O(D).
	const n, d = 512, 32
	rng := xrand.New(1)
	in := prefgen.DiameterClusters(rng.Split(1), n, n, 64, d)
	w := world.New(in.Truth)
	pr := Scaled(n, Uniform(n, 128))
	pr.MinD, pr.MaxD = d, d
	res := Run(w, rng.Split(2), pr)
	es := metrics.Error(w, res.Output)
	if es.Max > 2*d {
		t.Fatalf("max error %d > %d", es.Max, 2*d)
	}
	if res.NumClusters == 0 {
		t.Fatal("no clusters formed")
	}
}

func TestTwoTierAccuracy(t *testing.T) {
	const n, d = 512, 32
	rng := xrand.New(3)
	in := prefgen.DiameterClusters(rng.Split(1), n, n, 64, d)
	w := world.New(in.Truth)
	caps := TwoTier(rng.Split(5), n, 32, 512, 0.25)
	pr := Scaled(n, caps)
	pr.MinD, pr.MaxD = d, d
	res := Run(w, rng.Split(2), pr)
	es := metrics.Error(w, res.Output)
	if es.Max > 2*d {
		t.Fatalf("two-tier max error %d > %d", es.Max, 2*d)
	}
}

func TestLoadProportionalToCapacity(t *testing.T) {
	// Big-capacity players must carry substantially more of the probing
	// work than small-capacity players in the same cluster.
	const n, d = 512, 32
	rng := xrand.New(7)
	in := prefgen.DiameterClusters(rng.Split(1), n, n, 64, d)
	w := world.New(in.Truth)
	caps := TwoTier(rng.Split(5), n, 16, 256, 0.5)
	pr := Scaled(n, caps)
	pr.MinD, pr.MaxD = d, d
	Run(w, rng.Split(2), pr)
	var bigTotal, bigN, smallTotal, smallN int64
	for p := 0; p < n; p++ {
		if caps[p] == 256 {
			bigTotal += w.Probes(p)
			bigN++
		} else {
			smallTotal += w.Probes(p)
			smallN++
		}
	}
	bigMean := float64(bigTotal) / float64(bigN)
	smallMean := float64(smallTotal) / float64(smallN)
	if bigMean < 2*smallMean {
		t.Fatalf("big-capacity mean %.1f not ≫ small-capacity mean %.1f", bigMean, smallMean)
	}
}

func TestClusterCapacityMeetsNeed(t *testing.T) {
	const n, d = 512, 32
	rng := xrand.New(9)
	in := prefgen.DiameterClusters(rng.Split(1), n, n, 64, d)
	w := world.New(in.Truth)
	pr := Scaled(n, Uniform(n, 64))
	pr.MinD, pr.MaxD = d, d
	res := Run(w, rng.Split(2), pr)
	for j, c := range res.ClusterCapacity {
		if c <= 0 {
			t.Fatalf("cluster %d capacity %d", j, c)
		}
	}
}

func TestPanicsOnBadCapacity(t *testing.T) {
	rng := xrand.New(11)
	in := prefgen.Uniform(rng.Split(1), 16, 16)
	w := world.New(in.Truth)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for short capacity vector")
		}
	}()
	Run(w, rng.Split(2), Scaled(16, Uniform(8, 4)))
}

func TestWeightedPick(t *testing.T) {
	rng := xrand.New(13)
	// weights 1, 3 → cumulative [1, 4]; index 1 should win ~75%.
	counts := [2]int{}
	for i := 0; i < 10000; i++ {
		counts[weightedPick(rng, []int{1, 4}, 4)]++
	}
	frac := float64(counts[1]) / 10000
	if frac < 0.70 || frac > 0.80 {
		t.Fatalf("weighted pick fraction %.3f, want ≈0.75", frac)
	}
}

func TestTwoTierGenerator(t *testing.T) {
	caps := TwoTier(xrand.New(15), 1000, 8, 64, 0.3)
	big := 0
	for _, c := range caps {
		switch c {
		case 8:
		case 64:
			big++
		default:
			t.Fatalf("unexpected capacity %d", c)
		}
	}
	if big < 220 || big > 380 {
		t.Fatalf("big fraction %d/1000, want ≈300", big)
	}
}
