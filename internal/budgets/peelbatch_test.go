package budgets

import (
	"reflect"
	"testing"

	"collabscore/internal/cluster"
	"collabscore/internal/par"
	"collabscore/internal/prefgen"
	"collabscore/internal/world"
	"collabscore/internal/xrand"
)

// peelSchedules is the executor matrix for the capacity-peel pins.
var peelSchedules = map[string]*par.Runner{
	"serial":   par.Serial(),
	"fixed3":   par.Fixed(3),
	"parallel": par.Parallel(),
}

// TestBatchedCapacityPeelMatchesSerial: cluster.BuildByWeightOn is
// byte-identical to the verbatim capacity greedy (buildByCapacity) on
// random graphs and capacity mixes, under every schedule (DESIGN.md §17).
func TestBatchedCapacityPeelMatchesSerial(t *testing.T) {
	rng := xrand.New(63)
	for _, n := range []int{1, 40, 256} {
		in := prefgen.DiameterClusters(rng.Split(uint64(n)), n, 200, maxInt(n/8, 1), 8)
		g := cluster.BuildGraph(in.Truth, 12)
		caps := TwoTier(rng.Split(uint64(n)+1), n, 8, 64, 0.4)
		for _, needed := range []int{1, 50, 400, 1 << 20} {
			want := buildByCapacity(g, caps, needed)
			for ename, exec := range peelSchedules {
				got := cluster.BuildByWeightOn(exec, g, caps, needed)
				if !reflect.DeepEqual(got.Clusters, want.Clusters) || !reflect.DeepEqual(got.Of, want.Of) {
					t.Fatalf("n=%d needed=%d %s: batched capacity peel differs from serial", n, needed, ename)
				}
			}
		}
	}
}

// TestBudgetsPeelKnobMatrixMatches: the full capacity protocol produces
// byte-identical output, cluster stats, and probe charges with the batched
// and the serial peel, under every phase schedule.
func TestBudgetsPeelKnobMatrixMatches(t *testing.T) {
	const n, d = 256, 16
	rng := xrand.New(29)
	in := prefgen.DiameterClusters(rng.Split(1), n, n, 32, d)
	caps := TwoTier(rng.Split(5), n, 16, 128, 0.5)
	type cfg struct {
		name         string
		peelSerial   bool
		phaseSerial  bool
		phaseWorkers int
	}
	var want *Result
	var wantProbes []int64
	for _, c := range []cfg{
		{"serial+peelserial", true, true, 0},
		{"serial+batched", false, true, 0},
		{"fixed3+batched", false, false, 3},
		{"parallel+batched", false, false, 0},
		{"parallel+peelserial", true, false, 0},
	} {
		w := world.New(in.Truth)
		pr := Scaled(n, caps)
		pr.MinD, pr.MaxD = d, d
		pr.PeelSerial = c.peelSerial
		pr.PhaseSerial = c.phaseSerial
		pr.PhaseWorkers = c.phaseWorkers
		res := Run(w, rng.Split(2), pr)
		probes := make([]int64, n)
		for p := 0; p < n; p++ {
			probes[p] = w.Probes(p)
		}
		if want == nil {
			want, wantProbes = res, probes
			continue
		}
		for p := 0; p < n; p++ {
			if !res.Output[p].Equal(want.Output[p]) {
				t.Fatalf("%s: output for player %d differs from serial reference", c.name, p)
			}
			if probes[p] != wantProbes[p] {
				t.Fatalf("%s: probes for player %d differ: %d vs %d", c.name, p, probes[p], wantProbes[p])
			}
		}
		if res.NumClusters != want.NumClusters ||
			!reflect.DeepEqual(res.ClusterCapacity, want.ClusterCapacity) {
			t.Fatalf("%s: cluster stats differ from serial reference", c.name)
		}
	}
}
