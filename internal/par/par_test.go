package par

import (
	"sync/atomic"
	"testing"
)

func TestForCoversAllIndices(t *testing.T) {
	for _, n := range []int{0, 1, 2, 7, 100, 10000} {
		hits := make([]atomic.Int32, n)
		For(n, func(i int) { hits[i].Add(1) })
		for i := range hits {
			if hits[i].Load() != 1 {
				t.Fatalf("n=%d: index %d visited %d times", n, i, hits[i].Load())
			}
		}
	}
}

func TestForChunkedCoversAllIndices(t *testing.T) {
	const n = 1000
	for _, chunk := range []int{-1, 0, 1, 3, 1000, 5000} {
		hits := make([]atomic.Int32, n)
		ForChunked(n, chunk, func(i int) { hits[i].Add(1) })
		for i := range hits {
			if hits[i].Load() != 1 {
				t.Fatalf("chunk=%d: index %d visited %d times", chunk, i, hits[i].Load())
			}
		}
	}
}

func TestDoRunsAll(t *testing.T) {
	var count atomic.Int32
	Do(
		func() { count.Add(1) },
		func() { count.Add(1) },
		func() { count.Add(1) },
	)
	if count.Load() != 3 {
		t.Fatalf("Do ran %d thunks, want 3", count.Load())
	}
	Do() // no thunks: must not hang
}

func TestMapOrder(t *testing.T) {
	out := Map(100, func(i int) int { return i * i })
	for i, v := range out {
		if v != i*i {
			t.Fatalf("Map[%d] = %d, want %d", i, v, i*i)
		}
	}
	if len(Map(0, func(i int) int { return i })) != 0 {
		t.Fatal("Map(0) should be empty")
	}
}

func TestNestedParallelism(t *testing.T) {
	var total atomic.Int64
	For(10, func(i int) {
		For(10, func(j int) {
			total.Add(1)
		})
	})
	if total.Load() != 100 {
		t.Fatalf("nested For ran %d iterations, want 100", total.Load())
	}
}
