package par

import (
	"sync/atomic"
	"testing"
)

func TestForCoversAllIndices(t *testing.T) {
	for _, n := range []int{0, 1, 2, 7, 100, 10000} {
		hits := make([]atomic.Int32, n)
		For(n, func(i int) { hits[i].Add(1) })
		for i := range hits {
			if hits[i].Load() != 1 {
				t.Fatalf("n=%d: index %d visited %d times", n, i, hits[i].Load())
			}
		}
	}
}

func TestForChunkedCoversAllIndices(t *testing.T) {
	const n = 1000
	for _, chunk := range []int{-1, 0, 1, 3, 1000, 5000} {
		hits := make([]atomic.Int32, n)
		ForChunked(n, chunk, func(i int) { hits[i].Add(1) })
		for i := range hits {
			if hits[i].Load() != 1 {
				t.Fatalf("chunk=%d: index %d visited %d times", chunk, i, hits[i].Load())
			}
		}
	}
}

func TestDoRunsAll(t *testing.T) {
	var count atomic.Int32
	Do(
		func() { count.Add(1) },
		func() { count.Add(1) },
		func() { count.Add(1) },
	)
	if count.Load() != 3 {
		t.Fatalf("Do ran %d thunks, want 3", count.Load())
	}
	Do() // no thunks: must not hang
}

func TestMapOrder(t *testing.T) {
	out := Map(100, func(i int) int { return i * i })
	for i, v := range out {
		if v != i*i {
			t.Fatalf("Map[%d] = %d, want %d", i, v, i*i)
		}
	}
	if len(Map(0, func(i int) int { return i })) != 0 {
		t.Fatal("Map(0) should be empty")
	}
}

func TestSerialRunnerOrder(t *testing.T) {
	var order []int
	Serial().For(100, func(i int) { order = append(order, i) })
	for i, v := range order {
		if v != i {
			t.Fatalf("serial For visited %d at position %d", v, i)
		}
	}
	if len(order) != 100 {
		t.Fatalf("serial For ran %d iterations, want 100", len(order))
	}
	order = order[:0]
	Serial().Do(
		func() { order = append(order, 0) },
		func() { order = append(order, 1) },
		func() { order = append(order, 2) },
	)
	for i, v := range order {
		if v != i {
			t.Fatalf("serial Do ran thunk %d at position %d", v, i)
		}
	}
	if !Serial().IsSerial() || !Fixed(1).IsSerial() {
		t.Fatal("Serial/Fixed(1) not reported serial")
	}
	if Parallel().IsSerial() || (*Runner)(nil).IsSerial() {
		t.Fatal("parallel runner reported serial")
	}
}

func TestFixedRunnerSpawnsWorkers(t *testing.T) {
	// Fixed(k) must use k goroutines even when k exceeds GOMAXPROCS and the
	// iteration count: distinct goroutines are observable because a single
	// goroutine running all iterations would deadlock on the barrier below.
	const workers = 4
	var started atomic.Int32
	release := make(chan struct{})
	Fixed(workers).ForChunked(workers, 1, func(i int) {
		if started.Add(1) == workers {
			close(release)
		}
		<-release
	})
}

func TestNilRunnerBehavesParallel(t *testing.T) {
	var r *Runner
	hits := make([]atomic.Int32, 500)
	r.For(500, func(i int) { hits[i].Add(1) })
	for i := range hits {
		if hits[i].Load() != 1 {
			t.Fatalf("nil runner: index %d visited %d times", i, hits[i].Load())
		}
	}
	out := MapOn(r, 10, func(i int) int { return i + 1 })
	for i, v := range out {
		if v != i+1 {
			t.Fatalf("MapOn[%d] = %d", i, v)
		}
	}
}

func TestMapOnSchedulesAgree(t *testing.T) {
	fn := func(i int) int { return i*i - 3*i }
	serial := MapOn(Serial(), 1000, fn)
	parallel := MapOn(Parallel(), 1000, fn)
	fixed := MapOn(Fixed(7), 1000, fn)
	for i := range serial {
		if serial[i] != parallel[i] || serial[i] != fixed[i] {
			t.Fatalf("schedules disagree at %d: %d/%d/%d", i, serial[i], parallel[i], fixed[i])
		}
	}
}

func TestNestedParallelism(t *testing.T) {
	var total atomic.Int64
	For(10, func(i int) {
		For(10, func(j int) {
			total.Add(1)
		})
	})
	if total.Load() != 100 {
		t.Fatalf("nested For ran %d iterations, want 100", total.Load())
	}
}

// TestForWorkerCoversAllIndices: every index runs exactly once and every
// reported worker id is within [0, Workers(n)), for parallel, serial and
// fixed runners.
func TestForWorkerCoversAllIndices(t *testing.T) {
	runners := map[string]*Runner{
		"parallel": Parallel(),
		"serial":   Serial(),
		"fixed4":   Fixed(4),
	}
	for name, r := range runners {
		for _, n := range []int{0, 1, 7, 1000} {
			hits := make([]atomic.Int32, n)
			bound := r.Workers(n)
			var badWorker atomic.Int32
			badWorker.Store(-1)
			r.ForWorker(n, func(w, i int) {
				if w < 0 || w >= bound {
					badWorker.Store(int32(w))
				}
				hits[i].Add(1)
			})
			if w := badWorker.Load(); w != -1 {
				t.Fatalf("%s n=%d: worker id %d outside [0,%d)", name, n, w, bound)
			}
			for i := range hits {
				if hits[i].Load() != 1 {
					t.Fatalf("%s n=%d: index %d visited %d times", name, n, i, hits[i].Load())
				}
			}
		}
	}
}

// TestForWorkerScratchArenas exercises the scratch-arena pattern ForWorker
// exists for: per-worker accumulators sized by Workers(n) must absorb all
// iterations without racing (run under -race).
func TestForWorkerScratchArenas(t *testing.T) {
	const n = 5000
	for _, r := range []*Runner{Parallel(), Serial(), Fixed(8)} {
		sums := make([]int64, r.Workers(n))
		r.ForWorker(n, func(w, i int) { sums[w] += int64(i) })
		var total int64
		for _, s := range sums {
			total += s
		}
		if want := int64(n) * (n - 1) / 2; total != want {
			t.Fatalf("scratch totals sum to %d, want %d", total, want)
		}
	}
}

// TestSerialForWorkerIsOrdered: the serial runner must run iterations in
// index order on worker 0 — the reference schedule contract.
func TestSerialForWorkerIsOrdered(t *testing.T) {
	var seen []int
	Serial().ForWorker(100, func(w, i int) {
		if w != 0 {
			t.Fatalf("serial worker id %d", w)
		}
		seen = append(seen, i)
	})
	for i, v := range seen {
		if v != i {
			t.Fatalf("serial order broken at %d: %d", i, v)
		}
	}
}
