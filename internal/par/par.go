// Package par provides the small worker-pool primitives used to parallelize
// per-player and per-object protocol phases across CPU cores.
//
// The paper's protocols are "every player does X" loops with no data
// dependencies inside a phase; phases themselves act as barriers. For is the
// workhorse: it splits an index range into contiguous chunks and runs them on
// up to GOMAXPROCS goroutines.
//
// Two parallelism layers use these primitives (DESIGN.md §9): the Byzantine
// repetitions of core.RunByzantine fan out on the package-level For, while
// the intra-repetition phase loops go through a Runner threaded on
// world.Run, so a whole protocol execution can be pinned to the serial
// reference schedule (core.Params.PhaseSerial) without touching its callers.
package par

import (
	"runtime"
	"sync"
)

// Runner is an execution policy for phase loops: parallel (the default),
// strictly serial (the reference schedule determinism tests compare
// against), or a fixed worker count (race tests force real goroutines even
// on a single-core host). The zero value and a nil *Runner both behave like
// Parallel, so code paths that never configured an executor keep their
// historical behavior.
//
// Every Runner schedule must produce identical results for loop bodies that
// are pure functions of their index — the determinism contract of
// DESIGN.md §9. Runners are stateless and safe for concurrent use.
type Runner struct {
	// workers is the worker-count policy: 0 = runtime.GOMAXPROCS(0),
	// 1 = serial in-place execution, >1 = exactly that many goroutines.
	workers int
}

var (
	parallelRunner = Runner{}
	serialRunner   = Runner{workers: 1}
)

// Parallel returns the default executor: up to GOMAXPROCS(0) workers.
func Parallel() *Runner { return &parallelRunner }

// Serial returns the single-threaded reference executor: every loop runs
// in index order on the calling goroutine. Fixed-seed protocol output under
// Serial is byte-identical to any parallel schedule (DESIGN.md §9);
// core.Params.PhaseSerial selects it for whole runs.
func Serial() *Runner { return &serialRunner }

// Fixed returns an executor whose For/ForChunked loops use exactly the
// given number of worker goroutines, even when it exceeds GOMAXPROCS.
// Race tests use it to get real goroutine interleavings on single-core
// hosts; Fixed(1) is Serial. The worker count bounds loop fan-out only —
// Do is exempt (see Do).
func Fixed(workers int) *Runner {
	if workers < 1 {
		workers = 1
	}
	return &Runner{workers: workers}
}

// Sched resolves the schedule-flag pair every protocol Params carries
// (PhaseSerial, PhaseWorkers — core, multival, budgets all expose the same
// knobs; DESIGN.md §9) to an executor: the serial reference schedule when
// serial is set, a fixed-width pool when workers > 0, the GOMAXPROCS
// default otherwise.
func Sched(serial bool, workers int) *Runner {
	if serial {
		return Serial()
	}
	if workers > 0 {
		return Fixed(workers)
	}
	return Parallel()
}

// IsSerial reports whether this runner executes loops on the calling
// goroutine in index order.
func (r *Runner) IsSerial() bool { return r != nil && r.workers == 1 }

// width resolves the worker count for a loop of n iterations.
func (r *Runner) width(n int) int {
	w := 0
	if r != nil {
		w = r.workers
	}
	fixed := w > 1
	if w == 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > n && !fixed {
		w = n
	}
	return w
}

// Workers returns the number of distinct worker ids a ForWorker loop of n
// iterations will use under this runner's policy — the size callers give
// their scratch-arena slices. It always returns at least 1.
func (r *Runner) Workers(n int) int {
	if n <= 0 {
		return 1
	}
	w := r.width(n)
	if w < 1 {
		w = 1
	}
	return w
}

// For runs fn(i) for every i in [0,n) under this runner's policy. It
// returns after all iterations finish. fn must be safe to call concurrently
// for distinct i unless the runner is serial.
func (r *Runner) For(n int, fn func(i int)) { r.ForChunked(n, 0, fn) }

// ForChunked is For with an explicit chunk size; chunk <= 0 selects a chunk
// size that gives each worker several chunks for load balancing.
func (r *Runner) ForChunked(n, chunk int, fn func(i int)) {
	r.forWorkerChunked(n, chunk, func(_, i int) { fn(i) })
}

// ForWorker runs fn(worker, i) for every i in [0,n), where worker is the
// stable id in [0, Workers(n)) of the goroutine executing iteration i. The
// id lets allocation-free loop bodies index per-worker scratch arenas
// (buffers reused across the iterations one worker executes); the caller
// owns the arenas, sized by Workers(n), and the loop body must leave its
// arena reset before returning from each iteration, because which worker
// runs which iteration is schedule-dependent. Results must therefore never
// depend on the worker id — only scratch storage may.
func (r *Runner) ForWorker(n int, fn func(worker, i int)) {
	r.forWorkerChunked(n, 0, fn)
}

func (r *Runner) forWorkerChunked(n, chunk int, fn func(worker, i int)) {
	if n <= 0 {
		return
	}
	workers := r.width(n)
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(0, i)
		}
		return
	}
	if chunk <= 0 {
		chunk = n / (workers * 4)
		if chunk < 1 {
			chunk = 1
		}
	}
	var next int
	var mu sync.Mutex
	take := func() (lo, hi int, ok bool) {
		mu.Lock()
		defer mu.Unlock()
		if next >= n {
			return 0, 0, false
		}
		lo = next
		hi = lo + chunk
		if hi > n {
			hi = n
		}
		next = hi
		return lo, hi, true
	}
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(worker int) {
			defer wg.Done()
			for {
				lo, hi, ok := take()
				if !ok {
					return
				}
				for i := lo; i < hi; i++ {
					fn(worker, i)
				}
			}
		}(w)
	}
	wg.Wait()
}

// Do runs the given thunks and waits for all of them: in order on a
// serial runner, otherwise one goroutine per thunk. Do does not apply the
// runner's worker count — thunks may block on each other (unlike loop
// iterations), so capping them could deadlock; callers that need bounded
// fan-out use For over an index range instead.
func (r *Runner) Do(fns ...func()) {
	if r.IsSerial() || len(fns) <= 1 {
		for _, fn := range fns {
			fn()
		}
		return
	}
	var wg sync.WaitGroup
	wg.Add(len(fns))
	for _, fn := range fns {
		go func(f func()) {
			defer wg.Done()
			f()
		}(fn)
	}
	wg.Wait()
}

// MapOn applies fn to every index in [0,n) under the given runner and
// collects the results in index order. (A generic method is not legal Go,
// hence the free function.)
func MapOn[T any](r *Runner, n int, fn func(i int) T) []T {
	out := make([]T, n)
	r.For(n, func(i int) { out[i] = fn(i) })
	return out
}

// For runs fn(i) for every i in [0,n) on the default parallel runner,
// distributing work across up to runtime.GOMAXPROCS(0) goroutines. It
// returns after all iterations finish. fn must be safe to call concurrently
// for distinct i.
func For(n int, fn func(i int)) { Parallel().For(n, fn) }

// ForChunked is For with an explicit chunk size; chunk <= 0 selects a chunk
// size that gives each worker several chunks for load balancing.
func ForChunked(n, chunk int, fn func(i int)) { Parallel().ForChunked(n, chunk, fn) }

// Do runs the given thunks concurrently and waits for all of them.
func Do(fns ...func()) { Parallel().Do(fns...) }

// Map applies fn to every index in [0,n) in parallel and collects results.
func Map[T any](n int, fn func(i int) T) []T { return MapOn(Parallel(), n, fn) }
