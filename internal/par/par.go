// Package par provides the small worker-pool primitives used to parallelize
// per-player and per-object protocol phases across CPU cores.
//
// The paper's protocols are "every player does X" loops with no data
// dependencies inside a phase; phases themselves act as barriers. For is the
// workhorse: it splits an index range into contiguous chunks and runs them on
// up to GOMAXPROCS goroutines.
package par

import (
	"runtime"
	"sync"
)

// For runs fn(i) for every i in [0,n), distributing work across up to
// runtime.GOMAXPROCS(0) goroutines. It returns after all iterations finish.
// fn must be safe to call concurrently for distinct i.
func For(n int, fn func(i int)) {
	ForChunked(n, 0, fn)
}

// ForChunked is For with an explicit chunk size; chunk <= 0 selects a chunk
// size that gives each worker several chunks for load balancing.
func ForChunked(n, chunk int, fn func(i int)) {
	if n <= 0 {
		return
	}
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	if chunk <= 0 {
		chunk = n / (workers * 4)
		if chunk < 1 {
			chunk = 1
		}
	}
	var next int64
	var mu sync.Mutex
	take := func() (lo, hi int, ok bool) {
		mu.Lock()
		defer mu.Unlock()
		if int(next) >= n {
			return 0, 0, false
		}
		lo = int(next)
		hi = lo + chunk
		if hi > n {
			hi = n
		}
		next = int64(hi)
		return lo, hi, true
	}
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				lo, hi, ok := take()
				if !ok {
					return
				}
				for i := lo; i < hi; i++ {
					fn(i)
				}
			}
		}()
	}
	wg.Wait()
}

// Do runs the given thunks concurrently and waits for all of them.
func Do(fns ...func()) {
	var wg sync.WaitGroup
	wg.Add(len(fns))
	for _, fn := range fns {
		go func(f func()) {
			defer wg.Done()
			f()
		}(fn)
	}
	wg.Wait()
}

// Map applies fn to every index in [0,n) in parallel and collects results.
func Map[T any](n int, fn func(i int) T) []T {
	out := make([]T, n)
	For(n, func(i int) { out[i] = fn(i) })
	return out
}
