// Package svgplot renders experiment series as standalone SVG line charts
// using only the standard library. The paper publishes no result figures
// (its artifacts are theorems), so these charts are the figure-equivalents
// of the reproduction: error-vs-corruption, probes-vs-n, and any other
// table produced by the experiment harness can be turned into one.
package svgplot

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Series is one named polyline.
type Series struct {
	Name string
	X, Y []float64
}

// Chart is a collection of series with axis labels.
type Chart struct {
	Title  string
	XLabel string
	YLabel string
	Series []Series
	// LogY switches the y-axis to log10 scale (values must be positive).
	LogY bool
	// Width and Height in pixels (0 → 720×440).
	Width, Height int
}

var palette = []string{"#1f77b4", "#d62728", "#2ca02c", "#9467bd", "#ff7f0e", "#8c564b"}

// Add appends a series. X and Y must have equal length.
func (c *Chart) Add(name string, x, y []float64) {
	if len(x) != len(y) {
		panic("svgplot: x/y length mismatch")
	}
	c.Series = append(c.Series, Series{Name: name, X: x, Y: y})
}

// Render produces a complete SVG document.
func (c *Chart) Render() string {
	w, h := c.Width, c.Height
	if w <= 0 {
		w = 720
	}
	if h <= 0 {
		h = 440
	}
	const marginL, marginR, marginT, marginB = 64, 24, 40, 56
	plotW := float64(w - marginL - marginR)
	plotH := float64(h - marginT - marginB)

	minX, maxX, minY, maxY := c.bounds()
	ty := func(y float64) float64 {
		if c.LogY {
			y = math.Log10(y)
		}
		lo, hi := minY, maxY
		if c.LogY {
			lo, hi = math.Log10(minY), math.Log10(maxY)
		}
		if hi == lo {
			hi = lo + 1
		}
		return float64(marginT) + plotH*(1-(y-lo)/(hi-lo))
	}
	tx := func(x float64) float64 {
		if maxX == minX {
			maxX = minX + 1
		}
		return float64(marginL) + plotW*(x-minX)/(maxX-minX)
	}

	var sb strings.Builder
	fmt.Fprintf(&sb, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" font-family="sans-serif" font-size="12">`, w, h)
	sb.WriteString(`<rect width="100%" height="100%" fill="white"/>`)
	if c.Title != "" {
		fmt.Fprintf(&sb, `<text x="%d" y="22" font-size="15" font-weight="bold">%s</text>`, marginL, esc(c.Title))
	}

	// Axes.
	fmt.Fprintf(&sb, `<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="black"/>`,
		marginL, marginT, marginL, h-marginB)
	fmt.Fprintf(&sb, `<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="black"/>`,
		marginL, h-marginB, w-marginR, h-marginB)

	// Ticks: 5 per axis.
	for i := 0; i <= 4; i++ {
		fx := minX + (maxX-minX)*float64(i)/4
		px := tx(fx)
		fmt.Fprintf(&sb, `<line x1="%.1f" y1="%d" x2="%.1f" y2="%d" stroke="#ccc"/>`,
			px, marginT, px, h-marginB)
		fmt.Fprintf(&sb, `<text x="%.1f" y="%d" text-anchor="middle">%s</text>`,
			px, h-marginB+18, fmtTick(fx))

		var fy float64
		if c.LogY {
			lo, hi := math.Log10(minY), math.Log10(maxY)
			fy = math.Pow(10, lo+(hi-lo)*float64(i)/4)
		} else {
			fy = minY + (maxY-minY)*float64(i)/4
		}
		py := ty(fy)
		fmt.Fprintf(&sb, `<line x1="%d" y1="%.1f" x2="%d" y2="%.1f" stroke="#eee"/>`,
			marginL, py, w-marginR, py)
		fmt.Fprintf(&sb, `<text x="%d" y="%.1f" text-anchor="end">%s</text>`,
			marginL-6, py+4, fmtTick(fy))
	}
	if c.XLabel != "" {
		fmt.Fprintf(&sb, `<text x="%d" y="%d" text-anchor="middle">%s</text>`,
			marginL+int(plotW/2), h-12, esc(c.XLabel))
	}
	if c.YLabel != "" {
		fmt.Fprintf(&sb, `<text x="16" y="%d" transform="rotate(-90 16 %d)" text-anchor="middle">%s</text>`,
			marginT+int(plotH/2), marginT+int(plotH/2), esc(c.YLabel))
	}

	// Series.
	for si, s := range c.Series {
		color := palette[si%len(palette)]
		pts := make([]string, 0, len(s.X))
		order := argsortByX(s)
		for _, i := range order {
			pts = append(pts, fmt.Sprintf("%.1f,%.1f", tx(s.X[i]), ty(s.Y[i])))
		}
		fmt.Fprintf(&sb, `<polyline points="%s" fill="none" stroke="%s" stroke-width="2"/>`,
			strings.Join(pts, " "), color)
		for _, i := range order {
			fmt.Fprintf(&sb, `<circle cx="%.1f" cy="%.1f" r="3" fill="%s"/>`,
				tx(s.X[i]), ty(s.Y[i]), color)
		}
		// Legend entry.
		ly := marginT + 8 + 18*si
		fmt.Fprintf(&sb, `<rect x="%d" y="%d" width="12" height="3" fill="%s"/>`,
			w-marginR-150, ly, color)
		fmt.Fprintf(&sb, `<text x="%d" y="%d">%s</text>`,
			w-marginR-132, ly+6, esc(s.Name))
	}
	sb.WriteString(`</svg>`)
	return sb.String()
}

func (c *Chart) bounds() (minX, maxX, minY, maxY float64) {
	first := true
	for _, s := range c.Series {
		for i := range s.X {
			if c.LogY && s.Y[i] <= 0 {
				continue
			}
			if first {
				minX, maxX, minY, maxY = s.X[i], s.X[i], s.Y[i], s.Y[i]
				first = false
				continue
			}
			minX = math.Min(minX, s.X[i])
			maxX = math.Max(maxX, s.X[i])
			minY = math.Min(minY, s.Y[i])
			maxY = math.Max(maxY, s.Y[i])
		}
	}
	if first {
		return 0, 1, 0, 1
	}
	if !c.LogY {
		if minY > 0 {
			minY = 0 // anchor linear charts at zero
		}
	}
	return minX, maxX, minY, maxY
}

func argsortByX(s Series) []int {
	order := make([]int, len(s.X))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool { return s.X[order[a]] < s.X[order[b]] })
	return order
}

func fmtTick(v float64) string {
	av := math.Abs(v)
	switch {
	case av >= 1000:
		return fmt.Sprintf("%.0f", v)
	case av >= 10:
		return fmt.Sprintf("%.0f", v)
	case av >= 1:
		return fmt.Sprintf("%.1f", v)
	case av == 0:
		return "0"
	default:
		return fmt.Sprintf("%.2f", v)
	}
}

func esc(s string) string {
	s = strings.ReplaceAll(s, "&", "&amp;")
	s = strings.ReplaceAll(s, "<", "&lt;")
	s = strings.ReplaceAll(s, ">", "&gt;")
	return s
}
