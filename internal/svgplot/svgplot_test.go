package svgplot

import (
	"fmt"
	"strings"
	"testing"
)

func TestRenderBasics(t *testing.T) {
	c := &Chart{Title: "err vs f", XLabel: "f", YLabel: "max err"}
	c.Add("byzantine", []float64{0, 21, 42}, []float64{16, 16, 16})
	svg := c.Render()
	for _, want := range []string{"<svg", "</svg>", "polyline", "err vs f", "byzantine", "max err"} {
		if !strings.Contains(svg, want) {
			t.Fatalf("rendered SVG missing %q", want)
		}
	}
	if strings.Count(svg, "<circle") != 3 {
		t.Fatalf("want 3 point markers, got %d", strings.Count(svg, "<circle"))
	}
}

func TestMultipleSeriesGetDistinctColors(t *testing.T) {
	c := &Chart{}
	c.Add("a", []float64{0, 1}, []float64{1, 2})
	c.Add("b", []float64{0, 1}, []float64{2, 3})
	svg := c.Render()
	if !strings.Contains(svg, palette[0]) || !strings.Contains(svg, palette[1]) {
		t.Fatal("series colors missing")
	}
}

func TestLogScale(t *testing.T) {
	c := &Chart{LogY: true}
	c.Add("probes", []float64{512, 1024, 2048}, []float64{512, 300, 350})
	svg := c.Render()
	if !strings.Contains(svg, "<polyline") {
		t.Fatal("log chart missing polyline")
	}
	// Non-positive values are skipped, not rendered as NaN coordinates.
	c2 := &Chart{LogY: true}
	c2.Add("bad", []float64{1, 2}, []float64{0, 10})
	if strings.Contains(c2.Render(), "NaN") {
		t.Fatal("log chart rendered NaN")
	}
}

func TestUnsortedXGetsSorted(t *testing.T) {
	c := &Chart{}
	c.Add("s", []float64{3, 1, 2}, []float64{30, 10, 20})
	svg := c.Render()
	// The polyline must be drawn left-to-right: extract the points attr
	// and check x coordinates ascend.
	i := strings.Index(svg, `points="`)
	if i < 0 {
		t.Fatal("no points attribute")
	}
	rest := svg[i+len(`points="`):]
	attr := rest[:strings.Index(rest, `"`)]
	pts := strings.Fields(attr)
	prev := -1.0
	for _, p := range pts {
		var x, y float64
		if _, err := sscanPoint(p, &x, &y); err != nil {
			t.Fatalf("bad point %q", p)
		}
		if x < prev {
			t.Fatal("polyline x-coordinates not ascending")
		}
		prev = x
	}
}

func sscanPoint(s string, x, y *float64) (int, error) {
	parts := strings.SplitN(s, ",", 2)
	if len(parts) != 2 {
		return 0, strconvErr(s)
	}
	var err error
	*x, err = parseF(parts[0])
	if err != nil {
		return 0, err
	}
	*y, err = parseF(parts[1])
	if err != nil {
		return 1, err
	}
	return 2, nil
}

func parseF(s string) (float64, error) {
	var v float64
	var err error
	_, err = fmtSscan(s, &v)
	return v, err
}

func TestEmptyChart(t *testing.T) {
	c := &Chart{Title: "empty"}
	svg := c.Render()
	if !strings.Contains(svg, "<svg") || !strings.Contains(svg, "</svg>") {
		t.Fatal("empty chart is not valid SVG scaffolding")
	}
}

func TestEscaping(t *testing.T) {
	c := &Chart{Title: "a < b & c"}
	svg := c.Render()
	if strings.Contains(svg, "a < b & c") {
		t.Fatal("title not escaped")
	}
	if !strings.Contains(svg, "a &lt; b &amp; c") {
		t.Fatal("escaped title missing")
	}
}

func TestAddPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	(&Chart{}).Add("x", []float64{1}, []float64{1, 2})
}

// test helpers kept minimal and stdlib-only.
func fmtSscan(s string, v *float64) (int, error) { return fmt.Sscan(s, v) }

func strconvErr(s string) error { return fmt.Errorf("malformed point %q", s) }
