// Package tablefmt renders experiment results as aligned ASCII tables and
// CSV, the output format of every bench/experiment harness in this repo.
package tablefmt

import (
	"fmt"
	"strings"
)

// Table is a simple header + rows structure.
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
}

// New creates a table with the given title and column headers.
func New(title string, headers ...string) *Table {
	return &Table{Title: title, Headers: headers}
}

// AddRow appends a row, formatting each cell with %v (floats with %.3g).
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.4g", v)
		case float32:
			row[i] = fmt.Sprintf("%.4g", v)
		case string:
			row[i] = v
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.Rows = append(t.Rows, row)
}

// Render returns the table as an aligned ASCII string.
func (t *Table) Render() string {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var sb strings.Builder
	if t.Title != "" {
		sb.WriteString(t.Title)
		sb.WriteByte('\n')
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			sb.WriteString(c)
			if i < len(widths) {
				for pad := len(c); pad < widths[i]; pad++ {
					sb.WriteByte(' ')
				}
			}
		}
		sb.WriteByte('\n')
	}
	writeRow(t.Headers)
	sep := make([]string, len(t.Headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.Rows {
		writeRow(row)
	}
	return sb.String()
}

// CSV returns the table in comma-separated form (cells containing commas
// or quotes are quoted).
func (t *Table) CSV() string {
	var sb strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				sb.WriteByte(',')
			}
			if strings.ContainsAny(c, ",\"\n") {
				sb.WriteByte('"')
				sb.WriteString(strings.ReplaceAll(c, "\"", "\"\""))
				sb.WriteByte('"')
			} else {
				sb.WriteString(c)
			}
		}
		sb.WriteByte('\n')
	}
	writeRow(t.Headers)
	for _, row := range t.Rows {
		writeRow(row)
	}
	return sb.String()
}
