package tablefmt

import (
	"strings"
	"testing"
)

func TestRenderAlignment(t *testing.T) {
	tb := New("Demo", "name", "value")
	tb.AddRow("alpha", 1)
	tb.AddRow("b", 123456)
	out := tb.Render()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if lines[0] != "Demo" {
		t.Fatalf("title line = %q", lines[0])
	}
	if !strings.HasPrefix(lines[1], "name") {
		t.Fatalf("header = %q", lines[1])
	}
	if !strings.Contains(lines[2], "----") {
		t.Fatalf("separator = %q", lines[2])
	}
	if len(lines) != 5 {
		t.Fatalf("expected 5 lines, got %d", len(lines))
	}
}

func TestRenderNoTitle(t *testing.T) {
	tb := New("", "a")
	tb.AddRow("x")
	out := tb.Render()
	if strings.HasPrefix(out, "\n") {
		t.Fatal("leading newline with empty title")
	}
}

func TestFloatFormatting(t *testing.T) {
	tb := New("", "v")
	tb.AddRow(3.14159265)
	if !strings.Contains(tb.Render(), "3.142") {
		t.Fatalf("float not formatted: %s", tb.Render())
	}
	tb2 := New("", "v")
	tb2.AddRow(float32(2.5))
	if !strings.Contains(tb2.Render(), "2.5") {
		t.Fatal("float32 not formatted")
	}
}

func TestCSV(t *testing.T) {
	tb := New("t", "a", "b")
	tb.AddRow("x,y", "plain")
	tb.AddRow(`quo"te`, 7)
	csv := tb.CSV()
	lines := strings.Split(strings.TrimRight(csv, "\n"), "\n")
	if lines[0] != "a,b" {
		t.Fatalf("csv header = %q", lines[0])
	}
	if lines[1] != `"x,y",plain` {
		t.Fatalf("csv row = %q", lines[1])
	}
	if lines[2] != `"quo""te",7` {
		t.Fatalf("csv quoting = %q", lines[2])
	}
}

func TestEmptyTable(t *testing.T) {
	tb := New("empty", "col")
	out := tb.Render()
	if !strings.Contains(out, "col") {
		t.Fatal("missing header")
	}
	if tb.CSV() != "col\n" {
		t.Fatalf("CSV = %q", tb.CSV())
	}
}
