package prefgen

import (
	"testing"

	"collabscore/internal/xrand"
)

// instanceEqual compares the observable content of two instances.
func instanceEqual(a, b *Instance) bool {
	if a.N() != b.N() || a.M() != b.M() || a.PlantedDiameter != b.PlantedDiameter {
		return false
	}
	for p := range a.Truth {
		if !a.Truth[p].Equal(b.Truth[p]) || a.ClusterOf[p] != b.ClusterOf[p] {
			return false
		}
	}
	if len(a.Centers) != len(b.Centers) {
		return false
	}
	for c := range a.Centers {
		if !a.Centers[c].Equal(b.Centers[c]) {
			return false
		}
	}
	return true
}

// TestBufferMatchesFresh: every pooled generator produces instances
// bit-identical to the package-level (allocating) generator for the same
// stream, across repeated reuse and shape changes in both directions.
func TestBufferMatchesFresh(t *testing.T) {
	var buf Buffer
	shapes := []struct{ n, m int }{{32, 64}, {32, 64}, {48, 32}, {16, 16}, {48, 32}}
	for i, sh := range shapes {
		seed := uint64(100 + i)
		fresh := Uniform(xrand.New(seed), sh.n, sh.m)
		pooled := buf.Uniform(xrand.New(seed), sh.n, sh.m)
		if !instanceEqual(fresh, pooled) {
			t.Fatalf("shape %d: pooled Uniform differs from fresh", i)
		}

		fresh = DiameterClusters(xrand.New(seed), sh.n, sh.m, sh.n/4, 4)
		pooled = buf.DiameterClusters(xrand.New(seed), sh.n, sh.m, sh.n/4, 4)
		if !instanceEqual(fresh, pooled) {
			t.Fatalf("shape %d: pooled DiameterClusters differs from fresh", i)
		}

		fresh = ZipfClusters(xrand.New(seed), sh.n, sh.m, 3, 1.3, 4)
		pooled = buf.ZipfClusters(xrand.New(seed), sh.n, sh.m, 3, 1.3, 4)
		if !instanceEqual(fresh, pooled) {
			t.Fatalf("shape %d: pooled ZipfClusters differs from fresh", i)
		}
	}
}

// TestBufferReusesStorage: at a stable shape, the buffer stops allocating
// truth vectors — successive instances share backing storage.
func TestBufferReusesStorage(t *testing.T) {
	var buf Buffer
	first := buf.DiameterClusters(xrand.New(1), 32, 64, 8, 4)
	firstTruth := first.Truth[0]
	second := buf.DiameterClusters(xrand.New(2), 32, 64, 8, 4)
	if &first.Truth[0] != &second.Truth[0] {
		// Same backing slice must be handed out again.
		t.Fatal("buffer reallocated the truth slice at a stable shape")
	}
	// The old instance's vectors were reused in place: firstTruth now holds
	// the second instance's bits (documented invalidation).
	if !firstTruth.Equal(second.Truth[0]) {
		t.Fatal("buffer did not reuse vector storage in place")
	}
}
