package prefgen

import (
	"testing"

	"collabscore/internal/xrand"
)

func TestUniformShape(t *testing.T) {
	in := Uniform(xrand.New(1), 50, 80)
	if in.N() != 50 || in.M() != 80 {
		t.Fatalf("dims = (%d,%d)", in.N(), in.M())
	}
	for p, c := range in.ClusterOf {
		if c != -1 {
			t.Fatalf("uniform player %d has cluster %d", p, c)
		}
	}
	// Vectors should not all be identical.
	same := true
	for p := 1; p < in.N(); p++ {
		if !in.Truth[p].Equal(in.Truth[0]) {
			same = false
			break
		}
	}
	if same {
		t.Fatal("uniform generator produced identical vectors")
	}
}

func TestIdenticalClustersZeroDiameter(t *testing.T) {
	in := IdenticalClusters(xrand.New(2), 64, 100, 16)
	if got := in.MaxPlantedClusterDiameter(); got != 0 {
		t.Fatalf("identical clusters have diameter %d", got)
	}
	if in.PlantedDiameter != 0 {
		t.Fatalf("PlantedDiameter = %d, want 0", in.PlantedDiameter)
	}
	// Every cluster has exactly the declared size.
	for c := range in.Centers {
		if got := len(in.ClusterMembers(c)); got != 16 {
			t.Fatalf("cluster %d has %d members, want 16", c, got)
		}
	}
}

func TestDiameterClustersBound(t *testing.T) {
	const d = 10
	in := DiameterClusters(xrand.New(3), 60, 200, 20, d)
	if got := in.MaxPlantedClusterDiameter(); got > d {
		t.Fatalf("planted diameter %d exceeds bound %d", got, d)
	}
	// All players assigned.
	for p, c := range in.ClusterOf {
		if c < 0 || c >= len(in.Centers) {
			t.Fatalf("player %d has invalid cluster %d", p, c)
		}
	}
}

func TestDiameterClustersMembersNearCenter(t *testing.T) {
	const d = 8
	in := DiameterClusters(xrand.New(4), 40, 150, 10, d)
	for p := 0; p < in.N(); p++ {
		c := in.ClusterOf[p]
		if dist := in.Truth[p].Hamming(in.Centers[c]); dist > d/2 {
			t.Fatalf("player %d at distance %d from center, want ≤ %d", p, dist, d/2)
		}
	}
}

func TestDiameterClustersRemainder(t *testing.T) {
	// 50 players, cluster size 15 → 3 clusters; remainder joins the last.
	in := DiameterClusters(xrand.New(5), 50, 60, 15, 0)
	if len(in.Centers) != 3 {
		t.Fatalf("expected 3 clusters, got %d", len(in.Centers))
	}
	total := 0
	for c := range in.Centers {
		total += len(in.ClusterMembers(c))
	}
	if total != 50 {
		t.Fatalf("players assigned: %d, want 50", total)
	}
}

func TestDiameterClustersPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for bad cluster size")
		}
	}()
	DiameterClusters(xrand.New(6), 10, 10, 0, 0)
}

func TestZipfClustersSkewAndBound(t *testing.T) {
	const d = 6
	in := ZipfClusters(xrand.New(7), 300, 100, 5, 1.2, d)
	if got := in.MaxPlantedClusterDiameter(); got > d {
		t.Fatalf("Zipf cluster diameter %d > %d", got, d)
	}
	if len(in.ClusterMembers(0)) <= len(in.ClusterMembers(4)) {
		t.Fatalf("Zipf sizes not skewed: %d vs %d",
			len(in.ClusterMembers(0)), len(in.ClusterMembers(4)))
	}
}

func TestMixtureAssignsEveryone(t *testing.T) {
	in := Mixture(xrand.New(8), 80, 120)
	if len(in.Centers) != 2 {
		t.Fatalf("Mixture centers = %d, want 2", len(in.Centers))
	}
	for p, c := range in.ClusterOf {
		if c != 0 && c != 1 {
			t.Fatalf("player %d cluster = %d", p, c)
		}
	}
}

func TestAdversarialClaim2Structure(t *testing.T) {
	const n, m, b, d = 100, 200, 10, 20
	in, special := AdversarialClaim2(xrand.New(9), n, m, b, d)
	if len(special) != d {
		t.Fatalf("special set size %d, want %d", len(special), d)
	}
	members := in.ClusterMembers(0)
	if len(members) != n/b {
		t.Fatalf("special group size %d, want %d", len(members), n/b)
	}
	specialSet := map[int]bool{}
	for _, o := range special {
		specialSet[o] = true
	}
	// Group members agree with the base vector off the special set.
	base := in.Centers[0]
	for _, p := range members {
		for o := 0; o < m; o++ {
			if !specialSet[o] && in.Truth[p].Get(o) != base.Get(o) {
				t.Fatalf("member %d disagrees with base off special set at %d", p, o)
			}
		}
	}
	// Group diameter is at most 2d (disagreements only inside S... each
	// member differs from base only on S).
	if diam := in.MaxPlantedClusterDiameter(); diam > 2*d {
		t.Fatalf("group diameter %d > %d", diam, 2*d)
	}
}

func TestAdversarialClaim2Panics(t *testing.T) {
	cases := []func(){
		func() { AdversarialClaim2(xrand.New(1), 100, 100, 10, 30) },  // d ≥ m/4
		func() { AdversarialClaim2(xrand.New(1), 100, 200, 100, 10) }, // group < 2
	}
	for i, fn := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: expected panic", i)
				}
			}()
			fn()
		}()
	}
}

func TestBlockStructured(t *testing.T) {
	const n, m, groups, blocks = 120, 240, 4, 6
	in := BlockStructured(xrand.New(10), n, m, groups, blocks, 0.9)
	if in.N() != n || in.M() != m {
		t.Fatal("dims wrong")
	}
	// Same-group players should be substantially closer than cross-group
	// players on average (correlation exists within groups).
	sameTotal, samePairs := 0, 0
	crossTotal, crossPairs := 0, 0
	for p := 0; p < n; p += 7 {
		for q := p + 1; q < n; q += 11 {
			d := in.Truth[p].Hamming(in.Truth[q])
			if in.ClusterOf[p] == in.ClusterOf[q] {
				sameTotal += d
				samePairs++
			} else {
				crossTotal += d
				crossPairs++
			}
		}
	}
	if samePairs == 0 || crossPairs == 0 {
		t.Fatal("sampling produced no pairs")
	}
	same := float64(sameTotal) / float64(samePairs)
	cross := float64(crossTotal) / float64(crossPairs)
	if same >= cross {
		t.Fatalf("same-group mean distance %.1f ≥ cross-group %.1f", same, cross)
	}
}

func TestBlockStructuredZeroCoherenceIsUniform(t *testing.T) {
	in := BlockStructured(xrand.New(11), 40, 200, 4, 4, 0)
	// With no coherence the same-group distance should be ≈ m/2.
	d := in.Truth[0].Hamming(in.Truth[1])
	if d < 60 || d > 140 {
		t.Fatalf("incoherent distance %d, want ≈100", d)
	}
}

func TestBlockStructuredPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	BlockStructured(xrand.New(1), 10, 10, 0, 2, 0.5)
}

func TestDeterminism(t *testing.T) {
	a := DiameterClusters(xrand.New(42), 30, 50, 10, 4)
	b := DiameterClusters(xrand.New(42), 30, 50, 10, 4)
	for p := 0; p < 30; p++ {
		if !a.Truth[p].Equal(b.Truth[p]) {
			t.Fatal("same seed produced different instances")
		}
		if a.ClusterOf[p] != b.ClusterOf[p] {
			t.Fatal("same seed produced different assignments")
		}
	}
}
