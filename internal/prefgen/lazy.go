package prefgen

// Lazy truth sources: the generated matrix as a pure function instead of a
// buffer. xrand's SplitMix64 streams are counter-based — draw i is an O(1)
// function of the stream state (xrand.At) — and the dense generators consume
// their coins in a fixed layout (fillRandom draws exactly one coin per bit,
// row-major), so any truth cell of the SAME generation stream is randomly
// addressable without enumerating its predecessors, the d2xyz/xyz2d
// index-function idiom applied to world generation (DESIGN.md §14).
//
// Seed-stream layout, per generator, relative to the stream at entry:
//
//	Uniform:           draw p·m + o        = coin for bit (p, o)
//	DiameterClusters:  draw c·m + o        = coin for center bit (c, o)
//	                   then Perm(n), then per-player flip draws (variable)
//	ZipfClusters:      draw c·m + o        = coin for center bit (c, o)
//	                   then per-player Zipf + flip draws (variable)
//
// The fixed-layout prefixes (uniform rows, cluster centers) are recomputed
// on demand via At; the variable-draw suffixes (permutation, per-player
// flips — Intn uses rejection sampling and is not randomly addressable) are
// replayed ONCE at construction into O(n + flips) sparse metadata. A lazy
// constructor advances the caller's stream to exactly the state the dense
// generator leaves it in, and produces bit-identical truth.

import (
	"fmt"

	"collabscore/internal/bitvec"
	"collabscore/internal/lru"
	"collabscore/internal/xrand"
)

// lazyTileWords is the tile width: one cached tile spans 16 object words
// (1024 objects). Tile t of row r covers words [t·16, t·16+16); the tile
// key packs (row, tile index) into one uint64. Rows are players for the
// uniform family and cluster centers for the planted families — planted
// members share their center's tiles, so a cached tile serves a whole
// cluster's probes.
const lazyTileWords = 16

type lazyKind uint8

const (
	lazyUniform lazyKind = iota
	lazyCluster
	lazyZipf
)

// Lazy is the on-demand TruthSource. It holds the generation stream
// snapshot (read via xrand.At only — never advanced, so concurrent reads
// are safe), the replayed sparse metadata, and an optional tile cache.
type Lazy struct {
	n, m, words int
	base        xrand.Stream // entry-state snapshot; At-only after construction
	kind        lazyKind
	numCenters  int
	// clusterOf maps players to center rows (planted kinds; shared with the
	// Instance's ClusterOf).
	clusterOf []int
	// Per-player flip edits, flattened: player p's entries are
	// flipWord/flipMask[flipStart[p]:flipStart[p+1]], word-ascending.
	// XORing them onto the center row reproduces the dense flips exactly.
	flipStart []int32
	flipWord  []int32
	flipMask  []uint64
	// tiles caches generated center/row tiles; nil means recompute every
	// read (the cacheless "lazy" spec). Hits are bit-identical to
	// recomputation because tile generation is pure.
	tiles *lru.Cache[uint64, []uint64]
}

// Players returns n.
func (lz *Lazy) Players() int { return lz.n }

// Objects returns m.
func (lz *Lazy) Objects() int { return lz.m }

// rowID returns the generation row of player p: itself for uniform truth,
// its planted center for clustered truth.
func (lz *Lazy) rowID(p int) int {
	if lz.kind == lazyUniform {
		return p
	}
	return lz.clusterOf[p]
}

// rawWord generates word wi of generation row `row` straight from the coin
// stream: bit b is coin row·m + wi·64 + b, exactly the coin fillRandom
// spent on it. Bits past the last object stay zero.
func (lz *Lazy) rawWord(row, wi int) uint64 {
	base := uint64(row)*uint64(lz.m) + uint64(wi)*64
	nbits := lz.m - wi*64
	if nbits > 64 {
		nbits = 64
	}
	var w uint64
	for b := 0; b < nbits; b++ {
		w |= (lz.base.At(base+uint64(b)) & 1) << uint(b)
	}
	return w
}

// genTile generates the whole tile (row, ti) — lazyTileWords words, the
// last tile zero-padded past the object range.
func (lz *Lazy) genTile(row, ti int) []uint64 {
	tile := make([]uint64, lazyTileWords)
	for i := range tile {
		if wi := ti*lazyTileWords + i; wi < lz.words {
			tile[i] = lz.rawWord(row, wi)
		}
	}
	return tile
}

// rowWord returns word wi of generation row `row`, through the tile cache
// when one is configured.
func (lz *Lazy) rowWord(row, wi int) uint64 {
	if lz.tiles == nil {
		return lz.rawWord(row, wi)
	}
	ti := wi / lazyTileWords
	key := uint64(row)<<32 | uint64(ti)
	tile, ok := lz.tiles.Get(key)
	if !ok {
		tile = lz.genTile(row, ti)
		lz.tiles.Put(key, tile)
	}
	return tile[wi%lazyTileWords]
}

// flipMaskAt returns the XOR mask of player p's flip edits in word wi
// (zero for the uniform kind and for players without edits there).
func (lz *Lazy) flipMaskAt(p, wi int) uint64 {
	if lz.flipStart == nil {
		return 0
	}
	lo, hi := lz.flipStart[p], lz.flipStart[p+1]
	// Entries are word-ascending; players have at most radius edits, so a
	// scan beats a binary search at real sizes.
	for i := lo; i < hi; i++ {
		if int(lz.flipWord[i]) == wi {
			return lz.flipMask[i]
		}
	}
	return 0
}

// TruthWord implements TruthSource: the center/row word XOR the player's
// flip edits. It panics on an out-of-range word index exactly like
// bitvec.Vector.WordMask, so lazy and dense worlds fail identically.
func (lz *Lazy) TruthWord(p, wi int) uint64 {
	if wi < 0 || wi >= lz.words {
		panic(fmt.Sprintf("prefgen: word %d out of range [0,%d)", wi, lz.words))
	}
	return lz.rowWord(lz.rowID(p), wi) ^ lz.flipMaskAt(p, wi)
}

// TruthBit implements TruthSource. Cacheless reads cost one hash (plus the
// flip scan); cached reads ride the tile path so hot rows stay warm.
func (lz *Lazy) TruthBit(p, o int) bool {
	if lz.tiles != nil {
		return lz.TruthWord(p, o/64)>>(uint(o)%64)&1 == 1
	}
	row := lz.rowID(p)
	bit := lz.base.At(uint64(row)*uint64(lz.m)+uint64(o)) & 1
	bit ^= lz.flipMaskAt(p, o/64) >> (uint(o) % 64) & 1
	return bit == 1
}

// MaterializeRow builds player p's full row (oracle tests, measurement).
func (lz *Lazy) MaterializeRow(p int) bitvec.Vector { return Materialize(lz, p) }

// lazyFlipEnt is one replayed flip edit before the per-player flatten.
type lazyFlipEnt struct {
	p    int32
	word int32
	mask uint64
}

// lazyInstance prepares the shared parts of a lazy construction: the buffer
// arenas (fresh allocation for a nil receiver), the stream snapshot, and a
// tile cache per SourceSpec tile count.
func (b *Buffer) lazyInstance(rng *xrand.Stream, n, m, tiles int) (*Instance, *Lazy) {
	var in *Instance
	var lz *Lazy
	if b == nil {
		in = &Instance{ClusterOf: make([]int, n)}
		lz = &Lazy{}
	} else {
		if cap(b.clusterOf) < n {
			b.clusterOf = make([]int, n)
		}
		b.inst = Instance{ClusterOf: b.clusterOf[:n]}
		in = &b.inst
		lz = &b.lz
		*lz = Lazy{} // drop the previous point's metadata and tile cache
	}
	lz.n, lz.m, lz.words = n, m, (m+63)/64
	lz.base = *rng // pure At reads from here on; rng itself keeps advancing
	lz.tiles = lru.New[uint64, []uint64](tiles)
	lz.clusterOf = in.ClusterOf
	in.src = lz
	return in, lz
}

// LazyUniform is the lazy Uniform: identical truth and stream consumption,
// O(1) memory. tiles > 0 adds a tile cache (SourceSpec.Tiles).
func LazyUniform(rng *xrand.Stream, n, m, tiles int) *Instance {
	return (*Buffer)(nil).LazyUniform(rng, n, m, tiles)
}

// LazyUniform is the pooled lazy Uniform; see Buffer.
func (b *Buffer) LazyUniform(rng *xrand.Stream, n, m, tiles int) *Instance {
	in, lz := b.lazyInstance(rng, n, m, tiles)
	in.PlantedDiameter = -1
	lz.kind = lazyUniform
	for p := range in.ClusterOf {
		in.ClusterOf[p] = -1
	}
	// Dense Uniform draws one coin per cell, row-major; leave the caller's
	// stream exactly where it would have.
	rng.Skip(uint64(n) * uint64(m))
	return in
}

// LazyDiameterClusters is the lazy DiameterClusters: identical truth and
// stream consumption, O(n + flips) memory. Centers are never materialized —
// a member's row is its center's coin words XOR its replayed flip edits.
func LazyDiameterClusters(rng *xrand.Stream, n, m, clusterSize, diameter, tiles int) *Instance {
	return (*Buffer)(nil).LazyDiameterClusters(rng, n, m, clusterSize, diameter, tiles)
}

// LazyDiameterClusters is the pooled lazy DiameterClusters; see Buffer.
func (b *Buffer) LazyDiameterClusters(rng *xrand.Stream, n, m, clusterSize, diameter, tiles int) *Instance {
	if clusterSize <= 0 || clusterSize > n {
		panic(fmt.Sprintf("prefgen: bad cluster size %d for n=%d", clusterSize, n))
	}
	numClusters := n / clusterSize
	if numClusters == 0 {
		numClusters = 1
	}
	in, lz := b.lazyInstance(rng, n, m, tiles)
	in.PlantedDiameter = diameter
	lz.kind = lazyCluster
	lz.numCenters = numClusters
	// Dense draws numClusters·m center coins first; skip them — rawWord
	// regenerates any of them on demand.
	rng.Skip(uint64(numClusters) * uint64(m))
	perm := rng.Perm(n)
	var ents []lazyFlipEnt
	if b != nil {
		ents = b.lzEnts[:0]
	}
	for rank, p := range perm {
		c := rank / clusterSize
		if c >= numClusters {
			c = numClusters - 1 // remainder joins the last cluster
		}
		in.ClusterOf[p] = c
		ents = replayFlips(rng, ents, int32(p), m, diameter)
	}
	if b != nil {
		b.lzEnts = ents
	}
	b.flattenFlips(lz, ents)
	return in
}

// LazyZipfClusters is the lazy ZipfClusters: identical truth and stream
// consumption, O(n + flips) memory.
func LazyZipfClusters(rng *xrand.Stream, n, m, numClusters int, alpha float64, diameter, tiles int) *Instance {
	return (*Buffer)(nil).LazyZipfClusters(rng, n, m, numClusters, alpha, diameter, tiles)
}

// LazyZipfClusters is the pooled lazy ZipfClusters; see Buffer.
func (b *Buffer) LazyZipfClusters(rng *xrand.Stream, n, m, numClusters int, alpha float64, diameter, tiles int) *Instance {
	if numClusters <= 0 {
		panic("prefgen: numClusters must be positive")
	}
	in, lz := b.lazyInstance(rng, n, m, tiles)
	in.PlantedDiameter = diameter
	lz.kind = lazyZipf
	lz.numCenters = numClusters
	rng.Skip(uint64(numClusters) * uint64(m))
	z := xrand.NewZipf(rng, numClusters, alpha)
	var ents []lazyFlipEnt
	if b != nil {
		ents = b.lzEnts[:0]
	}
	for p := 0; p < n; p++ {
		in.ClusterOf[p] = z.Draw()
		ents = replayFlips(rng, ents, int32(p), m, diameter)
	}
	if b != nil {
		b.lzEnts = ents
	}
	b.flattenFlips(lz, ents)
	return in
}

// replayFlips draws one player's flip edits exactly as the dense generator
// does (Intn then Sample — both variable-draw, hence the replay) and
// appends them as merged (word, mask) entries. Sample returns sorted
// objects, so entries come out word-ascending.
func replayFlips(rng *xrand.Stream, ents []lazyFlipEnt, p int32, m, diameter int) []lazyFlipEnt {
	if diameter <= 0 {
		return ents
	}
	radius := diameter / 2
	flips := rng.Intn(radius + 1)
	for _, o := range rng.Sample(m, flips) {
		word, bit := int32(o/64), uint64(1)<<(uint(o)%64)
		if k := len(ents); k > 0 && ents[k-1].p == p && ents[k-1].word == word {
			ents[k-1].mask |= bit
			continue
		}
		ents = append(ents, lazyFlipEnt{p: p, word: word, mask: bit})
	}
	return ents
}

// flattenFlips counting-sorts the replayed entries by player into the
// Lazy's flat per-player ranges (stable, so word order is preserved),
// reusing the buffer's arenas when pooled.
func (b *Buffer) flattenFlips(lz *Lazy, ents []lazyFlipEnt) {
	n := lz.n
	var start []int32
	var words []int32
	var masks []uint64
	if b != nil {
		start = growInt32(b.lzStart, n+1)
		words = growInt32(b.lzWord, len(ents))
		masks = growUint64(b.lzMask, len(ents))
		b.lzStart, b.lzWord, b.lzMask = start, words, masks
	} else {
		start = make([]int32, n+1)
		words = make([]int32, len(ents))
		masks = make([]uint64, len(ents))
	}
	for i := range start {
		start[i] = 0
	}
	for _, e := range ents {
		start[e.p+1]++
	}
	for i := 1; i <= n; i++ {
		start[i] += start[i-1]
	}
	// Scatter using a moving cursor per player; each player's entries are
	// contiguous in ents, so a single pass with the prefix copy is stable.
	cursor := append([]int32(nil), start[:n]...)
	for _, e := range ents {
		pos := cursor[e.p]
		cursor[e.p]++
		words[pos], masks[pos] = e.word, e.mask
	}
	lz.flipStart, lz.flipWord, lz.flipMask = start, words, masks
}

func growInt32(s []int32, n int) []int32 {
	if cap(s) < n {
		return make([]int32, n)
	}
	return s[:n]
}

func growUint64(s []uint64, n int) []uint64 {
	if cap(s) < n {
		return make([]uint64, n)
	}
	return s[:n]
}
