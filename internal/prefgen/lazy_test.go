package prefgen

import (
	"fmt"
	"testing"
	"testing/quick"

	"collabscore/internal/xrand"
)

// lazyCase pairs a dense generator with its lazy twin for the oracle matrix.
type lazyCase struct {
	name  string
	dense func(rng *xrand.Stream, n, m int) *Instance
	lazy  func(rng *xrand.Stream, n, m, tiles int) *Instance
}

func lazyCases(clusterSize, numClusters, diameter int, alpha float64) []lazyCase {
	return []lazyCase{
		{
			name:  "uniform",
			dense: func(rng *xrand.Stream, n, m int) *Instance { return Uniform(rng, n, m) },
			lazy: func(rng *xrand.Stream, n, m, tiles int) *Instance {
				return LazyUniform(rng, n, m, tiles)
			},
		},
		{
			name: fmt.Sprintf("cluster/size=%d,d=%d", clusterSize, diameter),
			dense: func(rng *xrand.Stream, n, m int) *Instance {
				return DiameterClusters(rng, n, m, clusterSize, diameter)
			},
			lazy: func(rng *xrand.Stream, n, m, tiles int) *Instance {
				return LazyDiameterClusters(rng, n, m, clusterSize, diameter, tiles)
			},
		},
		{
			name: fmt.Sprintf("zipf/k=%d,d=%d", numClusters, diameter),
			dense: func(rng *xrand.Stream, n, m int) *Instance {
				return ZipfClusters(rng, n, m, numClusters, alpha, diameter)
			},
			lazy: func(rng *xrand.Stream, n, m, tiles int) *Instance {
				return LazyZipfClusters(rng, n, m, numClusters, alpha, diameter, tiles)
			},
		},
	}
}

// requireLazyMatchesDense pins the whole lazy contract against the dense
// oracle for one (generator, size, seed, tiles) point: identical planted
// metadata, every TruthWord and TruthBit equal to the materialized matrix,
// and identical post-generation stream state (so downstream split/draw
// sequences cannot diverge between representations).
func requireLazyMatchesDense(t *testing.T, c lazyCase, n, m int, seed uint64, tiles int) {
	t.Helper()
	dRng, lRng := xrand.New(seed), xrand.New(seed)
	dense := c.dense(dRng, n, m)
	lz := c.lazy(lRng, n, m, tiles)

	if dRng.Uint64() != lRng.Uint64() {
		t.Fatalf("%s n=%d m=%d seed=%d: lazy generator left the stream in a different state", c.name, n, m, seed)
	}
	if lz.Truth != nil || lz.Centers != nil {
		t.Fatalf("%s: lazy instance materialized truth/centers", c.name)
	}
	if lz.N() != dense.N() || lz.M() != dense.M() {
		t.Fatalf("%s: dims (%d,%d), want (%d,%d)", c.name, lz.N(), lz.M(), dense.N(), dense.M())
	}
	if lz.PlantedDiameter != dense.PlantedDiameter {
		t.Fatalf("%s: PlantedDiameter %d, want %d", c.name, lz.PlantedDiameter, dense.PlantedDiameter)
	}
	for p := range dense.ClusterOf {
		if lz.ClusterOf[p] != dense.ClusterOf[p] {
			t.Fatalf("%s: ClusterOf[%d] = %d, want %d", c.name, p, lz.ClusterOf[p], dense.ClusterOf[p])
		}
	}

	src := lz.Source()
	if _, ok := src.(*Lazy); !ok {
		t.Fatalf("%s: Source() = %T, want *Lazy", c.name, src)
	}
	words := (m + 63) / 64
	for p := 0; p < n; p++ {
		want := dense.Truth[p]
		for wi := 0; wi < words; wi++ {
			if got := src.TruthWord(p, wi); got != want.Word(wi) {
				t.Fatalf("%s seed=%d: TruthWord(%d,%d) = %#x, want %#x", c.name, seed, p, wi, got, want.Word(wi))
			}
		}
		if !Materialize(src, p).Equal(want) {
			t.Fatalf("%s seed=%d: materialized row %d differs from dense", c.name, seed, p)
		}
	}
	// Spot-check the single-bit path (it has its own cacheless fast path).
	probe := xrand.New(seed ^ 0xbeef)
	for i := 0; i < 200; i++ {
		p, o := probe.Intn(n), probe.Intn(m)
		if src.TruthBit(p, o) != dense.Truth[p].Get(o) {
			t.Fatalf("%s seed=%d: TruthBit(%d,%d) mismatch", c.name, seed, p, o)
		}
	}
}

// TestLazyMatchesDense is the core oracle pin: for every generator family,
// word-unaligned m, zero and positive planted diameters, several seeds, and
// cached vs cacheless tile configurations, the lazy truth source must
// reproduce the dense matrix bit for bit.
func TestLazyMatchesDense(t *testing.T) {
	sizes := []struct{ n, m int }{
		{17, 63},  // sub-word row
		{40, 64},  // exact word boundary
		{33, 129}, // word + 1 tail bit
		{64, 300},
	}
	for _, diameter := range []int{0, 10} {
		for _, sz := range sizes {
			for _, c := range lazyCases(7, 5, diameter, 1.1) {
				for _, tiles := range []int{0, 4} {
					for seed := uint64(1); seed <= 3; seed++ {
						requireLazyMatchesDense(t, c, sz.n, sz.m, seed, tiles)
					}
				}
			}
		}
	}
}

// TestLazyPooledMatchesFresh pins that the pooled (Buffer) lazy generators
// are draw-for-draw identical to the package-level ones, including when the
// buffer is reused across points of different shapes and modes — the sweep
// pool's usage pattern.
func TestLazyPooledMatchesFresh(t *testing.T) {
	var buf Buffer
	points := []struct {
		n, m, diameter int
	}{
		{24, 100, 6},
		{40, 65, 0},
		{12, 200, 8},
	}
	for _, pt := range points {
		for _, mode := range []string{"uniform", "cluster", "zipf", "dense-interleave"} {
			fresh := xrand.New(uint64(pt.n)*1000 + uint64(pt.m))
			pooled := xrand.New(uint64(pt.n)*1000 + uint64(pt.m))
			var want, got *Instance
			switch mode {
			case "uniform":
				want = LazyUniform(fresh, pt.n, pt.m, 2)
				got = buf.LazyUniform(pooled, pt.n, pt.m, 2)
			case "cluster":
				want = LazyDiameterClusters(fresh, pt.n, pt.m, 6, pt.diameter, 2)
				got = buf.LazyDiameterClusters(pooled, pt.n, pt.m, 6, pt.diameter, 2)
			case "zipf":
				want = LazyZipfClusters(fresh, pt.n, pt.m, 4, 1.2, pt.diameter, 0)
				got = buf.LazyZipfClusters(pooled, pt.n, pt.m, 4, 1.2, pt.diameter, 0)
			case "dense-interleave":
				// A dense generation between lazy points must not corrupt
				// the arenas (the paired dense/lazy sweep alternates them).
				want = DiameterClusters(fresh, pt.n, pt.m, 6, pt.diameter)
				got = buf.DiameterClusters(pooled, pt.n, pt.m, 6, pt.diameter)
			}
			if fresh.Uint64() != pooled.Uint64() {
				t.Fatalf("%s %v: pooled generator consumed a different stream", mode, pt)
			}
			for p := 0; p < pt.n; p++ {
				if got.ClusterOf[p] != want.ClusterOf[p] {
					t.Fatalf("%s %v: ClusterOf[%d] = %d, want %d", mode, pt, p, got.ClusterOf[p], want.ClusterOf[p])
				}
				if !Materialize(got.Source(), p).Equal(Materialize(want.Source(), p)) {
					t.Fatalf("%s %v: pooled row %d differs from fresh", mode, pt, p)
				}
			}
		}
	}
}

// TestLazyReadsAreReproducible is the determinism-contract meta-test for
// TruthSource: any (seed, player, word) read returns the same bits on every
// call, regardless of read order, interleaving, or cache state. quick.Check
// drives random read schedules against first-read snapshots.
func TestLazyReadsAreReproducible(t *testing.T) {
	const n, m = 30, 200
	words := (m + 63) / 64
	build := func(seed uint64, tiles int) *Instance {
		return LazyDiameterClusters(xrand.New(seed), n, m, 5, 12, tiles)
	}
	err := quick.Check(func(seed uint64, rawP, rawWi uint16, tiles uint8) bool {
		p, wi := int(rawP)%n, int(rawWi)%words
		cached := build(seed, int(tiles)%8)
		first := cached.Source().TruthWord(p, wi)
		// Re-read after unrelated reads have churned the tile cache.
		for i := 0; i < 50; i++ {
			cached.Source().TruthWord((p*7+i)%n, (wi+i)%words)
		}
		if cached.Source().TruthWord(p, wi) != first {
			return false
		}
		// A separately constructed source over the same seed agrees too.
		return build(seed, 0).Source().TruthWord(p, wi) == first
	}, &quick.Config{MaxCount: 40})
	if err != nil {
		t.Fatal(err)
	}
}

// TestLazyTileCacheMatchesCacheless pins hit ≡ recompute: reading the same
// cells through a tiny (thrashing) cache, a large cache, and no cache at
// all yields identical words, in whatever order the reads arrive.
func TestLazyTileCacheMatchesCacheless(t *testing.T) {
	const n, m = 50, 1500 // 24 words per row: several tiles
	mk := func(tiles int) TruthSource {
		return LazyDiameterClusters(xrand.New(99), n, m, 10, 20, tiles).Source()
	}
	cacheless, tiny, big := mk(0), mk(1), mk(1024)
	order := xrand.New(7)
	for i := 0; i < 5000; i++ {
		p, wi := order.Intn(n), order.Intn((m+63)/64)
		want := cacheless.TruthWord(p, wi)
		if got := tiny.TruthWord(p, wi); got != want {
			t.Fatalf("tiny cache: TruthWord(%d,%d) = %#x, want %#x", p, wi, got, want)
		}
		if got := big.TruthWord(p, wi); got != want {
			t.Fatalf("big cache: TruthWord(%d,%d) = %#x, want %#x", p, wi, got, want)
		}
	}
}

// TestLazyConcurrentProbes hammers one cached lazy source from several
// goroutines under the race detector: the tile cache is the only shared
// mutable state, and every read must stay bit-identical to a recompute.
func TestLazyConcurrentProbes(t *testing.T) {
	const n, m = 40, 2000
	in := LazyDiameterClusters(xrand.New(5), n, m, 8, 16, 4)
	src := in.Source()
	oracle := LazyDiameterClusters(xrand.New(5), n, m, 8, 16, 0).Source()
	done := make(chan error, 8)
	for g := 0; g < 8; g++ {
		go func(g int) {
			order := xrand.New(uint64(g) + 100)
			for i := 0; i < 3000; i++ {
				p, wi := order.Intn(n), order.Intn((m+63)/64)
				if got, want := src.TruthWord(p, wi), oracle.TruthWord(p, wi); got != want {
					done <- fmt.Errorf("goroutine %d: TruthWord(%d,%d) = %#x, want %#x", g, p, wi, got, want)
					return
				}
			}
			done <- nil
		}(g)
	}
	for g := 0; g < 8; g++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}

// TestLazyWordTailMasking pins that bits past the last object are zero in
// every lazy word, exactly as bitvec.Vector.Word guarantees for dense rows.
func TestLazyWordTailMasking(t *testing.T) {
	const n, m = 10, 70 // last word has 6 live bits
	src := LazyUniform(xrand.New(3), n, m, 0).Source()
	var mask uint64 = (1 << (m % 64)) - 1
	for p := 0; p < n; p++ {
		if w := src.TruthWord(p, 1); w&^mask != 0 {
			t.Fatalf("row %d: tail word %#x has bits past object %d", p, w, m)
		}
	}
}

// TestLazyWordPanicsLikeDense pins that an out-of-range word read fails the
// same way on both representations (the world layer relies on it).
func TestLazyWordPanicsLikeDense(t *testing.T) {
	src := LazyUniform(xrand.New(1), 4, 100, 0).Source()
	for _, wi := range []int{-1, 2} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("TruthWord(0,%d) did not panic", wi)
				}
			}()
			src.TruthWord(0, wi)
		}()
	}
}

// TestMaterializeDense pins the Dense fast path of Materialize: a clone,
// not an alias.
func TestMaterializeDense(t *testing.T) {
	in := Uniform(xrand.New(2), 5, 90)
	row := Materialize(in.Source(), 3)
	if !row.Equal(in.Truth[3]) {
		t.Fatal("materialized dense row differs")
	}
	row.Flip(0)
	if row.Equal(in.Truth[3]) {
		t.Fatal("Materialize aliased the dense row")
	}
}

// TestParseSourceSpec pins the spec grammar: canonical forms round-trip
// through String, the default is dense, and malformed specs are rejected.
func TestParseSourceSpec(t *testing.T) {
	good := []struct {
		in   string
		want SourceSpec
		str  string
	}{
		{"", SourceSpec{}, "dense"},
		{"dense", SourceSpec{}, "dense"},
		{"lazy", SourceSpec{Kind: "lazy"}, "lazy"},
		{"lazy:1", SourceSpec{Kind: "lazy", Tiles: 1}, "lazy:1"},
		{"lazy:4096", SourceSpec{Kind: "lazy", Tiles: 4096}, "lazy:4096"},
	}
	for _, g := range good {
		sp, err := ParseSourceSpec(g.in)
		if err != nil {
			t.Fatalf("ParseSourceSpec(%q): %v", g.in, err)
		}
		if sp != g.want {
			t.Fatalf("ParseSourceSpec(%q) = %+v, want %+v", g.in, sp, g.want)
		}
		if sp.String() != g.str {
			t.Fatalf("ParseSourceSpec(%q).String() = %q, want %q", g.in, sp.String(), g.str)
		}
		if rt, err := ParseSourceSpec(sp.String()); err != nil || rt != sp {
			t.Fatalf("round-trip of %q failed: %+v, %v", g.in, rt, err)
		}
	}
	bad := []string{
		"Dense", "LAZY", "lazy:", "lazy:0", "lazy:-3", "lazy:2.5", "lazy:x",
		"lazy:1:2", "eager", "dense:4", ":4", "lazy :4", " lazy", "lazy ",
	}
	for _, s := range bad {
		if _, err := ParseSourceSpec(s); err == nil {
			t.Fatalf("ParseSourceSpec(%q) accepted a malformed spec", s)
		}
	}
}

// FuzzTruthSpec fuzzes the -truth parser: no panics, and every accepted
// spec must be canonical under a String round-trip with consistent
// IsDense/Tiles invariants.
func FuzzTruthSpec(f *testing.F) {
	for _, s := range []string{"", "dense", "lazy", "lazy:16", "lazy:0", "lazy:-1", "exact", "lsh:8:4", "lazy:99999999999999999999"} {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, s string) {
		sp, err := ParseSourceSpec(s)
		if err != nil {
			if sp != (SourceSpec{}) {
				t.Fatalf("error return carried a non-zero spec: %+v", sp)
			}
			return
		}
		if sp.IsDense() && sp.Tiles != 0 {
			t.Fatalf("dense spec with tiles: %+v", sp)
		}
		if !sp.IsDense() && (sp.Kind != "lazy" || sp.Tiles < 0) {
			t.Fatalf("accepted non-canonical spec: %+v", sp)
		}
		rt, err := ParseSourceSpec(sp.String())
		if err != nil || rt != sp {
			t.Fatalf("accepted spec %q does not round-trip: %+v, %v", s, rt, err)
		}
	})
}

// TestLazyTileCacheSteadyStateAllocFree: once every tile of a row's working
// set is cached, TruthWord reads are pure cache hits and must not allocate.
func TestLazyTileCacheSteadyStateAllocFree(t *testing.T) {
	const n, m, tiles = 4, 2048, 64 // 2 tiles per row, 8 tiles total — all fit
	in := LazyDiameterClusters(xrand.New(6), n, m, 2, 8, tiles)
	src := in.Source()
	words := (m + 63) / 64
	var warm uint64
	for p := 0; p < n; p++ {
		for wi := 0; wi < words; wi++ {
			warm ^= src.TruthWord(p, wi)
		}
	}
	var sink uint64
	i := 0
	if got := testing.AllocsPerRun(200, func() {
		sink ^= src.TruthWord(i%n, (i/n)%words)
		i++
	}); got != 0 {
		t.Fatalf("warm tile-cache TruthWord allocates %v times per run", got)
	}
	_ = warm + sink
}
