// Package prefgen generates hidden preference matrices for the simulation.
//
// The paper's guarantees quantify over all inputs; its proofs are driven by
// specific structured families — planted clusters of identical preferences
// (Theorem 4), planted clusters of bounded diameter D (Theorem 5, Lemma 12),
// and the adversarial lower-bound distribution of Claim 2. This package
// implements each family, plus mixtures and Zipf-sized clusters for the
// example applications.
package prefgen

import (
	"fmt"

	"collabscore/internal/bitvec"
	"collabscore/internal/xrand"
)

// Instance is a generated preference matrix together with its planted
// structure, which experiments use as ground truth for OPT comparisons.
type Instance struct {
	// Truth[p] is player p's hidden preference vector (length M). It is nil
	// for lazily generated instances, whose truth lives behind Source() —
	// code that needs a materialized row uses Materialize. OPT oracles and
	// diameter measurements require dense truth.
	Truth []bitvec.Vector
	// ClusterOf[p] is the planted cluster index of player p, or -1 if p was
	// generated with independent random preferences.
	ClusterOf []int
	// Centers[c] is the prototype vector of planted cluster c. Lazy
	// instances leave it nil (centers are regenerated on demand).
	Centers []bitvec.Vector
	// PlantedDiameter is an upper bound on the diameter of each planted
	// cluster (0 for identical clusters, -1 if no bound was planted).
	PlantedDiameter int
	// src is the lazy truth source, set only by the Lazy* generators.
	src TruthSource
}

// Source returns the instance's truth as a TruthSource: the lazy source for
// lazily generated instances, a Dense wrapper over Truth otherwise.
func (in *Instance) Source() TruthSource {
	if in.src != nil {
		return in.src
	}
	return &Dense{rows: in.Truth}
}

// N returns the number of players.
func (in *Instance) N() int {
	if in.src != nil {
		return in.src.Players()
	}
	return len(in.Truth)
}

// M returns the number of objects.
func (in *Instance) M() int {
	if in.src != nil {
		return in.src.Objects()
	}
	if len(in.Truth) == 0 {
		return 0
	}
	return in.Truth[0].Len()
}

// ClusterMembers returns the player ids in planted cluster c.
func (in *Instance) ClusterMembers(c int) []int {
	var out []int
	for p, cc := range in.ClusterOf {
		if cc == c {
			out = append(out, p)
		}
	}
	return out
}

// MaxPlantedClusterDiameter computes the exact maximum pairwise Hamming
// distance within each planted cluster, returning the max over clusters.
// It is O(n² m/64) and intended for tests and OPT oracles.
func (in *Instance) MaxPlantedClusterDiameter() int {
	mx := 0
	for c := range in.Centers {
		members := in.ClusterMembers(c)
		for i := 0; i < len(members); i++ {
			for j := i + 1; j < len(members); j++ {
				d := in.Truth[members[i]].Hamming(in.Truth[members[j]])
				if d > mx {
					mx = d
				}
			}
		}
	}
	return mx
}

// Buffer is a reusable allocation arena for instance generation. Its
// generator methods (Uniform, DiameterClusters, ZipfClusters) draw exactly
// the same random streams as the package-level functions — for a given rng
// the generated instance is bit-identical — but build the result in pooled
// storage instead of fresh allocations, so a worker sweeping thousands of
// grid points pays the O(n·m) truth-matrix allocation once.
//
// Each generator call invalidates the Instance returned by the previous
// call on the same Buffer (the truth vectors are reused in place). A Buffer
// is not safe for concurrent use: pool one per worker. The zero value is
// ready to use, and a nil *Buffer falls back to fresh allocation on every
// call, which is how the package-level generators are implemented.
type Buffer struct {
	truth     []bitvec.Vector
	centers   []bitvec.Vector
	clusterOf []int
	inst      Instance
	// Lazy-generation arenas (see lazy.go). lz is the pooled Lazy value the
	// instance's Source() points at; the rest are replay scratch.
	lz      Lazy
	lzEnts  []lazyFlipEnt
	lzStart []int32
	lzWord  []int32
	lzMask  []uint64
}

// instance returns an Instance with n zeroed truth vectors of length m,
// numCenters zeroed center vectors, and a ClusterOf slice of length n,
// drawn from the buffer's pools (or freshly allocated for a nil receiver).
func (b *Buffer) instance(n, m, numCenters int) *Instance {
	if b == nil {
		in := &Instance{
			Truth:     zeroVecs(nil, n, m),
			ClusterOf: make([]int, n),
		}
		if numCenters > 0 {
			in.Centers = zeroVecs(nil, numCenters, m)
		}
		return in
	}
	b.truth = zeroVecs(b.truth, n, m)
	b.centers = zeroVecs(b.centers, numCenters, m)
	if cap(b.clusterOf) < n {
		b.clusterOf = make([]int, n)
	}
	b.inst = Instance{
		Truth:     b.truth,
		ClusterOf: b.clusterOf[:n],
		Centers:   b.centers,
	}
	return &b.inst
}

// zeroVecs resizes vs to k zeroed vectors of length m, reusing both the
// slice and each vector's backing words when capacities allow.
func zeroVecs(vs []bitvec.Vector, k, m int) []bitvec.Vector {
	if cap(vs) < k {
		grown := make([]bitvec.Vector, k)
		copy(grown, vs[:cap(vs)]) // keep old vectors' storage for Renew
		vs = grown
	}
	vs = vs[:k]
	for i := range vs {
		vs[i] = vs[i].Renew(m)
	}
	return vs
}

// Uniform generates n players with independent uniform preference vectors
// over m objects. No structure is planted.
func Uniform(rng *xrand.Stream, n, m int) *Instance {
	return (*Buffer)(nil).Uniform(rng, n, m)
}

// Uniform is the pooled Uniform; see Buffer.
func (b *Buffer) Uniform(rng *xrand.Stream, n, m int) *Instance {
	in := b.instance(n, m, 0)
	in.PlantedDiameter = -1
	for p := 0; p < n; p++ {
		fillRandom(rng, in.Truth[p])
		in.ClusterOf[p] = -1
	}
	return in
}

func randomVector(rng *xrand.Stream, m int) bitvec.Vector {
	v := bitvec.New(m)
	fillRandom(rng, v)
	return v
}

// fillRandom sets each bit of the zeroed vector v by a fair coin flip,
// drawing exactly the coins randomVector draws.
func fillRandom(rng *xrand.Stream, v bitvec.Vector) {
	for i := 0; i < v.Len(); i++ {
		if rng.Bool() {
			v.Set(i, true)
		}
	}
}

// IdenticalClusters partitions n players into clusters of exactly size
// clusterSize (the last cluster absorbs any remainder) and gives every
// member of a cluster the identical random prototype vector. This is the
// zero-radius setting of Theorem 4.
func IdenticalClusters(rng *xrand.Stream, n, m, clusterSize int) *Instance {
	return DiameterClusters(rng, n, m, clusterSize, 0)
}

// DiameterClusters plants clusters of size clusterSize whose members lie
// within Hamming distance diameter of each other: each member equals the
// cluster prototype with at most diameter/2 randomly chosen bits flipped.
// diameter = 0 yields identical clusters. Players are assigned to clusters
// in a random permutation so cluster membership is uncorrelated with id.
func DiameterClusters(rng *xrand.Stream, n, m, clusterSize, diameter int) *Instance {
	return (*Buffer)(nil).DiameterClusters(rng, n, m, clusterSize, diameter)
}

// DiameterClusters is the pooled DiameterClusters; see Buffer.
func (b *Buffer) DiameterClusters(rng *xrand.Stream, n, m, clusterSize, diameter int) *Instance {
	if clusterSize <= 0 || clusterSize > n {
		panic(fmt.Sprintf("prefgen: bad cluster size %d for n=%d", clusterSize, n))
	}
	numClusters := n / clusterSize
	if numClusters == 0 {
		numClusters = 1
	}
	in := b.instance(n, m, numClusters)
	in.PlantedDiameter = diameter
	for c := range in.Centers {
		fillRandom(rng, in.Centers[c])
	}
	perm := rng.Perm(n)
	for rank, p := range perm {
		c := rank / clusterSize
		if c >= numClusters {
			c = numClusters - 1 // remainder joins the last cluster
		}
		in.ClusterOf[p] = c
		v := in.Truth[p]
		v.CopyFrom(in.Centers[c])
		if diameter > 0 {
			radius := diameter / 2
			flips := rng.Intn(radius + 1)
			for _, i := range rng.Sample(m, flips) {
				v.Flip(i)
			}
		}
	}
	return in
}

// ZipfClusters plants numClusters clusters whose sizes follow a Zipf
// distribution with the given exponent (cluster 0 is largest), each of
// diameter at most diameter. This models the skewed taste populations of
// recommender workloads.
func ZipfClusters(rng *xrand.Stream, n, m, numClusters int, alpha float64, diameter int) *Instance {
	return (*Buffer)(nil).ZipfClusters(rng, n, m, numClusters, alpha, diameter)
}

// ZipfClusters is the pooled ZipfClusters; see Buffer.
func (b *Buffer) ZipfClusters(rng *xrand.Stream, n, m, numClusters int, alpha float64, diameter int) *Instance {
	if numClusters <= 0 {
		panic("prefgen: numClusters must be positive")
	}
	in := b.instance(n, m, numClusters)
	in.PlantedDiameter = diameter
	for c := range in.Centers {
		fillRandom(rng, in.Centers[c])
	}
	z := xrand.NewZipf(rng, numClusters, alpha)
	for p := 0; p < n; p++ {
		c := z.Draw()
		in.ClusterOf[p] = c
		v := in.Truth[p]
		v.CopyFrom(in.Centers[c])
		if diameter > 0 {
			radius := diameter / 2
			flips := rng.Intn(radius + 1)
			for _, i := range rng.Sample(m, flips) {
				v.Flip(i)
			}
		}
	}
	return in
}

// Mixture generates players whose preferences interpolate between two
// random prototypes: player p agrees with prototype A on a random
// player-specific fraction of objects and with prototype B elsewhere. This
// produces a continuum of correlations rather than clean clusters, the
// regime where diameter guessing matters.
func Mixture(rng *xrand.Stream, n, m int) *Instance {
	a := randomVector(rng, m)
	b := randomVector(rng, m)
	in := &Instance{
		Truth:           make([]bitvec.Vector, n),
		ClusterOf:       make([]int, n),
		Centers:         []bitvec.Vector{a, b},
		PlantedDiameter: -1,
	}
	for p := 0; p < n; p++ {
		frac := rng.Float64()
		v := bitvec.New(m)
		for i := 0; i < m; i++ {
			if rng.Bernoulli(frac) {
				v.Set(i, a.Get(i))
			} else {
				v.Set(i, b.Get(i))
			}
		}
		in.Truth[p] = v
		if frac >= 0.5 {
			in.ClusterOf[p] = 0
		} else {
			in.ClusterOf[p] = 1
		}
	}
	return in
}

// BlockStructured realizes the "hidden structure" remark of §2: certain
// sets of players have correlated preferences on certain subsets of the
// objects. The object space is split into blocks; for each block, each
// player group independently either shares the group's block prototype
// (with probability coherence) or is uniformly random there. No global
// cluster structure exists — correlation lives at the (group, block)
// level — which stresses the protocol's diameter search.
func BlockStructured(rng *xrand.Stream, n, m, numGroups, numBlocks int, coherence float64) *Instance {
	if numGroups <= 0 || numBlocks <= 0 {
		panic("prefgen: groups and blocks must be positive")
	}
	in := &Instance{
		Truth:           make([]bitvec.Vector, n),
		ClusterOf:       make([]int, n),
		Centers:         make([]bitvec.Vector, numGroups),
		PlantedDiameter: -1,
	}
	// Block boundaries.
	blockOf := make([]int, m)
	for o := 0; o < m; o++ {
		blockOf[o] = o * numBlocks / m
	}
	// Per-(group, block) prototypes.
	proto := make([][]bitvec.Vector, numGroups)
	for g := range proto {
		proto[g] = make([]bitvec.Vector, numBlocks)
		for bl := range proto[g] {
			proto[g][bl] = randomVector(rng, m) // only the block's bits are used
		}
		in.Centers[g] = proto[g][0]
	}
	for p := 0; p < n; p++ {
		g := p * numGroups / n
		in.ClusterOf[p] = g
		v := bitvec.New(m)
		// Decide coherence per (player, block).
		coherent := make([]bool, numBlocks)
		for bl := range coherent {
			coherent[bl] = rng.Bernoulli(coherence)
		}
		for o := 0; o < m; o++ {
			bl := blockOf[o]
			if coherent[bl] {
				v.Set(o, proto[g][bl].Get(o))
			} else {
				v.Set(o, rng.Bool())
			}
		}
		in.Truth[p] = v
	}
	return in
}

// AdversarialClaim2 builds the lower-bound instance from the proof of
// Claim 2. A special set P of n/B players (including a distinguished player
// p₀ = the first element) shares p₀'s random vector except on a special set
// S of D objects, where each member's bits are random. All players outside
// P have fully random vectors. No B-budget algorithm can predict p₀'s
// preferences on S better than guessing, so p₀'s error is ≥ D/4 in
// expectation.
//
// The returned instance plants one cluster (index 0) containing exactly the
// special players; SpecialObjects lists S.
func AdversarialClaim2(rng *xrand.Stream, n, m, b, d int) (*Instance, []int) {
	if d >= m/4 || d < 1 {
		panic(fmt.Sprintf("prefgen: Claim 2 requires 1 <= D < m/4, got D=%d m=%d", d, m))
	}
	groupSize := n / b
	if groupSize < 2 {
		panic(fmt.Sprintf("prefgen: Claim 2 requires n/B >= 2, got n=%d B=%d", n, b))
	}
	in := &Instance{
		Truth:           make([]bitvec.Vector, n),
		ClusterOf:       make([]int, n),
		Centers:         make([]bitvec.Vector, 1),
		PlantedDiameter: d,
	}
	base := randomVector(rng, m) // v(p₀)
	in.Centers[0] = base
	special := rng.Sample(m, d) // the special object set S
	members := rng.Sample(n, groupSize)
	inGroup := make(map[int]bool, groupSize)
	for _, p := range members {
		inGroup[p] = true
	}
	first := true
	for p := 0; p < n; p++ {
		if !inGroup[p] {
			in.ClusterOf[p] = -1
			in.Truth[p] = randomVector(rng, m)
			continue
		}
		in.ClusterOf[p] = 0
		if first {
			// p₀ keeps the base vector exactly.
			in.Truth[p] = base.Clone()
			first = false
			continue
		}
		v := base.Clone()
		for _, o := range special {
			v.Set(o, rng.Bool())
		}
		in.Truth[p] = v
	}
	return in, special
}
