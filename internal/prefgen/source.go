package prefgen

// The truth-source seam (DESIGN.md §14). The paper's protocols only ever
// PROBE truth bits — nothing needs the n×m matrix as a data structure — so
// how truth is represented is an implementation choice, exactly like
// neighbor discovery (cluster.NeighborIndex, §13). Dense is the
// materialized reference oracle and the default; Lazy computes any cell on
// demand as a pure function of the generation seed, in O(1) per word,
// dropping the O(n·m) memory wall. Both are bit-identical for the same
// generation stream: the oracle test layer pins every probe-path output.

import (
	"fmt"
	"strconv"
	"strings"

	"collabscore/internal/bitvec"
)

// TruthSource is the pluggable representation of a hidden preference
// matrix: n players × m objects of binary truth, addressed by (player,
// object word). Implementations must be pure — the same cell always reads
// the same bit — and safe for concurrent readers, because probe paths fan
// out across phase goroutines. Word reads mask bits past the last object
// to zero, mirroring bitvec.Vector.Word.
type TruthSource interface {
	// Players returns n; Objects returns m.
	Players() int
	Objects() int
	// TruthWord returns the 64 truth bits of player p's object word wi
	// (objects wi·64 … wi·64+63; bits past Objects() are zero).
	TruthWord(p, wi int) uint64
	// TruthBit returns the single truth bit v(p)_o.
	TruthBit(p, o int) bool
}

// Dense is the materialized truth source: a wrapper over the generated
// row vectors, the reference oracle every lazy representation is pinned
// against. It is the historical representation, bit for bit.
type Dense struct {
	rows []bitvec.Vector
}

// NewDense wraps materialized truth rows as a TruthSource.
func NewDense(rows []bitvec.Vector) *Dense { return &Dense{rows: rows} }

// Players returns the number of rows.
func (d *Dense) Players() int { return len(d.rows) }

// Objects returns the row length (0 when empty).
func (d *Dense) Objects() int {
	if len(d.rows) == 0 {
		return 0
	}
	return d.rows[0].Len()
}

// TruthWord returns word wi of row p.
func (d *Dense) TruthWord(p, wi int) uint64 { return d.rows[p].Word(wi) }

// TruthBit returns bit o of row p.
func (d *Dense) TruthBit(p, o int) bool { return d.rows[p].Get(o) }

// Rows exposes the backing vectors (world fast paths and Renew reuse).
func (d *Dense) Rows() []bitvec.Vector { return d.rows }

// Materialize builds player p's full truth row from any source. It is the
// bridge measurement code uses (world.TruthVector) and the oracle tests'
// workhorse: a lazy row materialized this way must equal the dense row.
func Materialize(src TruthSource, p int) bitvec.Vector {
	if d, ok := src.(*Dense); ok {
		return d.rows[p].Clone()
	}
	m := src.Objects()
	v := bitvec.New(m)
	for wi := 0; wi < (m+63)/64; wi++ {
		v.SetWord(wi, src.TruthWord(p, wi))
	}
	return v
}

// SourceSpec is the serializable truth-source knob carried by configs and
// sweep grids, mirroring cluster.IndexSpec. The zero value selects Dense —
// the default, so unset knobs keep the historical behavior bit for bit.
// Kind "lazy" selects on-demand generation; Tiles > 0 adds a fixed-capacity
// LRU of generated truth tiles (lru.Cache), whose hits are bit-identical to
// recomputation.
type SourceSpec struct {
	// Kind is "" or "dense" for the materialized oracle, "lazy" for
	// on-demand generation.
	Kind string
	// Tiles is the tile-cache capacity for lazy sources (0 = cacheless).
	Tiles int
}

// IsDense reports whether the spec selects the materialized reference
// representation.
func (sp SourceSpec) IsDense() bool { return sp.Kind == "" || sp.Kind == "dense" }

// String returns the canonical flag/axis form: "dense", "lazy", or
// "lazy:TILES". ParseSourceSpec inverts it.
func (sp SourceSpec) String() string {
	if sp.IsDense() {
		return "dense"
	}
	if sp.Tiles == 0 {
		return sp.Kind
	}
	return fmt.Sprintf("%s:%d", sp.Kind, sp.Tiles)
}

// ParseSourceSpec parses the "dense" | "lazy" | "lazy:TILES" forms used by
// Config.TruthSource, sweep specs, and cmd/sweep's -truth flag ("" and
// "dense" both yield the zero spec, so the default stays canonical).
// Parsing is strict — wrong field counts and non-positive tile counts are
// rejected rather than silently running a wrong experiment, matching
// cluster.ParseIndexSpec.
func ParseSourceSpec(s string) (SourceSpec, error) {
	switch s {
	case "", "dense":
		return SourceSpec{}, nil
	case "lazy":
		return SourceSpec{Kind: "lazy"}, nil
	}
	bad := func() (SourceSpec, error) {
		return SourceSpec{}, fmt.Errorf("prefgen: bad truth source %q (want dense, lazy, or lazy:TILES with positive tile count)", s)
	}
	parts := strings.Split(s, ":")
	if len(parts) != 2 || parts[0] != "lazy" {
		return bad()
	}
	tiles, err := strconv.Atoi(parts[1])
	if err != nil || tiles < 1 {
		return bad()
	}
	return SourceSpec{Kind: "lazy", Tiles: tiles}, nil
}
