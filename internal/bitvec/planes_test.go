package bitvec

import (
	"sync"
	"testing"
	"testing/quick"
)

func TestPlaneBits(t *testing.T) {
	cases := map[int]int{0: 1, 1: 1, 2: 2, 3: 2, 5: 3, 7: 3, 8: 4, 10: 4, 100: 7}
	for scale, want := range cases {
		if got := PlaneBits(scale); got != want {
			t.Fatalf("PlaneBits(%d) = %d, want %d", scale, got, want)
		}
	}
}

func TestPlanesSetGetRoundTrip(t *testing.T) {
	const n, scale = 131, 10 // non-word-multiple length, k = 4
	pl := PlanesForScale(n, scale)
	vals := make([]int, n)
	for i := 0; i < n; i++ {
		v := (i * 7) % (scale + 1)
		vals[i] = v
		pl.Set(i, v)
	}
	for i, want := range vals {
		if got := pl.Get(i); got != want {
			t.Fatalf("Get(%d) = %d, want %d", i, got, want)
		}
	}
	// Overwriting (including clearing high bits) must round-trip too.
	pl.Set(5, 0)
	if pl.Get(5) != 0 {
		t.Fatal("Set(5, 0) did not clear all planes")
	}
	got := pl.Ints()
	vals[5] = 0
	for i := range vals {
		if got[i] != vals[i] {
			t.Fatalf("Ints()[%d] = %d, want %d", i, got[i], vals[i])
		}
	}
}

// scalarL1 is the per-element reference the bit-sliced L1 is checked
// against.
func scalarL1(a, b []int) int {
	d := 0
	for i := range a {
		if a[i] > b[i] {
			d += a[i] - b[i]
		} else {
			d += b[i] - a[i]
		}
	}
	return d
}

// TestPlanesL1MatchesScalar: the word-parallel bit-sliced L1 equals the
// per-element reference on random inputs across scales (plane counts 1–7)
// and lengths straddling word boundaries.
func TestPlanesL1MatchesScalar(t *testing.T) {
	f := func(xa, xb []uint16, scaleSel uint8, lenSel uint8) bool {
		scales := []int{1, 2, 3, 5, 10, 31, 100}
		scale := scales[int(scaleSel)%len(scales)]
		n := len(xa)
		if len(xb) < n {
			n = len(xb)
		}
		// Stretch some cases past one word even with short quick inputs.
		n += int(lenSel) % 3 * 64
		a, b := make([]int, n), make([]int, n)
		for i := 0; i < n; i++ {
			var ra, rb uint16
			if i < len(xa) {
				ra = xa[i]
			} else {
				ra = uint16(i * 31)
			}
			if i < len(xb) {
				rb = xb[i]
			} else {
				rb = uint16(i * 17)
			}
			a[i], b[i] = int(ra)%(scale+1), int(rb)%(scale+1)
		}
		pa, pb := FromInts(a, scale), FromInts(b, scale)
		return pa.L1(pb) == scalarL1(a, b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPlanesL1SelfAndPanic(t *testing.T) {
	pl := FromInts([]int{1, 4, 2, 0, 5}, 5)
	if pl.L1(pl) != 0 {
		t.Fatal("self distance nonzero")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected shape-mismatch panic")
		}
	}()
	pl.L1(NewPlanes(5, 2))
}

func TestPlanesGather(t *testing.T) {
	pl := FromInts([]int{9, 1, 4, 7, 0, 3}, 10)
	g := pl.Gather([]int{3, 0, 5})
	want := []int{7, 9, 3}
	for j, w := range want {
		if g.Get(j) != w {
			t.Fatalf("Gather[%d] = %d, want %d", j, g.Get(j), w)
		}
	}
}

func TestPlanesCloneRenewCopy(t *testing.T) {
	pl := FromInts([]int{1, 2, 3}, 3)
	cl := pl.Clone()
	cl.Set(0, 0)
	if pl.Get(0) != 1 {
		t.Fatal("Clone shares storage")
	}
	if SamePlaneStorage(pl, cl) {
		t.Fatal("SamePlaneStorage false positive")
	}
	cp := NewPlanes(3, 2)
	cp.CopyFrom(pl)
	if !cp.Equal(pl) {
		t.Fatal("CopyFrom not equal")
	}

	// Renew in place: large enough backing is reused and zeroed.
	big := NewPlanes(256, 4)
	big.Set(17, 9)
	re := big.Renew(128, 4)
	if re.Len() != 128 || re.Bits() != 4 {
		t.Fatalf("Renew shape %d×%d", re.Len(), re.Bits())
	}
	for i := 0; i < 128; i++ {
		if re.Get(i) != 0 {
			t.Fatalf("Renew left value at %d", i)
		}
	}
	// Growing shape allocates fresh.
	grown := re.Renew(1024, 5)
	if grown.Len() != 1024 || grown.Bits() != 5 {
		t.Fatal("Renew grow failed")
	}
}

func TestPlanesWordLevelAccess(t *testing.T) {
	const n, scale = 70, 5
	pl := PlanesForScale(n, scale)
	// Set via plane words, read back per element.
	pl.SetPlaneWord(0, 1, ^uint64(0)) // bits 64..69 valid only
	for i := 64; i < n; i++ {
		if pl.Get(i) != 1 {
			t.Fatalf("word write missing at %d", i)
		}
	}
	if pl.PlaneWord(0, 1) != pl.WordMask(1) {
		t.Fatal("tail mask not applied")
	}
	if pl.Stride() != 2 {
		t.Fatalf("stride %d", pl.Stride())
	}
}

func TestAtomicTestAndSet(t *testing.T) {
	a := NewAtomic(130)
	if a.TestAndSet(129) {
		t.Fatal("fresh bit reported set")
	}
	if !a.TestAndSet(129) {
		t.Fatal("second set reported new")
	}
	if !a.Get(129) || a.Get(0) {
		t.Fatal("Get wrong")
	}
	if a.Count() != 1 {
		t.Fatalf("count %d", a.Count())
	}
	a.Reset()
	if a.Count() != 0 {
		t.Fatal("Reset left bits")
	}
}

func TestAtomicOrWord(t *testing.T) {
	a := NewAtomic(128)
	if nb := a.OrWord(1, 0b1011); nb != 0b1011 {
		t.Fatalf("first OrWord new bits %b", nb)
	}
	if nb := a.OrWord(1, 0b1110); nb != 0b0100 {
		t.Fatalf("overlapping OrWord new bits %b", nb)
	}
	if nb := a.OrWord(1, 0b1111); nb != 0 {
		t.Fatalf("no-op OrWord new bits %b", nb)
	}
}

// TestAtomicConcurrentExactlyOnce: under concurrent contention every bit is
// reported new exactly once, whichever path (TestAndSet or OrWord) wins.
func TestAtomicConcurrentExactlyOnce(t *testing.T) {
	const n, workers = 1024, 8
	a := NewAtomic(n)
	var total int64
	var mu sync.Mutex
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			local := int64(0)
			for i := 0; i < n; i++ {
				if w%2 == 0 {
					if !a.TestAndSet(i) {
						local++
					}
				} else if i%64 == 0 {
					local += int64(popcount(a.OrWord(i/64, ^uint64(0))))
				}
			}
			mu.Lock()
			total += local
			mu.Unlock()
		}(w)
	}
	wg.Wait()
	if total != n {
		t.Fatalf("charged %d bits, want %d", total, n)
	}
	if a.Count() != n {
		t.Fatalf("count %d, want %d", a.Count(), n)
	}
}

func popcount(x uint64) int {
	c := 0
	for ; x != 0; x &= x - 1 {
		c++
	}
	return c
}

// TestPlanesSubFrom: the word-parallel broadcast c − v matches the scalar
// reference and panics on underflow.
func TestPlanesSubFrom(t *testing.T) {
	vals := make([]int, 131)
	for i := range vals {
		vals[i] = (i * 5) % 8
	}
	pl := FromInts(vals, 9)
	mir := pl.SubFrom(9)
	for i, v := range vals {
		if mir.Get(i) != 9-v {
			t.Fatalf("SubFrom(9)[%d] = %d, want %d", i, mir.Get(i), 9-v)
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected underflow panic")
		}
	}()
	pl.SubFrom(3) // values up to 7 exceed the minuend
}
