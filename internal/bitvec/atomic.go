package bitvec

import (
	"math/bits"
	"sync/atomic"
)

// Atomic is a lock-free atomic bitset. It backs the probe memos of both
// game substrates (the binary world.World and the rating-scale
// multival.World): Probe is the single hottest operation of every protocol
// phase, and under phase-level fan-out the same player's probes can be
// requested from several goroutines at once. A CAS per word guarantees
// exactly one goroutine learns each bit first, so probe charging stays
// schedule-independent without a mutex on the read path (DESIGN.md §7).
//
// The zero value is an empty bitset; use NewAtomic.
type Atomic struct {
	words []atomic.Uint64
}

// NewAtomic returns a zeroed atomic bitset of n bits.
func NewAtomic(n int) Atomic {
	return Atomic{words: make([]atomic.Uint64, (n+wordBits-1)/wordBits)}
}

// Words returns the number of 64-bit words backing the bitset.
func (a *Atomic) Words() int { return len(a.words) }

// TestAndSet marks bit i set and reports whether it was already set. Under
// concurrent callers exactly one observes false for each bit.
func (a *Atomic) TestAndSet(i int) (was bool) {
	wi, mask := i/wordBits, uint64(1)<<(uint(i)%wordBits)
	for {
		old := a.words[wi].Load()
		if old&mask != 0 {
			return true
		}
		if a.words[wi].CompareAndSwap(old, old|mask) {
			return false
		}
	}
}

// Get reports bit i without modifying it.
func (a *Atomic) Get(i int) bool {
	return a.words[i/wordBits].Load()&(1<<(uint(i)%wordBits)) != 0
}

// OrWord sets every bit of mask in word wi and returns the bits that were
// newly set (mask minus what was already set). One CAS settles up to 64
// bits at once; under concurrent callers each bit is still reported as new
// by exactly one caller, so bulk probe charging stays schedule-independent.
func (a *Atomic) OrWord(wi int, mask uint64) (newBits uint64) {
	for {
		old := a.words[wi].Load()
		nw := old | mask
		if nw == old {
			return 0
		}
		if a.words[wi].CompareAndSwap(old, nw) {
			return nw &^ old
		}
	}
}

// Count returns the number of set bits. It is not linearizable against
// concurrent writers; callers use it between phases.
func (a *Atomic) Count() int {
	c := 0
	for i := range a.words {
		c += bits.OnesCount64(a.words[i].Load())
	}
	return c
}

// Reset clears every bit. It must not run concurrently with other
// operations (a between-runs operation, not a phase operation).
func (a *Atomic) Reset() {
	for i := range a.words {
		a.words[i].Store(0)
	}
}
