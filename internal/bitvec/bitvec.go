// Package bitvec implements packed binary vectors used to represent player
// preference vectors throughout the collaborative scoring system.
//
// A Vector stores n bits in ⌈n/64⌉ machine words. All distance computations
// in the protocols reduce to Hamming distance between such vectors, so the
// word-parallel popcount implementation here is the hot path of every
// experiment.
package bitvec

import (
	"fmt"
	"math/bits"
	"strings"
)

const wordBits = 64

// Vector is a fixed-length packed bit vector. The zero value is an empty
// vector of length 0; use New to create a vector of a given length.
type Vector struct {
	n     int
	words []uint64
}

// New returns a zeroed Vector of length n. It panics if n is negative.
func New(n int) Vector {
	if n < 0 {
		panic("bitvec: negative length")
	}
	return Vector{n: n, words: make([]uint64, (n+wordBits-1)/wordBits)}
}

// FromBools builds a Vector from a boolean slice.
func FromBools(b []bool) Vector {
	v := New(len(b))
	for i, x := range b {
		if x {
			v.Set(i, true)
		}
	}
	return v
}

// FromBits builds a Vector from a slice of 0/1 integers. Any nonzero entry
// is treated as 1.
func FromBits(b []int) Vector {
	v := New(len(b))
	for i, x := range b {
		if x != 0 {
			v.Set(i, true)
		}
	}
	return v
}

// Len returns the number of bits in the vector.
func (v Vector) Len() int { return v.n }

// Words returns the number of 64-bit words backing the vector, ⌈Len/64⌉.
// Word-level protocol code (bulk probes, board lane tallies) iterates
// [0, Words()) and addresses bit i as word i/64, bit i%64.
func (v Vector) Words() int { return len(v.words) }

// Word returns backing word wi. Bits of the final word past Len are
// always zero. It panics if wi is out of range.
func (v Vector) Word(wi int) uint64 { return v.words[wi] }

// SetWord assigns backing word wi, masking off bits past Len so the
// vector's tail invariant (Count/Hamming never see garbage) holds.
// It panics if wi is out of range.
func (v Vector) SetWord(wi int, w uint64) {
	v.words[wi] = w & v.WordMask(wi)
}

// OrWord ORs the given bits into backing word wi, masking off bits past
// Len. It panics if wi is out of range.
func (v Vector) OrWord(wi int, w uint64) {
	v.words[wi] |= w & v.WordMask(wi)
}

// WordMask returns the mask of valid (in-range) bits for backing word wi:
// all ones except in the final word of a vector whose length is not a
// multiple of 64. It panics if wi is out of range.
func (v Vector) WordMask(wi int) uint64 {
	if wi < 0 || wi >= len(v.words) {
		panic(fmt.Sprintf("bitvec: word %d out of range [0,%d)", wi, len(v.words)))
	}
	if wi == len(v.words)-1 && v.n%wordBits != 0 {
		return (1 << (uint(v.n) % wordBits)) - 1
	}
	return ^uint64(0)
}

// SameStorage reports whether v and w share the same backing words — i.e.
// mutating one mutates the other. Protocol code that hands one immutable
// vector to many players (the workshare majority) uses it in tests to pin
// the sharing; two empty vectors never share.
func SameStorage(v, w Vector) bool {
	return len(v.words) > 0 && len(w.words) > 0 && &v.words[0] == &w.words[0]
}

// Get returns bit i. It panics if i is out of range.
func (v Vector) Get(i int) bool {
	v.check(i)
	return v.words[i/wordBits]&(1<<(uint(i)%wordBits)) != 0
}

// Set assigns bit i. It panics if i is out of range.
func (v Vector) Set(i int, b bool) {
	v.check(i)
	if b {
		v.words[i/wordBits] |= 1 << (uint(i) % wordBits)
	} else {
		v.words[i/wordBits] &^= 1 << (uint(i) % wordBits)
	}
}

// Flip inverts bit i. It panics if i is out of range.
func (v Vector) Flip(i int) {
	v.check(i)
	v.words[i/wordBits] ^= 1 << (uint(i) % wordBits)
}

func (v Vector) check(i int) {
	if i < 0 || i >= v.n {
		panic(fmt.Sprintf("bitvec: index %d out of range [0,%d)", i, v.n))
	}
}

// Clone returns a deep copy of v.
func (v Vector) Clone() Vector {
	w := Vector{n: v.n, words: make([]uint64, len(v.words))}
	copy(w.words, v.words)
	return w
}

// Zero clears every bit of v in place.
func (v Vector) Zero() {
	for i := range v.words {
		v.words[i] = 0
	}
}

// CopyFrom overwrites v's bits with w's. It panics if lengths differ.
func (v Vector) CopyFrom(w Vector) {
	if v.n != w.n {
		panic(fmt.Sprintf("bitvec: length mismatch %d vs %d", v.n, w.n))
	}
	copy(v.words, w.words)
}

// Renew returns a zeroed vector of length n, reusing v's backing words when
// they already span n bits (allocation-free reuse for pooled simulation
// state); otherwise it allocates like New. The receiver must not be in use
// elsewhere — Renew hands its storage to the returned vector.
func (v Vector) Renew(n int) Vector {
	words := (n + wordBits - 1) / wordBits
	if cap(v.words) < words {
		return New(n)
	}
	w := Vector{n: n, words: v.words[:words]}
	w.Zero()
	return w
}

// Equal reports whether v and w have the same length and bits.
func (v Vector) Equal(w Vector) bool {
	if v.n != w.n {
		return false
	}
	for i := range v.words {
		if v.words[i] != w.words[i] {
			return false
		}
	}
	return true
}

// Hamming returns the Hamming distance |v − w|, the number of positions on
// which the two vectors differ. It panics if lengths differ.
func (v Vector) Hamming(w Vector) int {
	if v.n != w.n {
		panic(fmt.Sprintf("bitvec: length mismatch %d vs %d", v.n, w.n))
	}
	d := 0
	for i := range v.words {
		d += bits.OnesCount64(v.words[i] ^ w.words[i])
	}
	return d
}

// Count returns the number of set bits (population count).
func (v Vector) Count() int {
	c := 0
	for _, w := range v.words {
		c += bits.OnesCount64(w)
	}
	return c
}

// Xor returns a new vector v ⊕ w. It panics if lengths differ.
func (v Vector) Xor(w Vector) Vector {
	if v.n != w.n {
		panic(fmt.Sprintf("bitvec: length mismatch %d vs %d", v.n, w.n))
	}
	out := New(v.n)
	for i := range v.words {
		out.words[i] = v.words[i] ^ w.words[i]
	}
	return out
}

// And returns a new vector v ∧ w. It panics if lengths differ.
func (v Vector) And(w Vector) Vector {
	if v.n != w.n {
		panic(fmt.Sprintf("bitvec: length mismatch %d vs %d", v.n, w.n))
	}
	out := New(v.n)
	for i := range v.words {
		out.words[i] = v.words[i] & w.words[i]
	}
	return out
}

// AndCount returns the number of positions set in both v and w — the
// population count of v ∧ w without materializing it. It is the
// allocation-free form of v.And(w).Count(), which the cluster peel calls
// once per scanned candidate per round (a fresh n-bit vector each time
// before this existed). It panics if lengths differ.
func (v Vector) AndCount(w Vector) int {
	if v.n != w.n {
		panic(fmt.Sprintf("bitvec: length mismatch %d vs %d", v.n, w.n))
	}
	c := 0
	for i := range v.words {
		c += bits.OnesCount64(v.words[i] & w.words[i])
	}
	return c
}

// AndOnesInto appends the sorted positions set in both v and w to dst and
// returns the extended slice — the allocation-free form of
// v.And(w).OnesIndices() for callers that reuse dst across calls. It
// panics if lengths differ.
func (v Vector) AndOnesInto(w Vector, dst []int) []int {
	if v.n != w.n {
		panic(fmt.Sprintf("bitvec: length mismatch %d vs %d", v.n, w.n))
	}
	for wi := range v.words {
		for x := v.words[wi] & w.words[wi]; x != 0; x &= x - 1 {
			dst = append(dst, wi*wordBits+bits.TrailingZeros64(x))
		}
	}
	return dst
}

// Or returns a new vector v ∨ w. It panics if lengths differ.
func (v Vector) Or(w Vector) Vector {
	if v.n != w.n {
		panic(fmt.Sprintf("bitvec: length mismatch %d vs %d", v.n, w.n))
	}
	out := New(v.n)
	for i := range v.words {
		out.words[i] = v.words[i] | w.words[i]
	}
	return out
}

// Not returns the bitwise complement of v (restricted to its length).
func (v Vector) Not() Vector {
	out := New(v.n)
	for i := range v.words {
		out.words[i] = ^v.words[i]
	}
	out.maskTail()
	return out
}

// maskTail zeroes the unused bits of the final word so that Count and
// Hamming never see garbage past position n.
func (v Vector) maskTail() {
	if v.n%wordBits != 0 && len(v.words) > 0 {
		v.words[len(v.words)-1] &= (1 << (uint(v.n) % wordBits)) - 1
	}
}

// FirstDiff returns the smallest position where v and w differ, or -1 if
// the vectors are equal. It is equivalent to inspecting DiffIndices()[0]
// without allocating the full difference list — the probe-to-eliminate
// loop of ZeroRadius only ever needs one disagreement at a time.
// It panics if lengths differ.
func (v Vector) FirstDiff(w Vector) int {
	if v.n != w.n {
		panic(fmt.Sprintf("bitvec: length mismatch %d vs %d", v.n, w.n))
	}
	for wi := range v.words {
		if x := v.words[wi] ^ w.words[wi]; x != 0 {
			return wi*wordBits + bits.TrailingZeros64(x)
		}
	}
	return -1
}

// DiffIndices returns the sorted positions where v and w differ. It panics
// if lengths differ. The result has length v.Hamming(w).
func (v Vector) DiffIndices(w Vector) []int {
	if v.n != w.n {
		panic(fmt.Sprintf("bitvec: length mismatch %d vs %d", v.n, w.n))
	}
	var out []int
	for wi := range v.words {
		x := v.words[wi] ^ w.words[wi]
		for x != 0 {
			b := bits.TrailingZeros64(x)
			out = append(out, wi*wordBits+b)
			x &= x - 1
		}
	}
	return out
}

// OnesIndices returns the sorted positions of set bits.
func (v Vector) OnesIndices() []int {
	var out []int
	for wi := range v.words {
		x := v.words[wi]
		for x != 0 {
			b := bits.TrailingZeros64(x)
			out = append(out, wi*wordBits+b)
			x &= x - 1
		}
	}
	return out
}

// Gather extracts the bits at the given positions into a new vector of
// length len(idx). Position idx[j] of v becomes bit j of the result.
func (v Vector) Gather(idx []int) Vector {
	out := New(len(idx))
	for j, i := range idx {
		if v.Get(i) {
			out.Set(j, true)
		}
	}
	return out
}

// Scatter writes bit j of src into position idx[j] of v, for all j.
// It panics if len(idx) != src.Len().
func (v Vector) Scatter(idx []int, src Vector) {
	if len(idx) != src.n {
		panic("bitvec: scatter length mismatch")
	}
	for j, i := range idx {
		v.Set(i, src.Get(j))
	}
}

// HammingOn returns the number of positions in idx on which v and w differ.
// It is equivalent to v.Gather(idx).Hamming(w.Gather(idx)) without the
// allocations.
func (v Vector) HammingOn(w Vector, idx []int) int {
	d := 0
	for _, i := range idx {
		if v.Get(i) != w.Get(i) {
			d++
		}
	}
	return d
}

// Key returns a compact string usable as a map key: two vectors have equal
// keys iff they are Equal. The encoding is the raw little-endian words plus
// the length, so it is cheap to compute and collision-free.
func (v Vector) Key() string {
	buf := make([]byte, 0, 8*len(v.words)+4)
	for _, w := range v.words {
		buf = append(buf,
			byte(w), byte(w>>8), byte(w>>16), byte(w>>24),
			byte(w>>32), byte(w>>40), byte(w>>48), byte(w>>56))
	}
	buf = append(buf, byte(v.n), byte(v.n>>8), byte(v.n>>16), byte(v.n>>24))
	return string(buf)
}

// String renders the vector as a 0/1 string, truncated for long vectors.
func (v Vector) String() string {
	var sb strings.Builder
	limit := v.n
	trunc := false
	if limit > 128 {
		limit = 128
		trunc = true
	}
	for i := 0; i < limit; i++ {
		if v.Get(i) {
			sb.WriteByte('1')
		} else {
			sb.WriteByte('0')
		}
	}
	if trunc {
		fmt.Fprintf(&sb, "…(+%d)", v.n-128)
	}
	return sb.String()
}

// Majority returns the bitwise majority of the given vectors: bit i of the
// result is 1 iff strictly more than half of the vectors have bit i set.
// Ties (possible with an even number of vectors) resolve to 0. It panics if
// vs is empty or lengths differ.
func Majority(vs []Vector) Vector {
	if len(vs) == 0 {
		panic("bitvec: majority of no vectors")
	}
	n := vs[0].n
	counts := make([]int, n)
	for _, v := range vs {
		if v.n != n {
			panic("bitvec: majority length mismatch")
		}
		for _, i := range v.OnesIndices() {
			counts[i]++
		}
	}
	out := New(n)
	for i, c := range counts {
		if 2*c > len(vs) {
			out.Set(i, true)
		}
	}
	return out
}

// Concat returns the concatenation of the given vectors.
func Concat(vs ...Vector) Vector {
	total := 0
	for _, v := range vs {
		total += v.n
	}
	out := New(total)
	pos := 0
	for _, v := range vs {
		for _, i := range v.OnesIndices() {
			out.Set(pos+i, true)
		}
		pos += v.n
	}
	return out
}
