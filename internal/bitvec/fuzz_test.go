package bitvec

import (
	"testing"
)

// bytesToVec builds a vector from fuzzer bytes (one bit per byte LSB).
func bytesToVec(data []byte) Vector {
	v := New(len(data))
	for i, b := range data {
		if b&1 == 1 {
			v.Set(i, true)
		}
	}
	return v
}

// FuzzHammingIdentities cross-checks the word-parallel Hamming path against
// a bit-by-bit reference, plus the XOR/Count identity, on arbitrary inputs.
func FuzzHammingIdentities(f *testing.F) {
	f.Add([]byte{1, 0, 1}, []byte{0, 0, 1})
	f.Add([]byte{}, []byte{})
	f.Add(make([]byte, 64), make([]byte, 200))
	f.Fuzz(func(t *testing.T, a, b []byte) {
		n := len(a)
		if len(b) < n {
			n = len(b)
		}
		x := bytesToVec(a[:n])
		y := bytesToVec(b[:n])
		// Bit-by-bit reference.
		ref := 0
		for i := 0; i < n; i++ {
			if x.Get(i) != y.Get(i) {
				ref++
			}
		}
		if got := x.Hamming(y); got != ref {
			t.Fatalf("Hamming = %d, reference %d", got, ref)
		}
		if got := x.Xor(y).Count(); got != ref {
			t.Fatalf("Xor.Count = %d, reference %d", got, ref)
		}
		if len(x.DiffIndices(y)) != ref {
			t.Fatal("DiffIndices length mismatch")
		}
	})
}

// FuzzKeyRoundTrip checks that Key is injective on (bits, length) pairs the
// fuzzer can construct.
func FuzzKeyRoundTrip(f *testing.F) {
	f.Add([]byte{1}, []byte{0})
	f.Fuzz(func(t *testing.T, a, b []byte) {
		x := bytesToVec(a)
		y := bytesToVec(b)
		if (x.Key() == y.Key()) != x.Equal(y) {
			t.Fatalf("Key collision/divergence: equal=%v", x.Equal(y))
		}
	})
}

// FuzzGatherScatter checks the subset round trip on arbitrary index
// selections derived from fuzzer bytes.
func FuzzGatherScatter(f *testing.F) {
	f.Add([]byte{1, 0, 1, 1}, []byte{0, 2})
	f.Fuzz(func(t *testing.T, data, sel []byte) {
		if len(data) == 0 {
			return
		}
		v := bytesToVec(data)
		// Build a duplicate-free index list from sel.
		seen := map[int]bool{}
		var idx []int
		for _, s := range sel {
			i := int(s) % len(data)
			if !seen[i] {
				seen[i] = true
				idx = append(idx, i)
			}
		}
		g := v.Gather(idx)
		w := New(len(data))
		w.Scatter(idx, g)
		for j, i := range idx {
			if w.Get(i) != g.Get(j) || g.Get(j) != v.Get(i) {
				t.Fatal("gather/scatter mismatch")
			}
		}
	})
}
