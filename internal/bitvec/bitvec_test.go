package bitvec

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func randVec(r *rand.Rand, n int) Vector {
	v := New(n)
	for i := 0; i < n; i++ {
		if r.Intn(2) == 1 {
			v.Set(i, true)
		}
	}
	return v
}

func TestNewIsZeroed(t *testing.T) {
	for _, n := range []int{0, 1, 63, 64, 65, 127, 128, 1000} {
		v := New(n)
		if v.Len() != n {
			t.Fatalf("Len() = %d, want %d", v.Len(), n)
		}
		if v.Count() != 0 {
			t.Fatalf("New(%d) has %d set bits", n, v.Count())
		}
	}
}

func TestSetGetFlip(t *testing.T) {
	v := New(130)
	for _, i := range []int{0, 1, 63, 64, 65, 128, 129} {
		if v.Get(i) {
			t.Fatalf("bit %d set in fresh vector", i)
		}
		v.Set(i, true)
		if !v.Get(i) {
			t.Fatalf("bit %d not set after Set", i)
		}
		v.Flip(i)
		if v.Get(i) {
			t.Fatalf("bit %d still set after Flip", i)
		}
		v.Flip(i)
		if !v.Get(i) {
			t.Fatalf("bit %d not set after double Flip", i)
		}
		v.Set(i, false)
		if v.Get(i) {
			t.Fatalf("bit %d set after Set(false)", i)
		}
	}
}

func TestOutOfRangePanics(t *testing.T) {
	cases := []func(){
		func() { New(10).Get(10) },
		func() { New(10).Get(-1) },
		func() { New(10).Set(10, true) },
		func() { New(10).Flip(-1) },
		func() { New(-1) },
	}
	for i, fn := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: expected panic", i)
				}
			}()
			fn()
		}()
	}
}

func TestLengthMismatchPanics(t *testing.T) {
	a, b := New(10), New(11)
	cases := []func(){
		func() { a.Hamming(b) },
		func() { a.Xor(b) },
		func() { a.And(b) },
		func() { a.Or(b) },
		func() { a.DiffIndices(b) },
	}
	for i, fn := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: expected panic", i)
				}
			}()
			fn()
		}()
	}
}

func TestHammingBasic(t *testing.T) {
	a := FromBits([]int{1, 0, 1, 0, 1})
	b := FromBits([]int{1, 1, 0, 0, 1})
	if d := a.Hamming(b); d != 2 {
		t.Fatalf("Hamming = %d, want 2", d)
	}
	if d := a.Hamming(a); d != 0 {
		t.Fatalf("self Hamming = %d, want 0", d)
	}
}

func TestHammingIsMetric(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for trial := 0; trial < 200; trial++ {
		n := 1 + r.Intn(300)
		a, b, c := randVec(r, n), randVec(r, n), randVec(r, n)
		ab, bc, ac := a.Hamming(b), b.Hamming(c), a.Hamming(c)
		if ab != b.Hamming(a) {
			t.Fatal("Hamming not symmetric")
		}
		if ac > ab+bc {
			t.Fatalf("triangle inequality violated: %d > %d + %d", ac, ab, bc)
		}
		if ab == 0 && !a.Equal(b) {
			t.Fatal("zero distance but not equal")
		}
	}
}

func TestHammingEqualsXorCount(t *testing.T) {
	f := func(bitsA, bitsB []bool) bool {
		n := len(bitsA)
		if len(bitsB) < n {
			n = len(bitsB)
		}
		a := FromBools(bitsA[:n])
		b := FromBools(bitsB[:n])
		return a.Hamming(b) == a.Xor(b).Count()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDiffIndicesMatchesHamming(t *testing.T) {
	f := func(bitsA, bitsB []bool) bool {
		n := len(bitsA)
		if len(bitsB) < n {
			n = len(bitsB)
		}
		a := FromBools(bitsA[:n])
		b := FromBools(bitsB[:n])
		diff := a.DiffIndices(b)
		if len(diff) != a.Hamming(b) {
			return false
		}
		for _, i := range diff {
			if a.Get(i) == b.Get(i) {
				return false
			}
		}
		// sorted ascending
		for i := 1; i < len(diff); i++ {
			if diff[i] <= diff[i-1] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestNotMasksTail(t *testing.T) {
	for _, n := range []int{1, 5, 63, 64, 65, 130} {
		v := New(n)
		nv := v.Not()
		if nv.Count() != n {
			t.Fatalf("Not of zero vector length %d has %d ones", n, nv.Count())
		}
		if nv.Hamming(v) != n {
			t.Fatalf("Not distance = %d, want %d", nv.Hamming(v), n)
		}
	}
}

func TestCloneIndependence(t *testing.T) {
	a := FromBits([]int{1, 0, 1})
	b := a.Clone()
	b.Flip(0)
	if !a.Get(0) {
		t.Fatal("Clone shares storage with original")
	}
}

func TestGatherScatterRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for trial := 0; trial < 100; trial++ {
		n := 10 + r.Intn(200)
		v := randVec(r, n)
		k := 1 + r.Intn(n)
		idx := r.Perm(n)[:k]
		g := v.Gather(idx)
		if g.Len() != k {
			t.Fatalf("Gather length %d, want %d", g.Len(), k)
		}
		for j, i := range idx {
			if g.Get(j) != v.Get(i) {
				t.Fatal("Gather bit mismatch")
			}
		}
		w := New(n)
		w.Scatter(idx, g)
		for j, i := range idx {
			if w.Get(i) != g.Get(j) {
				t.Fatal("Scatter bit mismatch")
			}
		}
	}
}

func TestHammingOn(t *testing.T) {
	r := rand.New(rand.NewSource(9))
	for trial := 0; trial < 100; trial++ {
		n := 10 + r.Intn(100)
		a, b := randVec(r, n), randVec(r, n)
		idx := r.Perm(n)[:1+r.Intn(n)]
		want := a.Gather(idx).Hamming(b.Gather(idx))
		if got := a.HammingOn(b, idx); got != want {
			t.Fatalf("HammingOn = %d, want %d", got, want)
		}
	}
}

func TestMajority(t *testing.T) {
	a := FromBits([]int{1, 1, 0, 0})
	b := FromBits([]int{1, 0, 1, 0})
	c := FromBits([]int{1, 0, 0, 1})
	m := Majority([]Vector{a, b, c})
	want := FromBits([]int{1, 0, 0, 0})
	if !m.Equal(want) {
		t.Fatalf("Majority = %v, want %v", m, want)
	}
}

func TestMajorityTieIsZero(t *testing.T) {
	a := FromBits([]int{1, 0})
	b := FromBits([]int{0, 1})
	m := Majority([]Vector{a, b})
	if m.Count() != 0 {
		t.Fatalf("tie should resolve to 0, got %v", m)
	}
}

func TestMajorityPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on empty input")
		}
	}()
	Majority(nil)
}

func TestConcat(t *testing.T) {
	a := FromBits([]int{1, 0})
	b := FromBits([]int{0, 1, 1})
	c := Concat(a, b)
	want := FromBits([]int{1, 0, 0, 1, 1})
	if !c.Equal(want) {
		t.Fatalf("Concat = %v, want %v", c, want)
	}
	if Concat().Len() != 0 {
		t.Fatal("empty Concat should have length 0")
	}
}

func TestKeyUniqueness(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	seen := map[string]Vector{}
	for trial := 0; trial < 500; trial++ {
		v := randVec(r, 100)
		k := v.Key()
		if prev, ok := seen[k]; ok && !prev.Equal(v) {
			t.Fatal("Key collision between different vectors")
		}
		seen[k] = v
	}
	// Same bits, different lengths must differ.
	if New(64).Key() == New(65).Key() {
		t.Fatal("Key ignores length")
	}
}

func TestKeyEqualForEqualVectors(t *testing.T) {
	f := func(bits []bool) bool {
		a := FromBools(bits)
		b := FromBools(bits)
		return a.Key() == b.Key()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestOnesIndices(t *testing.T) {
	v := New(200)
	want := []int{0, 63, 64, 127, 128, 199}
	for _, i := range want {
		v.Set(i, true)
	}
	got := v.OnesIndices()
	if len(got) != len(want) {
		t.Fatalf("OnesIndices = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("OnesIndices = %v, want %v", got, want)
		}
	}
}

func TestXorAndOrIdentities(t *testing.T) {
	f := func(bitsA, bitsB []bool) bool {
		n := len(bitsA)
		if len(bitsB) < n {
			n = len(bitsB)
		}
		a := FromBools(bitsA[:n])
		b := FromBools(bitsB[:n])
		// |a∨b| + |a∧b| == |a| + |b|
		if a.Or(b).Count()+a.And(b).Count() != a.Count()+b.Count() {
			return false
		}
		// a⊕b == (a∨b) minus (a∧b)
		if a.Xor(b).Count() != a.Or(b).Count()-a.And(b).Count() {
			return false
		}
		// a⊕a == 0
		return a.Xor(a).Count() == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestStringTruncation(t *testing.T) {
	v := New(300)
	s := v.String()
	if len(s) == 0 {
		t.Fatal("empty String for non-empty vector")
	}
	short := New(4)
	short.Set(2, true)
	if short.String() != "0010" {
		t.Fatalf("String = %q, want 0010", short.String())
	}
}

// TestWordOps covers the word-level accessors the bulk probe and board
// tally paths are built on: Word/SetWord/OrWord round-trips, tail masking,
// and WordMask shapes.
func TestWordOps(t *testing.T) {
	v := New(130) // three words, 2-bit tail
	if v.Words() != 3 {
		t.Fatalf("Words() = %d, want 3", v.Words())
	}
	v.SetWord(0, 0xDEADBEEF)
	if v.Word(0) != 0xDEADBEEF {
		t.Fatalf("Word(0) = %#x", v.Word(0))
	}
	v.SetWord(2, ^uint64(0)) // must mask to the 2 valid tail bits
	if v.Word(2) != 0b11 {
		t.Fatalf("tail word = %#x, want 0b11", v.Word(2))
	}
	if v.Count() != bitsOn(0xDEADBEEF)+2 {
		t.Fatalf("Count = %d after SetWord", v.Count())
	}
	v.OrWord(0, 0x10)
	if v.Word(0) != 0xDEADBEEF|0x10 {
		t.Fatalf("OrWord result = %#x", v.Word(0))
	}
	if v.WordMask(0) != ^uint64(0) || v.WordMask(2) != 0b11 {
		t.Fatalf("WordMask = %#x, %#x", v.WordMask(0), v.WordMask(2))
	}
	// Bit-level and word-level views agree.
	for i := 0; i < v.Len(); i++ {
		if v.Get(i) != (v.Word(i/64)&(1<<(uint(i)%64)) != 0) {
			t.Fatalf("bit %d disagrees with its word", i)
		}
	}
	full := New(64)
	if full.WordMask(0) != ^uint64(0) {
		t.Fatalf("full word mask = %#x", full.WordMask(0))
	}
}

func bitsOn(x uint64) int {
	c := 0
	for ; x != 0; x &= x - 1 {
		c++
	}
	return c
}

// TestFirstDiff pins FirstDiff against DiffIndices on random vectors.
func TestFirstDiff(t *testing.T) {
	r := rand.New(rand.NewSource(99))
	for trial := 0; trial < 200; trial++ {
		n := 1 + r.Intn(200)
		a, b := randVec(r, n), randVec(r, n)
		want := -1
		if d := a.DiffIndices(b); len(d) > 0 {
			want = d[0]
		}
		if got := a.FirstDiff(b); got != want {
			t.Fatalf("FirstDiff = %d, want %d", got, want)
		}
	}
	if New(70).FirstDiff(New(70)) != -1 {
		t.Fatal("FirstDiff of equal vectors != -1")
	}
}

// TestAndCountAndOnesInto pins the allocation-free AND reductions against
// their materializing equivalents on random vectors, including partial
// final words and length-0 vectors.
func TestAndCountAndOnesInto(t *testing.T) {
	r := rand.New(rand.NewSource(41))
	for trial := 0; trial < 200; trial++ {
		n := r.Intn(200)
		a, b := randVec(r, n), randVec(r, n)
		and := a.And(b)
		if got, want := a.AndCount(b), and.Count(); got != want {
			t.Fatalf("n=%d: AndCount = %d, want %d", n, got, want)
		}
		want := and.OnesIndices()
		got := a.AndOnesInto(b, nil)
		if len(got) != len(want) {
			t.Fatalf("n=%d: AndOnesInto found %d positions, want %d", n, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("n=%d: AndOnesInto[%d] = %d, want %d", n, i, got[i], want[i])
			}
		}
		// Appending semantics: existing dst entries are preserved.
		dst := []int{-7}
		dst = a.AndOnesInto(b, dst)
		if dst[0] != -7 || len(dst) != 1+len(want) {
			t.Fatalf("n=%d: AndOnesInto did not append (len %d)", n, len(dst))
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("AndCount length mismatch did not panic")
		}
	}()
	New(10).AndCount(New(11))
}

// TestAndReductionsAllocFree: the live-degree scan of the cluster peel
// calls these once per candidate per round; they must never allocate
// (AndOnesInto with sufficient dst capacity included).
func TestAndReductionsAllocFree(t *testing.T) {
	a, b := New(1024), New(1024)
	for i := 0; i < 1024; i += 3 {
		a.Set(i, true)
	}
	for i := 0; i < 1024; i += 5 {
		b.Set(i, true)
	}
	dst := make([]int, 0, 1024)
	var sink int
	if n := testing.AllocsPerRun(100, func() {
		sink = a.AndCount(b)
		dst = a.AndOnesInto(b, dst[:0])
	}); n != 0 {
		t.Fatalf("AND reductions allocate %v times per run", n)
	}
	_ = sink
}

// TestSameStorage: clones never share storage, assignments always do, and
// empty vectors never report sharing.
func TestSameStorage(t *testing.T) {
	v := New(100)
	if !SameStorage(v, v) {
		t.Fatal("vector does not share storage with itself")
	}
	w := v
	if !SameStorage(v, w) {
		t.Fatal("assigned copy does not share storage")
	}
	if SameStorage(v, v.Clone()) {
		t.Fatal("clone shares storage")
	}
	if SameStorage(New(0), New(0)) {
		t.Fatal("empty vectors report sharing")
	}
}

// TestWordOpsAllocFree: the word-level accessors on the bulk probe and
// tally hot paths must never allocate (satellite regression guard).
func TestWordOpsAllocFree(t *testing.T) {
	a, b := New(1024), New(1024)
	b.Set(777, true)
	var sink uint64
	var sinkI int
	if n := testing.AllocsPerRun(100, func() {
		sink = a.Word(3)
		a.SetWord(3, sink|0xFF)
		a.OrWord(4, 0xF0)
		sink = a.WordMask(15)
		sinkI = a.FirstDiff(b)
		sinkI += a.Hamming(b)
	}); n != 0 {
		t.Fatalf("word ops allocate %v times per run", n)
	}
	_ = sink
	_ = sinkI
}

func TestZeroCopyFromRenew(t *testing.T) {
	v := New(130)
	for _, i := range []int{0, 64, 99, 129} {
		v.Set(i, true)
	}
	w := New(130)
	w.CopyFrom(v)
	if !w.Equal(v) {
		t.Fatal("CopyFrom did not copy")
	}
	w.Set(5, true)
	if v.Get(5) {
		t.Fatal("CopyFrom shares storage")
	}
	v.Zero()
	if v.Count() != 0 {
		t.Fatalf("Zero left %d bits set", v.Count())
	}

	// Renew at equal-or-smaller word footprint reuses storage and zeroes.
	big := New(256)
	for i := 0; i < 256; i += 3 {
		big.Set(i, true)
	}
	reused := big.Renew(100)
	if reused.Len() != 100 || reused.Count() != 0 {
		t.Fatalf("Renew(100) = len %d count %d", reused.Len(), reused.Count())
	}
	reused.Set(0, true)
	if big.Word(0) != 1 {
		t.Fatal("Renew did not reuse the backing words")
	}
	// Renew past capacity allocates fresh.
	grown := reused.Renew(1024)
	if grown.Len() != 1024 || grown.Count() != 0 {
		t.Fatalf("Renew(1024) = len %d count %d", grown.Len(), grown.Count())
	}
	grown.Set(700, true)
	if reused.Count() != 1 || !reused.Get(0) {
		t.Fatal("growing Renew should not alias the old storage")
	}
}

func TestCopyFromLengthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(10).CopyFrom(New(11))
}
