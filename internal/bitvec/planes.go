package bitvec

import (
	"fmt"
	"math/bits"
)

// maxPlaneBits bounds the per-value bit width of a Planes. Rating scales in
// this repository are small integers; 32 planes already cover scales past
// 4·10⁹ while keeping the bit-sliced L1 scratch on the stack.
const maxPlaneBits = 32

// Planes is a bit-sliced vector of k-bit unsigned integer values: element i
// is stored as one bit in each of k planes, where plane ℓ holds bit ℓ of
// every element. It is the rating-scale counterpart of Vector (DESIGN.md
// §12): the §8 non-binary protocols re-encode their 0..scale rating rows as
// ⌈log₂(scale+1)⌉ such planes, so the L1 distances that dominate the rating
// hot path collapse to word-level plane arithmetic instead of per-element
// loops.
//
// All planes share one flat backing slice (plane ℓ occupies words
// [ℓ·stride, (ℓ+1)·stride)), so a Planes costs one allocation regardless of
// k. The zero value is an empty Planes of length 0; use NewPlanes or
// PlanesForScale.
type Planes struct {
	n     int // number of values
	k     int // bits per value
	words []uint64
}

// PlaneBits returns the number of bit-planes needed for values in
// [0, scale]: ⌈log₂(scale+1)⌉, at least 1.
func PlaneBits(scale int) int {
	if scale < 0 {
		panic("bitvec: negative scale")
	}
	k := bits.Len(uint(scale))
	if k < 1 {
		k = 1
	}
	return k
}

// NewPlanes returns a zeroed Planes of n values of k bits each. It panics
// if n is negative or k is outside [1, 32].
func NewPlanes(n, k int) Planes {
	if n < 0 {
		panic("bitvec: negative length")
	}
	if k < 1 || k > maxPlaneBits {
		panic(fmt.Sprintf("bitvec: plane count %d outside [1,%d]", k, maxPlaneBits))
	}
	stride := (n + wordBits - 1) / wordBits
	return Planes{n: n, k: k, words: make([]uint64, k*stride)}
}

// PlanesForScale returns a zeroed Planes sized for n values in [0, scale].
func PlanesForScale(n, scale int) Planes { return NewPlanes(n, PlaneBits(scale)) }

// Len returns the number of values.
func (pl Planes) Len() int { return pl.n }

// Bits returns the per-value bit width k.
func (pl Planes) Bits() int { return pl.k }

// Stride returns the number of 64-bit words per plane, ⌈Len/64⌉. Word-level
// code addresses value i as word i/64, bit i%64 of each plane.
func (pl Planes) Stride() int {
	if pl.k == 0 {
		return 0
	}
	return len(pl.words) / pl.k
}

// PlaneWord returns word wi of plane ℓ. Bits past Len are always zero.
func (pl Planes) PlaneWord(l, wi int) uint64 { return pl.words[l*pl.Stride()+wi] }

// SetPlaneWord assigns word wi of plane ℓ, masking off bits past Len.
func (pl Planes) SetPlaneWord(l, wi int, w uint64) {
	pl.words[l*pl.Stride()+wi] = w & pl.wordMask(wi)
}

// wordMask returns the valid-bit mask for word wi of any plane.
func (pl Planes) wordMask(wi int) uint64 {
	if wi == pl.Stride()-1 && pl.n%wordBits != 0 {
		return (1 << (uint(pl.n) % wordBits)) - 1
	}
	return ^uint64(0)
}

// WordMask returns the mask of valid (in-range) bits for word wi of any
// plane: all ones except in the final word when Len is not a multiple of 64.
func (pl Planes) WordMask(wi int) uint64 {
	if wi < 0 || wi >= pl.Stride() {
		panic(fmt.Sprintf("bitvec: word %d out of range [0,%d)", wi, pl.Stride()))
	}
	return pl.wordMask(wi)
}

// Get returns value i.
func (pl Planes) Get(i int) int {
	pl.check(i)
	wi, bit := i/wordBits, uint(i)%wordBits
	stride := pl.Stride()
	v := 0
	for l := 0; l < pl.k; l++ {
		v |= int(pl.words[l*stride+wi]>>bit&1) << l
	}
	return v
}

// Set assigns value i. It panics if v does not fit in k bits.
func (pl Planes) Set(i, v int) {
	pl.check(i)
	if v < 0 || v >= 1<<pl.k {
		panic(fmt.Sprintf("bitvec: value %d does not fit in %d planes", v, pl.k))
	}
	wi, mask := i/wordBits, uint64(1)<<(uint(i)%wordBits)
	stride := pl.Stride()
	for l := 0; l < pl.k; l++ {
		if v>>l&1 == 1 {
			pl.words[l*stride+wi] |= mask
		} else {
			pl.words[l*stride+wi] &^= mask
		}
	}
}

func (pl Planes) check(i int) {
	if i < 0 || i >= pl.n {
		panic(fmt.Sprintf("bitvec: index %d out of range [0,%d)", i, pl.n))
	}
}

// L1 returns the L1 distance Σᵢ |a_i − b_i| between two equal-shape Planes.
// It is the hot distance measure of the §8 rating protocols, computed
// word-parallel over 64 values at a time with bit-sliced arithmetic: a
// borrow-propagating subtract across the planes (k XOR/AND ops per word)
// yields a−b mod 2ᵏ per lane plus the borrow mask of lanes where a < b;
// conditionally negating exactly those lanes (bit-sliced two's complement)
// gives |a−b|, and the total is the plane-weighted popcount Σ_ℓ 2^ℓ·pop(rℓ).
// It panics on shape mismatch.
func (a Planes) L1(b Planes) int {
	if a.n != b.n || a.k != b.k {
		panic(fmt.Sprintf("bitvec: planes shape mismatch %d×%d vs %d×%d", a.n, a.k, b.n, b.k))
	}
	stride := a.Stride()
	var diff [maxPlaneBits]uint64
	total := 0
	for wi := 0; wi < stride; wi++ {
		var borrow uint64
		for l := 0; l < a.k; l++ {
			aw, bw := a.words[l*stride+wi], b.words[l*stride+wi]
			x := aw ^ bw
			diff[l] = x ^ borrow
			borrow = (^aw & bw) | (^x & borrow)
		}
		// borrow now flags the lanes where a < b; negate exactly those.
		neg := borrow
		carry := neg
		for l := 0; l < a.k; l++ {
			t := diff[l] ^ neg
			r := t ^ carry
			carry = t & carry
			total += bits.OnesCount64(r) << l
		}
	}
	return total
}

// SubFrom returns a new Planes holding c − vᵢ for every value vᵢ of pl,
// computed word-parallel with a bit-sliced borrow-propagating subtract —
// the §8 worst-case "mirror every rating" broadcast (scale − truth)
// without a per-element loop. Every value must satisfy vᵢ ≤ c (and c must
// fit in the plane width); a violating lane would wrap, so it panics.
func (pl Planes) SubFrom(c int) Planes {
	if c < 0 || c >= 1<<pl.k {
		panic(fmt.Sprintf("bitvec: minuend %d does not fit in %d planes", c, pl.k))
	}
	out := NewPlanes(pl.n, pl.k)
	stride := pl.Stride()
	for wi := 0; wi < stride; wi++ {
		valid := pl.wordMask(wi)
		var borrow uint64
		for l := 0; l < pl.k; l++ {
			var aw uint64
			if c>>l&1 == 1 {
				aw = valid
			}
			bw := pl.words[l*stride+wi]
			x := aw ^ bw
			out.words[l*stride+wi] = x ^ borrow
			borrow = (^aw & bw) | (^x & borrow)
		}
		if borrow&valid != 0 {
			panic(fmt.Sprintf("bitvec: SubFrom(%d) underflow — a value exceeds the minuend", c))
		}
	}
	return out
}

// Gather extracts the values at the given positions into a new Planes of
// length len(idx): position idx[j] becomes value j of the result.
func (pl Planes) Gather(idx []int) Planes {
	out := NewPlanes(len(idx), pl.k)
	for j, i := range idx {
		out.Set(j, pl.Get(i))
	}
	return out
}

// Clone returns a deep copy.
func (pl Planes) Clone() Planes {
	out := Planes{n: pl.n, k: pl.k, words: make([]uint64, len(pl.words))}
	copy(out.words, pl.words)
	return out
}

// Zero clears every value in place.
func (pl Planes) Zero() {
	for i := range pl.words {
		pl.words[i] = 0
	}
}

// CopyFrom overwrites pl's values with src's. It panics on shape mismatch.
func (pl Planes) CopyFrom(src Planes) {
	if pl.n != src.n || pl.k != src.k {
		panic(fmt.Sprintf("bitvec: planes shape mismatch %d×%d vs %d×%d", pl.n, pl.k, src.n, src.k))
	}
	copy(pl.words, src.words)
}

// Equal reports whether two Planes have the same shape and values.
func (pl Planes) Equal(other Planes) bool {
	if pl.n != other.n || pl.k != other.k {
		return false
	}
	for i := range pl.words {
		if pl.words[i] != other.words[i] {
			return false
		}
	}
	return true
}

// Renew returns a zeroed Planes of n values × k bits, reusing pl's backing
// words when they are large enough (allocation-free reuse for pooled rating
// worlds); otherwise it allocates like NewPlanes. The receiver must not be
// in use elsewhere — Renew hands its storage to the returned Planes.
func (pl Planes) Renew(n, k int) Planes {
	if k < 1 || k > maxPlaneBits {
		panic(fmt.Sprintf("bitvec: plane count %d outside [1,%d]", k, maxPlaneBits))
	}
	stride := (n + wordBits - 1) / wordBits
	if cap(pl.words) < k*stride {
		return NewPlanes(n, k)
	}
	out := Planes{n: n, k: k, words: pl.words[:k*stride]}
	out.Zero()
	return out
}

// Ints materializes the values as a plain []int row (public-API use).
func (pl Planes) Ints() []int {
	return pl.AppendInts(make([]int, 0, pl.n))
}

// AppendInts appends the values to dst and returns it.
func (pl Planes) AppendInts(dst []int) []int {
	for i := 0; i < pl.n; i++ {
		dst = append(dst, pl.Get(i))
	}
	return dst
}

// FromInts builds a Planes over [0, scale] from an integer row. Values are
// clamped into [0, scale].
func FromInts(vals []int, scale int) Planes {
	out := PlanesForScale(len(vals), scale)
	for i, v := range vals {
		if v < 0 {
			v = 0
		}
		if v > scale {
			v = scale
		}
		out.Set(i, v)
	}
	return out
}

// SamePlaneStorage reports whether two Planes share backing words (mutating
// one mutates the other); tests use it to pin cluster-level sharing.
func SamePlaneStorage(a, b Planes) bool {
	return len(a.words) > 0 && len(b.words) > 0 && &a.words[0] == &b.words[0]
}
