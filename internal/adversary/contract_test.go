package adversary

import (
	"fmt"
	"sync"
	"testing"

	"collabscore/internal/par"
	"collabscore/internal/prefgen"
	"collabscore/internal/world"
	"collabscore/internal/xrand"
)

// contractBehaviors enumerates every Behavior this package exports, each
// under the published protocol states it reacts to. The package contract
// (see the package comment) is per-(player, object) determinism within a
// run: protocols may ask for the same report through different code paths
// — Report, ReportVector, ReportWord, possibly from concurrent phase
// goroutines — and a strategy that flip-flops is weaker than a consistent
// liar. Flipflopper violates the contract on purpose and is tested
// separately (TestFlipflopperFlipFlops); any NEW stateful strategy added to
// this package must either appear here and hold the contract, or join
// Flipflopper in the documented-exception list.
func contractBehaviors(n int) map[string]world.Behavior {
	return map[string]world.Behavior{
		"RandomLiar":            RandomLiar{Seed: 0xC0},
		"FlipAll":               FlipAll{},
		"ZeroSpam":              ZeroSpam{},
		"Colluder":              NewColluder(0xC1, 64),
		"ClusterHijacker":       ClusterHijacker{Victim: 1},
		"StrangeObjectAttacker": StrangeObjectAttacker{Seed: 0xC2},
		"MimicThenFlip":         MimicThenFlip{},
		"Combined":              Combined{Victim: 2, Seed: 0xC3},
		"Honest":                world.Honest{},
	}
}

// contractRun builds a run with every kind of published state the
// strategies observe: a sample set, a clustering, and a phase name.
func contractRun(t *testing.T, phase string, exec *par.Runner) *world.Run {
	t.Helper()
	const n, m = 16, 64
	in := prefgen.DiameterClusters(xrand.New(0xAD), n, m, 4, 4)
	w := world.New(in.Truth)
	rc := world.NewRunOn(w, exec)
	rc.Pub.Phase = phase
	rc.Pub.SetSample([]int{1, 5, 17, 33, 60})
	rc.Pub.Clusters = [][]int{{0, 1, 2, 3}, {4, 5, 6, 7, 8}}
	rc.Pub.TargetDiameter = 4
	return rc
}

// reportMatrix collects behavior b's reports for every (player, object)
// cell under the given executor, asking through the per-object path.
func reportMatrix(rc *world.Run, b world.Behavior, exec *par.Runner) [][]bool {
	n, m := rc.N(), rc.M()
	out := make([][]bool, n)
	exec.For(n, func(p int) {
		row := make([]bool, m)
		for o := 0; o < m; o++ {
			row[o] = b.Report(rc, p, o)
		}
		out[p] = row
	})
	return out
}

// TestBehaviorDeterminismContract asserts the documented contract for every
// exported behavior: identical answers when asked twice, when asked through
// the word- and vector-level report paths, and under every schedule of the
// parallel matrix (serial, fixed-width, full fan-out) — all against fixed
// published state, which is the only state a behavior may read.
func TestBehaviorDeterminismContract(t *testing.T) {
	const n = 16
	scheds := []struct {
		name string
		exec *par.Runner
	}{
		{"serial", par.Serial()},
		{"fixed4", par.Fixed(4)},
		{"parallel", par.Parallel()},
	}
	for _, phase := range []string{"sample", "smallradius", "workshare"} {
		for name, b := range contractBehaviors(n) {
			t.Run(fmt.Sprintf("%s/%s", name, phase), func(t *testing.T) {
				var ref [][]bool
				for _, sched := range scheds {
					rc := contractRun(t, phase, sched.exec)
					// Install the behavior so the Run paths consult it.
					for p := 0; p < n; p++ {
						rc.SetBehavior(p, b)
					}
					first := reportMatrix(rc, b, sched.exec)
					second := reportMatrix(rc, b, sched.exec)
					for p := range first {
						for o := range first[p] {
							if first[p][o] != second[p][o] {
								t.Fatalf("%s flip-flopped at (%d,%d) under %s", name, p, o, sched.name)
							}
						}
					}
					// The bulk report paths must agree with the per-object
					// path: honest players ride ProbeVector/ProbeWord,
					// dishonest ones are asked per object — both must
					// reproduce the matrix.
					for p := 0; p < n; p++ {
						objs := []int{0, 3, 17, 40, 63}
						vec := rc.ReportVector(p, objs)
						for j, o := range objs {
							if vec.Get(j) != first[p][o] {
								t.Fatalf("%s: ReportVector(%d) disagrees with Report at object %d under %s",
									name, p, o, sched.name)
							}
						}
						word := rc.ReportWord(p, 0, 0xFF)
						for bit := 0; bit < 8; bit++ {
							if (word>>uint(bit))&1 == 1 != first[p][bit] {
								t.Fatalf("%s: ReportWord(%d) disagrees with Report at object %d under %s",
									name, p, bit, sched.name)
							}
						}
					}
					if ref == nil {
						ref = first
						continue
					}
					for p := range ref {
						for o := range ref[p] {
							if ref[p][o] != first[p][o] {
								t.Fatalf("%s answers at (%d,%d) depend on the schedule (%s differs from serial)",
									name, p, o, sched.name)
							}
						}
					}
				}
			})
		}
	}
}

// TestBehaviorConcurrentConsistency hammers each behavior's Report for the
// same cells from many goroutines at once (run under -race): concurrent
// asks must agree with the serial answer — the schedule-independence half
// of the contract that a future stateful strategy would break first.
func TestBehaviorConcurrentConsistency(t *testing.T) {
	const n = 16
	for name, b := range contractBehaviors(n) {
		t.Run(name, func(t *testing.T) {
			rc := contractRun(t, "workshare", par.Fixed(8))
			for p := 0; p < n; p++ {
				rc.SetBehavior(p, b)
			}
			ref := reportMatrix(rc, b, par.Serial())
			var wg sync.WaitGroup
			errs := make(chan string, 8)
			for g := 0; g < 8; g++ {
				wg.Add(1)
				go func(g int) {
					defer wg.Done()
					for rep := 0; rep < 4; rep++ {
						for p := 0; p < n; p++ {
							for _, o := range []int{g, 8 + g, 56 + g} {
								if b.Report(rc, p, o) != ref[p][o] {
									select {
									case errs <- fmt.Sprintf("(%d,%d)", p, o):
									default:
									}
								}
							}
						}
					}
				}(g)
			}
			wg.Wait()
			close(errs)
			if cell, bad := <-errs; bad {
				t.Fatalf("%s gave a schedule-dependent answer at %s", name, cell)
			}
		})
	}
}

// TestFlipflopperFlipFlops pins the one documented contract violator: the
// strategy exists to exercise the board's first-write-wins defense, so it
// must actually flip-flop — if it ever stops, the board test loses its
// adversary.
func TestFlipflopperFlipFlops(t *testing.T) {
	rc := contractRun(t, "workshare", par.Serial())
	f := NewFlipflopper()
	first := f.Report(rc, 3, 7)
	second := f.Report(rc, 3, 7)
	if first == second {
		t.Fatal("Flipflopper answered consistently; the board defense test needs it to alternate")
	}
	if !first || second {
		t.Fatalf("Flipflopper must alternate 1,0,1,…; got %v then %v", first, second)
	}
}
