// Package adversary implements dishonest-player strategies.
//
// The paper's adversary (§2, §7) is full-information and colluding: a
// dishonest player may ignore the protocol and lie about its preferences,
// and dishonest players may coordinate. The one thing they cannot do is
// modify honest players' writes on the bulletin board (enforced by package
// board) or bias randomness that came from an honest leader.
//
// Every strategy here implements world.Behavior, so it is consulted at
// exactly the points where a player publishes a probe result. Strategies
// may consult the world's full truth matrix and the published protocol
// state of the asking run (world.Run.Pub) — strictly at least as strong as
// the paper's model.
//
// Strategies must be deterministic per (player, object) within a run:
// protocols may ask for the same report through different code paths, and a
// flip-flopping reporter would be weaker than a consistent liar (honest
// readers could detect contradictions for free).
package adversary

import (
	"sync"

	"collabscore/internal/bitvec"
	"collabscore/internal/world"
)

// hash64 mixes player, object and seed into a deterministic pseudo-random
// word, so strategies can lie "randomly" yet consistently.
func hash64(seed uint64, p, o int) uint64 {
	x := seed ^ (uint64(p)+0x9e3779b97f4a7c15)<<1 ^ (uint64(o)+0xbf58476d1ce4e5b9)<<2
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// RandomLiar reports an unbiased coin flip for every (player, object) pair,
// consistently within a run. This models the paper's "too busy" reviewer
// who scores papers at random instead of reading them.
type RandomLiar struct {
	Seed uint64
}

// Report returns a deterministic pseudo-random bit for (p, o).
func (r RandomLiar) Report(_ *world.Run, p, o int) bool {
	return hash64(r.Seed, p, o)&1 == 1
}

// FlipAll reports the complement of the player's own true preference —
// maximal individual dishonesty (every published bit is wrong).
type FlipAll struct{}

// Report returns the negation of the truth, without charging a probe (the
// adversary already knows its vector).
func (FlipAll) Report(rc *world.Run, p, o int) bool {
	return !rc.PeekTruth(p, o)
}

// ZeroSpam always reports 0 — the laziest possible participant.
type ZeroSpam struct{}

// Report returns false for every object.
func (ZeroSpam) Report(_ *world.Run, _, _ int) bool { return false }

// Colluder coordinates all colluding players on one shared target vector,
// modeling a bloc trying to push a specific outcome (e.g. bias the scores
// toward colleagues' papers). All colluders report identical preferences,
// which maximizes their chance of forming or joining a cluster together.
type Colluder struct {
	Target bitvec.Vector
}

// NewColluder builds a colluding bloc around a deterministic pseudo-random
// target vector over m objects.
func NewColluder(seed uint64, m int) Colluder {
	v := bitvec.New(m)
	for o := 0; o < m; o++ {
		if hash64(seed, 0, o)&1 == 1 {
			v.Set(o, true)
		}
	}
	return Colluder{Target: v}
}

// Report returns the shared target preference for object o.
func (c Colluder) Report(_ *world.Run, _, o int) bool {
	return c.Target.Get(o)
}

// ClusterHijacker is the attack the protocol's sampling phase must survive
// (§6.2, §7.2): mimic a victim player's true preferences on the published
// sample set S — so the hijacker looks like a close neighbor and is placed
// in the victim's cluster — then lie (report the complement of the victim's
// truth) on every off-sample object, poisoning the cluster's shared
// probing work.
type ClusterHijacker struct {
	Victim int
}

// Report mimics the victim on the current sample set and anti-mimics it
// elsewhere. If no sample has been published yet, it mimics everywhere
// (building trust).
func (h ClusterHijacker) Report(rc *world.Run, _, o int) bool {
	truth := rc.PeekTruth(h.Victim, o)
	if !rc.Pub.HasSample() || rc.Pub.InSample(o) {
		return truth
	}
	return !truth
}

// StrangeObjectAttacker targets the "strange" objects of Lemma 13 — objects
// on which the honest members of its cluster are split. On such objects the
// dishonest votes can swing the majority; on lopsided objects they cannot.
// The strategy votes with the honest minority whenever cluster membership
// is known, maximizing the number of flipped predictions.
type StrangeObjectAttacker struct {
	Seed uint64
}

// Report inspects the attacker's published cluster (if any) and votes with
// the minority of honest members' true preferences for object o; with no
// cluster information it falls back to a consistent random lie.
func (a StrangeObjectAttacker) Report(rc *world.Run, p, o int) bool {
	for _, cl := range rc.Pub.Clusters {
		inCluster := false
		for _, q := range cl {
			if q == p {
				inCluster = true
				break
			}
		}
		if !inCluster {
			continue
		}
		ones, zeros := 0, 0
		for _, q := range cl {
			if !rc.IsHonest(q) {
				continue
			}
			if rc.PeekTruth(q, o) {
				ones++
			} else {
				zeros++
			}
		}
		return ones < zeros // side with the minority
	}
	return hash64(a.Seed, p, o)&1 == 1
}

// MimicThenFlip mimics its own truth during the sampling phase and flips
// afterwards, a budget-free variant of ClusterHijacker that corrupts
// whatever cluster the player naturally lands in.
type MimicThenFlip struct{}

// Report tells the truth while the protocol is sampling and lies during
// work sharing.
func (MimicThenFlip) Report(rc *world.Run, p, o int) bool {
	if rc.Pub.Phase == "workshare" {
		return !rc.PeekTruth(p, o)
	}
	return rc.PeekTruth(p, o)
}

// Flipflopper violates the report-consistency discipline deliberately: it
// alternates its answer every time it is asked about the same object. The
// bulletin board's first-write-wins lanes pin each (player, object) cell to
// the first published value, so flip-flopping gains nothing there; this
// strategy exists to exercise that defense.
type Flipflopper struct {
	mu    sync.Mutex
	calls map[[2]int]int
}

// NewFlipflopper returns a flip-flopping behavior (stateful; one instance
// per player or shared — both are valid adversaries).
func NewFlipflopper() *Flipflopper {
	return &Flipflopper{calls: make(map[[2]int]int)}
}

// Report alternates between 1 and 0 on successive calls for the same cell.
func (f *Flipflopper) Report(_ *world.Run, p, o int) bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.calls[[2]int{p, o}]++
	return f.calls[[2]int{p, o}]%2 == 1
}

// Combined chains the strongest phase-aware attacks: hijack a victim's
// cluster during sampling (look close on S), then target strange objects
// during work sharing (vote with the honest minority). It is the union of
// ClusterHijacker and StrangeObjectAttacker and the hardest scripted
// adversary in this package.
type Combined struct {
	Victim int
	Seed   uint64
}

// Report dispatches on the published protocol phase.
func (c Combined) Report(rc *world.Run, p, o int) bool {
	if rc.Pub.Phase == "workshare" {
		return StrangeObjectAttacker{Seed: c.Seed}.Report(rc, p, o)
	}
	return ClusterHijacker{Victim: c.Victim}.Report(rc, p, o)
}

// Corrupt installs the given strategy on the first k players chosen by the
// supplied permutation (or 0..k-1 if perm is nil) and returns the corrupted
// player ids.
func Corrupt(w *world.World, k int, perm []int, mk func(p int) world.Behavior) []int {
	if k > w.N() {
		k = w.N()
	}
	ids := make([]int, 0, k)
	for i := 0; i < k; i++ {
		p := i
		if perm != nil {
			p = perm[i]
		}
		w.SetBehavior(p, mk(p))
		ids = append(ids, p)
	}
	return ids
}
