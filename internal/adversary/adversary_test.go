package adversary

import (
	"testing"

	"collabscore/internal/prefgen"
	"collabscore/internal/world"
	"collabscore/internal/xrand"
)

func testWorld(seed uint64, n, m int) *world.Run {
	in := prefgen.Uniform(xrand.New(seed), n, m)
	return world.NewRun(world.New(in.Truth))
}

func TestRandomLiarConsistency(t *testing.T) {
	w := testWorld(1, 4, 64)
	r := RandomLiar{Seed: 5}
	for p := 0; p < 4; p++ {
		for o := 0; o < 64; o++ {
			a := r.Report(w, p, o)
			b := r.Report(w, p, o)
			if a != b {
				t.Fatal("RandomLiar flip-flopped")
			}
		}
	}
}

func TestRandomLiarRoughlyBalanced(t *testing.T) {
	w := testWorld(2, 1, 4096)
	r := RandomLiar{Seed: 9}
	ones := 0
	for o := 0; o < 4096; o++ {
		if r.Report(w, 0, o) {
			ones++
		}
	}
	if ones < 1700 || ones > 2400 {
		t.Fatalf("RandomLiar ones = %d/4096, badly skewed", ones)
	}
}

func TestRandomLiarNoProbes(t *testing.T) {
	w := testWorld(3, 2, 32)
	r := RandomLiar{Seed: 1}
	for o := 0; o < 32; o++ {
		r.Report(w, 0, o)
	}
	if w.Probes(0) != 0 {
		t.Fatal("RandomLiar charged probes")
	}
}

func TestFlipAllAlwaysWrong(t *testing.T) {
	w := testWorld(4, 3, 64)
	f := FlipAll{}
	for p := 0; p < 3; p++ {
		for o := 0; o < 64; o++ {
			if f.Report(w, p, o) == w.PeekTruth(p, o) {
				t.Fatal("FlipAll told the truth")
			}
		}
	}
	if w.Probes(0) != 0 {
		t.Fatal("FlipAll charged probes")
	}
}

func TestZeroSpam(t *testing.T) {
	w := testWorld(5, 2, 16)
	z := ZeroSpam{}
	for o := 0; o < 16; o++ {
		if z.Report(w, 0, o) {
			t.Fatal("ZeroSpam reported 1")
		}
	}
}

func TestColludersShareTarget(t *testing.T) {
	w := testWorld(6, 4, 128)
	c := NewColluder(42, 128)
	for o := 0; o < 128; o++ {
		a := c.Report(w, 0, o)
		b := c.Report(w, 1, o)
		if a != b {
			t.Fatal("colluders disagreed")
		}
		if a != c.Target.Get(o) {
			t.Fatal("colluder deviated from target")
		}
	}
}

func TestClusterHijackerMimicsOnSample(t *testing.T) {
	w := testWorld(7, 4, 64)
	h := ClusterHijacker{Victim: 2}
	// No sample published yet: mimics the victim everywhere.
	for o := 0; o < 64; o++ {
		if h.Report(w, 0, o) != w.PeekTruth(2, o) {
			t.Fatal("hijacker failed to mimic before sampling")
		}
	}
	// Publish a sample; mimic inside, anti-mimic outside.
	w.Pub.SetSample([]int{1, 5, 9})
	for o := 0; o < 64; o++ {
		got := h.Report(w, 0, o)
		want := w.PeekTruth(2, o)
		if w.Pub.InSample(o) {
			if got != want {
				t.Fatalf("hijacker lied on sample object %d", o)
			}
		} else if got == want {
			t.Fatalf("hijacker mimicked off-sample object %d", o)
		}
	}
}

func TestStrangeObjectAttackerSidesWithMinority(t *testing.T) {
	// 5 honest players: 3 like object 0, 2 dislike it. The attacker (in the
	// same cluster) must vote with the minority (dislike).
	in := prefgen.Uniform(xrand.New(8), 6, 4)
	// Overwrite object 0 prefs: players 0,1,2 like; 3,4 dislike.
	for p := 0; p < 5; p++ {
		in.Truth[p].Set(0, p < 3)
	}
	w := world.NewRun(world.New(in.Truth))
	att := StrangeObjectAttacker{Seed: 3}
	w.SetBehavior(5, att)
	w.Pub.Clusters = [][]int{{0, 1, 2, 3, 4, 5}}
	if att.Report(w, 5, 0) {
		t.Fatal("attacker voted with the majority")
	}
	// Without cluster info it falls back to a consistent pseudo-random lie.
	w.Pub.Clusters = nil
	a := att.Report(w, 5, 1)
	b := att.Report(w, 5, 1)
	if a != b {
		t.Fatal("fallback not consistent")
	}
}

func TestMimicThenFlip(t *testing.T) {
	w := testWorld(9, 2, 32)
	mtf := MimicThenFlip{}
	w.Pub.Phase = "smallradius"
	if mtf.Report(w, 0, 3) != w.PeekTruth(0, 3) {
		t.Fatal("MimicThenFlip lied during sampling")
	}
	w.Pub.Phase = "workshare"
	if mtf.Report(w, 0, 3) == w.PeekTruth(0, 3) {
		t.Fatal("MimicThenFlip told the truth during workshare")
	}
}

func TestFlipflopperAlternates(t *testing.T) {
	w := testWorld(13, 2, 8)
	f := NewFlipflopper()
	a := f.Report(w, 0, 3)
	b := f.Report(w, 0, 3)
	c := f.Report(w, 0, 3)
	if a == b || a != c {
		t.Fatalf("flipflopper pattern wrong: %v %v %v", a, b, c)
	}
	// Distinct cells alternate independently.
	if !f.Report(w, 0, 4) {
		t.Fatal("fresh cell should start with true")
	}
}

func TestCombinedDispatchesOnPhase(t *testing.T) {
	w := testWorld(14, 4, 16)
	c := Combined{Victim: 2, Seed: 9}
	// Sampling phase: behaves like the hijacker (mimics victim with no
	// sample published).
	w.Pub.Phase = "smallradius"
	for o := 0; o < 16; o++ {
		if c.Report(w, 0, o) != w.PeekTruth(2, o) {
			t.Fatal("Combined did not hijack during sampling")
		}
	}
	// Workshare phase: behaves like the strange-object attacker (falls
	// back to consistent random lies without cluster info).
	w.Pub.Phase = "workshare"
	x := c.Report(w, 0, 1)
	y := c.Report(w, 0, 1)
	if x != y {
		t.Fatal("Combined inconsistent during workshare")
	}
}

func TestCorrupt(t *testing.T) {
	w := testWorld(10, 10, 16)
	ids := Corrupt(w.World, 3, nil, func(p int) world.Behavior { return FlipAll{} })
	if len(ids) != 3 {
		t.Fatalf("corrupted %d, want 3", len(ids))
	}
	if w.NumDishonest() != 3 {
		t.Fatalf("NumDishonest = %d", w.NumDishonest())
	}
	for _, p := range ids {
		if w.IsHonest(p) {
			t.Fatalf("player %d still honest", p)
		}
	}
	// With a permutation.
	w2 := testWorld(11, 10, 16)
	perm := []int{9, 7, 5, 3, 1, 0, 2, 4, 6, 8}
	ids2 := Corrupt(w2.World, 2, perm, func(p int) world.Behavior { return FlipAll{} })
	if ids2[0] != 9 || ids2[1] != 7 {
		t.Fatalf("Corrupt ignored permutation: %v", ids2)
	}
	// Clamp at n.
	w3 := testWorld(12, 4, 8)
	if got := Corrupt(w3.World, 100, nil, func(p int) world.Behavior { return FlipAll{} }); len(got) != 4 {
		t.Fatalf("Corrupt over-corrupted: %d", len(got))
	}
}
