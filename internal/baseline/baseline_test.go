package baseline

import (
	"testing"

	"collabscore/internal/metrics"
	"collabscore/internal/prefgen"
	"collabscore/internal/world"
	"collabscore/internal/xrand"
)

func TestProbeAllIsExact(t *testing.T) {
	in := prefgen.Uniform(xrand.New(1), 16, 64)
	w := world.New(in.Truth)
	out := ProbeAll(w)
	es := metrics.Error(w, out)
	if es.Max != 0 {
		t.Fatalf("ProbeAll max error %d", es.Max)
	}
	if ps := metrics.Probes(w); ps.Max != 64 {
		t.Fatalf("ProbeAll probes %d, want 64", ps.Max)
	}
}

func TestRandomGuessErrorNearHalf(t *testing.T) {
	const m = 2048
	in := prefgen.Uniform(xrand.New(2), 8, m)
	w := world.New(in.Truth)
	out := RandomGuess(w, xrand.New(3))
	es := metrics.Error(w, out)
	if es.Mean < 0.4*m || es.Mean > 0.6*m {
		t.Fatalf("RandomGuess mean error %.0f, want ≈%d", es.Mean, m/2)
	}
	if metrics.Probes(w).Max != 0 {
		t.Fatal("RandomGuess probed")
	}
}

func TestAASPAccuracy(t *testing.T) {
	const n, m, b, d = 256, 256, 4, 8
	rng := xrand.New(4)
	in := prefgen.DiameterClusters(rng.Split(1), n, m, n/b, d)
	w := world.New(in.Truth)
	pr := AASPScaled(n, b)
	pr.MinD, pr.MaxD = d, d
	out := AASP(w, rng.Split(2), pr)
	es := metrics.Error(w, out)
	// The baseline is a B-approximation; at a single correct guess it
	// should stay within 5d (the SmallRadius bound).
	if es.Max > 5*d {
		t.Fatalf("AASP max error %d > %d", es.Max, 5*d)
	}
}

func TestAASPCostsMoreThanCore(t *testing.T) {
	// The headline comparison: AASP runs SmallRadius on the full object
	// set, so it must probe substantially more than the sampling protocol
	// at the same diameter guess. This is asserted end-to-end in the
	// experiments package; here we just check AASP's probes exceed the
	// sample size it would have avoided.
	const n, m, b, d = 512, 512, 8, 32
	rng := xrand.New(5)
	in := prefgen.DiameterClusters(rng.Split(1), n, m, n/b, d)
	w := world.New(in.Truth)
	pr := AASPScaled(n, b)
	pr.MinD, pr.MaxD = d, d
	AASP(w, rng.Split(2), pr)
	if metrics.Probes(w).Max == 0 {
		t.Fatal("AASP did not probe")
	}
}

func TestOptErrors(t *testing.T) {
	rng := xrand.New(6)
	in := prefgen.DiameterClusters(rng, 60, 200, 20, 10)
	opt := OptErrors(in)
	if len(opt) != 60 {
		t.Fatalf("OptErrors length %d", len(opt))
	}
	for p, o := range opt {
		if o < 0 || o > 10 {
			t.Fatalf("player %d opt %d outside planted bound", p, o)
		}
	}
	// Identical clusters → opt 0 everywhere.
	in0 := prefgen.IdenticalClusters(rng, 40, 100, 10)
	for p, o := range OptErrors(in0) {
		if o != 0 {
			t.Fatalf("identical clusters: player %d opt %d", p, o)
		}
	}
	// Uniform instance: no planted clusters → zeros.
	inU := prefgen.Uniform(rng, 10, 50)
	for _, o := range OptErrors(inU) {
		if o != 0 {
			t.Fatal("uniform opt should be 0 (no reference)")
		}
	}
}
