// Package baseline implements the comparison algorithms the paper measures
// itself against (§1, §4):
//
//   - AASP: the prior state of the art of Alon, Awerbuch, Azar and
//     Patt-Shamir [2,3] ("Tell me who I am"), which runs the
//     diameter-doubling loop with SmallRadius directly on the full object
//     set. It needs O(B²·polylog n) probes and achieves only a
//     B-approximation of the optimal error, and it has no defense against
//     dishonest players.
//   - ProbeAll: every player probes every object (the trivial optimum,
//     n probes each).
//   - RandomGuess: no probes, expected error m/2 per player.
//   - Opt: the information-theoretic reference of Definition 1, computed
//     from planted ground truth.
package baseline

import (
	"collabscore/internal/bitvec"
	"collabscore/internal/par"
	"collabscore/internal/prefgen"
	"collabscore/internal/selection"
	"collabscore/internal/smallradius"
	"collabscore/internal/world"
	"collabscore/internal/xrand"
)

// AASPParams configures the [2,3]-style baseline.
type AASPParams struct {
	B   int
	SR  smallradius.Params
	Sel selection.Params
	// MinD/MaxD restrict the doubling loop as in core.Params.
	MinD, MaxD int
}

// AASPScaled returns simulation-scale parameters matching core.Scaled.
func AASPScaled(n, b int) AASPParams {
	return AASPParams{B: b, SR: smallradius.Scaled(n), Sel: selection.Defaults()}
}

// AASP runs the prior-work baseline: for each diameter guess D (doubling),
// run SmallRadius over the entire object set with that diameter, then
// RSelect among the resulting candidates. Its probe cost carries the full
// D^{3/2} partition factor on all n objects for every guess, which is where
// the B² (rather than B) dependence of [2,3] shows up.
func AASP(w *world.World, shared *xrand.Stream, pr AASPParams) []bitvec.Vector {
	n, m := w.N(), w.M()
	rc := world.NewRun(w)
	allObjs := make([]int, m)
	for i := range allObjs {
		allObjs[i] = i
	}
	lo, hi := pr.MinD, pr.MaxD
	if lo <= 0 {
		lo = 1
	}
	if hi <= 0 {
		hi = n
	}
	candidates := make([][]bitvec.Vector, n)
	gi := 0
	for d := 1; d <= n; d *= 2 {
		if d < lo || d > hi {
			continue
		}
		z := smallradius.Run(rc, allObjs, d, pr.B, shared.Split(uint64(gi)), pr.SR)
		for p := 0; p < n; p++ {
			candidates[p] = append(candidates[p], z[p])
		}
		gi++
	}
	out := make([]bitvec.Vector, n)
	par.For(n, func(p int) {
		if !w.IsHonest(p) || len(candidates[p]) == 0 {
			out[p] = bitvec.New(m)
			return
		}
		rng := shared.Split(0xBA5E, uint64(p))
		idx := selection.RSelect(w, p, allObjs, candidates[p], rng, pr.Sel)
		out[p] = candidates[p][idx]
	})
	return out
}

// ProbeAll has every honest player probe every object and output the truth.
func ProbeAll(w *world.World) []bitvec.Vector {
	n, m := w.N(), w.M()
	out := make([]bitvec.Vector, n)
	par.For(n, func(p int) {
		v := bitvec.New(m)
		if w.IsHonest(p) {
			for o := 0; o < m; o++ {
				if w.Probe(p, o) {
					v.Set(o, true)
				}
			}
		}
		out[p] = v
	})
	return out
}

// RandomGuess outputs an independent uniform vector per player, using no
// probes. Its expected per-player error is m/2 — the floor any algorithm
// must beat.
func RandomGuess(w *world.World, rng *xrand.Stream) []bitvec.Vector {
	n, m := w.N(), w.M()
	out := make([]bitvec.Vector, n)
	for p := 0; p < n; p++ {
		v := bitvec.New(m)
		r := rng.Split(uint64(p))
		for o := 0; o < m; o++ {
			if r.Bool() {
				v.Set(o, true)
			}
		}
		out[p] = v
	}
	return out
}

// OptErrors returns, for each player, the reference error level of
// Definition 1 computed from planted structure: the exact diameter of the
// player's planted cluster (0 for players in no cluster — they could in
// principle be predicted perfectly only by probing, so the reference is
// the planted diameter when available, else 0).
func OptErrors(in *prefgen.Instance) []int {
	n := in.N()
	out := make([]int, n)
	// Precompute exact diameters per planted cluster.
	diam := make(map[int]int)
	for c := range in.Centers {
		members := in.ClusterMembers(c)
		d := 0
		for i := 0; i < len(members); i++ {
			for j := i + 1; j < len(members); j++ {
				if h := in.Truth[members[i]].Hamming(in.Truth[members[j]]); h > d {
					d = h
				}
			}
		}
		diam[c] = d
	}
	for p := 0; p < n; p++ {
		if c := in.ClusterOf[p]; c >= 0 {
			out[p] = diam[c]
		}
	}
	return out
}
