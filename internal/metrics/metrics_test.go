package metrics

import (
	"math"
	"testing"

	"collabscore/internal/bitvec"
	"collabscore/internal/prefgen"
	"collabscore/internal/world"
	"collabscore/internal/xrand"
)

func TestSummarize(t *testing.T) {
	s := Summarize([]int{3, 1, 4, 1, 5})
	if s.Max != 5 {
		t.Fatalf("Max = %d", s.Max)
	}
	if math.Abs(s.Mean-2.8) > 1e-9 {
		t.Fatalf("Mean = %v", s.Mean)
	}
	if s.Median != 3 {
		t.Fatalf("Median = %d", s.Median)
	}
	if s.P95 != 5 {
		t.Fatalf("P95 = %d", s.P95)
	}
	if s.N != 5 {
		t.Fatalf("N = %d", s.N)
	}
}

func TestSummarizeEmpty(t *testing.T) {
	s := Summarize(nil)
	if s.Max != 0 || s.Mean != 0 || s.N != 0 {
		t.Fatalf("empty Summarize = %+v", s)
	}
}

func TestErrorsHonestOnly(t *testing.T) {
	in := prefgen.Uniform(xrand.New(1), 4, 16)
	w := world.New(in.Truth)
	w.SetBehavior(2, dishonest{})
	outputs := make([]bitvec.Vector, 4)
	for p := range outputs {
		outputs[p] = w.TruthVector(p) // exact for everyone
	}
	outputs[0].Flip(0) // honest player 0 has error 1
	errs := Errors(w, outputs)
	if len(errs) != 3 {
		t.Fatalf("Errors measured %d players, want 3 honest", len(errs))
	}
	es := Error(w, outputs)
	if es.Max != 1 {
		t.Fatalf("Max = %d, want 1", es.Max)
	}
}

type dishonest struct{}

func (dishonest) Report(_ *world.Run, _, _ int) bool { return false }

func TestProbes(t *testing.T) {
	in := prefgen.Uniform(xrand.New(2), 3, 32)
	w := world.New(in.Truth)
	w.SetBehavior(2, dishonest{})
	for o := 0; o < 10; o++ {
		w.Probe(0, o)
	}
	for o := 0; o < 4; o++ {
		w.Probe(1, o)
	}
	for o := 0; o < 30; o++ {
		w.Probe(2, o) // dishonest: counted in Total only
	}
	ps := Probes(w)
	if ps.Max != 10 {
		t.Fatalf("Max = %d, want 10 (dishonest excluded)", ps.Max)
	}
	if math.Abs(ps.Mean-7) > 1e-9 {
		t.Fatalf("Mean = %v, want 7", ps.Mean)
	}
	if ps.Total != 44 {
		t.Fatalf("Total = %d, want 44", ps.Total)
	}
}

func TestApproxRatio(t *testing.T) {
	if r := ApproxRatio(10, 5); r != 2 {
		t.Fatalf("ratio = %v", r)
	}
	if r := ApproxRatio(0, 0); r != 1 {
		t.Fatalf("0/0 ratio = %v, want 1", r)
	}
	if r := ApproxRatio(3, 0); r != 3 {
		t.Fatalf("3/0 ratio = %v, want 3 (vs optimal 1)", r)
	}
}

func TestMeanStdCI(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if m := Mean(xs); math.Abs(m-5) > 1e-9 {
		t.Fatalf("Mean = %v", m)
	}
	if s := Std(xs); math.Abs(s-2.138) > 0.01 {
		t.Fatalf("Std = %v", s)
	}
	if ci := CI95(xs); ci <= 0 {
		t.Fatalf("CI95 = %v", ci)
	}
	if Mean(nil) != 0 || Std(nil) != 0 || CI95([]float64{1}) != 0 {
		t.Fatal("degenerate stats not zero")
	}
}

func TestMaxInt(t *testing.T) {
	if MaxInt([]int{-5, -2, -9}) != -2 {
		t.Fatal("MaxInt with negatives")
	}
	if MaxInt(nil) != 0 {
		t.Fatal("MaxInt(nil) should be 0")
	}
}
