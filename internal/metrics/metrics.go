// Package metrics computes the quantities the paper's claims are stated
// in: per-player Hamming error of the predicted vectors (max over honest
// players = the "rate of error", §3), probe complexity (max probes per
// honest player), and approximation ratios against the Definition-1
// reference.
package metrics

import (
	"math"
	"sort"

	"collabscore/internal/bitvec"
	"collabscore/internal/world"
)

// ErrorStats summarizes prediction error over honest players.
type ErrorStats struct {
	Max    int     `json:"max"` // the paper's rate of error
	Mean   float64 `json:"mean"`
	Median int     `json:"median"`
	P95    int     `json:"p95"`
	N      int     `json:"n"` // number of honest players measured
}

// Errors returns the per-honest-player Hamming errors |w(p) − v(p)|,
// indexed in honest-player order.
func Errors(w *world.World, outputs []bitvec.Vector) []int {
	var errs []int
	for p := 0; p < w.N(); p++ {
		if !w.IsHonest(p) {
			continue
		}
		errs = append(errs, w.HonestError(p, outputs[p]))
	}
	return errs
}

// Error computes ErrorStats for the given protocol outputs.
func Error(w *world.World, outputs []bitvec.Vector) ErrorStats {
	return Summarize(Errors(w, outputs))
}

// Summarize computes ErrorStats over an arbitrary error slice.
func Summarize(errs []int) ErrorStats {
	if len(errs) == 0 {
		return ErrorStats{}
	}
	s := ErrorStats{N: len(errs)}
	sorted := append([]int(nil), errs...)
	sort.Ints(sorted)
	total := 0
	for _, e := range sorted {
		total += e
	}
	s.Max = sorted[len(sorted)-1]
	s.Mean = float64(total) / float64(len(sorted))
	s.Median = sorted[len(sorted)/2]
	p95 := int(math.Ceil(0.95*float64(len(sorted)))) - 1
	if p95 < 0 {
		p95 = 0
	}
	s.P95 = sorted[p95]
	return s
}

// ProbeStats summarizes probe counts over honest players.
type ProbeStats struct {
	Max   int64 // the paper's probe complexity measure
	Mean  float64
	Total int64 // over all players, honest and dishonest
}

// Probes computes ProbeStats for the current state of the world.
func Probes(w *world.World) ProbeStats {
	var s ProbeStats
	honest := 0
	var honestTotal int64
	for p := 0; p < w.N(); p++ {
		c := w.Probes(p)
		s.Total += c
		if !w.IsHonest(p) {
			continue
		}
		honest++
		honestTotal += c
		if c > s.Max {
			s.Max = c
		}
	}
	if honest > 0 {
		s.Mean = float64(honestTotal) / float64(honest)
	}
	return s
}

// ApproxRatio returns achieved/optimal with the convention that an optimal
// of zero and achieved of zero is ratio 1, and any positive error against
// zero optimal is reported against optimal 1 (the smallest nonzero scale).
func ApproxRatio(achieved, optimal float64) float64 {
	if optimal <= 0 {
		if achieved <= 0 {
			return 1
		}
		optimal = 1
	}
	return achieved / optimal
}

// Mean returns the arithmetic mean of xs (0 for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	t := 0.0
	for _, x := range xs {
		t += x
	}
	return t / float64(len(xs))
}

// Std returns the sample standard deviation of xs.
func Std(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	t := 0.0
	for _, x := range xs {
		t += (x - m) * (x - m)
	}
	return math.Sqrt(t / float64(len(xs)-1))
}

// CI95 returns the half-width of a normal-approximation 95% confidence
// interval for the mean of xs.
func CI95(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	return 1.96 * Std(xs) / math.Sqrt(float64(len(xs)))
}

// MaxInt returns the maximum of xs (0 for empty input).
func MaxInt(xs []int) int {
	mx := 0
	for i, x := range xs {
		if i == 0 || x > mx {
			mx = x
		}
	}
	return mx
}
